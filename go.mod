module alertmanet

go 1.22

// Anonymity: put every adversary from the paper against ALERT and GPSR
// side by side — route tracing (Section 3.1), timing attacks (Section 3.2),
// interception by compromised relays, and notify-and-go source hiding
// (Section 2.6).
//
//	go run ./examples/anonymity
package main

import (
	"fmt"
	"log"

	alert "alertmanet"
)

func main() {
	const packets = 20

	fmt.Println("1) route predictability — mean Jaccard similarity of consecutive")
	fmt.Println("   packets' relay sets (1.0 = same route every time):")
	for _, p := range []alert.Protocol{alert.GPSR, alert.ALERT} {
		cfg := alert.DefaultConfig()
		cfg.Protocol = p
		cfg.Duration = 60
		res, err := alert.Run(cfg)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("   %-6s %.3f\n", p, res.RouteSimilarity)
	}
	fmt.Println()

	fmt.Println("2) timing attack — how well a two-point eavesdropper correlates")
	fmt.Println("   departures near S with arrivals near D (1.0 = fixed delay signature):")
	for _, p := range []alert.Protocol{alert.GPSR, alert.ALERT} {
		score := alert.TimingAttackScore(1, p, packets)
		fmt.Printf("   %-6s %.2f\n", p, score)
	}
	fmt.Println()

	fmt.Println("3) interception / DoS — fraction of a session captured after the")
	fmt.Println("   adversary compromises 3 relays of the first observed route:")
	for _, p := range []alert.Protocol{alert.GPSR, alert.ALERT} {
		prob := alert.InterceptionProbability(1, p, packets, 3)
		fmt.Printf("   %-6s %.0f%%\n", p, prob*100)
	}
	fmt.Println()

	fmt.Println("4) source anonymity — distinct transmitters an observer parked on S")
	fmt.Println("   sees during the send window (notify-and-go hides S among eta+1):")
	set, eta := alert.SourceAnonymitySet(1, false)
	fmt.Printf("   without notify-and-go: %d transmitter(s) (eta = %d neighbors)\n", set, eta)
	set, eta = alert.SourceAnonymitySet(1, true)
	fmt.Printf("   with    notify-and-go: %d transmitter(s) (eta = %d neighbors)\n", set, eta)
	fmt.Println()

	fmt.Println("5) destination k-anonymity decay — remaining original zone nodes over")
	fmt.Println("   time (Eq. 15): protection erodes as nodes move, so long sessions")
	fmt.Println("   need the intersection-attack countermeasure:")
	for _, tm := range []float64{0, 10, 20, 40} {
		fmt.Printf("   t=%2.0f s: %.1f nodes (analysis)\n",
			tm, alert.RemainingNodes(tm, 200, 5, 1000, 2))
	}
}

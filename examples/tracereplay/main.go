// Trace replay: drive the simulator with an NS-2 setdest movement script —
// the format the paper's own NS-2.29 experiments used — and compare ALERT
// against GPSR on the identical, reproducible mobility.
//
// The example writes a small convoy scenario (three columns of nodes
// sweeping across the field), replays it under both protocols, and prints
// the comparison.
//
//	go run ./examples/tracereplay
package main

import (
	"fmt"
	"log"
	"os"
	"path/filepath"

	"alertmanet/internal/experiment"
)

func main() {
	path := filepath.Join(os.TempDir(), "alert-convoy.tcl")
	if err := os.WriteFile(path, []byte(convoyTrace()), 0o644); err != nil {
		log.Fatal(err)
	}
	defer os.Remove(path)
	fmt.Println("NS-2 movement script:", path)
	fmt.Println("scenario: three 40-node convoys crossing a 1 km² field at 3 m/s")
	fmt.Println()

	fmt.Printf("%-8s %10s %12s %10s %12s\n",
		"protocol", "delivery", "latency", "hops/pkt", "route-sim")
	for _, p := range []experiment.ProtocolName{experiment.ALERT, experiment.GPSR} {
		sc := experiment.DefaultScenario()
		sc.Protocol = p
		sc.Mobility = experiment.NS2Trace
		sc.NS2TracePath = path
		sc.Duration = 60
		r, err := experiment.Run(sc)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-8s %9.1f%% %9.1f ms %10.2f %12.3f\n",
			p, r.DeliveryRate*100, r.MeanLatency*1e3, r.HopsPerPacket, r.RouteJaccard)
	}
	fmt.Println()
	fmt.Println("identical mobility for both runs: the trace pins every node's")
	fmt.Println("trajectory, so the comparison isolates the routing protocol")
}

// convoyTrace builds a deterministic setdest script: 120 nodes in three
// columns, each column marching across the field.
func convoyTrace() string {
	out := ""
	id := 0
	for col := 0; col < 3; col++ {
		baseY := 200.0 + float64(col)*300
		for i := 0; i < 40; i++ {
			x := 50.0 + float64(i%10)*100
			y := baseY + float64(i/10)*60
			out += fmt.Sprintf("$node_(%d) set X_ %.1f\n$node_(%d) set Y_ %.1f\n",
				id, x, id, y)
			// March east, then return.
			out += fmt.Sprintf("$ns_ at 0.0 \"$node_(%d) setdest %.1f %.1f 3.0\"\n",
				id, x+120, y)
			out += fmt.Sprintf("$ns_ at 45.0 \"$node_(%d) setdest %.1f %.1f 3.0\"\n",
				id, x, y)
			id++
		}
	}
	return out
}

// Quickstart: build a 200-node MANET, route one anonymous message with
// ALERT, and print what happened.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	alert "alertmanet"
)

func main() {
	cfg := alert.DefaultConfig() // the paper's setup: 1 km^2, 200 nodes, 2 m/s
	net, err := alert.NewNetwork(cfg)
	if err != nil {
		log.Fatal(err)
	}

	// Pick a source and a destination on opposite sides of the field.
	src, dst := farPair(net)
	sx, sy := net.Position(src)
	dx, dy := net.Position(dst)
	fmt.Printf("source      node %3d at (%4.0f, %4.0f)\n", src, sx, sy)
	fmt.Printf("destination node %3d at (%4.0f, %4.0f)\n", dst, dx, dy)

	// ALERT never routes to D's position — only to its destination zone,
	// which holds about k nodes and hides D among them.
	minX, minY, maxX, maxY := net.DestZone(dst)
	fmt.Printf("destination zone Z_D: (%.0f, %.0f)-(%.0f, %.0f), H=%d partitions\n",
		minX, minY, maxX, maxY, net.PartitionDepth())

	net.OnDeliver(func(d alert.Delivery) {
		fmt.Printf("delivered %q to node %d after %.1f ms\n",
			d.Data, d.Dst, d.At*1e3)
	})

	if err := net.Send(src, dst, []byte("hello, anonymous world")); err != nil {
		log.Fatal(err)
	}
	net.RunFor(10) // advance 10 simulated seconds

	m := net.Metrics()
	fmt.Printf("hops used: %.0f (random forwarders: %.0f)\n",
		m.HopsPerPacket, m.MeanRandomForwarders)
	if m.DeliveryRate == 1 {
		fmt.Println("the route was assembled from random forwarders — no node on it")
		fmt.Println("knew the source or destination identity or position:")
		fmt.Println()
		routeMap, err := net.RouteMap(76, 28)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Print(routeMap)
		fmt.Println("('S' source, 'D' destination, digits = relays in hop order,")
		fmt.Println(" '#' = destination zone Z_D, '.' = other nodes)")
	} else {
		fmt.Println("undelivered in this placement — rerun with another -seed")
	}
}

// farPair finds two nodes at least 600 m apart so the route is interesting.
func farPair(net *alert.Network) (int, int) {
	for s := 0; s < net.Nodes(); s++ {
		sx, sy := net.Position(s)
		for d := s + 1; d < net.Nodes(); d++ {
			dx, dy := net.Position(d)
			if (sx-dx)*(sx-dx)+(sy-dy)*(sy-dy) >= 600*600 {
				return s, d
			}
		}
	}
	return 0, 1
}

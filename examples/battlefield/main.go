// Battlefield: the paper's motivating military scenario. Squads move under
// the group mobility model; a scout streams reports to a commander for a
// long session while an adversary mounts the intersection attack on the
// commander's zone (Section 3.3). Run once with plain zone broadcasting and
// once with ALERT's two-step m-of-k multicast to see the countermeasure
// foil the attack.
//
//	go run ./examples/battlefield
package main

import (
	"fmt"
	"log"

	alert "alertmanet"
)

func main() {
	fmt.Println("battlefield: 200 nodes in squads (group mobility), long scout->commander session")
	fmt.Println("adversary: records who receives every destination-zone delivery and")
	fmt.Println("intersects the recipient sets across the session (Section 3.3)")
	fmt.Println()

	const packets = 25
	const trials = 5

	for _, guard := range []bool{false, true} {
		mode := "plain Z_D broadcast"
		if guard {
			mode = "two-step m-of-k multicast (countermeasure ON)"
		}
		dstCandidate, exposed, candidates := 0, 0, 0
		for seed := int64(1); seed <= trials; seed++ {
			r := alert.RunIntersectionAttack(seed, packets, guard)
			if r.DestinationCandidate {
				dstCandidate++
			}
			if r.Exposed {
				exposed++
			}
			candidates += r.Candidates
		}
		fmt.Printf("%s:\n", mode)
		fmt.Printf("  commander still in attacker's candidate set: %d/%d sessions\n",
			dstCandidate, trials)
		fmt.Printf("  commander exactly identified:                %d/%d sessions\n",
			exposed, trials)
		fmt.Printf("  mean surviving candidates:                   %.1f\n",
			float64(candidates)/trials)
		fmt.Println()
	}

	// Denial of service by relay compromise (Section 3.1): the enemy
	// watches one packet, subverts three of its relays, and waits.
	fmt.Println("DoS: enemy compromises 3 relays of the first observed route:")
	for _, p := range []alert.Protocol{alert.GPSR, alert.ALERT} {
		var before, after float64
		for seed := int64(1); seed <= trials; seed++ {
			r := alert.RunDoSAttack(seed, p, 20, 3)
			before += r.BaselineDelivery
			after += r.UnderAttackDelivery
		}
		fmt.Printf("  %-6s delivery %.0f%% -> %.0f%% under attack\n",
			p, before/trials*100, after/trials*100)
	}
	fmt.Println()

	// The group-mobility cost (Fig. 17): squads cluster nodes, so ALERT's
	// random forwarder selection has fewer spread-out candidates and
	// delay rises slightly.
	fmt.Println("delay under movement models (Fig. 17):")
	for _, m := range []struct {
		label  string
		mob    alert.Mobility
		groups int
		rng    float64
	}{
		{"random waypoint        ", alert.RandomWaypoint, 0, 0},
		{"10 squads, 150 m range ", alert.GroupMobility, 10, 150},
		{"5 squads, 200 m range  ", alert.GroupMobility, 5, 200},
	} {
		cfg := alert.DefaultConfig()
		cfg.Mobility = m.mob
		if m.groups > 0 {
			cfg.Groups = m.groups
			cfg.GroupRange = m.rng
		}
		cfg.Duration = 60
		res, err := alert.Run(cfg)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  %s %.1f ms (delivery %.0f%%)\n",
			m.label, res.MeanLatencySeconds*1e3, res.DeliveryRate*100)
	}
}

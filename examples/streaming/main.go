// Streaming: the paper's motivating multimedia scenario — a CBR stream
// (e.g. voice frames) between ten S-D pairs — run under all four protocols
// to show why hop-by-hop public-key encryption cannot carry real-time
// traffic while ALERT can (Section 1, Fig. 14).
//
//	go run ./examples/streaming
package main

import (
	"fmt"
	"log"

	alert "alertmanet"
)

func main() {
	fmt.Println("multimedia CBR workload: 10 pairs, 512 B packets every 2 s, 100 s")
	fmt.Println()
	fmt.Printf("%-8s %10s %12s %10s %14s\n",
		"protocol", "delivery", "latency", "hops/pkt", "route-sim")

	const voiceDeadline = 0.15 // seconds: interactive voice budget
	usable := map[alert.Protocol]bool{}
	for _, p := range []alert.Protocol{alert.ALERT, alert.GPSR, alert.ALARM, alert.AO2P} {
		cfg := alert.DefaultConfig()
		cfg.Protocol = p
		res, err := alert.Run(cfg)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-8s %9.1f%% %9.1f ms %10.2f %14.3f\n",
			p, res.DeliveryRate*100, res.MeanLatencySeconds*1e3,
			res.HopsPerPacket, res.RouteSimilarity)
		usable[p] = res.MeanLatencySeconds < voiceDeadline && res.DeliveryRate > 0.9
	}

	fmt.Println()
	fmt.Printf("within the %.0f ms interactive-voice budget:\n", voiceDeadline*1e3)
	for _, p := range []alert.Protocol{alert.ALERT, alert.GPSR, alert.ALARM, alert.AO2P} {
		verdict := "NO  — per-hop public-key encryption blows the deadline"
		if usable[p] {
			verdict = "yes"
			if p == alert.ALERT {
				verdict = "yes — and with full source/destination/route anonymity"
			}
			if p == alert.GPSR {
				verdict = "yes — but with no anonymity at all"
			}
		}
		fmt.Printf("  %-6s %s\n", p, verdict)
	}
}

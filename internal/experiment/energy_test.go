package experiment

import (
	"math"
	"testing"
)

// TestEnergyOrdering verifies the paper's summary claim: ALERT "has
// significantly lower energy consumption compared to AO2P and ALARM"
// (hop-by-hop public-key work dominates their budgets), while paying an
// anonymity premium over plain GPSR.
func TestEnergyOrdering(t *testing.T) {
	energy := map[ProtocolName]float64{}
	for _, p := range []ProtocolName{ALERT, GPSR, ALARM, AO2P} {
		sc := DefaultScenario()
		sc.Protocol = p
		sc.Duration = 40
		r := MustRun(sc)
		if r.EnergyJoules <= 0 || math.IsInf(r.EnergyPerDelivered, 1) {
			t.Fatalf("%s: no energy accounted", p)
		}
		energy[p] = r.EnergyPerDelivered
	}
	if energy[ALERT] >= energy[ALARM]/2 {
		t.Fatalf("ALERT (%v J) should be significantly below ALARM (%v J)",
			energy[ALERT], energy[ALARM])
	}
	if energy[ALERT] >= energy[AO2P]/2 {
		t.Fatalf("ALERT (%v J) should be significantly below AO2P (%v J)",
			energy[ALERT], energy[AO2P])
	}
	if energy[GPSR] >= energy[ALERT] {
		t.Fatalf("GPSR (%v J) should be below ALERT (%v J) — anonymity costs something",
			energy[GPSR], energy[ALERT])
	}
}

// TestEnergyScalesWithCryptoOps: enabling notify-and-go (per-packet TTL
// encryption plus cover traffic) must raise ALERT's energy.
func TestEnergyScalesWithCryptoOps(t *testing.T) {
	base := DefaultScenario()
	base.Duration = 30
	plain := MustRun(base)
	base.Alert.NotifyAndGo = true
	covered := MustRun(base)
	if covered.EnergyJoules <= plain.EnergyJoules {
		t.Fatalf("notify-and-go energy (%v) should exceed plain (%v)",
			covered.EnergyJoules, plain.EnergyJoules)
	}
}

// TestEnergyUndelivered: a run that delivers nothing reports +Inf per
// delivered packet rather than dividing by zero.
func TestEnergyUndelivered(t *testing.T) {
	sc := DefaultScenario()
	sc.N = 4 // hopelessly sparse
	sc.Pairs = 1
	sc.Duration = 10
	r := MustRun(sc)
	if r.DeliveryRate == 0 && !math.IsInf(r.EnergyPerDelivered, 1) {
		t.Fatalf("undelivered run: EnergyPerDelivered = %v", r.EnergyPerDelivered)
	}
}

package experiment

import (
	"fmt"
	"testing"
)

// checkDrainInvariants runs one scenario to its drain horizon and enforces
// the accounting contracts this harness guarantees:
//
//  1. Every application packet reaches a terminal outcome — after Drain,
//     Collector.Unfinished() == 0 and Completed() == Sent(). Before the
//     link-layer ARQ reported send outcomes, a frame lost on air left its
//     packet open forever (Completed() < Sent() silently).
//  2. GPSR counter conservation: every routing attempt ends in exactly one
//     of the five terminal outcomes.
func checkDrainInvariants(t *testing.T, label string, sc Scenario) {
	t.Helper()
	w, err := Build(sc)
	if err != nil {
		t.Fatalf("%s: %v", label, err)
	}
	pairs := w.ChoosePairs()
	w.StartWorkload(pairs)
	w.Drain()

	col := w.Proto.Collector()
	if col.Sent() == 0 {
		t.Fatalf("%s: sent nothing", label)
	}
	if n := col.Unfinished(); n != 0 {
		t.Errorf("%s: %d of %d packets never completed", label, n, col.Sent())
	}
	if col.Completed() != col.Sent() {
		t.Errorf("%s: Completed() = %d, Sent() = %d", label, col.Completed(), col.Sent())
	}

	r := w.Router()
	if r == nil {
		t.Fatalf("%s: no router", label)
	}
	c := r.Counters()
	terminal := c.Delivered + c.ArrivedClosest + c.DroppedTTL + c.DroppedDeadEnd + c.DroppedLink
	if c.Sent != terminal {
		t.Errorf("%s: gpsr conservation broken: Sent=%d but terminals sum to %d (%+v)",
			label, c.Sent, terminal, c)
	}
}

// TestDrainInvariantsAllProtocols exercises the drain-time accounting
// invariants for all five protocols under increasing loss. At LossRate 0.3
// the pre-ARQ channel dropped most multi-hop traffic without a trace; now
// every loss is a counted DroppedLink (or recovered by a retransmission).
func TestDrainInvariantsAllProtocols(t *testing.T) {
	for _, p := range []ProtocolName{ALERT, GPSR, ALARM, AO2P, ZAP} {
		for _, loss := range []float64{0, 0.1, 0.3} {
			sc := DefaultScenario()
			sc.Protocol = p
			sc.Duration = 20
			sc.LossRate = loss
			checkDrainInvariants(t, fmt.Sprintf("%s/loss=%v", p, loss), sc)
		}
	}
}

// TestDrainInvariantsHighSpeed stresses the same invariants under fast
// mobility: links break mid-flight (range drops rather than loss-coin
// drops), the failure mode the ARQ's per-attempt range check re-tests.
func TestDrainInvariantsHighSpeed(t *testing.T) {
	for _, p := range []ProtocolName{ALERT, GPSR, ALARM, AO2P, ZAP} {
		sc := DefaultScenario()
		sc.Protocol = p
		sc.Duration = 20
		sc.Speed = 20 // well beyond the paper's 8 m/s sweep
		sc.LossRate = 0.1
		checkDrainInvariants(t, fmt.Sprintf("%s/speed=20", p), sc)
	}
}

// TestDrainInvariantsNoARQ verifies the invariants do not depend on the
// ARQ: with Retries = 0 (the pre-ARQ fire-and-forget channel) a lost frame
// still resolves its send as DroppedLink on the first attempt.
func TestDrainInvariantsNoARQ(t *testing.T) {
	for _, p := range []ProtocolName{ALERT, GPSR, ALARM, AO2P, ZAP} {
		sc := DefaultScenario()
		sc.Protocol = p
		sc.Duration = 20
		sc.LossRate = 0.3
		sc.NoARQ = true
		checkDrainInvariants(t, fmt.Sprintf("%s/noarq", p), sc)
	}
}

// TestARQImprovesLossyDelivery pins the before/after relationship the
// EXPERIMENTS.md note records: on a lossless channel the ARQ is inert
// (identical delivery with and without), and on a lossy channel the retry
// budget recovers deliveries fire-and-forget loses.
func TestARQImprovesLossyDelivery(t *testing.T) {
	run := func(noARQ bool, loss float64) Result {
		sc := DefaultScenario()
		sc.Protocol = GPSR
		sc.Duration = 20
		sc.LossRate = loss
		sc.NoARQ = noARQ
		return MustRun(sc)
	}
	cleanARQ, cleanNo := run(false, 0), run(true, 0)
	if cleanARQ.DeliveryRate < 0.95 || cleanNo.DeliveryRate < 0.95 {
		t.Fatalf("lossless delivery: arq=%v noarq=%v", cleanARQ.DeliveryRate, cleanNo.DeliveryRate)
	}
	lossyARQ, lossyNo := run(false, 0.3), run(true, 0.3)
	if lossyARQ.DeliveryRate <= lossyNo.DeliveryRate {
		t.Fatalf("ARQ should out-deliver fire-and-forget at 30%% loss: arq=%v noarq=%v",
			lossyARQ.DeliveryRate, lossyNo.DeliveryRate)
	}
	// The recovery must come from retransmissions the counters admit to.
	sc := DefaultScenario()
	sc.Protocol = GPSR
	sc.Duration = 20
	sc.LossRate = 0.3
	w := MustBuild(sc)
	pairs := w.ChoosePairs()
	w.StartWorkload(pairs)
	w.Drain()
	mc := w.Med.Counters()
	if mc.Retransmissions == 0 || mc.AcksSent == 0 {
		t.Fatalf("lossy ARQ run shows no retry activity: %+v", mc)
	}
}

// TestDroppedLinkIsTerminalOutcome drives a GPSR run over a hopeless
// channel (LossRate 1, no retries would ever help) and checks the drop is
// visible as DroppedLink rather than a silent vanish.
func TestDroppedLinkIsTerminalOutcome(t *testing.T) {
	sc := DefaultScenario()
	sc.Protocol = GPSR
	sc.Duration = 10
	sc.LossRate = 1
	w := MustBuild(sc)
	pairs := w.ChoosePairs()
	w.StartWorkload(pairs)
	w.Drain()
	c := w.Router().Counters()
	if c.DroppedLink == 0 {
		t.Fatalf("no DroppedLink outcomes on a LossRate=1 channel: %+v", c)
	}
	if got := w.Proto.Collector().Unfinished(); got != 0 {
		t.Fatalf("%d packets never completed", got)
	}
}

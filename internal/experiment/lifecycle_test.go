package experiment

import (
	"bytes"
	"fmt"
	"testing"

	"alertmanet/internal/telemetry"
)

// TestPacketLifecycle checks, for every protocol with and without channel
// loss, the invariants a telemetry stream must satisfy if the event taps
// are wired correctly:
//
//  1. the stream is keyed by nondecreasing simulated time and no event is
//     emitted after the Duration+DrainTime horizon;
//  2. every packet.sent has exactly one packet.terminal (and vice versa),
//     and the stream's tallies agree with the run's Result;
//  3. per packet, the route events form a connected path: forwarding
//     decisions are made by the node currently holding the packet, hops
//     arrive where the packet was last sent, and each new routing leg
//     starts where the previous one ended.
func TestPacketLifecycle(t *testing.T) {
	for _, proto := range goldenProtocols {
		for _, loss := range []float64{0, 0.3} {
			t.Run(fmt.Sprintf("%s/loss=%.1f", proto, loss), func(t *testing.T) {
				sc := DefaultScenario()
				sc.Protocol = proto
				sc.LossRate = loss
				// A shorter horizon keeps ten runs fast; the lifecycle
				// invariants do not depend on run length.
				sc.Duration = 40

				var buf bytes.Buffer
				tap := telemetry.New(&buf, telemetry.LayerRoute|telemetry.LayerPacket)
				res, _, err := RunWorld(sc, tap)
				if err != nil {
					t.Fatal(err)
				}
				if err := tap.Flush(); err != nil {
					t.Fatal(err)
				}
				events, err := telemetry.ReadAll(&buf)
				if err != nil {
					t.Fatal(err)
				}
				if len(events) == 0 {
					t.Fatal("no events emitted")
				}

				checkTimeline(t, events, sc.Duration+sc.DrainTime)
				checkLifecycles(t, events, res)
				checkConnectivity(t, events)
			})
		}
	}
}

func checkTimeline(t *testing.T, events []telemetry.Event, horizon float64) {
	t.Helper()
	prev := 0.0
	for _, ev := range events {
		if ev.T < prev {
			t.Fatalf("stream time regressed: %v after %v (%s/%s)", ev.T, prev, ev.Layer, ev.Kind)
		}
		prev = ev.T
		if ev.T > horizon {
			t.Fatalf("event after the drain horizon %v: %+v", horizon, ev)
		}
	}
}

func checkLifecycles(t *testing.T, events []telemetry.Event, res Result) {
	t.Helper()
	sent := map[int]int{}
	terminal := map[int]int{}
	delivered := 0
	for _, ev := range events {
		if ev.Layer != "packet" {
			continue
		}
		switch ev.Kind {
		case "sent":
			sent[ev.Trace]++
		case "terminal":
			terminal[ev.Trace]++
			if ev.Detail == "delivered" {
				delivered++
			}
		}
	}
	for trace, n := range sent {
		if n != 1 {
			t.Errorf("packet %d sent %d times", trace, n)
		}
		if terminal[trace] != 1 {
			t.Errorf("packet %d has %d terminal events, want exactly 1", trace, terminal[trace])
		}
	}
	for trace := range terminal {
		if sent[trace] == 0 {
			t.Errorf("packet %d terminated without being sent", trace)
		}
	}
	if len(sent) != res.Sent {
		t.Errorf("stream has %d sent packets, Result says %d", len(sent), res.Sent)
	}
	if delivered != res.Delivered {
		t.Errorf("stream has %d delivered packets, Result says %d", delivered, res.Delivered)
	}
}

// pathState tracks one packet's position through its route events.
type pathState struct {
	holder    int // node currently holding the packet
	lastFwdTo int // destination of the most recent forwarding decision
	legEnded  bool
}

func checkConnectivity(t *testing.T, events []telemetry.Event) {
	t.Helper()
	state := map[int]*pathState{}
	get := func(trace int) *pathState {
		s, ok := state[trace]
		if !ok {
			s = &pathState{holder: -1, lastFwdTo: -1}
			state[trace] = s
		}
		return s
	}
	for _, ev := range events {
		if ev.Layer != "route" || ev.Trace < 0 {
			continue
		}
		s := get(ev.Trace)
		switch ev.Kind {
		case "send":
			// A new leg starts where the previous one ended (ALERT's
			// random-forwarder relay), or anywhere for the first leg.
			if s.holder >= 0 && s.legEnded && ev.Node != s.holder {
				t.Fatalf("packet %d: leg starts at %d but previous leg ended at %d",
					ev.Trace, ev.Node, s.holder)
			}
			s.holder = ev.Node
			s.lastFwdTo = -1
			s.legEnded = false
		case "fwd":
			if s.holder >= 0 && ev.From != s.holder {
				t.Fatalf("packet %d: node %d forwarded (%s) but node %d holds the packet",
					ev.Trace, ev.From, ev.Detail, s.holder)
			}
			s.lastFwdTo = ev.To
		case "hop":
			// A packet can only arrive where it was last forwarded to.
			if ev.Node != s.lastFwdTo && ev.Node != s.holder {
				t.Fatalf("packet %d: arrived at %d, but was last at %d heading to %d",
					ev.Trace, ev.Node, s.holder, s.lastFwdTo)
			}
			s.holder = ev.Node
		case "leg":
			// The leg terminates at the node holding the packet. A leg
			// that died on air (ARQ exhausted) ends at the sender.
			if s.holder >= 0 && ev.Node != s.holder && ev.Node != s.lastFwdTo {
				t.Fatalf("packet %d: leg ended (%s) at %d, but packet was at %d",
					ev.Trace, ev.Detail, ev.Node, s.holder)
			}
			s.holder = ev.Node
			s.legEnded = true
		case "rf":
			// The random forwarder is the node the leg just reached.
			if s.holder >= 0 && ev.Node != s.holder {
				t.Fatalf("packet %d: RF %d selected but packet is at %d",
					ev.Trace, ev.Node, s.holder)
			}
		}
	}
	if len(state) == 0 {
		t.Fatal("no route events with a packet trace")
	}
}

package experiment

import (
	"reflect"
	"testing"
)

// TestRunArenaMatchesRun pins the arena's determinism contract: recycling
// the engine and the record slab across runs must not perturb results in
// any way — same scenario, same numbers, run after run, including across
// protocol switches on the same arena (as a campaign worker does).
func TestRunArenaMatchesRun(t *testing.T) {
	scenarios := make([]Scenario, 0, 4)
	for _, p := range []ProtocolName{ALERT, GPSR, ZAP} {
		sc := DefaultScenario()
		sc.Protocol = p
		sc.N = 60
		sc.Pairs = 4
		sc.Duration = 20
		scenarios = append(scenarios, sc)
	}
	// A second ALERT run at another seed: reuse after a different protocol
	// left its own state shapes behind.
	sc := scenarios[0]
	sc.Seed = 7
	scenarios = append(scenarios, sc)

	want := make([]Result, len(scenarios))
	for i, sc := range scenarios {
		r, err := Run(sc)
		if err != nil {
			t.Fatal(err)
		}
		want[i] = r
	}

	a := NewArena()
	for round := 0; round < 2; round++ {
		for i, sc := range scenarios {
			got, err := RunArena(sc, a)
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(got, want[i]) {
				t.Errorf("round %d scenario %d (%s seed %d): arena result diverged\n got: %+v\nwant: %+v",
					round, i, sc.Protocol, sc.Seed, got, want[i])
			}
		}
	}
}

// TestRunArenaNilDegradesToRun: campaign paths that have no arena must
// behave exactly like Run.
func TestRunArenaNilDegradesToRun(t *testing.T) {
	sc := DefaultScenario()
	sc.N = 40
	sc.Pairs = 2
	sc.Duration = 10
	want, err := Run(sc)
	if err != nil {
		t.Fatal(err)
	}
	got, err := RunArena(sc, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("RunArena(sc, nil) = %+v, want %+v", got, want)
	}
}

// Table 1 of the paper: the taxonomy of existing anonymous routing
// protocols and the anonymity protections each provides. Static data, kept
// executable so `cmd/figures table1` regenerates the exact table.

package experiment

import (
	"fmt"
	"strings"
)

// Table1Row is one protocol's classification.
type Table1Row struct {
	Category          string
	Subcategory       string
	Routing           string // "Topology" or "Geographic"
	Name              string
	IdentityAnonymity string
	LocationAnonymity string
	RouteAnonymity    string
}

// Table1 returns the paper's classification of anonymous routing protocols.
func Table1() []Table1Row {
	return []Table1Row{
		{"Reactive", "Hop-by-hop encryption", "Topology", "MASK [32]", "source", "n/a", "yes"},
		{"Reactive", "Hop-by-hop encryption", "Topology", "ANODR [33]", "source, destination", "n/a", "yes"},
		{"Reactive", "Hop-by-hop encryption", "Topology", "Discount-ANODR [34]", "source, destination", "n/a", "yes"},
		{"Reactive", "Hop-by-hop encryption", "Geographic", "Zhou et al. [3]", "source, destination", "source, destination", "no"},
		{"Reactive", "Hop-by-hop encryption", "Geographic", "Pathak et al. [4]", "source, destination", "source, destination", "no"},
		{"Reactive", "Hop-by-hop encryption", "Geographic", "AO2P [10]", "source, destination", "source, destination", "no"},
		{"Reactive", "Hop-by-hop encryption", "Geographic", "PRISM [6]", "source, destination", "source, destination", "no"},
		{"Reactive", "Redundant traffic", "Topology", "Aad [8]", "destination", "n/a", "yes"},
		{"Reactive", "Redundant traffic", "Geographic", "ASR [11]", "source, destination", "source, destination", "no"},
		{"Reactive", "Redundant traffic", "Geographic", "ZAP [13]", "destination", "destination", "no"},
		{"Proactive", "Redundant traffic", "Topology", "ALARM [5]", "source, destination", "source", "no"},
		{"Middleware", "Redundant traffic", "Geographic", "MAPCP [9]", "source, destination", "n/a", "yes"},
		{"Reactive", "Random relay selection", "Geographic", "ALERT (this work)", "source, destination", "source, destination", "yes"},
	}
}

// FormatTable1 renders the taxonomy as an aligned text table.
func FormatTable1() string {
	rows := Table1()
	var b strings.Builder
	fmt.Fprintf(&b, "%-11s %-22s %-11s %-20s %-21s %-21s %s\n",
		"Category", "Subcategory", "Routing", "Name",
		"Identity anonymity", "Location anonymity", "Route anonymity")
	b.WriteString(strings.Repeat("-", 125) + "\n")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-11s %-22s %-11s %-20s %-21s %-21s %s\n",
			r.Category, r.Subcategory, r.Routing, r.Name,
			r.IdentityAnonymity, r.LocationAnonymity, r.RouteAnonymity)
	}
	return b.String()
}

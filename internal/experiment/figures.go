// Figure generators: one function per evaluation figure (Figs. 10-17) plus
// the remaining-node mobility experiments. Each figure enumerates every
// (Scenario, seed) cell it needs, executes the whole batch through a Runner
// (DirectRunner in-process, or internal/campaign's caching, resumable
// Engine), and reduces the results into labeled series in the same shape
// the paper plots. The Figures registry exposes the plan/render split so
// cmd/campaign can run the union of every figure's cells as one campaign.

package experiment

import (
	"fmt"

	"alertmanet/internal/analysis"
	"alertmanet/internal/stats"
)

// protosAll is the comparison set of Section 5.
var protosAll = []ProtocolName{ALERT, GPSR, ALARM, AO2P}

// participantScenario is the Fig. 10 cell: one S-D pair bursting `packets`
// packets at a low interval so path churn stays small.
func participantScenario(p ProtocolName, n, packets int, seed int64) Scenario {
	sc := DefaultScenario()
	sc.Seed = seed
	sc.Protocol = p
	sc.N = n
	sc.Pairs = 1
	sc.Packets = packets
	sc.Interval = 0.5 // keep path churn low over the burst
	sc.Duration = float64(packets)*sc.Interval + 5
	return sc
}

// shortRun reports a cell that recorded fewer packets than the figure
// averages over. The pre-campaign loops papered over these with a
// counts[i] > 0 guard, silently skewing the mean toward the long runs; a
// campaign treats the cell as broken and says which one.
func shortRun(sc Scenario, r Result, packets int) error {
	if len(r.Cumulative) >= packets {
		return nil
	}
	return fmt.Errorf("experiment: short-run cell %s seed %d (scenario %.12s): recorded %d packets, figure needs %d — raise Duration or lower the packet count",
		sc.Protocol, sc.Seed, sc.Hash(), len(r.Cumulative), packets)
}

func fig10aCells(packets, seeds int) []Scenario {
	var cells []Scenario
	for _, n := range []int{100, 200} {
		for _, p := range []ProtocolName{ALERT, GPSR} {
			for seed := 1; seed <= seeds; seed++ {
				cells = append(cells, participantScenario(p, n, packets, int64(seed)))
			}
		}
	}
	return cells
}

// Fig10a reproduces Fig. 10a: cumulative actual participating nodes versus
// packets transmitted, for ALERT and GPSR at 100 and 200 nodes (ALARM and
// AO2P follow GPSR's shortest-path behaviour, as the paper notes). One S-D
// pair sends `packets` packets; curves are averaged over seeds.
func Fig10a(r Runner, packets, seeds int) ([]analysis.Series, error) {
	cells := fig10aCells(packets, seeds)
	results, err := r.RunBatch(cells)
	if err != nil {
		return nil, err
	}
	var out []analysis.Series
	idx := 0
	for _, n := range []int{100, 200} {
		for _, p := range []ProtocolName{ALERT, GPSR} {
			sums := make([]float64, packets)
			for seed := 1; seed <= seeds; seed++ {
				res := results[idx]
				if err := shortRun(cells[idx], res, packets); err != nil {
					return nil, fmt.Errorf("fig10a: %w", err)
				}
				idx++
				for i := 0; i < packets; i++ {
					sums[i] += float64(res.Cumulative[i])
				}
			}
			s := analysis.Series{Label: fmt.Sprintf("%s N=%d", p, n)}
			for i := 0; i < packets; i++ {
				s.X = append(s.X, float64(i+1))
				s.Y = append(s.Y, sums[i]/float64(seeds))
			}
			out = append(out, s)
		}
	}
	return out, nil
}

func fig10bCells(packets, seeds int) []Scenario {
	var cells []Scenario
	for _, p := range []ProtocolName{ALERT, GPSR} {
		for _, n := range []int{50, 100, 150, 200} {
			for seed := 1; seed <= seeds; seed++ {
				cells = append(cells, participantScenario(p, n, packets, int64(seed)))
			}
		}
	}
	return cells
}

// Fig10b reproduces Fig. 10b: actual participating nodes after `packets`
// packets, versus the total number of nodes, ALERT versus GPSR.
func Fig10b(r Runner, packets, seeds int) ([]analysis.Series, error) {
	cells := fig10bCells(packets, seeds)
	results, err := r.RunBatch(cells)
	if err != nil {
		return nil, err
	}
	var out []analysis.Series
	idx := 0
	for _, p := range []ProtocolName{ALERT, GPSR} {
		s := analysis.Series{Label: string(p)}
		for _, n := range []int{50, 100, 150, 200} {
			var sample stats.Sample
			for seed := 1; seed <= seeds; seed++ {
				res := results[idx]
				if err := shortRun(cells[idx], res, packets); err != nil {
					return nil, fmt.Errorf("fig10b: %w", err)
				}
				idx++
				sample.Add(float64(res.Participants))
			}
			s.X = append(s.X, float64(n))
			s.Y = append(s.Y, sample.Mean())
		}
		out = append(out, s)
	}
	return out, nil
}

func fig11Cells(hMax, seeds int) []Scenario {
	var cells []Scenario
	for h := 1; h <= hMax; h++ {
		for seed := 1; seed <= seeds; seed++ {
			sc := DefaultScenario()
			sc.Seed = int64(seed)
			sc.Protocol = ALERT
			sc.Alert.H = h
			sc.Duration = 40
			cells = append(cells, sc)
		}
	}
	return cells
}

// Fig11 reproduces Fig. 11: the simulated number of random forwarders
// versus the number of partitions H (to compare with the analytical
// Fig. 7b line).
func Fig11(r Runner, hMax, seeds int) (analysis.Series, error) {
	results, err := r.RunBatch(fig11Cells(hMax, seeds))
	if err != nil {
		return analysis.Series{}, err
	}
	s := analysis.Series{Label: "ALERT mean RFs"}
	idx := 0
	for h := 1; h <= hMax; h++ {
		var sample stats.Sample
		for seed := 1; seed <= seeds; seed++ {
			sample.Add(results[idx].MeanRFs)
			idx++
		}
		s.X = append(s.X, float64(h))
		s.Y = append(s.Y, sample.Mean())
	}
	return s, nil
}

// remainingCells enumerates the per-seed mobility-only cells behind
// RemainingNodesSim; field and group parameters come from the paper
// defaults, as before the campaign rewire.
func remainingCells(n, h int, speed float64, mob MobilityName,
	times []float64, dests, seeds int) []RemainingSpec {
	sc := DefaultScenario()
	cells := make([]RemainingSpec, 0, seeds)
	for seed := 1; seed <= seeds; seed++ {
		cells = append(cells, RemainingSpec{
			Seed: int64(seed), N: n, H: h, Speed: speed, Mobility: mob,
			Field: sc.Field, Groups: sc.Groups, GroupRange: sc.GroupRange,
			Times: times, Dests: dests,
		})
	}
	return cells
}

// RemainingNodesSim measures, by pure mobility simulation, how many of the
// nodes initially inside a destination zone are still inside after each
// sample time — the simulated counterpart of Equation (15). Zones are
// centered on `dests` random node positions per seed. Per-seed sums and
// zone counts are exact integer-valued quantities, so pooling them across
// seeds reproduces the pre-campaign single-loop average bit-for-bit.
func RemainingNodesSim(r Runner, n, h int, speed float64, mob MobilityName,
	times []float64, dests, seeds int) ([]float64, error) {
	rrs, err := r.RemainingBatch(remainingCells(n, h, speed, mob, times, dests, seeds))
	if err != nil {
		return nil, err
	}
	sums := make([]float64, len(times))
	count := 0
	for _, rr := range rrs {
		count += rr.Count
		for i, v := range rr.Sums {
			sums[i] += v
		}
	}
	out := make([]float64, len(times))
	if count == 0 {
		return out, nil
	}
	for i := range sums {
		out[i] = sums[i] / float64(count)
	}
	return out, nil
}

// Fig12 reproduces Fig. 12: remaining nodes in the destination zone over
// time for densities 100, 150 and 200 nodes (H = 5, v = 2 m/s).
func Fig12(r Runner, times []float64, seeds int) ([]analysis.Series, error) {
	var out []analysis.Series
	for _, n := range []int{100, 150, 200} {
		ys, err := RemainingNodesSim(r, n, 5, 2, RandomWaypoint, times, 5, seeds)
		if err != nil {
			return nil, err
		}
		out = append(out, analysis.Series{Label: fmt.Sprintf("N=%d", n), X: times, Y: ys})
	}
	return out, nil
}

// Fig13a reproduces Fig. 13a: remaining nodes over time for H in {4, 5}
// and node speeds 0, 2 and 4 m/s (N = 200).
func Fig13a(r Runner, times []float64, seeds int) ([]analysis.Series, error) {
	var out []analysis.Series
	for _, h := range []int{4, 5} {
		for _, v := range []float64{0, 2, 4} {
			ys, err := RemainingNodesSim(r, 200, h, v, RandomWaypoint, times, 5, seeds)
			if err != nil {
				return nil, err
			}
			out = append(out, analysis.Series{
				Label: fmt.Sprintf("H=%d v=%.0f", h, v), X: times, Y: ys,
			})
		}
	}
	return out, nil
}

// Fig13b reproduces Fig. 13b: the node density required to keep `target`
// nodes in the destination zone after 10 s, versus node speed. Found by
// scanning density upward in steps of 25 nodes; the scan adapts to the
// results, so its cells cannot be enumerated up front (a campaign caches
// each probed density instead).
func Fig13b(r Runner, target float64, speeds []float64, seeds int) (analysis.Series, error) {
	s := analysis.Series{Label: fmt.Sprintf("density for %.0f remaining @10s", target)}
	times := []float64{10}
	for _, v := range speeds {
		required := 0.0
		for n := 25; n <= 800; n += 25 {
			ys, err := RemainingNodesSim(r, n, 5, v, RandomWaypoint, times, 5, seeds)
			if err != nil {
				return analysis.Series{}, err
			}
			if ys[0] >= target {
				required = float64(n)
				break
			}
		}
		s.X = append(s.X, v)
		s.Y = append(s.Y, required)
	}
	return s, nil
}

// sweepCells enumerates the four-protocol sweep grid: protocol (outer),
// x value, then seed, matching the reduction order of sweepMetric.
func sweepCells(xs []float64, seeds int, configure func(*Scenario, float64)) []Scenario {
	var cells []Scenario
	for _, p := range protosAll {
		for _, x := range xs {
			for seed := 1; seed <= seeds; seed++ {
				sc := DefaultScenario()
				sc.Protocol = p
				configure(&sc, x)
				sc.Seed = int64(seed)
				cells = append(cells, sc)
			}
		}
	}
	return cells
}

// sweepMetric runs all four protocols across a scenario sweep and extracts
// one metric per run.
func sweepMetric(r Runner, xs []float64, seeds int, configure func(*Scenario, float64),
	metric func(Result) float64) ([]analysis.Series, error) {
	results, err := r.RunBatch(sweepCells(xs, seeds, configure))
	if err != nil {
		return nil, err
	}
	var out []analysis.Series
	idx := 0
	for _, p := range protosAll {
		s := analysis.Series{Label: string(p)}
		for _, x := range xs {
			var sample stats.Sample
			for seed := 1; seed <= seeds; seed++ {
				sample.Add(metric(results[idx]))
				idx++
			}
			s.X = append(s.X, x)
			s.Y = append(s.Y, sample.Mean())
			s.Err = append(s.Err, sample.CI())
		}
		out = append(out, s)
	}
	return out, nil
}

// Fig14a reproduces Fig. 14a: latency per packet versus the number of
// nodes, for all four protocols.
func Fig14a(r Runner, seeds int) ([]analysis.Series, error) {
	return sweepMetric(r, []float64{50, 100, 150, 200}, seeds,
		func(sc *Scenario, x float64) { sc.N = int(x); sc.Duration = 40 },
		func(res Result) float64 { return res.MeanLatency })
}

// speedUpdCell is the Figs. 14b/15b/16b cell: one protocol at one speed,
// with or without destination updates, at a 40 s horizon. The three figures
// share the exact same grid, so a campaign runs it once.
func speedUpdCell(p ProtocolName, v float64, upd bool, seed int64) Scenario {
	sc := DefaultScenario()
	sc.Protocol = p
	sc.Speed = v
	sc.LocUpdates = upd
	sc.Duration = 40
	sc.Seed = seed
	return sc
}

var sweepSpeeds = []float64{2, 4, 6, 8}

// updSweepCells is the ALERT/GPSR × {upd, no-upd} × speed × seed grid.
func updSweepCells(seeds int) []Scenario {
	var cells []Scenario
	for _, p := range []ProtocolName{ALERT, GPSR} {
		for _, upd := range []bool{true, false} {
			for _, v := range sweepSpeeds {
				for seed := 1; seed <= seeds; seed++ {
					cells = append(cells, speedUpdCell(p, v, upd, int64(seed)))
				}
			}
		}
	}
	return cells
}

// updSweepReduce walks an updSweepCells result batch in enumeration order,
// extracting one metric into per-(protocol, upd) series.
func updSweepReduce(results []Result, seeds int, metric func(Result) float64) []analysis.Series {
	var out []analysis.Series
	idx := 0
	for _, p := range []ProtocolName{ALERT, GPSR} {
		for _, upd := range []bool{true, false} {
			s := analysis.Series{Label: fmt.Sprintf("%s upd=%v", p, upd)}
			for _, v := range sweepSpeeds {
				var sample stats.Sample
				for seed := 1; seed <= seeds; seed++ {
					sample.Add(metric(results[idx]))
					idx++
				}
				s.X = append(s.X, v)
				s.Y = append(s.Y, sample.Mean())
				s.Err = append(s.Err, sample.CI())
			}
			out = append(out, s)
		}
	}
	return out
}

func fig14bTailCells(seeds int) []Scenario {
	var cells []Scenario
	for _, p := range []ProtocolName{ALARM, AO2P} {
		for _, v := range sweepSpeeds {
			for seed := 1; seed <= seeds; seed++ {
				cells = append(cells, speedUpdCell(p, v, true, int64(seed)))
			}
		}
	}
	return cells
}

// Fig14b reproduces Fig. 14b: latency per packet versus node speed, for
// ALERT and GPSR both with and without destination update (ALARM and AO2P
// ride the same update setting as "with").
func Fig14b(r Runner, seeds int) ([]analysis.Series, error) {
	head, err := r.RunBatch(updSweepCells(seeds))
	if err != nil {
		return nil, err
	}
	out := updSweepReduce(head, seeds, func(res Result) float64 { return res.MeanLatency })
	tail, err := r.RunBatch(fig14bTailCells(seeds))
	if err != nil {
		return nil, err
	}
	idx := 0
	for _, p := range []ProtocolName{ALARM, AO2P} {
		s := analysis.Series{Label: string(p)}
		for _, v := range sweepSpeeds {
			var sample stats.Sample
			for seed := 1; seed <= seeds; seed++ {
				sample.Add(tail[idx].MeanLatency)
				idx++
			}
			s.X = append(s.X, v)
			s.Y = append(s.Y, sample.Mean())
			s.Err = append(s.Err, sample.CI())
		}
		out = append(out, s)
	}
	return out, nil
}

func fig15aExtraCells(seeds int) []Scenario {
	var cells []Scenario
	for _, n := range []float64{50, 100, 150, 200} {
		for seed := 1; seed <= seeds; seed++ {
			sc := DefaultScenario()
			sc.Seed = int64(seed)
			sc.Protocol = ALARM
			sc.N = int(n)
			sc.Alarm.DisseminationPeriod = 0 // no overhead counted
			cells = append(cells, sc)
		}
	}
	return cells
}

// Fig15a reproduces Fig. 15a: hops per packet versus number of nodes for
// the four protocols, plus the "ALARM (include id dissemination hops)"
// series.
func Fig15a(r Runner, seeds int) ([]analysis.Series, error) {
	ns := []float64{50, 100, 150, 200}
	out, err := sweepMetric(r, ns, seeds,
		func(sc *Scenario, x float64) { sc.N = int(x) },
		func(res Result) float64 {
			return res.HopsPerPacket // includes ExtraHops for ALARM
		})
	if err != nil {
		return nil, err
	}
	// Add a routing-only ALARM series for contrast (dissemination is
	// what HopsPerPacket already includes; subtract it back out).
	extra, err := r.RunBatch(fig15aExtraCells(seeds))
	if err != nil {
		return nil, err
	}
	s := analysis.Series{Label: "alarm (routing only)"}
	idx := 0
	for _, n := range ns {
		var sample stats.Sample
		for seed := 1; seed <= seeds; seed++ {
			sample.Add(extra[idx].HopsPerPacket)
			idx++
		}
		s.X = append(s.X, n)
		s.Y = append(s.Y, sample.Mean())
	}
	// Relabel the swept ALARM series to make the dissemination explicit.
	for i := range out {
		if out[i].Label == string(ALARM) {
			out[i].Label = "alarm (include id dissemination hops)"
		}
	}
	return append(out, s), nil
}

// Fig15b reproduces Fig. 15b: hops per packet versus node speed, with and
// without destination update for ALERT and GPSR.
func Fig15b(r Runner, seeds int) ([]analysis.Series, error) {
	results, err := r.RunBatch(updSweepCells(seeds))
	if err != nil {
		return nil, err
	}
	return updSweepReduce(results, seeds, func(res Result) float64 { return res.HopsPerPacket }), nil
}

// Fig16a reproduces Fig. 16a: delivery rate versus number of nodes.
func Fig16a(r Runner, seeds int) ([]analysis.Series, error) {
	return sweepMetric(r, []float64{50, 100, 150, 200}, seeds,
		func(sc *Scenario, x float64) { sc.N = int(x); sc.Duration = 40 },
		func(res Result) float64 { return res.DeliveryRate })
}

// Fig16b reproduces Fig. 16b: delivery rate versus node speed, with and
// without destination update, for ALERT and GPSR.
func Fig16b(r Runner, seeds int) ([]analysis.Series, error) {
	results, err := r.RunBatch(updSweepCells(seeds))
	if err != nil {
		return nil, err
	}
	return updSweepReduce(results, seeds, func(res Result) float64 { return res.DeliveryRate }), nil
}

// fig17Configs are the Fig. 17 movement-model variants.
var fig17Configs = []struct {
	label      string
	mob        MobilityName
	groups     int
	groupRange float64
}{
	{"random waypoint", RandomWaypoint, 0, 0},
	{"group (10 groups, 150 m)", GroupMobility, 10, 150},
	{"group (5 groups, 200 m)", GroupMobility, 5, 200},
}

func fig17Cells(seeds int) []Scenario {
	var cells []Scenario
	for _, c := range fig17Configs {
		for seed := 1; seed <= seeds; seed++ {
			sc := DefaultScenario()
			sc.Seed = int64(seed)
			sc.Protocol = ALERT
			sc.Mobility = c.mob
			sc.Groups = c.groups
			sc.GroupRange = c.groupRange
			sc.Duration = 60
			cells = append(cells, sc)
		}
	}
	return cells
}

// Fig17 reproduces Fig. 17: ALERT's delay under the random waypoint model
// versus the group mobility model with 10 groups/150 m and 5 groups/200 m.
func Fig17(r Runner, seeds int) ([]analysis.Series, error) {
	results, err := r.RunBatch(fig17Cells(seeds))
	if err != nil {
		return nil, err
	}
	var out []analysis.Series
	idx := 0
	for _, c := range fig17Configs {
		var sample stats.Sample
		for seed := 1; seed <= seeds; seed++ {
			sample.Add(results[idx].MeanLatency)
			idx++
		}
		out = append(out, analysis.Series{
			Label: c.label, X: []float64{0}, Y: []float64{sample.Mean()},
		})
	}
	return out, nil
}

func energyCells(seeds int) []Scenario {
	var cells []Scenario
	for _, p := range protosAll {
		for seed := 1; seed <= seeds; seed++ {
			sc := DefaultScenario()
			sc.Seed = int64(seed)
			sc.Protocol = p
			sc.Duration = 40
			cells = append(cells, sc)
		}
	}
	return cells
}

// EnergySummary returns each protocol's mean energy per delivered packet
// (joules) over seeds as one-point series — the `figures energy` table.
func EnergySummary(r Runner, seeds int) ([]analysis.Series, error) {
	results, err := r.RunBatch(energyCells(seeds))
	if err != nil {
		return nil, err
	}
	var out []analysis.Series
	idx := 0
	for _, p := range protosAll {
		var e float64
		for seed := 1; seed <= seeds; seed++ {
			e += results[idx].EnergyPerDelivered
			idx++
		}
		out = append(out, analysis.Series{
			Label: string(p), X: []float64{0}, Y: []float64{e / float64(seeds)},
		})
	}
	return out, nil
}

// Comparison is a pairwise protocol comparison on one metric with Welch's
// t-test significance over independent seeded runs.
type Comparison struct {
	Metric string
	A, B   ProtocolName
	MeanA  float64
	MeanB  float64
	Welch  stats.WelchResult
}

func compareCells(protocols []ProtocolName, seeds int, duration float64) []Scenario {
	var cells []Scenario
	for _, p := range protocols {
		for seed := 1; seed <= seeds; seed++ {
			sc := DefaultScenario()
			sc.Seed = int64(seed)
			sc.Protocol = p
			if duration > 0 {
				sc.Duration = duration
			}
			cells = append(cells, sc)
		}
	}
	return cells
}

// CompareProtocols runs every protocol `seeds` times on the default
// scenario and tests each pair's difference on the named metrics. It backs
// the `figures compare` command: the paper's orderings stated with
// statistical confidence rather than eyeballed means.
func CompareProtocols(r Runner, protocols []ProtocolName, seeds int, duration float64) ([]Comparison, error) {
	metrics := []struct {
		name string
		get  func(Result) float64
	}{
		{"latency", func(res Result) float64 { return res.MeanLatency }},
		{"hops/packet", func(res Result) float64 { return res.HopsPerPacket }},
		{"delivery", func(res Result) float64 { return res.DeliveryRate }},
		{"route-similarity", func(res Result) float64 { return res.RouteJaccard }},
		{"energy/delivered", func(res Result) float64 { return res.EnergyPerDelivered }},
	}
	results, err := r.RunBatch(compareCells(protocols, seeds, duration))
	if err != nil {
		return nil, err
	}
	samples := map[ProtocolName]map[string]*stats.Sample{}
	idx := 0
	for _, p := range protocols {
		samples[p] = map[string]*stats.Sample{}
		for _, m := range metrics {
			samples[p][m.name] = &stats.Sample{}
		}
		for seed := 1; seed <= seeds; seed++ {
			res := results[idx]
			idx++
			for _, m := range metrics {
				samples[p][m.name].Add(m.get(res))
			}
		}
	}
	var out []Comparison
	for _, m := range metrics {
		for i := 0; i < len(protocols); i++ {
			for j := i + 1; j < len(protocols); j++ {
				a, b := protocols[i], protocols[j]
				sa, sb := samples[a][m.name], samples[b][m.name]
				out = append(out, Comparison{
					Metric: m.name,
					A:      a, B: b,
					MeanA: sa.Mean(), MeanB: sb.Mean(),
					Welch: stats.WelchT(sa, sb),
				})
			}
		}
	}
	return out, nil
}

// Figure generators: one function per evaluation figure (Figs. 10-17) plus
// the remaining-node mobility experiments. Each returns labeled series in
// the same shape the paper plots, so cmd/figures can print them and
// EXPERIMENTS.md can compare paper-vs-measured.

package experiment

import (
	"fmt"

	"alertmanet/internal/analysis"
	"alertmanet/internal/geo"
	"alertmanet/internal/mobility"
	"alertmanet/internal/rng"
	"alertmanet/internal/stats"
)

// protosAll is the comparison set of Section 5.
var protosAll = []ProtocolName{ALERT, GPSR, ALARM, AO2P}

// Fig10a reproduces Fig. 10a: cumulative actual participating nodes versus
// packets transmitted, for ALERT and GPSR at 100 and 200 nodes (ALARM and
// AO2P follow GPSR's shortest-path behaviour, as the paper notes). One S-D
// pair sends `packets` packets; curves are averaged over seeds.
func Fig10a(packets, seeds int) []analysis.Series {
	var out []analysis.Series
	for _, n := range []int{100, 200} {
		for _, p := range []ProtocolName{ALERT, GPSR} {
			sums := make([]float64, packets)
			counts := make([]int, packets)
			for seed := 1; seed <= seeds; seed++ {
				sc := DefaultScenario()
				sc.Seed = int64(seed)
				sc.Protocol = p
				sc.N = n
				sc.Pairs = 1
				sc.Packets = packets
				sc.Interval = 0.5 // keep path churn low over the burst
				sc.Duration = float64(packets)*sc.Interval + 5
				r := MustRun(sc)
				for i := 0; i < packets && i < len(r.Cumulative); i++ {
					sums[i] += float64(r.Cumulative[i])
					counts[i]++
				}
			}
			s := analysis.Series{Label: fmt.Sprintf("%s N=%d", p, n)}
			for i := 0; i < packets; i++ {
				s.X = append(s.X, float64(i+1))
				if counts[i] > 0 {
					s.Y = append(s.Y, sums[i]/float64(counts[i]))
				} else {
					s.Y = append(s.Y, 0)
				}
			}
			out = append(out, s)
		}
	}
	return out
}

// Fig10b reproduces Fig. 10b: actual participating nodes after `packets`
// packets, versus the total number of nodes, ALERT versus GPSR.
func Fig10b(packets, seeds int) []analysis.Series {
	ns := []int{50, 100, 150, 200}
	var out []analysis.Series
	for _, p := range []ProtocolName{ALERT, GPSR} {
		s := analysis.Series{Label: string(p)}
		for _, n := range ns {
			var sample stats.Sample
			for seed := 1; seed <= seeds; seed++ {
				sc := DefaultScenario()
				sc.Seed = int64(seed)
				sc.Protocol = p
				sc.N = n
				sc.Pairs = 1
				sc.Packets = packets
				sc.Interval = 0.5
				sc.Duration = float64(packets)*sc.Interval + 5
				sample.Add(float64(MustRun(sc).Participants))
			}
			s.X = append(s.X, float64(n))
			s.Y = append(s.Y, sample.Mean())
		}
		out = append(out, s)
	}
	return out
}

// Fig11 reproduces Fig. 11: the simulated number of random forwarders
// versus the number of partitions H (to compare with the analytical
// Fig. 7b line).
func Fig11(hMax, seeds int) analysis.Series {
	s := analysis.Series{Label: "ALERT mean RFs"}
	for h := 1; h <= hMax; h++ {
		var sample stats.Sample
		for seed := 1; seed <= seeds; seed++ {
			sc := DefaultScenario()
			sc.Seed = int64(seed)
			sc.Protocol = ALERT
			sc.Alert.H = h
			sc.Duration = 40
			sample.Add(MustRun(sc).MeanRFs)
		}
		s.X = append(s.X, float64(h))
		s.Y = append(s.Y, sample.Mean())
	}
	return s
}

// RemainingNodesSim measures, by pure mobility simulation, how many of the
// nodes initially inside a destination zone are still inside after each
// sample time — the simulated counterpart of Equation (15). Zones are
// centered on `dests` random node positions per seed.
func RemainingNodesSim(n, h int, speed float64, mob MobilityName,
	times []float64, dests, seeds int) []float64 {
	sc := DefaultScenario()
	sums := make([]float64, len(times))
	count := 0
	for seed := 1; seed <= seeds; seed++ {
		src := rng.New(int64(seed))
		var m mobility.Model
		switch mob {
		case GroupMobility:
			m = mobility.NewGroupMobility(sc.Field, n, sc.Groups, sc.GroupRange,
				mobility.Fixed(speed), src)
		default:
			m = mobility.NewRandomWaypoint(sc.Field, n, mobility.Fixed(speed), src)
		}
		pick := src.Split("dests")
		for di := 0; di < dests; di++ {
			d := pick.Intn(n)
			zone := geo.DestZone(sc.Field, m.Position(d, 0), h, geo.Vertical)
			initial := mobility.NodesIn(m, zone, 0)
			if len(initial) == 0 {
				continue
			}
			count++
			for ti, t := range times {
				remain := 0
				for _, id := range initial {
					if zone.Contains(m.Position(id, t)) {
						remain++
					}
				}
				sums[ti] += float64(remain)
			}
		}
	}
	out := make([]float64, len(times))
	if count == 0 {
		return out
	}
	for i := range sums {
		out[i] = sums[i] / float64(count)
	}
	return out
}

// Fig12 reproduces Fig. 12: remaining nodes in the destination zone over
// time for densities 100, 150 and 200 nodes (H = 5, v = 2 m/s).
func Fig12(times []float64, seeds int) []analysis.Series {
	var out []analysis.Series
	for _, n := range []int{100, 150, 200} {
		ys := RemainingNodesSim(n, 5, 2, RandomWaypoint, times, 5, seeds)
		s := analysis.Series{Label: fmt.Sprintf("N=%d", n), X: times, Y: ys}
		out = append(out, s)
	}
	return out
}

// Fig13a reproduces Fig. 13a: remaining nodes over time for H in {4, 5}
// and node speeds 0, 2 and 4 m/s (N = 200).
func Fig13a(times []float64, seeds int) []analysis.Series {
	var out []analysis.Series
	for _, h := range []int{4, 5} {
		for _, v := range []float64{0, 2, 4} {
			ys := RemainingNodesSim(200, h, v, RandomWaypoint, times, 5, seeds)
			out = append(out, analysis.Series{
				Label: fmt.Sprintf("H=%d v=%.0f", h, v), X: times, Y: ys,
			})
		}
	}
	return out
}

// Fig13b reproduces Fig. 13b: the node density required to keep `target`
// nodes in the destination zone after 10 s, versus node speed. Found by
// scanning density upward in steps of 25 nodes.
func Fig13b(target float64, speeds []float64, seeds int) analysis.Series {
	s := analysis.Series{Label: fmt.Sprintf("density for %.0f remaining @10s", target)}
	times := []float64{10}
	for _, v := range speeds {
		required := 0.0
		for n := 25; n <= 800; n += 25 {
			ys := RemainingNodesSim(n, 5, v, RandomWaypoint, times, 5, seeds)
			if ys[0] >= target {
				required = float64(n)
				break
			}
		}
		s.X = append(s.X, v)
		s.Y = append(s.Y, required)
	}
	return s
}

// sweepMetric runs all four protocols across a scenario sweep and extracts
// one metric per run.
func sweepMetric(xs []float64, seeds int, configure func(*Scenario, float64),
	metric func(Result) float64) []analysis.Series {
	var out []analysis.Series
	for _, p := range protosAll {
		s := analysis.Series{Label: string(p)}
		for _, x := range xs {
			sc := DefaultScenario()
			sc.Protocol = p
			configure(&sc, x)
			var sample stats.Sample
			for _, r := range mustRunParallel(sc, seeds) {
				sample.Add(metric(r))
			}
			s.X = append(s.X, x)
			s.Y = append(s.Y, sample.Mean())
			s.Err = append(s.Err, sample.CI())
		}
		out = append(out, s)
	}
	return out
}

// Fig14a reproduces Fig. 14a: latency per packet versus the number of
// nodes, for all four protocols.
func Fig14a(seeds int) []analysis.Series {
	return sweepMetric([]float64{50, 100, 150, 200}, seeds,
		func(sc *Scenario, x float64) { sc.N = int(x); sc.Duration = 40 },
		func(r Result) float64 { return r.MeanLatency })
}

// Fig14b reproduces Fig. 14b: latency per packet versus node speed, for
// ALERT and GPSR both with and without destination update (ALARM and AO2P
// ride the same update setting as "with").
func Fig14b(seeds int) []analysis.Series {
	var out []analysis.Series
	for _, p := range []ProtocolName{ALERT, GPSR} {
		for _, upd := range []bool{true, false} {
			label := fmt.Sprintf("%s upd=%v", p, upd)
			s := analysis.Series{Label: label}
			for _, v := range []float64{2, 4, 6, 8} {
				sc := DefaultScenario()
				sc.Protocol = p
				sc.Speed = v
				sc.LocUpdates = upd
				sc.Duration = 40
				var sample stats.Sample
				for _, r := range mustRunParallel(sc, seeds) {
					sample.Add(r.MeanLatency)
				}
				s.X = append(s.X, v)
				s.Y = append(s.Y, sample.Mean())
				s.Err = append(s.Err, sample.CI())
			}
			out = append(out, s)
		}
	}
	for _, p := range []ProtocolName{ALARM, AO2P} {
		s := analysis.Series{Label: string(p)}
		for _, v := range []float64{2, 4, 6, 8} {
			sc := DefaultScenario()
			sc.Protocol = p
			sc.Speed = v
			sc.Duration = 40
			var sample stats.Sample
			for _, r := range mustRunParallel(sc, seeds) {
				sample.Add(r.MeanLatency)
			}
			s.X = append(s.X, v)
			s.Y = append(s.Y, sample.Mean())
			s.Err = append(s.Err, sample.CI())
		}
		out = append(out, s)
	}
	return out
}

// Fig15a reproduces Fig. 15a: hops per packet versus number of nodes for
// the four protocols, plus the "ALARM (include id dissemination hops)"
// series.
func Fig15a(seeds int) []analysis.Series {
	ns := []float64{50, 100, 150, 200}
	out := sweepMetric(ns, seeds,
		func(sc *Scenario, x float64) { sc.N = int(x) },
		func(r Result) float64 {
			return r.HopsPerPacket // includes ExtraHops for ALARM
		})
	// Add a routing-only ALARM series for contrast (dissemination is
	// what HopsPerPacket already includes; subtract it back out).
	s := analysis.Series{Label: "alarm (routing only)"}
	for _, n := range ns {
		var sample stats.Sample
		for seed := 1; seed <= seeds; seed++ {
			sc := DefaultScenario()
			sc.Seed = int64(seed)
			sc.Protocol = ALARM
			sc.N = int(n)
			sc.Alarm.DisseminationPeriod = 0 // no overhead counted
			sample.Add(MustRun(sc).HopsPerPacket)
		}
		s.X = append(s.X, n)
		s.Y = append(s.Y, sample.Mean())
	}
	// Relabel the swept ALARM series to make the dissemination explicit.
	for i := range out {
		if out[i].Label == string(ALARM) {
			out[i].Label = "alarm (include id dissemination hops)"
		}
	}
	return append(out, s)
}

// Fig15b reproduces Fig. 15b: hops per packet versus node speed, with and
// without destination update for ALERT and GPSR.
func Fig15b(seeds int) []analysis.Series {
	var out []analysis.Series
	for _, p := range []ProtocolName{ALERT, GPSR} {
		for _, upd := range []bool{true, false} {
			s := analysis.Series{Label: fmt.Sprintf("%s upd=%v", p, upd)}
			for _, v := range []float64{2, 4, 6, 8} {
				sc := DefaultScenario()
				sc.Protocol = p
				sc.Speed = v
				sc.LocUpdates = upd
				sc.Duration = 40
				var sample stats.Sample
				for _, r := range mustRunParallel(sc, seeds) {
					sample.Add(r.HopsPerPacket)
				}
				s.X = append(s.X, v)
				s.Y = append(s.Y, sample.Mean())
				s.Err = append(s.Err, sample.CI())
			}
			out = append(out, s)
		}
	}
	return out
}

// Fig16a reproduces Fig. 16a: delivery rate versus number of nodes.
func Fig16a(seeds int) []analysis.Series {
	return sweepMetric([]float64{50, 100, 150, 200}, seeds,
		func(sc *Scenario, x float64) { sc.N = int(x); sc.Duration = 40 },
		func(r Result) float64 { return r.DeliveryRate })
}

// Fig16b reproduces Fig. 16b: delivery rate versus node speed, with and
// without destination update, for ALERT and GPSR.
func Fig16b(seeds int) []analysis.Series {
	var out []analysis.Series
	for _, p := range []ProtocolName{ALERT, GPSR} {
		for _, upd := range []bool{true, false} {
			s := analysis.Series{Label: fmt.Sprintf("%s upd=%v", p, upd)}
			for _, v := range []float64{2, 4, 6, 8} {
				sc := DefaultScenario()
				sc.Protocol = p
				sc.Speed = v
				sc.LocUpdates = upd
				sc.Duration = 40
				var sample stats.Sample
				for _, r := range mustRunParallel(sc, seeds) {
					sample.Add(r.DeliveryRate)
				}
				s.X = append(s.X, v)
				s.Y = append(s.Y, sample.Mean())
				s.Err = append(s.Err, sample.CI())
			}
			out = append(out, s)
		}
	}
	return out
}

// Fig17 reproduces Fig. 17: ALERT's delay under the random waypoint model
// versus the group mobility model with 10 groups/150 m and 5 groups/200 m.
func Fig17(seeds int) []analysis.Series {
	configs := []struct {
		label      string
		mob        MobilityName
		groups     int
		groupRange float64
	}{
		{"random waypoint", RandomWaypoint, 0, 0},
		{"group (10 groups, 150 m)", GroupMobility, 10, 150},
		{"group (5 groups, 200 m)", GroupMobility, 5, 200},
	}
	var out []analysis.Series
	for _, c := range configs {
		s := analysis.Series{Label: c.label}
		var sample stats.Sample
		for seed := 1; seed <= seeds; seed++ {
			sc := DefaultScenario()
			sc.Seed = int64(seed)
			sc.Protocol = ALERT
			sc.Mobility = c.mob
			sc.Groups = c.groups
			sc.GroupRange = c.groupRange
			sc.Duration = 60
			sample.Add(MustRun(sc).MeanLatency)
		}
		s.X = []float64{0}
		s.Y = []float64{sample.Mean()}
		out = append(out, s)
	}
	return out
}

// Comparison is a pairwise protocol comparison on one metric with Welch's
// t-test significance over independent seeded runs.
type Comparison struct {
	Metric string
	A, B   ProtocolName
	MeanA  float64
	MeanB  float64
	Welch  stats.WelchResult
}

// CompareProtocols runs every protocol `seeds` times on the default
// scenario and tests each pair's difference on the named metrics. It backs
// the `figures compare` command: the paper's orderings stated with
// statistical confidence rather than eyeballed means.
func CompareProtocols(protocols []ProtocolName, seeds int, duration float64) []Comparison {
	metrics := []struct {
		name string
		get  func(Result) float64
	}{
		{"latency", func(r Result) float64 { return r.MeanLatency }},
		{"hops/packet", func(r Result) float64 { return r.HopsPerPacket }},
		{"delivery", func(r Result) float64 { return r.DeliveryRate }},
		{"route-similarity", func(r Result) float64 { return r.RouteJaccard }},
		{"energy/delivered", func(r Result) float64 { return r.EnergyPerDelivered }},
	}
	samples := map[ProtocolName]map[string]*stats.Sample{}
	for _, p := range protocols {
		samples[p] = map[string]*stats.Sample{}
		for _, m := range metrics {
			samples[p][m.name] = &stats.Sample{}
		}
		for seed := 1; seed <= seeds; seed++ {
			sc := DefaultScenario()
			sc.Seed = int64(seed)
			sc.Protocol = p
			if duration > 0 {
				sc.Duration = duration
			}
			r := MustRun(sc)
			for _, m := range metrics {
				samples[p][m.name].Add(m.get(r))
			}
		}
	}
	var out []Comparison
	for _, m := range metrics {
		for i := 0; i < len(protocols); i++ {
			for j := i + 1; j < len(protocols); j++ {
				a, b := protocols[i], protocols[j]
				sa, sb := samples[a][m.name], samples[b][m.name]
				out = append(out, Comparison{
					Metric: m.name,
					A:      a, B: b,
					MeanA: sa.Mean(), MeanB: sb.Mean(),
					Welch: stats.WelchT(sa, sb),
				})
			}
		}
	}
	return out
}

package experiment

import (
	"runtime"
	"testing"
)

// TestShardedWorkersParallelIdentical forces the fork-join worker pool to a
// real multi-goroutine degree (the CI runner may expose a single CPU, where
// buildArena's min(shards, GOMAXPROCS) would quietly stay serial) and checks
// that genuinely concurrent world construction and position sweeps produce a
// Result byte-identical to the unsharded serial build. Run under -race this
// is also the data-race probe for every parallel phase: per-node network
// construction, walker building, posGrid evaluation and the broadcast range
// filter, across both disjoint-state mobility (random waypoint) and the
// shared-reference-trajectory model (group mobility, via Preparer).
func TestShardedWorkersParallelIdentical(t *testing.T) {
	prev := runtime.GOMAXPROCS(4)
	defer runtime.GOMAXPROCS(prev)

	base := DefaultScenario()
	base.N = 80
	base.Duration = 8
	base.Pairs = 6

	cases := []struct {
		name string
		mut  func(*Scenario)
	}{
		{"alert-rwp", func(sc *Scenario) { sc.Protocol = ALERT }},
		{"gpsr-group", func(sc *Scenario) {
			sc.Protocol = GPSR
			sc.Mobility = GroupMobility
		}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			sc := base
			tc.mut(&sc)
			serial, err := Run(sc)
			if err != nil {
				t.Fatal(err)
			}
			sc.Shards = 4
			sharded, err := Run(sc)
			if err != nil {
				t.Fatal(err)
			}
			if resultDigest(serial) != resultDigest(sharded) {
				t.Fatalf("parallel sharded run diverged from serial:\nserial:  %+v\nsharded: %+v",
					serial, sharded)
			}
		})
	}
}

// TestEffectiveShards pins the shard-count resolution order: explicit
// scenario value first, then the ALERT_SHARDS environment toggle, then 1;
// malformed and non-power-of-two env values are errors rather than silent
// fallbacks.
func TestEffectiveShards(t *testing.T) {
	sc := DefaultScenario()
	sc.Shards = 8
	t.Setenv("ALERT_SHARDS", "2")
	if k, err := effectiveShards(sc); err != nil || k != 8 {
		t.Fatalf("explicit Shards should win: got %d, %v", k, err)
	}
	sc.Shards = 0
	if k, err := effectiveShards(sc); err != nil || k != 2 {
		t.Fatalf("env should apply at Shards=0: got %d, %v", k, err)
	}
	t.Setenv("ALERT_SHARDS", "")
	if k, err := effectiveShards(sc); err != nil || k != 1 {
		t.Fatalf("unset env should mean 1: got %d, %v", k, err)
	}
	for _, bad := range []string{"3", "0", "-2", "two"} {
		t.Setenv("ALERT_SHARDS", bad)
		if _, err := effectiveShards(sc); err == nil {
			t.Errorf("ALERT_SHARDS=%q should be rejected", bad)
		}
	}
}

// TestScenarioShardsValidate: the scenario knob itself rejects negative and
// non-power-of-two counts at validation time.
func TestScenarioShardsValidate(t *testing.T) {
	for _, k := range []int{0, 1, 2, 4, 8, 16} {
		sc := DefaultScenario()
		sc.Shards = k
		if err := sc.Validate(); err != nil {
			t.Errorf("Shards=%d should validate: %v", k, err)
		}
	}
	for _, k := range []int{-1, 3, 6, 12} {
		sc := DefaultScenario()
		sc.Shards = k
		if err := sc.Validate(); err == nil {
			t.Errorf("Shards=%d should fail validation", k)
		}
	}
}

// TestScenarioShardsHashNeutral: Shards=0 marshals away, so every
// pre-sharding scenario hash, golden digest and campaign cache key is
// untouched; any non-zero value is part of the identity.
func TestScenarioShardsHashNeutral(t *testing.T) {
	a := DefaultScenario()
	b := a
	b.Shards = 0
	if a.Hash() != b.Hash() {
		t.Fatal("Shards=0 must not perturb the scenario hash")
	}
	b.Shards = 2
	if a.Hash() == b.Hash() {
		t.Fatal("non-zero Shards must be part of the scenario hash")
	}
}

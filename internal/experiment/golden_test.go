package experiment

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"testing"

	"alertmanet/internal/telemetry"
)

// update re-blesses testdata/golden.json from the current behaviour:
//
//	go test ./internal/experiment -run TestGolden -update
//
// Only do this after convincing yourself the behaviour change is intended —
// the whole point of the corpus is that refactors (like threading a
// telemetry tap through the stack) must NOT move these digests.
var update = flag.Bool("update", false, "rewrite testdata/golden.json from current behaviour")

// goldenEntry pins one protocol's end-to-end behaviour at paper defaults.
// ResultDigest hashes the full per-seed Result; StreamDigest hashes the
// complete telemetry JSONL stream (all layers + registry snapshot), which is
// sensitive to every event the run emits, in order. Sent/Delivered are
// duplicated in the clear so a mismatch gives a human a first clue.
type goldenEntry struct {
	ResultDigest string `json:"result_digest"`
	StreamDigest string `json:"stream_digest"`
	Sent         int    `json:"sent"`
	Delivered    int    `json:"delivered"`
}

const goldenPath = "testdata/golden.json"

var goldenProtocols = []ProtocolName{ALERT, GPSR, ALARM, AO2P, ZAP}

// resultDigest hashes the complete Result struct. %+v rather than JSON:
// EnergyPerDelivered is +Inf when nothing is delivered, which json.Marshal
// rejects, and %+v also covers any future field automatically.
func resultDigest(r Result) string {
	sum := sha256.Sum256([]byte(fmt.Sprintf("%+v", r)))
	return hex.EncodeToString(sum[:])
}

// goldenRun executes one paper-default run with a full telemetry tap
// writing straight into a hash, returning the entry that pins it.
func goldenRun(t *testing.T, proto ProtocolName) goldenEntry {
	return goldenRunShards(t, proto, 0)
}

// goldenRunShards is goldenRun on a field partitioned into the given number
// of event-engine shards (0 = the unsharded default).
func goldenRunShards(t *testing.T, proto ProtocolName, shards int) goldenEntry {
	t.Helper()
	sc := DefaultScenario()
	sc.Protocol = proto
	sc.Shards = shards

	h := sha256.New()
	tap := telemetry.New(h, telemetry.LayerAll)
	res, w, err := RunWorld(sc, tap)
	if err != nil {
		t.Fatalf("%s: %v", proto, err)
	}
	tap.WriteSnapshot(w.Eng.Now())
	if err := tap.Flush(); err != nil {
		t.Fatalf("%s: flush: %v", proto, err)
	}
	return goldenEntry{
		ResultDigest: resultDigest(res),
		StreamDigest: hex.EncodeToString(h.Sum(nil)),
		Sent:         res.Sent,
		Delivered:    res.Delivered,
	}
}

// TestGoldenRuns locks the exact behaviour of all five protocols at the
// paper's evaluation defaults (seed 1). Any change to simulation order,
// RNG consumption, event scheduling or telemetry encoding moves a digest
// and fails here; if the change is intended, re-bless with -update.
func TestGoldenRuns(t *testing.T) {
	got := make(map[string]goldenEntry, len(goldenProtocols))
	for _, proto := range goldenProtocols {
		got[string(proto)] = goldenRun(t, proto)
	}

	if *update {
		if err := os.MkdirAll(filepath.Dir(goldenPath), 0o755); err != nil {
			t.Fatal(err)
		}
		data, err := json.MarshalIndent(got, "", "  ")
		if err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(goldenPath, append(data, '\n'), 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("re-blessed %s", goldenPath)
		return
	}

	data, err := os.ReadFile(goldenPath)
	if err != nil {
		t.Fatalf("read golden corpus (run with -update to create): %v", err)
	}
	var want map[string]goldenEntry
	if err := json.Unmarshal(data, &want); err != nil {
		t.Fatalf("parse %s: %v", goldenPath, err)
	}
	for _, proto := range goldenProtocols {
		name := string(proto)
		w, ok := want[name]
		if !ok {
			t.Errorf("%s: missing from golden corpus; re-bless with -update", name)
			continue
		}
		g := got[name]
		if g.Sent != w.Sent || g.Delivered != w.Delivered {
			t.Errorf("%s: sent/delivered %d/%d, golden %d/%d",
				name, g.Sent, g.Delivered, w.Sent, w.Delivered)
		}
		if g.ResultDigest != w.ResultDigest {
			t.Errorf("%s: Result digest %s, golden %s — run behaviour changed",
				name, g.ResultDigest, w.ResultDigest)
		}
		if g.StreamDigest != w.StreamDigest {
			t.Errorf("%s: telemetry stream digest %s, golden %s — event stream changed",
				name, g.StreamDigest, w.StreamDigest)
		}
	}
}

// TestGoldenShardInvariance is the sharded engine's determinism contract,
// enforced against the committed corpus rather than a fresh baseline: every
// protocol at paper defaults must produce the SAME Result digest and the
// SAME telemetry stream digest for 2, 4 and 8 shards as the unsharded
// golden entries. The corpus is deliberately NOT re-blessed for sharding —
// partitioning the field is an execution strategy, not a behaviour change.
func TestGoldenShardInvariance(t *testing.T) {
	data, err := os.ReadFile(goldenPath)
	if err != nil {
		t.Fatalf("read golden corpus: %v", err)
	}
	var want map[string]goldenEntry
	if err := json.Unmarshal(data, &want); err != nil {
		t.Fatalf("parse %s: %v", goldenPath, err)
	}
	for _, proto := range goldenProtocols {
		w, ok := want[string(proto)]
		if !ok {
			t.Fatalf("%s: missing from golden corpus", proto)
		}
		for _, shards := range []int{2, 4, 8} {
			g := goldenRunShards(t, proto, shards)
			if g.ResultDigest != w.ResultDigest {
				t.Errorf("%s @ %d shards: Result digest %s, golden %s — sharding changed behaviour",
					proto, shards, g.ResultDigest, w.ResultDigest)
			}
			if g.StreamDigest != w.StreamDigest {
				t.Errorf("%s @ %d shards: stream digest %s, golden %s — sharding changed the event stream",
					proto, shards, g.StreamDigest, w.StreamDigest)
			}
		}
	}
}

// TestGoldenStreamStable is the same-process determinism half of the
// contract: two identical runs in one process must produce byte-identical
// telemetry streams and identical Results. (TestGoldenRuns extends this
// across processes and machines via the committed digests.)
func TestGoldenStreamStable(t *testing.T) {
	a := goldenRun(t, ALERT)
	b := goldenRun(t, ALERT)
	if a != b {
		t.Fatalf("same-seed runs diverged:\n%+v\n%+v", a, b)
	}
}

// TestGoldenTelemetryInert: a run with the tap attached must produce the
// same Result as one without — observation cannot perturb the experiment.
func TestGoldenTelemetryInert(t *testing.T) {
	sc := DefaultScenario()
	sc.Protocol = ALERT

	plain, err := Run(sc)
	if err != nil {
		t.Fatal(err)
	}
	tap := telemetry.New(discard{}, telemetry.LayerAll)
	tapped, _, err := RunWorld(sc, tap)
	if err != nil {
		t.Fatal(err)
	}
	if resultDigest(plain) != resultDigest(tapped) {
		t.Fatalf("telemetry perturbed the run:\nplain:  %+v\ntapped: %+v", plain, tapped)
	}
}

type discard struct{}

func (discard) Write(p []byte) (int, error) { return len(p), nil }

// Package experiment is the evaluation harness: it assembles a simulated
// MANET (Section 5.2's parameters are the defaults), drives the CBR
// workload over randomly chosen S-D pairs, runs one of the four protocols
// (ALERT, GPSR, ALARM, AO2P), and aggregates the paper's metrics over
// independent seeded runs with 95% confidence intervals.
package experiment

import (
	"fmt"
	"math"
	"os"
	"runtime"
	"sort"
	"sync"

	"alertmanet/internal/alarm"
	"alertmanet/internal/ao2p"
	"alertmanet/internal/core"
	"alertmanet/internal/crypt"
	"alertmanet/internal/geo"
	"alertmanet/internal/gpsr"
	"alertmanet/internal/locservice"
	"alertmanet/internal/medium"
	"alertmanet/internal/metrics"
	"alertmanet/internal/mobility"
	"alertmanet/internal/node"
	"alertmanet/internal/rng"
	"alertmanet/internal/sim"
	"alertmanet/internal/stats"
	"alertmanet/internal/zap"
)

// ProtocolName selects the routing protocol under test.
type ProtocolName string

// The four protocols of the evaluation.
const (
	ALERT ProtocolName = "alert"
	GPSR  ProtocolName = "gpsr"
	ALARM ProtocolName = "alarm"
	AO2P  ProtocolName = "ao2p"
	// ZAP is an additional baseline beyond the paper's comparison set:
	// destination cloaking with zone flooding [13], used by the
	// Section 3.3 trade-off experiment.
	ZAP ProtocolName = "zap"
)

// WorkloadName selects the traffic model.
type WorkloadName string

// Traffic models: the paper's constant-bit-rate stream, a Poisson process
// with the same mean rate, and an on/off burst source (multimedia frames
// arrive in talkspurts, not on a metronome).
const (
	CBR     WorkloadName = "cbr"
	Poisson WorkloadName = "poisson"
	Burst   WorkloadName = "burst"
)

// MobilityName selects the movement model (Section 5.1).
type MobilityName string

// Movement models.
const (
	RandomWaypoint MobilityName = "rwp"
	GroupMobility  MobilityName = "group"
	Static         MobilityName = "static"
	// NS2Trace replays a recorded NS-2 setdest movement script
	// (Scenario.NS2TracePath).
	NS2Trace MobilityName = "ns2"
)

// Scenario is one simulation configuration. DefaultScenario gives the
// paper's Section 5.2 settings.
type Scenario struct {
	Seed     int64
	Protocol ProtocolName

	N     int
	Field geo.Rect
	Speed float64

	Mobility   MobilityName
	Groups     int
	GroupRange float64
	// NS2TracePath, when set with Mobility == NS2Trace, replays an NS-2
	// setdest movement script instead of a synthetic model.
	NS2TracePath string

	Duration float64 // seconds of simulated time
	Pairs    int     // concurrent S-D pairs
	Interval float64 // seconds between packets of one pair
	Packets  int     // if > 0, cap packets per pair
	// Workload selects the traffic model; CBR is the paper's.
	Workload WorkloadName

	PacketSize    int
	LossRate      float64
	HelloInterval float64

	LocUpdates  bool
	LocInterval float64

	Alert core.Config
	Ao2p  ao2p.Config
	Alarm alarm.Config
	Gpsr  gpsr.AppConfig
	Zap   zap.Config

	Costs crypt.CostModel
}

// DefaultScenario returns the paper's evaluation defaults: 1,000 m square
// field, 200 nodes at 2 m/s random waypoint, 10 S-D pairs sending a 512 B
// packet every 2 s for 100 s, destination updates on.
func DefaultScenario() Scenario {
	alertCfg := core.DefaultConfig()
	// The paper's latency metric charges per-packet symmetric crypto
	// only; session key establishment lives in the untimed handshake.
	alertCfg.ChargeSessionSetup = false
	return Scenario{
		Seed:          1,
		Protocol:      ALERT,
		N:             200,
		Field:         geo.Rect{Min: geo.Point{X: 0, Y: 0}, Max: geo.Point{X: 1000, Y: 1000}},
		Speed:         2,
		Mobility:      RandomWaypoint,
		Groups:        10,
		GroupRange:    150,
		Duration:      100,
		Pairs:         10,
		Interval:      2,
		PacketSize:    512,
		LossRate:      0,
		HelloInterval: 1,
		LocUpdates:    true,
		LocInterval:   2,
		Alert:         alertCfg,
		Ao2p:          ao2p.DefaultConfig(),
		Alarm:         alarm.DefaultConfig(),
		Gpsr:          gpsr.DefaultAppConfig(),
		Zap:           zap.DefaultConfig(),
		Costs:         crypt.DefaultCostModel(),
	}
}

// Proto is the common protocol surface the harness drives.
type Proto interface {
	Send(src, dst medium.NodeID, data []byte) *metrics.PacketRecord
	Collector() *metrics.Collector
}

// World is one fully assembled simulation.
type World struct {
	Scenario Scenario
	Eng      *sim.Engine
	Mob      mobility.Model
	Med      *medium.Medium
	Net      *node.Network
	Loc      *locservice.Service
	Proto    Proto
	// Alert is non-nil when Scenario.Protocol == ALERT.
	Alert *core.Protocol
	// Rand is the workload random stream.
	Rand *rng.Source
}

// Build assembles a World from a scenario without starting any traffic.
func Build(sc Scenario) *World {
	src := rng.New(sc.Seed)
	eng := sim.NewEngine()

	var mob mobility.Model
	switch sc.Mobility {
	case NS2Trace:
		f, err := os.Open(sc.NS2TracePath)
		if err != nil {
			panic(fmt.Sprintf("experiment: open NS-2 trace: %v", err))
		}
		tm, err := mobility.ParseNS2(f, sc.Field)
		f.Close()
		if err != nil {
			panic(fmt.Sprintf("experiment: parse NS-2 trace: %v", err))
		}
		mob = tm
		sc.N = tm.N()
	case Static:
		mob = mobility.NewStatic(sc.Field, sc.N, src)
	case GroupMobility:
		mob = mobility.NewGroupMobility(sc.Field, sc.N, sc.Groups, sc.GroupRange,
			mobility.Fixed(sc.Speed), src)
	case RandomWaypoint:
		mob = mobility.NewRandomWaypoint(sc.Field, sc.N, mobility.Fixed(sc.Speed), src)
	default:
		panic(fmt.Sprintf("experiment: unknown mobility %q", sc.Mobility))
	}

	par := medium.DefaultParams()
	par.LossRate = sc.LossRate
	if sc.HelloInterval > 0 {
		par.HelloInterval = sc.HelloInterval
	}
	med := medium.New(eng, mob, par, src)
	net := node.NewNetwork(eng, med, crypt.NewFastSuite(src), sc.Costs,
		node.DefaultConfig(), src)
	loc := locservice.New(net, locservice.Config{
		UpdateInterval: sc.LocInterval,
		UpdatesEnabled: sc.LocUpdates,
	})

	w := &World{
		Scenario: sc, Eng: eng, Mob: mob, Med: med, Net: net, Loc: loc,
		Rand: src.Split("workload"),
	}
	switch sc.Protocol {
	case ALERT:
		cfg := sc.Alert
		cfg.PacketSize = sc.PacketSize
		p := core.New(net, loc, cfg, src)
		w.Alert = p
		w.Proto = p
	case GPSR:
		cfg := sc.Gpsr
		cfg.PacketSize = sc.PacketSize
		w.Proto = gpsr.NewApp(net, loc, cfg)
	case ALARM:
		cfg := sc.Alarm
		cfg.PacketSize = sc.PacketSize
		w.Proto = alarm.New(net, loc, cfg)
	case AO2P:
		cfg := sc.Ao2p
		cfg.PacketSize = sc.PacketSize
		w.Proto = ao2p.New(net, loc, cfg, src)
	case ZAP:
		cfg := sc.Zap
		cfg.PacketSize = sc.PacketSize
		w.Proto = zap.New(net, loc, cfg, src)
	default:
		panic(fmt.Sprintf("experiment: unknown protocol %q", sc.Protocol))
	}
	return w
}

// Pair is one S-D communication pair.
type Pair struct {
	S, D medium.NodeID
}

// ChoosePairs draws the scenario's random S-D pairs.
func (w *World) ChoosePairs() []Pair {
	pairs := make([]Pair, 0, w.Scenario.Pairs)
	for len(pairs) < w.Scenario.Pairs {
		s := medium.NodeID(w.Rand.Intn(w.Scenario.N))
		d := medium.NodeID(w.Rand.Intn(w.Scenario.N))
		if s != d {
			pairs = append(pairs, Pair{S: s, D: d})
		}
	}
	return pairs
}

// StartWorkload schedules the scenario's traffic model for each pair until
// Duration (or Packets per pair): CBR sends every Interval seconds; Poisson
// draws exponential gaps with mean Interval; Burst alternates exponential
// on-periods (packets every Interval/4) with exponential off-periods,
// keeping the same long-run mean rate.
func (w *World) StartWorkload(pairs []Pair) {
	payload := make([]byte, 64)
	w.Rand.Read(payload)
	for i, pr := range pairs {
		pr := pr
		src := w.Rand.SplitIndex("pair", i)
		switch w.Scenario.Workload {
		case Poisson:
			w.startPoisson(pr, payload, src)
		case Burst:
			w.startBurst(pr, payload, src)
		default:
			w.startCBR(pr, payload, src)
		}
	}
}

func (w *World) startCBR(pr Pair, payload []byte, src *rng.Source) {
	offset := src.Uniform(0, w.Scenario.Interval/2)
	sent := 0
	var stop func()
	stop = w.Eng.Ticker(offset, w.Scenario.Interval, func(sim.Time) {
		if w.Scenario.Packets > 0 && sent >= w.Scenario.Packets {
			stop()
			return
		}
		sent++
		w.Proto.Send(pr.S, pr.D, payload)
	})
}

func (w *World) startPoisson(pr Pair, payload []byte, src *rng.Source) {
	sent := 0
	var next func()
	next = func() {
		if w.Eng.Now() >= w.Scenario.Duration {
			return
		}
		if w.Scenario.Packets > 0 && sent >= w.Scenario.Packets {
			return
		}
		sent++
		w.Proto.Send(pr.S, pr.D, payload)
		w.Eng.Schedule(src.Exponential(w.Scenario.Interval), next)
	}
	w.Eng.Schedule(src.Exponential(w.Scenario.Interval), next)
}

func (w *World) startBurst(pr Pair, payload []byte, src *rng.Source) {
	// Mean on = mean off, so packets at Interval/4 within bursts halve to
	// a long-run rate of one per Interval/2... we scale the on-rate so the
	// long-run mean matches CBR: on fraction 1/2 at Interval/2 spacing.
	const meanBurst = 4.0 // seconds of talkspurt
	sent := 0
	var onPhase, offPhase func()
	onPhase = func() {
		if w.Eng.Now() >= w.Scenario.Duration {
			return
		}
		end := w.Eng.Now() + src.Exponential(meanBurst)
		var tick func()
		tick = func() {
			if w.Eng.Now() >= w.Scenario.Duration ||
				(w.Scenario.Packets > 0 && sent >= w.Scenario.Packets) {
				return
			}
			if w.Eng.Now() >= end {
				offPhase()
				return
			}
			sent++
			w.Proto.Send(pr.S, pr.D, payload)
			w.Eng.Schedule(w.Scenario.Interval/2, tick)
		}
		tick()
	}
	offPhase = func() {
		if w.Eng.Now() >= w.Scenario.Duration {
			return
		}
		w.Eng.Schedule(src.Exponential(meanBurst), onPhase)
	}
	w.Eng.Schedule(src.Uniform(0, w.Scenario.Interval), onPhase)
}

// EnergyModel converts counted work (radio bytes and cryptographic
// operations) into joules. The defaults take WaveLAN-class radio costs and
// the paper's reference [26] ratio — a public-key operation costs hundreds
// of times a symmetric one.
type EnergyModel struct {
	TxPerByte float64 // J per transmitted byte
	RxPerByte float64 // J per received byte
	SymOp     float64 // J per symmetric encryption/decryption
	PubOp     float64 // J per public-key operation
}

// DefaultEnergyModel returns the calibration used by the energy figures:
// transmission plus computation energy. Reception/overhearing is excluded
// (RxPerByte = 0), the common convention in MANET protocol energy analyses
// — in a broadcast medium every node in range decodes every frame
// regardless of protocol, so reception costs are workload-independent
// background; set RxPerByte to study them.
func DefaultEnergyModel() EnergyModel {
	return EnergyModel{
		TxPerByte: 1.0e-6,
		RxPerByte: 0,
		SymOp:     50e-6,
		PubOp:     15e-3, // 300x symmetric, within [26]'s "hundreds of times"
	}
}

// Result holds one run's metrics.
type Result struct {
	Sent          int
	DeliveryRate  float64
	MeanLatency   float64
	HopsPerPacket float64
	MeanRFs       float64
	Participants  int
	Cumulative    []int
	RouteJaccard  float64
	// EnergyJoules is the run's total radio + crypto energy;
	// EnergyPerDelivered divides it by delivered packets (Inf if none).
	EnergyJoules       float64
	EnergyPerDelivered float64
	// LatencyP50/P95/P99 are end-to-end delay percentiles over delivered
	// packets, and Jitter is the standard deviation of delay — the
	// quantities a multimedia stream actually experiences (the paper's
	// Section 1 motivation).
	LatencyP50 float64
	LatencyP95 float64
	LatencyP99 float64
	Jitter     float64
	// LoadGini is the Gini coefficient of per-node transmission counts:
	// 0 means perfectly even relay load, 1 means one node carries
	// everything. ALERT's random forwarders spread the battery drain that
	// shortest-path routing concentrates on a few relays.
	LoadGini float64
}

// Run builds the world, drives the workload, and collects metrics.
func Run(sc Scenario) Result {
	w := Build(sc)
	pairs := w.ChoosePairs()
	w.StartWorkload(pairs)
	// Let in-flight packets finish after the last send.
	w.Eng.RunUntil(sc.Duration + 10)
	return w.Collect(pairs)
}

// Collect summarizes the collector into a Result.
func (w *World) Collect(pairs []Pair) Result {
	col := w.Proto.Collector()
	res := Result{
		Sent:          col.Sent(),
		DeliveryRate:  col.DeliveryRate(),
		MeanLatency:   col.MeanLatency(),
		HopsPerPacket: col.HopsPerPacket(),
		MeanRFs:       col.MeanRFs(),
		Participants:  col.Participants(),
		Cumulative:    col.CumulativeParticipants(),
	}
	res.RouteJaccard = routeJaccard(col, pairs)
	var lat stats.Sample
	for _, r := range col.Records() {
		if r.Delivered {
			lat.Add(r.Latency())
		}
	}
	res.LatencyP50 = lat.Quantile(0.50)
	res.LatencyP95 = lat.Quantile(0.95)
	res.LatencyP99 = lat.Quantile(0.99)
	res.Jitter = lat.StdDev()
	em := DefaultEnergyModel()
	mc := w.Med.Counters()
	res.EnergyJoules = float64(mc.TxBytes)*em.TxPerByte +
		float64(mc.RxBytes)*em.RxPerByte +
		float64(w.Net.Ops.Sym)*em.SymOp +
		float64(w.Net.Ops.Pub)*em.PubOp
	delivered := float64(res.Sent) * res.DeliveryRate
	if delivered > 0 {
		res.EnergyPerDelivered = res.EnergyJoules / delivered
	} else {
		res.EnergyPerDelivered = math.Inf(1)
	}
	res.LoadGini = gini(w.Med.TxByNode())
	return res
}

// gini computes the Gini coefficient of non-negative counts.
func gini(counts []uint64) float64 {
	n := len(counts)
	if n == 0 {
		return 0
	}
	sorted := make([]float64, n)
	total := 0.0
	for i, c := range counts {
		sorted[i] = float64(c)
		total += float64(c)
	}
	if total == 0 {
		return 0
	}
	sort.Float64s(sorted)
	// G = (2*sum(i*x_i) / (n*sum(x))) - (n+1)/n with 1-based i.
	weighted := 0.0
	for i, x := range sorted {
		weighted += float64(i+1) * x
	}
	return 2*weighted/(float64(n)*total) - float64(n+1)/float64(n)
}

// routeJaccard averages consecutive-packet relay-set similarity per pair.
func routeJaccard(col *metrics.Collector, pairs []Pair) float64 {
	byPair := map[Pair][][]medium.NodeID{}
	for _, r := range col.Records() {
		if !r.Delivered {
			continue
		}
		p := Pair{S: r.Src, D: r.Dst}
		byPair[p] = append(byPair[p], r.Path)
	}
	total, n := 0.0, 0
	for _, routes := range byPair {
		for i := 1; i < len(routes); i++ {
			total += jaccardIDs(routes[i-1], routes[i])
			n++
		}
	}
	if n == 0 {
		return 0
	}
	return total / float64(n)
}

func jaccardIDs(a, b []medium.NodeID) float64 {
	sa := map[medium.NodeID]struct{}{}
	for _, id := range a {
		sa[id] = struct{}{}
	}
	sb := map[medium.NodeID]struct{}{}
	for _, id := range b {
		sb[id] = struct{}{}
	}
	inter := 0
	for id := range sa {
		if _, ok := sb[id]; ok {
			inter++
		}
	}
	union := len(sa) + len(sb) - inter
	if union == 0 {
		return 1
	}
	return float64(inter) / float64(union)
}

// Aggregate summarizes a metric over independent runs.
type Aggregate struct {
	DeliveryRate  stats.Summary
	MeanLatency   stats.Summary
	HopsPerPacket stats.Summary
	MeanRFs       stats.Summary
	Participants  stats.Summary
	RouteJaccard  stats.Summary
}

// RunParallel executes the scenario under seeds different seeds (1..seeds)
// concurrently — every run owns its engine, random streams and world, so
// they are fully independent — and returns the results in seed order, which
// keeps all downstream aggregation deterministic.
func RunParallel(sc Scenario, seeds int) []Result {
	results := make([]Result, seeds)
	workers := runtime.GOMAXPROCS(0)
	if workers > seeds {
		workers = seeds
	}
	var wg sync.WaitGroup
	next := make(chan int)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range next {
				run := sc
				run.Seed = int64(i + 1)
				results[i] = Run(run)
			}
		}()
	}
	for i := 0; i < seeds; i++ {
		next <- i
	}
	close(next)
	wg.Wait()
	return results
}

// RunSeeds runs the scenario under `seeds` different seeds (the paper uses
// 30) and aggregates with 95% confidence intervals.
func RunSeeds(sc Scenario, seeds int) Aggregate {
	results := RunParallel(sc, seeds)

	var del, lat, hops, rfs, parts, jac stats.Sample
	for _, r := range results {
		del.Add(r.DeliveryRate)
		lat.Add(r.MeanLatency)
		hops.Add(r.HopsPerPacket)
		rfs.Add(r.MeanRFs)
		parts.Add(float64(r.Participants))
		jac.Add(r.RouteJaccard)
	}
	return Aggregate{
		DeliveryRate:  del.Summarize(),
		MeanLatency:   lat.Summarize(),
		HopsPerPacket: hops.Summarize(),
		MeanRFs:       rfs.Summarize(),
		Participants:  parts.Summarize(),
		RouteJaccard:  jac.Summarize(),
	}
}

// Package experiment is the evaluation harness: it assembles a simulated
// MANET (Section 5.2's parameters are the defaults), drives the CBR
// workload over randomly chosen S-D pairs, runs one of the four protocols
// (ALERT, GPSR, ALARM, AO2P), and aggregates the paper's metrics over
// independent seeded runs with 95% confidence intervals.
package experiment

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"math"
	"os"
	"runtime"
	"sort"
	"strconv"
	"sync"

	"alertmanet/internal/alarm"
	"alertmanet/internal/ao2p"
	"alertmanet/internal/core"
	"alertmanet/internal/crypt"
	"alertmanet/internal/geo"
	"alertmanet/internal/gpsr"
	"alertmanet/internal/locservice"
	"alertmanet/internal/medium"
	"alertmanet/internal/metrics"
	"alertmanet/internal/mobility"
	"alertmanet/internal/node"
	"alertmanet/internal/rng"
	"alertmanet/internal/sim"
	"alertmanet/internal/stats"
	"alertmanet/internal/telemetry"
	"alertmanet/internal/zap"
)

// ProtocolName selects the routing protocol under test.
type ProtocolName string

// The four protocols of the evaluation.
const (
	ALERT ProtocolName = "alert"
	GPSR  ProtocolName = "gpsr"
	ALARM ProtocolName = "alarm"
	AO2P  ProtocolName = "ao2p"
	// ZAP is an additional baseline beyond the paper's comparison set:
	// destination cloaking with zone flooding [13], used by the
	// Section 3.3 trade-off experiment.
	ZAP ProtocolName = "zap"
)

// WorkloadName selects the traffic model.
type WorkloadName string

// Traffic models: the paper's constant-bit-rate stream, a Poisson process
// with the same mean rate, and an on/off burst source (multimedia frames
// arrive in talkspurts, not on a metronome).
const (
	CBR     WorkloadName = "cbr"
	Poisson WorkloadName = "poisson"
	Burst   WorkloadName = "burst"
)

// MobilityName selects the movement model (Section 5.1).
type MobilityName string

// Movement models.
const (
	RandomWaypoint MobilityName = "rwp"
	GroupMobility  MobilityName = "group"
	Static         MobilityName = "static"
	// NS2Trace replays a recorded NS-2 setdest movement script
	// (Scenario.NS2TracePath).
	NS2Trace MobilityName = "ns2"
)

// Scenario is one simulation configuration. DefaultScenario gives the
// paper's Section 5.2 settings.
type Scenario struct {
	Seed     int64
	Protocol ProtocolName

	N     int
	Field geo.Rect
	Speed float64

	Mobility   MobilityName
	Groups     int
	GroupRange float64
	// NS2TracePath, when set with Mobility == NS2Trace, replays an NS-2
	// setdest movement script instead of a synthetic model.
	NS2TracePath string

	Duration float64 // seconds of simulated time; no traffic sends after it
	// DrainTime is how long the run keeps executing after Duration so
	// in-flight packets can finish; nothing sends during the drain.
	DrainTime float64
	Pairs     int     // concurrent S-D pairs
	Interval  float64 // seconds between packets of one pair
	Packets   int     // if > 0, cap packets per pair
	// Workload selects the traffic model; CBR is the paper's.
	Workload WorkloadName

	PacketSize    int
	LossRate      float64
	HelloInterval float64
	// MaxEvents, when non-zero, bounds the engine's event budget: a run
	// whose event count exceeds it fails with sim.ErrMaxEvents instead of
	// hanging — the guard rail for fuzzed or adversarial scenarios.
	MaxEvents uint64
	// Shards partitions the event engine into this many spatial shards by
	// recursive bisection of the field (must be a power of two; same seed
	// produces byte-identical results for any value). 0, the default,
	// means single-shard and is omitted from the scenario hash, so
	// pre-shard result stores and caches stay valid; the ALERT_SHARDS
	// environment variable supplies a run-time default for scenarios that
	// leave it 0 without perturbing their hash.
	Shards int `json:",omitempty"`
	// NoARQ disables the medium's link-layer ACK/retransmission (sets
	// medium.Params.Retries to 0), reproducing the fire-and-forget
	// channel of the pre-ARQ harness for before/after comparisons.
	NoARQ bool

	LocUpdates  bool
	LocInterval float64

	Alert core.Config
	Ao2p  ao2p.Config
	Alarm alarm.Config
	Gpsr  gpsr.AppConfig
	Zap   zap.Config

	Costs crypt.CostModel
}

// DefaultScenario returns the paper's evaluation defaults: 1,000 m square
// field, 200 nodes at 2 m/s random waypoint, 10 S-D pairs sending a 512 B
// packet every 2 s for 100 s, destination updates on.
func DefaultScenario() Scenario {
	alertCfg := core.DefaultConfig()
	// The paper's latency metric charges per-packet symmetric crypto
	// only; session key establishment lives in the untimed handshake.
	alertCfg.ChargeSessionSetup = false
	return Scenario{
		Seed:          1,
		Protocol:      ALERT,
		N:             200,
		Field:         geo.Rect{Min: geo.Point{X: 0, Y: 0}, Max: geo.Point{X: 1000, Y: 1000}},
		Speed:         2,
		Mobility:      RandomWaypoint,
		Groups:        10,
		GroupRange:    150,
		Duration:      100,
		DrainTime:     10,
		Pairs:         10,
		Interval:      2,
		PacketSize:    512,
		LossRate:      0,
		HelloInterval: 1,
		LocUpdates:    true,
		LocInterval:   2,
		Alert:         alertCfg,
		Ao2p:          ao2p.DefaultConfig(),
		Alarm:         alarm.DefaultConfig(),
		Gpsr:          gpsr.DefaultAppConfig(),
		Zap:           zap.DefaultConfig(),
		Costs:         crypt.DefaultCostModel(),
	}
}

// Validate checks that the scenario describes a runnable experiment. Build,
// Run and RunSeeds call it, so a bad configuration surfaces as an error
// before any simulation state exists.
func (sc Scenario) Validate() error {
	switch sc.Protocol {
	case ALERT, GPSR, ALARM, AO2P, ZAP:
	default:
		return fmt.Errorf("experiment: unknown protocol %q", sc.Protocol)
	}
	switch sc.Workload {
	case "", CBR, Poisson, Burst: // "" means CBR, the paper's model
	default:
		return fmt.Errorf("experiment: unknown workload %q", sc.Workload)
	}
	switch sc.Mobility {
	case NS2Trace:
		if sc.NS2TracePath == "" {
			return fmt.Errorf("experiment: mobility %q requires NS2TracePath", sc.Mobility)
		}
	case RandomWaypoint, GroupMobility, Static:
		// A trace overrides N; synthetic models need nodes to place.
		if sc.N < 2 {
			return fmt.Errorf("experiment: need at least 2 nodes, got %d", sc.N)
		}
	default:
		return fmt.Errorf("experiment: unknown mobility %q", sc.Mobility)
	}
	if sc.Field.Empty() {
		return fmt.Errorf("experiment: empty field %v", sc.Field)
	}
	if sc.Duration <= 0 {
		return fmt.Errorf("experiment: duration must be positive, got %v", sc.Duration)
	}
	if sc.DrainTime < 0 {
		return fmt.Errorf("experiment: drain time must be non-negative, got %v", sc.DrainTime)
	}
	if sc.Interval <= 0 {
		return fmt.Errorf("experiment: send interval must be positive, got %v", sc.Interval)
	}
	if sc.Pairs < 1 {
		return fmt.Errorf("experiment: need at least one S-D pair, got %d", sc.Pairs)
	}
	if sc.Mobility != NS2Trace && sc.Pairs > sc.N*(sc.N-1) {
		return fmt.Errorf("experiment: %d distinct pairs impossible with %d nodes", sc.Pairs, sc.N)
	}
	if sc.Packets < 0 {
		return fmt.Errorf("experiment: packet cap must be non-negative, got %d", sc.Packets)
	}
	if sc.Speed < 0 {
		return fmt.Errorf("experiment: speed must be non-negative, got %v", sc.Speed)
	}
	if sc.LossRate < 0 || sc.LossRate > 1 {
		return fmt.Errorf("experiment: loss rate must be in [0,1], got %v", sc.LossRate)
	}
	if sc.Shards < 0 || (sc.Shards > 0 && sc.Shards&(sc.Shards-1) != 0) {
		return fmt.Errorf("experiment: shard count must be a power of two, got %d", sc.Shards)
	}
	return nil
}

// Hash returns a hex SHA-256 content hash of the full scenario
// configuration — the identity a telemetry run manifest records, so a JSONL
// stream can be matched back to exactly what was simulated.
func (sc Scenario) Hash() string {
	// Scenario is a plain data struct: every field (including the nested
	// protocol configs) is JSON-marshalable, so this cannot fail.
	buf, err := json.Marshal(sc)
	if err != nil {
		//lint:allowpanic a non-marshalable Scenario is a compile-time-shape bug, not a runtime condition
		panic(fmt.Sprintf("experiment: hash scenario: %v", err))
	}
	sum := sha256.Sum256(buf)
	return hex.EncodeToString(sum[:])
}

// Proto is the common protocol surface the harness drives. Send's error
// reports a failure to even launch the packet (ALERT's session-key or
// source-zone encryption being rejected by the destination key); the
// metrics record is completed as undelivered in that case, so harness code
// that only aggregates metrics may ignore it.
type Proto interface {
	Send(src, dst medium.NodeID, data []byte) (*metrics.PacketRecord, error)
	Collector() *metrics.Collector
}

// World is one fully assembled simulation.
type World struct {
	Scenario Scenario
	Eng      *sim.Engine
	Mob      mobility.Model
	Med      *medium.Medium
	Net      *node.Network
	Loc      *locservice.Service
	Proto    Proto
	// Alert is non-nil when Scenario.Protocol == ALERT.
	Alert *core.Protocol
	// Rand is the workload random stream.
	Rand *rng.Source
	// Tap is the telemetry tap attached by EnableTelemetry (nil when
	// telemetry is off).
	Tap *telemetry.Tap
}

// EnableTelemetry threads one tap through every instrumented layer of the
// world: engine, medium, router, protocol (ALERT's RF/zone events), crypto
// charges and the metrics collector. Call it after Build and before any
// traffic; a nil tap is a no-op, leaving every layer on its zero-cost
// disabled path.
func (w *World) EnableTelemetry(tap *telemetry.Tap) {
	if tap == nil {
		return
	}
	w.Tap = tap
	w.Eng.SetTap(tap)
	w.Med.SetTap(tap)
	w.Net.SetTap(tap)
	if w.Alert != nil {
		w.Alert.SetTap(tap) // wires the router tap too
	} else if r := w.Router(); r != nil {
		r.SetTap(tap)
	}
	w.Proto.Collector().SetTap(tap, w.Eng.Now)
}

// Build assembles a World from a scenario without starting any traffic.
// The scenario is validated first; an invalid one returns an error rather
// than a half-built world.
func Build(sc Scenario) (*World, error) {
	return buildArena(sc, nil)
}

// effectiveShards resolves the shard count for a run: an explicit
// Scenario.Shards wins; otherwise the ALERT_SHARDS environment variable
// applies (letting CI re-run an unmodified suite sharded without touching
// any scenario hash); unset means a single shard.
func effectiveShards(sc Scenario) (int, error) {
	if sc.Shards > 0 {
		return sc.Shards, nil
	}
	env := os.Getenv("ALERT_SHARDS")
	if env == "" {
		return 1, nil
	}
	k, err := strconv.Atoi(env)
	if err != nil || k < 1 || k&(k-1) != 0 {
		return 0, fmt.Errorf("experiment: ALERT_SHARDS must be a power of two, got %q", env)
	}
	return k, nil
}

// buildArena is Build with optional substrate reuse: a non-nil arena
// supplies a recycled engine and backs the collector's packet records with
// its slab.
func buildArena(sc Scenario, arena *Arena) (*World, error) {
	if err := sc.Validate(); err != nil {
		return nil, err
	}
	src := rng.New(sc.Seed)
	var eng *sim.Engine
	if arena != nil {
		eng = arena.engine()
	} else {
		eng = sim.NewEngine()
	}
	eng.SetMaxEvents(sc.MaxEvents)

	shards, err := effectiveShards(sc)
	if err != nil {
		return nil, err
	}
	eng.SetShards(shards)
	if deg := min(shards, runtime.GOMAXPROCS(0)); deg > 1 {
		eng.SetWorkers(sim.NewWorkers(deg))
	}

	mobCfg := mobility.Fixed(sc.Speed)
	// Only a genuinely parallel pool goes in as the Forker: the mobility
	// constructors keep their allocation-free serial loops on nil.
	if w := eng.Workers(); w.Degree() > 1 {
		mobCfg.Fork = w
	}

	var mob mobility.Model
	switch sc.Mobility {
	case NS2Trace:
		f, err := os.Open(sc.NS2TracePath)
		if err != nil {
			return nil, fmt.Errorf("experiment: open NS-2 trace: %w", err)
		}
		tm, err := mobility.ParseNS2(f, sc.Field)
		f.Close()
		if err != nil {
			return nil, fmt.Errorf("experiment: parse NS-2 trace: %w", err)
		}
		mob = tm
		sc.N = tm.N()
		if sc.Pairs > sc.N*(sc.N-1) {
			return nil, fmt.Errorf("experiment: %d distinct pairs impossible with %d trace nodes", sc.Pairs, sc.N)
		}
	case Static:
		mob = mobility.NewStatic(sc.Field, sc.N, src)
	case GroupMobility:
		mob = mobility.NewGroupMobility(sc.Field, sc.N, sc.Groups, sc.GroupRange,
			mobCfg, src)
	default: // RandomWaypoint; Validate rejected everything else
		mob = mobility.NewRandomWaypoint(sc.Field, sc.N, mobCfg, src)
	}

	par := medium.DefaultParams()
	par.LossRate = sc.LossRate
	if sc.HelloInterval > 0 {
		par.HelloInterval = sc.HelloInterval
	}
	if sc.NoARQ {
		par.Retries = 0
	}
	med, err := medium.New(eng, mob, par, src)
	if err != nil {
		return nil, fmt.Errorf("experiment: %w", err)
	}
	if shards > 1 {
		plan, err := geo.NewShardPlan(sc.Field, shards)
		if err != nil {
			return nil, fmt.Errorf("experiment: %w", err)
		}
		// The minimum cross-shard event delay is one frame's minimum time
		// on air: the conservative lookahead of the shard window protocol.
		eng.SetLookahead(med.MinFrameLatency())
		med.SetShardPlan(plan)
	}
	net := node.NewNetwork(eng, med, crypt.NewFastSuite(src), sc.Costs,
		node.DefaultConfig(), src)
	loc := locservice.New(net, locservice.Config{
		UpdateInterval: sc.LocInterval,
		UpdatesEnabled: sc.LocUpdates,
	})

	w := &World{
		Scenario: sc, Eng: eng, Mob: mob, Med: med, Net: net, Loc: loc,
		Rand: src.Split("workload"),
	}
	switch sc.Protocol {
	case ALERT:
		cfg := sc.Alert
		cfg.PacketSize = sc.PacketSize
		p, err := core.New(net, loc, cfg, src)
		if err != nil {
			return nil, fmt.Errorf("experiment: %w", err)
		}
		w.Alert = p
		w.Proto = p
	case GPSR:
		cfg := sc.Gpsr
		cfg.PacketSize = sc.PacketSize
		w.Proto = gpsr.NewApp(net, loc, cfg)
	case ALARM:
		cfg := sc.Alarm
		cfg.PacketSize = sc.PacketSize
		w.Proto = alarm.New(net, loc, cfg)
	case AO2P:
		cfg := sc.Ao2p
		cfg.PacketSize = sc.PacketSize
		w.Proto = ao2p.New(net, loc, cfg, src)
	case ZAP:
		cfg := sc.Zap
		cfg.PacketSize = sc.PacketSize
		w.Proto = zap.New(net, loc, cfg, src)
	}
	if arena != nil {
		// Collectors were just created empty; every record this run opens
		// now comes from the arena's slab.
		w.Proto.Collector().UseSlab(&arena.recs)
	}
	return w, nil
}

// MustBuild is Build for callers whose scenario is known good (tests,
// examples, generated presets); it panics on error.
func MustBuild(sc Scenario) *World {
	w, err := Build(sc)
	if err != nil {
		panic(err)
	}
	return w
}

// Router returns the GPSR router the scenario's protocol routes over (all
// five protocols ride the same substrate). Invariant checks use it: after a
// drained run, Sent == Delivered + ArrivedClosest + DroppedTTL +
// DroppedDeadEnd + DroppedLink must hold — every routing attempt ends in
// exactly one terminal outcome.
func (w *World) Router() *gpsr.Router {
	r, ok := w.Proto.(interface{ Router() *gpsr.Router })
	if !ok {
		return nil
	}
	return r.Router()
}

// Pair is one S-D communication pair.
type Pair struct {
	S, D medium.NodeID
}

// ChoosePairs draws the scenario's random S-D pairs. The pairs are
// distinct: a duplicate (S, D) flow would be merged with its twin by
// routeJaccard's per-pair grouping and skew the similarity numbers.
// Validate guarantees enough distinct pairs exist, so the draw terminates.
func (w *World) ChoosePairs() []Pair {
	pairs := make([]Pair, 0, w.Scenario.Pairs)
	seen := make(map[Pair]bool, w.Scenario.Pairs)
	for len(pairs) < w.Scenario.Pairs {
		s := medium.NodeID(w.Rand.Intn(w.Scenario.N))
		d := medium.NodeID(w.Rand.Intn(w.Scenario.N))
		pr := Pair{S: s, D: d}
		if s != d && !seen[pr] {
			seen[pr] = true
			pairs = append(pairs, pr)
		}
	}
	return pairs
}

// EnergyModel converts counted work (radio bytes and cryptographic
// operations) into joules. The defaults take WaveLAN-class radio costs and
// the paper's reference [26] ratio — a public-key operation costs hundreds
// of times a symmetric one.
type EnergyModel struct {
	TxPerByte float64 // J per transmitted byte
	RxPerByte float64 // J per received byte
	SymOp     float64 // J per symmetric encryption/decryption
	PubOp     float64 // J per public-key operation
}

// DefaultEnergyModel returns the calibration used by the energy figures:
// transmission plus computation energy. Reception/overhearing is excluded
// (RxPerByte = 0), the common convention in MANET protocol energy analyses
// — in a broadcast medium every node in range decodes every frame
// regardless of protocol, so reception costs are workload-independent
// background; set RxPerByte to study them.
func DefaultEnergyModel() EnergyModel {
	return EnergyModel{
		TxPerByte: 1.0e-6,
		RxPerByte: 0,
		SymOp:     50e-6,
		PubOp:     15e-3, // 300x symmetric, within [26]'s "hundreds of times"
	}
}

// Result holds one run's metrics.
type Result struct {
	Sent          int
	Delivered     int
	DeliveryRate  float64
	MeanLatency   float64
	HopsPerPacket float64
	MeanRFs       float64
	Participants  int
	Cumulative    []int
	RouteJaccard  float64
	// EnergyJoules is the run's total radio + crypto energy;
	// EnergyPerDelivered divides it by delivered packets (Inf if none).
	EnergyJoules       float64
	EnergyPerDelivered float64
	// LatencyP50/P95/P99 are end-to-end delay percentiles over delivered
	// packets, and Jitter is the standard deviation of delay — the
	// quantities a multimedia stream actually experiences (the paper's
	// Section 1 motivation).
	LatencyP50 float64
	LatencyP95 float64
	LatencyP99 float64
	Jitter     float64
	// LoadGini is the Gini coefficient of per-node transmission counts:
	// 0 means perfectly even relay load, 1 means one node carries
	// everything. ALERT's random forwarders spread the battery drain that
	// shortest-path routing concentrates on a few relays.
	LoadGini float64
}

// Run builds the world, drives the workload, and collects metrics.
func Run(sc Scenario) (Result, error) {
	res, _, err := RunWorld(sc, nil)
	return res, err
}

// RunWorld is Run with an optional telemetry tap threaded through the
// whole stack, returning the drained world alongside the metrics so a
// caller can also snapshot the tap's registry, engine counters or channel
// state. The build→pairs→workload→drain→collect order is the determinism
// contract: telemetry must not perturb it.
func RunWorld(sc Scenario, tap *telemetry.Tap) (Result, *World, error) {
	w, err := Build(sc)
	if err != nil {
		return Result{}, nil, err
	}
	w.EnableTelemetry(tap)
	pairs := w.ChoosePairs()
	w.StartWorkload(pairs)
	if err := w.Drain(); err != nil {
		return Result{}, nil, err
	}
	return w.Collect(pairs), w, nil
}

// MustRun is Run for callers whose scenario is known good; it panics on
// error.
func MustRun(sc Scenario) Result {
	res, err := Run(sc)
	if err != nil {
		panic(err)
	}
	return res
}

// Drain executes the simulation through the send horizon plus the drain
// phase: traffic stops at Scenario.Duration (the workload driver's
// invariant) and in-flight packets get Scenario.DrainTime more seconds to
// finish. This is the one place the run's time horizon is defined. The
// error is sim.ErrMaxEvents when Scenario.MaxEvents is set and exhausted.
func (w *World) Drain() error {
	return w.Eng.RunUntil(w.Scenario.Duration + w.Scenario.DrainTime)
}

// Collect summarizes the collector into a Result.
func (w *World) Collect(pairs []Pair) Result {
	col := w.Proto.Collector()
	res := Result{
		Sent:          col.Sent(),
		Delivered:     col.Delivered(),
		DeliveryRate:  col.DeliveryRate(),
		MeanLatency:   col.MeanLatency(),
		HopsPerPacket: col.HopsPerPacket(),
		MeanRFs:       col.MeanRFs(),
		Participants:  col.Participants(),
		Cumulative:    col.CumulativeParticipants(),
	}
	res.RouteJaccard = routeJaccard(col, pairs)
	var lat stats.Sample
	for _, r := range col.Records() {
		if r.Delivered {
			lat.Add(r.Latency())
		}
	}
	res.LatencyP50 = lat.Quantile(0.50)
	res.LatencyP95 = lat.Quantile(0.95)
	res.LatencyP99 = lat.Quantile(0.99)
	res.Jitter = lat.StdDev()
	em := DefaultEnergyModel()
	mc := w.Med.Counters()
	res.EnergyJoules = float64(mc.TxBytes)*em.TxPerByte +
		float64(mc.RxBytes)*em.RxPerByte +
		float64(w.Net.Ops.Sym)*em.SymOp +
		float64(w.Net.Ops.Pub)*em.PubOp
	if res.Delivered > 0 {
		res.EnergyPerDelivered = res.EnergyJoules / float64(res.Delivered)
	} else {
		res.EnergyPerDelivered = math.Inf(1)
	}
	res.LoadGini = gini(w.Med.TxByNode())
	return res
}

// gini computes the Gini coefficient of non-negative counts.
func gini(counts []uint64) float64 {
	n := len(counts)
	if n == 0 {
		return 0
	}
	sorted := make([]float64, n)
	total := 0.0
	for i, c := range counts {
		sorted[i] = float64(c)
		total += float64(c)
	}
	//lint:allowfloatcompare total is a sum of exact uint64 conversions; zero is exact
	if total == 0 {
		return 0
	}
	sort.Float64s(sorted)
	// G = (2*sum(i*x_i) / (n*sum(x))) - (n+1)/n with 1-based i.
	weighted := 0.0
	for i, x := range sorted {
		weighted += float64(i+1) * x
	}
	return 2*weighted/(float64(n)*total) - float64(n+1)/float64(n)
}

// routeJaccard averages consecutive-packet relay-set similarity per pair.
func routeJaccard(col *metrics.Collector, pairs []Pair) float64 {
	byPair := map[Pair][][]medium.NodeID{}
	for _, r := range col.Records() {
		if !r.Delivered {
			continue
		}
		p := Pair{S: r.Src, D: r.Dst}
		byPair[p] = append(byPair[p], r.Path)
	}
	// Iterate the pairs slice, not the byPair map: float addition is not
	// associative, so summing in map order drifts in the last ULP from run
	// to run (caught by TestSeedDeterminismParallel).
	total, n := 0.0, 0
	for _, p := range pairs {
		routes := byPair[p]
		for i := 1; i < len(routes); i++ {
			total += jaccardIDs(routes[i-1], routes[i])
			n++
		}
	}
	if n == 0 {
		return 0
	}
	return total / float64(n)
}

func jaccardIDs(a, b []medium.NodeID) float64 {
	sa := map[medium.NodeID]struct{}{}
	for _, id := range a {
		sa[id] = struct{}{}
	}
	sb := map[medium.NodeID]struct{}{}
	for _, id := range b {
		sb[id] = struct{}{}
	}
	inter := 0
	for id := range sa {
		if _, ok := sb[id]; ok {
			inter++
		}
	}
	union := len(sa) + len(sb) - inter
	if union == 0 {
		return 1
	}
	return float64(inter) / float64(union)
}

// Aggregate summarizes a metric over independent runs.
type Aggregate struct {
	DeliveryRate  stats.Summary
	MeanLatency   stats.Summary
	HopsPerPacket stats.Summary
	MeanRFs       stats.Summary
	Participants  stats.Summary
	RouteJaccard  stats.Summary
}

// RunParallel executes the scenario under seeds different seeds (1..seeds)
// concurrently — every run owns its engine, random streams and world, so
// they are fully independent — and returns the results in seed order, which
// keeps all downstream aggregation deterministic. The scenario is validated
// once up front; with a valid scenario the only per-run failure mode left
// is an unreadable NS-2 trace, and the first such error is returned.
func RunParallel(sc Scenario, seeds int) ([]Result, error) {
	return RunParallelProgress(sc, seeds, nil)
}

// RunParallelProgress is RunParallel with a per-seed completion callback:
// progress(seed, result) fires once per finished run, serialized under a
// mutex, in completion order (not seed order — that is the point of a
// progress signal). A nil progress is RunParallel. The returned slice is
// still in seed order.
func RunParallelProgress(sc Scenario, seeds int, progress func(seed int, r Result)) ([]Result, error) {
	if err := sc.Validate(); err != nil {
		return nil, err
	}
	results := make([]Result, seeds)
	errs := make([]error, seeds)
	workers := runtime.GOMAXPROCS(0)
	if workers > seeds {
		workers = seeds
	}
	var wg sync.WaitGroup
	var progressMu sync.Mutex
	next := make(chan int)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		//lint:allowsharedstate seed-fan-out worker: each seed builds its own world and engine and writes only results[i]/errs[i]; the progress callback is serialized under progressMu
		go func() {
			defer wg.Done()
			for i := range next {
				run := sc
				run.Seed = int64(i + 1)
				results[i], errs[i] = Run(run)
				if progress != nil && errs[i] == nil {
					progressMu.Lock()
					progress(i+1, results[i])
					progressMu.Unlock()
				}
			}
		}()
	}
	for i := 0; i < seeds; i++ {
		//lint:allowsharedstate work-distribution token: a bare seed index, claimed by exactly one worker
		next <- i
	}
	close(next)
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	return results, nil
}

// RunSeeds runs the scenario under `seeds` different seeds (the paper uses
// 30) and aggregates with 95% confidence intervals.
func RunSeeds(sc Scenario, seeds int) (Aggregate, error) {
	results, err := RunParallel(sc, seeds)
	if err != nil {
		return Aggregate{}, err
	}
	return AggregateResults(results), nil
}

// AggregateResults summarizes per-seed results with 95% confidence
// intervals, in slice order.
func AggregateResults(results []Result) Aggregate {
	var del, lat, hops, rfs, parts, jac stats.Sample
	for _, r := range results {
		del.Add(r.DeliveryRate)
		lat.Add(r.MeanLatency)
		hops.Add(r.HopsPerPacket)
		rfs.Add(r.MeanRFs)
		parts.Add(float64(r.Participants))
		jac.Add(r.RouteJaccard)
	}
	return Aggregate{
		DeliveryRate:  del.Summarize(),
		MeanLatency:   lat.Summarize(),
		HopsPerPacket: hops.Summarize(),
		MeanRFs:       rfs.Summarize(),
		Participants:  parts.Summarize(),
		RouteJaccard:  jac.Summarize(),
	}
}

// MustRunSeeds is RunSeeds for callers whose scenario is known good; it
// panics on error.
func MustRunSeeds(sc Scenario, seeds int) Aggregate {
	agg, err := RunSeeds(sc, seeds)
	if err != nil {
		panic(err)
	}
	return agg
}

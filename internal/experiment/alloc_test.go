package experiment

import (
	"testing"

	"alertmanet/internal/alarm"
	"alertmanet/internal/ao2p"
	"alertmanet/internal/core"
	"alertmanet/internal/crypt"
	"alertmanet/internal/geo"
	"alertmanet/internal/gpsr"
	"alertmanet/internal/locservice"
	"alertmanet/internal/medium"
	"alertmanet/internal/node"
	"alertmanet/internal/rng"
	"alertmanet/internal/sim"
	"alertmanet/internal/zap"
)

// allocField is shared by every alloc-test world regardless of how much of
// the line is populated, so two worlds differ only in node placement —
// ALERT partitions the field itself, and its leg structure must match
// between the compared runs.
var allocField = geo.Rect{Min: geo.Point{}, Max: geo.Point{X: 4200, Y: 1000}}

// lineModel pins n nodes 200 m apart on a horizontal line. With a 250 m
// radio range only adjacent nodes hear each other, so a send from node s to
// node 0 crosses exactly s hops — path length is the source index.
type lineModel struct{ n int }

func (l *lineModel) Position(id int, _ float64) geo.Point {
	return geo.Point{X: float64(id) * 200, Y: 500}
}
func (l *lineModel) N() int          { return l.n }
func (l *lineModel) Field() geo.Rect { return allocField }

// buildLineProto assembles one protocol over a 20-node line. Configs are
// the defaults except: hop budgets raised to cover the 19-hop far send,
// ALARM's dissemination ticker disabled so the engine drains between sends,
// and ALERT pinned to H=1 so near and far sources produce the identical
// one-leg partition structure and differ only in leg length.
func buildLineProto(t *testing.T, name ProtocolName) (*sim.Engine, Proto) {
	t.Helper()
	eng := sim.NewEngine()
	src := rng.New(11)
	med := medium.MustNew(eng, &lineModel{n: 20}, medium.DefaultParams(), src)
	// node.Config{} (no pseudonym rotation): the rotation ticker is
	// unbounded, and each send must drain the engine completely.
	net := node.NewNetwork(eng, med, crypt.NewFastSuite(src), crypt.ZeroCostModel(),
		node.Config{}, src)
	loc := locservice.New(net, locservice.Config{UpdatesEnabled: false})
	switch name {
	case ALERT:
		cfg := core.DefaultConfig()
		cfg.H = 1
		cfg.LegHopBudget = 40
		p, err := core.New(net, loc, cfg, src)
		if err != nil {
			t.Fatal(err)
		}
		return eng, p
	case GPSR:
		cfg := gpsr.DefaultAppConfig()
		cfg.HopBudget = 40
		return eng, gpsr.NewApp(net, loc, cfg)
	case ALARM:
		cfg := alarm.DefaultConfig()
		cfg.HopBudget = 40
		cfg.DisseminationPeriod = 0
		return eng, alarm.New(net, loc, cfg)
	case AO2P:
		cfg := ao2p.DefaultConfig()
		cfg.HopBudget = 40
		return eng, ao2p.New(net, loc, cfg, src)
	case ZAP:
		cfg := zap.DefaultConfig()
		cfg.HopBudget = 40
		// On the sparse line the default 180 m zone holds only the
		// destination, which is then also the flood's anchor — and a node
		// never hears its own broadcast. A 700 m zone puts the anchor on
		// the destination's neighbor, as in a normally dense field.
		cfg.ZoneSide = 700
		return eng, zap.New(net, loc, cfg, src)
	}
	t.Fatalf("unknown protocol %q", name)
	return nil, nil
}

// sendAllocs measures steady-state allocations per application send from
// src to node 0, and returns them with the hop count of the last send.
func sendAllocs(t *testing.T, name ProtocolName, src medium.NodeID) (float64, int) {
	t.Helper()
	eng, p := buildLineProto(t, name)
	data := make([]byte, 16)
	hops := 0
	send := func() {
		rec, err := p.Send(src, 0, data)
		if err != nil {
			t.Fatal(err)
		}
		eng.Run()
		if !rec.Done() || !rec.Delivered {
			t.Fatalf("%s send from %d undelivered: %+v", name, src, rec)
		}
		hops = rec.Hops
	}
	// Reach steady state: pools, the collector's maps and slices, and the
	// per-pair session state all stop growing within a few sends.
	for i := 0; i < 8; i++ {
		send()
	}
	return testing.AllocsPerRun(20, send), hops
}

// TestSendAllocsPathLengthIndependent pins the tentpole's per-protocol
// contract: with telemetry disabled, every per-hop structure is pooled, so
// a send costs the same number of allocations whether it crosses 12 hops
// or 19. Each protocol still allocates a constant amount of per-packet control
// state (record, envelope, completion closures) — what this test forbids is
// any allocation that scales with path length, i.e. per forwarded packet.
func TestSendAllocsPathLengthIndependent(t *testing.T) {
	// Both sources sit outside ALERT's H=1 destination zone (the left half
	// of the field, x < 2100), so its partition-leg structure — and thus
	// its constant per-leg control-plane allocation — is identical; only
	// the hop count differs.
	for _, name := range []ProtocolName{GPSR, ALERT, ALARM, AO2P, ZAP} {
		near, nearHops := sendAllocs(t, name, 12)
		far, farHops := sendAllocs(t, name, 19)
		if farHops <= nearHops {
			t.Errorf("%s: far send crossed %d hops, near %d — topology no longer exercises the contract",
				name, farHops, nearHops)
		}
		if near != far {
			t.Errorf("%s: %.1f allocs over %d hops vs %.1f allocs over %d hops — forwarding allocates per hop",
				name, near, nearHops, far, farHops)
		}
	}
}

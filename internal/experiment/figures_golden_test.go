package experiment

// The figure-rewire contract: every figure function must produce the exact
// series — same labels, same values at fixed seeds — through the Runner
// seam that the pre-campaign hand-rolled loops produced. The digests in
// testdata/figures_golden.json were captured from the pre-rewire code at
// these pinned small parameters; this test replays them through
// DirectRunner, and internal/campaign's golden test replays a subset
// through the full Engine (cache + store + worker pool) against the same
// file.

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"os"
	"strings"
	"testing"

	"alertmanet/internal/analysis"
)

// SeriesDigest hashes labeled series into the figure-golden fingerprint.
// Exported to the test binary only; internal/campaign's golden test uses
// the same rendering via its own copy.
func seriesDigest(series []analysis.Series) string {
	h := sha256.New()
	for _, s := range series {
		fmt.Fprintf(h, "%s|%v|%v|%v\n", s.Label, s.X, s.Y, s.Err)
	}
	return hex.EncodeToString(h.Sum(nil))
}

const figuresGoldenPath = "testdata/figures_golden.json"

// goldenFigureTimes is the pinned small sample grid the digests were
// captured at (not the paper's full defaultTimes).
func goldenFigureTimes() []float64 { return []float64{0, 5, 10} }

// goldenFigures computes every figure's digest at the pinned capture
// parameters through the given runner.
func goldenFigures(t *testing.T, r Runner) map[string]string {
	t.Helper()
	got := map[string]string{}
	record := func(name string) func(s []analysis.Series, err error) {
		return func(s []analysis.Series, err error) {
			if err != nil {
				t.Fatalf("%s: %v", name, err)
			}
			got[name] = seriesDigest(s)
		}
	}
	single := func(s analysis.Series, err error) ([]analysis.Series, error) {
		return []analysis.Series{s}, err
	}

	record("fig10a")(Fig10a(r, 5, 2))
	record("fig10b")(Fig10b(r, 5, 2))
	record("fig11")(single(Fig11(r, 3, 2)))
	record("fig12")(Fig12(r, goldenFigureTimes(), 2))
	record("fig13a")(Fig13a(r, goldenFigureTimes(), 2))
	record("fig13b")(single(Fig13b(r, 4, []float64{2, 4}, 2)))
	record("fig14a")(Fig14a(r, 2))
	record("fig14b")(Fig14b(r, 2))
	record("fig15a")(Fig15a(r, 2))
	record("fig15b")(Fig15b(r, 2))
	record("fig16a")(Fig16a(r, 2))
	record("fig16b")(Fig16b(r, 2))
	record("fig17")(Fig17(r, 2))
	record("energy")(EnergySummary(r, 2))

	comps, err := CompareProtocols(r, []ProtocolName{ALERT, GPSR}, 3, 20)
	if err != nil {
		t.Fatalf("compare: %v", err)
	}
	h := sha256.New()
	for _, c := range comps {
		fmt.Fprintf(h, "%+v\n", c)
	}
	got["compare"] = hex.EncodeToString(h.Sum(nil))
	return got
}

// loadFigureGoldens reads the pinned pre-rewire digests.
func loadFigureGoldens(t *testing.T) map[string]string {
	t.Helper()
	data, err := os.ReadFile(figuresGoldenPath)
	if err != nil {
		t.Fatalf("read figure golden corpus (run with -update to create): %v", err)
	}
	var want map[string]string
	if err := json.Unmarshal(data, &want); err != nil {
		t.Fatalf("parse %s: %v", figuresGoldenPath, err)
	}
	return want
}

// TestFigureGoldenSeries pins the rewired figure functions to the series
// the pre-campaign loops produced: identical labels and values at fixed
// seeds, via DirectRunner. Re-bless with -update only for an intended
// behaviour change.
func TestFigureGoldenSeries(t *testing.T) {
	got := goldenFigures(t, DirectRunner{})

	if *update {
		data, err := json.MarshalIndent(got, "", "  ")
		if err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(figuresGoldenPath, append(data, '\n'), 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("re-blessed %s", figuresGoldenPath)
		return
	}

	want := loadFigureGoldens(t)
	for name, w := range want {
		if got[name] != w {
			t.Errorf("%s: series digest %s, golden %s — figure output changed",
				name, got[name], w)
		}
	}
	for name := range got {
		if _, ok := want[name]; !ok {
			t.Errorf("%s: missing from golden corpus; re-bless with -update", name)
		}
	}
}

// shortRunner wraps a Runner and truncates every Cumulative series, forcing
// the short-run path that the old counts[i] > 0 guard silently absorbed.
type shortRunner struct{ inner Runner }

func (s shortRunner) RunBatch(cells []Scenario) ([]Result, error) {
	results, err := s.inner.RunBatch(cells)
	if err != nil {
		return nil, err
	}
	for i := range results {
		if len(results[i].Cumulative) > 1 {
			results[i].Cumulative = results[i].Cumulative[:1]
		}
	}
	return results, nil
}

func (s shortRunner) RemainingBatch(cells []RemainingSpec) ([]RemainingResult, error) {
	return s.inner.RemainingBatch(cells)
}

// TestFig10ShortRunReported: a cell that recorded fewer packets than the
// figure needs is a reported error naming the cell, not a silently skewed
// mean.
func TestFig10ShortRunReported(t *testing.T) {
	r := shortRunner{inner: DirectRunner{}}
	if _, err := Fig10a(r, 5, 1); err == nil {
		t.Fatal("Fig10a: want short-run cell error, got nil")
	} else if want := "short-run cell"; !strings.Contains(err.Error(), want) {
		t.Fatalf("Fig10a error %q does not mention %q", err, want)
	}
	if _, err := Fig10b(r, 5, 1); err == nil {
		t.Fatal("Fig10b: want short-run cell error, got nil")
	}
}

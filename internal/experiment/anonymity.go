// Anonymity experiments: the attack-versus-defence measurements behind
// Section 3's claims. Each function builds a world, mounts one of the
// adversary models, runs a communication session, and reports how much the
// attacker learned.

package experiment

import (
	"alertmanet/internal/adversary"
	"alertmanet/internal/core"
	"alertmanet/internal/geo"
	"alertmanet/internal/medium"
)

// IntersectionResult reports one intersection-attack session (Section 3.3).
type IntersectionResult struct {
	// Waves is how many per-packet recipient sets the attacker observed.
	Waves int
	// Candidates is the attacker's surviving destination-candidate count
	// (nodes present in every observed recipient set).
	Candidates int
	// DstCandidate reports whether the true destination survived the
	// intersection — the attack's necessary condition. The two-step
	// multicast defeats the attack precisely by making D miss some
	// observed recipient sets.
	DstCandidate bool
	// Exposed reports whether the attacker pinned down D exactly.
	Exposed bool
}

// IntersectionAttack runs a long S-D session under ALERT and mounts the
// recipient-set intersection attack of Section 3.3: the attacker records,
// for every packet, the set of nodes observed receiving the initial zone
// delivery, and intersects those sets across the session. Under plain
// broadcasting D is in every set, and as other nodes drift out of the zone
// the intersection converges on D; with the two-step m-of-k multicast the
// attacker's per-packet set is the m holders — D is regularly absent, the
// intersection loses it, and the attack is foiled (Fig. 5c).
func IntersectionAttack(seed int64, packets int, guard bool) IntersectionResult {
	sc := DefaultScenario()
	sc.Seed = seed
	sc.Speed = 2
	sc.Alert.IntersectionGuard = guard
	sc.Alert.HoldRelease = 1.5
	// The send horizon covers the manual session; DrainTime lets the last
	// packets finish, matching Run's policy.
	sc.Duration = float64(packets) * sc.Interval
	w := MustBuild(sc)

	// One fixed pair makes the session worth attacking.
	pairs := w.ChoosePairs()[:1]
	s, d := pairs[0].S, pairs[0].D

	// The attacker attributes each packet's step-one receivers to that
	// packet and — per Section 3.3 — monitors "the change of the members
	// in the destination zone", so only receivers inside the targeted
	// zone enter the per-packet set. Step-two re-broadcasts are
	// time-mixed with the next packet and cannot be attributed (the
	// mechanism's point), so they are not part of any per-packet set.
	waves := map[int]map[medium.NodeID]struct{}{}
	w.Alert.OnZoneRecipients = func(seq, step int, zone geo.Rect, rs []medium.NodeID, t float64) {
		if step != 1 {
			return
		}
		set := waves[seq]
		if set == nil {
			set = map[medium.NodeID]struct{}{}
			waves[seq] = set
		}
		for _, id := range rs {
			if zone.Contains(w.Med.TruePosition(id, t)) {
				set[id] = struct{}{}
			}
		}
	}
	for i := 0; i < packets; i++ {
		at := float64(i) * sc.Interval
		w.Eng.At(at+0.01, func() { w.Proto.Send(s, d, []byte("session")) })
	}
	w.Drain()

	// Intersect all observed sets.
	var cand map[medium.NodeID]struct{}
	for _, set := range waves {
		if cand == nil {
			cand = map[medium.NodeID]struct{}{}
			for id := range set {
				cand[id] = struct{}{}
			}
			continue
		}
		for id := range cand {
			if _, ok := set[id]; !ok {
				delete(cand, id)
			}
		}
	}
	_, dIn := cand[d]
	return IntersectionResult{
		Waves:        len(waves),
		Candidates:   len(cand),
		DstCandidate: dIn,
		Exposed:      dIn && len(cand) == 1,
	}
}

// SourceAnonymityResult reports a notify-and-go measurement (Section 2.6).
type SourceAnonymityResult struct {
	// AnonymitySet is the number of distinct transmitters an observer
	// near the source saw in the send window (eta + 1 with the
	// mechanism, 1 without).
	AnonymitySet int
	// Neighbors is eta, the source's neighbor count.
	Neighbors int
}

// SourceAnonymity sends one packet with or without notify-and-go and counts
// how many candidate transmitters an eavesdropper parked on the source saw
// during the send window.
func SourceAnonymity(seed int64, notifyAndGo bool) SourceAnonymityResult {
	sc := DefaultScenario()
	sc.Seed = seed
	sc.Alert.NotifyAndGo = notifyAndGo
	sc.Alert.NotifyT = 5e-3
	sc.Alert.NotifyT0 = 20e-3
	w := MustBuild(sc)
	pairs := w.ChoosePairs()[:1]
	s, d := pairs[0].S, pairs[0].D
	obs := adversary.NewObserver(w.Med, w.Med.PositionNow(s), w.Med.Params().Range)
	w.Eng.At(1.0, func() { w.Proto.Send(s, d, []byte("x")) })
	w.Eng.RunUntil(5)
	// The send window: from the notification until the last back-off.
	window := sc.Alert.NotifyT + sc.Alert.NotifyT0 + 0.05
	return SourceAnonymityResult{
		AnonymitySet: obs.DistinctSenders(1.0, 1.0+window),
		Neighbors:    len(w.Med.Neighbors(s)),
	}
}

// TimingAttackScore runs a CBR session under the given protocol and returns
// the timing-correlation score an attacker observing both endpoints'
// vicinities achieves (Section 3.2). Deterministic shortest-path protocols
// show a near-constant delay signature; ALERT's random routes blur it.
func TimingAttackScore(seed int64, proto ProtocolName, packets int) float64 {
	sc := DefaultScenario()
	sc.Seed = seed
	sc.Protocol = proto
	sc.Duration = float64(packets) * sc.Interval
	w := MustBuild(sc)
	pairs := w.ChoosePairs()[:1]
	s, d := pairs[0].S, pairs[0].D

	var corr adversary.TimingCorrelator
	sPos := w.Med.PositionNow(s)
	rangeM := w.Med.Params().Range
	w.Med.TapSend(func(tx medium.Transmission) {
		if tx.From == s && tx.FromPos.Dist(sPos) <= rangeM {
			corr.AddSend(tx.At)
		}
	})
	w.Med.TapRecv(func(rx medium.Reception) {
		if rx.To == d {
			corr.AddRecv(rx.At)
		}
	})
	for i := 0; i < packets; i++ {
		at := float64(i) * sc.Interval
		w.Eng.At(at+0.01, func() { w.Proto.Send(s, d, []byte("x")) })
	}
	w.Drain()
	return corr.Score(2e-3)
}

// InterceptionExperiment measures Section 3.1's DoS/interception claim: a
// fixed set of compromised nodes placed on the first observed route
// captures every subsequent GPSR packet but only a fraction of ALERT's.
func InterceptionExperiment(seed int64, proto ProtocolName, packets, compromised int) float64 {
	sc := DefaultScenario()
	sc.Seed = seed
	sc.Protocol = proto
	sc.Mobility = Static // the attacker's best case: a frozen topology
	sc.Duration = float64(packets) * sc.Interval
	w := MustBuild(sc)
	pairs := w.ChoosePairs()[:1]
	s, d := pairs[0].S, pairs[0].D
	for i := 0; i < packets; i++ {
		at := float64(i) * sc.Interval
		w.Eng.At(at+0.01, func() { w.Proto.Send(s, d, []byte("x")) })
	}
	w.Drain()

	var tracker adversary.RouteTracker
	recs := w.Proto.Collector().Records()
	for _, r := range recs {
		if r.Delivered {
			tracker.AddRoute(relaysOnly(r.Path, s, d))
		}
	}
	if tracker.Routes() < 2 {
		return 0
	}
	// Compromise the relays of the FIRST observed route.
	first := relaysOnly(recs[0].Path, s, d)
	if len(first) > compromised {
		first = first[:compromised]
	}
	return tracker.InterceptionProbability(first)
}

// DoSResult reports a Section 3.1 denial-of-service experiment.
type DoSResult struct {
	// BaselineDelivery is the delivery rate before any compromise.
	BaselineDelivery float64
	// UnderAttackDelivery is the delivery rate after the adversary
	// compromises relays of the first observed route (the compromised
	// nodes keep acting as neighbors but sink every packet).
	UnderAttackDelivery float64
	// Compromised is how many nodes were actually subverted.
	Compromised int
}

// DoSAttack measures Section 3.1's claim that ALERT's communication "cannot
// be completely stopped by compromising certain nodes": in a static network
// the adversary watches one packet, compromises up to `compromise` of its
// relays, and the session continues. GPSR keeps routing into the same dead
// relays; ALERT's random forwarders route around them.
func DoSAttack(seed int64, proto ProtocolName, packets, compromise int) DoSResult {
	sc := DefaultScenario()
	sc.Seed = seed
	sc.Protocol = proto
	sc.Mobility = Static
	sc.Duration = float64(packets) * sc.Interval
	sc.DrainTime = 20 // the post-compromise phase needs longer to settle
	w := MustBuild(sc)
	pairs := w.ChoosePairs()[:1]
	s, d := pairs[0].S, pairs[0].D

	// Phase one: half the packets, clean network.
	half := packets / 2
	for i := 0; i < half; i++ {
		at := float64(i) * sc.Interval
		w.Eng.At(at+0.01, func() { w.Proto.Send(s, d, []byte("x")) })
	}
	// Between phases: compromise the first delivered route's relays.
	res := DoSResult{}
	w.Eng.At(float64(half)*sc.Interval-0.5, func() {
		for _, r := range w.Proto.Collector().Records() {
			if !r.Delivered {
				continue
			}
			for _, id := range relaysOnly(r.Path, s, d) {
				if res.Compromised >= compromise {
					break
				}
				if !w.Med.Compromised(id) {
					w.Med.Compromise(id)
					res.Compromised++
				}
			}
			break
		}
	})
	// Phase two: the remaining packets, relays subverted.
	for i := half; i < packets; i++ {
		at := float64(i) * sc.Interval
		w.Eng.At(at+0.01, func() { w.Proto.Send(s, d, []byte("x")) })
	}
	w.Drain()

	recs := w.Proto.Collector().Records()
	var del1, del2, n1, n2 int
	for i, r := range recs {
		if i < half {
			n1++
			if r.Delivered {
				del1++
			}
		} else {
			n2++
			if r.Delivered {
				del2++
			}
		}
	}
	if n1 > 0 {
		res.BaselineDelivery = float64(del1) / float64(n1)
	}
	if n2 > 0 {
		res.UnderAttackDelivery = float64(del2) / float64(n2)
	}
	return res
}

func relaysOnly(path []medium.NodeID, s, d medium.NodeID) []medium.NodeID {
	var out []medium.NodeID
	for _, id := range path {
		if id != s && id != d {
			out = append(out, id)
		}
	}
	return out
}

// TradeoffResult compares the two intersection-attack remedies of
// Section 3.3: ZAP's growing anonymity zone versus ALERT's two-step
// multicast.
type TradeoffResult struct {
	// HopsFirst and HopsLast are mean hops/packet over the session's
	// first and last three packets — growth means the remedy's overhead
	// scales with session length.
	HopsFirst, HopsLast float64
	// Delivery is the session's delivery rate.
	Delivery float64
}

// IntersectionRemedyCost runs one long session under either ZAP with zone
// enlargement (alert=false) or ALERT with the intersection guard
// (alert=true) and reports how the per-packet cost evolves. The paper's
// point: ZAP's remedy "increases the communication overhead" per packet,
// while ALERT's holds it flat.
func IntersectionRemedyCost(seed int64, packets int, alert bool) TradeoffResult {
	sc := DefaultScenario()
	sc.Seed = seed
	if alert {
		sc.Protocol = ALERT
		sc.Alert.IntersectionGuard = true
		sc.Alert.HoldRelease = 1.5
	} else {
		sc.Protocol = ZAP
		sc.Zap.EnlargePerPacket = 40
	}
	sc.Duration = float64(packets) * sc.Interval
	w := MustBuild(sc)
	pairs := w.ChoosePairs()[:1]
	s, d := pairs[0].S, pairs[0].D
	for i := 0; i < packets; i++ {
		at := float64(i) * sc.Interval
		w.Eng.At(at+0.01, func() { w.Proto.Send(s, d, []byte("session")) })
	}
	w.Drain()
	recs := w.Proto.Collector().Records()
	var res TradeoffResult
	if len(recs) < 6 {
		return res
	}
	for i := 0; i < 3; i++ {
		res.HopsFirst += float64(recs[i].Hops) / 3
		res.HopsLast += float64(recs[len(recs)-1-i].Hops) / 3
	}
	res.Delivery = w.Proto.Collector().DeliveryRate()
	return res
}

// RemainingInZone tracks, during a live ALERT session, how many of the
// nodes originally in Z_D remain there over time — the protocol-level
// counterpart of Fig. 12 (RemainingNodesSim measures pure mobility).
func RemainingInZone(seed int64, n int, speed float64, times []float64) []int {
	sc := DefaultScenario()
	sc.Seed = seed
	sc.N = n
	sc.Speed = speed
	w := MustBuild(sc)
	pairs := w.ChoosePairs()[:1]
	d := pairs[0].D
	zone := w.Alert.DestZoneFor(d)
	var initial []medium.NodeID
	for id := 0; id < n; id++ {
		if zone.Contains(w.Med.TruePosition(medium.NodeID(id), 0)) {
			initial = append(initial, medium.NodeID(id))
		}
	}
	out := make([]int, len(times))
	for i, t := range times {
		t := t
		i := i
		w.Eng.At(t, func() {
			remain := 0
			for _, id := range initial {
				if zone.Contains(w.Med.PositionNow(id)) {
					remain++
				}
			}
			out[i] = remain
		})
	}
	w.Eng.RunUntil(times[len(times)-1] + 1)
	return out
}

// ZoneOf exposes the destination zone geometry for a pair (examples use it
// to narrate what the protocol is doing).
func ZoneOf(w *World, d medium.NodeID) geo.Rect {
	if w.Alert == nil {
		cfg := core.DefaultConfig()
		h := cfg.H
		if h <= 0 {
			h = geo.PartitionsForK(w.Net.N(), cfg.K)
		}
		e, _ := w.Loc.Lookup(d)
		return geo.DestZone(w.Net.Field(), e.Pos, h, geo.Vertical)
	}
	return w.Alert.DestZoneFor(d)
}

// SourceLocationError runs one send and returns how far an eavesdropper's
// triangulated source estimate lands from the true source. Without
// notify-and-go the first transmission pinpoints S; with it, the covers
// drag the estimate toward the neighborhood centroid.
func SourceLocationError(seed int64, notifyAndGo bool) float64 {
	sc := DefaultScenario()
	sc.Seed = seed
	sc.Alert.NotifyAndGo = notifyAndGo
	sc.Alert.NotifyT = 5e-3
	sc.Alert.NotifyT0 = 20e-3
	w := MustBuild(sc)
	pairs := w.ChoosePairs()[:1]
	s, d := pairs[0].S, pairs[0].D
	sPos := w.Med.PositionNow(s)
	obs := adversary.NewObserver(w.Med, sPos, w.Med.Params().Range)
	w.Eng.At(1.0, func() { w.Proto.Send(s, d, []byte("x")) })
	w.Eng.RunUntil(5)
	window := sc.Alert.NotifyT + sc.Alert.NotifyT0 + 0.05
	est, ok := obs.EstimateSource(1.0, 1.0+window)
	if !ok {
		return -1
	}
	return est.Dist(sPos)
}

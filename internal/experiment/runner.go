// The cell-runner seam between the figure generators and whatever executes
// their simulation cells. A figure enumerates every (Scenario, seed) run it
// needs, hands the whole batch to a Runner, and reduces the returned
// Results; how the cells actually execute — serially, across a worker pool,
// against a content-addressed cache, resumed from a killed campaign — is
// the Runner's business. DirectRunner is the dependency-free in-process
// implementation; internal/campaign's Engine layers persistence, caching
// and resume on the same interface.

package experiment

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"runtime"
	"sync"

	"alertmanet/internal/geo"
	"alertmanet/internal/mobility"
	"alertmanet/internal/rng"
)

// Runner executes figure cells. Both methods take the complete batch a
// figure needs and return results aligned index-for-index with the input,
// so a reduction can walk cells and results in lockstep. Implementations
// must be order-preserving and deterministic: the same batch yields the
// same results regardless of execution interleaving.
type Runner interface {
	// RunBatch executes full simulation cells; each Scenario carries its
	// own Seed.
	RunBatch(cells []Scenario) ([]Result, error)
	// RemainingBatch executes mobility-only destination-zone cells (the
	// Figs. 12-13 family, which samples node movement without routing).
	RemainingBatch(cells []RemainingSpec) ([]RemainingResult, error)
}

// RemainingSpec is one mobility-only cell: count how many of the nodes
// initially inside destination zones are still inside at each sample time,
// for one seed. It is self-contained (field and group parameters included)
// so its Hash identifies the cell the way Scenario.Hash identifies a run.
type RemainingSpec struct {
	Seed       int64
	N          int
	H          int
	Speed      float64
	Mobility   MobilityName
	Field      geo.Rect
	Groups     int
	GroupRange float64
	Times      []float64
	Dests      int
}

// Hash returns a hex SHA-256 content hash of the spec — the cell identity a
// campaign store keys results by, mirroring Scenario.Hash.
func (spec RemainingSpec) Hash() string {
	// RemainingSpec is plain marshalable data, like Scenario.
	buf, err := json.Marshal(spec)
	if err != nil {
		//lint:allowpanic a non-marshalable RemainingSpec is a compile-time-shape bug, not a runtime condition
		panic(fmt.Sprintf("experiment: hash remaining spec: %v", err))
	}
	sum := sha256.Sum256(buf)
	return hex.EncodeToString(sum[:])
}

// RemainingResult is one RemainingSpec cell's outcome: Sums[i] is the total
// remaining-node count at Times[i] summed over the spec's destination zones,
// and Count is how many zones started non-empty (the denominator when
// averaging across seeds). Both are exact integer-valued quantities, so
// aggregating per-seed results reproduces the pre-campaign pooled loop
// bit-for-bit.
type RemainingResult struct {
	Sums  []float64 `json:"sums"`
	Count int       `json:"count"`
}

// RunRemaining executes one mobility-only cell.
func RunRemaining(spec RemainingSpec) (RemainingResult, error) {
	if spec.N < 1 {
		return RemainingResult{}, fmt.Errorf("experiment: remaining cell needs at least one node, got %d", spec.N)
	}
	if spec.Field.Empty() {
		return RemainingResult{}, fmt.Errorf("experiment: remaining cell has empty field %v", spec.Field)
	}
	src := rng.New(spec.Seed)
	var m mobility.Model
	switch spec.Mobility {
	case GroupMobility:
		m = mobility.NewGroupMobility(spec.Field, spec.N, spec.Groups,
			spec.GroupRange, mobility.Fixed(spec.Speed), src)
	default:
		m = mobility.NewRandomWaypoint(spec.Field, spec.N, mobility.Fixed(spec.Speed), src)
	}
	res := RemainingResult{Sums: make([]float64, len(spec.Times))}
	pick := src.Split("dests")
	var initial []int // reused across destination zones
	for di := 0; di < spec.Dests; di++ {
		d := pick.Intn(spec.N)
		zone := geo.DestZone(spec.Field, m.Position(d, 0), spec.H, geo.Vertical)
		initial = mobility.NodesInInto(m, zone, 0, initial)
		if len(initial) == 0 {
			continue
		}
		res.Count++
		for ti, t := range spec.Times {
			remain := 0
			for _, id := range initial {
				if zone.Contains(m.Position(id, t)) {
					remain++
				}
			}
			res.Sums[ti] += float64(remain)
		}
	}
	return res, nil
}

// DirectRunner executes cells in-process across a bounded worker pool, with
// no caching or persistence — the moral equivalent of the pre-campaign
// mustRunParallel loops, behind the Runner seam. Jobs 0 means GOMAXPROCS.
type DirectRunner struct {
	Jobs int
}

// RunBatch executes every cell and returns results in input order.
func (d DirectRunner) RunBatch(cells []Scenario) ([]Result, error) {
	results := make([]Result, len(cells))
	err := forEachCell(len(cells), d.Jobs, func(i int) error {
		r, err := Run(cells[i])
		if err != nil {
			return fmt.Errorf("cell %d (%s seed %d): %w", i, cells[i].Protocol, cells[i].Seed, err)
		}
		results[i] = r
		return nil
	})
	if err != nil {
		return nil, err
	}
	return results, nil
}

// RemainingBatch executes every mobility-only cell in input order.
func (d DirectRunner) RemainingBatch(cells []RemainingSpec) ([]RemainingResult, error) {
	results := make([]RemainingResult, len(cells))
	err := forEachCell(len(cells), d.Jobs, func(i int) error {
		r, err := RunRemaining(cells[i])
		if err != nil {
			return fmt.Errorf("remaining cell %d (seed %d): %w", i, cells[i].Seed, err)
		}
		results[i] = r
		return nil
	})
	if err != nil {
		return nil, err
	}
	return results, nil
}

// forEachCell runs fn(0..n-1) across a pool of `jobs` workers (GOMAXPROCS
// when jobs <= 0) and joins every error in index order, so a batch failure
// report is deterministic no matter which worker hit it first.
func forEachCell(n, jobs int, fn func(i int) error) error {
	if jobs <= 0 {
		jobs = runtime.GOMAXPROCS(0)
	}
	if jobs > n {
		jobs = n
	}
	errs := make([]error, n)
	next := make(chan int)
	var wg sync.WaitGroup
	for w := 0; w < jobs; w++ {
		wg.Add(1)
		//lint:allowsharedstate cell-fan-out worker: each index i runs one whole simulation in its own engine and writes only errs[i]; no substrate crosses the boundary and cross-run order is not observable
		go func() {
			defer wg.Done()
			for i := range next {
				errs[i] = fn(i)
			}
		}()
	}
	for i := 0; i < n; i++ {
		//lint:allowsharedstate work-distribution token: a bare cell index, claimed by exactly one worker
		next <- i
	}
	close(next)
	wg.Wait()
	return errors.Join(errs...)
}

// The figure registry: every evaluation figure as data — a name, the title
// cmd/figures prints, a Plan that enumerates the cells the figure needs up
// front, and a Render that reduces executed cells into series. The split is
// what lets cmd/campaign run the union of all figures' cells as one
// deduplicated, resumable campaign and report per-figure completion without
// executing anything.

package experiment

import "alertmanet/internal/analysis"

// Paper-default figure parameters (what cmd/figures has always used).
const (
	defaultPackets = 20
	defaultHMax    = 7
	fig13bTarget   = 4
)

// defaultTimes is the Figs. 12/13a sample-time grid.
func defaultTimes() []float64 { return []float64{0, 5, 10, 15, 20, 30, 40, 50} }

// fig13bSpeeds is the Fig. 13b speed grid.
func fig13bSpeeds() []float64 { return []float64{1, 2, 4, 6, 8} }

// FigurePlan is the up-front cell enumeration of one figure: full
// simulation runs plus mobility-only remaining-nodes cells. Adaptive
// figures (Fig. 13b's density scan) cannot enumerate their cells before
// seeing results and return an empty plan; their cells still flow through
// the runner — and its cache — at render time.
type FigurePlan struct {
	Runs      []Scenario
	Remaining []RemainingSpec
}

// Cells returns the number of planned cells.
func (p FigurePlan) Cells() int { return len(p.Runs) + len(p.Remaining) }

// Figure is one registry entry.
type Figure struct {
	// Name is the CLI selector (fig10a ... fig17, energy).
	Name string
	// Title is the heading cmd/figures prints above the series.
	Title string
	// Plan enumerates the cells the figure needs for a given seed count.
	Plan func(seeds int) FigurePlan
	// Render executes the figure through the runner and reduces to series.
	Render func(r Runner, seeds int) ([]analysis.Series, error)
}

// Figures returns every series-producing figure of the evaluation in
// presentation order, at the paper's default parameters.
func Figures() []Figure {
	return []Figure{
		{
			Name:  "fig10a",
			Title: "Fig. 10a: cumulative actual participating nodes vs packets",
			Plan: func(seeds int) FigurePlan {
				return FigurePlan{Runs: fig10aCells(defaultPackets, seeds)}
			},
			Render: func(r Runner, seeds int) ([]analysis.Series, error) {
				return Fig10a(r, defaultPackets, seeds)
			},
		},
		{
			Name:  "fig10b",
			Title: "Fig. 10b: participating nodes after 20 packets vs network size",
			Plan: func(seeds int) FigurePlan {
				return FigurePlan{Runs: fig10bCells(defaultPackets, seeds)}
			},
			Render: func(r Runner, seeds int) ([]analysis.Series, error) {
				return Fig10b(r, defaultPackets, seeds)
			},
		},
		{
			Name:  "fig11",
			Title: "Fig. 11: random forwarders vs partitions (simulated; cf. Fig. 7b)",
			Plan: func(seeds int) FigurePlan {
				return FigurePlan{Runs: fig11Cells(defaultHMax, seeds)}
			},
			Render: func(r Runner, seeds int) ([]analysis.Series, error) {
				s, err := Fig11(r, defaultHMax, seeds)
				if err != nil {
					return nil, err
				}
				return []analysis.Series{s}, nil
			},
		},
		{
			Name:  "fig12",
			Title: "Fig. 12: remaining nodes in Z_D vs time by density (H=5, v=2)",
			Plan: func(seeds int) FigurePlan {
				var rem []RemainingSpec
				for _, n := range []int{100, 150, 200} {
					rem = append(rem, remainingCells(n, 5, 2, RandomWaypoint, defaultTimes(), 5, seeds)...)
				}
				return FigurePlan{Remaining: rem}
			},
			Render: func(r Runner, seeds int) ([]analysis.Series, error) {
				return Fig12(r, defaultTimes(), seeds)
			},
		},
		{
			Name:  "fig13a",
			Title: "Fig. 13a: remaining nodes vs time by H and speed (N=200)",
			Plan: func(seeds int) FigurePlan {
				var rem []RemainingSpec
				for _, h := range []int{4, 5} {
					for _, v := range []float64{0, 2, 4} {
						rem = append(rem, remainingCells(200, h, v, RandomWaypoint, defaultTimes(), 5, seeds)...)
					}
				}
				return FigurePlan{Remaining: rem}
			},
			Render: func(r Runner, seeds int) ([]analysis.Series, error) {
				return Fig13a(r, defaultTimes(), seeds)
			},
		},
		{
			Name:  "fig13b",
			Title: "Fig. 13b: required density vs speed (4 nodes remaining at t=10s)",
			// The density scan is adaptive: nothing to plan up front.
			Plan: func(seeds int) FigurePlan { return FigurePlan{} },
			Render: func(r Runner, seeds int) ([]analysis.Series, error) {
				s, err := Fig13b(r, fig13bTarget, fig13bSpeeds(), seeds)
				if err != nil {
					return nil, err
				}
				return []analysis.Series{s}, nil
			},
		},
		{
			Name:  "fig14a",
			Title: "Fig. 14a: latency per packet (s) vs number of nodes",
			Plan: func(seeds int) FigurePlan {
				return FigurePlan{Runs: sweepCells([]float64{50, 100, 150, 200}, seeds,
					func(sc *Scenario, x float64) { sc.N = int(x); sc.Duration = 40 })}
			},
			Render: func(r Runner, seeds int) ([]analysis.Series, error) {
				return Fig14a(r, seeds)
			},
		},
		{
			Name:  "fig14b",
			Title: "Fig. 14b: latency per packet (s) vs node speed",
			Plan: func(seeds int) FigurePlan {
				return FigurePlan{Runs: append(updSweepCells(seeds), fig14bTailCells(seeds)...)}
			},
			Render: func(r Runner, seeds int) ([]analysis.Series, error) {
				return Fig14b(r, seeds)
			},
		},
		{
			Name:  "fig15a",
			Title: "Fig. 15a: hops per packet vs number of nodes",
			Plan: func(seeds int) FigurePlan {
				return FigurePlan{Runs: append(
					sweepCells([]float64{50, 100, 150, 200}, seeds,
						func(sc *Scenario, x float64) { sc.N = int(x) }),
					fig15aExtraCells(seeds)...)}
			},
			Render: func(r Runner, seeds int) ([]analysis.Series, error) {
				return Fig15a(r, seeds)
			},
		},
		{
			Name:  "fig15b",
			Title: "Fig. 15b: hops per packet vs node speed",
			Plan: func(seeds int) FigurePlan {
				return FigurePlan{Runs: updSweepCells(seeds)}
			},
			Render: func(r Runner, seeds int) ([]analysis.Series, error) {
				return Fig15b(r, seeds)
			},
		},
		{
			Name:  "fig16a",
			Title: "Fig. 16a: delivery rate vs number of nodes",
			Plan: func(seeds int) FigurePlan {
				return FigurePlan{Runs: sweepCells([]float64{50, 100, 150, 200}, seeds,
					func(sc *Scenario, x float64) { sc.N = int(x); sc.Duration = 40 })}
			},
			Render: func(r Runner, seeds int) ([]analysis.Series, error) {
				return Fig16a(r, seeds)
			},
		},
		{
			Name:  "fig16b",
			Title: "Fig. 16b: delivery rate vs node speed (with/without destination update)",
			Plan: func(seeds int) FigurePlan {
				return FigurePlan{Runs: updSweepCells(seeds)}
			},
			Render: func(r Runner, seeds int) ([]analysis.Series, error) {
				return Fig16b(r, seeds)
			},
		},
		{
			Name:  "fig17",
			Title: "Fig. 17: ALERT delay (s) under different movement models",
			Plan: func(seeds int) FigurePlan {
				return FigurePlan{Runs: fig17Cells(seeds)}
			},
			Render: func(r Runner, seeds int) ([]analysis.Series, error) {
				return Fig17(r, seeds)
			},
		},
		{
			Name:  "energy",
			Title: "Energy per delivered packet (J, transmission + cryptography)",
			Plan: func(seeds int) FigurePlan {
				return FigurePlan{Runs: energyCells(seeds)}
			},
			Render: func(r Runner, seeds int) ([]analysis.Series, error) {
				return EnergySummary(r, seeds)
			},
		},
	}
}

// FindFigure returns the registry entry with the given name.
func FindFigure(name string) (Figure, bool) {
	for _, f := range Figures() {
		if f.Name == name {
			return f, true
		}
	}
	return Figure{}, false
}

// Text rendering of figure series for cmd/figures and EXPERIMENTS.md.

package experiment

import (
	"fmt"
	"io"
	"strings"

	"alertmanet/internal/analysis"
)

// RenderSeries prints labeled series as an aligned table: one row per x
// value, one column per series. Series whose x grids differ are printed
// back to back; single-point series print as label/value pairs.
func RenderSeries(w io.Writer, title string, series []analysis.Series) {
	fmt.Fprintf(w, "== %s ==\n", title)
	if len(series) == 0 {
		fmt.Fprintln(w, "(no data)")
		return
	}
	allSingle := true
	sameGrid := true
	for _, s := range series {
		if len(s.X) != 1 {
			allSingle = false
		}
		if len(s.X) != len(series[0].X) {
			sameGrid = false
		} else {
			for i := range s.X {
				//lint:allowfloatcompare axis values are copied sweep points, never recomputed; identity is exact
				if s.X[i] != series[0].X[i] {
					sameGrid = false
					break
				}
			}
		}
	}
	switch {
	case allSingle:
		for _, s := range series {
			fmt.Fprintf(w, "  %-32s %12.4f\n", s.Label, s.Y[0])
		}
	case sameGrid:
		fmt.Fprintf(w, "  %10s", "x")
		for _, s := range series {
			fmt.Fprintf(w, " %24s", truncate(s.Label, 24))
		}
		fmt.Fprintln(w)
		for i := range series[0].X {
			fmt.Fprintf(w, "  %10.2f", series[0].X[i])
			for _, s := range series {
				if s.Err != nil && i < len(s.Err) && s.Err[i] > 0 {
					fmt.Fprintf(w, " %24s",
						fmt.Sprintf("%.4f±%.4f", s.Y[i], s.Err[i]))
				} else {
					fmt.Fprintf(w, " %24.4f", s.Y[i])
				}
			}
			fmt.Fprintln(w)
		}
	default:
		for _, s := range series {
			fmt.Fprintf(w, "  -- %s --\n", s.Label)
			for i := range s.X {
				fmt.Fprintf(w, "    %10.2f %12.4f\n", s.X[i], s.Y[i])
			}
		}
	}
}

func truncate(s string, n int) string {
	if len(s) <= n {
		return s
	}
	return s[:n-1] + "…"
}

// RenderCSV prints series as CSV: a comment line with the title, a header
// row (x plus one column per series label), then one row per x value.
// Series with differing grids are emitted as separate blocks.
func RenderCSV(w io.Writer, title string, series []analysis.Series) {
	fmt.Fprintf(w, "# %s\n", title)
	if len(series) == 0 {
		return
	}
	sameGrid := true
	for _, s := range series {
		if len(s.X) != len(series[0].X) {
			sameGrid = false
			break
		}
		for i := range s.X {
			//lint:allowfloatcompare axis values are copied sweep points, never recomputed; identity is exact
			if s.X[i] != series[0].X[i] {
				sameGrid = false
				break
			}
		}
	}
	if !sameGrid {
		for _, s := range series {
			fmt.Fprintf(w, "# series: %s\nx,y\n", csvEscape(s.Label))
			for i := range s.X {
				fmt.Fprintf(w, "%g,%g\n", s.X[i], s.Y[i])
			}
		}
		return
	}
	withErr := false
	for _, s := range series {
		if s.Err != nil {
			withErr = true
			break
		}
	}
	fmt.Fprint(w, "x")
	for _, s := range series {
		fmt.Fprintf(w, ",%s", csvEscape(s.Label))
		if withErr {
			fmt.Fprintf(w, ",%s", csvEscape(s.Label+" ci95"))
		}
	}
	fmt.Fprintln(w)
	for i := range series[0].X {
		fmt.Fprintf(w, "%g", series[0].X[i])
		for _, s := range series {
			fmt.Fprintf(w, ",%g", s.Y[i])
			if withErr {
				e := 0.0
				if s.Err != nil && i < len(s.Err) {
					e = s.Err[i]
				}
				fmt.Fprintf(w, ",%g", e)
			}
		}
		fmt.Fprintln(w)
	}
}

func csvEscape(s string) string {
	if !strings.ContainsAny(s, ",\"\n") {
		return s
	}
	return "\"" + strings.ReplaceAll(s, "\"", "\"\"") + "\""
}

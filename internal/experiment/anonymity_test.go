package experiment

import (
	"fmt"
	"testing"
)

// TestIntersectionAttackGuardHelps is the Section 3.3 headline: without the
// two-step multicast a patient attacker converges on (or near) the
// destination; with it, the destination escapes the intersection.
func TestIntersectionAttackGuardHelps(t *testing.T) {
	dstPlain, dstGuard := 0, 0
	candPlain := 0
	const trials = 5
	for seed := int64(1); seed <= trials; seed++ {
		plain := IntersectionAttack(seed, 25, false)
		guard := IntersectionAttack(seed, 25, true)
		if plain.DstCandidate {
			dstPlain++
		}
		if guard.DstCandidate {
			dstGuard++
		}
		candPlain += plain.Candidates
	}
	// Plain broadcasting: D receives every packet, so it survives every
	// intersection — the attack keeps closing in.
	if dstPlain < trials-1 {
		t.Fatalf("plain broadcasting kept D a candidate only %d/%d times; attack model toothless",
			dstPlain, trials)
	}
	// The attacker's candidate pool shrinks toward D over the session.
	if candPlain/trials > 25 {
		t.Fatalf("plain candidate pool %d too large; intersection not converging",
			candPlain/trials)
	}
	// The two-step multicast makes D miss observed recipient sets, so the
	// intersection usually loses it entirely (Section 3.3's foil).
	if dstGuard >= dstPlain {
		t.Fatalf("guard did not help: D candidate %d/%d with vs %d/%d without",
			dstGuard, trials, dstPlain, trials)
	}
}

func TestIntersectionAttackObservesWaves(t *testing.T) {
	r := IntersectionAttack(3, 10, false)
	if r.Waves < 5 {
		t.Fatalf("attacker saw only %d waves for 10 packets", r.Waves)
	}
}

// TestSourceAnonymityNotifyAndGo: with the mechanism, the observer sees
// eta+1 transmitters; without it, essentially one.
func TestSourceAnonymityNotifyAndGo(t *testing.T) {
	with := SourceAnonymity(1, true)
	without := SourceAnonymity(1, false)
	if with.AnonymitySet <= without.AnonymitySet {
		t.Fatalf("notify-and-go set (%d) should exceed plain (%d)",
			with.AnonymitySet, without.AnonymitySet)
	}
	if with.Neighbors > 0 && with.AnonymitySet < with.Neighbors/2 {
		t.Fatalf("anonymity set %d far below eta=%d", with.AnonymitySet, with.Neighbors)
	}
	if without.AnonymitySet > 3 {
		t.Fatalf("plain send exposed %d transmitters near S; expected ~1",
			without.AnonymitySet)
	}
}

// TestTimingAttackALERTBlursSignature: GPSR's fixed path yields a high
// timing-correlation score; ALERT's random routes lower it (Section 3.2).
func TestTimingAttackALERTBlursSignature(t *testing.T) {
	var alertSum, gpsrSum float64
	const trials = 3
	for seed := int64(1); seed <= trials; seed++ {
		alertSum += TimingAttackScore(seed, ALERT, 20)
		gpsrSum += TimingAttackScore(seed, GPSR, 20)
	}
	if alertSum >= gpsrSum {
		t.Fatalf("ALERT timing score (%v) should be below GPSR (%v)",
			alertSum/trials, gpsrSum/trials)
	}
	if gpsrSum/trials < 0.5 {
		t.Fatalf("GPSR score %v too low; the attack should work on fixed paths",
			gpsrSum/trials)
	}
}

// TestInterceptionALERTDodgesCompromisedNodes: compromising the first
// route's relays captures (nearly) all GPSR traffic but only part of
// ALERT's (Section 3.1).
func TestInterceptionALERTDodgesCompromisedNodes(t *testing.T) {
	var alertSum, gpsrSum float64
	const trials = 3
	for seed := int64(1); seed <= trials; seed++ {
		alertSum += InterceptionExperiment(seed, ALERT, 20, 3)
		gpsrSum += InterceptionExperiment(seed, GPSR, 20, 3)
	}
	alertP := alertSum / trials
	gpsrP := gpsrSum / trials
	if gpsrP < 0.9 {
		t.Fatalf("GPSR interception %v; static shortest paths should be ~1", gpsrP)
	}
	if alertP >= gpsrP {
		t.Fatalf("ALERT interception (%v) should be below GPSR (%v)", alertP, gpsrP)
	}
}

func TestRemainingInZoneDecays(t *testing.T) {
	times := []float64{0.1, 10, 30, 60}
	remain := RemainingInZone(2, 200, 4, times)
	if remain[0] == 0 {
		t.Skip("empty destination zone in this placement")
	}
	if remain[len(remain)-1] > remain[0] {
		t.Fatalf("remaining nodes grew over time: %v", remain)
	}
}

func TestZoneOf(t *testing.T) {
	sc := DefaultScenario()
	w := MustBuild(sc)
	z := ZoneOf(w, 5)
	if z.Empty() {
		t.Fatal("zone empty")
	}
	if !w.Net.Field().ContainsRect(z) {
		t.Fatal("zone outside field")
	}
	// GPSR world: ZoneOf falls back to the default ALERT geometry.
	sc.Protocol = GPSR
	w2 := MustBuild(sc)
	z2 := ZoneOf(w2, 5)
	if z2.Empty() {
		t.Fatal("fallback zone empty")
	}
}

// TestDoSAttackALERTSurvives: after the adversary subverts the first
// route's relays, GPSR keeps feeding packets into the dead nodes while
// ALERT's random forwarders route around them (Section 3.1).
func TestDoSAttackALERTSurvives(t *testing.T) {
	var alertAfter, gpsrAfter float64
	var alertBase, gpsrBase float64
	const trials = 3
	for seed := int64(1); seed <= trials; seed++ {
		a := DoSAttack(seed, ALERT, 20, 3)
		g := DoSAttack(seed, GPSR, 20, 3)
		if a.Compromised == 0 || g.Compromised == 0 {
			t.Fatalf("seed %d: no nodes compromised (a=%d g=%d)",
				seed, a.Compromised, g.Compromised)
		}
		alertBase += a.BaselineDelivery
		gpsrBase += g.BaselineDelivery
		alertAfter += a.UnderAttackDelivery
		gpsrAfter += g.UnderAttackDelivery
	}
	if gpsrBase/trials < 0.9 {
		t.Fatalf("GPSR baseline delivery %v too low", gpsrBase/trials)
	}
	// GPSR must collapse: its only path runs through the dead relays.
	if gpsrAfter/trials > 0.5 {
		t.Fatalf("GPSR under DoS still delivers %v; compromise ineffective", gpsrAfter/trials)
	}
	// ALERT must keep a clear majority of its traffic flowing.
	if alertAfter/trials < 0.6 {
		t.Fatalf("ALERT under DoS delivers only %v", alertAfter/trials)
	}
	if alertAfter/trials <= gpsrAfter/trials {
		t.Fatalf("ALERT (%v) should out-deliver GPSR (%v) under DoS",
			alertAfter/trials, gpsrAfter/trials)
	}
	_ = alertBase
}

// TestIntersectionRemedyCost reproduces Section 3.3's trade-off argument:
// ZAP's zone enlargement makes per-packet cost grow through the session,
// while ALERT's two-step multicast keeps it flat.
func TestIntersectionRemedyCost(t *testing.T) {
	var zapGrowth, alertGrowth float64
	const trials = 3
	for seed := int64(1); seed <= trials; seed++ {
		z := IntersectionRemedyCost(seed, 15, false)
		a := IntersectionRemedyCost(seed, 15, true)
		if z.HopsFirst == 0 || a.HopsFirst == 0 {
			t.Fatalf("seed %d: degenerate sessions (%v, %v)", seed, z, a)
		}
		zapGrowth += z.HopsLast - z.HopsFirst
		alertGrowth += a.HopsLast - a.HopsFirst
	}
	if zapGrowth/trials <= 1 {
		t.Fatalf("ZAP enlargement overhead growth %v too small", zapGrowth/trials)
	}
	if alertGrowth >= zapGrowth/2 {
		t.Fatalf("ALERT guard cost growth (%v) should be far below ZAP's (%v)",
			alertGrowth/trials, zapGrowth/trials)
	}
}

// TestSourceLocationTriangulation: without cover traffic the attacker's
// estimate lands essentially on the source; notify-and-go pushes it off by
// a neighborhood-scale distance.
func TestSourceLocationTriangulation(t *testing.T) {
	var plainSum, coveredSum float64
	const trials = 3
	for seed := int64(1); seed <= trials; seed++ {
		plain := SourceLocationError(seed, false)
		covered := SourceLocationError(seed, true)
		if plain < 0 || covered < 0 {
			t.Fatalf("seed %d: no transmissions observed", seed)
		}
		plainSum += plain
		coveredSum += covered
	}
	if plainSum/trials > 20 {
		t.Fatalf("plain-send estimate off by %v m; should pinpoint S", plainSum/trials)
	}
	if coveredSum/trials < 3*plainSum/trials+20 {
		t.Fatalf("covered estimate (%v m) should smear far beyond plain (%v m)",
			coveredSum/trials, plainSum/trials)
	}
}

// TestReplayDeterminismDeep: two runs of the same seed agree packet by
// packet, not just in aggregate.
func TestReplayDeterminismDeep(t *testing.T) {
	collect := func() []string {
		sc := DefaultScenario()
		sc.Duration = 20
		w := MustBuild(sc)
		pairs := w.ChoosePairs()
		w.StartWorkload(pairs)
		w.Eng.RunUntil(sc.Duration + 5)
		var out []string
		for _, r := range w.Proto.Collector().Records() {
			out = append(out, fmt.Sprintf("%d:%d->%d d=%v hops=%d rfs=%d path=%v",
				r.Seq, r.Src, r.Dst, r.Delivered, r.Hops, r.RFs, r.Path))
		}
		return out
	}
	a := collect()
	b := collect()
	if len(a) != len(b) {
		t.Fatalf("record counts differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("record %d differs:\n%s\n%s", i, a[i], b[i])
		}
	}
}

// Named scenario presets: the configurations the paper (and its motivating
// use cases) keep returning to, addressable from the CLI.

package experiment

import (
	"fmt"
	"sort"
)

// Preset is a named, documented scenario configuration.
type Preset struct {
	Name        string
	Description string
	Scenario    Scenario
}

// Presets returns the built-in scenario presets, sorted by name.
func Presets() []Preset {
	mk := func(name, desc string, mutate func(*Scenario)) Preset {
		sc := DefaultScenario()
		mutate(&sc)
		return Preset{Name: name, Description: desc, Scenario: sc}
	}
	out := []Preset{
		mk("paper-default",
			"Section 5.2 defaults: 1 km², 200 nodes, 2 m/s RWP, 10 CBR pairs",
			func(sc *Scenario) {}),
		mk("sparse",
			"Fig. 16a's hard case: 50 nodes, connectivity holes",
			func(sc *Scenario) { sc.N = 50 }),
		mk("highspeed",
			"Fig. 14b/16b's stress: 8 m/s, no destination updates",
			func(sc *Scenario) { sc.Speed = 8; sc.LocUpdates = false }),
		mk("battlefield",
			"Squad movement: 10 groups / 150 m, intersection guard armed",
			func(sc *Scenario) {
				sc.Mobility = GroupMobility
				sc.Alert.IntersectionGuard = true
			}),
		mk("covert",
			"Full anonymity suite on: notify-and-go, guard, confirmations",
			func(sc *Scenario) {
				sc.Alert.NotifyAndGo = true
				sc.Alert.IntersectionGuard = true
				sc.Alert.Confirm = true
			}),
		mk("lossy",
			"20% frame loss with NAK recovery",
			func(sc *Scenario) {
				sc.LossRate = 0.2
				sc.Alert.NAKs = true
				sc.Alert.CompleteTimeout = 20
			}),
		mk("multimedia",
			"Voice-like stream: 160 B packets every 0.5 s per pair",
			func(sc *Scenario) {
				sc.PacketSize = 160
				sc.Interval = 0.5
				sc.Workload = Poisson
			}),
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// FindPreset returns the named preset or an error listing the valid names.
func FindPreset(name string) (Preset, error) {
	var names []string
	for _, p := range Presets() {
		if p.Name == name {
			return p, nil
		}
		names = append(names, p.Name)
	}
	return Preset{}, fmt.Errorf("experiment: unknown preset %q (have %v)", name, names)
}

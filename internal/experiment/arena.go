// Arena-style substrate reuse across seeds. A campaign worker burns through
// hundreds of single-seed runs back to back; each run used to build a fresh
// engine (event heap, id map) and allocate every packet record from scratch,
// so the allocator — not the simulation — bounded cells/min. An Arena keeps
// those structures alive between runs on one worker and recycles them.

package experiment

import (
	"alertmanet/internal/metrics"
	"alertmanet/internal/sim"
)

// Arena owns simulation substrate recycled across runs. It is single-
// goroutine state: one worker, one arena — it must never be shared between
// concurrently executing runs.
type Arena struct {
	eng  *sim.Engine
	recs metrics.RecordSlab
}

// NewArena returns an empty arena; capacity accrues over its first run.
func NewArena() *Arena { return &Arena{} }

// engine returns the arena's engine reset to the NewEngine state, keeping
// its allocated capacity.
func (a *Arena) engine() *sim.Engine {
	if a.eng == nil {
		a.eng = sim.NewEngine()
		return a.eng
	}
	a.eng.Reset()
	return a.eng
}

// RunArena is Run with the engine and packet records drawn from the arena.
// The sequencing (build, pairs, workload, drain, collect) is identical to
// Run — reuse must not perturb determinism, only allocation. A nil arena
// degrades to Run.
func RunArena(sc Scenario, a *Arena) (Result, error) {
	if a == nil {
		return Run(sc)
	}
	w, err := buildArena(sc, a)
	if err != nil {
		return Result{}, err
	}
	w.EnableTelemetry(nil)
	pairs := w.ChoosePairs()
	w.StartWorkload(pairs)
	if err := w.Drain(); err != nil {
		return Result{}, err
	}
	res := w.Collect(pairs)
	// The run's records are dead once collected into the Result (which
	// holds aggregates, not record pointers); hand them back for reuse.
	a.recs.Reset()
	return res, nil
}

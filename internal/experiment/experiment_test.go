package experiment

import (
	"fmt"
	"math"
	"os"
	"reflect"
	"strings"
	"testing"

	"alertmanet/internal/analysis"
	"alertmanet/internal/geo"
	"alertmanet/internal/gpsr"
	"alertmanet/internal/medium"
	"alertmanet/internal/metrics"
	"alertmanet/internal/sim"
	"alertmanet/internal/stats"
)

// TestDefaultScenarioAllProtocols checks every protocol completes the
// default workload with near-total delivery (Fig. 16a at 200 nodes).
func TestDefaultScenarioAllProtocols(t *testing.T) {
	for _, p := range []ProtocolName{ALERT, GPSR, ALARM, AO2P} {
		sc := DefaultScenario()
		sc.Protocol = p
		sc.Duration = 40
		r := MustRun(sc)
		if r.Sent == 0 {
			t.Fatalf("%s sent nothing", p)
		}
		if r.DeliveryRate < 0.9 {
			t.Fatalf("%s delivery = %v, want ~1 at 200 nodes", p, r.DeliveryRate)
		}
	}
}

// TestLatencyOrdering verifies the paper's headline (Fig. 14a): ALERT's
// latency is slightly above GPSR and far below the hop-by-hop-encryption
// protocols; AO2P sits marginally above ALARM.
func TestLatencyOrdering(t *testing.T) {
	lat := map[ProtocolName]float64{}
	for _, p := range []ProtocolName{ALERT, GPSR, ALARM, AO2P} {
		sc := DefaultScenario()
		sc.Protocol = p
		sc.Duration = 40
		lat[p] = MustRun(sc).MeanLatency
	}
	if lat[GPSR] >= lat[ALERT] {
		t.Fatalf("GPSR (%v) should be below ALERT (%v)", lat[GPSR], lat[ALERT])
	}
	if lat[ALERT] >= lat[ALARM]/5 {
		t.Fatalf("ALERT (%v) should be far below ALARM (%v)", lat[ALERT], lat[ALARM])
	}
	if lat[ALARM] >= lat[AO2P] {
		t.Fatalf("ALARM (%v) should be marginally below AO2P (%v)", lat[ALARM], lat[AO2P])
	}
}

// TestHopsOrdering verifies Fig. 15a's ordering: GPSR ~ AO2P < ALERT <
// ALARM including dissemination (about double ALERT).
func TestHopsOrdering(t *testing.T) {
	hops := map[ProtocolName]float64{}
	for _, p := range []ProtocolName{ALERT, GPSR, ALARM, AO2P} {
		sc := DefaultScenario()
		sc.Protocol = p
		hops[p] = MustRun(sc).HopsPerPacket
	}
	if hops[ALERT] <= hops[GPSR] {
		t.Fatalf("ALERT hops (%v) must exceed GPSR (%v)", hops[ALERT], hops[GPSR])
	}
	if hops[ALARM] <= hops[ALERT] {
		t.Fatalf("ALARM+dissemination (%v) must exceed ALERT (%v)", hops[ALARM], hops[ALERT])
	}
	ratio := hops[ALARM] / hops[ALERT]
	if ratio < 1.4 || ratio > 4 {
		t.Fatalf("ALARM/ALERT hop ratio %v, paper shows ~2x", ratio)
	}
}

// TestRouteAnonymity verifies Section 3.1's property through the
// RouteJaccard metric: ALERT's routes vary packet to packet while the
// shortest-path protocols repeat themselves.
func TestRouteAnonymity(t *testing.T) {
	sc := DefaultScenario()
	sc.Duration = 40
	alert := MustRun(sc)
	sc.Protocol = GPSR
	gpsrR := MustRun(sc)
	if alert.RouteJaccard >= gpsrR.RouteJaccard {
		t.Fatalf("ALERT route similarity (%v) must be below GPSR (%v)",
			alert.RouteJaccard, gpsrR.RouteJaccard)
	}
	if alert.RouteJaccard > 0.5 {
		t.Fatalf("ALERT routes too repeatable: %v", alert.RouteJaccard)
	}
	if gpsrR.RouteJaccard < 0.5 {
		t.Fatalf("GPSR routes should repeat: %v", gpsrR.RouteJaccard)
	}
}

// TestFig10aShape: ALERT accumulates many more actual participating nodes
// than GPSR, and more nodes at 200 than at 100 (Fig. 10a's reading).
func TestFig10aShape(t *testing.T) {
	series, err := Fig10a(DirectRunner{}, 20, 2)
	if err != nil {
		t.Fatal(err)
	}
	byLabel := map[string][]float64{}
	for _, s := range series {
		byLabel[s.Label] = s.Y
	}
	alert200 := byLabel["alert N=200"]
	gpsr200 := byLabel["gpsr N=200"]
	alert100 := byLabel["alert N=100"]
	if alert200 == nil || gpsr200 == nil || alert100 == nil {
		t.Fatalf("missing series: %v", byLabel)
	}
	last := len(alert200) - 1
	if alert200[last] < 2*gpsr200[last] {
		t.Fatalf("ALERT participants (%v) should dwarf GPSR (%v)",
			alert200[last], gpsr200[last])
	}
	// Paper: up to ~45 participants at 200 nodes, ~30 at 100, GPSR 2-3.
	if alert200[last] < 13 {
		t.Fatalf("ALERT@200 = %v, paper shows tens", alert200[last])
	}
	if gpsr200[last] > 8 {
		t.Fatalf("GPSR@200 = %v, paper shows 2-3", gpsr200[last])
	}
	// The paper reads ~30 participants at 100 nodes and ~45 at 200; with
	// few seeds the ordering is noisy, so assert it only loosely.
	if alert200[last] < 0.8*alert100[last] {
		t.Fatalf("participants at 200 nodes (%v) collapsed below 100 nodes (%v)",
			alert200[last], alert100[last])
	}
	// Cumulative series must be nondecreasing.
	for i := 1; i < len(alert200); i++ {
		if alert200[i] < alert200[i-1] {
			t.Fatal("cumulative participants decreased")
		}
	}
}

// TestFig11Shape: simulated RFs grow with H (Fig. 11, matching Fig. 7b's
// linear analysis).
func TestFig11Shape(t *testing.T) {
	s, err := Fig11(DirectRunner{}, 6, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(s.Y) != 6 {
		t.Fatalf("series length %d", len(s.Y))
	}
	if s.Y[5] <= s.Y[1] {
		t.Fatalf("RFs not growing with H: %v", s.Y)
	}
}

// TestFig12Shape: remaining nodes decay over time and order by density
// (Fig. 12).
func TestFig12Shape(t *testing.T) {
	times := []float64{0, 10, 20, 40}
	series, err := Fig12(DirectRunner{}, times, 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(series) != 3 {
		t.Fatal("want 3 density series")
	}
	for _, s := range series {
		if s.Y[len(s.Y)-1] > s.Y[0] {
			t.Fatalf("series %s not decaying: %v", s.Label, s.Y)
		}
	}
	// Density ordering at t=0: N=200 zone holds more than N=100.
	if series[2].Y[0] <= series[0].Y[0] {
		t.Fatalf("density ordering violated: %v vs %v", series[2].Y[0], series[0].Y[0])
	}
}

// TestFig13aShape: faster nodes leave the zone sooner; H=4 zones retain
// more than H=5 (Fig. 13a).
func TestFig13aShape(t *testing.T) {
	times := []float64{0, 10, 20}
	series, err := Fig13a(DirectRunner{}, times, 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(series) != 6 {
		t.Fatalf("want 6 series, got %d", len(series))
	}
	get := func(label string) []float64 {
		for _, s := range series {
			if s.Label == label {
				return s.Y
			}
		}
		t.Fatalf("missing series %s", label)
		return nil
	}
	// v=0 retains everything.
	v0 := get("H=5 v=0")
	if v0[2] < v0[0]-1e-9 {
		t.Fatalf("static nodes left the zone: %v", v0)
	}
	v2 := get("H=5 v=2")
	v4 := get("H=5 v=4")
	if v4[2] > v2[2] {
		t.Fatalf("faster nodes should retain fewer: v4=%v v2=%v", v4[2], v2[2])
	}
	h4 := get("H=4 v=2")
	if h4[0] <= v2[0] {
		t.Fatalf("H=4 zone should start with more nodes: %v vs %v", h4[0], v2[0])
	}
}

// TestFig13bShape: required density grows with speed (Fig. 13b).
func TestFig13bShape(t *testing.T) {
	s, err := Fig13b(DirectRunner{}, 4, []float64{2, 8}, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(s.Y) != 2 {
		t.Fatal("series length wrong")
	}
	if s.Y[1] <= s.Y[0] {
		t.Fatalf("required density should grow with speed: %v", s.Y)
	}
}

// TestFig16bShape: without destination updates, delivery drops with speed
// and ALERT out-delivers GPSR thanks to the final zone broadcast
// (Fig. 16b's "interesting observation").
func TestFig16bShape(t *testing.T) {
	run := func(p ProtocolName, speed float64, upd bool) float64 {
		sc := DefaultScenario()
		sc.Protocol = p
		sc.Speed = speed
		sc.LocUpdates = upd
		sc.Duration = 40
		var sum float64
		const seeds = 3
		for s := 1; s <= seeds; s++ {
			sc.Seed = int64(s)
			sum += MustRun(sc).DeliveryRate
		}
		return sum / seeds
	}
	alertNo := run(ALERT, 8, false)
	gpsrNo := run(GPSR, 8, false)
	gpsrYes := run(GPSR, 8, true)
	if gpsrNo >= gpsrYes {
		t.Fatalf("GPSR without updates (%v) should trail with updates (%v)", gpsrNo, gpsrYes)
	}
	if alertNo <= gpsrNo {
		t.Fatalf("ALERT without updates (%v) should beat GPSR (%v) — final broadcast",
			alertNo, gpsrNo)
	}
}

// TestFig17Shape: group mobility increases ALERT's delay, and 5 groups
// (less randomized) increase it more than 10 groups (Fig. 17).
func TestFig17Shape(t *testing.T) {
	series, err := Fig17(DirectRunner{}, 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(series) != 3 {
		t.Fatal("want 3 series")
	}
	rwp := series[0].Y[0]
	g10 := series[1].Y[0]
	g5 := series[2].Y[0]
	if rwp <= 0 {
		t.Fatal("no latency measured")
	}
	if g10 < rwp*0.8 {
		t.Fatalf("group mobility (%v) should not beat RWP (%v) decisively", g10, rwp)
	}
	if g5 < g10*0.8 {
		t.Fatalf("5 groups (%v) should not be decisively faster than 10 groups (%v)", g5, g10)
	}
}

func TestRunSeedsAggregates(t *testing.T) {
	sc := DefaultScenario()
	sc.Duration = 20
	agg := MustRunSeeds(sc, 3)
	if agg.DeliveryRate.N != 3 {
		t.Fatalf("aggregate N = %d", agg.DeliveryRate.N)
	}
	if agg.DeliveryRate.Mean <= 0 || agg.DeliveryRate.Mean > 1 {
		t.Fatalf("delivery mean = %v", agg.DeliveryRate.Mean)
	}
	if agg.MeanLatency.CI95 < 0 {
		t.Fatal("negative CI")
	}
}

func TestChoosePairsValid(t *testing.T) {
	sc := DefaultScenario()
	w := MustBuild(sc)
	pairs := w.ChoosePairs()
	if len(pairs) != sc.Pairs {
		t.Fatalf("pairs = %d", len(pairs))
	}
	for _, p := range pairs {
		if p.S == p.D {
			t.Fatal("self-pair generated")
		}
		if int(p.S) >= sc.N || int(p.D) >= sc.N {
			t.Fatal("pair out of range")
		}
	}
}

func TestDeterministicRuns(t *testing.T) {
	sc := DefaultScenario()
	sc.Duration = 20
	a := MustRun(sc)
	b := MustRun(sc)
	// Every field — counters, means, percentiles, the cumulative delivery
	// curve — must match bit-for-bit: a run is a pure function of
	// (Scenario, seed). Comparing the whole struct means a new
	// nondeterministic metric cannot slip in unnoticed.
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("same seed produced different results:\n%+v\nvs\n%+v", a, b)
	}
	sc.Seed = 999
	c := MustRun(sc)
	if a.MeanLatency == c.MeanLatency && a.Participants == c.Participants {
		t.Fatal("different seeds produced identical results")
	}
}

// TestSeedDeterminismParallel is the regression test for the determinism
// contract alertlint enforces statically: results must not depend on
// scheduling. A seed's Result is identical whether the run executes alone
// or concurrently with other seeds on RunParallel's worker pool, and two
// parallel sweeps agree with each other.
func TestSeedDeterminismParallel(t *testing.T) {
	sc := DefaultScenario()
	sc.Duration = 20
	const seeds = 4

	par1, err := RunParallel(sc, seeds)
	if err != nil {
		t.Fatal(err)
	}
	par2, err := RunParallel(sc, seeds)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(par1, par2) {
		t.Fatalf("two parallel sweeps disagree:\n%+v\nvs\n%+v", par1, par2)
	}

	for i := 0; i < seeds; i++ {
		run := sc
		run.Seed = int64(i + 1) // RunParallel assigns seeds 1..N
		seq, err := Run(run)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(seq, par1[i]) {
			t.Fatalf("seed %d: sequential and parallel results differ:\n%+v\nvs\n%+v",
				run.Seed, seq, par1[i])
		}
	}
}

func TestGroupMobilityScenario(t *testing.T) {
	sc := DefaultScenario()
	sc.Mobility = GroupMobility
	sc.Duration = 20
	r := MustRun(sc)
	if r.Sent == 0 {
		t.Fatal("group mobility scenario sent nothing")
	}
}

func TestStaticScenario(t *testing.T) {
	sc := DefaultScenario()
	sc.Mobility = Static
	sc.Duration = 20
	r := MustRun(sc)
	if r.DeliveryRate < 0.9 {
		t.Fatalf("static delivery = %v", r.DeliveryRate)
	}
}

func TestTable1(t *testing.T) {
	rows := Table1()
	if len(rows) != 13 {
		t.Fatalf("table rows = %d", len(rows))
	}
	foundALERT := false
	for _, r := range rows {
		if strings.HasPrefix(r.Name, "ALERT") {
			foundALERT = true
			if r.RouteAnonymity != "yes" || !strings.Contains(r.IdentityAnonymity, "source") {
				t.Fatal("ALERT row wrong")
			}
		}
	}
	if !foundALERT {
		t.Fatal("ALERT missing from taxonomy")
	}
	txt := FormatTable1()
	if !strings.Contains(txt, "ANODR") || !strings.Contains(txt, "Route anonymity") {
		t.Fatal("formatted table incomplete")
	}
}

func TestRenderSeries(t *testing.T) {
	var sb strings.Builder
	RenderSeries(&sb, "empty", nil)
	if !strings.Contains(sb.String(), "(no data)") {
		t.Fatal("empty render wrong")
	}
	sb.Reset()
	series := []analysis.Series{
		{Label: "a", X: []float64{1, 2}, Y: []float64{3, 4}},
		{Label: "b", X: []float64{1, 2}, Y: []float64{5, 6}},
	}
	RenderSeries(&sb, "grid", series)
	out := sb.String()
	if !strings.Contains(out, "== grid ==") || !strings.Contains(out, "5.0000") {
		t.Fatalf("render output:\n%s", out)
	}
	// Single-point series render as label/value pairs.
	sb.Reset()
	RenderSeries(&sb, "bars", []analysis.Series{
		{Label: "one", X: []float64{0}, Y: []float64{7}},
	})
	if !strings.Contains(sb.String(), "one") || !strings.Contains(sb.String(), "7.0000") {
		t.Fatalf("single-point render:\n%s", sb.String())
	}
	// Mismatched grids fall back to per-series blocks.
	sb.Reset()
	RenderSeries(&sb, "mixed", []analysis.Series{
		{Label: "p", X: []float64{1}, Y: []float64{2}},
		{Label: "q", X: []float64{1, 2}, Y: []float64{3, 4}},
	})
	if !strings.Contains(sb.String(), "-- p --") {
		t.Fatalf("mixed render:\n%s", sb.String())
	}
}

func TestRenderCSV(t *testing.T) {
	var sb strings.Builder
	series := []analysis.Series{
		{Label: "a", X: []float64{1, 2}, Y: []float64{3, 4}},
		{Label: "b,comma", X: []float64{1, 2}, Y: []float64{5, 6}},
	}
	RenderCSV(&sb, "demo", series)
	out := sb.String()
	if !strings.Contains(out, "# demo") ||
		!strings.Contains(out, `x,a,"b,comma"`) ||
		!strings.Contains(out, "1,3,5") || !strings.Contains(out, "2,4,6") {
		t.Fatalf("csv output:\n%s", out)
	}
	// Mismatched grids fall back to per-series blocks.
	sb.Reset()
	RenderCSV(&sb, "mixed", []analysis.Series{
		{Label: "p", X: []float64{1}, Y: []float64{2}},
		{Label: "q", X: []float64{1, 2}, Y: []float64{3, 4}},
	})
	if !strings.Contains(sb.String(), "# series: p") {
		t.Fatalf("mixed csv:\n%s", sb.String())
	}
	// Empty series: just the title.
	sb.Reset()
	RenderCSV(&sb, "empty", nil)
	if strings.TrimSpace(sb.String()) != "# empty" {
		t.Fatalf("empty csv:\n%q", sb.String())
	}
}

func TestZAPScenario(t *testing.T) {
	sc := DefaultScenario()
	sc.Protocol = ZAP
	sc.Duration = 20
	r := MustRun(sc)
	if r.DeliveryRate < 0.9 {
		t.Fatalf("ZAP delivery = %v", r.DeliveryRate)
	}
	if r.MeanRFs != 0 {
		t.Fatal("ZAP should report no random forwarders")
	}
}

func TestNS2TraceScenario(t *testing.T) {
	// Write a small chain trace and route over it.
	dir := t.TempDir()
	path := dir + "/chain.tcl"
	var sb strings.Builder
	for i := 0; i < 6; i++ {
		fmt.Fprintf(&sb, "$node_(%d) set X_ %d\n$node_(%d) set Y_ 500\n", i, i*180+50, i)
	}
	if err := os.WriteFile(path, []byte(sb.String()), 0o644); err != nil {
		t.Fatal(err)
	}
	sc := DefaultScenario()
	sc.Protocol = GPSR
	sc.Mobility = NS2Trace
	sc.NS2TracePath = path
	sc.Pairs = 1
	sc.Duration = 20
	r := MustRun(sc)
	if r.Sent == 0 {
		t.Fatal("trace scenario sent nothing")
	}
}

func TestLatencyPercentilesAndJitter(t *testing.T) {
	sc := DefaultScenario()
	sc.Duration = 40
	r := MustRun(sc)
	if r.LatencyP50 <= 0 || r.LatencyP95 < r.LatencyP50 || r.LatencyP99 < r.LatencyP95 {
		t.Fatalf("percentiles disordered: p50=%v p95=%v p99=%v",
			r.LatencyP50, r.LatencyP95, r.LatencyP99)
	}
	if r.Jitter < 0 {
		t.Fatal("negative jitter")
	}
	// ALERT's random paths must jitter more than GPSR's fixed ones.
	sc.Protocol = GPSR
	g := MustRun(sc)
	if r.Jitter <= g.Jitter {
		t.Fatalf("ALERT jitter (%v) should exceed GPSR (%v)", r.Jitter, g.Jitter)
	}
}

func TestRunSeedsParallelMatchesSerial(t *testing.T) {
	// Parallel RunSeeds must aggregate exactly what serial per-seed Run
	// calls produce.
	sc := DefaultScenario()
	sc.Duration = 15
	agg := MustRunSeeds(sc, 3)
	var manual stats.Sample
	for s := 1; s <= 3; s++ {
		run := sc
		run.Seed = int64(s)
		manual.Add(MustRun(run).DeliveryRate)
	}
	if agg.DeliveryRate.Mean != manual.Mean() {
		t.Fatalf("parallel mean %v != serial mean %v",
			agg.DeliveryRate.Mean, manual.Mean())
	}
}

func TestCompareProtocols(t *testing.T) {
	comps, err := CompareProtocols(DirectRunner{}, []ProtocolName{ALERT, GPSR}, 3, 20)
	if err != nil {
		t.Fatal(err)
	}
	if len(comps) != 5 { // five metrics, one pair each
		t.Fatalf("comparisons = %d", len(comps))
	}
	byMetric := map[string]Comparison{}
	for _, c := range comps {
		if c.A != ALERT || c.B != GPSR {
			t.Fatalf("unexpected pair %v vs %v", c.A, c.B)
		}
		byMetric[c.Metric] = c
	}
	// The headline differences must come out significant even at 3 seeds.
	if !byMetric["latency"].Welch.Significant {
		t.Fatal("latency difference not significant")
	}
	if !byMetric["route-similarity"].Welch.Significant {
		t.Fatal("route-similarity difference not significant")
	}
	if byMetric["hops/packet"].MeanA <= byMetric["hops/packet"].MeanB {
		t.Fatal("ALERT should use more hops than GPSR")
	}
}

func TestGini(t *testing.T) {
	if g := gini([]uint64{5, 5, 5, 5}); g > 1e-9 {
		t.Fatalf("even load Gini = %v, want 0", g)
	}
	if g := gini([]uint64{0, 0, 0, 100}); g < 0.7 {
		t.Fatalf("concentrated load Gini = %v, want near 1", g)
	}
	if g := gini(nil); g != 0 {
		t.Fatal("empty Gini wrong")
	}
	if g := gini([]uint64{0, 0}); g != 0 {
		t.Fatal("zero-traffic Gini wrong")
	}
	a := gini([]uint64{1, 2, 3, 4})
	b := gini([]uint64{1, 1, 4, 4})
	if a <= 0 || b <= 0 || a >= 1 || b >= 1 {
		t.Fatalf("gini out of range: %v %v", a, b)
	}
}

// TestLoadBalanceALERTSpreadsWork: ALERT's random relays distribute the
// transmission load far more evenly than GPSR's repeated shortest paths —
// a battery-life side benefit of the anonymity design.
func TestLoadBalanceALERTSpreadsWork(t *testing.T) {
	sc := DefaultScenario()
	sc.Mobility = Static // fixed paths: GPSR's worst case
	sc.Duration = 40
	alertR := MustRun(sc)
	sc.Protocol = GPSR
	gpsrR := MustRun(sc)
	if alertR.LoadGini >= gpsrR.LoadGini {
		t.Fatalf("ALERT load Gini (%v) should be below GPSR (%v)",
			alertR.LoadGini, gpsrR.LoadGini)
	}
}

func TestPresets(t *testing.T) {
	ps := Presets()
	if len(ps) < 6 {
		t.Fatalf("only %d presets", len(ps))
	}
	seen := map[string]bool{}
	for _, p := range ps {
		if p.Name == "" || p.Description == "" {
			t.Fatalf("preset missing metadata: %+v", p)
		}
		if seen[p.Name] {
			t.Fatalf("duplicate preset %q", p.Name)
		}
		seen[p.Name] = true
		// Every preset must actually run.
		sc := p.Scenario
		sc.Duration = 10
		r := MustRun(sc)
		if r.Sent == 0 {
			t.Fatalf("preset %q sent nothing", p.Name)
		}
	}
	if _, err := FindPreset("battlefield"); err != nil {
		t.Fatal(err)
	}
	if _, err := FindPreset("nope"); err == nil {
		t.Fatal("unknown preset accepted")
	}
}

func TestWorkloadModels(t *testing.T) {
	rates := map[WorkloadName]int{}
	for _, wl := range []WorkloadName{CBR, Poisson, Burst} {
		sc := DefaultScenario()
		sc.Workload = wl
		sc.Duration = 60
		r := MustRun(sc)
		if r.Sent == 0 {
			t.Fatalf("%s sent nothing", wl)
		}
		if r.DeliveryRate < 0.85 {
			t.Fatalf("%s delivery = %v", wl, r.DeliveryRate)
		}
		rates[wl] = r.Sent
	}
	// Long-run rates should be within a factor ~2.5 of each other (same
	// mean design, different variance).
	if rates[Poisson] < rates[CBR]/3 || rates[Poisson] > rates[CBR]*3 {
		t.Fatalf("poisson rate %d far from cbr %d", rates[Poisson], rates[CBR])
	}
	if rates[Burst] < rates[CBR]/4 || rates[Burst] > rates[CBR]*4 {
		t.Fatalf("burst rate %d far from cbr %d", rates[Burst], rates[CBR])
	}
}

func TestBurstIsBursty(t *testing.T) {
	// Burst traffic's inter-send gaps must show higher variance than CBR.
	gaps := func(wl WorkloadName) float64 {
		sc := DefaultScenario()
		sc.Workload = wl
		sc.Pairs = 1
		sc.Duration = 80
		w := MustBuild(sc)
		var times []float64
		w.Med.TapSend(func(tx medium.Transmission) {
			if _, ok := tx.Payload.(*gpsr.Packet); ok {
				times = append(times, tx.At)
			}
		})
		pairs := w.ChoosePairs()
		w.StartWorkload(pairs)
		w.Eng.RunUntil(sc.Duration)
		var s stats.Sample
		for i := 1; i < len(times); i++ {
			s.Add(times[i] - times[i-1])
		}
		return s.StdDev()
	}
	if gaps(Burst) <= gaps(CBR) {
		t.Fatal("burst gaps should vary more than CBR gaps")
	}
}

func TestValidateRejectsEachBadField(t *testing.T) {
	cases := []struct {
		name   string
		mutate func(*Scenario)
	}{
		{"bad protocol", func(sc *Scenario) { sc.Protocol = "carrier-pigeon" }},
		{"bad workload", func(sc *Scenario) { sc.Workload = "telepathy" }},
		{"bad mobility", func(sc *Scenario) { sc.Mobility = "teleport" }},
		{"missing trace path", func(sc *Scenario) { sc.Mobility = NS2Trace; sc.NS2TracePath = "" }},
		{"too few nodes", func(sc *Scenario) { sc.N = 1 }},
		{"empty field", func(sc *Scenario) { sc.Field = geo.Rect{} }},
		{"zero duration", func(sc *Scenario) { sc.Duration = 0 }},
		{"negative duration", func(sc *Scenario) { sc.Duration = -5 }},
		{"negative drain", func(sc *Scenario) { sc.DrainTime = -1 }},
		{"zero interval", func(sc *Scenario) { sc.Interval = 0 }},
		{"zero pairs", func(sc *Scenario) { sc.Pairs = 0 }},
		{"pairs exceed distinct flows", func(sc *Scenario) { sc.N = 3; sc.Pairs = 7 }},
		{"negative packet cap", func(sc *Scenario) { sc.Packets = -1 }},
		{"negative speed", func(sc *Scenario) { sc.Speed = -2 }},
		{"loss rate above 1", func(sc *Scenario) { sc.LossRate = 1.5 }},
		{"negative loss rate", func(sc *Scenario) { sc.LossRate = -0.1 }},
	}
	for _, c := range cases {
		sc := DefaultScenario()
		c.mutate(&sc)
		if err := sc.Validate(); err == nil {
			t.Errorf("%s: Validate accepted %+v", c.name, sc)
		}
	}
	if err := DefaultScenario().Validate(); err != nil {
		t.Fatalf("default scenario rejected: %v", err)
	}
	// Empty workload means CBR and is valid.
	sc := DefaultScenario()
	sc.Workload = ""
	if err := sc.Validate(); err != nil {
		t.Fatalf("empty workload rejected: %v", err)
	}
}

func TestBuildErrorsOnBadConfig(t *testing.T) {
	sc := DefaultScenario()
	sc.Protocol = "carrier-pigeon"
	if _, err := Build(sc); err == nil {
		t.Fatal("Build accepted an unknown protocol")
	}
	if _, err := Run(sc); err == nil {
		t.Fatal("Run accepted an unknown protocol")
	}
	if _, err := RunSeeds(sc, 2); err == nil {
		t.Fatal("RunSeeds accepted an unknown protocol")
	}
	sc = DefaultScenario()
	sc.Mobility = NS2Trace
	sc.NS2TracePath = "/nonexistent/trace.tcl"
	if _, err := Build(sc); err == nil {
		t.Fatal("Build accepted a missing NS-2 trace")
	}
}

// sendTap wraps a World's protocol to record when every application send
// fires, so tests can assert on the workload driver's schedule.
type sendTap struct {
	Proto
	eng    *sim.Engine
	times  []float64
	byPair map[Pair][]float64
}

func (s *sendTap) Send(src, dst medium.NodeID, data []byte) (*metrics.PacketRecord, error) {
	s.times = append(s.times, s.eng.Now())
	if s.byPair == nil {
		s.byPair = map[Pair][]float64{}
	}
	p := Pair{S: src, D: dst}
	s.byPair[p] = append(s.byPair[p], s.eng.Now())
	return s.Proto.Send(src, dst, data)
}

// TestNoSendsAfterDuration is the regression test for the CBR horizon bug:
// under every traffic model, no send may fire after Scenario.Duration even
// though the run drains well past it.
func TestNoSendsAfterDuration(t *testing.T) {
	for _, wl := range []WorkloadName{CBR, Poisson, Burst} {
		sc := DefaultScenario()
		sc.Workload = wl
		sc.Duration = 30
		sc.DrainTime = 15
		w := MustBuild(sc)
		tap := &sendTap{Proto: w.Proto, eng: w.Eng}
		w.Proto = tap
		w.StartWorkload(w.ChoosePairs())
		w.Drain()
		if len(tap.times) == 0 {
			t.Fatalf("%s sent nothing", wl)
		}
		for _, at := range tap.times {
			if at > sc.Duration {
				t.Fatalf("%s sent at t=%v, after Duration=%v", wl, at, sc.Duration)
			}
		}
	}
}

// TestCBRSendCount checks CBR's exact packet count: each pair sends at
// offset, offset+Interval, ... while <= Duration, i.e.
// floor((Duration-offset)/Interval) + 1 packets.
func TestCBRSendCount(t *testing.T) {
	sc := DefaultScenario()
	sc.Duration = 33 // not a multiple of Interval, exercises the floor
	w := MustBuild(sc)
	tap := &sendTap{Proto: w.Proto, eng: w.Eng}
	w.Proto = tap
	pairs := w.ChoosePairs()
	w.StartWorkload(pairs)
	w.Drain()
	if len(tap.byPair) != len(pairs) {
		t.Fatalf("observed %d sending pairs, want %d", len(tap.byPair), len(pairs))
	}
	total := 0
	for p, times := range tap.byPair {
		offset := times[0] // the pair's first send is its offset
		if offset < 0 || offset >= sc.Interval/2 {
			t.Fatalf("pair %v offset %v outside [0, Interval/2)", p, offset)
		}
		want := int(math.Floor((sc.Duration-offset)/sc.Interval)) + 1
		if len(times) != want {
			t.Fatalf("pair %v sent %d packets, want floor((%v-%v)/%v)+1 = %d",
				p, len(times), sc.Duration, offset, sc.Interval, want)
		}
		total += want
	}
	if got := w.Proto.Collector().Sent(); got != total {
		t.Fatalf("collector counted %d sends, want %d", got, total)
	}
}

// TestCBRPacketsCap: the per-pair cap stops CBR before the horizon.
func TestCBRPacketsCap(t *testing.T) {
	sc := DefaultScenario()
	sc.Duration = 40
	sc.Packets = 3
	r := MustRun(sc)
	if want := sc.Packets * sc.Pairs; r.Sent != want {
		t.Fatalf("capped CBR sent %d, want %d", r.Sent, want)
	}
}

func TestChoosePairsDistinct(t *testing.T) {
	sc := DefaultScenario()
	sc.N = 5
	sc.Pairs = 10 // half of the 20 possible ordered pairs: collisions certain
	w := MustBuild(sc)
	pairs := w.ChoosePairs()
	if len(pairs) != sc.Pairs {
		t.Fatalf("pairs = %d", len(pairs))
	}
	seen := map[Pair]bool{}
	for _, p := range pairs {
		if seen[p] {
			t.Fatalf("duplicate pair %v", p)
		}
		seen[p] = true
	}
}

// The workload driver: one send-scheduling loop for every traffic model.
//
// Each S-D pair's traffic is described by an arrivalProcess that only
// produces inter-send gaps; the driver owns the two stop conditions every
// workload shares — the Scenario.Duration send horizon and the optional
// Packets cap — so no traffic model can outlive the measurement window.
// After Duration the run drains for Scenario.DrainTime seconds (see
// World.Drain) to let in-flight packets finish, and nothing sends during
// the drain.

package experiment

import (
	"alertmanet/internal/rng"
	"alertmanet/internal/sim"
)

// arrivalProcess produces the inter-send gaps of one pair's traffic. It
// carries the process state (burst phase, random stream); the driver owns
// all stop conditions.
type arrivalProcess interface {
	// First returns the delay from t=0 to the pair's first send.
	First() float64
	// Gap returns the delay from the send that just fired at time now to
	// the next send.
	Gap(now float64) float64
	// FixedInterval returns the constant inter-send gap for metronomic
	// processes (CBR), so the driver can ride sim's TickerUntil; variable
	// processes return 0, false.
	FixedInterval() (float64, bool)
}

// newArrivalProcess builds the scenario's traffic model for one pair. An
// empty Workload means CBR, the paper's model.
func newArrivalProcess(sc Scenario, src *rng.Source) arrivalProcess {
	switch sc.Workload {
	case Poisson:
		return &poissonProcess{mean: sc.Interval, src: src}
	case Burst:
		return &burstProcess{
			spacing:   sc.Interval / 2,
			meanBurst: 4.0, // seconds of talkspurt; off periods match
			offset:    src.Uniform(0, sc.Interval),
			src:       src,
		}
	default:
		return &cbrProcess{
			interval: sc.Interval,
			offset:   src.Uniform(0, sc.Interval/2),
		}
	}
}

// cbrProcess is the paper's constant-bit-rate stream: one packet every
// Interval seconds, pairs desynchronized by a random initial offset.
type cbrProcess struct {
	interval, offset float64
}

func (p *cbrProcess) First() float64                 { return p.offset }
func (p *cbrProcess) Gap(float64) float64            { return p.interval }
func (p *cbrProcess) FixedInterval() (float64, bool) { return p.interval, true }

// poissonProcess draws exponential gaps with mean Interval — the same
// long-run rate as CBR with memoryless arrivals.
type poissonProcess struct {
	mean float64
	src  *rng.Source
}

func (p *poissonProcess) First() float64                 { return p.src.Exponential(p.mean) }
func (p *poissonProcess) Gap(float64) float64            { return p.src.Exponential(p.mean) }
func (p *poissonProcess) FixedInterval() (float64, bool) { return 0, false }

// burstProcess alternates exponential on-periods (packets every Interval/2)
// with exponential off-periods of the same mean, keeping the long-run mean
// rate of one packet per Interval: multimedia frames arrive in talkspurts,
// not on a metronome.
type burstProcess struct {
	spacing   float64 // intra-burst packet gap
	meanBurst float64 // mean talkspurt and mean silence, seconds
	offset    float64 // delay before the first talkspurt
	src       *rng.Source
	end       float64 // absolute end of the current talkspurt
	started   bool
}

func (p *burstProcess) First() float64                 { return p.offset }
func (p *burstProcess) FixedInterval() (float64, bool) { return 0, false }

func (p *burstProcess) Gap(now float64) float64 {
	if !p.started {
		// The first send opened the first talkspurt.
		p.started = true
		p.end = now + p.src.Exponential(p.meanBurst)
	}
	if now+p.spacing < p.end {
		return p.spacing
	}
	// Talkspurt over: sit out an exponential silence, then open a new
	// talkspurt whose first packet sends immediately.
	gap := p.spacing + p.src.Exponential(p.meanBurst)
	p.end = now + gap + p.src.Exponential(p.meanBurst)
	return gap
}

// StartWorkload schedules the scenario's traffic model for each pair
// through the shared workload driver: CBR sends every Interval seconds;
// Poisson draws exponential gaps with mean Interval; Burst alternates
// exponential on-periods (packets every Interval/2) with exponential
// off-periods at the same long-run mean rate. Every model stops sending at
// Scenario.Duration (inclusive) or after Scenario.Packets per pair,
// whichever comes first.
func (w *World) StartWorkload(pairs []Pair) {
	payload := make([]byte, 64)
	w.Rand.Read(payload)
	for i, pr := range pairs {
		src := w.Rand.SplitIndex("pair", i)
		w.startPair(pr, payload, newArrivalProcess(w.Scenario, src))
	}
}

// startPair drives one pair's sends. This is the only send loop in the
// harness: the Duration horizon and the Packets cap are enforced here for
// every traffic model, so a workload cannot transmit into the drain phase.
func (w *World) startPair(pr Pair, payload []byte, p arrivalProcess) {
	sc := w.Scenario
	sent := 0
	// send fires one packet; it returns false once the Packets cap forbids
	// any further traffic.
	send := func() bool {
		if sc.Packets > 0 && sent >= sc.Packets {
			return false
		}
		sent++
		w.Proto.Send(pr.S, pr.D, payload)
		return sc.Packets <= 0 || sent < sc.Packets
	}
	if interval, fixed := p.FixedInterval(); fixed {
		// Metronomic traffic rides the engine's horizon-bounded ticker.
		var stop func()
		stop = w.Eng.TickerUntil(p.First(), interval, sc.Duration, func(sim.Time) {
			if !send() {
				stop()
			}
		})
		return
	}
	var fire func()
	fire = func() {
		if !send() {
			return
		}
		next := w.Eng.Now() + p.Gap(w.Eng.Now())
		if next > sc.Duration {
			return
		}
		w.Eng.At(next, fire)
	}
	if first := p.First(); first <= sc.Duration {
		w.Eng.At(first, fire)
	}
}

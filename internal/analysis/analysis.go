// Package analysis implements the closed-form results of Section 4 of the
// paper — Equations (1) through (15) — and the series generators behind its
// analytical figures: possible participating nodes (Fig. 7a), expected
// random forwarders (Fig. 7b), and destination-zone remaining nodes over
// time (Figs. 9a, 9b). The simulation figures (10-17) are checked against
// these curves, exactly as the paper checks experiment against analysis.
package analysis

import (
	"math"

	"alertmanet/internal/geo"
)

// SideLengths returns a(h, lA) and b(h, lB) — Equations (1)-(2): the side
// lengths of the h-th partitioned zone.
func SideLengths(h int, lA, lB float64) (a, b float64) {
	return geo.SideLengths(h, lA, lB)
}

// SeparationProb is Equation (5): the probability that exactly sigma
// partitions are needed to separate S from D, p_s(sigma) = 2^-sigma for
// 0 < sigma <= H (and 0 outside that range).
func SeparationProb(sigma, h int) float64 {
	if sigma <= 0 || sigma > h {
		return 0
	}
	return math.Pow(0.5, float64(sigma))
}

// PossibleParticipants is Equation (7): the expected number of nodes that
// could take part in one S-D routing, summed over closeness values,
//
//	N_e = sum_{sigma=1..H} a(sigma,lA) * b(sigma,lB) * rho * 2^-sigma,
//
// where rho = N / (lA*lB) is the node density. As H grows this saturates
// near N/3 — the paper's "about 1/4 of the total number of nodes" plateau
// in Fig. 7a (approximately 30 for 100 nodes and 60 for 200).
func PossibleParticipants(n, h int, lA, lB float64) float64 {
	if n <= 0 || h <= 0 {
		return 0
	}
	rho := float64(n) / (lA * lB)
	total := 0.0
	for sigma := 1; sigma <= h; sigma++ {
		a, b := SideLengths(sigma, lA, lB)
		total += a * b * rho * SeparationProb(sigma, h)
	}
	return total
}

// Binomial returns C(n, k).
func Binomial(n, k int) float64 {
	if k < 0 || k > n {
		return 0
	}
	if k > n-k {
		k = n - k
	}
	res := 1.0
	for i := 0; i < k; i++ {
		res = res * float64(n-i) / float64(i+1)
	}
	return res
}

// RFCountProb is Equation (8): the probability that an S-D pair with
// closeness sigma sees exactly i random forwarders,
//
//	p_i(sigma, i) = C(H-sigma, i) * (1/2)^(H-sigma).
//
// Each remaining partition step independently produces an RF+ or RF- with
// probability 1/2, so the count is Binomial(H-sigma, 1/2).
func RFCountProb(sigma, i, h int) float64 {
	m := h - sigma
	if m < 0 || i < 0 || i > m {
		return 0
	}
	return Binomial(m, i) * math.Pow(0.5, float64(m))
}

// ExpectedRFsGivenCloseness is Equation (9): the expected number of RFs for
// closeness sigma; the binomial mean (H-sigma)/2, computed by the explicit
// sum for fidelity to the paper.
func ExpectedRFsGivenCloseness(sigma, h int) float64 {
	total := 0.0
	for i := 1; i <= h-sigma; i++ {
		total += RFCountProb(sigma, i, h) * float64(i)
	}
	return total
}

// ExpectedRFs is Equation (10): the expected number of random forwarders
// over all closeness values,
//
//	N_RF = sum_{sigma=1..H} sum_i C(H-sigma, i) (1/2)^(H-sigma) * i * 2^-sigma.
//
// The result grows linearly with H (Fig. 7b).
func ExpectedRFs(h int) float64 {
	total := 0.0
	for sigma := 1; sigma <= h; sigma++ {
		total += ExpectedRFsGivenCloseness(sigma, h) * SeparationProb(sigma, h)
	}
	return total
}

// Beta is Equation (14): the mean residence time constant for a square
// destination zone of side 2r' approximated by an equal-area circle,
// beta = sqrt(pi) * r' / v.
func Beta(halfSide, speed float64) float64 {
	if speed <= 0 {
		return math.Inf(1)
	}
	return math.Sqrt(math.Pi) * halfSide / speed
}

// RemainProb is Equation (11): the probability a node moving at the given
// speed is still inside the destination zone after time t, exp(-t/beta).
func RemainProb(t, halfSide, speed float64) float64 {
	b := Beta(halfSide, speed)
	if math.IsInf(b, 1) {
		return 1
	}
	return math.Exp(-t / b)
}

// RemainingNodes is Equation (15): the expected number of the original
// destination-zone nodes still inside after time t, for a square lA x lA
// field partitioned H times with density rho = n/(lA*lA):
//
//	N_r(t) = exp(-t*v / (sqrt(pi)*r')) * a(H,lA) * b(H,lA) * rho.
func RemainingNodes(t float64, n, h int, lA, speed float64) float64 {
	a, b := SideLengths(h, lA, lA)
	rho := float64(n) / (lA * lA)
	halfSide := math.Sqrt(a*b) / 2 // side 2r' of the (near-)square zone
	return RemainProb(t, halfSide, speed) * a * b * rho
}

// RequiredDensity inverts Equation (15) for Fig. 13b: the node count (per
// lA x lA field) needed so that `remaining` nodes are still in the
// destination zone after time t at the given speed.
func RequiredDensity(remaining, t float64, h int, lA, speed float64) float64 {
	a, b := SideLengths(h, lA, lA)
	halfSide := math.Sqrt(a*b) / 2
	p := RemainProb(t, halfSide, speed)
	if p <= 0 || a*b <= 0 {
		return math.Inf(1)
	}
	return remaining / p / (a * b) * (lA * lA)
}

// Series is a labeled sequence of (x, y) points, the unit all figure
// generators produce. Err, when non-nil, holds the 95% confidence
// half-width per point (the paper's "I"-shaped intervals).
type Series struct {
	Label string
	X, Y  []float64
	Err   []float64
}

// Fig7aPossibleParticipants generates the Fig. 7a curves: possible
// participating nodes versus the number of partitions, one series per node
// count, on a square field of side lA.
func Fig7aPossibleParticipants(nodeCounts []int, hMax int, lA float64) []Series {
	out := make([]Series, 0, len(nodeCounts))
	for _, n := range nodeCounts {
		s := newSeries(label("N=", n), hMax)
		for h := 1; h <= hMax; h++ {
			s.X = append(s.X, float64(h))
			s.Y = append(s.Y, PossibleParticipants(n, h, lA, lA))
		}
		out = append(out, s)
	}
	return out
}

// Fig7bExpectedRFs generates the Fig. 7b curve: expected random forwarders
// versus the number of partitions.
func Fig7bExpectedRFs(hMax int) Series {
	s := newSeries("E[RFs]", hMax)
	for h := 1; h <= hMax; h++ {
		s.X = append(s.X, float64(h))
		s.Y = append(s.Y, ExpectedRFs(h))
	}
	return s
}

// Fig9aRemainingNodes generates the Fig. 9a curves: remaining nodes versus
// time at fixed speed, one series per node count.
func Fig9aRemainingNodes(nodeCounts []int, h int, lA, speed float64, times []float64) []Series {
	out := make([]Series, 0, len(nodeCounts))
	for _, n := range nodeCounts {
		s := newSeries(label("N=", n), len(times))
		for _, t := range times {
			s.X = append(s.X, t)
			s.Y = append(s.Y, RemainingNodes(t, n, h, lA, speed))
		}
		out = append(out, s)
	}
	return out
}

// Fig9bRemainingNodes generates the Fig. 9b curves: remaining nodes versus
// time at fixed density, one series per speed.
func Fig9bRemainingNodes(n, h int, lA float64, speeds, times []float64) []Series {
	out := make([]Series, 0, len(speeds))
	for _, v := range speeds {
		s := newSeries(labelF("v=", v), len(times))
		for _, t := range times {
			s.X = append(s.X, t)
			s.Y = append(s.Y, RemainingNodes(t, n, h, lA, v))
		}
		out = append(out, s)
	}
	return out
}

// newSeries starts a series with X and Y pre-sized to the known point
// count, so the generators' append loops never trigger growth
// reallocations (the figure benchmarks gate allocs/op in CI).
func newSeries(label string, points int) Series {
	return Series{
		Label: label,
		X:     make([]float64, 0, points),
		Y:     make([]float64, 0, points),
	}
}

// label and labelF render their text through one shared stack buffer and
// a single string conversion, instead of the itoa-then-concatenate chain
// that cost two allocations per series.
func label(prefix string, v int) string {
	var buf [32]byte
	return string(appendInt(append(buf[:0], prefix...), v))
}

func labelF(prefix string, v float64) string {
	// Speeds in the paper are small integers or halves.
	var buf [32]byte
	whole := int(v)
	b := appendInt(append(buf[:0], prefix...), whole)
	if float64(whole) == v {
		return string(append(b, " m/s"...))
	}
	return string(append(b, ".5 m/s"...))
}

func appendInt(b []byte, v int) []byte {
	if v == 0 {
		return append(b, '0')
	}
	if v < 0 {
		b = append(b, '-')
		v = -v
	}
	var digits [20]byte
	p := len(digits)
	for v > 0 {
		p--
		digits[p] = byte('0' + v%10)
		v /= 10
	}
	return append(b, digits[p:]...)
}

// CoveragePercent is Section 3.3's coverage expression for the two-step
// multicast: with m of the k zone nodes receiving step one and a fraction
// p_c of the remaining k-m nodes hearing the step-two re-broadcasts, the
// fraction of Z_D that receives the packet is
//
//	m/k + (1 - m/k) * p_c = p_c + m * (1 - p_c) / k.
//
// Guaranteed delivery requires p_c = 1, achievable with a moderate m for
// the paper's transmission range (core sizes m automatically when M == 0).
func CoveragePercent(m, k int, pc float64) float64 {
	if k <= 0 || m < 0 {
		return 0
	}
	if m > k {
		m = k
	}
	return pc + float64(m)*(1-pc)/float64(k)
}

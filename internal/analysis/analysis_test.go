package analysis

import (
	"math"
	"testing"
	"testing/quick"

	"alertmanet/internal/rng"
)

func close(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

func TestSeparationProb(t *testing.T) {
	if SeparationProb(1, 5) != 0.5 || SeparationProb(2, 5) != 0.25 {
		t.Fatal("p_s wrong")
	}
	if SeparationProb(0, 5) != 0 || SeparationProb(6, 5) != 0 || SeparationProb(-1, 5) != 0 {
		t.Fatal("out-of-range sigma should be 0")
	}
}

func TestSeparationProbMonteCarlo(t *testing.T) {
	// Verify Equation (5) against direct sampling: place S and D
	// uniformly, count the canonical partitions needed to separate them.
	src := rng.New(1)
	const H = 6
	counts := make([]int, H+1)
	const trials = 200000
	valid := 0
	for i := 0; i < trials; i++ {
		// Work on the unit square with alternating bisections. Sigma
		// is the first cut at which S and D land in different halves.
		sx, sy := src.Float64(), src.Float64()
		dx, dy := src.Float64(), src.Float64()
		lo := [2]float64{0, 0}
		hi := [2]float64{1, 1}
		sigma := 0
		for c := 1; c <= H; c++ {
			axis := (c - 1) % 2 // vertical first: split x
			mid := (lo[axis] + hi[axis]) / 2
			var sv, dv float64
			if axis == 0 {
				sv, dv = sx, dx
			} else {
				sv, dv = sy, dy
			}
			sHi := sv >= mid
			dHi := dv >= mid
			if sHi != dHi {
				sigma = c
				break
			}
			if sHi {
				lo[axis] = mid
			} else {
				hi[axis] = mid
			}
		}
		if sigma > 0 {
			counts[sigma]++
			valid++
		}
	}
	for sigma := 1; sigma <= 4; sigma++ {
		got := float64(counts[sigma]) / trials
		want := SeparationProb(sigma, H)
		if !close(got, want, 0.01) {
			t.Fatalf("sigma=%d: simulated %v, formula %v", sigma, got, want)
		}
	}
	_ = valid
}

func TestBinomial(t *testing.T) {
	cases := []struct {
		n, k int
		want float64
	}{
		{0, 0, 1}, {5, 0, 1}, {5, 5, 1}, {5, 2, 10}, {6, 3, 20},
		{10, 4, 210}, {5, 6, 0}, {5, -1, 0},
	}
	for _, c := range cases {
		if got := Binomial(c.n, c.k); got != c.want {
			t.Fatalf("C(%d,%d) = %v, want %v", c.n, c.k, got, c.want)
		}
	}
}

func TestRFCountProbSumsToOne(t *testing.T) {
	for h := 1; h <= 8; h++ {
		for sigma := 1; sigma <= h; sigma++ {
			total := 0.0
			for i := 0; i <= h-sigma; i++ {
				total += RFCountProb(sigma, i, h)
			}
			if !close(total, 1, 1e-12) {
				t.Fatalf("p_i(%d, ·) sums to %v for H=%d", sigma, total, h)
			}
		}
	}
}

func TestExpectedRFsGivenClosenessIsBinomialMean(t *testing.T) {
	// The paper's explicit sum equals the binomial mean (H-sigma)/2.
	for h := 1; h <= 10; h++ {
		for sigma := 1; sigma <= h; sigma++ {
			want := float64(h-sigma) / 2
			if got := ExpectedRFsGivenCloseness(sigma, h); !close(got, want, 1e-9) {
				t.Fatalf("E[RF|sigma=%d,H=%d] = %v, want %v", sigma, h, got, want)
			}
		}
	}
}

func TestExpectedRFsLinearInH(t *testing.T) {
	// Fig. 7b: near-linear growth. Check that successive differences
	// stabilize.
	var diffs []float64
	prev := ExpectedRFs(1)
	for h := 2; h <= 10; h++ {
		cur := ExpectedRFs(h)
		if cur <= prev {
			t.Fatalf("E[RFs] not increasing at H=%d", h)
		}
		diffs = append(diffs, cur-prev)
		prev = cur
	}
	// Tail differences should approach a constant slope (~0.5).
	last := diffs[len(diffs)-1]
	if !close(last, 0.5, 0.05) {
		t.Fatalf("asymptotic slope %v, want ~0.5", last)
	}
}

func TestPossibleParticipantsPlateau(t *testing.T) {
	// Equation (7): saturates near N/3 as H grows; the paper reports
	// "approximately 30 and 60" for 100 and 200 nodes.
	p100 := PossibleParticipants(100, 10, 1000, 1000)
	p200 := PossibleParticipants(200, 10, 1000, 1000)
	if !close(p100, 100.0/3, 1) {
		t.Fatalf("N=100 plateau %v, want ~33", p100)
	}
	if !close(p200, 200.0/3, 2) {
		t.Fatalf("N=200 plateau %v, want ~66", p200)
	}
	// Fast initial growth: H=2 already captures most of the plateau.
	if PossibleParticipants(200, 2, 1000, 1000) < 0.8*p200 {
		t.Fatal("growth profile wrong: H=2 should be near the plateau")
	}
	if PossibleParticipants(0, 5, 1000, 1000) != 0 ||
		PossibleParticipants(100, 0, 1000, 1000) != 0 {
		t.Fatal("degenerate inputs should be 0")
	}
}

func TestPossibleParticipantsScalesWithN(t *testing.T) {
	// Doubling N doubles the expectation (density linearity).
	a := PossibleParticipants(100, 5, 1000, 1000)
	b := PossibleParticipants(200, 5, 1000, 1000)
	if !close(b, 2*a, 1e-9) {
		t.Fatalf("not linear in N: %v vs %v", a, b)
	}
}

func TestBetaAndRemainProb(t *testing.T) {
	// beta = sqrt(pi) r'/v.
	if !close(Beta(100, 2), math.Sqrt(math.Pi)*50, 1e-9) {
		t.Fatalf("beta = %v", Beta(100, 2))
	}
	if !math.IsInf(Beta(100, 0), 1) {
		t.Fatal("zero speed should give infinite beta")
	}
	if RemainProb(10, 100, 0) != 1 {
		t.Fatal("static nodes always remain")
	}
	if p := RemainProb(0, 100, 2); !close(p, 1, 1e-12) {
		t.Fatalf("t=0 should remain with prob 1, got %v", p)
	}
	// Monotone decreasing in t.
	if RemainProb(20, 100, 2) >= RemainProb(10, 100, 2) {
		t.Fatal("remain prob not decreasing in time")
	}
	// Faster nodes leave sooner.
	if RemainProb(10, 100, 4) >= RemainProb(10, 100, 2) {
		t.Fatal("remain prob not decreasing in speed")
	}
}

func TestRemainingNodesAtTZero(t *testing.T) {
	// At t=0 the zone holds a*b*rho nodes: for H=5, N=200, 1000 m field,
	// that's 200/32 = 6.25 — k-anonymity around the paper's k.
	got := RemainingNodes(0, 200, 5, 1000, 2)
	if !close(got, 6.25, 1e-9) {
		t.Fatalf("N_r(0) = %v, want 6.25", got)
	}
}

func TestRemainingNodesShapes(t *testing.T) {
	// Fig. 9a: higher density -> more remaining at any time.
	if RemainingNodes(10, 400, 5, 1000, 2) <= RemainingNodes(10, 200, 5, 1000, 2) {
		t.Fatal("density ordering violated")
	}
	// Fig. 9b: higher speed -> fewer remaining.
	if RemainingNodes(10, 200, 5, 1000, 4) >= RemainingNodes(10, 200, 5, 1000, 2) {
		t.Fatal("speed ordering violated")
	}
	// Fig. 13a: fewer partitions (bigger zone) -> more remaining.
	if RemainingNodes(10, 200, 4, 1000, 2) <= RemainingNodes(10, 200, 5, 1000, 2) {
		t.Fatal("partition ordering violated")
	}
}

func TestRequiredDensityInverts(t *testing.T) {
	// Fig. 13b: RequiredDensity is the inverse of RemainingNodes in N.
	for _, v := range []float64{1, 2, 4, 8} {
		n := RequiredDensity(5, 10, 5, 1000, v)
		back := RemainingNodes(10, int(math.Round(n)), 5, 1000, v)
		if !close(back, 5, 0.1) {
			t.Fatalf("v=%v: density %v gives back %v remaining, want 5", v, n, back)
		}
	}
	// Faster movement requires higher density.
	if RequiredDensity(5, 10, 5, 1000, 8) <= RequiredDensity(5, 10, 5, 1000, 2) {
		t.Fatal("required density should grow with speed")
	}
}

func TestFig7aSeries(t *testing.T) {
	series := Fig7aPossibleParticipants([]int{100, 200, 400}, 7, 1000)
	if len(series) != 3 {
		t.Fatal("series count wrong")
	}
	for _, s := range series {
		if len(s.X) != 7 || len(s.Y) != 7 {
			t.Fatalf("series %s has wrong length", s.Label)
		}
		// Monotone nondecreasing in H.
		for i := 1; i < len(s.Y); i++ {
			if s.Y[i] < s.Y[i-1]-1e-9 {
				t.Fatalf("series %s not monotone", s.Label)
			}
		}
	}
	if series[0].Label != "N=100" {
		t.Fatalf("label = %q", series[0].Label)
	}
}

func TestFig7bSeries(t *testing.T) {
	s := Fig7bExpectedRFs(7)
	if len(s.Y) != 7 {
		t.Fatal("length wrong")
	}
	for i := 1; i < len(s.Y); i++ {
		if s.Y[i] <= s.Y[i-1] {
			t.Fatal("expected RFs must increase with H")
		}
	}
}

func TestFig9Series(t *testing.T) {
	times := []float64{0, 5, 10, 15, 20}
	a := Fig9aRemainingNodes([]int{100, 200, 400}, 5, 1000, 2, times)
	if len(a) != 3 || len(a[0].Y) != 5 {
		t.Fatal("fig9a shape wrong")
	}
	b := Fig9bRemainingNodes(200, 5, 1000, []float64{1, 2, 4}, times)
	if len(b) != 3 {
		t.Fatal("fig9b shape wrong")
	}
	if b[0].Label != "v=1 m/s" {
		t.Fatalf("label = %q", b[0].Label)
	}
	// Every curve decays over time for moving nodes.
	for _, s := range b {
		for i := 1; i < len(s.Y); i++ {
			if s.Y[i] > s.Y[i-1] {
				t.Fatalf("series %s not decaying", s.Label)
			}
		}
	}
}

// Property: RFCountProb is a valid pmf and its mean matches (H-sigma)/2 for
// arbitrary small H, sigma.
func TestQuickRFPmf(t *testing.T) {
	f := func(hRaw, sRaw uint8) bool {
		h := int(hRaw%10) + 1
		sigma := int(sRaw)%h + 1
		sum, mean := 0.0, 0.0
		for i := 0; i <= h-sigma; i++ {
			p := RFCountProb(sigma, i, h)
			if p < 0 || p > 1 {
				return false
			}
			sum += p
			mean += p * float64(i)
		}
		return close(sum, 1, 1e-9) && close(mean, float64(h-sigma)/2, 1e-9)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: remaining nodes never negative and never exceed the zone's
// initial population.
func TestQuickRemainingBounds(t *testing.T) {
	f := func(tRaw, vRaw uint8, hRaw uint8) bool {
		tm := float64(tRaw)
		v := float64(vRaw % 10)
		h := int(hRaw%8) + 1
		r := RemainingNodes(tm, 200, h, 1000, v)
		initial := RemainingNodes(0, 200, h, 1000, v)
		return r >= 0 && r <= initial+1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestCoveragePercent(t *testing.T) {
	// Both algebraic forms of the Section 3.3 expression agree.
	for _, c := range []struct {
		m, k int
		pc   float64
	}{
		{3, 6, 0.5}, {1, 6, 0.9}, {6, 6, 0}, {0, 6, 0.7},
	} {
		got := CoveragePercent(c.m, c.k, c.pc)
		want := float64(c.m)/float64(c.k) + (1-float64(c.m)/float64(c.k))*c.pc
		if !close(got, want, 1e-12) {
			t.Fatalf("m=%d k=%d pc=%v: %v != %v", c.m, c.k, c.pc, got, want)
		}
	}
	// p_c = 1 guarantees full coverage regardless of m.
	if !close(CoveragePercent(1, 6, 1), 1, 1e-12) {
		t.Fatal("pc=1 should give full coverage")
	}
	// m = k covers everyone in step one alone.
	if !close(CoveragePercent(6, 6, 0), 1, 1e-12) {
		t.Fatal("m=k should give full coverage")
	}
	// Degenerate inputs.
	if CoveragePercent(3, 0, 0.5) != 0 || CoveragePercent(-1, 6, 0.5) != 0 {
		t.Fatal("degenerate inputs should be 0")
	}
	// m > k clamps.
	if !close(CoveragePercent(9, 6, 0), 1, 1e-12) {
		t.Fatal("m > k should clamp to full coverage")
	}
}

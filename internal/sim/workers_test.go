package sim

import (
	"sync/atomic"
	"testing"
)

// Every index in [0, n) must be visited exactly once, for any degree and
// any n — the chunking is a pure function of (n, degree).
func TestWorkersForCoverage(t *testing.T) {
	for _, deg := range []int{-1, 0, 1, 2, 3, 4, 8, 16} {
		w := NewWorkers(deg)
		if w.Degree() < 1 {
			t.Fatalf("NewWorkers(%d).Degree() = %d", deg, w.Degree())
		}
		for _, n := range []int{0, 1, 31, 32, 33, 64, 100, 1000} {
			visits := make([]int32, n)
			w.For(n, func(lo, hi int) {
				if lo < 0 || hi > n || lo > hi {
					t.Errorf("deg=%d n=%d: bad chunk [%d,%d)", deg, n, lo, hi)
				}
				for i := lo; i < hi; i++ {
					atomic.AddInt32(&visits[i], 1)
				}
			})
			for i, v := range visits {
				if v != 1 {
					t.Fatalf("deg=%d n=%d: index %d visited %d times", deg, n, i, v)
				}
			}
		}
	}
}

// Small inputs must run inline: a single chunk spanning the whole range.
func TestWorkersForSmallInputInline(t *testing.T) {
	w := NewWorkers(8)
	var chunks [][2]int
	w.For(forMinPerChunk-1, func(lo, hi int) {
		chunks = append(chunks, [2]int{lo, hi})
	})
	if len(chunks) != 1 || chunks[0] != [2]int{0, forMinPerChunk - 1} {
		t.Fatalf("small input split into %v", chunks)
	}
	w.For(0, func(lo, hi int) { t.Error("For(0) called fn") })
}

// The default engine pool is serial; SetWorkers(nil) restores it.
func TestEngineWorkers(t *testing.T) {
	e := NewEngine()
	if e.Workers() == nil || e.Workers().Degree() != 1 {
		t.Fatalf("default workers = %+v", e.Workers())
	}
	w := NewWorkers(4)
	e.SetWorkers(w)
	if e.Workers() != w {
		t.Fatal("SetWorkers did not attach the pool")
	}
	e.SetWorkers(nil)
	if e.Workers() == nil || e.Workers().Degree() != 1 {
		t.Fatal("SetWorkers(nil) did not restore the serial pool")
	}
	e.SetWorkers(w)
	e.Reset()
	if e.Workers().Degree() != 1 {
		t.Fatal("Reset did not restore the serial pool")
	}
}

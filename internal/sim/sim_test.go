package sim

import (
	"math"
	"sort"
	"testing"
	"testing/quick"
)

func TestScheduleOrdering(t *testing.T) {
	e := NewEngine()
	var order []int
	e.Schedule(3, func() { order = append(order, 3) })
	e.Schedule(1, func() { order = append(order, 1) })
	e.Schedule(2, func() { order = append(order, 2) })
	e.Run()
	if len(order) != 3 || order[0] != 1 || order[1] != 2 || order[2] != 3 {
		t.Fatalf("order = %v", order)
	}
	if e.Now() != 3 {
		t.Fatalf("clock = %v, want 3", e.Now())
	}
}

func TestSimultaneousEventsFIFO(t *testing.T) {
	e := NewEngine()
	var order []int
	for i := 0; i < 10; i++ {
		i := i
		e.Schedule(5, func() { order = append(order, i) })
	}
	e.Run()
	for i, v := range order {
		if v != i {
			t.Fatalf("simultaneous events not FIFO: %v", order)
		}
	}
}

func TestClockAdvancesToEventTime(t *testing.T) {
	e := NewEngine()
	var at Time
	e.Schedule(2.5, func() { at = e.Now() })
	e.Run()
	if at != 2.5 {
		t.Fatalf("event saw clock %v, want 2.5", at)
	}
}

func TestNestedScheduling(t *testing.T) {
	e := NewEngine()
	var times []Time
	e.Schedule(1, func() {
		times = append(times, e.Now())
		e.Schedule(1, func() {
			times = append(times, e.Now())
		})
	})
	e.Run()
	if len(times) != 2 || times[0] != 1 || times[1] != 2 {
		t.Fatalf("times = %v", times)
	}
}

func TestCancel(t *testing.T) {
	e := NewEngine()
	fired := false
	id := e.Schedule(1, func() { fired = true })
	e.Cancel(id)
	e.Run()
	if fired {
		t.Fatal("cancelled event fired")
	}
	// Double cancel and cancel-after-run are no-ops.
	e.Cancel(id)
	if e.Pending() != 0 {
		t.Fatal("pending count wrong after cancel")
	}
}

func TestCancelMiddleOfHeap(t *testing.T) {
	e := NewEngine()
	var fired []int
	ids := make([]EventID, 10)
	for i := 0; i < 10; i++ {
		i := i
		ids[i] = e.Schedule(Time(i), func() { fired = append(fired, i) })
	}
	e.Cancel(ids[4])
	e.Cancel(ids[7])
	e.Run()
	want := []int{0, 1, 2, 3, 5, 6, 8, 9}
	if len(fired) != len(want) {
		t.Fatalf("fired = %v", fired)
	}
	for i := range want {
		if fired[i] != want[i] {
			t.Fatalf("fired = %v, want %v", fired, want)
		}
	}
}

func TestRunUntil(t *testing.T) {
	e := NewEngine()
	var fired []Time
	for _, at := range []Time{1, 2, 3, 4, 5} {
		at := at
		e.Schedule(at, func() { fired = append(fired, at) })
	}
	e.RunUntil(3)
	if len(fired) != 3 {
		t.Fatalf("fired %d events, want 3", len(fired))
	}
	if e.Now() != 3 {
		t.Fatalf("clock = %v, want 3", e.Now())
	}
	e.RunUntil(10)
	if len(fired) != 5 {
		t.Fatal("remaining events did not run")
	}
	if e.Now() != 10 {
		t.Fatalf("clock should advance to 10, got %v", e.Now())
	}
}

func TestRunUntilInclusive(t *testing.T) {
	e := NewEngine()
	fired := false
	e.Schedule(2, func() { fired = true })
	e.RunUntil(2)
	if !fired {
		t.Fatal("event at exactly the horizon must fire")
	}
}

func TestSchedulePastPanics(t *testing.T) {
	e := NewEngine()
	defer func() {
		if recover() == nil {
			t.Fatal("negative delay should panic")
		}
	}()
	e.Schedule(-1, func() {})
}

func TestAtPastPanics(t *testing.T) {
	e := NewEngine()
	e.Schedule(5, func() {})
	e.Run()
	defer func() {
		if recover() == nil {
			t.Fatal("At in the past should panic")
		}
	}()
	e.At(1, func() {})
}

func TestTicker(t *testing.T) {
	e := NewEngine()
	var ticks []Time
	stop := e.Ticker(1, 2, func(now Time) { ticks = append(ticks, now) })
	e.Schedule(7.5, stop)
	e.RunUntil(20)
	want := []Time{1, 3, 5, 7}
	if len(ticks) != len(want) {
		t.Fatalf("ticks = %v, want %v", ticks, want)
	}
	for i := range want {
		if ticks[i] != want[i] {
			t.Fatalf("ticks = %v, want %v", ticks, want)
		}
	}
}

func TestTickerUntilStopsAtHorizon(t *testing.T) {
	e := NewEngine()
	var ticks []Time
	e.TickerUntil(1, 2, 7, func(now Time) { ticks = append(ticks, now) })
	e.RunUntil(100)
	// The tick landing exactly on the horizon fires; nothing after it does.
	want := []Time{1, 3, 5, 7}
	if len(ticks) != len(want) {
		t.Fatalf("ticks = %v, want %v", ticks, want)
	}
	for i := range want {
		if ticks[i] != want[i] {
			t.Fatalf("ticks = %v, want %v", ticks, want)
		}
	}
	if e.Pending() != 0 {
		t.Fatalf("%d events still pending past the horizon", e.Pending())
	}
}

func TestTickerUntilStopCancels(t *testing.T) {
	e := NewEngine()
	var ticks []Time
	stop := e.TickerUntil(1, 1, 50, func(now Time) { ticks = append(ticks, now) })
	e.Schedule(3.5, stop)
	e.RunUntil(100)
	if len(ticks) != 3 {
		t.Fatalf("ticks after stop(): %v", ticks)
	}
	// Stopping twice is a no-op.
	stop()
	if e.Pending() != 0 {
		t.Fatal("stopped ticker left events pending")
	}
}

func TestTickerUntilStartPastHorizon(t *testing.T) {
	e := NewEngine()
	fired := false
	stop := e.TickerUntil(5, 1, 2, func(Time) { fired = true })
	e.RunUntil(100)
	if fired {
		t.Fatal("ticker starting past its horizon fired")
	}
	stop() // must be callable without effect
}

func TestTickerIsUnboundedTickerUntil(t *testing.T) {
	e := NewEngine()
	n := 0
	stop := e.Ticker(0.5, 1, func(Time) { n++ })
	e.RunUntil(1000)
	if n != 1000 {
		t.Fatalf("unbounded ticker fired %d times in 1000 s", n)
	}
	stop()
	if e.Pending() != 0 {
		t.Fatal("stop left events pending")
	}
}

// TestTickerUntilCountContract pins the workload count contract over long
// horizons and non-dyadic intervals: a ticker from start to until at a given
// interval fires exactly floor((until-start)/interval)+1 times, and never
// past the horizon. The naive at += interval accumulation drifts by one ULP
// per tick; over thousands of ticks of 0.1 or 0.3 the accumulated value
// crosses the horizon early (or lands past it) and the final tick vanishes,
// silently shorting every CBR pair by one packet.
func TestTickerUntilCountContract(t *testing.T) {
	cases := []struct{ start, interval, until Time }{
		{0.1, 0.1, 1000},   // naive drift fires 9999 times, dropping the final tick
		{0, 0.3, 3000},     // naive drift: 10000 of 10001
		{0.25, 0.05, 3000}, // naive drift: 59995 of 59996
		{0.7, 0.1, 100},    // naive drift fires ONE EXTRA, past the horizon
		{1, 3, 299998},     // exact integers over 1e5 ticks: must stay exact
		{0.3, 0.3, 0.8999}, // horizon just short of the third tick
	}
	for _, c := range cases {
		e := NewEngine()
		n := 0
		var last Time
		e.TickerUntil(c.start, c.interval, c.until, func(now Time) {
			n++
			last = now
		})
		e.RunUntil(c.until + c.interval)
		want := int(math.Floor(float64((c.until-c.start)/c.interval))) + 1
		if n != want {
			t.Errorf("TickerUntil(%v, %v, %v) fired %d times, want floor((until-start)/interval)+1 = %d",
				c.start, c.interval, c.until, n, want)
		}
		if last > c.until {
			t.Errorf("TickerUntil(%v, %v, %v) fired at %v, past the horizon",
				c.start, c.interval, c.until, last)
		}
		if e.Pending() != 0 {
			t.Errorf("TickerUntil(%v, %v, %v) left %d events pending",
				c.start, c.interval, c.until, e.Pending())
		}
	}
}

func TestTickerZeroIntervalPanics(t *testing.T) {
	e := NewEngine()
	defer func() {
		if recover() == nil {
			t.Fatal("zero interval must panic")
		}
	}()
	e.Ticker(0, 0, func(Time) {})
}

func TestProcessedCount(t *testing.T) {
	e := NewEngine()
	for i := 0; i < 5; i++ {
		e.Schedule(Time(i), func() {})
	}
	e.Run()
	if e.Processed() != 5 {
		t.Fatalf("processed = %d", e.Processed())
	}
}

func TestStepReturnsFalseWhenEmpty(t *testing.T) {
	e := NewEngine()
	if e.Step() {
		t.Fatal("Step on empty engine should return false")
	}
}

// Property: with arbitrary delays, events fire in nondecreasing time order
// and the engine processes all of them.
func TestQuickEventOrder(t *testing.T) {
	f := func(delays []uint16) bool {
		e := NewEngine()
		var fired []Time
		for _, d := range delays {
			at := Time(d)
			e.Schedule(at, func() { fired = append(fired, e.Now()) })
		}
		e.Run()
		if len(fired) != len(delays) {
			return false
		}
		if !sort.Float64sAreSorted(fired) {
			return false
		}
		return e.Pending() == 0
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: cancelling a random subset fires exactly the complement.
func TestQuickCancelSubset(t *testing.T) {
	f := func(delays []uint8, mask []bool) bool {
		e := NewEngine()
		fired := map[int]bool{}
		ids := make([]EventID, len(delays))
		for i, d := range delays {
			i := i
			ids[i] = e.Schedule(Time(d), func() { fired[i] = true })
		}
		cancelled := map[int]bool{}
		for i := range delays {
			if i < len(mask) && mask[i] {
				e.Cancel(ids[i])
				cancelled[i] = true
			}
		}
		e.Run()
		for i := range delays {
			if cancelled[i] == fired[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkScheduleAndRun(b *testing.B) {
	for i := 0; i < b.N; i++ {
		e := NewEngine()
		for j := 0; j < 1000; j++ {
			e.Schedule(Time(j%97)+0.5, func() {})
		}
		e.Run()
	}
}

func BenchmarkTickerChain(b *testing.B) {
	for i := 0; i < b.N; i++ {
		e := NewEngine()
		stop := e.Ticker(0.5, 1, func(Time) {})
		e.RunUntil(1000)
		stop()
	}
}

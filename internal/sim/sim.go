// Package sim provides the discrete-event simulation engine that stands in
// for NS-2 in this reproduction: a virtual clock and a pending-event queue.
// All protocol stacks, mobility sampling, radio transmission delays, and
// cryptography cost charging run on this clock, so an entire 100-second
// evaluation scenario executes in milliseconds of wall time and is exactly
// reproducible from its seed.
package sim

import (
	"container/heap"
	"errors"
	"fmt"
	"math"

	"alertmanet/internal/telemetry"
)

// Time is simulated time in seconds since the start of the run.
type Time = float64

// EventID identifies a scheduled event so it can be cancelled.
type EventID uint64

// Runner is a pre-allocated alternative to a func() event body: an event
// scheduled with AtRunner calls RunEvent on fire. Hot-path callers (the
// medium's ARQ, router forwarding) implement it on pooled state machines so
// scheduling a hop costs no closure allocation.
type Runner interface {
	RunEvent()
}

type event struct {
	at   Time
	seq  uint64 // FIFO tie-break for simultaneous events
	id   EventID
	fn   func()
	run  Runner // non-nil takes precedence over fn
	dead bool
	idx  int // index in the heap, for cancellation
}

type eventHeap []*event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	//lint:allowfloatcompare heap ordering on stored timestamps: values are copied, never recomputed, and ties must fall through to the FIFO seq tie-break exactly
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int) {
	h[i], h[j] = h[j], h[i]
	h[i].idx = i
	h[j].idx = j
}
func (h *eventHeap) Push(x any) {
	ev := x.(*event)
	ev.idx = len(*h)
	*h = append(*h, ev)
}
func (h *eventHeap) Pop() any {
	old := *h
	n := len(old)
	ev := old[n-1]
	old[n-1] = nil
	*h = old[:n-1]
	return ev
}

// Engine is a single-threaded discrete-event scheduler. The zero value is
// not usable; construct with NewEngine.
type Engine struct {
	now     Time
	seq     uint64
	nextID  EventID
	pending eventHeap
	byID    map[EventID]*event
	// Processed counts events executed; useful for progress accounting
	// and loop-protection in tests.
	processed uint64
	// maxEvents, when non-zero, bounds processed events: Run and RunUntil
	// return ErrMaxEvents instead of executing past the budget, so a
	// self-rescheduling event loop fails a test instead of hanging it.
	maxEvents uint64
	// tap, when non-nil, observes every schedule/fire/cancel.
	tap *telemetry.Tap
	// free recycles fired and cancelled event structs; steady-state
	// scheduling allocates nothing once the pool has warmed up.
	free []*event
}

// NewEngine returns an engine with the clock at 0.
func NewEngine() *Engine {
	return &Engine{byID: make(map[EventID]*event)}
}

// Now returns the current simulated time.
func (e *Engine) Now() Time { return e.now }

// Reset returns the engine to the NewEngine state — clock at 0, no pending
// events, no tap, no budget — while keeping its allocated capacity (heap
// backing array, id map, event free pool). Campaign workers reuse one
// engine across seeds so successive runs stop paying the warm-up
// allocations of a fresh engine.
func (e *Engine) Reset() {
	for _, ev := range e.pending {
		e.recycle(ev)
	}
	e.pending = e.pending[:0]
	clear(e.byID)
	e.now = 0
	e.seq = 0
	e.nextID = 0
	e.processed = 0
	e.maxEvents = 0
	e.tap = nil
}

// Pending returns the number of scheduled, uncancelled events.
func (e *Engine) Pending() int { return len(e.byID) }

// Processed returns how many events have been executed so far.
func (e *Engine) Processed() uint64 { return e.processed }

// SetTap attaches a telemetry tap observing every schedule, fire and
// cancel. A nil tap (the default) disables engine telemetry; every emit
// site is guarded by a branch on the field, so the disabled path costs one
// predictable branch and no allocation.
func (e *Engine) SetTap(t *telemetry.Tap) { e.tap = t }

// ErrMaxEvents reports that an engine exceeded its SetMaxEvents budget with
// events still pending — almost always a self-rescheduling event loop.
var ErrMaxEvents = errors.New("sim: event budget exhausted")

// SetMaxEvents bounds the total number of events the engine will execute
// (0, the default, means unlimited). The budget is checked by Run and
// RunUntil, which return ErrMaxEvents rather than executing past it — the
// backstop that turns a runaway scheduling loop into a test failure instead
// of a hang.
func (e *Engine) SetMaxEvents(max uint64) { e.maxEvents = max }

// budgetErr returns the error for an exhausted event budget, nil while the
// budget (if any) has room.
func (e *Engine) budgetErr() error {
	if e.maxEvents > 0 && e.processed >= e.maxEvents {
		return fmt.Errorf("%w: %d events processed, %d still pending at t=%v",
			ErrMaxEvents, e.processed, len(e.byID), e.now)
	}
	return nil
}

// Schedule runs fn after the given delay (>= 0). Scheduling into the past
// panics: that is always a protocol-logic bug.
func (e *Engine) Schedule(delay Time, fn func()) EventID {
	if delay < 0 || math.IsNaN(delay) {
		//lint:allowpanic scheduling into the past is always a protocol-logic bug; no caller can meaningfully recover mid-event
		panic(fmt.Sprintf("sim: schedule with invalid delay %v at t=%v", delay, e.now))
	}
	return e.At(e.now+delay, fn)
}

// At runs fn at the absolute time t (>= Now).
func (e *Engine) At(t Time, fn func()) EventID {
	return e.schedule(t, fn, nil)
}

// ScheduleRunner runs r after the given delay (>= 0), like Schedule but
// without a closure: the event struct comes from the engine's free pool and
// the body is a pre-allocated Runner, so the call is allocation-free in
// steady state.
func (e *Engine) ScheduleRunner(delay Time, r Runner) EventID {
	if delay < 0 || math.IsNaN(delay) {
		//lint:allowpanic scheduling into the past is always a protocol-logic bug; no caller can meaningfully recover mid-event
		panic(fmt.Sprintf("sim: schedule with invalid delay %v at t=%v", delay, e.now))
	}
	return e.AtRunner(e.now+delay, r)
}

// AtRunner runs r at the absolute time t (>= Now); the Runner counterpart
// of At.
func (e *Engine) AtRunner(t Time, r Runner) EventID {
	return e.schedule(t, nil, r)
}

func (e *Engine) schedule(t Time, fn func(), r Runner) EventID {
	if t < e.now {
		//lint:allowpanic scheduling into the past is always a protocol-logic bug; no caller can meaningfully recover mid-event
		panic(fmt.Sprintf("sim: schedule at %v before now %v", t, e.now))
	}
	e.seq++
	e.nextID++
	var ev *event
	if n := len(e.free); n > 0 {
		ev = e.free[n-1]
		e.free[n-1] = nil
		e.free = e.free[:n-1]
		*ev = event{at: t, seq: e.seq, id: e.nextID, fn: fn, run: r}
	} else {
		ev = &event{at: t, seq: e.seq, id: e.nextID, fn: fn, run: r}
	}
	heap.Push(&e.pending, ev)
	e.byID[ev.id] = ev
	if e.tap != nil {
		e.tap.SimScheduled(e.now, t, uint64(ev.id))
	}
	return ev.id
}

// recycle returns an event struct (already out of the heap and id map) to
// the free pool, dropping its body references so they can be collected.
func (e *Engine) recycle(ev *event) {
	ev.fn = nil
	ev.run = nil
	e.free = append(e.free, ev)
}

// Cancel removes a scheduled event. Cancelling an already-fired or
// already-cancelled event is a no-op.
func (e *Engine) Cancel(id EventID) {
	ev, ok := e.byID[id]
	if !ok {
		return
	}
	delete(e.byID, id)
	ev.dead = true
	heap.Remove(&e.pending, ev.idx)
	if e.tap != nil {
		e.tap.SimCancelled(e.now, uint64(id))
	}
	e.recycle(ev)
}

// Step executes the next event, advancing the clock to its timestamp.
// It reports false when no events remain.
func (e *Engine) Step() bool {
	for len(e.pending) > 0 {
		ev := heap.Pop(&e.pending).(*event)
		if ev.dead {
			continue
		}
		delete(e.byID, ev.id)
		e.now = ev.at
		e.processed++
		if e.tap != nil {
			e.tap.SimFired(e.now, uint64(ev.id))
		}
		if ev.run != nil {
			ev.run.RunEvent()
		} else {
			ev.fn()
		}
		// The event is out of the heap and the id map, and its body has
		// returned; nothing can reference it anymore.
		e.recycle(ev)
		return true
	}
	return false
}

// Run executes events until none remain, or until the SetMaxEvents budget
// (if any) is exhausted with events still pending, in which case it stops
// and returns ErrMaxEvents.
func (e *Engine) Run() error {
	for {
		if len(e.pending) == 0 {
			return nil
		}
		if err := e.budgetErr(); err != nil {
			return err
		}
		if !e.Step() {
			return nil
		}
	}
}

// RunUntil executes events with timestamps <= t and then advances the clock
// to exactly t. Events scheduled later remain pending. Like Run, it stops
// with ErrMaxEvents when the SetMaxEvents budget runs out before the
// horizon is reached.
func (e *Engine) RunUntil(t Time) error {
	for len(e.pending) > 0 {
		// Peek.
		next := e.pending[0]
		if next.dead {
			heap.Pop(&e.pending)
			continue
		}
		if next.at > t {
			break
		}
		if err := e.budgetErr(); err != nil {
			return err
		}
		e.Step()
	}
	if t > e.now {
		e.now = t
	}
	return nil
}

// Ticker schedules fn every interval seconds starting at start, until the
// returned stop function is called. fn receives the firing time.
func (e *Engine) Ticker(start, interval Time, fn func(Time)) (stop func()) {
	return e.TickerUntil(start, interval, math.Inf(1), fn)
}

// TickerUntil schedules fn every interval seconds starting at start, while
// the firing time stays <= until (a tick landing exactly on the horizon
// still fires). The returned stop function cancels the remaining ticks
// early. Workload generators use this to guarantee no traffic past a
// scenario's send horizon.
func (e *Engine) TickerUntil(start, interval, until Time, fn func(Time)) (stop func()) {
	if interval <= 0 {
		//lint:allowpanic a non-positive interval would loop the engine at the current instant forever; always a caller bug
		panic("sim: ticker interval must be positive")
	}
	stopped := false
	var id EventID
	var tick func()
	// last is the index of the final firing: the largest n such that
	// start + n*interval <= until, i.e. the workload count contract
	// floor((until-start)/interval) pinned in the CBR tests. Termination is
	// derived from this index, not from the accumulated firing time, so
	// float drift in `at` can no longer add or drop a tick near the
	// horizon on long runs. The firing instants themselves still
	// accumulate (clamped to the horizon), preserving the established
	// event timeline.
	last := math.Floor((until - start) / interval)
	n := 0.0
	at := start
	tick = func() {
		if stopped {
			return
		}
		fn(e.now)
		if n >= last {
			return
		}
		n++
		at += interval
		if at > until {
			at = until
		}
		id = e.At(at, tick)
	}
	if start > until {
		return func() { stopped = true }
	}
	id = e.At(start, tick)
	return func() {
		stopped = true
		e.Cancel(id)
	}
}

// Package sim provides the discrete-event simulation engine that stands in
// for NS-2 in this reproduction: a virtual clock and a pending-event queue.
// All protocol stacks, mobility sampling, radio transmission delays, and
// cryptography cost charging run on this clock, so an entire 100-second
// evaluation scenario executes in milliseconds of wall time and is exactly
// reproducible from its seed.
//
// The engine can be partitioned into K spatial shards (SetShards), each with
// its own event heap and cross-shard mailbox, synchronized by a conservative
// lookahead window (SetLookahead). See the "Sharded engine" section of
// DESIGN.md for the barrier protocol and why the determinism contract — same
// seed, byte-identical results for any shard count — survives it.
package sim

import (
	"container/heap"
	"errors"
	"fmt"
	"math"

	"alertmanet/internal/telemetry"
)

// Time is simulated time in seconds since the start of the run.
type Time = float64

// EventID identifies a scheduled event so it can be cancelled.
type EventID uint64

// Runner is a pre-allocated alternative to a func() event body: an event
// scheduled with AtRunner calls RunEvent on fire. Hot-path callers (the
// medium's ARQ, router forwarding) implement it on pooled state machines so
// scheduling a hop costs no closure allocation.
type Runner interface {
	RunEvent()
}

type event struct {
	at   Time
	seq  uint64 // FIFO tie-break for simultaneous events
	id   EventID
	fn   func()
	run  Runner // non-nil takes precedence over fn
	dead bool
	home int // owning shard: index into Engine.heaps
	idx  int // index in the shard heap; -1 while parked in a mailbox
}

type eventHeap []*event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	//lint:allowfloatcompare heap ordering on stored timestamps: values are copied, never recomputed, and ties must fall through to the FIFO seq tie-break exactly
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int) {
	h[i], h[j] = h[j], h[i]
	h[i].idx = i
	h[j].idx = j
}
func (h *eventHeap) Push(x any) {
	ev := x.(*event)
	ev.idx = len(*h)
	*h = append(*h, ev)
}
func (h *eventHeap) Pop() any {
	old := *h
	n := len(old)
	ev := old[n-1]
	old[n-1] = nil
	*h = old[:n-1]
	return ev
}

// Engine is a discrete-event scheduler. The zero value is not usable;
// construct with NewEngine (one shard) or NewShardedEngine.
//
// Events always execute one at a time in global (time, seq) order — the
// determinism contract fixes that order regardless of shard count — but the
// pending queue is partitioned into per-shard heaps joined by a K-way merge,
// and cross-shard schedules made during event execution are exchanged
// through per-shard mailboxes at conservative-lookahead window boundaries.
type Engine struct {
	now    Time
	seq    uint64
	nextID EventID
	// heaps holds one event heap per shard; len(heaps) >= 1 always. The
	// single-shard engine is the K=1 case of the same machinery.
	heaps []eventHeap
	// mail parks events scheduled across shards during execution until the
	// current lookahead window closes; mailCount counts parked events.
	mail      [][]*event
	mailCount int
	// heap0 and mail0 back heaps/mail inline for the single-shard
	// configuration, so an unsharded engine pays no slice-header
	// allocations over the pre-sharding scheduler; SetShards(k > 1)
	// switches to heap-allocated arrays.
	heap0 [1]eventHeap
	mail0 [1][]*event
	// windowEnd is the exclusive end of the current lookahead window:
	// head-of-merge time + lookahead, refreshed whenever the merge head
	// crosses it (after draining mailboxes).
	windowEnd Time
	// lookahead is the conservative bound: no cross-shard schedule may land
	// sooner than lookahead after the scheduling instant. Derived by the
	// caller from the minimum cross-shard propagation delay (medium's
	// minimum frame latency).
	lookahead Time
	// executing is true while an event body runs; curShard is that event's
	// shard, inherited by any event it schedules without an explicit home.
	executing bool
	curShard  int
	// crossShard counts cross-shard (mailboxed) schedules — the border
	// traffic the shard partition exchanges.
	crossShard uint64
	byID       map[EventID]*event
	// Processed counts events executed; useful for progress accounting
	// and loop-protection in tests.
	processed uint64
	// maxEvents, when non-zero, bounds processed events: Run and RunUntil
	// return ErrMaxEvents instead of executing past the budget, so a
	// self-rescheduling event loop fails a test instead of hanging it.
	maxEvents uint64
	// tap, when non-nil, observes every schedule/fire/cancel.
	tap *telemetry.Tap
	// free recycles fired and cancelled event structs; steady-state
	// scheduling allocates nothing once the pool has warmed up.
	free []*event
	// workers is the fork-join helper for golden-safe parallel phases
	// (world build, grid rebuilds); never nil after NewEngine.
	workers *Workers
}

// ShardedEngine is an Engine whose event queue is partitioned into K spatial
// shards. It is an alias, not a separate scheduler: sharding cannot change
// the execution order (the golden corpus pins it byte-for-byte), so the
// sharded engine is the same K-way machinery Engine always runs, configured
// with K > 1 heaps, a lookahead window, and a worker pool for the parallel
// phases.
type ShardedEngine = Engine

// NewEngine returns a single-shard engine with the clock at 0.
func NewEngine() *Engine {
	e := &Engine{
		byID:    make(map[EventID]*event),
		workers: serialWorkers,
	}
	e.heaps = e.heap0[:1]
	e.mail = e.mail0[:1]
	return e
}

// NewShardedEngine returns an engine partitioned into k shard heaps with the
// given conservative lookahead. Equivalent to NewEngine followed by
// SetShards and SetLookahead.
func NewShardedEngine(k int, lookahead Time) *ShardedEngine {
	e := NewEngine()
	e.SetShards(k)
	e.SetLookahead(lookahead)
	return e
}

// Now returns the current simulated time.
func (e *Engine) Now() Time { return e.now }

// Reset returns the engine to the NewEngine state — clock at 0, one shard,
// no pending events, no tap, no budget — while keeping its allocated
// capacity (heap backing arrays, id map, event free pool). Campaign workers
// reuse one engine across seeds so successive runs stop paying the warm-up
// allocations of a fresh engine.
func (e *Engine) Reset() {
	for i := range e.heaps {
		for _, ev := range e.heaps[i] {
			e.recycle(ev)
		}
		e.heaps[i] = e.heaps[i][:0]
	}
	for i := range e.mail {
		for _, ev := range e.mail[i] {
			e.recycle(ev)
		}
		e.mail[i] = e.mail[i][:0]
	}
	e.heaps = e.heaps[:1]
	e.mail = e.mail[:1]
	e.mailCount = 0
	e.windowEnd = 0
	e.lookahead = 0
	e.executing = false
	e.curShard = 0
	e.crossShard = 0
	clear(e.byID)
	e.now = 0
	e.seq = 0
	e.nextID = 0
	e.processed = 0
	e.maxEvents = 0
	e.tap = nil
	e.workers = serialWorkers
}

// SetShards partitions the pending queue into k per-shard heaps (k >= 1).
// Must be called with no events pending — reconfiguring a live queue would
// orphan events' shard homes.
func (e *Engine) SetShards(k int) {
	if k < 1 {
		//lint:allowpanic a non-positive shard count is always a construction bug; no run can proceed without a queue
		panic(fmt.Sprintf("sim: shard count %d < 1", k))
	}
	if len(e.byID) != 0 || e.executing {
		//lint:allowpanic resharding a live queue would orphan events' shard homes; always a harness sequencing bug
		panic("sim: SetShards with events pending")
	}
	for k > cap(e.heaps) {
		e.heaps = append(e.heaps[:cap(e.heaps)], nil)
	}
	e.heaps = e.heaps[:k]
	for k > cap(e.mail) {
		e.mail = append(e.mail[:cap(e.mail)], nil)
	}
	e.mail = e.mail[:k]
}

// Shards returns the number of shard heaps (>= 1).
func (e *Engine) Shards() int { return len(e.heaps) }

// SetLookahead sets the conservative synchronization bound: the minimum
// delay any cross-shard schedule is guaranteed to carry. Cross-shard events
// scheduled during execution are parked in the target shard's mailbox and
// drained when the merge head reaches the current window end (window start +
// lookahead); the bound guarantees no parked event can land inside the
// window being executed. Zero (the default) degrades to draining at every
// merge step, which is still correct, just without batching.
func (e *Engine) SetLookahead(l Time) {
	if l < 0 || math.IsNaN(l) {
		//lint:allowpanic a negative lookahead would unsound the window protocol; always a construction bug
		panic(fmt.Sprintf("sim: invalid lookahead %v", l))
	}
	e.lookahead = l
}

// Lookahead returns the configured cross-shard synchronization bound.
func (e *Engine) Lookahead() Time { return e.lookahead }

// CrossShardScheduled returns how many schedules crossed a shard boundary
// (were exchanged through a mailbox) — the border traffic of the partition.
func (e *Engine) CrossShardScheduled() uint64 { return e.crossShard }

// SetWorkers attaches the fork-join worker pool the engine's substrate
// (world build, medium grid rebuilds) uses for golden-safe parallel phases.
// A nil pool restores the serial default.
func (e *Engine) SetWorkers(w *Workers) {
	if w == nil {
		w = serialWorkers
	}
	e.workers = w
}

// Workers returns the engine's fork-join pool; never nil.
func (e *Engine) Workers() *Workers { return e.workers }

// Pending returns the number of scheduled, uncancelled events.
func (e *Engine) Pending() int { return len(e.byID) }

// Processed returns how many events have been executed so far.
func (e *Engine) Processed() uint64 { return e.processed }

// SetTap attaches a telemetry tap observing every schedule, fire and
// cancel. A nil tap (the default) disables engine telemetry; every emit
// site is guarded by a branch on the field, so the disabled path costs one
// predictable branch and no allocation.
func (e *Engine) SetTap(t *telemetry.Tap) { e.tap = t }

// ErrMaxEvents reports that an engine exceeded its SetMaxEvents budget with
// events still pending — almost always a self-rescheduling event loop.
var ErrMaxEvents = errors.New("sim: event budget exhausted")

// SetMaxEvents bounds the total number of events the engine will execute
// (0, the default, means unlimited). The budget is checked by Run and
// RunUntil, which return ErrMaxEvents rather than executing past it — the
// backstop that turns a runaway scheduling loop into a test failure instead
// of a hang.
func (e *Engine) SetMaxEvents(max uint64) { e.maxEvents = max }

// budgetErr returns the error for an exhausted event budget, nil while the
// budget (if any) has room.
func (e *Engine) budgetErr() error {
	if e.maxEvents > 0 && e.processed >= e.maxEvents {
		return fmt.Errorf("%w: %d events processed, %d still pending at t=%v",
			ErrMaxEvents, e.processed, len(e.byID), e.now)
	}
	return nil
}

// checkDelay panics on a negative or NaN delay.
func (e *Engine) checkDelay(delay Time) {
	if delay < 0 || math.IsNaN(delay) {
		//lint:allowpanic scheduling into the past is always a protocol-logic bug; no caller can meaningfully recover mid-event
		panic(fmt.Sprintf("sim: schedule with invalid delay %v at t=%v", delay, e.now))
	}
}

// Schedule runs fn after the given delay (>= 0). Scheduling into the past
// panics: that is always a protocol-logic bug.
func (e *Engine) Schedule(delay Time, fn func()) EventID {
	e.checkDelay(delay)
	return e.At(e.now+delay, fn)
}

// At runs fn at the absolute time t (>= Now). The event lives on the shard
// of the event currently executing (shard 0 outside execution); use AtOn to
// home it elsewhere.
func (e *Engine) At(t Time, fn func()) EventID {
	return e.schedule(t, fn, nil, e.curShard)
}

// ScheduleRunner runs r after the given delay (>= 0), like Schedule but
// without a closure: the event struct comes from the engine's free pool and
// the body is a pre-allocated Runner, so the call is allocation-free in
// steady state.
func (e *Engine) ScheduleRunner(delay Time, r Runner) EventID {
	e.checkDelay(delay)
	return e.AtRunner(e.now+delay, r)
}

// AtRunner runs r at the absolute time t (>= Now); the Runner counterpart
// of At.
func (e *Engine) AtRunner(t Time, r Runner) EventID {
	return e.schedule(t, nil, r, e.curShard)
}

// ScheduleOn runs fn after delay on the given shard; the homed counterpart
// of Schedule. Callers (the medium) home a frame's arrival on the receiving
// node's shard; when that crosses a shard boundary during execution, the
// delay must be at least the engine's lookahead.
func (e *Engine) ScheduleOn(home int, delay Time, fn func()) EventID {
	e.checkDelay(delay)
	return e.schedule(e.now+delay, fn, nil, home)
}

// AtOn runs fn at absolute time t on the given shard.
func (e *Engine) AtOn(home int, t Time, fn func()) EventID {
	return e.schedule(t, fn, nil, home)
}

// ScheduleRunnerOn runs r after delay on the given shard; the homed,
// allocation-free form the medium's ARQ uses for border frames.
func (e *Engine) ScheduleRunnerOn(home int, delay Time, r Runner) EventID {
	e.checkDelay(delay)
	return e.schedule(e.now+delay, nil, r, home)
}

// AtRunnerOn runs r at absolute time t on the given shard.
func (e *Engine) AtRunnerOn(home int, t Time, r Runner) EventID {
	return e.schedule(t, nil, r, home)
}

func (e *Engine) schedule(t Time, fn func(), r Runner, home int) EventID {
	if t < e.now {
		//lint:allowpanic scheduling into the past is always a protocol-logic bug; no caller can meaningfully recover mid-event
		panic(fmt.Sprintf("sim: schedule at %v before now %v", t, e.now))
	}
	if home < 0 || home >= len(e.heaps) {
		//lint:allowpanic a shard home outside the partition is always a wiring bug between the planner and the medium
		panic(fmt.Sprintf("sim: schedule on shard %d of %d", home, len(e.heaps)))
	}
	e.seq++
	e.nextID++
	var ev *event
	if n := len(e.free); n > 0 {
		ev = e.free[n-1]
		e.free[n-1] = nil
		e.free = e.free[:n-1]
		*ev = event{at: t, seq: e.seq, id: e.nextID, fn: fn, run: r, home: home}
	} else {
		ev = &event{at: t, seq: e.seq, id: e.nextID, fn: fn, run: r, home: home}
	}
	if e.executing && home != e.curShard {
		// Cross-shard hand-off: the conservative-lookahead contract says
		// this event cannot land inside the window being executed. Enforce
		// it here — a violation would silently corrupt the merge order.
		if t < e.windowEnd {
			//lint:allowpanic a cross-shard schedule inside the open window violates the lookahead bound the caller declared; executing it would corrupt the global event order
			panic(fmt.Sprintf("sim: cross-shard schedule at %v inside window ending %v (lookahead %v)",
				t, e.windowEnd, e.lookahead))
		}
		ev.idx = -1
		e.mail[home] = append(e.mail[home], ev)
		e.mailCount++
		e.crossShard++
	} else {
		heap.Push(&e.heaps[home], ev)
	}
	e.byID[ev.id] = ev
	if e.tap != nil {
		e.tap.SimScheduled(e.now, t, uint64(ev.id))
	}
	return ev.id
}

// recycle returns an event struct (already out of the heap and id map) to
// the free pool, dropping its body references so they can be collected.
func (e *Engine) recycle(ev *event) {
	ev.fn = nil
	ev.run = nil
	e.free = append(e.free, ev)
}

// FreeEvents returns the current size of the event free pool (for the
// pool-conservation tests).
func (e *Engine) FreeEvents() int { return len(e.free) }

// Cancel removes a scheduled event. Cancelling an already-fired or
// already-cancelled event is a no-op.
func (e *Engine) Cancel(id EventID) {
	ev, ok := e.byID[id]
	if !ok {
		return
	}
	delete(e.byID, id)
	ev.dead = true
	if ev.idx >= 0 {
		heap.Remove(&e.heaps[ev.home], ev.idx)
		e.recycle(ev)
	}
	// A mailboxed event (idx < 0) stays parked and is recycled when its
	// mailbox drains; recycling it here would let the pool hand the same
	// struct out twice.
	if e.tap != nil {
		e.tap.SimCancelled(e.now, uint64(id))
	}
}

// drainMail moves every parked cross-shard event into its shard heap,
// recycling the ones cancelled while parked. Called only at window
// boundaries (merge head past windowEnd) or when every heap is empty; the
// lookahead contract enforced at schedule time guarantees no drained event
// predates the window just executed.
func (e *Engine) drainMail() {
	for i := range e.mail {
		for j, ev := range e.mail[i] {
			e.mail[i][j] = nil
			if ev.dead {
				e.recycle(ev)
				continue
			}
			heap.Push(&e.heaps[i], ev)
		}
		e.mail[i] = e.mail[i][:0]
	}
	e.mailCount = 0
}

// peek returns the shard whose heap head is the next event in global
// (time, seq) order, draining mailboxes at window boundaries and refreshing
// the window. Returns -1 when no events remain anywhere.
func (e *Engine) peek() int {
	for {
		best := -1
		var bestEv *event
		for i := range e.heaps {
			if len(e.heaps[i]) == 0 {
				continue
			}
			ev := e.heaps[i][0]
			//lint:allowfloatcompare K-way merge on stored timestamps: same copied-value ordering as the heap's Less, ties fall through to the FIFO seq tie-break exactly
			if best < 0 || ev.at < bestEv.at || (ev.at == bestEv.at && ev.seq < bestEv.seq) {
				best, bestEv = i, ev
			}
		}
		if best < 0 {
			if e.mailCount == 0 {
				return -1
			}
			e.drainMail()
			continue
		}
		if bestEv.dead {
			// Defensive: Cancel removes heap events eagerly, so a dead head
			// should be unreachable — but if one ever appears, recycle it
			// instead of leaking it from the pool.
			heap.Pop(&e.heaps[best])
			e.recycle(bestEv)
			continue
		}
		if bestEv.at >= e.windowEnd {
			if e.mailCount > 0 {
				// Window boundary: exchange parked border events before
				// opening the next window — one may precede this head.
				e.drainMail()
				continue
			}
			e.windowEnd = bestEv.at + e.lookahead
		}
		return best
	}
}

// execute pops the head of shard s and runs its body.
func (e *Engine) execute(s int) {
	ev := heap.Pop(&e.heaps[s]).(*event)
	delete(e.byID, ev.id)
	e.now = ev.at
	e.processed++
	if e.tap != nil {
		e.tap.SimFired(e.now, uint64(ev.id))
	}
	prevExec, prevShard := e.executing, e.curShard
	e.executing, e.curShard = true, ev.home
	if ev.run != nil {
		ev.run.RunEvent()
	} else {
		ev.fn()
	}
	e.executing, e.curShard = prevExec, prevShard
	// The event is out of the heap and the id map, and its body has
	// returned; nothing can reference it anymore.
	e.recycle(ev)
}

// Step executes the next event, advancing the clock to its timestamp.
// It reports false when no events remain.
func (e *Engine) Step() bool {
	s := e.peek()
	if s < 0 {
		return false
	}
	e.execute(s)
	return true
}

// Run executes events until none remain, or until the SetMaxEvents budget
// (if any) is exhausted with events still pending, in which case it stops
// and returns ErrMaxEvents.
func (e *Engine) Run() error {
	for {
		s := e.peek()
		if s < 0 {
			return nil
		}
		if err := e.budgetErr(); err != nil {
			return err
		}
		e.execute(s)
	}
}

// RunUntil executes events with timestamps <= t and then advances the clock
// to exactly t. Events scheduled later remain pending. Like Run, it stops
// with ErrMaxEvents when the SetMaxEvents budget runs out before the
// horizon is reached.
func (e *Engine) RunUntil(t Time) error {
	for {
		s := e.peek()
		if s < 0 {
			break
		}
		if e.heaps[s][0].at > t {
			break
		}
		if err := e.budgetErr(); err != nil {
			return err
		}
		e.execute(s)
	}
	if t > e.now {
		e.now = t
	}
	return nil
}

// Ticker schedules fn every interval seconds starting at start, until the
// returned stop function is called. fn receives the firing time.
func (e *Engine) Ticker(start, interval Time, fn func(Time)) (stop func()) {
	return e.TickerUntil(start, interval, math.Inf(1), fn)
}

// TickerUntil schedules fn every interval seconds starting at start, while
// the firing time stays <= until (a tick landing exactly on the horizon
// still fires). The returned stop function cancels the remaining ticks
// early. Workload generators use this to guarantee no traffic past a
// scenario's send horizon.
func (e *Engine) TickerUntil(start, interval, until Time, fn func(Time)) (stop func()) {
	if interval <= 0 {
		//lint:allowpanic a non-positive interval would loop the engine at the current instant forever; always a caller bug
		panic("sim: ticker interval must be positive")
	}
	stopped := false
	var id EventID
	var tick func()
	// last is the index of the final firing: the largest n such that
	// start + n*interval <= until, i.e. the workload count contract
	// floor((until-start)/interval) pinned in the CBR tests. Termination is
	// derived from this index, not from the accumulated firing time, so
	// float drift in `at` can no longer add or drop a tick near the
	// horizon on long runs. The firing instants themselves still
	// accumulate (clamped to the horizon), preserving the established
	// event timeline.
	last := math.Floor((until - start) / interval)
	n := 0.0
	at := start
	tick = func() {
		if stopped {
			return
		}
		fn(e.now)
		if n >= last {
			return
		}
		n++
		at += interval
		if at > until {
			at = until
		}
		id = e.At(at, tick)
	}
	if start > until {
		return func() { stopped = true }
	}
	id = e.At(start, tick)
	return func() {
		stopped = true
		e.Cancel(id)
	}
}

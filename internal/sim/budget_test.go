package sim

import (
	"bytes"
	"errors"
	"strings"
	"testing"

	"alertmanet/internal/telemetry"
)

// selfRescheduling arms an event loop that never drains: the classic bug
// MaxEvents exists to catch.
func selfRescheduling(e *Engine) {
	var tick func()
	tick = func() { e.Schedule(0.1, tick) }
	e.Schedule(0, tick)
}

func TestMaxEventsRun(t *testing.T) {
	e := NewEngine()
	selfRescheduling(e)
	e.SetMaxEvents(10)
	err := e.Run()
	if !errors.Is(err, ErrMaxEvents) {
		t.Fatalf("Run() = %v, want ErrMaxEvents", err)
	}
	if e.Processed() != 10 {
		t.Errorf("processed %d events, want exactly the budget 10", e.Processed())
	}
	if e.Pending() == 0 {
		t.Error("budget exhaustion should leave the runaway event pending")
	}
	if !strings.Contains(err.Error(), "10 events processed") {
		t.Errorf("error should carry diagnostics, got %q", err)
	}
}

func TestMaxEventsRunUntil(t *testing.T) {
	e := NewEngine()
	selfRescheduling(e)
	e.SetMaxEvents(7)
	err := e.RunUntil(1e6)
	if !errors.Is(err, ErrMaxEvents) {
		t.Fatalf("RunUntil() = %v, want ErrMaxEvents", err)
	}
	if e.Processed() != 7 {
		t.Errorf("processed %d, want 7", e.Processed())
	}
}

// TestMaxEventsExactBudget: a run that finishes exactly at the budget is not
// an error — the guard only trips with events still pending.
func TestMaxEventsExactBudget(t *testing.T) {
	e := NewEngine()
	for i := 0; i < 5; i++ {
		e.Schedule(float64(i), func() {})
	}
	e.SetMaxEvents(5)
	if err := e.Run(); err != nil {
		t.Fatalf("Run() = %v, want nil when the budget is exactly consumed", err)
	}
	if e.Processed() != 5 {
		t.Errorf("processed %d, want 5", e.Processed())
	}
}

func TestMaxEventsZeroMeansUnlimited(t *testing.T) {
	e := NewEngine()
	n := 0
	var tick func()
	tick = func() {
		n++
		if n < 1000 {
			e.Schedule(0.001, tick)
		}
	}
	e.Schedule(0, tick)
	if err := e.Run(); err != nil {
		t.Fatalf("Run() = %v, want nil without a budget", err)
	}
	if n != 1000 {
		t.Errorf("ran %d events, want 1000", n)
	}
}

// TestMaxEventsRunUntilHorizonFirst: when the horizon cuts the run before
// the budget does, RunUntil succeeds and advances the clock to the horizon.
func TestMaxEventsRunUntilHorizonFirst(t *testing.T) {
	e := NewEngine()
	selfRescheduling(e)
	e.SetMaxEvents(100)
	if err := e.RunUntil(0.45); err != nil { // events at 0, .1, .2, .3, .4 = 5 < 100
		t.Fatalf("RunUntil() = %v, want nil", err)
	}
	if e.Now() != 0.45 {
		t.Errorf("clock at %v, want 0.45", e.Now())
	}
}

// TestEngineTap: schedule, cancel and fire each show up in the telemetry
// stream with the right ids.
func TestEngineTap(t *testing.T) {
	var buf bytes.Buffer
	tap := telemetry.New(&buf, telemetry.LayerSim)
	e := NewEngine()
	e.SetTap(tap)

	a := e.Schedule(1, func() {})
	b := e.Schedule(2, func() {})
	e.Cancel(b)
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	tap.Flush()

	events, err := telemetry.ReadAll(&buf)
	if err != nil {
		t.Fatal(err)
	}
	var scheduled, fired, cancelled []uint64
	for _, ev := range events {
		switch ev.Kind {
		case "schedule":
			scheduled = append(scheduled, ev.ID)
		case "fire":
			fired = append(fired, ev.ID)
		case "cancel":
			cancelled = append(cancelled, ev.ID)
		}
	}
	if len(scheduled) != 2 {
		t.Errorf("scheduled events: %v, want 2", scheduled)
	}
	if len(fired) != 1 || fired[0] != uint64(a) {
		t.Errorf("fired events: %v, want [%d]", fired, a)
	}
	if len(cancelled) != 1 || cancelled[0] != uint64(b) {
		t.Errorf("cancelled events: %v, want [%d]", cancelled, b)
	}
	if reg := tap.Registry(); reg.Counter("sim.scheduled") != 2 ||
		reg.Counter("sim.fired") != 1 || reg.Counter("sim.cancelled") != 1 {
		t.Errorf("registry counters wrong: scheduled=%d fired=%d cancelled=%d",
			reg.Counter("sim.scheduled"), reg.Counter("sim.fired"), reg.Counter("sim.cancelled"))
	}
}

// checkInvariants asserts the structural contract between the shard heaps,
// the mailboxes and the byID index: same membership, correct back-pointers,
// no dead entries outside mailboxes.
func checkInvariants(t *testing.T, e *Engine) {
	t.Helper()
	total := 0
	for s := range e.heaps {
		total += len(e.heaps[s])
		for i, ev := range e.heaps[s] {
			if ev.idx != i {
				t.Fatalf("event %d stores idx %d at heap position %d", ev.id, ev.idx, i)
			}
			if ev.home != s {
				t.Fatalf("event %d homed on shard %d found in heap %d", ev.id, ev.home, s)
			}
			if ev.dead {
				t.Fatalf("dead event %d still in heap", ev.id)
			}
			if e.byID[ev.id] != ev {
				t.Fatalf("event %d in heap but not indexed", ev.id)
			}
		}
	}
	mailed := 0
	for s := range e.mail {
		for _, ev := range e.mail[s] {
			mailed++
			if ev.idx >= 0 {
				t.Fatalf("mailboxed event %d claims heap index %d", ev.id, ev.idx)
			}
			if !ev.dead {
				if ev.home != s {
					t.Fatalf("event %d homed on shard %d found in mailbox %d", ev.id, ev.home, s)
				}
				if e.byID[ev.id] != ev {
					t.Fatalf("live event %d in mailbox but not indexed", ev.id)
				}
				total++
			}
		}
	}
	if mailed != e.mailCount {
		t.Fatalf("mailboxes hold %d entries, mailCount says %d", mailed, e.mailCount)
	}
	if total != len(e.byID) {
		t.Fatalf("queues hold %d live events, byID has %d", total, len(e.byID))
	}
}

// FuzzSchedule drives the engine with an arbitrary interleaving of
// Schedule, Cancel and TickerUntil operations, then checks that the heap
// and the byID index stay consistent, cancelled events never fire, and all
// events fire in nondecreasing time order with FIFO tie-breaking. The same
// program is then replayed differentially on sharded engines (2 and 4
// shards, with cross-shard chains and in-flight cancels layered on): the
// fire log must be byte-identical to the single-shard interpretation.
func FuzzSchedule(f *testing.F) {
	f.Add([]byte{0, 10, 0, 5, 1, 0, 2, 9})
	f.Add([]byte{2, 3, 2, 7, 1, 1, 0, 0, 0, 0})
	f.Add([]byte{0, 1, 1, 0, 1, 0, 0, 255, 2, 128})
	f.Add([]byte{})

	f.Fuzz(func(t *testing.T, program []byte) {
		e := NewEngine()
		var (
			ids       []EventID
			cancelled = map[EventID]bool{}
			firedIDs  []EventID
			fireTimes []Time
			fireSeqs  []int
		)
		order := 0
		record := func(id EventID) func() {
			return func() {
				firedIDs = append(firedIDs, id)
				fireTimes = append(fireTimes, e.Now())
				fireSeqs = append(fireSeqs, order)
				order++
			}
		}

		for i := 0; i+1 < len(program); i += 2 {
			op, arg := program[i]%3, program[i+1]
			switch op {
			case 0: // schedule a one-shot
				delay := float64(arg) / 16
				var id EventID
				id = e.Schedule(delay, func() { record(id)() })
				// Assigning id after capture is safe: the closure reads it
				// at fire time, strictly after Schedule returns.
				ids = append(ids, id)
			case 1: // cancel an issued id, or a bogus one (must be a no-op)
				if len(ids) > 0 {
					id := ids[int(arg)%len(ids)]
					if !cancelled[id] {
						e.Cancel(id)
						cancelled[id] = true
					}
				}
				e.Cancel(EventID(1e9) + EventID(arg)) // never issued
			case 2: // ticker with a bounded horizon
				start := float64(arg % 8)
				interval := float64(arg%5+1) / 4
				until := float64(arg % 16)
				e.TickerUntil(start, interval, until, func(at Time) {
					fireTimes = append(fireTimes, at)
					fireSeqs = append(fireSeqs, order)
					order++
				})
			}
			checkInvariants(t, e)
		}

		e.SetMaxEvents(100000) // tickers are bounded, but belt and braces
		if err := e.Run(); err != nil {
			t.Fatalf("Run() = %v", err)
		}
		checkInvariants(t, e)
		if e.Pending() != 0 {
			t.Fatalf("%d events pending after Run", e.Pending())
		}

		for _, id := range firedIDs {
			if cancelled[id] {
				t.Fatalf("cancelled event %d fired", id)
			}
		}
		for i := 1; i < len(fireTimes); i++ {
			if fireTimes[i] < fireTimes[i-1] {
				t.Fatalf("fire times regressed: %v then %v", fireTimes[i-1], fireTimes[i])
			}
			if fireSeqs[i] < fireSeqs[i-1] {
				t.Fatalf("fire order regressed at %d", i)
			}
		}
		// Every uncancelled one-shot fired exactly once.
		firedSet := map[EventID]int{}
		for _, id := range firedIDs {
			firedSet[id]++
		}
		for _, id := range ids {
			want := 1
			if cancelled[id] {
				want = 0
			}
			if firedSet[id] != want {
				t.Fatalf("event %d fired %d times, want %d (cancelled=%v)",
					id, firedSet[id], want, cancelled[id])
			}
		}

		// Differential: the same program, reinterpreted with round-robin
		// shard homes and cross-shard chains, must fire identically for
		// every shard count.
		ref := runShardProgram(t, 1, program)
		for _, k := range []int{2, 4} {
			compareFireLogs(t, k, ref, runShardProgram(t, k, program))
		}
	})
}

package sim

import "sync"

// Workers is the fork-join helper for the engine's golden-safe parallel
// phases: pure per-index work (per-node world build, position-grid sweeps,
// broadcast range filters) whose outputs are written to disjoint slots and
// whose inputs are immutable for the duration of the call. Nothing that
// draws from a shared rng stream, touches the event queue, or appends to a
// shared slice may run under For — those stay sequential so the byte-exact
// determinism contract holds for every worker degree.
//
// Work is split into exactly Degree contiguous chunks with a fixed rule, so
// the set of (lo, hi) calls is a pure function of (n, degree) — degree
// changes never change results, only wall time. Goroutines are spawned per
// call and joined before For returns: no persistent pool to leak across the
// thousands of arena reuses a campaign performs.
type Workers struct {
	degree int
}

// serialWorkers is the shared degree-1 pool every engine starts with; For
// runs inline, spawning nothing.
var serialWorkers = &Workers{degree: 1}

// NewWorkers returns a pool of the given parallel degree; degrees below 1
// are clamped to 1 (serial).
func NewWorkers(degree int) *Workers {
	if degree < 1 {
		degree = 1
	}
	return &Workers{degree: degree}
}

// Degree returns the parallel degree.
func (w *Workers) Degree() int { return w.degree }

// forMinPerChunk is the smallest per-chunk item count worth a goroutine:
// below this the spawn/join overhead dominates the work.
const forMinPerChunk = 32

// For calls fn over a partition of [0, n) into at most Degree contiguous
// chunks, concurrently, and returns when every call has. fn must satisfy the
// contract in the type comment: disjoint writes, immutable reads, no shared
// rng draws.
func (w *Workers) For(n int, fn func(lo, hi int)) {
	if n <= 0 {
		return
	}
	chunks := w.degree
	if max := n / forMinPerChunk; chunks > max {
		chunks = max
	}
	if chunks <= 1 {
		fn(0, n)
		return
	}
	// Fixed chunking: chunk i covers [i*size, min((i+1)*size, n)). The
	// bounds depend only on (n, chunks), never on timing.
	size := (n + chunks - 1) / chunks
	var wg sync.WaitGroup
	for i := 1; i < chunks; i++ {
		lo := i * size
		hi := lo + size
		if hi > n {
			hi = n
		}
		if lo >= hi {
			continue
		}
		wg.Add(1)
		//lint:allowsharedstate fork-join worker: fn writes only disjoint index ranges of caller-owned slices and reads only immutable state; joined before For returns, so no state is shared across the barrier
		go func(lo, hi int) {
			defer wg.Done()
			fn(lo, hi)
		}(lo, hi)
	}
	fn(0, min(size, n))
	wg.Wait()
}

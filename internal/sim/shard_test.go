package sim

import (
	"strings"
	"testing"
)

// testLookahead is the conservative bound used by the shard tests: every
// cross-shard schedule in them carries at least this delay.
const testLookahead = 0.25

// fuzzFire is one fired event in a comparison log: its id pins the global
// schedule order, its time the merge order.
type fuzzFire struct {
	id EventID
	at Time
}

// runShardProgram interprets a byte program (the FuzzSchedule op encoding)
// on a k-shard engine: one-shots homed round-robin by their argument, each
// chaining a child one shard over on fire (sometimes cancelling it while it
// is still in flight), plus cancels and tickers. Returns the fire log.
func runShardProgram(t *testing.T, k int, program []byte) []fuzzFire {
	t.Helper()
	e := NewShardedEngine(k, testLookahead)
	var log []fuzzFire
	var ids []EventID
	cancelled := map[EventID]bool{}
	for i := 0; i+1 < len(program); i += 2 {
		op, arg := program[i]%3, program[i+1]
		switch op {
		case 0: // homed one-shot chaining a cross-shard child
			delay := float64(arg) / 16
			home := int(arg) % k
			var id EventID
			id = e.ScheduleOn(home, delay, func() {
				log = append(log, fuzzFire{id, e.Now()})
				var child EventID
				child = e.ScheduleOn((home+1)%k, testLookahead+float64(arg%7)/8, func() {
					log = append(log, fuzzFire{child, e.Now()})
				})
				if arg%5 == 0 {
					// Cancel the child while it is parked in the target
					// shard's mailbox (k>1) or freshly heaped (k=1).
					e.Cancel(child)
				}
			})
			ids = append(ids, id)
		case 1: // cancel an issued id, or a bogus one
			if len(ids) > 0 {
				id := ids[int(arg)%len(ids)]
				if !cancelled[id] {
					e.Cancel(id)
					cancelled[id] = true
				}
			}
			e.Cancel(EventID(1e9) + EventID(arg))
		case 2: // ticker with a bounded horizon
			start := float64(arg % 8)
			interval := float64(arg%5+1) / 4
			until := float64(arg % 16)
			e.TickerUntil(start, interval, until, func(at Time) {
				log = append(log, fuzzFire{0, at})
			})
		}
		checkInvariants(t, e)
	}
	e.SetMaxEvents(100000)
	if err := e.Run(); err != nil {
		t.Fatalf("k=%d: Run() = %v", k, err)
	}
	checkInvariants(t, e)
	if e.Pending() != 0 {
		t.Fatalf("k=%d: %d events pending after Run", k, e.Pending())
	}
	return log
}

// compareFireLogs fails the test unless the two logs are identical.
func compareFireLogs(t *testing.T, k int, ref, got []fuzzFire) {
	t.Helper()
	if len(ref) != len(got) {
		t.Fatalf("k=%d fired %d events, k=1 fired %d", k, len(got), len(ref))
	}
	for i := range ref {
		if ref[i] != got[i] {
			t.Fatalf("k=%d diverges at fire %d: got %+v, k=1 had %+v", k, i, got[i], ref[i])
		}
	}
}

// The shard-count invariance contract at the engine level: the same program
// produces the identical fire sequence for 1, 2, 4 and 8 shards.
func TestShardCountInvariance(t *testing.T) {
	program := []byte{
		0, 10, 0, 5, 2, 9, 0, 17, 1, 0, 0, 40, 2, 13, 0, 3,
		0, 128, 1, 2, 0, 65, 0, 200, 2, 6, 0, 15, 1, 1, 0, 99,
	}
	ref := runShardProgram(t, 1, program)
	if len(ref) == 0 {
		t.Fatal("reference program fired nothing")
	}
	for _, k := range []int{2, 4, 8} {
		compareFireLogs(t, k, ref, runShardProgram(t, k, program))
	}
}

// Cross-shard schedules made during execution must be parked in mailboxes
// and counted as border traffic; same-shard and idle-time schedules must
// not.
func TestCrossShardMailbox(t *testing.T) {
	e := NewShardedEngine(2, testLookahead)
	if e.Shards() != 2 || e.Lookahead() != testLookahead {
		t.Fatalf("Shards()=%d Lookahead()=%v", e.Shards(), e.Lookahead())
	}
	// Idle-time schedule onto shard 1: direct heap insertion, not border
	// traffic.
	fired := 0
	e.ScheduleOn(1, 1, func() {
		fired++
		// Same-shard chain: not border traffic.
		e.Schedule(0.5, func() { fired++ })
		// Cross-shard chain: mailboxed.
		e.ScheduleOn(0, testLookahead, func() { fired++ })
	})
	if e.CrossShardScheduled() != 0 {
		t.Fatalf("idle-time schedule counted as cross-shard")
	}
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if fired != 3 {
		t.Fatalf("fired %d events, want 3", fired)
	}
	if e.CrossShardScheduled() != 1 {
		t.Fatalf("CrossShardScheduled() = %d, want 1", e.CrossShardScheduled())
	}
}

// A cross-shard schedule landing inside the open lookahead window is a
// contract violation the engine must refuse loudly, not execute out of
// order.
func TestCrossShardLookaheadViolationPanics(t *testing.T) {
	e := NewShardedEngine(2, testLookahead)
	e.ScheduleOn(0, 1, func() {
		defer func() {
			r := recover()
			if r == nil {
				t.Error("cross-shard schedule inside the window did not panic")
				return
			}
			if !strings.Contains(r.(string), "inside window") {
				t.Errorf("unexpected panic %v", r)
			}
		}()
		e.ScheduleOn(1, testLookahead/2, func() {})
	})
	// Park a second event on shard 1 so a window is genuinely open across
	// both shards.
	e.ScheduleOn(1, 2, func() {})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
}

func TestSetShardsGuards(t *testing.T) {
	mustPanic := func(name string, fn func()) {
		t.Helper()
		defer func() {
			if recover() == nil {
				t.Errorf("%s did not panic", name)
			}
		}()
		fn()
	}
	e := NewEngine()
	mustPanic("SetShards(0)", func() { e.SetShards(0) })
	mustPanic("SetLookahead(-1)", func() { e.SetLookahead(-1) })
	e.Schedule(1, func() {})
	mustPanic("SetShards with pending events", func() { e.SetShards(2) })
	mustPanic("schedule on out-of-range shard", func() { e.ScheduleOn(3, 1, func() {}) })
}

// Reset must return a sharded engine to the single-shard NewEngine state
// and recycle everything parked in mailboxes.
func TestResetClearsShardState(t *testing.T) {
	e := NewShardedEngine(4, testLookahead)
	e.ScheduleOn(2, 1, func() {
		e.ScheduleOn(3, 5, func() {})
	})
	if err := e.RunUntil(1); err != nil {
		t.Fatal(err)
	}
	e.Reset()
	if e.Shards() != 1 || e.Lookahead() != 0 || e.Pending() != 0 || e.Now() != 0 {
		t.Fatalf("Reset left shards=%d lookahead=%v pending=%d now=%v",
			e.Shards(), e.Lookahead(), e.Pending(), e.Now())
	}
	if e.CrossShardScheduled() != 0 {
		t.Fatalf("Reset kept cross-shard counter %d", e.CrossShardScheduled())
	}
	// The engine is usable as a plain single-shard engine afterwards.
	ran := false
	e.Schedule(1, func() { ran = true })
	if err := e.Run(); err != nil || !ran {
		t.Fatalf("post-Reset run: err=%v ran=%v", err, ran)
	}
}

// The free-pool conservation contract (the PR's leak fix): schedule/cancel/
// run cycles — including cross-shard chains and cancels of in-flight
// mailboxed events — return every event struct to the pool, so steady-state
// cycles neither grow the pool nor allocate.
func TestPoolConservation(t *testing.T) {
	e := NewShardedEngine(2, testLookahead)
	ids := make([]EventID, 0, 128)
	cycle := func() {
		ids = ids[:0]
		for i := 0; i < 96; i++ {
			home := i % 2
			delay := float64(i%11) / 8
			id := e.ScheduleOn(home, delay, func() {
				child := e.ScheduleOn(1-home, testLookahead+delay, func() {})
				if i%3 == 0 {
					e.Cancel(child)
				}
			})
			ids = append(ids, id)
		}
		for i := 0; i < len(ids); i += 4 {
			e.Cancel(ids[i])
		}
		if err := e.Run(); err != nil {
			t.Fatal(err)
		}
		// Run also exercises the dead-peek defensive path via cancelled
		// events; afterwards every struct must be back in the pool.
		if e.Pending() != 0 {
			t.Fatalf("%d events pending after cycle", e.Pending())
		}
	}
	cycle()
	base := e.FreeEvents()
	if base == 0 {
		t.Fatal("warm-up cycle left an empty pool")
	}
	for i := 0; i < 50; i++ {
		cycle()
		if got := e.FreeEvents(); got != base {
			t.Fatalf("cycle %d: free pool %d, want steady-state %d", i, got, base)
		}
	}
}

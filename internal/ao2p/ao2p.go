// Package ao2p re-implements AO2P ("Ad Hoc On-Demand Position-Based Private
// Routing", Wu [10]) as described in Sections 5 and 6 of the ALERT paper,
// for use as the hop-by-hop-encryption comparator:
//
//   - Routing is GPSR-like, but each hop runs a contention phase that
//     classifies neighbors by distance to the destination and grants the
//     channel to the closest class — modeled as a fixed per-hop contention
//     delay on top of the hop-by-hop public-key cost.
//
//   - For destination anonymity, the improved AO2P replaces the real
//     destination with a virtual position on the S-D line beyond D; relays
//     aim at that position, and D itself claims the packet during
//     contention once a relay is within its radio range. This yields the
//     slightly longer paths and higher latency the paper reports.
package ao2p

import (
	"alertmanet/internal/geo"
	"alertmanet/internal/gpsr"
	"alertmanet/internal/locservice"
	"alertmanet/internal/medium"
	"alertmanet/internal/metrics"
	"alertmanet/internal/node"
	"alertmanet/internal/rng"
)

// Config tunes the AO2P model.
type Config struct {
	// PacketSize is the on-air data packet size.
	PacketSize int
	// HopBudget is the TTL in hops.
	HopBudget int
	// ContentionDelay is the per-hop contention-phase delay in seconds
	// ("contention... leads to an extra delay", Section 5).
	ContentionDelay float64
	// VirtualExtMin/Max bound the random extension of the S-D segment
	// for the virtual destination (fraction of |SD| beyond D).
	VirtualExtMin, VirtualExtMax float64
	// CompleteTimeout records a packet undelivered after this long.
	CompleteTimeout float64
}

// DefaultConfig matches the evaluation setup.
func DefaultConfig() Config {
	return Config{
		PacketSize:      512,
		HopBudget:       gpsr.DefaultHopBudget,
		ContentionDelay: 0.05,
		VirtualExtMin:   0.2,
		VirtualExtMax:   0.5,
		CompleteTimeout: 8,
	}
}

// meta travels inside the gpsr packet payload.
type meta struct {
	rec       *metrics.PacketRecord
	dst       medium.NodeID
	completed bool
}

// Protocol is one AO2P instance.
type Protocol struct {
	net    *node.Network
	loc    *locservice.Service
	router *gpsr.Router
	cfg    Config
	col    *metrics.Collector
	rnd    *rng.Source
}

// New creates the protocol and attaches handlers on every node.
func New(net *node.Network, loc *locservice.Service, cfg Config, src *rng.Source) *Protocol {
	p := &Protocol{
		net:    net,
		loc:    loc,
		router: gpsr.New(net),
		cfg:    cfg,
		col:    metrics.NewCollector(),
		rnd:    src.Split("ao2p"),
	}
	rangeM := net.Med.Params().Range
	for i := 0; i < net.N(); i++ {
		id := medium.NodeID(i)
		net.Med.Attach(id, func(_ medium.NodeID, payload any, _ int) {
			pkt, ok := payload.(*gpsr.Packet)
			if !ok {
				return
			}
			m, ok := pkt.Payload.(*meta)
			if !ok {
				return
			}
			// Record the confirmed arrival before any branch below: the
			// short-circuits bypass Handle, and Path/Hops grow only on
			// reception.
			p.router.Receive(id, pkt)
			if id == m.dst {
				// D claimed the packet: close the routing attempt
				// through the router so its terminal counters balance.
				p.router.Finish(id, pkt, gpsr.Delivered)
				return
			}
			// Destination contention: if D can hear this relay, D
			// wins the next contention round and claims the packet.
			if p.net.Med.PositionNow(id).Dist(p.net.Med.PositionNow(m.dst)) <= rangeM &&
				pkt.HopBudget > 0 {
				pkt.HopBudget--
				p.charge(func() {
					// The claim bypasses Router.forward, so emit its
					// forwarding event here to keep traces connected.
					if tp := p.router.Tap(); tp != nil {
						tp.Forward(p.net.Eng.Now(), pkt.TelemetryTrace(), int(id), int(m.dst), "claim")
					}
					p.router.UnicastPacket(id, m.dst, pkt)
				})
				return
			}
			// Ordinary relay: contention phase + hop-by-hop
			// re-encryption batched into one pooled event.
			p.net.NotePub(1)
			p.router.HandleAfter(p.cfg.ContentionDelay+p.net.Costs.PubEncrypt, id, pkt)
		})
	}
	return p
}

// charge schedules fn after one hop's contention and public-key cost.
func (p *Protocol) charge(fn func()) {
	p.net.NotePub(1)
	p.net.Eng.Schedule(p.cfg.ContentionDelay+p.net.Costs.PubEncrypt, fn)
}

// Collector returns the run's metrics.
func (p *Protocol) Collector() *metrics.Collector { return p.col }

// Router exposes the underlying router.
func (p *Protocol) Router() *gpsr.Router { return p.router }

// virtualDest picks the anonymizing position: on the ray from S through D,
// a random fraction beyond D, clamped to the field.
func (p *Protocol) virtualDest(s, d geo.Point) geo.Point {
	ext := p.rnd.Uniform(p.cfg.VirtualExtMin, p.cfg.VirtualExtMax)
	v := s.Lerp(d, 1+ext)
	return p.net.Field().Clamp(v)
}

// Send routes one application packet and returns its metrics record. The
// error is always nil; the signature matches the experiment harness's Proto
// interface.
func (p *Protocol) Send(src, dst medium.NodeID, data []byte) (*metrics.PacketRecord, error) {
	rec := p.col.Start(src, dst, p.net.Eng.Now())
	entry, ok := p.loc.Lookup(dst)
	if !ok {
		p.col.Complete(rec, 0, false)
		return rec, nil
	}
	m := &meta{rec: rec, dst: dst}
	if p.cfg.CompleteTimeout > 0 {
		p.net.Eng.Schedule(p.cfg.CompleteTimeout, func() { p.finish(m, nil, 0, false) })
	}
	vd := p.virtualDest(p.net.Med.PositionNow(src), entry.Pos)
	pkt := p.router.NewPacket()
	pkt.Dest = vd
	pkt.DeliverTo = gpsr.NoDeliverTo
	pkt.Payload = m
	pkt.Size = p.cfg.PacketSize
	pkt.HopBudget = p.cfg.HopBudget
	pkt.OnOutcome = func(at medium.NodeID, gp *gpsr.Packet, out gpsr.Outcome) {
		// Delivered means D claimed the packet (the demux closes
		// that through the router). Reaching the node closest to
		// the virtual destination without D claiming it means
		// delivery failed — unless that node IS D.
		if out == gpsr.Delivered ||
			(out == gpsr.ArrivedClosest && at == m.dst) {
			// deliver retains the frame until its decryption charge
			// lands; it is released there.
			p.deliver(at, m, gp)
			return
		}
		p.finish(m, gp, 0, false)
		p.router.Release(gp)
	}
	pkt.SetTrace(rec.Seq)
	// Source-side initial encryption for the first hop.
	p.charge(func() { p.router.Send(src, pkt) })
	return rec, nil
}

// deliver runs at D: one decryption charge, then record delivery. The frame
// is retained across the charge and released once the record is written.
func (p *Protocol) deliver(at medium.NodeID, m *meta, pkt *gpsr.Packet) {
	p.net.NotePub(1)
	p.net.Eng.Schedule(p.net.Costs.PubDecrypt, func() {
		p.finish(m, pkt, p.net.Eng.Now(), true)
		p.router.Release(pkt)
	})
	_ = at
}

func (p *Protocol) finish(m *meta, pkt *gpsr.Packet, at float64, delivered bool) {
	if m.completed {
		return
	}
	m.completed = true
	if pkt != nil {
		m.rec.Hops = pkt.Hops
		// Copy, never alias: the frame goes back to the router's pool
		// after the outcome and its Path will be rewritten.
		m.rec.Path = append(m.rec.Path[:0], pkt.Path...)
	}
	p.col.Complete(m.rec, at, delivered)
}

package ao2p

import (
	"testing"

	"alertmanet/internal/crypt"
	"alertmanet/internal/geo"
	"alertmanet/internal/locservice"
	"alertmanet/internal/medium"
	"alertmanet/internal/mobility"
	"alertmanet/internal/node"
	"alertmanet/internal/rng"
	"alertmanet/internal/sim"
)

var field = geo.Rect{Min: geo.Point{X: 0, Y: 0}, Max: geo.Point{X: 1000, Y: 1000}}

func build(seed int64, n int) (*sim.Engine, *node.Network, *Protocol) {
	eng := sim.NewEngine()
	src := rng.New(seed)
	mob := mobility.NewStatic(field, n, src)
	med := medium.MustNew(eng, mob, medium.DefaultParams(), src)
	net := node.NewNetwork(eng, med, crypt.NewFastSuite(src), crypt.DefaultCostModel(),
		node.Config{}, src)
	loc := locservice.New(net, locservice.DefaultConfig())
	return eng, net, New(net, loc, DefaultConfig(), src)
}

func farPair(net *node.Network, minDist float64) (medium.NodeID, medium.NodeID) {
	for s := 0; s < net.N(); s++ {
		for d := s + 1; d < net.N(); d++ {
			if net.Node(medium.NodeID(s)).Position().Dist(
				net.Node(medium.NodeID(d)).Position()) >= minDist {
				return medium.NodeID(s), medium.NodeID(d)
			}
		}
	}
	panic("no far pair")
}

func TestDelivery(t *testing.T) {
	eng, net, p := build(1, 200)
	s, d := farPair(net, 600)
	rec, _ := p.Send(s, d, []byte("x"))
	eng.RunUntil(30)
	if !rec.Delivered {
		t.Fatal("AO2P failed to deliver in dense static network")
	}
	if rec.Hops < 2 {
		t.Fatalf("hops = %d for 600 m pair", rec.Hops)
	}
}

func TestPerHopPublicKeyLatency(t *testing.T) {
	eng, net, p := build(2, 200)
	s, d := farPair(net, 600)
	rec, _ := p.Send(s, d, []byte("x"))
	eng.RunUntil(60)
	if !rec.Delivered {
		t.Skip("undeliverable pair")
	}
	// Each of the rec.Hops hops paid at least one public-key charge
	// (source + relays) plus the final decryption.
	min := float64(rec.Hops) * net.Costs.PubEncrypt
	if rec.Latency() < min {
		t.Fatalf("latency %v below per-hop crypto floor %v (%d hops)",
			rec.Latency(), min, rec.Hops)
	}
}

func TestVirtualDestBeyondD(t *testing.T) {
	_, net, p := build(3, 50)
	s := geo.Point{X: 100, Y: 100}
	d := geo.Point{X: 500, Y: 500}
	for i := 0; i < 100; i++ {
		v := p.virtualDest(s, d)
		// The virtual destination is farther from S than D is.
		if v.Dist(s) < d.Dist(s) {
			t.Fatalf("virtual dest %v closer to S than D", v)
		}
		if !net.Field().Contains(v) {
			t.Fatalf("virtual dest %v outside field", v)
		}
	}
}

func TestVirtualDestClamped(t *testing.T) {
	_, net, p := build(4, 50)
	// D near the corner: the extension must clamp into the field.
	v := p.virtualDest(geo.Point{X: 100, Y: 100}, geo.Point{X: 990, Y: 990})
	if !net.Field().Contains(v) {
		t.Fatalf("virtual dest %v escaped the field", v)
	}
}

func TestLongerPathsThanStraightLine(t *testing.T) {
	// Aiming beyond D should, over many sends, give paths at least as
	// long as the straight-line hop count (paper: "may lead to long path
	// length with higher routing cost than GPSR").
	eng, net, p := build(5, 200)
	s, d := farPair(net, 500)
	for i := 0; i < 10; i++ {
		p.Send(s, d, []byte("x"))
		eng.RunUntil(float64(i+1) * 20)
	}
	if p.Collector().DeliveryRate() == 0 {
		t.Skip("nothing delivered")
	}
	straight := net.Node(s).Position().Dist(net.Node(d).Position()) /
		net.Med.Params().Range
	if p.Collector().HopsPerPacket() < straight-1 {
		t.Fatalf("hops/packet %v below geometric floor %v",
			p.Collector().HopsPerPacket(), straight)
	}
}

func TestUndeliveredOnIsland(t *testing.T) {
	eng := sim.NewEngine()
	src := rng.New(6)
	pos := []geo.Point{{X: 0, Y: 0}, {X: 100, Y: 0}, {X: 900, Y: 900}}
	mob := &pinned{pos: pos}
	med := medium.MustNew(eng, mob, medium.DefaultParams(), src)
	net := node.NewNetwork(eng, med, crypt.NewFastSuite(src), crypt.ZeroCostModel(),
		node.Config{}, src)
	loc := locservice.New(net, locservice.DefaultConfig())
	p := New(net, loc, DefaultConfig(), src)
	rec, _ := p.Send(0, 2, []byte("x"))
	eng.RunUntil(30)
	if rec.Delivered {
		t.Fatal("cross-island delivery should fail")
	}
	if p.Collector().Completed() != 1 {
		t.Fatal("record never completed")
	}
}

type pinned struct{ pos []geo.Point }

func (p *pinned) Position(id int, _ float64) geo.Point { return p.pos[id] }
func (p *pinned) N() int                               { return len(p.pos) }
func (p *pinned) Field() geo.Rect                      { return field }

func TestLocServiceFailure(t *testing.T) {
	eng := sim.NewEngine()
	src := rng.New(7)
	mob := mobility.NewStatic(field, 20, src)
	med := medium.MustNew(eng, mob, medium.DefaultParams(), src)
	net := node.NewNetwork(eng, med, crypt.NewFastSuite(src), crypt.ZeroCostModel(),
		node.Config{}, src)
	loc := locservice.New(net, locservice.DefaultConfig())
	p := New(net, loc, DefaultConfig(), src)
	for i := 0; i < loc.NumServers(); i++ {
		loc.FailServer(i)
	}
	rec, _ := p.Send(0, 5, []byte("x"))
	eng.RunUntil(5)
	if rec.Delivered || p.Collector().Completed() != 1 {
		t.Fatal("send without location service should fail fast")
	}
}

// Package locservice models the secure location service of Section 2.2:
// third-party servers that hold each node's current position and public key.
// A source that knows a destination's identity queries the service to learn
// the destination's location (to aim geographic routing) and its public key
// (to establish the session's symmetric key).
//
// The service is an oracle with the two behaviours the evaluation exercises:
//
//   - Update on/off. Figures 14b, 15b and 16b compare runs "with destination
//     update" (positions refreshed every UpdateInterval) against "without
//     destination update" (positions frozen at registration), which makes
//     fast-moving destinations unreachable by the stale coordinate.
//
//   - Overhead accounting. Section 4.3 argues the service is cheap as long
//     as N_L ~ sqrt(N) and the update frequency f is far below the
//     communication frequency F; the package counts the messages in those
//     formulas so the claim can be checked numerically.
//
// Replicated servers may fail; lookups succeed while at least one replica
// is alive (the paper assumes seamless switch-over between servers).
package locservice

import (
	"encoding/binary"
	"errors"
	"math"

	"alertmanet/internal/crypt"
	"alertmanet/internal/geo"
	"alertmanet/internal/medium"
	"alertmanet/internal/node"
	"alertmanet/internal/sim"
)

// Config controls the location service.
type Config struct {
	// NumServers is N_L; zero means ceil(sqrt(N)) per Section 4.3.
	NumServers int
	// UpdateInterval is the position-update period in seconds (1/f).
	UpdateInterval float64
	// UpdatesEnabled distinguishes the paper's "with destination update"
	// and "without destination update" runs.
	UpdatesEnabled bool
}

// DefaultConfig enables updates every 2 seconds.
func DefaultConfig() Config {
	return Config{NumServers: 0, UpdateInterval: 2, UpdatesEnabled: true}
}

// Entry is what a lookup returns about a node.
type Entry struct {
	Pos       geo.Point
	Pub       crypt.PubKey
	Pseudonym crypt.Pseudonym
	UpdatedAt float64
}

// Counters tallies service traffic for the Section 4.3 overhead analysis.
type Counters struct {
	// Updates counts node->server position/pseudonym updates (N*f*T).
	Updates uint64
	// Replications counts server<->server messages (N_L*(N_L-1)*f*T).
	Replications uint64
	// Lookups counts client queries.
	Lookups uint64
}

// Service is the replicated location service.
type Service struct {
	net     *node.Network
	cfg     Config
	entries []Entry
	alive   []bool
	counts  Counters
	stop    func()
	// macKeys are the predistributed shared keys between each node and
	// its location server (Section 2.2).
	macKeys []crypt.MACKey
}

// New creates the service, registers every node's initial position and
// public key, and (if enabled) schedules periodic updates.
func New(net *node.Network, cfg Config) *Service {
	if cfg.NumServers <= 0 {
		cfg.NumServers = int(math.Ceil(math.Sqrt(float64(net.N()))))
		if cfg.NumServers < 1 {
			cfg.NumServers = 1
		}
	}
	s := &Service{net: net, cfg: cfg}
	s.entries = make([]Entry, net.N())
	s.alive = make([]bool, cfg.NumServers)
	for i := range s.alive {
		s.alive[i] = true
	}
	s.macKeys = make([]crypt.MACKey, net.N())
	keySrc := net.Rand().Split("locservice-mac")
	for i := range s.macKeys {
		s.macKeys[i] = crypt.NewSymKey(keySrc)
	}
	now := net.Eng.Now()
	for i, nd := range net.Nodes {
		nd.RegisteredPseudonym = nd.Pseudonym
		s.entries[i] = Entry{Pos: nd.Position(), Pub: nd.Pub,
			Pseudonym: nd.Pseudonym, UpdatedAt: now}
	}
	if cfg.UpdatesEnabled && cfg.UpdateInterval > 0 {
		s.stop = net.Eng.Ticker(cfg.UpdateInterval, cfg.UpdateInterval,
			func(sim.Time) { s.updateAll() })
	}
	return s
}

func (s *Service) updateAll() {
	now := s.net.Eng.Now()
	for i, nd := range s.net.Nodes {
		nd.RegisteredPseudonym = nd.Pseudonym
		s.entries[i].Pos = nd.Position()
		s.entries[i].Pseudonym = nd.Pseudonym
		s.entries[i].UpdatedAt = now
		s.counts.Updates++
	}
	// Full-mesh replication among alive servers.
	n := 0
	for _, a := range s.alive {
		if a {
			n++
		}
	}
	s.counts.Replications += uint64(n * (n - 1))
}

// StopUpdates cancels the periodic update ticker (e.g. to freeze positions
// mid-run).
func (s *Service) StopUpdates() {
	if s.stop != nil {
		s.stop()
		s.stop = nil
	}
}

// Lookup returns the registered entry for a node. ok is false when every
// server replica has failed. The query and encrypted response exchange with
// the node's own location server is abstracted to a counter.
func (s *Service) Lookup(id medium.NodeID) (Entry, bool) {
	s.counts.Lookups++
	if !s.anyAlive() {
		return Entry{}, false
	}
	return s.entries[id], true
}

func (s *Service) anyAlive() bool {
	for _, a := range s.alive {
		if a {
			return true
		}
	}
	return false
}

// FailServer marks one server replica as failed. Lookups keep succeeding
// while any replica lives.
func (s *Service) FailServer(i int) {
	if i >= 0 && i < len(s.alive) {
		s.alive[i] = false
	}
}

// RecoverServer brings a failed replica back.
func (s *Service) RecoverServer(i int) {
	if i >= 0 && i < len(s.alive) {
		s.alive[i] = true
	}
}

// NumServers returns N_L.
func (s *Service) NumServers() int { return s.cfg.NumServers }

// Counters returns a snapshot of service traffic.
func (s *Service) Counters() Counters { return s.counts }

// SharedKey returns the predistributed key between a node and its location
// server; nodes use it to sign lookup requests and open sealed responses.
func (s *Service) SharedKey(id medium.NodeID) crypt.MACKey { return s.macKeys[id] }

// SignedRequest is a location lookup as it travels to the server: the
// requester signs the target identity with its shared key (Section 2.2:
// "it will sign the request containing B's identity using its own
// identity").
type SignedRequest struct {
	Requester medium.NodeID
	Target    medium.NodeID
	Tag       [20]byte
}

// NewSignedRequest builds and signs a lookup request.
func (s *Service) NewSignedRequest(requester, target medium.NodeID) SignedRequest {
	return SignedRequest{
		Requester: requester,
		Target:    target,
		Tag:       crypt.MAC(s.macKeys[requester], requestBytes(requester, target)),
	}
}

func requestBytes(requester, target medium.NodeID) []byte {
	return []byte{
		byte(requester >> 8), byte(requester),
		byte(target >> 8), byte(target),
	}
}

// SecureLookup is the full Section 2.2 handshake: the server verifies the
// request's signature and returns the target's position and public key
// sealed under the requester's shared key; the requester opens it. It
// returns ok=false for a bad signature or when every replica has failed.
// (Protocols use the plain Lookup oracle on the hot path; SecureLookup
// exists to exercise and test the handshake end to end.)
func (s *Service) SecureLookup(req SignedRequest) (Entry, bool) {
	s.counts.Lookups++
	if !s.anyAlive() {
		return Entry{}, false
	}
	if int(req.Requester) < 0 || int(req.Requester) >= len(s.macKeys) ||
		int(req.Target) < 0 || int(req.Target) >= len(s.entries) {
		return Entry{}, false
	}
	// Server side: verify the signature.
	if !crypt.VerifyMAC(s.macKeys[req.Requester],
		requestBytes(req.Requester, req.Target), req.Tag) {
		return Entry{}, false
	}
	// Server seals the response under the requester's shared key; the
	// requester opens it. The seal/open round trip is functionally
	// performed so tampering is detectable in tests.
	entry := s.entries[req.Target]
	sealed := crypt.SymSeal(s.macKeys[req.Requester], encodeEntryPos(entry),
		s.net.Rand())
	opened, err := crypt.SymOpen(s.macKeys[req.Requester], sealed)
	if err != nil {
		return Entry{}, false
	}
	pos, err := decodeEntryPos(opened)
	if err != nil {
		return Entry{}, false
	}
	entry.Pos = pos
	return entry, true
}

func encodeEntryPos(e Entry) []byte {
	buf := make([]byte, 16)
	binary.BigEndian.PutUint64(buf[0:], math.Float64bits(e.Pos.X))
	binary.BigEndian.PutUint64(buf[8:], math.Float64bits(e.Pos.Y))
	return buf
}

func decodeEntryPos(buf []byte) (geo.Point, error) {
	if len(buf) != 16 {
		return geo.Point{}, errInvalidResponse
	}
	return geo.Point{
		X: math.Float64frombits(binary.BigEndian.Uint64(buf[0:])),
		Y: math.Float64frombits(binary.BigEndian.Uint64(buf[8:])),
	}, nil
}

var errInvalidResponse = errors.New("locservice: malformed sealed response")

// OverheadRatio evaluates Section 4.3's expression
//
//	(N_L*(N_L-1)*f + N*f) / (N*F)
//
// for this service's N_L and update frequency f against a given
// communication message frequency F (messages per node per second). The
// service is "cheap" when the ratio is much less than 1.
func (s *Service) OverheadRatio(commFreq float64) float64 {
	if commFreq <= 0 || s.cfg.UpdateInterval <= 0 {
		return math.Inf(1)
	}
	f := 1.0 / s.cfg.UpdateInterval
	if !s.cfg.UpdatesEnabled {
		f = 0
	}
	nl := float64(s.cfg.NumServers)
	n := float64(s.net.N())
	return (nl*(nl-1)*f + n*f) / (n * commFreq)
}

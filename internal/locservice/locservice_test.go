package locservice

import (
	"math"
	"testing"

	"alertmanet/internal/crypt"
	"alertmanet/internal/geo"
	"alertmanet/internal/medium"
	"alertmanet/internal/mobility"
	"alertmanet/internal/node"
	"alertmanet/internal/rng"
	"alertmanet/internal/sim"
)

var field = geo.Rect{Min: geo.Point{X: 0, Y: 0}, Max: geo.Point{X: 1000, Y: 1000}}

func newNet(n int, speed float64, seed int64) (*sim.Engine, *node.Network) {
	eng := sim.NewEngine()
	src := rng.New(seed)
	mob := mobility.NewRandomWaypoint(field, n, mobility.Fixed(speed), src)
	med := medium.MustNew(eng, mob, medium.DefaultParams(), src)
	return eng, node.NewNetwork(eng, med, crypt.NewFastSuite(src),
		crypt.ZeroCostModel(), node.Config{}, src)
}

func TestInitialRegistration(t *testing.T) {
	_, net := newNet(20, 2, 1)
	s := New(net, DefaultConfig())
	for i, nd := range net.Nodes {
		e, ok := s.Lookup(medium.NodeID(i))
		if !ok {
			t.Fatal("lookup failed")
		}
		if e.Pos != nd.Position() {
			t.Fatalf("node %d initial position wrong", i)
		}
		if e.Pub.Owner() != i {
			t.Fatalf("node %d pub key wrong", i)
		}
	}
}

func TestDefaultServerCountIsSqrtN(t *testing.T) {
	_, net := newNet(100, 2, 2)
	s := New(net, DefaultConfig())
	if s.NumServers() != 10 {
		t.Fatalf("N_L = %d, want 10 for N=100", s.NumServers())
	}
	_, net2 := newNet(200, 2, 3)
	s2 := New(net2, DefaultConfig())
	if s2.NumServers() != 15 { // ceil(sqrt(200)) = 15
		t.Fatalf("N_L = %d, want 15 for N=200", s2.NumServers())
	}
}

func TestUpdatesRefreshPositions(t *testing.T) {
	eng, net := newNet(10, 5, 4)
	s := New(net, Config{UpdateInterval: 2, UpdatesEnabled: true})
	eng.RunUntil(10)
	for i, nd := range net.Nodes {
		e, _ := s.Lookup(medium.NodeID(i))
		// Last update tick at t=10; entry must match position at that time.
		if e.Pos.Dist(nd.PositionAt(10)) > 1e-9 {
			t.Fatalf("node %d stale after updates: %v vs %v", i, e.Pos, nd.PositionAt(10))
		}
		if e.UpdatedAt != 10 {
			t.Fatalf("UpdatedAt = %v", e.UpdatedAt)
		}
	}
}

func TestUpdatesDisabledFreezesPositions(t *testing.T) {
	eng, net := newNet(10, 5, 5)
	s := New(net, Config{UpdateInterval: 2, UpdatesEnabled: false})
	initial := make([]geo.Point, 10)
	for i := range initial {
		e, _ := s.Lookup(medium.NodeID(i))
		initial[i] = e.Pos
	}
	eng.RunUntil(50)
	moved := 0
	for i := range initial {
		e, _ := s.Lookup(medium.NodeID(i))
		if e.Pos != initial[i] {
			t.Fatalf("node %d entry changed despite updates disabled", i)
		}
		if net.Nodes[i].Position().Dist(initial[i]) > 10 {
			moved++
		}
	}
	if moved == 0 {
		t.Fatal("test vacuous: no node moved away from its frozen entry")
	}
}

func TestStopUpdates(t *testing.T) {
	eng, net := newNet(5, 5, 6)
	s := New(net, Config{UpdateInterval: 1, UpdatesEnabled: true})
	eng.RunUntil(3)
	s.StopUpdates()
	e3, _ := s.Lookup(0)
	eng.RunUntil(20)
	e20, _ := s.Lookup(0)
	if e3.Pos != e20.Pos {
		t.Fatal("entries changed after StopUpdates")
	}
	s.StopUpdates() // second call is a no-op
}

func TestServerFailure(t *testing.T) {
	_, net := newNet(16, 2, 7)
	s := New(net, DefaultConfig()) // 4 servers
	if s.NumServers() != 4 {
		t.Fatalf("expected 4 servers, got %d", s.NumServers())
	}
	for i := 0; i < 3; i++ {
		s.FailServer(i)
	}
	if _, ok := s.Lookup(0); !ok {
		t.Fatal("lookup should succeed with one replica alive")
	}
	s.FailServer(3)
	if _, ok := s.Lookup(0); ok {
		t.Fatal("lookup should fail with all replicas dead")
	}
	s.RecoverServer(2)
	if _, ok := s.Lookup(0); !ok {
		t.Fatal("lookup should succeed after recovery")
	}
	// Out-of-range indices are ignored.
	s.FailServer(99)
	s.RecoverServer(-1)
}

func TestCountersMatchSection43Formulas(t *testing.T) {
	eng, net := newNet(100, 2, 8)
	s := New(net, Config{NumServers: 10, UpdateInterval: 2, UpdatesEnabled: true})
	const T = 20.0
	eng.RunUntil(T)
	c := s.Counters()
	f := 1 / 2.0
	wantUpdates := uint64(100 * f * T) // N*f*T
	if c.Updates != wantUpdates {
		t.Fatalf("Updates = %d, want %d", c.Updates, wantUpdates)
	}
	wantRepl := uint64(10 * 9 * f * T) // N_L*(N_L-1)*f*T
	if c.Replications != wantRepl {
		t.Fatalf("Replications = %d, want %d", c.Replications, wantRepl)
	}
}

func TestOverheadRatioSmall(t *testing.T) {
	_, net := newNet(200, 2, 9)
	s := New(net, DefaultConfig())
	// Section 4.3 requires f << F. With f = 0.5 updates/s and a
	// multimedia-style F = 10 msgs/node/s the overhead must be << 1.
	ratio := s.OverheadRatio(10)
	if ratio >= 0.2 {
		t.Fatalf("overhead ratio %v not << 1", ratio)
	}
	// And it shrinks as communication frequency grows.
	if s.OverheadRatio(100) >= ratio {
		t.Fatal("ratio should decrease with higher F")
	}
}

func TestOverheadRatioEdgeCases(t *testing.T) {
	_, net := newNet(10, 2, 10)
	s := New(net, DefaultConfig())
	if !math.IsInf(s.OverheadRatio(0), 1) {
		t.Fatal("F=0 should be +Inf")
	}
	s2 := New(net, Config{NumServers: 3, UpdateInterval: 2, UpdatesEnabled: false})
	if s2.OverheadRatio(1) != 0 {
		t.Fatal("updates disabled should have zero overhead")
	}
}

func TestLookupCountsQueries(t *testing.T) {
	_, net := newNet(5, 2, 11)
	s := New(net, DefaultConfig())
	before := s.Counters().Lookups
	s.Lookup(0)
	s.Lookup(1)
	if s.Counters().Lookups != before+2 {
		t.Fatal("lookup counter wrong")
	}
}

func TestSecureLookupHandshake(t *testing.T) {
	_, net := newNet(20, 2, 20)
	s := New(net, DefaultConfig())
	req := s.NewSignedRequest(3, 7)
	e, ok := s.SecureLookup(req)
	if !ok {
		t.Fatal("valid signed lookup rejected")
	}
	plain, _ := s.Lookup(7)
	if e.Pos != plain.Pos || e.Pub.Owner() != 7 {
		t.Fatal("secure lookup disagrees with oracle")
	}
}

func TestSecureLookupRejectsForgery(t *testing.T) {
	_, net := newNet(20, 2, 21)
	s := New(net, DefaultConfig())
	// A request signed with the wrong node's key must fail: node 4
	// cannot impersonate node 3.
	req := s.NewSignedRequest(4, 7)
	req.Requester = 3 // forged identity, tag still node 4's
	if _, ok := s.SecureLookup(req); ok {
		t.Fatal("forged requester accepted")
	}
	// Tampered target rejected (signature covers it).
	req2 := s.NewSignedRequest(3, 7)
	req2.Target = 9
	if _, ok := s.SecureLookup(req2); ok {
		t.Fatal("tampered target accepted")
	}
	// Tampered tag rejected.
	req3 := s.NewSignedRequest(3, 7)
	req3.Tag[0] ^= 1
	if _, ok := s.SecureLookup(req3); ok {
		t.Fatal("tampered tag accepted")
	}
}

func TestSecureLookupBounds(t *testing.T) {
	_, net := newNet(10, 2, 22)
	s := New(net, DefaultConfig())
	bad := SignedRequest{Requester: 3, Target: 99}
	if _, ok := s.SecureLookup(bad); ok {
		t.Fatal("out-of-range target accepted")
	}
	for i := 0; i < s.NumServers(); i++ {
		s.FailServer(i)
	}
	if _, ok := s.SecureLookup(s.NewSignedRequest(1, 2)); ok {
		t.Fatal("lookup with all servers dead accepted")
	}
}

func TestSharedKeysDistinct(t *testing.T) {
	_, net := newNet(30, 2, 23)
	s := New(net, DefaultConfig())
	seen := map[crypt.MACKey]bool{}
	for i := 0; i < 30; i++ {
		k := s.SharedKey(medium.NodeID(i))
		if seen[k] {
			t.Fatal("duplicate shared key")
		}
		seen[k] = true
	}
}

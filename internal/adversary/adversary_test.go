package adversary

import (
	"math"
	"testing"

	"alertmanet/internal/geo"
	"alertmanet/internal/medium"
	"alertmanet/internal/rng"
	"alertmanet/internal/sim"
)

var field = geo.Rect{Min: geo.Point{X: 0, Y: 0}, Max: geo.Point{X: 1000, Y: 1000}}

type pinned struct{ pos []geo.Point }

func (p *pinned) Position(id int, _ float64) geo.Point { return p.pos[id] }
func (p *pinned) N() int                               { return len(p.pos) }
func (p *pinned) Field() geo.Rect                      { return field }

func mkMedium(pos ...geo.Point) (*sim.Engine, *medium.Medium) {
	eng := sim.NewEngine()
	med := medium.MustNew(eng, &pinned{pos: pos}, medium.DefaultParams(), rng.New(1))
	return eng, med
}

func attach(med *medium.Medium, n int) {
	for i := 0; i < n; i++ {
		med.Attach(medium.NodeID(i), func(medium.NodeID, any, int) {})
	}
}

func TestObserverVicinityFilter(t *testing.T) {
	eng, med := mkMedium(
		geo.Point{X: 100, Y: 100}, geo.Point{X: 150, Y: 100}, // near the observer
		geo.Point{X: 900, Y: 900}, geo.Point{X: 950, Y: 900}, // far away
	)
	attach(med, 4)
	obs := NewObserver(med, geo.Point{X: 100, Y: 100}, 250)
	med.Unicast(0, 1, "near", 64)
	med.Unicast(2, 3, "far", 64)
	eng.Run()
	if len(obs.Transmissions) != 1 {
		t.Fatalf("observer saw %d transmissions, want 1", len(obs.Transmissions))
	}
	if obs.Transmissions[0].From != 0 {
		t.Fatal("observer saw the wrong transmission")
	}
	if len(obs.Receptions) != 1 || obs.Receptions[0].To != 1 {
		t.Fatalf("receptions = %v", obs.Receptions)
	}
}

func TestGlobalObserverSeesAll(t *testing.T) {
	eng, med := mkMedium(
		geo.Point{X: 100, Y: 100}, geo.Point{X: 150, Y: 100},
		geo.Point{X: 900, Y: 900}, geo.Point{X: 950, Y: 900},
	)
	attach(med, 4)
	obs := NewGlobalObserver(med)
	med.Unicast(0, 1, "a", 64)
	med.Unicast(2, 3, "b", 64)
	eng.Run()
	if len(obs.Transmissions) != 2 || len(obs.Receptions) != 2 {
		t.Fatalf("global observer missed traffic: %d tx, %d rx",
			len(obs.Transmissions), len(obs.Receptions))
	}
}

func TestDistinctSendersWindow(t *testing.T) {
	eng, med := mkMedium(
		geo.Point{X: 100, Y: 100}, geo.Point{X: 120, Y: 100},
		geo.Point{X: 140, Y: 100}, geo.Point{X: 160, Y: 100},
	)
	attach(med, 4)
	obs := NewObserver(med, geo.Point{X: 120, Y: 100}, 250)
	// Three different senders inside the window, one outside it.
	eng.At(1.0, func() { med.Broadcast(0, "c0", 16) })
	eng.At(1.002, func() { med.Broadcast(1, "c1", 16) })
	eng.At(1.004, func() { med.Broadcast(2, "real", 512) })
	eng.At(5.0, func() { med.Broadcast(3, "late", 16) })
	eng.Run()
	if got := obs.DistinctSenders(0.9, 1.1); got != 3 {
		t.Fatalf("DistinctSenders = %d, want 3", got)
	}
	if got := obs.DistinctSenders(0, 10); got != 4 {
		t.Fatalf("full-window senders = %d, want 4", got)
	}
}

func TestIntersectionTrackerExposesFixedRecipient(t *testing.T) {
	// Nodes 0..4 in the zone; node 9 is the broadcaster. Waves contain
	// varying subsets but node 2 is in every wave -> exposed.
	pos := []geo.Point{
		{X: 100, Y: 100}, {X: 120, Y: 100}, {X: 140, Y: 100},
		{X: 160, Y: 100}, {X: 180, Y: 100},
	}
	pos = append(pos, geo.Point{X: 500, Y: 500}) // outside zone
	eng, med := mkMedium(append(pos, geo.Point{X: 130, Y: 120})...)
	attach(med, 7)
	zone := geo.Rect{Min: geo.Point{X: 0, Y: 0}, Max: geo.Point{X: 250, Y: 250}}
	tr := NewIntersectionTracker(med, zone, 0.5)
	// Simulate three delivery waves by unicasting to subsets.
	wave := func(at float64, ids ...medium.NodeID) {
		eng.At(at, func() {
			for _, id := range ids {
				med.Unicast(6, id, "pkt", 512)
			}
		})
	}
	wave(1, 0, 1, 2)
	wave(3, 2, 3)
	wave(5, 2, 4, 0)
	eng.Run()
	if tr.Waves() != 3 {
		t.Fatalf("waves = %d, want 3", tr.Waves())
	}
	c := tr.Candidates()
	if len(c) != 1 || c[0] != 2 {
		t.Fatalf("candidates = %v, want [2]", c)
	}
	if !tr.Exposed(2) || tr.Exposed(1) {
		t.Fatal("Exposed wrong")
	}
}

func TestIntersectionTrackerDefeatedByMixing(t *testing.T) {
	pos := []geo.Point{
		{X: 100, Y: 100}, {X: 120, Y: 100}, {X: 140, Y: 100},
		{X: 160, Y: 100}, {X: 130, Y: 120},
	}
	eng, med := mkMedium(pos...)
	attach(med, 5)
	zone := geo.Rect{Min: geo.Point{X: 0, Y: 0}, Max: geo.Point{X: 250, Y: 250}}
	tr := NewIntersectionTracker(med, zone, 0.5)
	// The destination (2) is NOT in wave 2's recipient set — two-step
	// delivery hid it. Intersection loses it.
	wave := func(at float64, ids ...medium.NodeID) {
		eng.At(at, func() {
			for _, id := range ids {
				med.Unicast(4, id, "pkt", 512)
			}
		})
	}
	wave(1, 0, 1, 2)
	wave(3, 0, 3)
	eng.Run()
	if tr.Exposed(2) {
		t.Fatal("destination exposed despite missing from a wave")
	}
	c := tr.Candidates()
	if len(c) != 1 || c[0] != 0 {
		// node 0 happens to be in both waves; fine — the point is 2
		// is not identified.
		t.Fatalf("candidates = %v", c)
	}
}

func TestIntersectionTrackerIgnoresOutsideZone(t *testing.T) {
	eng, med := mkMedium(
		geo.Point{X: 100, Y: 100}, geo.Point{X: 900, Y: 900},
		geo.Point{X: 120, Y: 100},
	)
	attach(med, 3)
	zone := geo.Rect{Min: geo.Point{X: 0, Y: 0}, Max: geo.Point{X: 250, Y: 250}}
	tr := NewIntersectionTracker(med, zone, 0.5)
	med.Unicast(2, 0, "in", 64)
	med.Unicast(2, 1, "out", 64) // receiver outside the zone (also out of range)
	eng.Run()
	if tr.Waves() != 1 {
		t.Fatalf("waves = %d", tr.Waves())
	}
	c := tr.Candidates()
	if len(c) != 1 || c[0] != 0 {
		t.Fatalf("candidates = %v", c)
	}
}

func TestIntersectionTrackerEmpty(t *testing.T) {
	_, med := mkMedium(geo.Point{X: 1, Y: 1})
	tr := NewIntersectionTracker(med, field, 0.5)
	if tr.Candidates() != nil || tr.Waves() != 0 || tr.Exposed(0) {
		t.Fatal("empty tracker should know nothing")
	}
}

func TestTimingCorrelatorFixedDelay(t *testing.T) {
	var c TimingCorrelator
	for i := 0; i < 20; i++ {
		s := float64(i) * 2
		c.AddSend(s)
		c.AddRecv(s + 5.0) // the paper's fixed 5-second signature
	}
	if score := c.Score(0.1); score < 0.95 {
		t.Fatalf("fixed-delay score = %v, want ~1", score)
	}
}

func TestTimingCorrelatorRandomDelay(t *testing.T) {
	src := rng.New(7)
	var c TimingCorrelator
	for i := 0; i < 200; i++ {
		s := float64(i) * 2
		c.AddSend(s)
		c.AddRecv(s + src.Uniform(0.05, 1.95))
	}
	fixed := func() float64 {
		var f TimingCorrelator
		for i := 0; i < 200; i++ {
			s := float64(i) * 2
			f.AddSend(s)
			f.AddRecv(s + 1.0)
		}
		return f.Score(0.02)
	}()
	random := c.Score(0.02)
	if random >= fixed {
		t.Fatalf("random delays (%v) should score below fixed (%v)", random, fixed)
	}
	if random > 0.5 {
		t.Fatalf("random-delay score %v suspiciously high", random)
	}
}

func TestTimingCorrelatorEdgeCases(t *testing.T) {
	var c TimingCorrelator
	if c.Score(0.1) != 0 {
		t.Fatal("empty correlator should score 0")
	}
	c.AddSend(1)
	if c.Score(0.1) != 0 {
		t.Fatal("no receptions should score 0")
	}
	c.AddRecv(0.5) // before the send: no follow-up arrival
	if c.Score(0.1) != 0 {
		t.Fatal("arrival before departure should not match")
	}
	c.AddRecv(2)
	if c.Score(0) != 0 {
		t.Fatal("zero tolerance should score 0")
	}
}

func TestRouteTrackerJaccard(t *testing.T) {
	var r RouteTracker
	r.AddRoute([]medium.NodeID{1, 2, 3})
	r.AddRoute([]medium.NodeID{1, 2, 3})
	if !closeTo(r.MeanJaccard(), 1, 1e-9) {
		t.Fatalf("identical routes Jaccard = %v", r.MeanJaccard())
	}
	var r2 RouteTracker
	r2.AddRoute([]medium.NodeID{1, 2, 3})
	r2.AddRoute([]medium.NodeID{4, 5, 6})
	if r2.MeanJaccard() != 0 {
		t.Fatalf("disjoint routes Jaccard = %v", r2.MeanJaccard())
	}
	var r3 RouteTracker
	r3.AddRoute([]medium.NodeID{1, 2})
	r3.AddRoute([]medium.NodeID{2, 3})
	if !closeTo(r3.MeanJaccard(), 1.0/3, 1e-9) {
		t.Fatalf("partial overlap Jaccard = %v, want 1/3", r3.MeanJaccard())
	}
	if r3.Routes() != 2 {
		t.Fatal("Routes wrong")
	}
}

func TestRouteTrackerSingleRoute(t *testing.T) {
	var r RouteTracker
	r.AddRoute([]medium.NodeID{1})
	if r.MeanJaccard() != 0 {
		t.Fatal("single route has no pairwise similarity")
	}
}

func TestInterceptionProbability(t *testing.T) {
	var r RouteTracker
	r.AddRoute([]medium.NodeID{1, 2, 3})
	r.AddRoute([]medium.NodeID{4, 5, 6})
	r.AddRoute([]medium.NodeID{2, 7})
	if p := r.InterceptionProbability([]medium.NodeID{2}); !closeTo(p, 2.0/3, 1e-9) {
		t.Fatalf("interception = %v, want 2/3", p)
	}
	if p := r.InterceptionProbability([]medium.NodeID{9}); p != 0 {
		t.Fatalf("interception = %v, want 0", p)
	}
	if p := r.InterceptionProbability(nil); p != 0 {
		t.Fatal("no compromised nodes should intercept nothing")
	}
	var empty RouteTracker
	if empty.InterceptionProbability([]medium.NodeID{1}) != 0 {
		t.Fatal("empty tracker should report 0")
	}
}

func closeTo(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

func TestRouteEntropy(t *testing.T) {
	// Same relays every time: entropy = log2(#relays) of one route.
	var fixed RouteTracker
	for i := 0; i < 10; i++ {
		fixed.AddRoute([]medium.NodeID{1, 2, 3})
	}
	if e := fixed.RouteEntropy(); !closeTo(e, math.Log2(3), 1e-9) {
		t.Fatalf("fixed-route entropy = %v, want log2(3)", e)
	}
	// Fresh relays every time: entropy grows with the pool.
	var random RouteTracker
	for i := 0; i < 10; i++ {
		random.AddRoute([]medium.NodeID{
			medium.NodeID(i * 3), medium.NodeID(i*3 + 1), medium.NodeID(i*3 + 2),
		})
	}
	if random.RouteEntropy() <= fixed.RouteEntropy() {
		t.Fatal("diverse routes should have higher entropy")
	}
	var empty RouteTracker
	if empty.RouteEntropy() != 0 {
		t.Fatal("empty tracker entropy should be 0")
	}
}

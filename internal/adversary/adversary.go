// Package adversary implements the attacker models of Sections 2.1 and 3:
// passive eavesdroppers that record transmissions and receptions in their
// vicinity, an intersection-attack tracker that intersects destination-zone
// recipient sets across packets (Section 3.3), a timing-attack correlator
// that matches departure and arrival times (Section 3.2), a route tracker
// that measures how predictable a flow's relay sets are (Section 3.1), and
// a source-anonymity meter for the notify-and-go window (Section 2.6).
//
// Attackers observe only what radios leak — frames, times, positions of
// transmitters and receivers — never protocol-internal state.
package adversary

import (
	"math"
	"sort"

	"alertmanet/internal/geo"
	"alertmanet/internal/medium"
)

// Observer is a passive eavesdropper covering a circular area (or, with
// Everywhere, the whole field — the strongest passive adversary).
type Observer struct {
	Center     geo.Point
	Radius     float64
	Everywhere bool

	Transmissions []medium.Transmission
	Receptions    []medium.Reception
}

// NewObserver creates an eavesdropper and taps the channel.
func NewObserver(med *medium.Medium, center geo.Point, radius float64) *Observer {
	o := &Observer{Center: center, Radius: radius}
	med.TapSend(func(tx medium.Transmission) {
		if o.covers(tx.FromPos) {
			o.Transmissions = append(o.Transmissions, tx)
		}
	})
	med.TapRecv(func(rx medium.Reception) {
		if o.covers(rx.ToPos) {
			o.Receptions = append(o.Receptions, rx)
		}
	})
	return o
}

// NewGlobalObserver creates an eavesdropper that sees the entire field.
func NewGlobalObserver(med *medium.Medium) *Observer {
	o := &Observer{Everywhere: true}
	med.TapSend(func(tx medium.Transmission) {
		o.Transmissions = append(o.Transmissions, tx)
	})
	med.TapRecv(func(rx medium.Reception) {
		o.Receptions = append(o.Receptions, rx)
	})
	return o
}

func (o *Observer) covers(p geo.Point) bool {
	return o.Everywhere || o.Center.Dist(p) <= o.Radius
}

// DistinctSenders returns how many different nodes the observer saw
// transmitting in the time window [from, to] — the eta-anonymity set of a
// notify-and-go burst.
func (o *Observer) DistinctSenders(from, to float64) int {
	seen := map[medium.NodeID]struct{}{}
	for _, tx := range o.Transmissions {
		if tx.At >= from && tx.At <= to {
			seen[tx.From] = struct{}{}
		}
	}
	return len(seen)
}

// IntersectionTracker mounts the intersection attack of Section 3.3: it
// watches receptions inside a suspected destination zone, groups them into
// per-packet delivery waves (receptions separated by more than WaveGap
// start a new wave), and intersects the recipient sets. If the surviving
// candidate set shrinks to one node, the destination is exposed.
type IntersectionTracker struct {
	Zone    geo.Rect
	WaveGap float64

	waves    []map[medium.NodeID]struct{}
	lastSeen float64
	started  bool
}

// NewIntersectionTracker taps the channel and begins tracking.
func NewIntersectionTracker(med *medium.Medium, zone geo.Rect, waveGap float64) *IntersectionTracker {
	t := &IntersectionTracker{Zone: zone, WaveGap: waveGap}
	med.TapRecv(func(rx medium.Reception) { t.observe(rx) })
	return t
}

func (t *IntersectionTracker) observe(rx medium.Reception) {
	if !t.Zone.Contains(rx.ToPos) {
		return
	}
	if !t.started || rx.At-t.lastSeen > t.WaveGap {
		t.waves = append(t.waves, map[medium.NodeID]struct{}{})
		t.started = true
	}
	t.lastSeen = rx.At
	t.waves[len(t.waves)-1][rx.To] = struct{}{}
}

// Waves returns how many delivery waves the attacker distinguished.
func (t *IntersectionTracker) Waves() int { return len(t.waves) }

// Candidates returns the intersection of all observed recipient sets — the
// nodes the attacker still considers possible destinations. An empty
// tracker returns nil (no information).
func (t *IntersectionTracker) Candidates() []medium.NodeID {
	if len(t.waves) == 0 {
		return nil
	}
	var out []medium.NodeID
	for id := range t.waves[0] {
		inAll := true
		for _, w := range t.waves[1:] {
			if _, ok := w[id]; !ok {
				inAll = false
				break
			}
		}
		if inAll {
			out = append(out, id)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// Exposed reports whether the attack pinned the destination down to exactly
// the given node.
func (t *IntersectionTracker) Exposed(dst medium.NodeID) bool {
	c := t.Candidates()
	return len(c) == 1 && c[0] == dst
}

// TimingCorrelator mounts the timing attack of Section 3.2: given the
// departure times observed near a suspected source and the arrival times
// observed near a suspected destination, it looks for a constant
// send-to-receive delay. A high score means the pair's interaction shows a
// fixed time signature (the paper's 5-second example); randomized routes
// and cover traffic destroy the signature.
type TimingCorrelator struct {
	sends []float64
	recvs []float64
}

// AddSend records a departure observed near the suspected source.
func (c *TimingCorrelator) AddSend(t float64) { c.sends = append(c.sends, t) }

// AddRecv records an arrival observed near the suspected destination.
func (c *TimingCorrelator) AddRecv(t float64) { c.recvs = append(c.recvs, t) }

// Score returns the fraction of sends supported by the most popular
// send-to-arrival delay bin of width tolerance — 1.0 means every departure
// had an arrival at one fixed delay (perfectly correlatable); values near 0
// mean no timing signature. All pairs within a horizon of 1000*tolerance
// are histogrammed, so a constant true delay accumulates one hit per
// packet while uncorrelated traffic spreads thinly over many bins.
func (c *TimingCorrelator) Score(tolerance float64) float64 {
	if len(c.sends) == 0 || len(c.recvs) == 0 || tolerance <= 0 {
		return 0
	}
	recvs := append([]float64(nil), c.recvs...)
	sort.Float64s(recvs)
	horizon := 1000 * tolerance
	bins := map[int64]int{}
	best := 0
	for _, s := range c.sends {
		// Each departure supports a delay bin at most once, no matter
		// how many arrivals (duplicates, re-broadcasts) land in it —
		// the attacker asks "did THIS packet show delay d", not "how
		// many frames did".
		seen := map[int64]struct{}{}
		i := sort.SearchFloat64s(recvs, s)
		for ; i < len(recvs) && recvs[i]-s <= horizon; i++ {
			d := recvs[i] - s
			b := int64(math.Floor(d / tolerance))
			// Credit the bin and its neighbors to avoid edge effects.
			for _, bb := range []int64{b - 1, b, b + 1} {
				if _, dup := seen[bb]; dup {
					continue
				}
				seen[bb] = struct{}{}
				bins[bb]++
				if bins[bb] > best {
					best = bins[bb]
				}
			}
		}
	}
	score := float64(best) / float64(len(c.sends))
	if score > 1 {
		score = 1
	}
	return score
}

// RouteTracker measures route predictability (Section 3.1): feed it the
// relay sets of successive packets of one flow; MeanJaccard near 1 means
// the flow always uses the same nodes (traceable, interceptable), near 0
// means every packet takes a fresh route.
type RouteTracker struct {
	routes []map[medium.NodeID]struct{}
}

// AddRoute records one packet's relay set.
func (r *RouteTracker) AddRoute(path []medium.NodeID) {
	set := make(map[medium.NodeID]struct{}, len(path))
	for _, id := range path {
		set[id] = struct{}{}
	}
	r.routes = append(r.routes, set)
}

// Routes returns how many packets have been recorded.
func (r *RouteTracker) Routes() int { return len(r.routes) }

// MeanJaccard returns the average Jaccard similarity between consecutive
// packets' relay sets.
func (r *RouteTracker) MeanJaccard() float64 {
	if len(r.routes) < 2 {
		return 0
	}
	total := 0.0
	for i := 1; i < len(r.routes); i++ {
		total += jaccard(r.routes[i-1], r.routes[i])
	}
	return total / float64(len(r.routes)-1)
}

// InterceptionProbability returns how often a fixed set of compromised
// nodes would capture a packet: the fraction of recorded routes containing
// at least one compromised node. Against GPSR one well-placed node captures
// everything; against ALERT the dynamic routes dodge it (Section 3.1).
func (r *RouteTracker) InterceptionProbability(compromised []medium.NodeID) float64 {
	if len(r.routes) == 0 {
		return 0
	}
	hit := 0
	for _, route := range r.routes {
		for _, c := range compromised {
			if _, ok := route[c]; ok {
				hit++
				break
			}
		}
	}
	return float64(hit) / float64(len(r.routes))
}

func jaccard(a, b map[medium.NodeID]struct{}) float64 {
	if len(a) == 0 && len(b) == 0 {
		return 1
	}
	inter := 0
	for id := range a {
		if _, ok := b[id]; ok {
			inter++
		}
	}
	union := len(a) + len(b) - inter
	if union == 0 {
		return 1
	}
	return float64(inter) / float64(union)
}

// RouteEntropy returns the Shannon entropy (bits) of the relay-usage
// distribution across the recorded routes: how unpredictable the protocol's
// relay choice is to an observer planning an interception. A protocol that
// reuses the same few relays concentrates probability mass (low entropy);
// ALERT's per-packet random forwarders flatten it (high entropy).
func (r *RouteTracker) RouteEntropy() float64 {
	counts := map[medium.NodeID]int{}
	total := 0
	for _, route := range r.routes {
		for id := range route {
			counts[id]++
			total++
		}
	}
	if total == 0 {
		return 0
	}
	h := 0.0
	for _, c := range counts {
		p := float64(c) / float64(total)
		h -= p * math.Log2(p)
	}
	return h
}

// EstimateSource triangulates where a flow started: the origin of the
// FIRST transmission the observer sees in the send window. Without cover
// traffic the first transmitter near the source IS the source, so the
// estimate lands on it ("the location of a message's sender may be revealed
// by merely exposing the transmission direction", Section 2.1); with
// notify-and-go any of the eta covering neighbors is equally likely to fire
// first, so the estimate lands on a random neighborhood position.
func (o *Observer) EstimateSource(from, to float64) (geo.Point, bool) {
	best := -1
	for i, tx := range o.Transmissions {
		if tx.At < from || tx.At > to {
			continue
		}
		if best < 0 || tx.At < o.Transmissions[best].At {
			best = i
		}
	}
	if best < 0 {
		return geo.Point{}, false
	}
	return o.Transmissions[best].FromPos, true
}

package gpsr

import (
	"testing"
	"testing/quick"

	"alertmanet/internal/crypt"
	"alertmanet/internal/geo"
	"alertmanet/internal/medium"
	"alertmanet/internal/mobility"
	"alertmanet/internal/node"
	"alertmanet/internal/rng"
	"alertmanet/internal/sim"
)

var field = geo.Rect{Min: geo.Point{X: 0, Y: 0}, Max: geo.Point{X: 1000, Y: 1000}}

// fixedModel pins nodes for deterministic topologies.
type fixedModel struct{ pos []geo.Point }

func (f *fixedModel) Position(id int, _ float64) geo.Point { return f.pos[id] }
func (f *fixedModel) N() int                               { return len(f.pos) }
func (f *fixedModel) Field() geo.Rect                      { return field }

func netFromModel(mob mobility.Model, seed int64) (*sim.Engine, *node.Network, *Router) {
	eng := sim.NewEngine()
	src := rng.New(seed)
	med := medium.MustNew(eng, mob, medium.DefaultParams(), src)
	net := node.NewNetwork(eng, med, crypt.NewFastSuite(src), crypt.ZeroCostModel(),
		node.Config{}, src)
	r := New(net)
	r.AttachAll()
	return eng, net, r
}

func lineTopology(n int, spacing float64) *fixedModel {
	pos := make([]geo.Point, n)
	for i := range pos {
		pos[i] = geo.Point{X: float64(i) * spacing, Y: 500}
	}
	return &fixedModel{pos: pos}
}

func TestGreedyChainDelivery(t *testing.T) {
	// 5 nodes, 200 m apart (range 250): must hop the chain 0->1->2->3->4.
	eng, _, r := netFromModel(lineTopology(5, 200), 1)
	var out Outcome
	var at medium.NodeID
	var hops int
	pkt := &Packet{
		Dest:      geo.Point{X: 800, Y: 500},
		DeliverTo: 4,
		Size:      512,
		HopBudget: 10,
		OnOutcome: func(a medium.NodeID, p *Packet, o Outcome) {
			at, out, hops = a, o, p.Hops
		},
	}
	r.Send(0, pkt)
	eng.Run()
	if out != Delivered || at != 4 {
		t.Fatalf("outcome=%v at=%v", out, at)
	}
	if hops != 4 {
		t.Fatalf("hops = %d, want 4", hops)
	}
	if len(pkt.Path) != 5 || pkt.Path[0] != 0 || pkt.Path[4] != 4 {
		t.Fatalf("path = %v", pkt.Path)
	}
	c := r.Counters()
	if c.Delivered != 1 || c.TotalHops != 4 {
		t.Fatalf("counters = %+v", c)
	}
}

func TestDeliverToSelf(t *testing.T) {
	eng, _, r := netFromModel(lineTopology(3, 200), 2)
	var out Outcome
	pkt := &Packet{
		Dest:      geo.Point{X: 0, Y: 500},
		DeliverTo: 0,
		HopBudget: 10,
		OnOutcome: func(_ medium.NodeID, _ *Packet, o Outcome) { out = o },
	}
	r.Send(0, pkt)
	eng.Run()
	if out != Delivered || pkt.Hops != 0 {
		t.Fatalf("out=%v hops=%d", out, pkt.Hops)
	}
}

func TestArrivedClosestMode(t *testing.T) {
	// Target position is past node 4; in closest-node mode the packet
	// must terminate at node 4 (ALERT's RF selection).
	eng, _, r := netFromModel(lineTopology(5, 200), 3)
	var out Outcome
	var at medium.NodeID
	pkt := &Packet{
		Dest:      geo.Point{X: 950, Y: 500},
		DeliverTo: NoDeliverTo,
		HopBudget: 10,
		OnOutcome: func(a medium.NodeID, _ *Packet, o Outcome) { at, out = a, o },
	}
	r.Send(0, pkt)
	eng.Run()
	if out != ArrivedClosest || at != 4 {
		t.Fatalf("out=%v at=%v", out, at)
	}
	if r.Counters().ArrivedClosest != 1 {
		t.Fatal("counter wrong")
	}
}

func TestArrivedClosestImmediate(t *testing.T) {
	// Origin already closest: zero hops.
	eng, _, r := netFromModel(lineTopology(3, 200), 4)
	var at medium.NodeID
	pkt := &Packet{
		Dest:      geo.Point{X: 420, Y: 500}, // closest to node 2 at x=400
		DeliverTo: NoDeliverTo,
		HopBudget: 10,
		OnOutcome: func(a medium.NodeID, _ *Packet, _ Outcome) { at = a },
	}
	r.Send(2, pkt)
	eng.Run()
	if at != 2 || pkt.Hops != 0 {
		t.Fatalf("at=%v hops=%d", at, pkt.Hops)
	}
}

func TestTTLExhaustion(t *testing.T) {
	eng, _, r := netFromModel(lineTopology(8, 200), 5)
	var out Outcome
	pkt := &Packet{
		Dest:      geo.Point{X: 1400, Y: 500},
		DeliverTo: 7,
		HopBudget: 3,
		OnOutcome: func(_ medium.NodeID, _ *Packet, o Outcome) { out = o },
	}
	r.Send(0, pkt)
	eng.Run()
	if out != DroppedTTL {
		t.Fatalf("out=%v, want dropped-ttl", out)
	}
	if pkt.Hops > 3 {
		t.Fatalf("hops %d exceeded budget", pkt.Hops)
	}
}

func TestPerimeterRecoveryAroundVoid(t *testing.T) {
	// A concave "C" topology: greedy from node 0 toward node 4 dead-ends
	// at the tip (node 1 is closest to dest among 0's neighbors, but the
	// direct path is void); perimeter mode must route around.
	//
	//   0(0,500) - 1(200,500)            4(600,500)
	//                \                    /
	//               2(200,300) - 3(450,300)
	pos := []geo.Point{
		{X: 0, Y: 500}, {X: 200, Y: 500}, {X: 200, Y: 300},
		{X: 450, Y: 300}, {X: 600, Y: 500},
	}
	eng, _, r := netFromModel(&fixedModel{pos: pos}, 6)
	var out Outcome
	pkt := &Packet{
		Dest:      pos[4],
		DeliverTo: 4,
		HopBudget: 10,
		OnOutcome: func(_ medium.NodeID, _ *Packet, o Outcome) { out = o },
	}
	r.Send(0, pkt)
	eng.Run()
	if out != Delivered {
		t.Fatalf("out=%v, want delivered via perimeter", out)
	}
	if r.Counters().PerimeterEntries == 0 {
		t.Fatal("expected a perimeter entry")
	}
}

func TestDisconnectedDrops(t *testing.T) {
	// Two islands far apart.
	pos := []geo.Point{
		{X: 0, Y: 0}, {X: 100, Y: 0},
		{X: 900, Y: 900}, {X: 1000, Y: 900},
	}
	eng, _, r := netFromModel(&fixedModel{pos: pos}, 7)
	var out Outcome
	fired := 0
	pkt := &Packet{
		Dest:      pos[3],
		DeliverTo: 3,
		HopBudget: 20,
		OnOutcome: func(_ medium.NodeID, _ *Packet, o Outcome) { out = o; fired++ },
	}
	r.Send(0, pkt)
	eng.Run()
	if out != DroppedDeadEnd && out != DroppedTTL {
		t.Fatalf("out=%v, want a drop", out)
	}
	if fired != 1 {
		t.Fatalf("OnOutcome fired %d times", fired)
	}
}

func TestIsolatedNodeDeadEnd(t *testing.T) {
	pos := []geo.Point{{X: 0, Y: 0}, {X: 900, Y: 900}}
	eng, _, r := netFromModel(&fixedModel{pos: pos}, 8)
	var out Outcome
	pkt := &Packet{
		Dest:      pos[1],
		DeliverTo: 1,
		HopBudget: 5,
		OnOutcome: func(_ medium.NodeID, _ *Packet, o Outcome) { out = o },
	}
	r.Send(0, pkt)
	eng.Run()
	if out != DroppedDeadEnd {
		t.Fatalf("out=%v, want dead-end (no neighbors at all)", out)
	}
}

func TestRandomNetworkDeliveryRate(t *testing.T) {
	// In a dense static 200-node network nearly every routing attempt
	// must succeed (Fig. 16a: delivery ~1 at 200 nodes).
	eng := sim.NewEngine()
	src := rng.New(9)
	mob := mobility.NewStatic(field, 200, src)
	med := medium.MustNew(eng, mob, medium.DefaultParams(), src)
	net := node.NewNetwork(eng, med, crypt.NewFastSuite(src), crypt.ZeroCostModel(),
		node.Config{}, src)
	r := New(net)
	r.AttachAll()
	delivered := 0
	const tries = 50
	for i := 0; i < tries; i++ {
		from := medium.NodeID(src.Intn(200))
		to := medium.NodeID(src.Intn(200))
		if from == to {
			delivered++
			continue
		}
		pkt := &Packet{
			Dest:      mob.Position(int(to), 0),
			DeliverTo: to,
			HopBudget: 20,
			OnOutcome: func(_ medium.NodeID, _ *Packet, o Outcome) {
				if o == Delivered {
					delivered++
				}
			},
		}
		r.Send(from, pkt)
	}
	eng.Run()
	if delivered < tries*9/10 {
		t.Fatalf("only %d/%d delivered in dense static network", delivered, tries)
	}
}

func TestGreedyPathIsMonotone(t *testing.T) {
	// In greedy mode every recorded hop strictly decreases the distance
	// to the destination (using true positions in a static network).
	eng := sim.NewEngine()
	src := rng.New(10)
	mob := mobility.NewStatic(field, 150, src)
	med := medium.MustNew(eng, mob, medium.DefaultParams(), src)
	net := node.NewNetwork(eng, med, crypt.NewFastSuite(src), crypt.ZeroCostModel(),
		node.Config{}, src)
	r := New(net)
	r.AttachAll()
	var done *Packet
	pkt := &Packet{
		Dest:      geo.Point{X: 990, Y: 990},
		DeliverTo: NoDeliverTo,
		HopBudget: 30,
		OnOutcome: func(_ medium.NodeID, p *Packet, _ Outcome) { done = p },
	}
	r.Send(0, pkt)
	eng.Run()
	if done == nil {
		t.Fatal("no outcome")
	}
	if r.Counters().PerimeterEntries > 0 {
		t.Skip("hit perimeter mode; monotonicity only holds for greedy")
	}
	for i := 1; i < len(done.Path); i++ {
		a := mob.Position(int(done.Path[i-1]), 0).Dist(pkt.Dest)
		b := mob.Position(int(done.Path[i]), 0).Dist(pkt.Dest)
		if b >= a {
			t.Fatalf("hop %d did not reduce distance: %v -> %v", i, a, b)
		}
	}
}

func TestDefaultHopBudgetApplied(t *testing.T) {
	eng, _, r := netFromModel(lineTopology(3, 200), 11)
	pkt := &Packet{
		Dest:      geo.Point{X: 400, Y: 500},
		DeliverTo: 2,
		OnOutcome: func(_ medium.NodeID, _ *Packet, _ Outcome) {},
	}
	r.Send(0, pkt)
	eng.Run()
	// Budget defaulted to 10 and 2 hops were used.
	if pkt.HopBudget != DefaultHopBudget-2 {
		t.Fatalf("remaining budget = %d", pkt.HopBudget)
	}
}

func TestOutcomeStrings(t *testing.T) {
	names := map[Outcome]string{
		Delivered:      "delivered",
		ArrivedClosest: "arrived-closest",
		DroppedTTL:     "dropped-ttl",
		DroppedDeadEnd: "dropped-dead-end",
	}
	for o, want := range names {
		if o.String() != want {
			t.Fatalf("%d.String() = %q", o, o.String())
		}
	}
}

func TestPlanarizeGabriel(t *testing.T) {
	self := geo.Point{X: 0, Y: 0}
	// Neighbor at (200,0) is eliminated by witness at (100,10), which is
	// inside the circle with diameter (self, u).
	nbrs := []medium.Neighbor{
		{ID: 1, Pos: geo.Point{X: 200, Y: 0}},
		{ID: 2, Pos: geo.Point{X: 100, Y: 10}},
	}
	planar := planarize(nil, self, nbrs)
	for _, nb := range planar {
		if nb.ID == 1 {
			t.Fatal("Gabriel test failed to remove covered edge")
		}
	}
	// The witness itself must survive.
	if len(planar) != 1 || planar[0].ID != 2 {
		t.Fatalf("planar = %v", planar)
	}
}

func TestRightHandRuleOrder(t *testing.T) {
	self := geo.Point{X: 0, Y: 0}
	ref := geo.Point{X: 1, Y: 0} // incoming direction: east
	nbrs := []medium.Neighbor{
		{ID: 1, Pos: geo.Point{X: 0, Y: 1}},  // north: +90 CCW
		{ID: 2, Pos: geo.Point{X: -1, Y: 0}}, // west: +180
		{ID: 3, Pos: geo.Point{X: 0, Y: -1}}, // south: +270
	}
	got := rightHand(self, ref, nbrs)
	if got.ID != 1 {
		t.Fatalf("rightHand picked %d, want 1 (smallest CCW sweep)", got.ID)
	}
}

func TestRightHandSkipsIncomingEdge(t *testing.T) {
	// The neighbor exactly in the reference direction must be last
	// choice (delta ~ 2pi), not first (delta ~ 0).
	self := geo.Point{X: 0, Y: 0}
	ref := geo.Point{X: 1, Y: 0}
	nbrs := []medium.Neighbor{
		{ID: 1, Pos: geo.Point{X: 2, Y: 0}}, // same direction as ref
		{ID: 2, Pos: geo.Point{X: 0, Y: 5}}, // CCW 90
	}
	got := rightHand(self, ref, nbrs)
	if got.ID != 2 {
		t.Fatalf("rightHand picked %d, want 2", got.ID)
	}
}

// Property: the Gabriel planarization never disconnects a node from all its
// neighbors — planar perimeter forwarding always has an edge to walk.
func TestQuickPlanarizeKeepsAnEdge(t *testing.T) {
	src := rng.New(21)
	f := func(seed int64, nRaw uint8) bool {
		n := int(nRaw%20) + 2
		pts := make([]medium.Neighbor, n)
		local := rng.New(seed)
		for i := range pts {
			pts[i] = medium.Neighbor{
				ID:  medium.NodeID(i + 1),
				Pos: geo.Point{X: local.Uniform(0, 250), Y: local.Uniform(0, 250)},
			}
		}
		self := geo.Point{X: local.Uniform(0, 250), Y: local.Uniform(0, 250)}
		planar := planarize(nil, self, pts)
		return len(planar) >= 1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
	_ = src
}

// Property: planarize returns a subset of the input neighbors.
func TestQuickPlanarizeSubset(t *testing.T) {
	f := func(seed int64, nRaw uint8) bool {
		n := int(nRaw%15) + 1
		local := rng.New(seed)
		pts := make([]medium.Neighbor, n)
		in := map[medium.NodeID]bool{}
		for i := range pts {
			pts[i] = medium.Neighbor{
				ID:  medium.NodeID(i + 1),
				Pos: geo.Point{X: local.Uniform(0, 200), Y: local.Uniform(0, 200)},
			}
			in[pts[i].ID] = true
		}
		self := geo.Point{X: 100, Y: 100}
		for _, nb := range planarize(nil, self, pts) {
			if !in[nb.ID] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// Property: the gpsr greedy step never picks a neighbor farther from the
// destination than the current holder.
func TestQuickNextGreedyImproves(t *testing.T) {
	eng := sim.NewEngine()
	src := rng.New(22)
	mob := mobility.NewStatic(field, 80, src)
	med := medium.MustNew(eng, mob, medium.DefaultParams(), src)
	net := node.NewNetwork(eng, med, crypt.NewFastSuite(src), crypt.ZeroCostModel(),
		node.Config{}, src)
	r := New(net)
	f := func(fromRaw uint8, dx, dy uint16) bool {
		from := medium.NodeID(int(fromRaw) % 80)
		dest := geo.Point{X: float64(dx % 1000), Y: float64(dy % 1000)}
		next, ok := r.NextGreedy(from, dest)
		if !ok {
			return true
		}
		selfD := med.PositionNow(from).Dist(dest)
		nextD := med.PositionNow(next).Dist(dest)
		return nextD < selfD
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 400}); err != nil {
		t.Fatal(err)
	}
}

func TestPlanarizeRNGSubsetOfGabriel(t *testing.T) {
	// RNG is a known subgraph of the Gabriel graph.
	src := rng.New(31)
	for trial := 0; trial < 200; trial++ {
		n := src.Intn(15) + 2
		self := geo.Point{X: src.Uniform(0, 250), Y: src.Uniform(0, 250)}
		nbrs := make([]medium.Neighbor, n)
		for i := range nbrs {
			nbrs[i] = medium.Neighbor{
				ID:  medium.NodeID(i + 1),
				Pos: geo.Point{X: src.Uniform(0, 250), Y: src.Uniform(0, 250)},
			}
		}
		gg := map[medium.NodeID]bool{}
		for _, nb := range planarize(nil, self, nbrs) {
			gg[nb.ID] = true
		}
		for _, nb := range planarizeRNG(nil, self, nbrs) {
			if !gg[nb.ID] {
				t.Fatalf("trial %d: RNG kept edge %d that Gabriel removed", trial, nb.ID)
			}
		}
	}
}

func TestRNGPlanarizationStillDelivers(t *testing.T) {
	// The concave-void topology must still route with RNG perimeter mode.
	pos := []geo.Point{
		{X: 0, Y: 500}, {X: 200, Y: 500}, {X: 200, Y: 300},
		{X: 450, Y: 300}, {X: 600, Y: 500},
	}
	eng, _, r := netFromModel(&fixedModel{pos: pos}, 32)
	r.Planar = RelativeNeighborhood
	var out Outcome
	pkt := &Packet{
		Dest:      pos[4],
		DeliverTo: 4,
		HopBudget: 10,
		OnOutcome: func(_ medium.NodeID, _ *Packet, o Outcome) { out = o },
	}
	r.Send(0, pkt)
	eng.Run()
	if out != Delivered {
		t.Fatalf("out=%v with RNG planarization", out)
	}
}

package gpsr

import (
	"testing"

	"alertmanet/internal/crypt"
	"alertmanet/internal/geo"
	"alertmanet/internal/locservice"
	"alertmanet/internal/medium"
	"alertmanet/internal/mobility"
	"alertmanet/internal/node"
	"alertmanet/internal/rng"
	"alertmanet/internal/sim"
)

func buildApp(seed int64, n int, speed float64, locCfg locservice.Config) (*sim.Engine, *node.Network, *locservice.Service, *App) {
	eng := sim.NewEngine()
	src := rng.New(seed)
	var mob mobility.Model
	if speed <= 0 {
		mob = mobility.NewStatic(field, n, src)
	} else {
		mob = mobility.NewRandomWaypoint(field, n, mobility.Fixed(speed), src)
	}
	med := medium.MustNew(eng, mob, medium.DefaultParams(), src)
	net := node.NewNetwork(eng, med, crypt.NewFastSuite(src), crypt.ZeroCostModel(),
		node.Config{}, src)
	loc := locservice.New(net, locCfg)
	return eng, net, loc, NewApp(net, loc, DefaultAppConfig())
}

func appFarPair(net *node.Network, minDist float64) (medium.NodeID, medium.NodeID) {
	for s := 0; s < net.N(); s++ {
		for d := s + 1; d < net.N(); d++ {
			if net.Node(medium.NodeID(s)).Position().Dist(
				net.Node(medium.NodeID(d)).Position()) >= minDist {
				return medium.NodeID(s), medium.NodeID(d)
			}
		}
	}
	panic("no far pair")
}

func TestAppDelivery(t *testing.T) {
	eng, net, _, app := buildApp(1, 200, 0, locservice.DefaultConfig())
	s, d := appFarPair(net, 600)
	rec, _ := app.Send(s, d, []byte("x"))
	eng.RunUntil(30)
	if !rec.Delivered {
		t.Fatal("baseline GPSR failed in dense static network")
	}
	if rec.Latency() <= 0 || rec.Hops < 2 {
		t.Fatalf("rec = %+v", rec)
	}
	if app.Collector().DeliveryRate() != 1 {
		t.Fatal("delivery rate wrong")
	}
}

func TestAppShortestPathStable(t *testing.T) {
	// GPSR always takes the same greedy path in a static network — the
	// property that makes it traceable (Section 3.1).
	eng, net, _, app := buildApp(2, 200, 0, locservice.DefaultConfig())
	s, d := appFarPair(net, 600)
	var paths [][]medium.NodeID
	for i := 0; i < 3; i++ {
		rec, _ := app.Send(s, d, []byte("x"))
		eng.RunUntil(float64(i+1) * 10)
		paths = append(paths, rec.Path)
	}
	for i := 1; i < len(paths); i++ {
		if len(paths[i]) != len(paths[0]) {
			t.Fatal("static GPSR paths differ in length")
		}
		for j := range paths[i] {
			if paths[i][j] != paths[0][j] {
				t.Fatal("static GPSR paths differ")
			}
		}
	}
}

func TestAppStaleDestinationFails(t *testing.T) {
	// Without destination updates and with fast movement, the looked-up
	// position goes stale and delivery degrades (Fig. 16b).
	run := func(updates bool) float64 {
		cfg := locservice.Config{UpdateInterval: 2, UpdatesEnabled: updates}
		eng, net, _, app := buildApp(3, 200, 20, cfg)
		sent := 0
		for i := 0; i < 20; i++ {
			at := float64(i) * 4
			eng.At(at, func() {
				s := medium.NodeID(sent % net.N())
				d := medium.NodeID((sent*7 + 31) % net.N())
				if s != d {
					app.Send(s, d, []byte("x"))
				}
				sent++
			})
		}
		eng.RunUntil(120)
		return app.Collector().DeliveryRate()
	}
	with := run(true)
	without := run(false)
	if with <= without {
		t.Fatalf("delivery with updates (%v) should beat without (%v)", with, without)
	}
}

func TestAppLocServiceDown(t *testing.T) {
	eng, _, loc, app := buildApp(4, 30, 0, locservice.DefaultConfig())
	for i := 0; i < loc.NumServers(); i++ {
		loc.FailServer(i)
	}
	rec, _ := app.Send(0, 5, []byte("x"))
	eng.RunUntil(5)
	if rec.Delivered || app.Collector().Completed() != 1 {
		t.Fatal("send without location service should fail fast")
	}
}

func TestAppUndeliveredCompletes(t *testing.T) {
	eng := sim.NewEngine()
	src := rng.New(5)
	mob := &fixedModel{pos: []geo.Point{{X: 0, Y: 0}, {X: 900, Y: 900}}}
	med := medium.MustNew(eng, mob, medium.DefaultParams(), src)
	net := node.NewNetwork(eng, med, crypt.NewFastSuite(src), crypt.ZeroCostModel(),
		node.Config{}, src)
	loc := locservice.New(net, locservice.DefaultConfig())
	app := NewApp(net, loc, DefaultAppConfig())
	rec, _ := app.Send(0, 1, []byte("x"))
	eng.RunUntil(30)
	if rec.Delivered {
		t.Fatal("unreachable destination delivered")
	}
	if app.Collector().Completed() != 1 {
		t.Fatal("record never completed")
	}
}

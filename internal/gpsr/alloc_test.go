package gpsr

import (
	"testing"

	"alertmanet/internal/geo"
	"alertmanet/internal/medium"
)

// TestForwardZeroAllocs pins the hot path's core contract: with telemetry
// disabled, forwarding a packet through the router and the medium's
// link-layer ARQ allocates nothing. Every structure on the per-hop path —
// engine events, ARQ send state, neighbor tables, planarization scratch,
// the frame itself — is pooled or reused, so after a warmup send the
// allocator never runs again no matter how many packets flow.
func TestForwardZeroAllocs(t *testing.T) {
	eng, _, r := netFromModel(lineTopology(12, 200), 1)
	onOutcome := func(_ medium.NodeID, p *Packet, o Outcome) {
		if o != Delivered {
			t.Fatalf("outcome = %v", o)
		}
		r.Release(p)
	}
	send := func() {
		pkt := r.NewPacket()
		pkt.Dest = geo.Point{X: 2200, Y: 500}
		pkt.DeliverTo = 11
		pkt.Size = 512
		pkt.HopBudget = 20
		pkt.OnOutcome = onOutcome
		r.Send(0, pkt)
		eng.Run()
	}
	// Warm the pools: frame, engine event freelist, ARQ state, scratch
	// slices all reach steady-state capacity on the first few sends.
	for i := 0; i < 3; i++ {
		send()
	}
	if avg := testing.AllocsPerRun(10, send); avg != 0 {
		t.Fatalf("forwarding an 11-hop packet allocates %.1f times, want 0", avg)
	}
}

// TestRecycledFrameDoesNotAliasRecordPath regresses the pool-aliasing
// hazard: a completed packet's record must keep its own copy of the path,
// because the frame goes back to the router's pool and its Path backing
// array is rewritten by the next send. Before the copy-don't-alias fix,
// rec.Path = pkt.Path shared storage, and packet B's hops would silently
// overwrite packet A's recorded history.
func TestRecycledFrameDoesNotAliasRecordPath(t *testing.T) {
	eng, _, r := netFromModel(lineTopology(10, 200), 5)

	// The pool really does hand the same frame back — the precondition
	// that makes aliasing dangerous.
	pA := r.NewPacket()
	r.Release(pA)
	if pB := r.NewPacket(); pB != pA {
		t.Fatal("router pool did not recycle the released frame")
	}
	r.Release(pA)

	type recorded struct{ path []medium.NodeID }
	var recA, recB recorded
	send := func(src, dst medium.NodeID, into *recorded) {
		pkt := r.NewPacket()
		pkt.Dest = geo.Point{X: float64(dst) * 200, Y: 500}
		pkt.DeliverTo = dst
		pkt.Size = 512
		pkt.HopBudget = 20
		pkt.OnOutcome = func(_ medium.NodeID, p *Packet, o Outcome) {
			if o != Delivered {
				t.Fatalf("outcome = %v", o)
			}
			// The protocols' copy idiom: never retain p.Path itself.
			into.path = append(into.path[:0], p.Path...)
			r.Release(p)
		}
		r.Send(src, pkt)
		eng.Run()
	}

	send(0, 9, &recA) // path 0..9 on the pooled frame
	snapshot := append([]medium.NodeID(nil), recA.path...)
	if len(snapshot) != 10 {
		t.Fatalf("packet A path = %v, want 10 nodes", snapshot)
	}

	send(3, 7, &recB) // rides the recycled frame over an overlapping stretch

	if len(recA.path) != len(snapshot) {
		t.Fatalf("packet A path length changed after B: %v", recA.path)
	}
	for i := range snapshot {
		if recA.path[i] != snapshot[i] {
			t.Fatalf("packet B leaked into A's recorded path: %v, want %v",
				recA.path, snapshot)
		}
	}
	if len(recB.path) == 0 || recB.path[0] != 3 || recB.path[len(recB.path)-1] != 7 {
		t.Fatalf("packet B path = %v", recB.path)
	}
	if &recA.path[0] == &recB.path[0] {
		t.Fatal("records A and B share Path backing storage")
	}
}

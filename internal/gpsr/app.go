// The GPSR baseline protocol of the evaluation (Section 5): plain
// geographic routing of application packets to the destination's location
// looked up from the location service, with no anonymity machinery. This is
// the "base-line GPSR algorithm" every figure compares against.

package gpsr

import (
	"alertmanet/internal/locservice"
	"alertmanet/internal/medium"
	"alertmanet/internal/metrics"
	"alertmanet/internal/node"
)

// AppConfig tunes the baseline application.
type AppConfig struct {
	// PacketSize is the on-air data packet size (512 bytes).
	PacketSize int
	// HopBudget is the TTL in hops (10 in the paper's experiments).
	HopBudget int
	// CompleteTimeout records a packet as undelivered after this long.
	CompleteTimeout float64
}

// DefaultAppConfig matches the paper's parameters.
func DefaultAppConfig() AppConfig {
	return AppConfig{PacketSize: 512, HopBudget: DefaultHopBudget, CompleteTimeout: 8}
}

// App is the GPSR baseline protocol instance.
type App struct {
	net    *node.Network
	loc    *locservice.Service
	router *Router
	cfg    AppConfig
	col    *metrics.Collector
}

// NewApp creates the baseline and attaches its handlers on every node.
func NewApp(net *node.Network, loc *locservice.Service, cfg AppConfig) *App {
	a := &App{
		net:    net,
		loc:    loc,
		router: New(net),
		cfg:    cfg,
		col:    metrics.NewCollector(),
	}
	a.router.AttachAll()
	return a
}

// Collector returns the run's metrics.
func (a *App) Collector() *metrics.Collector { return a.col }

// Router exposes the underlying router.
func (a *App) Router() *Router { return a.router }

// Send routes one application packet from src to dst by plain GPSR and
// returns its metrics record. The error is always nil; the signature
// matches the experiment harness's Proto interface, where ALERT's session
// setup can fail.
func (a *App) Send(src, dst medium.NodeID, data []byte) (*metrics.PacketRecord, error) {
	rec := a.col.Start(src, dst, a.net.Eng.Now())
	entry, ok := a.loc.Lookup(dst)
	if !ok {
		a.col.Complete(rec, 0, false)
		return rec, nil
	}
	completed := false
	finish := func(at float64, delivered bool) {
		if completed {
			return
		}
		completed = true
		a.col.Complete(rec, at, delivered)
	}
	if a.cfg.CompleteTimeout > 0 {
		a.net.Eng.Schedule(a.cfg.CompleteTimeout, func() { finish(0, false) })
	}
	pkt := a.router.NewPacket()
	pkt.Dest = entry.Pos
	pkt.DeliverTo = dst
	pkt.Payload = data
	pkt.Size = a.cfg.PacketSize
	pkt.HopBudget = a.cfg.HopBudget
	pkt.OnOutcome = func(_ medium.NodeID, gp *Packet, out Outcome) {
		rec.Hops = gp.Hops
		// Copy, never alias: the frame is recycled below and its Path
		// backing array will be rewritten by the next packet.
		rec.Path = append(rec.Path[:0], gp.Path...)
		finish(a.net.Eng.Now(), out == Delivered)
		a.router.Release(gp)
	}
	pkt.SetTrace(rec.Seq)
	a.router.Send(src, pkt)
	return rec, nil
}

// Package gpsr implements Greedy Perimeter Stateless Routing [15, 30], the
// geographic routing substrate every protocol in this repository rides on:
// the GPSR baseline itself, ALERT's legs between random forwarders
// (Section 2.3), and the AO2P and ALARM comparators.
//
// A packet targets a position. Each holder greedily forwards to the
// neighbor whose beaconed position is closest to the target; when no
// neighbor improves on the holder (a dead end, Section 2.7), the packet
// either terminates — ALERT's "node closest to the TD becomes the random
// forwarder" rule — or enters perimeter mode: a right-hand-rule walk over
// the Gabriel-graph planarization of the neighbor graph until greedy
// progress resumes, as in the original GPSR recovery.
package gpsr

import (
	"math"

	"alertmanet/internal/geo"
	"alertmanet/internal/medium"
	"alertmanet/internal/node"
	"alertmanet/internal/telemetry"
)

// Mode is a packet's forwarding state.
type Mode uint8

const (
	// Greedy forwards to the neighbor closest to the destination.
	Greedy Mode = iota
	// Perimeter walks planar faces by the right-hand rule to escape a
	// dead end.
	Perimeter
)

// Outcome describes how a routing attempt ended.
type Outcome uint8

const (
	// Delivered means the packet reached its DeliverTo node.
	Delivered Outcome = iota
	// ArrivedClosest means the packet reached the node closest to the
	// target position (DeliverTo unset) — an ALERT random forwarder.
	ArrivedClosest
	// DroppedTTL means the hop budget ran out.
	DroppedTTL
	// DroppedDeadEnd means perimeter recovery failed (disconnected or
	// the walk returned to its first edge).
	DroppedDeadEnd
	// DroppedLink means a hop's transmission failed on air even after the
	// medium's ARQ spent its retry budget (receiver out of range, loss,
	// or a compromised holder sinking the frame). The packet's last
	// confirmed holder reports the outcome.
	DroppedLink
)

func (o Outcome) String() string {
	switch o {
	case Delivered:
		return "delivered"
	case ArrivedClosest:
		return "arrived-closest"
	case DroppedTTL:
		return "dropped-ttl"
	case DroppedDeadEnd:
		return "dropped-dead-end"
	case DroppedLink:
		return "dropped-link"
	}
	return "unknown"
}

// NoDeliverTo marks a packet that terminates at the node closest to the
// target position rather than at a specific node.
const NoDeliverTo = medium.NodeID(-1)

// Packet is a geographic routing unit. Protocols embed their own payload.
type Packet struct {
	// Dest is the position the packet routes toward (a node's looked-up
	// location, or an ALERT temporary destination).
	Dest geo.Point
	// DeliverTo, when set, is the node the packet must reach; routing
	// fails rather than terminating at a closest node.
	DeliverTo medium.NodeID
	// Payload is the protocol's content; Size its bytes on air.
	Payload any
	Size    int
	// HopBudget is the remaining TTL in hops.
	HopBudget int
	// Hops counts transmissions so far (across perimeter recoveries).
	Hops int
	// Path records every node that held the packet, starting with the
	// origin. Used by the participating-node metrics (Fig. 10).
	Path []medium.NodeID
	// OnOutcome is invoked exactly once when routing ends, at the node
	// where it ended (for drops: the last holder).
	OnOutcome func(at medium.NodeID, pkt *Packet, out Outcome)

	// router is the router currently forwarding the packet; forward sets
	// it so SendResolved can report a lost hop without a per-hop closure.
	router *Router
	// inFlight counts unresolved link-layer sends carrying this frame. A
	// frame can ride two ARQs at once — hop k's ACK handshake may still be
	// retrying while the receiver already forwarded hop k+1 — so Release
	// defers recycling until the count drains.
	inFlight int
	// released marks a frame whose owner called Release while sends were
	// still in flight; the last SendResolved recycles it.
	released bool
	// fwd is the greedy/perimeter decision state (see ForwardState); all
	// routing state lives in the packet, per the GPSR design.
	fwd ForwardState
	// trace is the end-to-end packet id (metrics.Record.Seq) telemetry
	// attributes this packet's events to; hasTrace distinguishes an unset
	// trace from a legitimate id 0.
	trace    int
	hasTrace bool
}

// SetTrace attributes the packet (and every frame carrying it) to an
// end-to-end packet id in telemetry streams.
func (p *Packet) SetTrace(seq int) {
	p.trace = seq
	p.hasTrace = true
}

// TelemetryTrace implements telemetry.Traceable.
func (p *Packet) TelemetryTrace() int {
	if !p.hasTrace {
		return telemetry.NoTrace
	}
	return p.trace
}

// Counters aggregates router activity. Every Sent routing attempt ends in
// exactly one of the five terminal counters:
// Sent == Delivered + ArrivedClosest + DroppedTTL + DroppedDeadEnd + DroppedLink
// (the conservation invariant the experiment harness regresses).
type Counters struct {
	Sent             uint64
	Delivered        uint64
	ArrivedClosest   uint64
	DroppedTTL       uint64
	DroppedDeadEnd   uint64
	DroppedLink      uint64
	TotalHops        uint64
	PerimeterEntries uint64
}

// Planarization selects the planar subgraph used in perimeter mode.
type Planarization uint8

// The two planarizations of the original GPSR paper.
const (
	// GabrielGraph keeps edge (u,v) unless a witness sits inside the
	// circle with diameter uv (the default).
	GabrielGraph Planarization = iota
	// RelativeNeighborhood keeps (u,v) unless a witness is closer to
	// both u and v than they are to each other; a sparser subgraph.
	RelativeNeighborhood
)

// Router routes packets over a network. It is stateless per the GPSR
// design: all routing state lives in the packet.
type Router struct {
	net    *node.Network
	counts Counters
	// Planar selects the perimeter-mode planarization.
	Planar Planarization
	// tap, when non-nil, observes sends, forwards, hops and leg endings.
	tap *telemetry.Tap
	// nbrScratch and planarScratch are Handle's per-step work buffers,
	// reused across hops. Safe because the engine is single-threaded and
	// every forward/finish call sits in tail position: once control leaves
	// Handle (possibly re-entering it for a chained leg), the previous
	// frame never touches its scratch again.
	nbrScratch    []medium.Neighbor
	planarScratch []medium.Neighbor
	// freePkts recycles packet frames released by protocol layers.
	freePkts []*Packet
	// handleFree recycles deferred-Handle events (HandleAfter).
	handleFree []*handleEvent
}

// handleEvent is a pooled deferred Handle call; see HandleAfter.
type handleEvent struct {
	r   *Router
	at  medium.NodeID
	pkt *Packet
}

// RunEvent implements sim.Runner. The event recycles itself before
// dispatching, so a Handle that schedules further deferred hops can reuse
// it immediately.
func (h *handleEvent) RunEvent() {
	r, at, pkt := h.r, h.at, h.pkt
	h.pkt = nil
	r.handleFree = append(r.handleFree, h)
	r.Handle(at, pkt)
}

// New creates a router for the network.
func New(net *node.Network) *Router { return &Router{net: net} }

// NewPacket takes a packet frame from the router's pool (or allocates one).
// The frame comes back zeroed except for Path, which keeps its capacity at
// length 0, so a warmed-up pool issues frames without allocating.
func (r *Router) NewPacket() *Packet {
	if n := len(r.freePkts); n > 0 {
		p := r.freePkts[n-1]
		r.freePkts[n-1] = nil
		r.freePkts = r.freePkts[:n-1]
		return p
	}
	return &Packet{}
}

// Release returns a finished frame to the pool. Ownership rule: exactly one
// layer — the protocol that observed the frame's terminal OnOutcome — may
// release it, and must first copy out anything it keeps. In particular
// pkt.Path must be copied (append into a record-owned slice), never
// aliased: the pool truncates the backing array for the next packet, which
// would silently rewrite an aliased metrics.PacketRecord.Path. If the frame
// is still riding an unresolved link-layer send (its last hop's ACK
// handshake, say), recycling is deferred until that send resolves, so the
// medium's telemetry keeps a valid trace for the remaining ACK traffic.
func (r *Router) Release(p *Packet) {
	if p.inFlight > 0 {
		p.released = true
		return
	}
	r.recycle(p)
}

func (r *Router) recycle(p *Packet) {
	path := p.Path[:0]
	*p = Packet{Path: path}
	r.freePkts = append(r.freePkts, p)
}

// SetTap attaches a telemetry tap observing routing decisions. A nil tap
// (the default) disables routing telemetry.
func (r *Router) SetTap(t *telemetry.Tap) { r.tap = t }

// Tap returns the attached telemetry tap (nil when disabled); protocol
// layers whose demux short-circuits the router use it to emit their own
// forwarding events on the same stream.
func (r *Router) Tap() *telemetry.Tap { return r.tap }

// Counters returns a snapshot of routing statistics.
func (r *Router) Counters() Counters { return r.counts }

// DefaultHopBudget is the paper's TTL of 10 for baseline GPSR runs; ALERT
// legs use it per leg.
const DefaultHopBudget = 10

// SafeRangeFactor is the fraction of the radio range greedy forwarding
// prefers to stay within (see the comment in Handle).
const SafeRangeFactor = 0.9

// Send begins routing pkt from the given node. The packet is processed at
// the origin immediately (the origin itself may be the closest node).
func (r *Router) Send(from medium.NodeID, pkt *Packet) {
	r.counts.Sent++
	if pkt.HopBudget <= 0 {
		pkt.HopBudget = DefaultHopBudget
	}
	pkt.fwd = NewForwardState()
	pkt.Path = append(pkt.Path, from)
	if r.tap != nil {
		r.tap.RouteSend(r.net.Eng.Now(), pkt.TelemetryTrace(), int(from))
	}
	r.Handle(from, pkt)
}

// Receive records pkt's confirmed arrival at node cur: the hop count and
// the participating-node Path grow only here, on reception, never
// optimistically at send time — a transmission the ARQ ultimately loses
// must not count the node that never held the packet (Fig. 10 participants,
// route-Jaccard). Idempotent at the current holder, so the origin (already
// on the Path from Send) and protocol layers that call it before Handle are
// safe.
func (r *Router) Receive(cur medium.NodeID, pkt *Packet) {
	if n := len(pkt.Path); n > 0 && pkt.Path[n-1] == cur {
		return
	}
	pkt.Path = append(pkt.Path, cur)
	pkt.Hops++
	r.counts.TotalHops++
	if r.tap != nil {
		r.tap.Hop(r.net.Eng.Now(), pkt.TelemetryTrace(), int(cur), pkt.Hops)
	}
}

// Finish terminates pkt's routing at node cur with the given outcome,
// updating the terminal counters and firing OnOutcome. Protocols whose
// demux short-circuits the router (e.g. AO2P's destination contention)
// use it so every Sent packet still reaches exactly one terminal outcome.
func (r *Router) Finish(cur medium.NodeID, pkt *Packet, out Outcome) {
	r.finish(cur, pkt, out)
}

// HandleAfter schedules Handle(at, pkt) after delay, as a single engine
// event but without the closure a bare Schedule would cost. Protocols that
// charge per-hop crypto time before processing (AO2P's destination-position
// decryption, ALARM's signature verification) batch the whole charge into
// this one pooled event.
func (r *Router) HandleAfter(delay float64, at medium.NodeID, pkt *Packet) {
	var h *handleEvent
	if n := len(r.handleFree); n > 0 {
		h = r.handleFree[n-1]
		r.handleFree[n-1] = nil
		r.handleFree = r.handleFree[:n-1]
	} else {
		h = new(handleEvent)
	}
	h.r, h.at, h.pkt = r, at, pkt
	r.net.Eng.ScheduleRunner(delay, h)
}

// Handle processes pkt at node cur: deliver, forward greedily, or walk the
// perimeter. Protocol demux layers call this when a medium delivery carries
// a *Packet.
func (r *Router) Handle(cur medium.NodeID, pkt *Packet) {
	r.Receive(cur, pkt)
	if pkt.DeliverTo != NoDeliverTo && cur == pkt.DeliverTo {
		r.finish(cur, pkt, Delivered)
		return
	}
	r.nbrScratch = r.net.Med.NeighborsInto(cur, r.nbrScratch)
	selfPos := r.net.Med.PositionNow(cur)
	var prevPos geo.Point
	if pkt.fwd.Prev != NoDeliverTo {
		prevPos = r.net.Med.PositionNow(pkt.fwd.Prev)
	}
	next, verdict, entered, scratch := Step(cur, selfPos, prevPos, pkt.Dest,
		pkt.DeliverTo == NoDeliverTo, r.net.Med.Params().Range, r.Planar,
		r.nbrScratch, r.planarScratch[:0], &pkt.fwd)
	r.planarScratch = scratch
	if entered {
		r.counts.PerimeterEntries++
	}
	switch verdict {
	case StepArrived:
		r.finish(cur, pkt, ArrivedClosest)
	case StepDeadEnd:
		r.finish(cur, pkt, DroppedDeadEnd)
	default:
		r.forward(cur, next, pkt)
	}
}

// forward transmits pkt one hop. The receiving side routes the payload back
// into Handle (protocols do this in their medium handlers), which records
// the arrival via Receive; if the medium's ARQ exhausts its retries the
// send resolves lost and the packet terminates here as DroppedLink. The
// hop budget is spent at send time (the transmission attempt is the cost),
// but Path and Hops grow only on confirmed reception.
func (r *Router) forward(cur, next medium.NodeID, pkt *Packet) {
	if pkt.HopBudget <= 0 {
		r.finish(cur, pkt, DroppedTTL)
		return
	}
	pkt.HopBudget--
	pkt.fwd.Prev = cur
	if r.tap != nil {
		mode := "greedy"
		if pkt.fwd.Mode == Perimeter {
			mode = "perimeter"
		}
		r.tap.Forward(r.net.Eng.Now(), pkt.TelemetryTrace(), int(cur), int(next), mode)
	}
	r.UnicastPacket(cur, next, pkt)
}

// UnicastPacket puts pkt on air from cur to next with the router's
// closure-free fate reporting: a lost send terminates routing at cur as
// DroppedLink. forward uses it for every hop; protocol layers whose demux
// short-circuits the greedy step (AO2P's destination claim) use it directly
// so even those hops allocate nothing.
func (r *Router) UnicastPacket(cur, next medium.NodeID, pkt *Packet) {
	pkt.router = r
	pkt.fwd.Prev = cur
	pkt.inFlight++
	r.net.Med.UnicastSink(cur, next, pkt, pkt.Size, pkt)
}

// SendResolved implements medium.OutcomeSink: the one-hop transmission the
// packet is riding resolved. A failed send terminates routing at the last
// confirmed holder — fwd.Prev, which UnicastPacket set to the sending node.
func (p *Packet) SendResolved(out medium.SendOutcome) {
	p.inFlight--
	if out != medium.SendDelivered {
		p.router.finish(p.fwd.Prev, p, DroppedLink)
		return
	}
	if p.released && p.inFlight == 0 {
		p.router.recycle(p)
	}
}

func (r *Router) finish(at medium.NodeID, pkt *Packet, out Outcome) {
	switch out {
	case Delivered:
		r.counts.Delivered++
	case ArrivedClosest:
		r.counts.ArrivedClosest++
	case DroppedTTL:
		r.counts.DroppedTTL++
	case DroppedDeadEnd:
		r.counts.DroppedDeadEnd++
	case DroppedLink:
		r.counts.DroppedLink++
	}
	if r.tap != nil {
		r.tap.LegEnd(r.net.Eng.Now(), pkt.TelemetryTrace(), int(at), out.String())
	}
	if pkt.OnOutcome != nil {
		pkt.OnOutcome(at, pkt, out)
	}
}

// NextGreedy returns the neighbor a greedy step from the given node toward
// dest would choose, or ok=false at a dead end. ALERT's source uses this to
// learn the first relay so it can encrypt the TTL field to that relay's
// public key (Section 2.6).
func (r *Router) NextGreedy(from medium.NodeID, dest geo.Point) (medium.NodeID, bool) {
	selfDist := r.net.Med.PositionNow(from).Dist(dest)
	best := NoDeliverTo
	bestDist := selfDist
	r.nbrScratch = r.net.Med.NeighborsInto(from, r.nbrScratch)
	for _, nb := range r.nbrScratch {
		if d := nb.Pos.Dist(dest); d < bestDist {
			best, bestDist = nb.ID, d
		}
	}
	return best, best != NoDeliverTo
}

// AttachAll registers a medium handler on every node that feeds *Packet
// payloads back into Handle. Single-protocol simulations (the GPSR baseline
// itself, unit tests) use this; protocols with richer packet types attach
// their own demux and call Handle themselves.
func (r *Router) AttachAll() {
	for i := 0; i < r.net.N(); i++ {
		id := medium.NodeID(i)
		r.net.Med.Attach(id, func(_ medium.NodeID, payload any, _ int) {
			if pkt, ok := payload.(*Packet); ok {
				r.Handle(id, pkt)
			}
		})
	}
}

// planarize appends to dst the neighbors kept by the Gabriel graph test:
// neighbor u survives unless some witness w lies inside the circle whose
// diameter is the segment (self, u). Planarity makes the right-hand walk
// terminate on faces instead of crossing edges.
func planarize(dst []medium.Neighbor, self geo.Point, nbrs []medium.Neighbor) []medium.Neighbor {
	out := dst
	for _, u := range nbrs {
		mid := geo.Point{X: (self.X + u.Pos.X) / 2, Y: (self.Y + u.Pos.Y) / 2}
		radius2 := self.Dist2(u.Pos) / 4
		keep := true
		for _, w := range nbrs {
			if w.ID == u.ID {
				continue
			}
			if w.Pos.Dist2(mid) < radius2 {
				keep = false
				break
			}
		}
		if keep {
			out = append(out, u)
		}
	}
	return out
}

// planarizeRNG appends to dst the neighbors kept by the Relative
// Neighborhood Graph test: u survives unless some witness w is strictly
// closer to both endpoints than they are to each other (the "lune" test).
// RNG is a subgraph of the Gabriel graph — sparser faces, longer perimeter
// walks — and is the other planarization the original GPSR paper evaluates.
func planarizeRNG(dst []medium.Neighbor, self geo.Point, nbrs []medium.Neighbor) []medium.Neighbor {
	out := dst
	for _, u := range nbrs {
		d2 := self.Dist2(u.Pos)
		keep := true
		for _, w := range nbrs {
			if w.ID == u.ID {
				continue
			}
			if w.Pos.Dist2(self) < d2 && w.Pos.Dist2(u.Pos) < d2 {
				keep = false
				break
			}
		}
		if keep {
			out = append(out, u)
		}
	}
	return out
}

// rightHand picks the planar neighbor reached by sweeping counterclockwise
// from the reference direction (self -> ref), i.e. the GPSR rule "the next
// edge is the one sequentially counterclockwise about self from the
// incoming edge".
func rightHand(self, ref geo.Point, planar []medium.Neighbor) medium.Neighbor {
	base := math.Atan2(ref.Y-self.Y, ref.X-self.X)
	best := planar[0]
	bestAngle := math.Inf(1)
	for _, nb := range planar {
		a := math.Atan2(nb.Pos.Y-self.Y, nb.Pos.X-self.X)
		delta := a - base
		for delta <= 1e-12 { // strictly positive CCW sweep
			delta += 2 * math.Pi
		}
		if delta < bestAngle {
			bestAngle = delta
			best = nb
		}
	}
	return best
}

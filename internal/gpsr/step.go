// The pure GPSR forwarding decision, factored out of Router.Handle so the
// live daemon (internal/live) makes byte-for-byte the same next-hop choices
// over a UDP socket that the simulator makes over the event engine. The
// exact-path sim-vs-live smoke (live's five-node frozen topology) holds
// precisely because both sides call Step.

package gpsr

import (
	"alertmanet/internal/geo"
	"alertmanet/internal/medium"
)

// ForwardState is the per-packet routing state GPSR carries between hops:
// the greedy/perimeter mode, the distance at which perimeter recovery was
// entered, the previous holder (the right-hand rule's reference edge), and
// the first perimeter edge (face-tour loop detection). The simulator keeps
// it inside Packet; the live wire codec carries it in every data frame.
type ForwardState struct {
	Mode      Mode
	EntryDist float64
	Prev      medium.NodeID
	FirstFrom medium.NodeID
	FirstTo   medium.NodeID
}

// NewForwardState returns the state of a freshly launched packet.
func NewForwardState() ForwardState {
	return ForwardState{Mode: Greedy, Prev: NoDeliverTo,
		FirstFrom: NoDeliverTo, FirstTo: NoDeliverTo}
}

// StepVerdict is the outcome of one forwarding decision.
type StepVerdict uint8

const (
	// StepForward means the packet moves to the returned next hop.
	StepForward StepVerdict = iota
	// StepArrived means the holder is locally closest to the target and
	// closest-node termination applies — ALERT's random-forwarder rule.
	StepArrived
	// StepDeadEnd means perimeter recovery failed: the planar graph is
	// empty or the right-hand walk completed a face tour with no
	// progress. The packet is undeliverable from here.
	StepDeadEnd
)

// Step makes one GPSR forwarding decision at the node holding the packet:
// greedy toward dest, or a right-hand perimeter walk over the planarized
// neighbor graph when greedy hits a dead end (closestTerminates false).
//
//   - selfPos is the holder's position, nbrs its beaconed neighbor table.
//   - prevPos is the previous holder's position (the perimeter reference
//     edge); it is read only when st.Prev != NoDeliverTo.
//   - closestTerminates selects ALERT's rule: a greedy dead end terminates
//     routing at the locally-closest holder instead of entering recovery.
//   - scratch is the planarization work buffer, returned possibly grown so
//     callers can reuse it allocation-free across hops.
//
// st is updated in place (mode transitions, loop-detection edges); entered
// reports that this step switched the packet into perimeter mode.
func Step(cur medium.NodeID, selfPos, prevPos, dest geo.Point,
	closestTerminates bool, rangeM float64, planarization Planarization,
	nbrs, scratch []medium.Neighbor, st *ForwardState,
) (next medium.NodeID, verdict StepVerdict, entered bool, scratchOut []medium.Neighbor) {
	selfDist := selfPos.Dist(dest)
	if st.Mode == Perimeter && selfDist < st.EntryDist {
		// Closer than where we entered recovery: back to greedy.
		st.Mode = Greedy
	}

	if st.Mode == Greedy {
		// Prefer links comfortably inside the radio range: beacon
		// positions are up to a hello interval stale, so a neighbor at
		// the very fringe may have drifted out by delivery time (see
		// the commentary in Router.Handle).
		safe := rangeM * SafeRangeFactor
		best := NoDeliverTo
		bestDist := selfDist
		for _, nb := range nbrs {
			if selfPos.Dist(nb.Pos) > safe {
				continue
			}
			if d := nb.Pos.Dist(dest); d < bestDist {
				best, bestDist = nb.ID, d
			}
		}
		if best == NoDeliverTo {
			for _, nb := range nbrs {
				if d := nb.Pos.Dist(dest); d < bestDist {
					best, bestDist = nb.ID, d
				}
			}
		}
		if best != NoDeliverTo {
			return best, StepForward, false, scratch
		}
		// Dead end. In closest-node mode this IS the arrival: the
		// holder is locally closest to the target (the RF rule).
		if closestTerminates {
			return NoDeliverTo, StepArrived, false, scratch
		}
		st.Mode = Perimeter
		st.EntryDist = selfDist
		st.FirstFrom, st.FirstTo = NoDeliverTo, NoDeliverTo
		entered = true
	}

	// Perimeter forwarding over the planar subgraph.
	var planar []medium.Neighbor
	if planarization == RelativeNeighborhood {
		planar = planarizeRNG(scratch[:0], selfPos, nbrs)
	} else {
		planar = planarize(scratch[:0], selfPos, nbrs)
	}
	if len(planar) == 0 {
		return NoDeliverTo, StepDeadEnd, entered, planar
	}
	ref := dest
	if st.Prev != NoDeliverTo {
		ref = prevPos
	}
	nb := rightHand(selfPos, ref, planar)
	if st.FirstFrom == NoDeliverTo {
		st.FirstFrom, st.FirstTo = cur, nb.ID
	} else if cur == st.FirstFrom && nb.ID == st.FirstTo {
		// Completed a full face tour with no progress: unreachable.
		return NoDeliverTo, StepDeadEnd, entered, planar
	}
	return nb.ID, StepForward, entered, planar
}

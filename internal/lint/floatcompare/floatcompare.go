// Package floatcompare defines an analyzer guarding the numeric packages
// against exact floating-point equality. In internal/geo, internal/metrics,
// internal/stats, internal/medium and internal/sim an == between floats is
// almost always a latent bug: zone partition geometry, aggregate statistics,
// beacon-clock tick derivation and event scheduling feed the paper's
// figures, and a comparison that holds on one architecture's FMA contraction
// and fails on another quietly changes results. (The helloTime tick-boundary
// bug this repo shipped with — int(now/interval) landing on the previous
// beacon at exact multiples of 0.3 — is exactly the class of defect this
// contract exists to surface.)
package floatcompare

import (
	"go/ast"
	"go/token"
	"go/types"
	"regexp"

	"alertmanet/internal/lint/lintutil"

	"golang.org/x/tools/go/analysis"
	"golang.org/x/tools/go/analysis/passes/inspect"
	"golang.org/x/tools/go/ast/inspector"
)

// Marker is the escape-hatch comment: //lint:allowfloatcompare <reason>.
const Marker = "allowfloatcompare"

// Packages are the numeric packages the contract covers. Elsewhere float
// equality is left to reviewers: protocol code compares simulated timestamps
// that are copied, never recomputed, so exact equality is meaningful there.
// internal/medium and internal/sim joined the list when the beacon-clock and
// ticker-drift fixes landed: both bugs were exact-float-arithmetic defects in
// clock derivation, precisely this analyzer's beat. internal/experiment,
// internal/campaign and internal/telemetry followed: they aggregate,
// round-trip and stream the same float results, where an exact compare is
// either a latent bug or a deliberate bit-identity check worth a recorded
// reason.
var Packages = []string{
	"internal/geo", "internal/metrics", "internal/stats",
	"internal/medium", "internal/sim",
	"internal/experiment", "internal/campaign", "internal/telemetry",
}

// epsilonHelper matches function names that exist to encapsulate a tolerance
// comparison; inside them exact comparisons are the implementation.
var epsilonHelper = regexp.MustCompile(`(?i)(approx|almost|epsilon|nearly)`)

var Analyzer = &analysis.Analyzer{
	Name: "floatcompare",
	Doc: "forbid exact float equality in the numeric packages\n\n" +
		"In internal/geo, internal/metrics, internal/stats, internal/medium,\n" +
		"internal/sim, internal/experiment, internal/campaign and internal/telemetry,\n" +
		"== and != between floating-point operands must go through an\n" +
		"epsilon helper (a function whose name contains approx/almost/epsilon/nearly).\n" +
		"_test.go files are exempt.\n" +
		"Escape hatch: //lint:allowfloatcompare <reason>.",
	Requires: []*analysis.Analyzer{inspect.Analyzer},
	Run:      run,
}

func run(pass *analysis.Pass) (interface{}, error) {
	if !lintutil.PackageMatchesAny(pass.Pkg.Path(), Packages) {
		return nil, nil
	}
	ins := pass.ResultOf[inspect.Analyzer].(*inspector.Inspector)
	markers := lintutil.NewMarkers(pass)

	ins.WithStack([]ast.Node{(*ast.BinaryExpr)(nil)}, func(n ast.Node, push bool, stack []ast.Node) bool {
		if !push {
			return false
		}
		be := n.(*ast.BinaryExpr)
		if be.Op != token.EQL && be.Op != token.NEQ {
			return true
		}
		if !isFloat(pass.TypesInfo.TypeOf(be.X)) && !isFloat(pass.TypesInfo.TypeOf(be.Y)) {
			return true
		}
		if lintutil.IsTestFile(pass, be.Pos()) {
			return true
		}
		if epsilonHelper.MatchString(lintutil.EnclosingFuncName(stack)) {
			return true
		}
		if _, ok := markers.Reason(be.Pos(), Marker); ok {
			return true
		}
		pass.Reportf(be.OpPos,
			"exact float comparison (%s) in a numeric package: use an epsilon helper or annotate //lint:allowfloatcompare <reason>",
			be.Op)
		return true
	})
	return nil, nil
}

func isFloat(t types.Type) bool {
	if t == nil {
		return false
	}
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsFloat != 0
}

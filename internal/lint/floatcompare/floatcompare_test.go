package floatcompare_test

import (
	"testing"

	"alertmanet/internal/lint/floatcompare"
	"alertmanet/internal/lint/linttest"
)

func TestFloatCompare(t *testing.T) {
	linttest.Run(t, floatcompare.Analyzer, "geo", "other")
}

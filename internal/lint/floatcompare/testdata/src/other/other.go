// Fixture: a package outside the numeric set; the contract does not apply
// and nothing here is flagged.
package other

// Same compares simulated timestamps that are copied, never recomputed.
func Same(a, b float64) bool {
	return a == b
}

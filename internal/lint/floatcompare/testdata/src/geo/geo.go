// Fixture: a package whose final path element matches internal/geo, so the
// float-equality contract applies.
package geo

// bad compares recomputed coordinates exactly.
func bad(a, b float64) bool {
	return a == b // want `exact float comparison \(==\)`
}

// badNeq is the negated form.
func badNeq(a, b float64) bool {
	return a != b // want `exact float comparison \(!=\)`
}

// ApproxEqual is an epsilon helper: exact comparisons are its
// implementation and are accepted.
func ApproxEqual(a, b, eps float64) bool {
	if a == b {
		return true
	}
	d := a - b
	if d < 0 {
		d = -d
	}
	return d < eps
}

// intsFine compares integers, which is always exact.
func intsFine(a, b int) bool {
	return a == b
}

// annotated carries the escape hatch with a reason and is accepted.
func annotated(a float64) bool {
	return a == 0 //lint:allowfloatcompare fixture: zero is assigned, never computed
}

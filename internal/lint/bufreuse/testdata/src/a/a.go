// Fixture: *Into functions retaining (or correctly borrowing) the caller's
// reusable buffer.
package a

// Entry is one query result.
type Entry struct{ ID int }

// Table is a queryable structure with an illegal buffer cache.
type Table struct {
	entries []Entry
	cache   []Entry
	sink    chan []Entry
}

// EntriesInto is the approved shape: append into dst[:0], return the
// possibly-regrown slice, retain nothing.
func (t *Table) EntriesInto(dst []Entry) []Entry {
	out := dst[:0]
	for _, e := range t.entries {
		out = append(out, e)
	}
	return out
}

// BadCacheInto stores the borrowed buffer into receiver state: the next
// caller query and the cache would share one backing array.
func (t *Table) BadCacheInto(dst []Entry) []Entry {
	out := dst[:0]
	out = append(out, t.entries...)
	t.cache = out // want `store retains the caller's reusable buffer`
	return out
}

// BadFieldInto stores the parameter itself, not even a derived local.
func (t *Table) BadFieldInto(dst []Entry) {
	t.cache = dst // want `store retains the caller's reusable buffer`
}

// lastSeen is package state; parking the buffer there outlives every call.
var lastSeen []Entry

// BadGlobalInto retains the buffer in a package variable.
func BadGlobalInto(dst []Entry) []Entry {
	lastSeen = dst // want `store retains the caller's reusable buffer`
	return dst
}

// BadSendInto hands the buffer to another goroutine via a channel.
func (t *Table) BadSendInto(dst []Entry) {
	t.sink <- dst // want `channel send retains the caller's reusable buffer`
}

// BadGoCaptureInto leaks the buffer into a goroutine closure.
func (t *Table) BadGoCaptureInto(dst []Entry) {
	out := dst[:0]
	go func() {
		_ = out // want `goroutine capture retains the caller's reusable buffer`
	}()
}

// BadGoArgInto passes the buffer to a goroutine call.
func BadGoArgInto(dst []Entry, consume func([]Entry)) {
	go consume(dst) // want `goroutine argument retains the caller's reusable buffer`
}

// GoodCopyInto may keep a private copy — fresh storage, no aliasing.
func (t *Table) GoodCopyInto(dst []Entry) []Entry {
	out := dst[:0]
	out = append(out, t.entries...)
	t.cache = append([]Entry(nil), out...)
	return out
}

// AnnotatedInto carries a reviewed escape hatch and is accepted.
func (t *Table) AnnotatedInto(dst []Entry) []Entry {
	//lint:allowbufreuse fixture: t.cache is documented as aliasing the caller's buffer until the next query
	t.cache = dst
	return dst
}

// PlainInto has no slice parameter, so the contract does not apply.
func (t *Table) PlainInto(n int) int { return n + 1 }

// retain is not an *Into function; ordinary slice stores are fine.
func (t *Table) retain(s []Entry) { t.cache = s }

package bufreuse_test

import (
	"testing"

	"alertmanet/internal/lint/bufreuse"
	"alertmanet/internal/lint/linttest"
)

func TestBufReuse(t *testing.T) {
	linttest.Run(t, bufreuse.Analyzer, "a")
}

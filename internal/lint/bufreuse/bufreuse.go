// Package bufreuse defines an analyzer enforcing the reusable-query-buffer
// contract from the PR 6 hot-path pass. Functions named *Into take a
// caller-owned destination slice (NeighborsInto, NodesWithinInto,
// NodesInInto), append into dst[:0] and hand the possibly-regrown slice
// back; the caller recycles it across queries. That only works if the callee
// treats the buffer as borrowed: it may append, reslice and return it, but
// must never retain it — a store into receiver or package state, a channel
// send, or an escaping closure would make callee and caller silently share
// one backing array across calls.
package bufreuse

import (
	"go/ast"
	"go/types"
	"strings"

	"alertmanet/internal/lint/lintutil"

	"golang.org/x/tools/go/analysis"
	"golang.org/x/tools/go/analysis/passes/inspect"
	"golang.org/x/tools/go/ast/inspector"
)

// Marker is the escape-hatch comment: //lint:allowbufreuse <reason>.
const Marker = "allowbufreuse"

var Analyzer = &analysis.Analyzer{
	Name: "bufreuse",
	Doc: "forbid *Into functions from retaining the caller's buffer\n\n" +
		"A function whose name ends in Into borrows its slice parameters: it may\n" +
		"append into them, reslice them and return them, but must not store them\n" +
		"(or a local aliasing them) into fields, package variables, maps or slices,\n" +
		"send them on a channel, or capture them in a goroutine closure — the\n" +
		"caller reuses the buffer on the next query. _test.go files are exempt.\n" +
		"Escape hatch: //lint:allowbufreuse <reason>.",
	Requires: []*analysis.Analyzer{inspect.Analyzer},
	Run:      run,
}

func run(pass *analysis.Pass) (interface{}, error) {
	ins := pass.ResultOf[inspect.Analyzer].(*inspector.Inspector)
	markers := lintutil.NewMarkers(pass)

	ins.Preorder([]ast.Node{(*ast.FuncDecl)(nil)}, func(n ast.Node) {
		fd := n.(*ast.FuncDecl)
		if fd.Body == nil || !strings.HasSuffix(fd.Name.Name, "Into") {
			return
		}
		if lintutil.IsTestFile(pass, fd.Pos()) {
			return
		}
		bufs := bufferParams(pass, fd)
		if len(bufs) == 0 {
			return
		}
		checkFunc(pass, markers, fd, bufs)
	})
	return nil, nil
}

// bufferParams returns the slice-typed parameters of an *Into function —
// the borrowed buffers the contract covers.
func bufferParams(pass *analysis.Pass, fd *ast.FuncDecl) map[types.Object]bool {
	bufs := map[types.Object]bool{}
	for _, field := range fd.Type.Params.List {
		for _, name := range field.Names {
			obj := pass.TypesInfo.ObjectOf(name)
			if obj == nil {
				continue
			}
			if _, ok := obj.Type().Underlying().(*types.Slice); ok {
				bufs[obj] = true
			}
		}
	}
	return bufs
}

func checkFunc(pass *analysis.Pass, markers *lintutil.Markers, fd *ast.FuncDecl, aliases map[types.Object]bool) {
	isAlias := func(e ast.Expr) bool { return aliasExpr(pass, aliases, e) }

	// Propagate aliasing through plain local assignments (out := dst[:0],
	// out = append(out, x)); two passes reach the fixpoint for the chains
	// that occur in practice.
	for i := 0; i < 2; i++ {
		ast.Inspect(fd.Body, func(n ast.Node) bool {
			as, ok := n.(*ast.AssignStmt)
			if !ok || len(as.Lhs) != len(as.Rhs) {
				return true
			}
			for i, lhs := range as.Lhs {
				id, ok := lhs.(*ast.Ident)
				if !ok || !isAlias(as.Rhs[i]) {
					continue
				}
				if obj := pass.TypesInfo.ObjectOf(id); obj != nil {
					aliases[obj] = true
				}
			}
			return true
		})
	}

	report := func(n ast.Node, what string) {
		if _, ok := markers.Reason(n.Pos(), Marker); ok {
			return
		}
		pass.Reportf(n.Pos(),
			"%s retains the caller's reusable buffer in an Into function: the caller recycles it on the next query, so both would share one backing array; copy the data or annotate //lint:allowbufreuse <reason>", what)
	}

	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch x := n.(type) {
		case *ast.AssignStmt:
			if len(x.Lhs) != len(x.Rhs) {
				return true
			}
			for i, lhs := range x.Lhs {
				if !isAlias(x.Rhs[i]) {
					continue
				}
				// Assigning to a plain local just extends the alias set;
				// anything with structure (a field, an element, a deref, a
				// package variable) outlives the call.
				if id, ok := lhs.(*ast.Ident); ok {
					if obj := pass.TypesInfo.ObjectOf(id); obj == nil || obj.Parent() != obj.Pkg().Scope() {
						continue
					}
				}
				report(x, "store")
			}
		case *ast.SendStmt:
			if isAlias(x.Value) {
				report(x, "channel send")
			}
		case *ast.GoStmt:
			// A goroutine capturing (or receiving) the buffer outlives the
			// call by construction.
			for _, arg := range x.Call.Args {
				if isAlias(arg) {
					report(arg, "goroutine argument")
				}
			}
			if lit, ok := x.Call.Fun.(*ast.FuncLit); ok {
				ast.Inspect(lit.Body, func(m ast.Node) bool {
					if id, ok := m.(*ast.Ident); ok {
						if obj := pass.TypesInfo.Uses[id]; obj != nil && aliases[obj] {
							report(id, "goroutine capture")
						}
					}
					return true
				})
			}
		}
		return true
	})
}

// aliasExpr reports whether e evaluates to (a reslice of) a borrowed buffer:
// the parameter itself, an aliasing local, a slice expression over either,
// or an append destined into one (append may grow in place).
func aliasExpr(pass *analysis.Pass, aliases map[types.Object]bool, e ast.Expr) bool {
	switch x := e.(type) {
	case *ast.ParenExpr:
		return aliasExpr(pass, aliases, x.X)
	case *ast.SliceExpr:
		return aliasExpr(pass, aliases, x.X)
	case *ast.Ident:
		obj := pass.TypesInfo.ObjectOf(x)
		return obj != nil && aliases[obj]
	case *ast.CallExpr:
		if id, ok := x.Fun.(*ast.Ident); ok && id.Name == "append" && len(x.Args) > 0 {
			if _, isBuiltin := pass.TypesInfo.Uses[id].(*types.Builtin); isBuiltin {
				// Variadic `buf...` element copies are not aliases; only
				// the destination carries the backing array forward.
				return aliasExpr(pass, aliases, x.Args[0])
			}
		}
	}
	return false
}

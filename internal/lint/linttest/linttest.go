// Package linttest runs an analyzer over fixture packages and checks its
// diagnostics against // want comments — a self-contained replacement for
// golang.org/x/tools/go/analysis/analysistest, which (unlike the analysis
// core this repo vendors from the Go toolchain) depends on go/packages and
// cannot be vendored offline.
//
// Fixtures live under testdata/src/<importpath>/ next to the analyzer's
// test, mirroring analysistest's layout. Imports between fixture packages
// resolve inside testdata/src; everything else falls back to the standard
// library, type-checked from source. Expectations are analysistest-style:
//
//	rand.Intn(6) // want `use of math/rand.Intn`
//
// with one or more backquoted or double-quoted regexps per comment, matched
// against the diagnostics reported on that line. A fixture line with no
// want comment must produce no diagnostic, so every accepted-pattern case
// is asserted simply by existing.
package linttest

import (
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"regexp"
	"runtime"
	"sort"
	"strings"
	"testing"

	"golang.org/x/tools/go/analysis"
)

// Run loads each fixture package under testdata/src and applies the
// analyzer (and, transitively, its Requires dependencies), failing t on any
// mismatch between reported diagnostics and // want expectations.
func Run(t *testing.T, a *analysis.Analyzer, pkgs ...string) {
	t.Helper()
	l := newLoader("testdata/src")
	for _, pkg := range pkgs {
		p, err := l.load(pkg)
		if err != nil {
			t.Fatalf("loading fixture package %q: %v", pkg, err)
		}
		diags, err := runAnalyzer(a, p, map[*analysis.Analyzer][]analysis.Diagnostic{})
		if err != nil {
			t.Fatalf("running %s on %q: %v", a.Name, pkg, err)
		}
		checkWants(t, l.fset, p, diags)
	}
}

// fixturePkg is one type-checked fixture package.
type fixturePkg struct {
	path  string
	files []*ast.File
	pkg   *types.Package
	info  *types.Info
	fset  *token.FileSet
}

type loader struct {
	root   string
	fset   *token.FileSet
	stdlib types.Importer
	loaded map[string]*fixturePkg
}

func newLoader(root string) *loader {
	fset := token.NewFileSet()
	return &loader{
		root:   root,
		fset:   fset,
		stdlib: importer.ForCompiler(fset, "source", nil),
		loaded: map[string]*fixturePkg{},
	}
}

// Import implements types.Importer: fixture packages shadow the standard
// library, so a fixture can stand in for internal/rng under the path "rng".
func (l *loader) Import(path string) (*types.Package, error) {
	if dir := filepath.Join(l.root, path); isDir(dir) {
		p, err := l.load(path)
		if err != nil {
			return nil, err
		}
		return p.pkg, nil
	}
	return l.stdlib.Import(path)
}

func (l *loader) load(path string) (*fixturePkg, error) {
	if p, ok := l.loaded[path]; ok {
		return p, nil
	}
	dir := filepath.Join(l.root, path)
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var files []*ast.File
	for _, e := range entries {
		if e.IsDir() || !strings.HasSuffix(e.Name(), ".go") {
			continue
		}
		f, err := parser.ParseFile(l.fset, filepath.Join(dir, e.Name()), nil, parser.ParseComments)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	if len(files) == 0 {
		return nil, fmt.Errorf("no Go files in %s", dir)
	}
	info := &types.Info{
		Types:        map[ast.Expr]types.TypeAndValue{},
		Instances:    map[*ast.Ident]types.Instance{},
		Defs:         map[*ast.Ident]types.Object{},
		Uses:         map[*ast.Ident]types.Object{},
		Implicits:    map[ast.Node]types.Object{},
		Selections:   map[*ast.SelectorExpr]*types.Selection{},
		Scopes:       map[ast.Node]*types.Scope{},
		FileVersions: map[*ast.File]string{},
	}
	conf := types.Config{Importer: l}
	pkg, err := conf.Check(path, l.fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("type-checking: %w", err)
	}
	p := &fixturePkg{path: path, files: files, pkg: pkg, info: info, fset: l.fset}
	l.loaded[path] = p
	return p, nil
}

// runAnalyzer applies a (running its Requires first) and returns its
// diagnostics.
func runAnalyzer(a *analysis.Analyzer, p *fixturePkg, seen map[*analysis.Analyzer][]analysis.Diagnostic) ([]analysis.Diagnostic, error) {
	resultOf := map[*analysis.Analyzer]interface{}{}
	var run func(a *analysis.Analyzer) (interface{}, error)
	done := map[*analysis.Analyzer]interface{}{}
	run = func(a *analysis.Analyzer) (interface{}, error) {
		if res, ok := done[a]; ok {
			return res, nil
		}
		for _, req := range a.Requires {
			res, err := run(req)
			if err != nil {
				return nil, err
			}
			resultOf[req] = res
		}
		var diags []analysis.Diagnostic
		pass := &analysis.Pass{
			Analyzer:   a,
			Fset:       p.fset,
			Files:      p.files,
			Pkg:        p.pkg,
			TypesInfo:  p.info,
			TypesSizes: types.SizesFor("gc", runtime.GOARCH),
			ResultOf:   copyResults(resultOf),
			Report:     func(d analysis.Diagnostic) { diags = append(diags, d) },
			ReadFile:   os.ReadFile,
			ImportObjectFact: func(types.Object, analysis.Fact) bool {
				return false
			},
			ImportPackageFact: func(*types.Package, analysis.Fact) bool {
				return false
			},
			ExportObjectFact:  func(types.Object, analysis.Fact) {},
			ExportPackageFact: func(analysis.Fact) {},
			AllObjectFacts:    func() []analysis.ObjectFact { return nil },
			AllPackageFacts:   func() []analysis.PackageFact { return nil },
		}
		res, err := a.Run(pass)
		if err != nil {
			return nil, fmt.Errorf("%s: %w", a.Name, err)
		}
		seen[a] = diags
		done[a] = res
		return res, nil
	}
	if _, err := run(a); err != nil {
		return nil, err
	}
	return seen[a], nil
}

func copyResults(m map[*analysis.Analyzer]interface{}) map[*analysis.Analyzer]interface{} {
	out := make(map[*analysis.Analyzer]interface{}, len(m))
	for k, v := range m {
		out[k] = v
	}
	return out
}

// wantRe extracts the quoted regexps of a // want comment.
var wantRe = regexp.MustCompile("`([^`]*)`|\"([^\"]*)\"")

type expectation struct {
	file    string
	line    int
	pattern *regexp.Regexp
	matched bool
}

func checkWants(t *testing.T, fset *token.FileSet, p *fixturePkg, diags []analysis.Diagnostic) {
	t.Helper()
	var wants []*expectation
	for _, f := range p.files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				rest, ok := strings.CutPrefix(strings.TrimSpace(strings.TrimPrefix(c.Text, "//")), "want ")
				if !ok {
					continue
				}
				pos := fset.Position(c.Pos())
				for _, m := range wantRe.FindAllStringSubmatch(rest, -1) {
					expr := m[1]
					if expr == "" {
						expr = m[2]
					}
					re, err := regexp.Compile(expr)
					if err != nil {
						t.Fatalf("%s:%d: bad want pattern %q: %v", pos.Filename, pos.Line, expr, err)
					}
					wants = append(wants, &expectation{file: pos.Filename, line: pos.Line, pattern: re})
				}
			}
		}
	}

	for _, d := range diags {
		pos := fset.Position(d.Pos)
		found := false
		for _, w := range wants {
			if !w.matched && w.file == pos.Filename && w.line == pos.Line && w.pattern.MatchString(d.Message) {
				w.matched = true
				found = true
				break
			}
		}
		if !found {
			t.Errorf("%s:%d: unexpected diagnostic: %s", pos.Filename, pos.Line, d.Message)
		}
	}
	sort.Slice(wants, func(i, j int) bool {
		if wants[i].file != wants[j].file {
			return wants[i].file < wants[j].file
		}
		return wants[i].line < wants[j].line
	})
	for _, w := range wants {
		if !w.matched {
			t.Errorf("%s:%d: no diagnostic matching %q", w.file, w.line, w.pattern)
		}
	}
}

func isDir(path string) bool {
	fi, err := os.Stat(path)
	return err == nil && fi.IsDir()
}

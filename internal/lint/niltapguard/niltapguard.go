// Package niltapguard defines an analyzer enforcing the telemetry overhead
// contract from PR 4/PR 6: a disabled tap (nil) must cost one predictable
// branch and nothing else. Every emit site in simulation code is written
//
//	if tap != nil { tap.Forward(now, trace, from, to, mode) }
//
// — the guard keeps the call (and its argument evaluation) entirely off the
// disabled path, and scalar arguments keep the enabled path allocation-lean.
// An unguarded emit is safe only by the Tap methods' nil-receiver checks,
// which still pays a call and argument evaluation per event on the hottest
// paths in the tree; fmt formatting or a closure in the arguments allocates
// on every emitted event. TestNilTapZeroAlloc pins the contract dynamically;
// this analyzer rejects the shape at vet time.
package niltapguard

import (
	"go/ast"
	"go/token"
	"go/types"

	"alertmanet/internal/lint/lintutil"

	"golang.org/x/tools/go/analysis"
	"golang.org/x/tools/go/analysis/passes/inspect"
	"golang.org/x/tools/go/ast/inspector"
)

// Marker is the escape-hatch comment: //lint:allowniltap <reason>.
const Marker = "allowniltap"

// TapPackages name the package that owns the Tap type; fixture stand-ins
// under a short "telemetry" import path match by final path element. The
// package itself is exempt (its methods are the nil-safe implementation).
var TapPackages = []string{"internal/telemetry"}

// TapTypeName is the tap type's name within TapPackages.
const TapTypeName = "Tap"

// teardown are the once-per-run Tap methods that read state or flush output
// rather than emit events; they run after the drain, outside any hot path,
// and are nil-receiver-safe, so they need no guard.
var teardown = map[string]bool{
	"Flush":         true,
	"Events":        true,
	"Registry":      true,
	"WriteSnapshot": true,
}

var Analyzer = &analysis.Analyzer{
	Name: "niltapguard",
	Doc: "require telemetry emits behind an `if tap != nil` guard with scalar args\n\n" +
		"Calls to *telemetry.Tap emit methods in simulation packages must sit inside\n" +
		"an if whose condition nil-checks the same tap expression, so the disabled\n" +
		"path is one branch with no call and no argument evaluation. Emit arguments\n" +
		"must not call fmt functions or build closures (per-event allocations).\n" +
		"Teardown methods (Flush, Events, Registry, WriteSnapshot), cmd/ packages\n" +
		"and _test.go files are exempt. Escape hatch: //lint:allowniltap <reason>.",
	Requires: []*analysis.Analyzer{inspect.Analyzer},
	Run:      run,
}

func run(pass *analysis.Pass) (interface{}, error) {
	// The telemetry package implements the taps; command-line binaries
	// record at human timescales where a guard buys nothing.
	if lintutil.PackageMatchesAny(pass.Pkg.Path(), TapPackages) ||
		lintutil.HasPathElement(pass.Pkg.Path(), "cmd") {
		return nil, nil
	}
	ins := pass.ResultOf[inspect.Analyzer].(*inspector.Inspector)
	markers := lintutil.NewMarkers(pass)

	ins.WithStack([]ast.Node{(*ast.CallExpr)(nil)}, func(n ast.Node, push bool, stack []ast.Node) bool {
		if !push {
			return false
		}
		call := n.(*ast.CallExpr)
		sel, ok := call.Fun.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		if !lintutil.NamedTypeIs(pass.TypesInfo.TypeOf(sel.X), TapTypeName, TapPackages) {
			return true
		}
		if teardown[sel.Sel.Name] || lintutil.IsTestFile(pass, call.Pos()) {
			return true
		}
		if _, ok := markers.Reason(call.Pos(), Marker); ok {
			return true
		}
		recv := types.ExprString(sel.X)
		if !nilGuarded(pass, stack, recv) {
			pass.Reportf(call.Pos(),
				"telemetry emit %s.%s outside an `if %s != nil` guard: the disabled path must be one branch with no call and no argument evaluation (guard it or annotate //lint:allowniltap <reason>)",
				recv, sel.Sel.Name, recv)
		}
		checkArgs(pass, call)
		return true
	})
	return nil, nil
}

// nilGuarded reports whether some enclosing if statement's condition
// contains a `<recv> != nil` conjunct for the same receiver expression
// (textually — r.tap guarded by r.tap, a local tap by tap).
func nilGuarded(pass *analysis.Pass, stack []ast.Node, recv string) bool {
	for i := len(stack) - 1; i >= 0; i-- {
		ifStmt, ok := stack[i].(*ast.IfStmt)
		if !ok {
			continue
		}
		if condNilChecks(ifStmt.Cond, recv) {
			return true
		}
	}
	return false
}

// condNilChecks reports whether cond contains, possibly under &&, a binary
// `expr != nil` (either operand order) whose expr prints as recv.
func condNilChecks(cond ast.Expr, recv string) bool {
	switch x := cond.(type) {
	case *ast.ParenExpr:
		return condNilChecks(x.X, recv)
	case *ast.BinaryExpr:
		if x.Op == token.LAND {
			return condNilChecks(x.X, recv) || condNilChecks(x.Y, recv)
		}
		if x.Op != token.NEQ {
			return false
		}
		return (isNilIdent(x.Y) && types.ExprString(x.X) == recv) ||
			(isNilIdent(x.X) && types.ExprString(x.Y) == recv)
	}
	return false
}

func isNilIdent(e ast.Expr) bool {
	id, ok := e.(*ast.Ident)
	return ok && id.Name == "nil"
}

// checkArgs flags per-event allocation hazards in emit arguments: fmt calls
// and function literals. strconv, plain selectors and method calls that
// return scalars are fine.
func checkArgs(pass *analysis.Pass, call *ast.CallExpr) {
	for _, arg := range call.Args {
		ast.Inspect(arg, func(n ast.Node) bool {
			switch x := n.(type) {
			case *ast.FuncLit:
				pass.Reportf(x.Pos(),
					"closure in telemetry emit arguments: emit args must be scalars (the closure allocates on every emitted event)")
				return false
			case *ast.SelectorExpr:
				if id, ok := x.X.(*ast.Ident); ok {
					if pkg, ok := pass.TypesInfo.Uses[id].(*types.PkgName); ok && pkg.Imported().Path() == "fmt" {
						pass.Reportf(x.Pos(),
							"fmt call in telemetry emit arguments: emit args must be scalars (format with strconv at the consumer, not per event)")
						return false
					}
				}
			}
			return true
		})
	}
}

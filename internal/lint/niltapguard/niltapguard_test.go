package niltapguard_test

import (
	"testing"

	"alertmanet/internal/lint/linttest"
	"alertmanet/internal/lint/niltapguard"
)

func TestNilTapGuard(t *testing.T) {
	linttest.Run(t, niltapguard.Analyzer, "a")
}

// Fixture: telemetry emits with and without the `if tap != nil` guard.
package a

import (
	"fmt"

	"telemetry"
)

// Router carries an optional tap, like gpsr.Router and medium.Medium.
type Router struct {
	tap *telemetry.Tap
	now float64
}

// goodGuarded is the canonical emit shape.
func (r *Router) goodGuarded(trace, from, to int) {
	if r.tap != nil {
		r.tap.Forward(r.now, trace, from, to, "greedy")
	}
}

// goodGuardedConjunct guards inside a compound condition.
func (r *Router) goodGuardedConjunct(trace, from, to int, verbose bool) {
	if verbose && r.tap != nil {
		r.tap.Forward(r.now, trace, from, to, "greedy")
	}
}

// goodLocalTap rebinds the tap locally; the guard matches the local name.
func (r *Router) goodLocalTap(trace, node, hops int) {
	tap := r.tap
	if tap != nil {
		tap.Hop(r.now, trace, node, hops)
	}
}

// badUnguarded pays the call and argument evaluation even when disabled.
func (r *Router) badUnguarded(trace, from, to int) {
	r.tap.Forward(r.now, trace, from, to, "greedy") // want `telemetry emit r\.tap\.Forward outside an .if r\.tap != nil. guard`
}

// badWrongGuard nil-checks a different expression than it emits on.
func (r *Router) badWrongGuard(other *Router, trace, node, hops int) {
	if other.tap != nil {
		r.tap.Hop(r.now, trace, node, hops) // want `telemetry emit r\.tap\.Hop outside an .if r\.tap != nil. guard`
	}
}

// badFmtArg formats per event: allocates on every emitted event.
func (r *Router) badFmtArg(trace, from, to int) {
	if r.tap != nil {
		r.tap.Forward(r.now, trace, from, to, fmt.Sprintf("mode-%d", from)) // want `fmt call in telemetry emit arguments`
	}
}

// goodTeardown calls once-per-run methods without a guard.
func (r *Router) goodTeardown() uint64 {
	r.tap.Flush()
	return r.tap.Events()
}

// annotated carries a reviewed escape hatch and is accepted.
func (r *Router) annotated(trace, node, hops int) {
	//lint:allowniltap fixture: cold path, one call per run
	r.tap.Hop(r.now, trace, node, hops)
}

// Fixture stand-in for internal/telemetry: the short import path
// "telemetry" matches the analyzer's package patterns by final path
// element, so this package itself is exempt (it implements the taps).
package telemetry

// Tap is one run's event stream; nil means telemetry is disabled.
type Tap struct {
	events uint64
}

// Forward records a routing forward (an emit method: guard required).
func (t *Tap) Forward(now float64, trace, from, to int, mode string) {
	if t == nil {
		return
	}
	t.events++
}

// Hop records a confirmed arrival (an emit method: guard required).
func (t *Tap) Hop(now float64, trace, node, hops int) {
	if t == nil {
		return
	}
	t.events++
}

// Events returns the emitted-event count (teardown: no guard required).
func (t *Tap) Events() uint64 {
	if t == nil {
		return 0
	}
	return t.events
}

// Flush drains buffered output (teardown: no guard required).
func (t *Tap) Flush() error { return nil }

// Package lint assembles the alertlint analyzer suite: the static half of
// the simulator's determinism guarantee. Each analyzer enforces one contract
// that makes a run a pure function of (Scenario, seed); DESIGN.md's
// "Determinism contract" section is the prose counterpart.
package lint

import (
	"alertmanet/internal/lint/floatcompare"
	"alertmanet/internal/lint/maporder"
	"alertmanet/internal/lint/norawrand"
	"alertmanet/internal/lint/nowallclock"
	"alertmanet/internal/lint/panicdiscipline"

	"golang.org/x/tools/go/analysis"
)

// Analyzers returns the full suite in a fresh slice, one analyzer per
// contract.
func Analyzers() []*analysis.Analyzer {
	return []*analysis.Analyzer{
		norawrand.Analyzer,
		nowallclock.Analyzer,
		maporder.Analyzer,
		panicdiscipline.Analyzer,
		floatcompare.Analyzer,
	}
}

// Package lint assembles the alertlint analyzer suite: the static half of
// the simulator's determinism guarantee. Each analyzer enforces one contract
// that makes a run a pure function of (Scenario, seed) — or, for the memory-
// discipline analyzers added with the PR 6 hot path, one contract that keeps
// the forwarding path allocation-free and the substrate single-goroutine;
// DESIGN.md's "Determinism contract" section is the prose counterpart.
package lint

import (
	"alertmanet/internal/lint/bufreuse"
	"alertmanet/internal/lint/floatcompare"
	"alertmanet/internal/lint/maporder"
	"alertmanet/internal/lint/niltapguard"
	"alertmanet/internal/lint/norawrand"
	"alertmanet/internal/lint/nowallclock"
	"alertmanet/internal/lint/panicdiscipline"
	"alertmanet/internal/lint/poollifetime"
	"alertmanet/internal/lint/sharedstate"

	"golang.org/x/tools/go/analysis"
)

// Analyzers returns the full suite in a fresh slice, one analyzer per
// contract: five determinism/error-discipline analyzers (PR 2) and four
// memory/goroutine-discipline analyzers guarding the pooled hot path and
// the coming sharded engine.
func Analyzers() []*analysis.Analyzer {
	return []*analysis.Analyzer{
		norawrand.Analyzer,
		nowallclock.Analyzer,
		maporder.Analyzer,
		panicdiscipline.Analyzer,
		floatcompare.Analyzer,
		poollifetime.Analyzer,
		bufreuse.Analyzer,
		niltapguard.Analyzer,
		sharedstate.Analyzer,
	}
}

// PackageGrant is one static package-level exemption an analyzer ships
// with: unlike //lint: annotations (per-site, audited by location), a
// grant exempts a whole package because the contract is inverted there —
// internal/rng is where raw randomness is supposed to live, internal/live
// is where the wall clock is supposed to be read.
type PackageGrant struct {
	Analyzer string
	Packages []string
	Reason   string
}

// PackageGrants lists every analyzer's static package allowlist so
// `alertlint -allowlist` can print the whole exemption surface — annotated
// sites and package grants — in one audit.
func PackageGrants() []PackageGrant {
	return []PackageGrant{
		{
			Analyzer: norawrand.Analyzer.Name,
			Packages: norawrand.AllowedPackages,
			Reason:   "the one wrapper turning raw randomness into seeded splittable streams",
		},
		{
			Analyzer: nowallclock.Analyzer.Name,
			Packages: nowallclock.AllowedPackages,
			Reason:   "the live transport layer paces emulated time against the real clock by design",
		},
	}
}

// Fixture: _test.go files may use math/rand freely (fuzzing inputs,
// shuffling cases); nothing here is flagged.
package a

import "math/rand"

func testHelper() int {
	return rand.Intn(3)
}

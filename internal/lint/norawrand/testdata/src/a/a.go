// Fixture: math/rand use in an ordinary simulation package.
package a

import "math/rand"

// bad draws from the global math/rand stream the experiment seed does not
// control.
func bad() int {
	return rand.Intn(6) // want `use of math/rand.Intn outside internal/rng`
}

// alsoBad constructs a private stream; both the constructor and the source
// are flagged.
func alsoBad() *rand.Rand {
	return rand.New(rand.NewSource(1)) // want `use of math/rand.New outside` `use of math/rand.NewSource outside`
}

// typeOnly mentions rand.Rand purely as a type, which draws nothing and is
// accepted.
func typeOnly(r *rand.Rand) int {
	if r == nil {
		return 0
	}
	return 1
}

// annotated carries the escape hatch with a reason and is accepted.
func annotated() int {
	//lint:allowrand fixture: demonstrates the reviewed escape hatch
	return rand.Intn(6)
}

// Fixture: the rng package itself is the one place raw math/rand is
// allowed — it wraps it into seeded streams. Nothing here is flagged.
package rng

import "math/rand"

// New returns a seeded stream.
func New(seed int64) *rand.Rand {
	return rand.New(rand.NewSource(seed))
}

// Package norawrand defines an analyzer enforcing the simulator's first
// determinism contract: all randomness flows through an injected
// *rng.Source. A call to a math/rand (or math/rand/v2) top-level function —
// including rand.New and rand.NewSource — anywhere outside internal/rng
// creates a random stream the experiment seed does not control, silently
// breaking seed reproducibility.
package norawrand

import (
	"go/ast"
	"go/types"

	"alertmanet/internal/lint/lintutil"

	"golang.org/x/tools/go/analysis"
	"golang.org/x/tools/go/analysis/passes/inspect"
	"golang.org/x/tools/go/ast/inspector"
)

// Marker is the escape-hatch comment: //lint:allowrand <reason>.
const Marker = "allowrand"

// AllowedPackages may use math/rand directly: internal/rng is the single
// place raw randomness is wrapped into seeded, splittable streams.
var AllowedPackages = []string{"internal/rng"}

var Analyzer = &analysis.Analyzer{
	Name: "norawrand",
	Doc: "forbid math/rand outside internal/rng\n\n" +
		"Every stochastic component must draw from an injected *rng.Source so a run\n" +
		"is a pure function of (Scenario, seed). References to math/rand top-level\n" +
		"functions (rand.Intn, rand.New, rand.NewSource, ...) outside internal/rng\n" +
		"and _test.go files are reported. Escape hatch: //lint:allowrand <reason>.",
	Requires: []*analysis.Analyzer{inspect.Analyzer},
	Run:      run,
}

var randPkgs = map[string]bool{
	"math/rand":    true,
	"math/rand/v2": true,
}

func run(pass *analysis.Pass) (interface{}, error) {
	if lintutil.PackageMatchesAny(pass.Pkg.Path(), AllowedPackages) {
		return nil, nil
	}
	ins := pass.ResultOf[inspect.Analyzer].(*inspector.Inspector)
	markers := lintutil.NewMarkers(pass)

	ins.Preorder([]ast.Node{(*ast.SelectorExpr)(nil)}, func(n ast.Node) {
		sel := n.(*ast.SelectorExpr)
		ident, ok := sel.X.(*ast.Ident)
		if !ok {
			return
		}
		pkgName, ok := pass.TypesInfo.Uses[ident].(*types.PkgName)
		if !ok || !randPkgs[pkgName.Imported().Path()] {
			return
		}
		// Referencing a type (rand.Rand, rand.Source in a signature) does
		// not draw randomness; only functions and variables do.
		if _, isType := pass.TypesInfo.Uses[sel.Sel].(*types.TypeName); isType {
			return
		}
		if lintutil.IsTestFile(pass, sel.Pos()) {
			return
		}
		if _, ok := markers.Reason(sel.Pos(), Marker); ok {
			return
		}
		pass.Reportf(sel.Pos(),
			"use of %s.%s outside internal/rng: draw randomness from an injected *rng.Source (or annotate //lint:allowrand <reason>)",
			pkgName.Imported().Path(), sel.Sel.Name)
	})
	return nil, nil
}

package norawrand_test

import (
	"testing"

	"alertmanet/internal/lint/linttest"
	"alertmanet/internal/lint/norawrand"
)

func TestNoRawRand(t *testing.T) {
	linttest.Run(t, norawrand.Analyzer, "a", "rng")
}

// Fixture: the live transport layer holds a package grant — its whole job
// is pacing emulated time against the real clock and arming real ARQ
// timers, so wall-clock reads here are the contract, not a violation.
// Nothing in this package is flagged.
package live

import "time"

// pace sleeps one compressed emulated second.
func pace(timescale float64) {
	time.Sleep(time.Duration(timescale * float64(time.Second)))
}

// deadline arms a real retransmission timer.
func deadline(d time.Duration, f func()) *time.Timer {
	return time.AfterFunc(d, f)
}

// stamp reads the host clock for run pacing.
func stamp() time.Time {
	return time.Now()
}

// Fixture: wall-clock reads in an ordinary simulation package.
package a

import "time"

// bad observes the host clock, coupling results to the machine.
func bad() time.Time {
	return time.Now() // want `time.Now reads the wall clock`
}

// sleepy waits on the host scheduler.
func sleepy() {
	time.Sleep(time.Second) // want `time.Sleep reads the wall clock`
}

// ticking subscribes to host-clock ticks.
func ticking() <-chan time.Time {
	return time.Tick(time.Second) // want `time.Tick reads the wall clock`
}

// okDuration does pure duration arithmetic on already-obtained values; the
// time package's data types are accepted.
func okDuration(d time.Duration) string {
	return (2 * d).String()
}

// okFormat formats a timestamp handed in by a caller.
func okFormat(t time.Time) string {
	return t.Format(time.RFC3339)
}

// annotated carries the escape hatch with a reason and is accepted.
func annotated() time.Time {
	//lint:allowwallclock fixture: demonstrates the reviewed escape hatch
	return time.Now()
}

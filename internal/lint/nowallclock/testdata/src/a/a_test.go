// Fixture: _test.go files may time themselves; nothing here is flagged.
package a

import "time"

func testStamp() time.Time {
	return time.Now()
}

// Fixture: packages under a cmd/ path element are CLI binaries, which may
// legitimately report wall-clock progress. Nothing here is flagged.
package tool

import "time"

// Stamp reports when the tool ran.
func Stamp() time.Time {
	return time.Now()
}

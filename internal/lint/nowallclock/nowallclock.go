// Package nowallclock defines an analyzer enforcing the simulator's second
// determinism contract: simulated components read time only from the
// sim.Engine virtual clock. A time.Now or time.Sleep inside a simulation
// package couples results to the host machine's wall clock and scheduler,
// which is exactly what the discrete-event engine exists to prevent.
package nowallclock

import (
	"go/ast"
	"go/types"

	"alertmanet/internal/lint/lintutil"

	"golang.org/x/tools/go/analysis"
	"golang.org/x/tools/go/analysis/passes/inspect"
	"golang.org/x/tools/go/ast/inspector"
)

// Marker is the escape-hatch comment: //lint:allowwallclock <reason>.
const Marker = "allowwallclock"

// AllowedPackages may read the wall clock wholesale: internal/live is the
// real-transport layer — its daemons pace emulated seconds against actual
// wall-clock time and arm real ARQ timers, which is precisely the coupling
// the simulator packages must avoid and the live harness exists to provide.
var AllowedPackages = []string{"internal/live"}

// Banned are the time-package functions that observe or wait on the wall
// clock. Pure data types (time.Duration arithmetic, time.Time formatting of
// an already-obtained value) remain fine.
var Banned = map[string]bool{
	"Now":       true,
	"Since":     true,
	"Until":     true,
	"Sleep":     true,
	"After":     true,
	"AfterFunc": true,
	"Tick":      true,
	"NewTimer":  true,
	"NewTicker": true,
}

var Analyzer = &analysis.Analyzer{
	Name: "nowallclock",
	Doc: "forbid wall-clock reads in simulation packages\n\n" +
		"Simulated time comes from sim.Engine.Now; time.Now/Since/Sleep/... in a\n" +
		"simulation package makes runs depend on the host scheduler. Packages under\n" +
		"a cmd/ element (CLI progress reporting), the AllowedPackages grants (the\n" +
		"live transport layer) and _test.go files are exempt.\n" +
		"Escape hatch: //lint:allowwallclock <reason>.",
	Requires: []*analysis.Analyzer{inspect.Analyzer},
	Run:      run,
}

func run(pass *analysis.Pass) (interface{}, error) {
	// Command-line binaries may legitimately report wall-clock progress.
	if lintutil.HasPathElement(pass.Pkg.Path(), "cmd") {
		return nil, nil
	}
	if lintutil.PackageMatchesAny(pass.Pkg.Path(), AllowedPackages) {
		return nil, nil
	}
	ins := pass.ResultOf[inspect.Analyzer].(*inspector.Inspector)
	markers := lintutil.NewMarkers(pass)

	ins.Preorder([]ast.Node{(*ast.SelectorExpr)(nil)}, func(n ast.Node) {
		sel := n.(*ast.SelectorExpr)
		ident, ok := sel.X.(*ast.Ident)
		if !ok {
			return
		}
		pkgName, ok := pass.TypesInfo.Uses[ident].(*types.PkgName)
		if !ok || pkgName.Imported().Path() != "time" || !Banned[sel.Sel.Name] {
			return
		}
		if lintutil.IsTestFile(pass, sel.Pos()) {
			return
		}
		if _, ok := markers.Reason(sel.Pos(), Marker); ok {
			return
		}
		pass.Reportf(sel.Pos(),
			"time.%s reads the wall clock: simulation code must use the sim.Engine virtual clock (or annotate //lint:allowwallclock <reason>)",
			sel.Sel.Name)
	})
	return nil, nil
}

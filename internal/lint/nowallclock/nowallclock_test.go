package nowallclock_test

import (
	"testing"

	"alertmanet/internal/lint/linttest"
	"alertmanet/internal/lint/nowallclock"
)

func TestNoWallClock(t *testing.T) {
	linttest.Run(t, nowallclock.Analyzer, "a", "cmd/tool", "internal/live")
}

// Fixture: a stand-in for an engine substrate package (final path element
// "medium" matches internal/medium), where the hardened rule applies —
// every go statement and channel send needs a reviewed annotation, whatever
// types it moves.
package medium

// badPlainGoroutine moves no guarded type at all, but lives in a substrate
// package: still a synchronization site.
func badPlainGoroutine(results []float64, i int) {
	go func() { // want `goroutine in engine substrate package medium`
		results[i] = 1
	}()
}

// badPlainSend likewise: a bare int crossing a channel inside the substrate
// is a hand-off the determinism contract needs to see reviewed.
func badPlainSend(next chan int, i int) {
	next <- i // want `channel send in engine substrate package medium`
}

// goodAnnotatedWorker is the fork-join shape the sharded engine uses:
// reviewed, annotated, accepted.
func goodAnnotatedWorker(results []float64, done chan int) {
	//lint:allowsharedstate fixture: fork-join worker writes disjoint ranges, joined before return
	go func() {
		results[0] = 1
		//lint:allowsharedstate fixture: completion token only, no simulation state crosses
		done <- 1
	}()
}

// Fixture stand-in for internal/experiment: the short import path
// "experiment" matches the analyzer's package patterns by final element.
package experiment

// Arena owns simulation substrate recycled across one worker's runs; it is
// strictly worker-local.
type Arena struct {
	runs int
}

// NewArena returns an empty arena.
func NewArena() *Arena { return &Arena{} }

// Use marks one run against the arena.
func (a *Arena) Use() { a.runs++ }

// Fixture stand-in for internal/sim: the short import path "sim" matches
// the analyzer's package patterns by final path element.
package sim

// Engine is the single-threaded discrete-event scheduler.
type Engine struct {
	now float64
}

// NewEngine returns an empty engine.
func NewEngine() *Engine { return &Engine{} }

// Now returns the simulated clock.
func (e *Engine) Now() float64 { return e.now }

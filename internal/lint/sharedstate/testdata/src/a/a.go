// Fixture: single-goroutine simulation state crossing (or correctly not
// crossing) goroutine boundaries.
package a

import (
	"experiment"
	"metrics"
	"sim"
)

// goodWorkerLocal is the approved campaign-worker idiom: each goroutine
// creates its own arena, so nothing single-goroutine crosses the boundary.
func goodWorkerLocal(jobs int, next chan int) {
	for w := 0; w < jobs; w++ {
		go func() {
			arena := experiment.NewArena()
			for range next {
				arena.Use()
			}
		}()
	}
}

// badCapturedEngine shares one engine across goroutines.
func badCapturedEngine(eng *sim.Engine, done chan float64) {
	go func() {
		done <- eng.Now() // want `goroutine captures sim\.Engine "eng" from the enclosing scope`
	}()
}

// badCapturedArena shares one arena across goroutines.
func badCapturedArena(next chan int) {
	arena := experiment.NewArena()
	go func() {
		for range next {
			arena.Use() // want `goroutine captures experiment\.Arena "arena" from the enclosing scope`
		}
	}()
}

// badGoArg hands the slab to a goroutine as an argument.
func badGoArg(s *metrics.RecordSlab, reset func(*metrics.RecordSlab)) {
	go reset(s) // want `metrics\.RecordSlab passed to a goroutine`
}

// badChannelSend ships an engine between goroutines over a channel.
func badChannelSend(ch chan *sim.Engine, eng *sim.Engine) {
	ch <- eng // want `sim\.Engine sent on a channel`
}

// goodMessagePassing sends plain data, not substrate.
func goodMessagePassing(ch chan int, eng *sim.Engine) {
	ch <- int(eng.Now())
}

// goodPlainGoroutine captures nothing guarded.
func goodPlainGoroutine(results []float64, i int) {
	go func() {
		results[i] = 1
	}()
}

// annotated marks a reviewed synchronization site — the shape a future
// shard boundary will use — and is accepted.
func annotated(eng *sim.Engine, done chan float64) {
	//lint:allowsharedstate fixture: shard hand-off point, engine quiesced before the send
	go func() {
		done <- eng.Now()
	}()
}

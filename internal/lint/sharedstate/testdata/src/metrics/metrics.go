// Fixture stand-in for internal/metrics: the short import path "metrics"
// matches the analyzer's package patterns by final path element.
package metrics

// RecordSlab is a block allocator whose records die on Reset; it tolerates
// no concurrent access.
type RecordSlab struct {
	next int
}

// Reset rewinds the slab.
func (s *RecordSlab) Reset() { s.next = 0 }

package sharedstate_test

import (
	"testing"

	"alertmanet/internal/lint/linttest"
	"alertmanet/internal/lint/sharedstate"
)

func TestSharedState(t *testing.T) {
	linttest.Run(t, sharedstate.Analyzer, "a", "medium")
}

// Package sharedstate defines a goroutine-discipline analyzer for the
// simulator's single-goroutine substrate types, preparing the ground for the
// sharded parallel event engine on the roadmap. sim.Engine is a
// single-threaded heap, experiment.Arena is strictly worker-local
// (engine + record slab reused across one worker's cell stream), and
// metrics.RecordSlab hands out records that die on Reset — none of them
// tolerate concurrent access, and none carry locks, by design: the
// determinism contract wants one goroutine per simulation. Moving any of
// them onto a new goroutine or across a channel is therefore either a bug
// today or a synchronization site that must be designed and annotated
// deliberately (the shard boundaries of the coming engine).
package sharedstate

import (
	"go/ast"
	"go/types"

	"alertmanet/internal/lint/lintutil"

	"golang.org/x/tools/go/analysis"
	"golang.org/x/tools/go/analysis/passes/inspect"
	"golang.org/x/tools/go/ast/inspector"
)

// Marker is the escape-hatch comment: //lint:allowsharedstate <reason>. A
// reviewed annotation is how a deliberate cross-goroutine hand-off (a future
// shard boundary with conservative-lookahead synchronization) signs itself.
const Marker = "allowsharedstate"

// guarded lists the single-goroutine substrate types: type name -> owning
// package patterns (fixture stand-ins match by final path element).
var guarded = []struct {
	typeName string
	pkgs     []string
}{
	{"Engine", []string{"internal/sim"}},
	{"Arena", []string{"internal/experiment"}},
	{"RecordSlab", []string{"internal/metrics"}},
}

// substratePkgs lists the packages forming the sharded engine's concurrency
// surface: the engine itself, the medium that homes events onto shards, and
// the two harness layers that fan simulations out over workers. Inside them
// EVERY go statement and channel send — not just ones moving a guarded
// type — is a synchronization site of the determinism contract and must
// carry a reviewed //lint:allowsharedstate annotation stating why the
// hand-off cannot reorder observable events.
var substratePkgs = []string{
	"internal/sim",
	"internal/medium",
	"internal/experiment",
	"internal/campaign",
	"internal/campaign/server",
}

var Analyzer = &analysis.Analyzer{
	Name: "sharedstate",
	Doc: "flag single-goroutine simulation state crossing a goroutine boundary\n\n" +
		"sim.Engine, experiment.Arena and metrics.RecordSlab are single-goroutine\n" +
		"by design (no locks; determinism wants one goroutine per simulation).\n" +
		"Passing one to a `go` call, capturing one in a goroutine's closure, or\n" +
		"sending one on a channel is reported. State created inside the goroutine\n" +
		"(a worker-local arena) is fine. In the substrate packages themselves\n" +
		"(internal/sim, internal/medium, internal/experiment, internal/campaign)\n" +
		"the rule hardens: every go statement and channel send is a reviewed\n" +
		"synchronization site and must be annotated. _test.go files are exempt.\n" +
		"Escape hatch: //lint:allowsharedstate <reason> on the go/send statement.",
	Requires: []*analysis.Analyzer{inspect.Analyzer},
	Run:      run,
}

func run(pass *analysis.Pass) (interface{}, error) {
	ins := pass.ResultOf[inspect.Analyzer].(*inspector.Inspector)
	markers := lintutil.NewMarkers(pass)
	substrate := lintutil.PackageMatchesAny(pass.Pkg.Path(), substratePkgs)

	allowed := func(pos ast.Node) bool {
		if lintutil.IsTestFile(pass, pos.Pos()) {
			return true
		}
		_, ok := markers.Reason(pos.Pos(), Marker)
		return ok
	}

	ins.Preorder([]ast.Node{(*ast.GoStmt)(nil), (*ast.SendStmt)(nil)}, func(n ast.Node) {
		switch x := n.(type) {
		case *ast.GoStmt:
			if allowed(x) {
				return
			}
			if substrate {
				pass.Reportf(x.Pos(),
					"goroutine in engine substrate package %s: every substrate goroutine is a synchronization site of the determinism contract; annotate //lint:allowsharedstate <reason> after review", pass.Pkg.Path())
				return
			}
			checkGo(pass, x)
		case *ast.SendStmt:
			if allowed(x) {
				return
			}
			if substrate {
				pass.Reportf(x.Pos(),
					"channel send in engine substrate package %s: every substrate hand-off is a synchronization site of the determinism contract; annotate //lint:allowsharedstate <reason> after review", pass.Pkg.Path())
				return
			}
			if name := guardedTypeName(pass.TypesInfo.TypeOf(x.Value)); name != "" {
				pass.Reportf(x.Pos(),
					"%s sent on a channel: it is single-goroutine simulation state; send a message, not the substrate, or annotate //lint:allowsharedstate <reason>", name)
			}
		}
	})
	return nil, nil
}

// checkGo reports guarded state entering a goroutine, either as a call
// argument or captured by the goroutine's function literal from the
// enclosing scope.
func checkGo(pass *analysis.Pass, g *ast.GoStmt) {
	for _, arg := range g.Call.Args {
		if name := guardedTypeName(pass.TypesInfo.TypeOf(arg)); name != "" {
			pass.Reportf(arg.Pos(),
				"%s passed to a goroutine: it is single-goroutine simulation state; create it inside the goroutine or annotate //lint:allowsharedstate <reason>", name)
		}
	}
	lit, ok := g.Call.Fun.(*ast.FuncLit)
	if !ok {
		return
	}
	// A use resolving to an object declared outside the literal is a
	// capture; declarations inside (the worker-local arena idiom) are not.
	reported := map[types.Object]bool{}
	ast.Inspect(lit.Body, func(n ast.Node) bool {
		id, ok := n.(*ast.Ident)
		if !ok {
			return true
		}
		obj := pass.TypesInfo.Uses[id]
		if obj == nil || reported[obj] {
			return true
		}
		name := guardedTypeName(obj.Type())
		if name == "" {
			return true
		}
		if obj.Pos() >= lit.Pos() && obj.Pos() < lit.End() {
			return true // declared inside the goroutine: worker-local
		}
		reported[obj] = true
		pass.Reportf(id.Pos(),
			"goroutine captures %s %q from the enclosing scope: it is single-goroutine simulation state; create it inside the goroutine or annotate //lint:allowsharedstate <reason>", name, id.Name)
		return true
	})
}

// guardedTypeName returns the display name of the guarded type t is (or
// points to), "" otherwise.
func guardedTypeName(t types.Type) string {
	for _, g := range guarded {
		if lintutil.NamedTypeIs(t, g.typeName, g.pkgs) {
			return g.pkgs[0][len("internal/"):] + "." + g.typeName
		}
	}
	return ""
}

package poollifetime_test

import (
	"testing"

	"alertmanet/internal/lint/linttest"
	"alertmanet/internal/lint/poollifetime"
)

func TestPoolLifetime(t *testing.T) {
	linttest.Run(t, poollifetime.Analyzer, "a", "gpsr")
}

// Fixture stand-in for internal/gpsr: the short import path "gpsr" matches
// the analyzer's package patterns by final path element. Mirrors the pooled
// frame's shape — a Packet with a recycled Path slice and an OnOutcome
// callback, issued by NewPacket and recycled by Release.
package gpsr

// NodeID identifies a node (stand-in for medium.NodeID).
type NodeID int

// Outcome is a terminal routing outcome.
type Outcome int

// Packet is the pooled routing frame.
type Packet struct {
	Hops      int
	Path      []NodeID
	OnOutcome func(at NodeID, pkt *Packet, out Outcome)
}

// Router owns the frame pool.
type Router struct {
	freePkts []*Packet
}

// NewPacket takes a frame from the pool (or allocates one).
func (r *Router) NewPacket() *Packet {
	if n := len(r.freePkts); n > 0 {
		p := r.freePkts[n-1]
		r.freePkts = r.freePkts[:n-1]
		return p
	}
	return &Packet{}
}

// Release returns a finished frame to the pool. The truncate-and-store
// shape is the pool recycling the frame it owns: storing back into a
// frame-typed object is accepted without annotation.
func (r *Router) Release(p *Packet) {
	path := p.Path[:0]
	*p = Packet{Path: path}
	r.freePkts = append(r.freePkts, p)
}

// Send begins routing pkt.
func (r *Router) Send(from NodeID, pkt *Packet) {
	pkt.Path = append(pkt.Path, from)
}

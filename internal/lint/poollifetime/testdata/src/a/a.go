// Fixture: pooled packet-frame lifetime violations and the approved idioms.
package a

import "gpsr"

// Record outlives any one frame (stand-in for metrics.PacketRecord).
type Record struct {
	Hops int
	Path []gpsr.NodeID
}

// goodSend is the canonical shape: NewPacket paired with Release in the
// OnOutcome callback, Path copied into the record with append(dst[:0], ...).
func goodSend(r *gpsr.Router, rec *Record) {
	pkt := r.NewPacket()
	pkt.OnOutcome = func(_ gpsr.NodeID, gp *gpsr.Packet, _ gpsr.Outcome) {
		rec.Hops = gp.Hops
		rec.Path = append(rec.Path[:0], gp.Path...)
		r.Release(gp)
	}
	r.Send(0, pkt)
}

// badLeak takes a frame and never releases it on any path.
func badLeak(r *gpsr.Router) {
	pkt := r.NewPacket() // want `NewPacket without a matching Release in badLeak`
	r.Send(0, pkt)
}

// goodFactory returns the frame: ownership transfers to the caller.
func goodFactory(r *gpsr.Router) *gpsr.Packet {
	pkt := r.NewPacket()
	pkt.Hops = 0
	return pkt
}

// badAliasRecord reproduces the PR 6 OnOutcome aliasing bug verbatim: the
// record keeps the recycled frame's Path backing array, which the pool
// truncates and the next packet rewrites.
func badAliasRecord(r *gpsr.Router, rec *Record) {
	pkt := r.NewPacket()
	pkt.OnOutcome = func(_ gpsr.NodeID, gp *gpsr.Packet, _ gpsr.Outcome) {
		rec.Hops = gp.Hops
		rec.Path = gp.Path // want `store aliases a pooled frame's slice`
		r.Release(gp)
	}
	r.Send(0, pkt)
}

// badAliasViaLocal launders the alias through a local before storing it.
func badAliasViaLocal(r *gpsr.Router, rec *Record) {
	pkt := r.NewPacket()
	pkt.OnOutcome = func(_ gpsr.NodeID, gp *gpsr.Packet, _ gpsr.Outcome) {
		path := gp.Path
		rec.Path = path // want `store aliases a pooled frame's slice`
		r.Release(gp)
	}
	r.Send(0, pkt)
}

// badAliasAppendDest reslices the frame's array as an append destination:
// the result still shares the recycled backing array.
func badAliasAppendDest(r *gpsr.Router, rec *Record, extra gpsr.NodeID) {
	pkt := r.NewPacket()
	pkt.OnOutcome = func(_ gpsr.NodeID, gp *gpsr.Packet, _ gpsr.Outcome) {
		rec.Path = append(gp.Path[:0], extra) // want `store aliases a pooled frame's slice`
		r.Release(gp)
	}
	r.Send(0, pkt)
}

// badReturnAlias hands the frame's slice to the caller while the frame goes
// back to the pool.
func badReturnAlias(r *gpsr.Router, pkt *gpsr.Packet) []gpsr.NodeID {
	defer r.Release(pkt)
	return pkt.Path // want `return aliases a pooled frame's slice`
}

// badCompositeAlias embeds the frame's slice in a longer-lived value.
func badCompositeAlias(pkt *gpsr.Packet) Record {
	return Record{Path: pkt.Path} // want `composite literal aliases a pooled frame's slice`
}

// goodFrameSelfAppend grows the frame's own Path: the frame mutating itself
// is the routing layer's normal operation.
func goodFrameSelfAppend(pkt *gpsr.Packet, at gpsr.NodeID) {
	pkt.Path = append(pkt.Path, at)
}

// goodScalarCopy copies scalars out of the frame; only slice fields alias.
func goodScalarCopy(pkt *gpsr.Packet, rec *Record) {
	rec.Hops = pkt.Hops
}

// annotated carries a reviewed escape hatch and is accepted.
func annotated(r *gpsr.Router) *gpsr.Packet {
	//lint:allowpoollifetime fixture: released by the protocol layer that consumes the frame
	pkt := r.NewPacket()
	r.Send(0, pkt)
	return nil
}

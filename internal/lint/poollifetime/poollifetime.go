// Package poollifetime defines an analyzer enforcing the pooled packet-frame
// contract from the PR 6 hot-path pass: a *gpsr.Packet taken from a router's
// pool (NewPacket) goes back to the pool (Release) when its routing ends, and
// until then nothing may retain a reference into the frame. The sharp edge is
// the Path slice: the pool truncates Path's backing array when the frame is
// reissued, so a record that aliased it — `rec.Path = gp.Path` instead of
// `rec.Path = append(rec.Path[:0], gp.Path...)` — is silently rewritten by
// the next packet. That exact bug shipped once and is pinned dynamically by
// TestRecycledFrameDoesNotAliasRecordPath; this analyzer rejects the shape at
// vet time, before a test has to catch it.
package poollifetime

import (
	"go/ast"
	"go/types"

	"alertmanet/internal/lint/lintutil"

	"golang.org/x/tools/go/analysis"
	"golang.org/x/tools/go/analysis/passes/inspect"
	"golang.org/x/tools/go/ast/inspector"
)

// Marker is the escape-hatch comment: //lint:allowpoollifetime <reason>.
const Marker = "allowpoollifetime"

// FramePackages name the package that owns the pooled frame type. The frame
// type is gpsr.Packet; fixture stand-ins under a short "gpsr" import path
// match by final path element.
var FramePackages = []string{"internal/gpsr"}

// FrameTypeName is the pooled frame type's name within FramePackages.
const FrameTypeName = "Packet"

var Analyzer = &analysis.Analyzer{
	Name: "poollifetime",
	Doc: "enforce the pooled packet-frame lifetime contract\n\n" +
		"Every NewPacket must be paired with a Release reachable from the same\n" +
		"function (directly or in a callback closure built there), unless the\n" +
		"function returns the frame (ownership transfer). Slice fields of a pooled\n" +
		"frame — p.Path above all — must never be stored into longer-lived state,\n" +
		"returned, or placed in a composite literal without an explicit copy: the\n" +
		"pool truncates the backing array on reissue. _test.go files are exempt.\n" +
		"Escape hatch: //lint:allowpoollifetime <reason>.",
	Requires: []*analysis.Analyzer{inspect.Analyzer},
	Run:      run,
}

func run(pass *analysis.Pass) (interface{}, error) {
	ins := pass.ResultOf[inspect.Analyzer].(*inspector.Inspector)
	markers := lintutil.NewMarkers(pass)

	ins.Preorder([]ast.Node{(*ast.FuncDecl)(nil)}, func(n ast.Node) {
		fd := n.(*ast.FuncDecl)
		if fd.Body == nil || lintutil.IsTestFile(pass, fd.Pos()) {
			return
		}
		checkPairing(pass, markers, fd)
		checkAliasing(pass, markers, fd)
	})
	return nil, nil
}

// isFrame reports whether t is (a pointer to) the pooled frame type.
func isFrame(t types.Type) bool {
	return lintutil.NamedTypeIs(t, FrameTypeName, FramePackages)
}

// isFrameExpr reports whether e's static type is (a pointer to) the frame.
func isFrameExpr(pass *analysis.Pass, e ast.Expr) bool {
	return isFrame(pass.TypesInfo.TypeOf(e))
}

// checkPairing reports NewPacket calls in functions that neither call
// Release (anywhere, including inside closures built in the function — the
// OnOutcome callback is the canonical release site) nor return a frame
// (ownership transfer to the caller, the factory shape).
func checkPairing(pass *analysis.Pass, markers *lintutil.Markers, fd *ast.FuncDecl) {
	var newCalls []*ast.CallExpr
	released := false
	returnsFrame := false
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch x := n.(type) {
		case *ast.CallExpr:
			if sel, ok := x.Fun.(*ast.SelectorExpr); ok {
				switch sel.Sel.Name {
				case "NewPacket":
					if isFrameExpr(pass, x) {
						newCalls = append(newCalls, x)
					}
				case "Release":
					if len(x.Args) == 1 && isFrameExpr(pass, x.Args[0]) {
						released = true
					}
				}
			}
		case *ast.ReturnStmt:
			for _, r := range x.Results {
				if isFrameExpr(pass, r) {
					returnsFrame = true
				}
			}
		}
		return true
	})
	if released || returnsFrame {
		return
	}
	for _, call := range newCalls {
		if _, ok := markers.Reason(call.Pos(), Marker); ok {
			continue
		}
		pass.Reportf(call.Pos(),
			"NewPacket without a matching Release in %s: pooled frames must go back to the pool when routing ends (release in the OnOutcome callback, return the frame to transfer ownership, or annotate //lint:allowpoollifetime <reason>)",
			fd.Name.Name)
	}
}

// checkAliasing reports stores that let a slice field of a pooled frame
// outlive the frame: assignment into non-local storage, return statements,
// and composite literals, directly or through a local alias. The approved
// idiom is an explicit copy — rec.Path = append(rec.Path[:0], gp.Path...).
func checkAliasing(pass *analysis.Pass, markers *lintutil.Markers, fd *ast.FuncDecl) {
	// aliases collects locals assigned from a frame slice field (or from
	// another alias); two passes reach the fixpoint for the chained-local
	// shapes that occur in practice.
	aliases := map[types.Object]bool{}
	aliasesExpr := func(e ast.Expr) bool { return aliasExpr(pass, aliases, e) }
	for i := 0; i < 2; i++ {
		ast.Inspect(fd.Body, func(n ast.Node) bool {
			as, ok := n.(*ast.AssignStmt)
			if !ok || len(as.Lhs) != len(as.Rhs) {
				return true
			}
			for i, lhs := range as.Lhs {
				id, ok := lhs.(*ast.Ident)
				if !ok || !aliasesExpr(as.Rhs[i]) {
					continue
				}
				if obj := pass.TypesInfo.ObjectOf(id); obj != nil {
					aliases[obj] = true
				}
			}
			return true
		})
	}

	report := func(pos ast.Node, what string) {
		if _, ok := markers.Reason(pos.Pos(), Marker); ok {
			return
		}
		pass.Reportf(pos.Pos(),
			"%s aliases a pooled frame's slice: the pool truncates the backing array on reissue, silently rewriting the alias; copy instead (append(dst[:0], p.Path...)) or annotate //lint:allowpoollifetime <reason>", what)
	}

	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch x := n.(type) {
		case *ast.AssignStmt:
			if len(x.Lhs) != len(x.Rhs) {
				return true
			}
			for i, lhs := range x.Lhs {
				if !aliasesExpr(x.Rhs[i]) {
					continue
				}
				// Plain local (re)assignment only extends the alias set;
				// storing back into a frame-typed object is the pool's own
				// business (recycle truncates the frame it owns).
				if _, isIdent := lhs.(*ast.Ident); isIdent {
					continue
				}
				if root := rootExpr(lhs); root != nil && isFrameExpr(pass, root) {
					continue
				}
				report(x, "store")
			}
		case *ast.ReturnStmt:
			for _, r := range x.Results {
				if aliasesExpr(r) {
					report(x, "return")
				}
			}
		case *ast.CompositeLit:
			// A frame-typed composite stores the alias back into a frame —
			// the pool's own recycle shape — which is fine.
			if isFrame(pass.TypesInfo.TypeOf(x)) {
				return true
			}
			for _, elt := range x.Elts {
				v := elt
				if kv, ok := elt.(*ast.KeyValueExpr); ok {
					v = kv.Value
				}
				if frameSliceSel(pass, v) != nil || aliasIdent(pass, aliases, v) {
					report(v, "composite literal")
				}
			}
		}
		return true
	})
}

// aliasExpr reports whether e evaluates to (a reslice of) a pooled frame's
// slice field: the field selector itself, a slice expression over it or an
// alias, an alias local, or an append whose destination is one of those (an
// append may grow in place, so its result conservatively stays an alias).
func aliasExpr(pass *analysis.Pass, aliases map[types.Object]bool, e ast.Expr) bool {
	switch x := e.(type) {
	case *ast.ParenExpr:
		return aliasExpr(pass, aliases, x.X)
	case *ast.SliceExpr:
		return aliasExpr(pass, aliases, x.X)
	case *ast.SelectorExpr:
		return frameSliceSel(pass, x) != nil
	case *ast.Ident:
		return aliasIdent(pass, aliases, x)
	case *ast.CallExpr:
		if id, ok := x.Fun.(*ast.Ident); ok && id.Name == "append" && len(x.Args) > 0 {
			if _, isBuiltin := pass.TypesInfo.Uses[id].(*types.Builtin); isBuiltin {
				// Only the destination matters: variadic `src...` element
				// copies (the approved idiom) are not aliases.
				return aliasExpr(pass, aliases, x.Args[0])
			}
		}
	}
	return false
}

// frameSliceSel returns sel if it selects a slice-typed field of a pooled
// frame (p.Path), else nil.
func frameSliceSel(pass *analysis.Pass, e ast.Expr) *ast.SelectorExpr {
	sel, ok := e.(*ast.SelectorExpr)
	if !ok || !isFrameExpr(pass, sel.X) {
		return nil
	}
	t := pass.TypesInfo.TypeOf(sel)
	if t == nil {
		return nil
	}
	if _, isSlice := t.Underlying().(*types.Slice); !isSlice {
		return nil
	}
	return sel
}

func aliasIdent(pass *analysis.Pass, aliases map[types.Object]bool, e ast.Expr) bool {
	id, ok := e.(*ast.Ident)
	if !ok {
		return false
	}
	obj := pass.TypesInfo.ObjectOf(id)
	return obj != nil && aliases[obj]
}

// rootExpr unwraps an assignable expression to the identifier at its base
// (rec in rec.Path, p in *p), nil when no single identifier anchors it.
func rootExpr(e ast.Expr) ast.Expr {
	for {
		switch x := e.(type) {
		case *ast.Ident:
			return x
		case *ast.SelectorExpr:
			e = x.X
		case *ast.IndexExpr:
			e = x.X
		case *ast.StarExpr:
			e = x.X
		case *ast.ParenExpr:
			e = x.X
		default:
			return nil
		}
	}
}

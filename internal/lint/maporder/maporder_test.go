package maporder_test

import (
	"testing"

	"alertmanet/internal/lint/linttest"
	"alertmanet/internal/lint/maporder"
)

func TestMapOrder(t *testing.T) {
	linttest.Run(t, maporder.Analyzer, "a")
}

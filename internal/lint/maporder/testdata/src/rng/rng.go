// Fixture stand-in for internal/rng: the short import path "rng" matches
// the analyzer's package patterns by final path element.
package rng

// Source is a seeded random stream.
type Source struct{ state uint64 }

// Intn draws from the stream.
func (s *Source) Intn(n int) int {
	s.state = s.state*6364136223846793005 + 1
	return int(s.state % uint64(n))
}

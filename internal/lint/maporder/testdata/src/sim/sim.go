// Fixture stand-in for internal/sim: the short import path "sim" matches
// the analyzer's package patterns by final path element.
package sim

// Engine is a discrete-event scheduler.
type Engine struct{ events []func() }

// Schedule enqueues fn after a delay; enqueue order matters.
func (e *Engine) Schedule(delay float64, fn func()) {
	_ = delay
	e.events = append(e.events, fn)
}

// Cancel is order-insensitive.
func (e *Engine) Cancel(id string) {
	_ = id
}

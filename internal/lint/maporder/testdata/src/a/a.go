// Fixture: order-sensitive effects inside map iteration.
package a

import (
	"sort"

	"rng"
	"sim"
)

// badAppend collects keys without ever sorting them: the slice order is
// Go's randomized map order.
func badAppend(m map[string]int) []string {
	var keys []string
	for k := range m {
		keys = append(keys, k) // want `append inside map iteration without a later sort`
	}
	return keys
}

// goodSorted is the approved collect-then-sort idiom and is accepted.
func goodSorted(m map[string]int) []string {
	var keys []string
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// goodCount has an order-insensitive body and is accepted.
func goodCount(m map[string]int) int {
	n := 0
	for range m {
		n++
	}
	return n
}

// badDraw consumes the random stream once per key, in map order.
func badDraw(m map[string]int, src *rng.Source) int {
	total := 0
	for range m {
		total += src.Intn(5) // want `randomness drawn inside map iteration`
	}
	return total
}

// badSchedule enqueues an event per key: the heap's FIFO tie-break
// sequence records the map order.
func badSchedule(m map[string]int, eng *sim.Engine) {
	for range m {
		eng.Schedule(1, func() {}) // want `simulation event scheduled inside map iteration`
	}
}

// okCancel calls an order-insensitive engine method and is accepted.
func okCancel(m map[string]int, eng *sim.Engine) {
	for id := range m {
		eng.Cancel(id)
	}
}

// annotated carries the escape hatch on the range statement and is
// accepted.
func annotated(m map[string]int) []string {
	var keys []string
	//lint:allowmaporder fixture: caller sorts the result
	for k := range m {
		keys = append(keys, k)
	}
	return keys
}

// sliceRange iterates a slice, not a map; appends are always accepted.
func sliceRange(xs []string) []string {
	var out []string
	for _, x := range xs {
		out = append(out, x)
	}
	return out
}

// Package maporder defines an analyzer for the subtlest determinism hazard:
// Go map iteration order is randomized per run, so a `range` over a map
// whose body has order-sensitive effects — appending to a slice that is
// never sorted, drawing from an rng.Source, or scheduling a simulation
// event — produces a different trace on every execution even with a fixed
// seed. The approved idiom is to collect the keys, sort them, and iterate
// the sorted slice.
package maporder

import (
	"go/ast"
	"go/types"

	"alertmanet/internal/lint/lintutil"

	"golang.org/x/tools/go/analysis"
	"golang.org/x/tools/go/analysis/passes/inspect"
	"golang.org/x/tools/go/ast/inspector"
)

// Marker is the escape-hatch comment: //lint:allowmaporder <reason>, placed
// on the `for ... range` line. It acknowledges the body's effects are
// order-insensitive in a way the analyzer cannot prove (e.g. commutative
// accumulation into a float is still flagged via append only, so the marker
// mostly documents sorts that happen in a helper).
const Marker = "allowmaporder"

// randPkgs are packages whose methods consume randomness. math/rand appears
// because *rng.Source promotes the embedded *rand.Rand's methods.
var randPkgs = []string{"internal/rng", "math/rand", "math/rand/v2"}

// schedulerMethods are the sim.Engine methods that enqueue events; calling
// one per map key encodes the iteration order into the event heap's FIFO
// tie-break sequence.
var schedulerMethods = map[string]bool{
	"Schedule": true, "At": true, "Ticker": true, "TickerUntil": true,
}

// sortCalls are the sort/slices package functions that establish a
// deterministic order over an appended slice.
var sortCalls = map[string]bool{
	"Sort": true, "Stable": true, "Slice": true, "SliceStable": true,
	"Strings": true, "Ints": true, "Float64s": true,
	"SortFunc": true, "SortStableFunc": true,
}

var Analyzer = &analysis.Analyzer{
	Name: "maporder",
	Doc: "flag order-sensitive effects inside map iteration\n\n" +
		"Ranging over a map while appending to a slice (that is not subsequently\n" +
		"sorted in the same function), drawing from an rng.Source, or scheduling a\n" +
		"sim.Engine event leaks Go's randomized map order into results, breaking\n" +
		"seed reproducibility. Sort the keys first and range over the slice.\n" +
		"Escape hatch: //lint:allowmaporder <reason> on the range statement.",
	Requires: []*analysis.Analyzer{inspect.Analyzer},
	Run:      run,
}

func run(pass *analysis.Pass) (interface{}, error) {
	ins := pass.ResultOf[inspect.Analyzer].(*inspector.Inspector)
	markers := lintutil.NewMarkers(pass)

	ins.WithStack([]ast.Node{(*ast.RangeStmt)(nil)}, func(n ast.Node, push bool, stack []ast.Node) bool {
		if !push {
			return false
		}
		rs := n.(*ast.RangeStmt)
		t := pass.TypesInfo.TypeOf(rs.X)
		if t == nil {
			return true
		}
		if _, isMap := t.Underlying().(*types.Map); !isMap {
			return true
		}
		if lintutil.IsTestFile(pass, rs.Pos()) {
			return true
		}
		if _, ok := markers.Reason(rs.Pos(), Marker); ok {
			return true
		}
		body := enclosingBody(stack)
		checkMapRange(pass, rs, body)
		return true
	})
	return nil, nil
}

// checkMapRange walks one map-range body for order-sensitive effects.
func checkMapRange(pass *analysis.Pass, rs *ast.RangeStmt, funcBody *ast.BlockStmt) {
	ast.Inspect(rs.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		switch fun := call.Fun.(type) {
		case *ast.Ident:
			if fun.Name != "append" {
				return true
			}
			if _, isBuiltin := pass.TypesInfo.Uses[fun].(*types.Builtin); !isBuiltin {
				return true
			}
			if len(call.Args) == 0 {
				return true
			}
			dest := rootObject(pass, call.Args[0])
			if sortedAfter(pass, funcBody, rs, dest) {
				return true
			}
			pass.Reportf(call.Pos(),
				"append inside map iteration without a later sort: the slice order follows Go's randomized map order; sort the keys first (or sort the result, or annotate //lint:allowmaporder <reason>)")
		case *ast.SelectorExpr:
			selInfo, ok := pass.TypesInfo.Selections[fun]
			if !ok || selInfo.Kind() != types.MethodVal {
				return true
			}
			obj := selInfo.Obj()
			if obj.Pkg() == nil {
				return true
			}
			path := obj.Pkg().Path()
			switch {
			case lintutil.PackageMatchesAny(path, randPkgs):
				pass.Reportf(call.Pos(),
					"randomness drawn inside map iteration: the stream's consumption order follows Go's randomized map order; sort the keys first")
			case lintutil.PackageMatches(path, "internal/sim") && schedulerMethods[obj.Name()]:
				pass.Reportf(call.Pos(),
					"simulation event scheduled inside map iteration: the event sequence follows Go's randomized map order; sort the keys first")
			}
		}
		return true
	})
}

// sortedAfter reports whether funcBody contains, after the range statement,
// a sort/slices call whose argument resolves to the same variable as dest —
// the collect-then-sort idiom that makes the append acceptable.
func sortedAfter(pass *analysis.Pass, funcBody *ast.BlockStmt, rs *ast.RangeStmt, dest types.Object) bool {
	if funcBody == nil || dest == nil {
		return false
	}
	found := false
	ast.Inspect(funcBody, func(n ast.Node) bool {
		if found {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok || call.Pos() <= rs.End() {
			return true
		}
		sel, ok := call.Fun.(*ast.SelectorExpr)
		if !ok || !sortCalls[sel.Sel.Name] {
			return true
		}
		pkgIdent, ok := sel.X.(*ast.Ident)
		if !ok {
			return true
		}
		pkgName, ok := pass.TypesInfo.Uses[pkgIdent].(*types.PkgName)
		if !ok {
			return true
		}
		if p := pkgName.Imported().Path(); p != "sort" && p != "slices" {
			return true
		}
		if len(call.Args) > 0 && rootObject(pass, call.Args[0]) == dest {
			found = true
			return false
		}
		return true
	})
	return found
}

// rootObject resolves an expression to the variable at its base: keys in
// `keys`, res in `res.Path`, ids in `byID(ids)` (a sort.Interface
// conversion). Returns nil when no single variable anchors the expression.
func rootObject(pass *analysis.Pass, e ast.Expr) types.Object {
	for {
		switch x := e.(type) {
		case *ast.Ident:
			return pass.TypesInfo.ObjectOf(x)
		case *ast.SelectorExpr:
			e = x.X
		case *ast.IndexExpr:
			e = x.X
		case *ast.ParenExpr:
			e = x.X
		case *ast.UnaryExpr:
			e = x.X
		case *ast.CallExpr:
			// Unwrap type conversions like byID(ids); anything else
			// (a function call result) has no stable root.
			if len(x.Args) == 1 && isTypeExpr(pass, x.Fun) {
				e = x.Args[0]
				continue
			}
			return nil
		default:
			return nil
		}
	}
}

func isTypeExpr(pass *analysis.Pass, e ast.Expr) bool {
	tv, ok := pass.TypesInfo.Types[e]
	return ok && tv.IsType()
}

// enclosingBody returns the body of the innermost enclosing function
// (declaration or literal) from an inspector stack.
func enclosingBody(stack []ast.Node) *ast.BlockStmt {
	for i := len(stack) - 1; i >= 0; i-- {
		switch f := stack[i].(type) {
		case *ast.FuncDecl:
			return f.Body
		case *ast.FuncLit:
			return f.Body
		}
	}
	return nil
}

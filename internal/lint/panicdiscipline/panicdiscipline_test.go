package panicdiscipline_test

import (
	"testing"

	"alertmanet/internal/lint/linttest"
	"alertmanet/internal/lint/panicdiscipline"
)

func TestPanicDiscipline(t *testing.T) {
	linttest.Run(t, panicdiscipline.Analyzer, "a")
}

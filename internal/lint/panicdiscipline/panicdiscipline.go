// Package panicdiscipline defines an analyzer enforcing the error-discipline
// contract established in PR 1: library paths return errors; panic is
// reserved for Must* convenience wrappers, init-time setup, and invariants a
// reviewer has explicitly signed off on with //lint:allowpanic <reason>.
package panicdiscipline

import (
	"go/ast"
	"go/types"
	"strings"

	"alertmanet/internal/lint/lintutil"

	"golang.org/x/tools/go/analysis"
	"golang.org/x/tools/go/analysis/passes/inspect"
	"golang.org/x/tools/go/ast/inspector"
)

// Marker is the escape-hatch comment: //lint:allowpanic <reason>. The reason
// is mandatory — an unexplained allowance is just a panic with extra steps.
const Marker = "allowpanic"

var Analyzer = &analysis.Analyzer{
	Name: "panicdiscipline",
	Doc: "restrict panic to Must* wrappers, init, and annotated invariants\n\n" +
		"The public API returns errors (PR 1); a panic on a library path turns a\n" +
		"recoverable condition into a crash. Allowed: functions whose name starts\n" +
		"with Must/must, init functions, _test.go files, and call sites annotated\n" +
		"//lint:allowpanic <reason> (the reason is required).",
	Requires: []*analysis.Analyzer{inspect.Analyzer},
	Run:      run,
}

func run(pass *analysis.Pass) (interface{}, error) {
	ins := pass.ResultOf[inspect.Analyzer].(*inspector.Inspector)
	markers := lintutil.NewMarkers(pass)

	ins.WithStack([]ast.Node{(*ast.CallExpr)(nil)}, func(n ast.Node, push bool, stack []ast.Node) bool {
		if !push {
			return false
		}
		call := n.(*ast.CallExpr)
		ident, ok := call.Fun.(*ast.Ident)
		if !ok || ident.Name != "panic" {
			return true
		}
		if _, isBuiltin := pass.TypesInfo.Uses[ident].(*types.Builtin); !isBuiltin {
			return true // a local function shadowing the builtin
		}
		if lintutil.IsTestFile(pass, call.Pos()) {
			return true
		}
		name := lintutil.EnclosingFuncName(stack)
		if name == "init" || strings.HasPrefix(name, "Must") || strings.HasPrefix(name, "must") {
			return true
		}
		if _, ok := markers.Reason(call.Pos(), Marker); ok {
			return true
		}
		if markers.Present(call.Pos(), Marker) {
			pass.Reportf(call.Pos(), "//lint:allowpanic needs a reason: say why this panic is unreachable or acceptable")
			return true
		}
		pass.Reportf(call.Pos(),
			"panic on a library path: return an error, rename the enclosing function Must*, or annotate //lint:allowpanic <reason>")
		return true
	})
	return nil, nil
}

// Fixture: _test.go files may panic (t.Fatal alternatives, fixtures);
// nothing here is flagged.
package a

func testBoom() {
	panic("test-only")
}

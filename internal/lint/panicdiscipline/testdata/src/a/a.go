// Fixture: panic discipline on library paths.
package a

import "errors"

// bad panics where a caller could have handled an error.
func bad(x int) int {
	if x < 0 {
		panic("negative") // want `panic on a library path`
	}
	return x
}

// MustPositive is a Must* convenience wrapper; its panic is the contract.
func MustPositive(x int) int {
	if x < 0 {
		panic(errors.New("negative"))
	}
	return x
}

// mustInternal is the unexported spelling of the same convention.
func mustInternal(x int) int {
	if x < 0 {
		panic("negative")
	}
	return x
}

// init-time setup may panic: the process has not started doing work yet.
func init() {
	if false {
		panic("impossible configuration")
	}
}

// MustRun's closures inherit the allowance: the literal is still inside a
// Must* function for policy purposes.
func MustRun(f func() error) {
	check := func() {
		if err := f(); err != nil {
			panic(err)
		}
	}
	check()
}

// annotated carries the escape hatch with a reason and is accepted.
func annotated() {
	//lint:allowpanic fixture: invariant unreachable after Validate
	panic("unreachable")
}

// reasonless carries a bare marker, which does not count as sign-off.
func reasonless() {
	//lint:allowpanic
	panic("unreachable") // want `//lint:allowpanic needs a reason`
}

// Package lintutil holds the shared machinery of the alertlint analyzers:
// package-path matching for scope gates and exemptions, test-file detection,
// and the //lint:<marker> <reason> escape-hatch comments that let a reviewed
// call site opt out of a contract with a recorded justification.
package lintutil

import (
	"go/ast"
	"go/parser"
	"go/token"
	"go/types"
	"io/fs"
	"path/filepath"
	"sort"
	"strings"

	"golang.org/x/tools/go/analysis"
)

// PackageMatches reports whether pkgPath is the package named by pattern.
// A pattern like "internal/rng" matches the path itself, any path ending in
// "/internal/rng", and — so analyzer fixtures under testdata/src can use
// short import paths — any package whose final element equals the pattern's
// final element (here "rng").
func PackageMatches(pkgPath, pattern string) bool {
	if pkgPath == pattern || strings.HasSuffix(pkgPath, "/"+pattern) {
		return true
	}
	return lastElem(pkgPath) == lastElem(pattern)
}

// PackageMatchesAny reports whether pkgPath matches any of the patterns.
func PackageMatchesAny(pkgPath string, patterns []string) bool {
	for _, p := range patterns {
		if PackageMatches(pkgPath, p) {
			return true
		}
	}
	return false
}

// HasPathElement reports whether elem appears as a complete element of the
// slash-separated import path (e.g. "cmd" in "alertmanet/cmd/figures").
func HasPathElement(pkgPath, elem string) bool {
	for _, e := range strings.Split(pkgPath, "/") {
		if e == elem {
			return true
		}
	}
	return false
}

func lastElem(path string) string {
	if i := strings.LastIndexByte(path, '/'); i >= 0 {
		return path[i+1:]
	}
	return path
}

// IsTestFile reports whether pos lies in a _test.go file.
func IsTestFile(pass *analysis.Pass, pos token.Pos) bool {
	return strings.HasSuffix(pass.Fset.Position(pos).Filename, "_test.go")
}

// NamedTypeIs reports whether t (or the type it points to) is the named type
// `name` declared in a package matching any of pkgPatterns. The contract
// analyzers use it to recognize the guarded types — gpsr.Packet, sim.Engine,
// experiment.Arena, metrics.RecordSlab — in both the real tree and fixture
// stand-ins with short import paths.
func NamedTypeIs(t types.Type, name string, pkgPatterns []string) bool {
	if t == nil {
		return false
	}
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	n, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := n.Obj()
	if obj.Name() != name || obj.Pkg() == nil {
		return false
	}
	return PackageMatchesAny(obj.Pkg().Path(), pkgPatterns)
}

// Markers indexes the //lint:<name> <reason> comments of a package so
// analyzers can answer "is this position covered by marker <name>?" in O(1).
// A marker covers the line it sits on and the line directly below it, so both
// the trailing-comment and the comment-above styles work:
//
//	panic("unreachable") //lint:allowpanic checked by Validate
//
//	//lint:allowpanic checked by Validate
//	panic("unreachable")
type Markers struct {
	fset *token.FileSet
	// byLine maps file -> line -> marker text ("<name> <reason>").
	byLine map[string]map[int]string
}

// NewMarkers scans the comments of every file in the pass.
func NewMarkers(pass *analysis.Pass) *Markers {
	m := &Markers{fset: pass.Fset, byLine: map[string]map[int]string{}}
	for _, f := range pass.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text, ok := strings.CutPrefix(c.Text, "//lint:")
				if !ok {
					continue
				}
				p := m.fset.Position(c.Pos())
				lines := m.byLine[p.Filename]
				if lines == nil {
					lines = map[int]string{}
					m.byLine[p.Filename] = lines
				}
				// Cover the marker's own line (trailing style) and
				// the next line (comment-above style).
				lines[p.Line] = text
				if _, taken := lines[p.Line+1]; !taken {
					lines[p.Line+1] = text
				}
			}
		}
	}
	return m
}

// Reason returns the justification text of marker name covering pos. The
// second result distinguishes "marker present with a reason" from "absent or
// reasonless": a bare //lint:allowpanic with no explanation does not count.
func (m *Markers) Reason(pos token.Pos, name string) (string, bool) {
	p := m.fset.Position(pos)
	text, ok := m.byLine[p.Filename][p.Line]
	if !ok {
		return "", false
	}
	rest, ok := strings.CutPrefix(text, name)
	if !ok || !strings.HasPrefix(rest, " ") {
		// Absent, reasonless, or a different marker sharing the prefix
		// (e.g. "allowpanicky").
		return "", false
	}
	reason := strings.TrimSpace(rest)
	return reason, reason != ""
}

// Present reports whether marker name covers pos at all, with or without a
// reason. Analyzers use it to report "marker needs a reason" instead of the
// generic violation message.
func (m *Markers) Present(pos token.Pos, name string) bool {
	p := m.fset.Position(pos)
	text, ok := m.byLine[p.Filename][p.Line]
	if !ok {
		return false
	}
	rest, ok := strings.CutPrefix(text, name)
	return ok && (rest == "" || strings.HasPrefix(rest, " "))
}

// Annotation is one //lint:<marker> <reason> escape-hatch site found in the
// source tree — the unit `alertlint -allowlist` reports so every exemption
// stays auditable.
type Annotation struct {
	File   string // path relative to the scanned root
	Line   int
	Marker string // marker name, e.g. "allowpanic"
	Reason string // justification text ("" for a bare, invalid marker)
}

// ScanAnnotations walks the Go files under root and collects every
// //lint:<marker> comment, sorted by file then line. vendor/ and testdata/
// trees are skipped: vendored code is not ours to audit and fixtures contain
// markers as test content, not as reviewed exemptions.
func ScanAnnotations(root string) ([]Annotation, error) {
	var out []Annotation
	fset := token.NewFileSet()
	err := filepath.WalkDir(root, func(path string, d fs.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if d.IsDir() {
			switch d.Name() {
			case "vendor", "testdata":
				return filepath.SkipDir
			}
			return nil
		}
		if !strings.HasSuffix(d.Name(), ".go") {
			return nil
		}
		f, err := parser.ParseFile(fset, path, nil, parser.ParseComments)
		if err != nil {
			return err
		}
		rel, rerr := filepath.Rel(root, path)
		if rerr != nil {
			rel = path
		}
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text, ok := strings.CutPrefix(c.Text, "//lint:")
				if !ok {
					continue
				}
				marker, reason, _ := strings.Cut(text, " ")
				out = append(out, Annotation{
					File:   rel,
					Line:   fset.Position(c.Pos()).Line,
					Marker: marker,
					Reason: strings.TrimSpace(reason),
				})
			}
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].File != out[j].File {
			return out[i].File < out[j].File
		}
		return out[i].Line < out[j].Line
	})
	return out, nil
}

// EnclosingFuncName returns the name of the nearest enclosing FuncDecl in
// stack ("" when the node is at package scope, e.g. a variable initializer).
// Function literals are transparent: a closure defined inside MustRun is
// still "inside MustRun" for policy purposes.
func EnclosingFuncName(stack []ast.Node) string {
	for i := len(stack) - 1; i >= 0; i-- {
		if fd, ok := stack[i].(*ast.FuncDecl); ok {
			return fd.Name.Name
		}
	}
	return ""
}

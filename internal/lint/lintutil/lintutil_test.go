package lintutil

import (
	"go/ast"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"testing"

	"golang.org/x/tools/go/analysis"
)

func TestPackageMatches(t *testing.T) {
	cases := []struct {
		path, pattern string
		want          bool
	}{
		{"internal/rng", "internal/rng", true},
		{"alertmanet/internal/rng", "internal/rng", true},
		{"rng", "internal/rng", true},       // fixture short path
		{"other/rng", "internal/rng", true}, // final element match
		{"internal/rngx", "internal/rng", false},
		{"alertmanet/internal/sim", "internal/rng", false},
		{"strings", "internal/rng", false},
	}
	for _, c := range cases {
		if got := PackageMatches(c.path, c.pattern); got != c.want {
			t.Errorf("PackageMatches(%q, %q) = %v, want %v", c.path, c.pattern, got, c.want)
		}
	}
}

func TestHasPathElement(t *testing.T) {
	if !HasPathElement("alertmanet/cmd/alertsim", "cmd") {
		t.Error("cmd element not found in alertmanet/cmd/alertsim")
	}
	if HasPathElement("alertmanet/internal/cmdutil", "cmd") {
		t.Error("cmdutil must not count as a cmd element")
	}
}

const markerSrc = `package p

func a() {
	//lint:allowpanic checked by Validate
	panic("x")
}

func b() {
	panic("y") //lint:allowpanic trailing style
}

func c() {
	//lint:allowpanic
	panic("z")
}

func d() {
	//lint:allowpanicky not the same marker
	panic("w")
}
`

// markerPositions extracts the panic call positions of markerSrc in order.
func markerPositions(t *testing.T, fset *token.FileSet, f *ast.File) []token.Pos {
	t.Helper()
	var out []token.Pos
	ast.Inspect(f, func(n ast.Node) bool {
		if call, ok := n.(*ast.CallExpr); ok {
			if id, ok := call.Fun.(*ast.Ident); ok && id.Name == "panic" {
				out = append(out, call.Pos())
			}
		}
		return true
	})
	return out
}

func TestMarkers(t *testing.T) {
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, "p.go", markerSrc, parser.ParseComments)
	if err != nil {
		t.Fatal(err)
	}
	pass := &analysis.Pass{Fset: fset, Files: []*ast.File{f}}
	m := NewMarkers(pass)
	panics := markerPositions(t, fset, f)
	if len(panics) != 4 {
		t.Fatalf("found %d panics, want 4", len(panics))
	}

	if reason, ok := m.Reason(panics[0], "allowpanic"); !ok || reason != "checked by Validate" {
		t.Errorf("comment-above marker: got (%q, %v)", reason, ok)
	}
	if reason, ok := m.Reason(panics[1], "allowpanic"); !ok || reason != "trailing style" {
		t.Errorf("trailing marker: got (%q, %v)", reason, ok)
	}
	if _, ok := m.Reason(panics[2], "allowpanic"); ok {
		t.Error("bare marker must not provide a reason")
	}
	if !m.Present(panics[2], "allowpanic") {
		t.Error("bare marker must still be present")
	}
	if m.Present(panics[3], "allowpanic") {
		t.Error("allowpanicky must not satisfy allowpanic")
	}
}

// checkPkg type-checks src as a package with the given import path and
// returns the named type called name declared in it.
func checkPkg(t *testing.T, pkgPath, src, name string) types.Type {
	t.Helper()
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, "t.go", src, 0)
	if err != nil {
		t.Fatal(err)
	}
	pkg, err := (&types.Config{}).Check(pkgPath, fset, []*ast.File{f}, nil)
	if err != nil {
		t.Fatal(err)
	}
	obj := pkg.Scope().Lookup(name)
	if obj == nil {
		t.Fatalf("type %s not found in %s", name, pkgPath)
	}
	return obj.Type()
}

func TestNamedTypeIs(t *testing.T) {
	patterns := []string{"internal/gpsr"}
	real := checkPkg(t, "alertmanet/internal/gpsr", "package gpsr\ntype Packet struct{}", "Packet")
	fixture := checkPkg(t, "gpsr", "package gpsr\ntype Packet struct{}", "Packet")
	other := checkPkg(t, "alertmanet/internal/sim", "package sim\ntype Engine struct{}", "Engine")

	if !NamedTypeIs(real, "Packet", patterns) {
		t.Error("real-tree gpsr.Packet not recognized")
	}
	if !NamedTypeIs(types.NewPointer(real), "Packet", patterns) {
		t.Error("*gpsr.Packet must be recognized through the pointer")
	}
	if !NamedTypeIs(fixture, "Packet", patterns) {
		t.Error("fixture short-path gpsr.Packet not recognized")
	}
	if NamedTypeIs(other, "Packet", patterns) {
		t.Error("sim.Engine must not match Packet")
	}
	if NamedTypeIs(real, "Packet", []string{"internal/sim"}) {
		t.Error("gpsr.Packet must not match an internal/sim pattern")
	}
	if NamedTypeIs(nil, "Packet", patterns) {
		t.Error("nil type must not match")
	}
	if NamedTypeIs(types.Typ[types.Int], "Packet", patterns) {
		t.Error("basic type must not match")
	}
}

func TestScanAnnotations(t *testing.T) {
	root := t.TempDir()
	write := func(rel, src string) {
		t.Helper()
		path := filepath.Join(root, rel)
		if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, []byte(src), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	write("pkg/a.go", `package pkg

func f() {
	//lint:allowpanic reason one
	panic("x")
}

func g() {
	panic("y") //lint:allowfloatcompare trailing reason
}
`)
	write("pkg/testdata/src/a/a.go", `package a

func h() {
	//lint:allowpanic fixture content, must be skipped
	panic("z")
}
`)
	write("vendor/dep/dep.go", `package dep

//lint:allowpanic vendored, must be skipped
func v() {}
`)
	write("pkg/notes.txt", "//lint:allowpanic not a go file")

	anns, err := ScanAnnotations(root)
	if err != nil {
		t.Fatal(err)
	}
	if len(anns) != 2 {
		t.Fatalf("got %d annotations, want 2: %+v", len(anns), anns)
	}
	want := []Annotation{
		{File: filepath.Join("pkg", "a.go"), Line: 4, Marker: "allowpanic", Reason: "reason one"},
		{File: filepath.Join("pkg", "a.go"), Line: 9, Marker: "allowfloatcompare", Reason: "trailing reason"},
	}
	for i, w := range want {
		if anns[i] != w {
			t.Errorf("annotation %d = %+v, want %+v", i, anns[i], w)
		}
	}
}

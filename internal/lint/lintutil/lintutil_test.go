package lintutil

import (
	"go/ast"
	"go/parser"
	"go/token"
	"testing"

	"golang.org/x/tools/go/analysis"
)

func TestPackageMatches(t *testing.T) {
	cases := []struct {
		path, pattern string
		want          bool
	}{
		{"internal/rng", "internal/rng", true},
		{"alertmanet/internal/rng", "internal/rng", true},
		{"rng", "internal/rng", true},       // fixture short path
		{"other/rng", "internal/rng", true}, // final element match
		{"internal/rngx", "internal/rng", false},
		{"alertmanet/internal/sim", "internal/rng", false},
		{"strings", "internal/rng", false},
	}
	for _, c := range cases {
		if got := PackageMatches(c.path, c.pattern); got != c.want {
			t.Errorf("PackageMatches(%q, %q) = %v, want %v", c.path, c.pattern, got, c.want)
		}
	}
}

func TestHasPathElement(t *testing.T) {
	if !HasPathElement("alertmanet/cmd/alertsim", "cmd") {
		t.Error("cmd element not found in alertmanet/cmd/alertsim")
	}
	if HasPathElement("alertmanet/internal/cmdutil", "cmd") {
		t.Error("cmdutil must not count as a cmd element")
	}
}

const markerSrc = `package p

func a() {
	//lint:allowpanic checked by Validate
	panic("x")
}

func b() {
	panic("y") //lint:allowpanic trailing style
}

func c() {
	//lint:allowpanic
	panic("z")
}

func d() {
	//lint:allowpanicky not the same marker
	panic("w")
}
`

// markerPositions extracts the panic call positions of markerSrc in order.
func markerPositions(t *testing.T, fset *token.FileSet, f *ast.File) []token.Pos {
	t.Helper()
	var out []token.Pos
	ast.Inspect(f, func(n ast.Node) bool {
		if call, ok := n.(*ast.CallExpr); ok {
			if id, ok := call.Fun.(*ast.Ident); ok && id.Name == "panic" {
				out = append(out, call.Pos())
			}
		}
		return true
	})
	return out
}

func TestMarkers(t *testing.T) {
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, "p.go", markerSrc, parser.ParseComments)
	if err != nil {
		t.Fatal(err)
	}
	pass := &analysis.Pass{Fset: fset, Files: []*ast.File{f}}
	m := NewMarkers(pass)
	panics := markerPositions(t, fset, f)
	if len(panics) != 4 {
		t.Fatalf("found %d panics, want 4", len(panics))
	}

	if reason, ok := m.Reason(panics[0], "allowpanic"); !ok || reason != "checked by Validate" {
		t.Errorf("comment-above marker: got (%q, %v)", reason, ok)
	}
	if reason, ok := m.Reason(panics[1], "allowpanic"); !ok || reason != "trailing style" {
		t.Errorf("trailing marker: got (%q, %v)", reason, ok)
	}
	if _, ok := m.Reason(panics[2], "allowpanic"); ok {
		t.Error("bare marker must not provide a reason")
	}
	if !m.Present(panics[2], "allowpanic") {
		t.Error("bare marker must still be present")
	}
	if m.Present(panics[3], "allowpanic") {
		t.Error("allowpanicky must not satisfy allowpanic")
	}
}

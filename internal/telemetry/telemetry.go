// Package telemetry is the simulator's structured observability layer: a
// per-run event tap threaded through the whole stack — the sim engine
// (events scheduled/fired/cancelled), the medium (frame tx/rx/loss/ACK/
// retransmission), the routing layers (leg starts, per-hop forwards and
// arrivals, random-forwarder selections, zone broadcasts, terminal
// outcomes), and the crypto cost charges — plus a counters/histograms
// registry snapshotted per run and a run manifest.
//
// Events are emitted as deterministic JSONL keyed by simulated time: the
// same scenario and seed produce a byte-identical stream (the golden tests
// hash it), so a run's complete story is reconstructible and diffable after
// the fact — the role NS-2 trace files played in the paper's evaluation.
//
// The tap is nil when telemetry is disabled. Every instrumented call site
// guards with `if tap != nil { ... }`, so the disabled path is one
// predictable branch with no allocation and no call — the overhead contract
// the bench-smoke gate measures. All emit methods are additionally safe on
// a nil receiver, so un-guarded cold paths cannot crash.
package telemetry

import (
	"bufio"
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"
)

// Layer identifies one instrumented layer of the stack; a Tap carries a
// bitmask of the layers it records.
type Layer uint32

// The instrumented layers.
const (
	// LayerSim records engine-level events: schedule, fire, cancel. By far
	// the highest-volume layer (every timer and transmission is an engine
	// event); enable it when debugging the engine itself.
	LayerSim Layer = 1 << iota
	// LayerMedium records frame-level channel activity: tx, rx, loss,
	// retransmissions, ACKs, broadcasts.
	LayerMedium
	// LayerRoute records routing activity: leg starts, per-hop forwards
	// and confirmed arrivals, random-forwarder selections, zone
	// broadcasts, and leg-terminal outcomes.
	LayerRoute
	// LayerPacket records the application-packet lifecycle: one "sent"
	// and exactly one "terminal" event per packet (the event-stream
	// analogue of the metrics collector).
	LayerPacket
	// LayerCrypto records cryptographic cost charges (symmetric and
	// public-key operation counts).
	LayerCrypto

	// LayerAll enables every layer.
	LayerAll = LayerSim | LayerMedium | LayerRoute | LayerPacket | LayerCrypto
)

// layerNames maps single-layer bits to their JSONL names, in bit order.
var layerNames = []struct {
	bit  Layer
	name string
}{
	{LayerSim, "sim"},
	{LayerMedium, "medium"},
	{LayerRoute, "route"},
	{LayerPacket, "packet"},
	{LayerCrypto, "crypto"},
}

// LayerByName returns the layer bit for a JSONL layer name (0 if unknown).
func LayerByName(name string) Layer {
	for _, ln := range layerNames {
		if ln.name == name {
			return ln.bit
		}
	}
	return 0
}

// ParseLayers parses a comma-separated layer list ("medium,route,packet");
// "all" or the empty string means every layer.
func ParseLayers(s string) (Layer, error) {
	if s == "" || s == "all" {
		return LayerAll, nil
	}
	var mask Layer
	for _, part := range strings.Split(s, ",") {
		bit := LayerByName(strings.TrimSpace(part))
		if bit == 0 {
			return 0, fmt.Errorf("telemetry: unknown layer %q (want sim, medium, route, packet, crypto or all)", part)
		}
		mask |= bit
	}
	return mask, nil
}

// NoTrace marks an event not attributable to one application packet.
const NoTrace = -1

// Traceable lets the medium attribute a frame to the application packet it
// carries: routing payloads implement it by returning the packet's metrics
// sequence number (NoTrace when untraced).
type Traceable interface {
	TelemetryTrace() int
}

// TraceOf extracts the application-packet trace id from an arbitrary frame
// payload, NoTrace when the payload is not Traceable.
func TraceOf(payload any) int {
	if tr, ok := payload.(Traceable); ok {
		return tr.TelemetryTrace()
	}
	return NoTrace
}

// Tap is one run's event stream. It is single-threaded like the engine that
// feeds it: one Tap per run, never shared across concurrent runs.
type Tap struct {
	mask   Layer
	w      *bufio.Writer
	reg    *Registry
	events uint64
	line   []byte // reused per-event scratch buffer
}

// New creates a tap writing JSONL to w, recording the masked layers.
func New(w io.Writer, mask Layer) *Tap {
	return &Tap{
		mask: mask,
		w:    bufio.NewWriterSize(w, 1<<16),
		reg:  NewRegistry(),
		line: make([]byte, 0, 256),
	}
}

// Registry returns the tap's counters/histograms registry (nil tap: nil).
func (t *Tap) Registry() *Registry {
	if t == nil {
		return nil
	}
	return t.reg
}

// Events returns how many event lines have been emitted.
func (t *Tap) Events() uint64 {
	if t == nil {
		return 0
	}
	return t.events
}

// Flush writes any buffered lines to the underlying writer.
func (t *Tap) Flush() error {
	if t == nil {
		return nil
	}
	return t.w.Flush()
}

// on reports whether a layer is recorded; safe on a nil receiver.
func (t *Tap) on(l Layer) bool { return t != nil && t.mask&l != 0 }

// begin starts an event line with the three universal fields.
func (t *Tap) begin(now float64, layer, kind string) []byte {
	b := t.line[:0]
	b = append(b, `{"t":`...)
	b = strconv.AppendFloat(b, now, 'g', -1, 64)
	b = append(b, `,"layer":"`...)
	b = append(b, layer...)
	b = append(b, `","kind":"`...)
	b = append(b, kind...)
	b = append(b, '"')
	return b
}

// end terminates and writes an event line.
func (t *Tap) end(b []byte) {
	b = append(b, '}', '\n')
	t.line = b
	t.w.Write(b)
	t.events++
}

// The field helpers append `,"key":value`. Keys and string values are
// fixed identifiers from this package's vocabulary, so no JSON escaping is
// needed.

func fInt(b []byte, key string, v int) []byte {
	b = append(b, ',', '"')
	b = append(b, key...)
	b = append(b, '"', ':')
	return strconv.AppendInt(b, int64(v), 10)
}

func fUint(b []byte, key string, v uint64) []byte {
	b = append(b, ',', '"')
	b = append(b, key...)
	b = append(b, '"', ':')
	return strconv.AppendUint(b, v, 10)
}

func fFloat(b []byte, key string, v float64) []byte {
	b = append(b, ',', '"')
	b = append(b, key...)
	b = append(b, '"', ':')
	return strconv.AppendFloat(b, v, 'g', -1, 64)
}

func fStr(b []byte, key, v string) []byte {
	b = append(b, ',', '"')
	b = append(b, key...)
	b = append(b, `":"`...)
	b = append(b, v...)
	return append(b, '"')
}

// --- sim layer ---

// SimScheduled records an engine event being scheduled for time at.
func (t *Tap) SimScheduled(now, at float64, id uint64) {
	if !t.on(LayerSim) {
		return
	}
	t.reg.Inc("sim.scheduled", 1)
	b := t.begin(now, "sim", "schedule")
	b = fUint(b, "id", id)
	b = fFloat(b, "at", at)
	t.end(b)
}

// SimFired records an engine event executing.
func (t *Tap) SimFired(now float64, id uint64) {
	if !t.on(LayerSim) {
		return
	}
	t.reg.Inc("sim.fired", 1)
	b := t.begin(now, "sim", "fire")
	b = fUint(b, "id", id)
	t.end(b)
}

// SimCancelled records a scheduled event being cancelled before firing.
func (t *Tap) SimCancelled(now float64, id uint64) {
	if !t.on(LayerSim) {
		return
	}
	t.reg.Inc("sim.cancelled", 1)
	b := t.begin(now, "sim", "cancel")
	b = fUint(b, "id", id)
	t.end(b)
}

// --- medium layer ---

// FrameTx records a unicast data-frame transmission attempt (attempt 1 is
// the first send; higher attempts are ARQ retransmissions).
func (t *Tap) FrameTx(now float64, from, to, trace, size, attempt int) {
	if !t.on(LayerMedium) {
		return
	}
	t.reg.Inc("medium.tx", 1)
	if attempt > 1 {
		t.reg.Inc("medium.retransmit", 1)
	}
	t.reg.Observe("medium.frame_size", float64(size))
	b := t.begin(now, "medium", "tx")
	b = fInt(b, "trace", trace)
	b = fInt(b, "from", from)
	b = fInt(b, "to", to)
	b = fInt(b, "size", size)
	b = fInt(b, "attempt", attempt)
	t.end(b)
}

// FrameRx records a frame reaching its receiver's handler.
func (t *Tap) FrameRx(now float64, from, to, trace, size int) {
	if !t.on(LayerMedium) {
		return
	}
	t.reg.Inc("medium.rx", 1)
	b := t.begin(now, "medium", "rx")
	b = fInt(b, "trace", trace)
	b = fInt(b, "from", from)
	b = fInt(b, "to", to)
	b = fInt(b, "size", size)
	t.end(b)
}

// FrameDup records a duplicate data reception absorbed by the ARQ (a
// retransmission raced a lost ACK).
func (t *Tap) FrameDup(now float64, from, to, trace int) {
	if !t.on(LayerMedium) {
		return
	}
	t.reg.Inc("medium.dup", 1)
	b := t.begin(now, "medium", "dup")
	b = fInt(b, "trace", trace)
	b = fInt(b, "from", from)
	b = fInt(b, "to", to)
	t.end(b)
}

// FrameLost records a frame failing on air; reason is "range", "loss" or
// "compromised".
func (t *Tap) FrameLost(now float64, from, to, trace int, reason string) {
	if !t.on(LayerMedium) {
		return
	}
	t.reg.Inc("medium.lost."+reason, 1)
	b := t.begin(now, "medium", "loss")
	b = fInt(b, "trace", trace)
	b = fInt(b, "from", from)
	b = fInt(b, "to", to)
	b = fStr(b, "detail", reason)
	t.end(b)
}

// BroadcastTx records a one-hop local broadcast leaving a node. Receivers
// out of radio range are physics, not loss, so only actual receptions and
// random losses are recorded per receiver.
func (t *Tap) BroadcastTx(now float64, from, trace, size int) {
	if !t.on(LayerMedium) {
		return
	}
	t.reg.Inc("medium.bcast", 1)
	b := t.begin(now, "medium", "bcast")
	b = fInt(b, "trace", trace)
	b = fInt(b, "from", from)
	b = fInt(b, "size", size)
	t.end(b)
}

// AckTx records an ARQ ACK frame being transmitted back to the sender.
func (t *Tap) AckTx(now float64, from, to, trace int) {
	if !t.on(LayerMedium) {
		return
	}
	t.reg.Inc("medium.ack", 1)
	b := t.begin(now, "medium", "ack")
	b = fInt(b, "trace", trace)
	b = fInt(b, "from", from)
	b = fInt(b, "to", to)
	t.end(b)
}

// AckLost records an ACK frame failing on air (triggering a retransmission
// or retry exhaustion at the sender).
func (t *Tap) AckLost(now float64, from, to, trace int) {
	if !t.on(LayerMedium) {
		return
	}
	t.reg.Inc("medium.ack_lost", 1)
	b := t.begin(now, "medium", "ackloss")
	b = fInt(b, "trace", trace)
	b = fInt(b, "from", from)
	b = fInt(b, "to", to)
	t.end(b)
}

// --- route layer ---

// RouteSend records a routing leg starting at a node.
func (t *Tap) RouteSend(now float64, trace, node int) {
	if !t.on(LayerRoute) {
		return
	}
	t.reg.Inc("route.send", 1)
	b := t.begin(now, "route", "send")
	b = fInt(b, "trace", trace)
	b = fInt(b, "node", node)
	t.end(b)
}

// Forward records a one-hop forwarding decision; mode is "greedy",
// "perimeter", or a protocol-specific label (AO2P's "claim").
func (t *Tap) Forward(now float64, trace, from, to int, mode string) {
	if !t.on(LayerRoute) {
		return
	}
	t.reg.Inc("route.fwd", 1)
	b := t.begin(now, "route", "fwd")
	b = fInt(b, "trace", trace)
	b = fInt(b, "from", from)
	b = fInt(b, "to", to)
	b = fStr(b, "detail", mode)
	t.end(b)
}

// Hop records a packet's confirmed arrival at a node (the hop count after
// the arrival rides along).
func (t *Tap) Hop(now float64, trace, node, hops int) {
	if !t.on(LayerRoute) {
		return
	}
	t.reg.Inc("route.hop", 1)
	b := t.begin(now, "route", "hop")
	b = fInt(b, "trace", trace)
	b = fInt(b, "node", node)
	b = fInt(b, "hops", hops)
	t.end(b)
}

// LegEnd records a routing leg terminating at a node with a gpsr outcome
// ("delivered", "arrived-closest", "dropped-ttl", ...).
func (t *Tap) LegEnd(now float64, trace, node int, outcome string) {
	if !t.on(LayerRoute) {
		return
	}
	t.reg.Inc("route.leg."+outcome, 1)
	b := t.begin(now, "route", "leg")
	b = fInt(b, "trace", trace)
	b = fInt(b, "node", node)
	b = fStr(b, "detail", outcome)
	t.end(b)
}

// RFSelected records an ALERT random forwarder joining a packet's path.
func (t *Tap) RFSelected(now float64, trace, node int) {
	if !t.on(LayerRoute) {
		return
	}
	t.reg.Inc("route.rf", 1)
	b := t.begin(now, "route", "rf")
	b = fInt(b, "trace", trace)
	b = fInt(b, "node", node)
	t.end(b)
}

// ZoneBroadcast records a destination-zone delivery step (ALERT's
// k-anonymity broadcast, step 1, or an intersection-guard release, step 2).
func (t *Tap) ZoneBroadcast(now float64, trace, node, step int) {
	if !t.on(LayerRoute) {
		return
	}
	t.reg.Inc("route.zonecast", 1)
	b := t.begin(now, "route", "zonecast")
	b = fInt(b, "trace", trace)
	b = fInt(b, "node", node)
	b = fInt(b, "step", step)
	t.end(b)
}

// --- packet layer ---

// PacketSent records an application packet being issued by its source.
func (t *Tap) PacketSent(now float64, trace, src, dst int) {
	if !t.on(LayerPacket) {
		return
	}
	t.reg.Inc("packet.sent", 1)
	b := t.begin(now, "packet", "sent")
	b = fInt(b, "trace", trace)
	b = fInt(b, "src", src)
	b = fInt(b, "dst", dst)
	t.end(b)
}

// PacketDone records a packet's terminal outcome — emitted exactly once per
// packet, when its metrics record completes.
func (t *Tap) PacketDone(now float64, trace int, delivered bool, hops int, latency float64) {
	if !t.on(LayerPacket) {
		return
	}
	detail := "dropped"
	if delivered {
		detail = "delivered"
		t.reg.Inc("packet.delivered", 1)
		t.reg.Observe("packet.latency", latency)
	} else {
		t.reg.Inc("packet.dropped", 1)
	}
	t.reg.Observe("packet.hops", float64(hops))
	b := t.begin(now, "packet", "terminal")
	b = fInt(b, "trace", trace)
	b = fInt(b, "hops", hops)
	b = fFloat(b, "latency", latency)
	b = fStr(b, "detail", detail)
	t.end(b)
}

// --- crypto layer ---

// Crypto records n cryptographic operations being charged; op is "sym" or
// "pub".
func (t *Tap) Crypto(now float64, op string, n int) {
	if !t.on(LayerCrypto) {
		return
	}
	t.reg.Inc("crypto."+op, uint64(n))
	b := t.begin(now, "crypto", "charge")
	b = fStr(b, "detail", op)
	b = fInt(b, "n", n)
	t.end(b)
}

// WriteSnapshot appends the registry's counters and histograms to the
// stream as "registry"-layer lines, sorted by name so the stream stays
// deterministic. Call it once, after the run drains.
func (t *Tap) WriteSnapshot(now float64) {
	if t == nil {
		return
	}
	names := make([]string, 0, len(t.reg.counters))
	for name := range t.reg.counters {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		b := t.begin(now, "registry", "counter")
		b = fStr(b, "name", name)
		b = fUint(b, "n", t.reg.counters[name])
		t.end(b)
	}
	names = names[:0]
	for name := range t.reg.hists {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		h := t.reg.hists[name]
		b := t.begin(now, "registry", "hist")
		b = fStr(b, "name", name)
		b = fUint(b, "count", h.Count)
		b = fFloat(b, "sum", h.Sum)
		b = fFloat(b, "min", h.Min)
		b = fFloat(b, "max", h.Max)
		b = append(b, `,"buckets":[`...)
		first := true
		for i, n := range h.buckets {
			if n == 0 {
				continue
			}
			if !first {
				b = append(b, ',')
			}
			first = false
			b = append(b, '[')
			b = strconv.AppendFloat(b, bucketBound(i), 'g', -1, 64)
			b = append(b, ',')
			b = strconv.AppendUint(b, n, 10)
			b = append(b, ']')
		}
		b = append(b, ']')
		t.end(b)
	}
}

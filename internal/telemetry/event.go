// Event parsing and filtering: the read side of the JSONL stream, used by
// cmd/tlmgrep and by the lifecycle property tests that replay a run's story
// from its events.

package telemetry

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
)

// Event is one parsed JSONL line. Fields absent from a line keep their
// zero value, except the id-like fields (Trace, Node, From, To, Src, Dst),
// which default to -1 so a valid node or packet id 0 is distinguishable
// from "not present".
type Event struct {
	T     float64 `json:"t"`
	Layer string  `json:"layer"`
	Kind  string  `json:"kind"`

	// sim fields
	ID uint64  `json:"id"`
	At float64 `json:"at"`

	// identity fields (-1 = not present)
	Trace int `json:"trace"`
	Node  int `json:"node"`
	From  int `json:"from"`
	To    int `json:"to"`
	Src   int `json:"src"`
	Dst   int `json:"dst"`

	Size    int     `json:"size"`
	Attempt int     `json:"attempt"`
	Hops    int     `json:"hops"`
	Step    int     `json:"step"`
	N       uint64  `json:"n"`
	Latency float64 `json:"latency"`
	// Detail carries the event's string qualifier: a loss reason, a
	// forwarding mode, a leg outcome, "delivered"/"dropped", a crypto op.
	Detail string `json:"detail"`

	// registry snapshot fields
	Name    string       `json:"name"`
	Count   uint64       `json:"count"`
	Sum     float64      `json:"sum"`
	Min     float64      `json:"min"`
	Max     float64      `json:"max"`
	Buckets [][2]float64 `json:"buckets"`
}

// ParseLine parses one JSONL line into an Event.
func ParseLine(line []byte) (Event, error) {
	ev := Event{Trace: -1, Node: -1, From: -1, To: -1, Src: -1, Dst: -1}
	if err := json.Unmarshal(line, &ev); err != nil {
		return Event{}, fmt.Errorf("telemetry: parse event: %w", err)
	}
	return ev, nil
}

// maxLine bounds one JSONL line; registry hist lines are the longest and
// stay well under this.
const maxLine = 1 << 20

// ReadAll parses a whole JSONL stream.
func ReadAll(r io.Reader) ([]Event, error) {
	var out []Event
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 64*1024), maxLine)
	for sc.Scan() {
		if len(sc.Bytes()) == 0 {
			continue
		}
		ev, err := ParseLine(sc.Bytes())
		if err != nil {
			return nil, fmt.Errorf("line %d: %w", len(out)+1, err)
		}
		out = append(out, ev)
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("telemetry: read events: %w", err)
	}
	return out, nil
}

// Filter selects events by packet trace id, node involvement, kind and
// layer. Zero-valued (or -1 for ids) fields match everything.
type Filter struct {
	// Trace matches events attributed to this packet id (-1: any).
	Trace int
	// Node matches events that involve this node in any role — node, from,
	// to, src or dst (-1: any).
	Node int
	// Kind matches the event kind exactly ("" matches any).
	Kind string
	// Layers is a mask of layers to keep (0 keeps all).
	Layers Layer
}

// NewFilter returns a filter that matches every event.
func NewFilter() Filter { return Filter{Trace: -1, Node: -1} }

// Match reports whether the event passes the filter.
func (f Filter) Match(ev Event) bool {
	if f.Trace >= 0 && ev.Trace != f.Trace {
		return false
	}
	if f.Node >= 0 &&
		ev.Node != f.Node && ev.From != f.Node && ev.To != f.Node &&
		ev.Src != f.Node && ev.Dst != f.Node {
		return false
	}
	if f.Kind != "" && ev.Kind != f.Kind {
		return false
	}
	if f.Layers != 0 && f.Layers&LayerByName(ev.Layer) == 0 {
		return false
	}
	return true
}

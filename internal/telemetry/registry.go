// The counters/histograms registry: named aggregates maintained alongside
// the event stream, snapshotted once per run. Tap emit methods feed it, so
// a run's headline telemetry (frames sent, legs per outcome, latency
// distribution) is available without re-scanning the JSONL.

package telemetry

import "math"

// Registry accumulates named counters and histograms for one run.
type Registry struct {
	counters map[string]uint64
	hists    map[string]*Histogram
}

// NewRegistry creates an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		counters: make(map[string]uint64),
		hists:    make(map[string]*Histogram),
	}
}

// Inc adds n to a named counter.
func (r *Registry) Inc(name string, n uint64) {
	if r == nil {
		return
	}
	r.counters[name] += n
}

// Counter returns a named counter's value (0 if never incremented).
func (r *Registry) Counter(name string) uint64 {
	if r == nil {
		return 0
	}
	return r.counters[name]
}

// Observe records one sample into a named histogram.
func (r *Registry) Observe(name string, v float64) {
	if r == nil {
		return
	}
	h := r.hists[name]
	if h == nil {
		h = &Histogram{Min: math.Inf(1), Max: math.Inf(-1)}
		r.hists[name] = h
	}
	h.observe(v)
}

// Hist returns a named histogram, or nil if nothing was observed under that
// name.
func (r *Registry) Hist(name string) *Histogram {
	if r == nil {
		return nil
	}
	return r.hists[name]
}

// histBuckets geometric buckets with ratio 4 starting at bucketBase cover
// 1 µs up to ~4.6 days — wide enough for latencies in seconds and frame
// sizes in bytes alike.
const (
	histBuckets = 20
	bucketBase  = 1e-6
)

// bucketBound returns the inclusive upper bound of bucket i; the last
// bucket additionally absorbs everything larger.
func bucketBound(i int) float64 {
	bound := bucketBase
	for k := 0; k < i; k++ {
		bound *= 4
	}
	return bound
}

// Histogram is a fixed-bucket geometric histogram with count/sum/min/max.
type Histogram struct {
	Count   uint64
	Sum     float64
	Min     float64
	Max     float64
	buckets [histBuckets]uint64
}

func (h *Histogram) observe(v float64) {
	h.Count++
	h.Sum += v
	if v < h.Min {
		h.Min = v
	}
	if v > h.Max {
		h.Max = v
	}
	bound := bucketBase
	for i := 0; i < histBuckets-1; i++ {
		if v <= bound {
			h.buckets[i]++
			return
		}
		bound *= 4
	}
	h.buckets[histBuckets-1]++
}

// Mean returns the histogram's mean sample (0 when empty).
func (h *Histogram) Mean() float64 {
	if h == nil || h.Count == 0 {
		return 0
	}
	return h.Sum / float64(h.Count)
}

// Bucket returns the count in bucket i (0 ≤ i < Buckets()).
func (h *Histogram) Bucket(i int) uint64 { return h.buckets[i] }

// Buckets returns the number of buckets.
func (h *Histogram) Buckets() int { return histBuckets }

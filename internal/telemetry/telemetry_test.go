package telemetry

import (
	"bytes"
	"encoding/json"
	"io"
	"math"
	"sort"
	"strings"
	"testing"
)

// emitEverything exercises every emit method once against t (which may be
// nil or partially masked).
func emitEverything(t *Tap) {
	t.SimScheduled(0, 1.5, 7)
	t.SimFired(1.5, 7)
	t.SimCancelled(1.5, 8)
	t.FrameTx(2, 1, 2, 3, 512, 1)
	t.FrameTx(2.1, 1, 2, 3, 512, 2)
	t.FrameRx(2.2, 1, 2, 3, 512)
	t.FrameDup(2.3, 1, 2, 3)
	t.FrameLost(2.4, 1, 2, 3, "loss")
	t.BroadcastTx(2.5, 1, 3, 512)
	t.AckTx(2.6, 2, 1, 3)
	t.AckLost(2.7, 2, 1, 3)
	t.RouteSend(3, 3, 1)
	t.Forward(3.1, 3, 1, 2, "greedy")
	t.Hop(3.2, 3, 2, 1)
	t.LegEnd(3.3, 3, 2, "arrived-closest")
	t.RFSelected(3.4, 3, 2)
	t.ZoneBroadcast(3.5, 3, 2, 1)
	t.PacketSent(4, 3, 1, 2)
	t.PacketDone(4.5, 3, true, 4, 0.5)
	t.PacketDone(4.6, 4, false, 2, 0)
	t.Crypto(5, "sym", 3)
}

// TestNilTapSafe: every emit method, and the accessors, must be no-ops on a
// nil receiver — un-guarded cold paths cannot crash a run with telemetry
// off.
func TestNilTapSafe(t *testing.T) {
	var tap *Tap
	emitEverything(tap)
	tap.WriteSnapshot(10)
	if tap.Events() != 0 {
		t.Errorf("nil tap Events() = %d, want 0", tap.Events())
	}
	if tap.Registry() != nil {
		t.Errorf("nil tap Registry() != nil")
	}
	if err := tap.Flush(); err != nil {
		t.Errorf("nil tap Flush() = %v", err)
	}
}

// TestNilTapZeroAlloc is the overhead contract: a disabled (nil) tap costs
// the call sites one branch and zero allocations.
func TestNilTapZeroAlloc(t *testing.T) {
	var tap *Tap
	allocs := testing.AllocsPerRun(1000, func() {
		if tap != nil {
			tap.FrameTx(1, 2, 3, 4, 512, 1)
		}
		tap.Hop(1, 2, 3, 4) // nil-receiver-safe path must not allocate either
	})
	if allocs != 0 {
		t.Errorf("nil-tap emit allocates %v per op, want 0", allocs)
	}
}

// TestMaskedLayerZeroAllocAndSilent: a live tap with a layer masked off
// writes nothing for that layer and allocates nothing on the masked path.
func TestMaskedLayerZeroAllocAndSilent(t *testing.T) {
	var buf bytes.Buffer
	tap := New(&buf, LayerMedium)
	tap.SimScheduled(0, 1, 1)
	tap.RouteSend(0, 1, 2)
	tap.PacketSent(0, 1, 2, 3)
	tap.Crypto(0, "sym", 1)
	tap.Flush()
	if buf.Len() != 0 {
		t.Fatalf("masked layers wrote %d bytes: %q", buf.Len(), buf.String())
	}
	allocs := testing.AllocsPerRun(1000, func() {
		tap.RouteSend(0, 1, 2)
	})
	if allocs != 0 {
		t.Errorf("masked emit allocates %v per op, want 0", allocs)
	}
}

// TestStreamDeterminism: the same emission sequence produces byte-identical
// output, including the registry snapshot.
func TestStreamDeterminism(t *testing.T) {
	render := func() []byte {
		var buf bytes.Buffer
		tap := New(&buf, LayerAll)
		emitEverything(tap)
		tap.WriteSnapshot(10)
		tap.Flush()
		return buf.Bytes()
	}
	a, b := render(), render()
	if !bytes.Equal(a, b) {
		t.Fatalf("streams differ:\n%s\n---\n%s", a, b)
	}
	if len(a) == 0 {
		t.Fatal("empty stream")
	}
}

// TestEventsValidJSON: every emitted line must be valid JSON and parse back
// through ParseLine with id fields intact.
func TestEventsValidJSON(t *testing.T) {
	var buf bytes.Buffer
	tap := New(&buf, LayerAll)
	emitEverything(tap)
	tap.WriteSnapshot(10)
	tap.Flush()

	raw := buf.String()
	events, err := ReadAll(strings.NewReader(raw))
	if err != nil {
		t.Fatal(err)
	}
	if uint64(len(events)) != tap.Events() {
		t.Fatalf("parsed %d events, tap reports %d", len(events), tap.Events())
	}
	for _, line := range strings.Split(strings.TrimSpace(raw), "\n") {
		var v map[string]any
		if err := json.Unmarshal([]byte(line), &v); err != nil {
			t.Fatalf("invalid JSON line %q: %v", line, err)
		}
	}
}

func TestParseLineFields(t *testing.T) {
	var buf bytes.Buffer
	tap := New(&buf, LayerAll)
	tap.FrameTx(2.5, 0, 7, 0, 512, 2) // node 0 and trace 0 must survive parsing
	tap.Flush()
	events, err := ReadAll(&buf)
	if err != nil {
		t.Fatal(err)
	}
	ev := events[0]
	if ev.T != 2.5 || ev.Layer != "medium" || ev.Kind != "tx" {
		t.Errorf("header fields wrong: %+v", ev)
	}
	if ev.From != 0 || ev.To != 7 || ev.Trace != 0 || ev.Size != 512 || ev.Attempt != 2 {
		t.Errorf("body fields wrong: %+v", ev)
	}
	if ev.Node != -1 || ev.Src != -1 || ev.Dst != -1 {
		t.Errorf("absent id fields should be -1: %+v", ev)
	}
}

// TestSnapshotSorted: registry lines appear in sorted name order so the
// stream is deterministic regardless of map iteration.
func TestSnapshotSorted(t *testing.T) {
	var buf bytes.Buffer
	tap := New(&buf, LayerAll)
	emitEverything(tap)
	before := tap.Events()
	tap.WriteSnapshot(10)
	tap.Flush()
	if tap.Events() == before {
		t.Fatal("snapshot emitted nothing")
	}
	events, err := ReadAll(&buf)
	if err != nil {
		t.Fatal(err)
	}
	var counters, hists []string
	for _, ev := range events {
		switch {
		case ev.Layer == "registry" && ev.Kind == "counter":
			counters = append(counters, ev.Name)
		case ev.Layer == "registry" && ev.Kind == "hist":
			hists = append(hists, ev.Name)
		}
	}
	if len(counters) == 0 || len(hists) == 0 {
		t.Fatalf("snapshot missing sections: %d counters, %d hists", len(counters), len(hists))
	}
	if !sort.StringsAreSorted(counters) {
		t.Errorf("counters not sorted: %v", counters)
	}
	if !sort.StringsAreSorted(hists) {
		t.Errorf("hists not sorted: %v", hists)
	}
}

func TestRegistryAggregates(t *testing.T) {
	var buf bytes.Buffer
	tap := New(&buf, LayerAll)
	emitEverything(tap)
	reg := tap.Registry()
	if got := reg.Counter("medium.tx"); got != 2 {
		t.Errorf("medium.tx = %d, want 2", got)
	}
	if got := reg.Counter("medium.retransmit"); got != 1 {
		t.Errorf("medium.retransmit = %d, want 1", got)
	}
	if got := reg.Counter("crypto.sym"); got != 3 {
		t.Errorf("crypto.sym = %d, want 3 (n accumulates)", got)
	}
	if got := reg.Counter("route.leg.arrived-closest"); got != 1 {
		t.Errorf("route.leg.arrived-closest = %d, want 1", got)
	}
	h := reg.Hist("packet.latency")
	if h == nil || h.Count != 1 || h.Sum != 0.5 {
		t.Fatalf("packet.latency hist = %+v", h)
	}
	if h.Min != 0.5 || h.Max != 0.5 || h.Mean() != 0.5 {
		t.Errorf("hist min/max/mean = %v/%v/%v, want 0.5", h.Min, h.Max, h.Mean())
	}
}

func TestHistogramBuckets(t *testing.T) {
	r := NewRegistry()
	r.Observe("x", 0)    // below the base: first bucket
	r.Observe("x", 1e-6) // exactly the base bound: first bucket (inclusive)
	r.Observe("x", 2e-6) // second bucket
	r.Observe("x", 1e12) // beyond the last bound: overflow bucket
	h := r.Hist("x")
	if h.Bucket(0) != 2 {
		t.Errorf("bucket 0 = %d, want 2", h.Bucket(0))
	}
	if h.Bucket(1) != 1 {
		t.Errorf("bucket 1 = %d, want 1", h.Bucket(1))
	}
	if h.Bucket(h.Buckets()-1) != 1 {
		t.Errorf("overflow bucket = %d, want 1", h.Bucket(h.Buckets()-1))
	}
	if h.Count != 4 || h.Min != 0 || h.Max != 1e12 {
		t.Errorf("count/min/max = %d/%v/%v", h.Count, h.Min, h.Max)
	}
	// Bounds grow geometrically with ratio 4.
	if b0, b1 := bucketBound(0), bucketBound(1); b1 != 4*b0 {
		t.Errorf("bucket bounds %v, %v: want ratio 4", b0, b1)
	}
	// Nil registry is inert.
	var nilReg *Registry
	nilReg.Inc("y", 1)
	nilReg.Observe("y", 1)
	if nilReg.Counter("y") != 0 || nilReg.Hist("y") != nil {
		t.Error("nil registry not inert")
	}
}

func TestParseLayers(t *testing.T) {
	cases := []struct {
		in   string
		want Layer
		err  bool
	}{
		{"", LayerAll, false},
		{"all", LayerAll, false},
		{"sim", LayerSim, false},
		{"medium,route", LayerMedium | LayerRoute, false},
		{" packet , crypto ", LayerPacket | LayerCrypto, false},
		{"bogus", 0, true},
		{"medium,bogus", 0, true},
	}
	for _, c := range cases {
		got, err := ParseLayers(c.in)
		if c.err {
			if err == nil {
				t.Errorf("ParseLayers(%q): want error", c.in)
			}
			continue
		}
		if err != nil || got != c.want {
			t.Errorf("ParseLayers(%q) = %v, %v; want %v", c.in, got, err, c.want)
		}
	}
	for _, name := range []string{"sim", "medium", "route", "packet", "crypto"} {
		if LayerByName(name) == 0 {
			t.Errorf("LayerByName(%q) = 0", name)
		}
	}
	if LayerByName("registry") != 0 {
		t.Error("registry is a stream section, not a maskable layer")
	}
}

func TestFilter(t *testing.T) {
	var buf bytes.Buffer
	tap := New(&buf, LayerAll)
	emitEverything(tap)
	tap.Flush()
	events, err := ReadAll(&buf)
	if err != nil {
		t.Fatal(err)
	}

	all := NewFilter()
	for _, ev := range events {
		if !all.Match(ev) {
			t.Fatalf("default filter rejected %+v", ev)
		}
	}

	byTrace := NewFilter()
	byTrace.Trace = 3
	n := 0
	for _, ev := range events {
		if byTrace.Match(ev) {
			n++
			if ev.Trace != 3 {
				t.Errorf("trace filter passed %+v", ev)
			}
		}
	}
	if n == 0 {
		t.Error("trace filter matched nothing")
	}

	byNode := NewFilter()
	byNode.Node = 2
	for _, ev := range events {
		if byNode.Match(ev) &&
			ev.Node != 2 && ev.From != 2 && ev.To != 2 && ev.Src != 2 && ev.Dst != 2 {
			t.Errorf("node filter passed %+v", ev)
		}
	}

	byKind := NewFilter()
	byKind.Kind = "hop"
	n = 0
	for _, ev := range events {
		if byKind.Match(ev) {
			n++
			if ev.Kind != "hop" {
				t.Errorf("kind filter passed %+v", ev)
			}
		}
	}
	if n != 1 {
		t.Errorf("kind filter matched %d, want 1", n)
	}

	byLayer := NewFilter()
	byLayer.Layers = LayerMedium
	for _, ev := range events {
		if byLayer.Match(ev) && ev.Layer != "medium" {
			t.Errorf("layer filter passed %+v", ev)
		}
	}
}

func TestManifestEncode(t *testing.T) {
	var buf bytes.Buffer
	m := Manifest{
		ScenarioHash:    "abc",
		Seed:            7,
		Protocol:        "alert",
		GoVersion:       "go-test",
		WallSeconds:     2,
		SimSeconds:      110,
		ProcessedEvents: 1000,
		EmittedEvents:   500,
	}
	if err := m.Encode(&buf); err != nil {
		t.Fatal(err)
	}
	var got Manifest
	if err := json.Unmarshal(buf.Bytes(), &got); err != nil {
		t.Fatal(err)
	}
	if got.EventsPerSecond != 500 {
		t.Errorf("events_per_second = %v, want 500", got.EventsPerSecond)
	}
	if got.ScenarioHash != "abc" || got.Seed != 7 || got.EmittedEvents != 500 {
		t.Errorf("round trip lost fields: %+v", got)
	}
}

func TestTraceOf(t *testing.T) {
	if TraceOf("not traceable") != NoTrace {
		t.Error("untraceable payload should map to NoTrace")
	}
	if TraceOf(nil) != NoTrace {
		t.Error("nil payload should map to NoTrace")
	}
	if TraceOf(traceable(42)) != 42 {
		t.Error("traceable payload lost its id")
	}
}

type traceable int

func (tr traceable) TelemetryTrace() int { return int(tr) }

func TestReadAllErrors(t *testing.T) {
	if _, err := ReadAll(strings.NewReader("{broken\n")); err == nil {
		t.Error("malformed line should error")
	}
	events, err := ReadAll(strings.NewReader("\n\n"))
	if err != nil || len(events) != 0 {
		t.Errorf("blank lines: %v, %v", events, err)
	}
}

func TestFloatFormattingRoundTrips(t *testing.T) {
	// The encoder uses strconv 'g' with -1 precision: every float64 must
	// survive a JSON round trip exactly — the foundation of golden-stream
	// hashing.
	var buf bytes.Buffer
	tap := New(&buf, LayerAll)
	vals := []float64{0, 1.0 / 3.0, math.Pi, 1e-9, 12345.678901234567}
	for i, v := range vals {
		tap.PacketDone(v, i, true, 1, v)
	}
	tap.Flush()
	events, err := ReadAll(&buf)
	if err != nil {
		t.Fatal(err)
	}
	for i, ev := range events {
		if ev.T != vals[i] || ev.Latency != vals[i] {
			t.Errorf("float %v round-tripped to t=%v latency=%v", vals[i], ev.T, ev.Latency)
		}
	}
}

// BenchmarkDisabledTap measures the nil-tap call-site pattern the stack
// uses everywhere: branch on nil, skip the call. This is the "zero overhead
// when disabled" contract in benchmark form.
func BenchmarkDisabledTap(b *testing.B) {
	var tap *Tap
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if tap != nil {
			tap.FrameTx(1, 2, 3, 4, 512, 1)
		}
	}
}

// BenchmarkEnabledEmit measures one enabled frame-tx emit into a discarding
// writer: the steady-state per-event cost with telemetry on.
func BenchmarkEnabledEmit(b *testing.B) {
	tap := New(io.Discard, LayerAll)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		tap.FrameTx(float64(i), 2, 3, 4, 512, 1)
	}
}

// The run manifest: the provenance record written next to a telemetry
// stream so a JSONL file is self-describing — which scenario (by hash),
// which seed, which toolchain, and how much work the run did. Wall-clock
// quantities live here and only here: the event stream itself must stay
// byte-identical across runs of the same seed.

package telemetry

import (
	"encoding/json"
	"fmt"
	"io"
)

// Manifest describes one telemetry run.
type Manifest struct {
	// ScenarioHash is a content hash of the full scenario configuration
	// (experiment.Scenario.Hash), identifying what was simulated.
	ScenarioHash string `json:"scenario_hash"`
	// Seed is the run's random seed.
	Seed int64 `json:"seed"`
	// Protocol is the routing protocol under test.
	Protocol string `json:"protocol"`
	// GoVersion is the toolchain that produced the run.
	GoVersion string `json:"go_version"`
	// WallSeconds is the run's host wall-clock duration.
	WallSeconds float64 `json:"wall_seconds"`
	// SimSeconds is the simulated horizon (Duration + DrainTime).
	SimSeconds float64 `json:"sim_seconds"`
	// ProcessedEvents is how many engine events the run executed.
	ProcessedEvents uint64 `json:"processed_events"`
	// EventsPerSecond is ProcessedEvents / WallSeconds (0 when wall time
	// was not measured).
	EventsPerSecond float64 `json:"events_per_second"`
	// EmittedEvents is how many telemetry lines the tap wrote.
	EmittedEvents uint64 `json:"emitted_events"`
}

// Encode writes the manifest as indented JSON.
func (m Manifest) Encode(w io.Writer) error {
	if m.WallSeconds > 0 {
		m.EventsPerSecond = float64(m.ProcessedEvents) / m.WallSeconds
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	if err := enc.Encode(m); err != nil {
		return fmt.Errorf("telemetry: encode manifest: %w", err)
	}
	return nil
}

// Package zap re-implements ZAP ("Anonymous Geo-Forwarding in MANETs
// through Location Cloaking", Wu, Liu, Hong & Bertino [13]) as the ALERT
// paper describes it: a destination-anonymity-only protocol that
// geo-forwards each packet to an anonymity zone cloaking the destination
// and locally broadcasts inside it. ALERT's Section 3.3 contrasts its
// two-step multicast against ZAP's intersection-attack remedy — enlarging
// the anonymity zone — which buys anonymity with ever-growing broadcast
// overhead; this implementation exposes exactly that trade-off.
package zap

import (
	"alertmanet/internal/geo"
	"alertmanet/internal/gpsr"
	"alertmanet/internal/locservice"
	"alertmanet/internal/medium"
	"alertmanet/internal/metrics"
	"alertmanet/internal/node"
	"alertmanet/internal/rng"
)

// Config tunes the ZAP model.
type Config struct {
	// PacketSize is the on-air data packet size.
	PacketSize int
	// HopBudget is the geo-forwarding TTL in hops.
	HopBudget int
	// ZoneSide is the anonymity zone's initial side length in meters.
	ZoneSide float64
	// EnlargePerPacket grows the zone side by this many meters on every
	// subsequent packet of a session — ZAP's intersection-attack remedy.
	// Zero disables enlargement.
	EnlargePerPacket float64
	// MaxZoneSide caps enlargement.
	MaxZoneSide float64
	// CompleteTimeout records a packet undelivered after this long.
	CompleteTimeout float64
}

// DefaultConfig sizes the initial zone like ALERT's H=5 destination zone.
func DefaultConfig() Config {
	return Config{
		PacketSize:       512,
		HopBudget:        gpsr.DefaultHopBudget,
		ZoneSide:         180,
		EnlargePerPacket: 0,
		MaxZoneSide:      700,
		CompleteTimeout:  8,
	}
}

// flood is the in-zone broadcast payload.
type flood struct {
	m *meta
	// Zone is the anonymity zone; in-zone receivers relay once.
	Zone geo.Rect
}

// TelemetryTrace implements telemetry.Traceable, attributing flood frames
// to the packet that triggered them.
func (f *flood) TelemetryTrace() int { return f.m.rec.Seq }

// meta is per-packet simulation bookkeeping.
type meta struct {
	rec       *metrics.PacketRecord
	dst       medium.NodeID
	zone      geo.Rect
	completed bool
	delivered bool
	relayed   map[medium.NodeID]bool
}

// Protocol is one ZAP instance.
type Protocol struct {
	net      *node.Network
	loc      *locservice.Service
	router   *gpsr.Router
	cfg      Config
	col      *metrics.Collector
	rnd      *rng.Source
	sessions map[[2]medium.NodeID]int // packets sent per pair, drives enlargement
}

// New creates the protocol and attaches handlers on every node.
func New(net *node.Network, loc *locservice.Service, cfg Config, src *rng.Source) *Protocol {
	p := &Protocol{
		net:      net,
		loc:      loc,
		router:   gpsr.New(net),
		cfg:      cfg,
		col:      metrics.NewCollector(),
		rnd:      src.Split("zap"),
		sessions: make(map[[2]medium.NodeID]int),
	}
	for i := 0; i < net.N(); i++ {
		id := medium.NodeID(i)
		net.Med.Attach(id, func(_ medium.NodeID, payload any, _ int) {
			switch v := payload.(type) {
			case *gpsr.Packet:
				p.router.Handle(id, v)
			case *flood:
				p.handleFlood(id, v)
			}
		})
	}
	return p
}

// Collector returns the run's metrics.
func (p *Protocol) Collector() *metrics.Collector { return p.col }

// Router exposes the underlying router.
func (p *Protocol) Router() *gpsr.Router { return p.router }

// zoneFor builds the cloaking zone: a square of the session's current side
// length whose center is offset from D's registered position so D is not
// trivially the centroid.
func (p *Protocol) zoneFor(pos geo.Point, side float64) geo.Rect {
	half := side / 2
	off := geo.Point{
		X: p.rnd.Uniform(-half/2, half/2),
		Y: p.rnd.Uniform(-half/2, half/2),
	}
	center := p.net.Field().Clamp(geo.Point{X: pos.X + off.X, Y: pos.Y + off.Y})
	zone := geo.Rect{
		Min: geo.Point{X: center.X - half, Y: center.Y - half},
		Max: geo.Point{X: center.X + half, Y: center.Y + half},
	}
	// Clamp the zone to the field; since both the center and D's position
	// are inside the field and the offset is at most half the zone's
	// half-side, D always remains inside the clamped zone.
	zone.Min = p.net.Field().Clamp(zone.Min)
	zone.Max = p.net.Field().Clamp(zone.Max)
	return zone
}

// Send routes one packet: geo-forward to the zone's anchor, then flood the
// zone. The error is always nil; the signature matches the experiment
// harness's Proto interface.
func (p *Protocol) Send(src, dst medium.NodeID, data []byte) (*metrics.PacketRecord, error) {
	rec := p.col.Start(src, dst, p.net.Eng.Now())
	entry, ok := p.loc.Lookup(dst)
	if !ok {
		p.col.Complete(rec, 0, false)
		return rec, nil
	}
	key := [2]medium.NodeID{src, dst}
	n := p.sessions[key]
	p.sessions[key] = n + 1
	side := p.cfg.ZoneSide + float64(n)*p.cfg.EnlargePerPacket
	if p.cfg.MaxZoneSide > 0 && side > p.cfg.MaxZoneSide {
		side = p.cfg.MaxZoneSide
	}
	m := &meta{
		rec:     rec,
		dst:     dst,
		zone:    p.zoneFor(entry.Pos, side),
		relayed: make(map[medium.NodeID]bool),
	}
	if p.cfg.CompleteTimeout > 0 {
		p.net.Eng.Schedule(p.cfg.CompleteTimeout, func() { p.finish(m, 0, false) })
	}
	anchor := m.zone.Center()
	pkt := p.router.NewPacket()
	pkt.Dest = anchor
	pkt.DeliverTo = gpsr.NoDeliverTo
	pkt.Payload = m
	pkt.Size = p.cfg.PacketSize
	pkt.HopBudget = p.cfg.HopBudget
	pkt.OnOutcome = func(at medium.NodeID, gp *gpsr.Packet, out gpsr.Outcome) {
		m.rec.Hops += gp.Hops
		m.rec.Path = append(m.rec.Path, gp.Path...)
		// The geo-forwarding leg is over either way; the in-zone flood
		// carries the meta, not this frame, so it can be recycled.
		defer p.router.Release(gp)
		if out != gpsr.ArrivedClosest {
			p.finish(m, 0, false)
			return
		}
		p.broadcastZone(at, m)
	}
	pkt.SetTrace(rec.Seq)
	// One symmetric seal at the source; ZAP carries no per-hop crypto.
	p.net.NoteSym(1)
	p.net.Eng.Schedule(p.net.Costs.SymEncrypt, func() { p.router.Send(src, pkt) })
	return rec, nil
}

// broadcastZone floods the anonymity zone starting at the anchor node.
func (p *Protocol) broadcastZone(at medium.NodeID, m *meta) {
	m.relayed[at] = true
	m.rec.Hops++
	p.net.Med.Broadcast(at, &flood{m: m, Zone: m.zone}, p.cfg.PacketSize)
}

// handleFlood runs at every flood receiver: deliver if addressee, relay
// once if inside the zone.
func (p *Protocol) handleFlood(at medium.NodeID, f *flood) {
	m := f.m
	if at == m.dst && !m.delivered {
		m.delivered = true
		p.net.NoteSym(1)
		p.net.Eng.Schedule(p.net.Costs.SymDecrypt, func() {
			p.finish(m, p.net.Eng.Now(), true)
		})
	}
	if f.Zone.Contains(p.net.Med.PositionNow(at)) && !m.relayed[at] {
		m.relayed[at] = true
		m.rec.Hops++
		p.net.Med.Broadcast(at, f, p.cfg.PacketSize)
	}
}

func (p *Protocol) finish(m *meta, at float64, delivered bool) {
	if m.completed {
		return
	}
	m.completed = true
	p.col.Complete(m.rec, at, delivered)
}

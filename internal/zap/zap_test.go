package zap

import (
	"testing"

	"alertmanet/internal/crypt"
	"alertmanet/internal/geo"
	"alertmanet/internal/locservice"
	"alertmanet/internal/medium"
	"alertmanet/internal/mobility"
	"alertmanet/internal/node"
	"alertmanet/internal/rng"
	"alertmanet/internal/sim"
)

var field = geo.Rect{Min: geo.Point{X: 0, Y: 0}, Max: geo.Point{X: 1000, Y: 1000}}

func build(seed int64, n int, cfg Config) (*sim.Engine, *node.Network, *Protocol) {
	eng := sim.NewEngine()
	src := rng.New(seed)
	mob := mobility.NewStatic(field, n, src)
	med := medium.MustNew(eng, mob, medium.DefaultParams(), src)
	net := node.NewNetwork(eng, med, crypt.NewFastSuite(src), crypt.DefaultCostModel(),
		node.Config{}, src)
	loc := locservice.New(net, locservice.DefaultConfig())
	return eng, net, New(net, loc, cfg, src)
}

func farPair(net *node.Network, minDist float64) (medium.NodeID, medium.NodeID) {
	for s := 0; s < net.N(); s++ {
		for d := s + 1; d < net.N(); d++ {
			if net.Node(medium.NodeID(s)).Position().Dist(
				net.Node(medium.NodeID(d)).Position()) >= minDist {
				return medium.NodeID(s), medium.NodeID(d)
			}
		}
	}
	panic("no far pair")
}

func TestDelivery(t *testing.T) {
	eng, net, p := build(1, 200, DefaultConfig())
	s, d := farPair(net, 600)
	rec, _ := p.Send(s, d, []byte("x"))
	eng.RunUntil(30)
	if !rec.Delivered {
		t.Fatal("ZAP failed to deliver in dense static network")
	}
	if rec.Hops < 3 {
		t.Fatalf("hops = %d; geo-forwarding plus zone flood expected", rec.Hops)
	}
}

func TestZoneContainsDestination(t *testing.T) {
	_, net, p := build(2, 100, DefaultConfig())
	for i := 0; i < 50; i++ {
		d := medium.NodeID(i % net.N())
		e, _ := p.loc.Lookup(d)
		zone := p.zoneFor(e.Pos, p.cfg.ZoneSide)
		if !zone.Contains(e.Pos) {
			t.Fatalf("zone %v does not contain D at %v", zone, e.Pos)
		}
		if !field.ContainsRect(zone) {
			t.Fatalf("zone %v escapes the field", zone)
		}
	}
}

func TestZoneNotCenteredOnDestination(t *testing.T) {
	// The cloaking zone's centroid should usually differ from D's
	// position — otherwise the zone itself reveals D.
	_, net, p := build(3, 100, DefaultConfig())
	centered := 0
	for i := 0; i < 50; i++ {
		d := medium.NodeID(i % net.N())
		e, _ := p.loc.Lookup(d)
		zone := p.zoneFor(e.Pos, p.cfg.ZoneSide)
		if zone.Center().Dist(e.Pos) < 1 {
			centered++
		}
	}
	if centered > 10 {
		t.Fatalf("zone centered on D %d/50 times", centered)
	}
}

func TestEnlargementGrowsOverhead(t *testing.T) {
	// ZAP's intersection-attack remedy: the zone (and thus the flood)
	// grows every packet, so hops/packet increase through the session —
	// the cost ALERT's Section 3.3 strategy avoids.
	run := func(enlarge float64) (first, last float64) {
		cfg := DefaultConfig()
		cfg.EnlargePerPacket = enlarge
		eng, net, p := build(4, 200, cfg)
		s, d := farPair(net, 500)
		const packets = 10
		for i := 0; i < packets; i++ {
			at := float64(i) * 2
			eng.At(at+0.001, func() { p.Send(s, d, []byte("x")) })
		}
		eng.RunUntil(60)
		recs := p.Collector().Records()
		if len(recs) < packets {
			t.Fatalf("only %d records", len(recs))
		}
		head, tail := 0.0, 0.0
		for i := 0; i < 3; i++ {
			head += float64(recs[i].Hops)
			tail += float64(recs[packets-1-i].Hops)
		}
		return head / 3, tail / 3
	}
	firstFlat, lastFlat := run(0)
	firstGrow, lastGrow := run(50)
	if lastGrow <= firstGrow {
		t.Fatalf("enlargement did not grow overhead: %v -> %v", firstGrow, lastGrow)
	}
	growth := lastGrow - firstGrow
	flat := lastFlat - firstFlat
	if growth <= flat {
		t.Fatalf("growth with enlargement (%v) should exceed without (%v)", growth, flat)
	}
}

func TestDestinationAnonymityWithinZone(t *testing.T) {
	// Every node in the zone receives the flood: D hides among them
	// (ZAP's k-anonymity analogue).
	eng, net, p := build(5, 200, DefaultConfig())
	s, d := farPair(net, 500)
	receivers := map[medium.NodeID]bool{}
	net.Med.TapRecv(func(rx medium.Reception) {
		if _, ok := rx.Payload.(*flood); ok {
			receivers[rx.To] = true
		}
	})
	rec, _ := p.Send(s, d, []byte("x"))
	eng.RunUntil(30)
	if !rec.Delivered {
		t.Skip("undeliverable placement")
	}
	if !receivers[d] {
		t.Fatal("destination missing from flood receivers")
	}
	if len(receivers) < 3 {
		t.Fatalf("only %d flood receivers; no anonymity crowd", len(receivers))
	}
}

func TestUndeliveredCompletes(t *testing.T) {
	eng := sim.NewEngine()
	src := rng.New(6)
	pos := []geo.Point{{X: 0, Y: 0}, {X: 900, Y: 900}}
	mob := &pinned{pos: pos}
	med := medium.MustNew(eng, mob, medium.DefaultParams(), src)
	net := node.NewNetwork(eng, med, crypt.NewFastSuite(src), crypt.ZeroCostModel(),
		node.Config{}, src)
	loc := locservice.New(net, locservice.DefaultConfig())
	p := New(net, loc, DefaultConfig(), src)
	rec, _ := p.Send(0, 1, []byte("x"))
	eng.RunUntil(30)
	if rec.Delivered || p.Collector().Completed() != 1 {
		t.Fatal("unreachable destination should complete undelivered")
	}
}

type pinned struct{ pos []geo.Point }

func (p *pinned) Position(id int, _ float64) geo.Point { return p.pos[id] }
func (p *pinned) N() int                               { return len(p.pos) }
func (p *pinned) Field() geo.Rect                      { return field }

func TestLocServiceFailure(t *testing.T) {
	eng, _, p := build(7, 30, DefaultConfig())
	for i := 0; i < p.loc.NumServers(); i++ {
		p.loc.FailServer(i)
	}
	rec, _ := p.Send(0, 5, []byte("x"))
	eng.RunUntil(5)
	if rec.Delivered || p.Collector().Completed() != 1 {
		t.Fatal("send without location service should fail fast")
	}
}

func TestMaxZoneSideCaps(t *testing.T) {
	cfg := DefaultConfig()
	cfg.EnlargePerPacket = 500
	cfg.MaxZoneSide = 300
	eng, net, p := build(8, 100, cfg)
	s, d := farPair(net, 400)
	for i := 0; i < 5; i++ {
		at := float64(i) * 2
		eng.At(at+0.001, func() { p.Send(s, d, []byte("x")) })
	}
	eng.RunUntil(30)
	// Indirect check: the last zone side is capped, so hops stay bounded
	// by the 300 m zone's population rather than the whole field's.
	recs := p.Collector().Records()
	last := recs[len(recs)-1]
	if last.Hops > 60 {
		t.Fatalf("hops %d suggest the zone escaped its cap", last.Hops)
	}
}

// Package mobility implements the node movement models used in the paper's
// evaluation (Section 5.1): the random waypoint model [17] and the reference
// point group mobility model [18], plus a static placement for baselines.
//
// Positions are computed analytically as a deterministic function of
// simulated time. Each node owns a private random stream, so Position may
// be queried for any node at any time, in any order, and always returns the
// same trajectory for a given experiment seed.
package mobility

import (
	"sort"

	"alertmanet/internal/geo"
	"alertmanet/internal/rng"
)

// Model yields node positions over simulated time.
type Model interface {
	// Position returns the location of node id at time t (seconds).
	// id must be in [0, N()); t must be >= 0.
	Position(id int, t float64) geo.Point
	// N returns the number of nodes.
	N() int
	// Field returns the network area nodes move within.
	Field() geo.Rect
}

// Forker runs fn over a disjoint partition of [0, n) and returns when every
// call has — satisfied by *sim.Workers without importing it. Construction
// loops whose per-index work is independent (per-node walkers with private
// split rng streams) use it to build large fields on all cores; a nil
// Forker means serial. Constructors branch on nil rather than funnel
// through a helper so the serial path allocates no closures.
type Forker interface {
	For(n int, fn func(lo, hi int))
}

// Preparer is implemented by models whose Position reads shared lazily
// extended state (GroupMobility's group reference trajectories). Prepare
// extends that state through time t, so subsequent Position calls at times
// <= t mutate only per-id state and may safely run concurrently over
// disjoint id ranges. Models without shared state (RandomWaypoint's and
// Static's per-node state is already disjoint) do not implement it.
type Preparer interface {
	Prepare(t float64)
}

// leg is one straight movement segment: travel from 'from' toward 'to'
// starting at t0, then pause until pauseEnd.
type leg struct {
	t0       float64
	from, to geo.Point
	speed    float64
	arrive   float64 // time the node reaches 'to'
	pauseEnd float64 // end of post-arrival pause; next leg starts here
}

// walker generates a lazy, cached random-waypoint trajectory inside a box.
type walker struct {
	src      *rng.Source
	box      geo.Rect
	minSpeed float64
	maxSpeed float64
	pause    float64
	start    geo.Point
	legs     []leg
}

func newWalker(src *rng.Source, box geo.Rect, minSpeed, maxSpeed, pause float64) *walker {
	w := &walker{src: src, box: box, minSpeed: minSpeed, maxSpeed: maxSpeed, pause: pause}
	w.start = geo.RandomPoint(box, src)
	return w
}

// extend generates legs until the trajectory covers time t.
func (w *walker) extend(t float64) {
	for {
		var cur geo.Point
		var t0 float64
		if n := len(w.legs); n == 0 {
			cur, t0 = w.start, 0
		} else {
			last := w.legs[n-1]
			if last.pauseEnd > t {
				return
			}
			cur, t0 = last.to, last.pauseEnd
		}
		to := geo.RandomPoint(w.box, w.src)
		speed := w.minSpeed
		if w.maxSpeed > w.minSpeed {
			speed = w.src.Uniform(w.minSpeed, w.maxSpeed)
		}
		d := cur.Dist(to)
		var arrive float64
		if speed <= 0 || d == 0 {
			// Stationary node: a single infinite "leg" at cur.
			w.legs = append(w.legs, leg{t0: t0, from: cur, to: cur, speed: 0,
				arrive: t0, pauseEnd: 1e300})
			return
		}
		arrive = t0 + d/speed
		w.legs = append(w.legs, leg{t0: t0, from: cur, to: to, speed: speed,
			arrive: arrive, pauseEnd: arrive + w.pause})
	}
}

// at returns the walker's position at time t.
func (w *walker) at(t float64) geo.Point {
	if t < 0 {
		t = 0
	}
	w.extend(t)
	// Binary search for the leg containing t.
	i := sort.Search(len(w.legs), func(i int) bool { return w.legs[i].pauseEnd > t })
	if i == len(w.legs) {
		i = len(w.legs) - 1
	}
	l := w.legs[i]
	if l.speed == 0 || t >= l.arrive {
		return l.to
	}
	frac := (t - l.t0) * l.speed / l.from.Dist(l.to)
	if frac > 1 {
		frac = 1
	}
	return l.from.Lerp(l.to, frac)
}

// RandomWaypoint is the classic random waypoint model: each node repeatedly
// picks a uniform destination in the field and travels to it in a straight
// line at its speed, optionally pausing on arrival. The paper moves nodes at
// a fixed speed (2 m/s default, up to 8 m/s in sweeps) with no pause.
type RandomWaypoint struct {
	field   geo.Rect
	walkers []*walker
	warmup  float64
}

// Config holds the common mobility parameters.
type Config struct {
	// MinSpeed and MaxSpeed bound the per-leg speed in m/s. Setting both
	// equal gives the paper's fixed-speed movement; MaxSpeed <= 0 means
	// static nodes.
	MinSpeed, MaxSpeed float64
	// Pause is the dwell time at each waypoint in seconds.
	Pause float64
	// Warmup pre-advances every trajectory by this many seconds, so the
	// observed window starts near the random waypoint model's steady
	// state (center-weighted) instead of the uniform initial placement —
	// the classic RWP initialization-bias correction.
	Warmup float64
	// Fork, when non-nil, parallelizes per-node construction. Each node's
	// walker draws only from its own index-split rng stream, so the
	// trajectories are identical for any Fork degree; only build wall time
	// changes.
	Fork Forker `json:"-"`
}

// Fixed returns a Config with a single fixed speed and no pause.
func Fixed(speed float64) Config {
	return Config{MinSpeed: speed, MaxSpeed: speed}
}

// NewRandomWaypoint creates a random waypoint model for n nodes on field.
func NewRandomWaypoint(field geo.Rect, n int, cfg Config, src *rng.Source) *RandomWaypoint {
	m := &RandomWaypoint{field: field, walkers: make([]*walker, n), warmup: cfg.Warmup}
	// SplitIndex derives each stream from the immutable parent seed, and
	// every walker draws only from its own stream, so construction order is
	// free: the parallel build is trajectory-identical to the serial one.
	if cfg.Fork == nil {
		for i := 0; i < n; i++ {
			m.walkers[i] = newWalker(src.SplitIndex("rwp", i), field,
				cfg.MinSpeed, cfg.MaxSpeed, cfg.Pause)
		}
		return m
	}
	cfg.Fork.For(n, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			m.walkers[i] = newWalker(src.SplitIndex("rwp", i), field,
				cfg.MinSpeed, cfg.MaxSpeed, cfg.Pause)
		}
	})
	return m
}

// Position implements Model.
func (m *RandomWaypoint) Position(id int, t float64) geo.Point {
	return m.walkers[id].at(t + m.warmup)
}

// N implements Model.
func (m *RandomWaypoint) N() int { return len(m.walkers) }

// Field implements Model.
func (m *RandomWaypoint) Field() geo.Rect { return m.field }

// Static places nodes uniformly at random and never moves them.
type Static struct {
	field     geo.Rect
	positions []geo.Point
}

// NewStatic creates a static uniform placement of n nodes.
func NewStatic(field geo.Rect, n int, src *rng.Source) *Static {
	s := &Static{field: field, positions: make([]geo.Point, n)}
	placement := src.Split("static")
	for i := range s.positions {
		s.positions[i] = geo.RandomPoint(field, placement)
	}
	return s
}

// Position implements Model.
func (s *Static) Position(id int, _ float64) geo.Point { return s.positions[id] }

// N implements Model.
func (s *Static) N() int { return len(s.positions) }

// Field implements Model.
func (s *Static) Field() geo.Rect { return s.field }

// GroupMobility is the reference point group mobility model [18]: nodes are
// divided into groups; each group has a logical reference point performing
// random waypoint movement over the field, and each member wanders within a
// bounded box (the group's "movement range", e.g. 150 m for 10 groups or
// 200 m for 5 groups in the paper) around that reference point.
type GroupMobility struct {
	field      geo.Rect
	refs       []*walker // one per group
	local      []*walker // one per node, in a box centered at the origin
	groupOf    []int
	groupRange float64
}

// NewGroupMobility creates a group mobility model: n nodes in numGroups
// groups, each confined within a groupRange x groupRange box around its
// moving reference point. Nodes are assigned to groups contiguously.
func NewGroupMobility(field geo.Rect, n, numGroups int, groupRange float64,
	cfg Config, src *rng.Source) *GroupMobility {
	if numGroups < 1 {
		numGroups = 1
	}
	g := &GroupMobility{
		field:      field,
		refs:       make([]*walker, numGroups),
		local:      make([]*walker, n),
		groupOf:    make([]int, n),
		groupRange: groupRange,
	}
	// Shrink the reference field so member boxes stay mostly inside.
	half := groupRange / 2
	refField := geo.Rect{
		Min: geo.Point{X: field.Min.X + half, Y: field.Min.Y + half},
		Max: geo.Point{X: field.Max.X - half, Y: field.Max.Y - half},
	}
	if refField.Empty() {
		refField = field
	}
	localBox := geo.Rect{Min: geo.Point{X: -half, Y: -half}, Max: geo.Point{X: half, Y: half}}
	// Members drift within their box at a fraction of the group speed,
	// which keeps intra-group topology relatively stable — the property
	// the paper leans on ("nodes are less randomly distributed in the
	// group mobility model"). The loops are written out twice so the
	// serial path allocates no closures.
	if cfg.Fork == nil {
		for gi := 0; gi < numGroups; gi++ {
			g.refs[gi] = newWalker(src.SplitIndex("group-ref", gi), refField,
				cfg.MinSpeed, cfg.MaxSpeed, cfg.Pause)
		}
		for i := 0; i < n; i++ {
			g.groupOf[i] = i * numGroups / n
			g.local[i] = newWalker(src.SplitIndex("group-local", i), localBox,
				cfg.MinSpeed/2, cfg.MaxSpeed/2, cfg.Pause)
		}
		return g
	}
	cfg.Fork.For(numGroups, func(lo, hi int) {
		for gi := lo; gi < hi; gi++ {
			g.refs[gi] = newWalker(src.SplitIndex("group-ref", gi), refField,
				cfg.MinSpeed, cfg.MaxSpeed, cfg.Pause)
		}
	})
	cfg.Fork.For(n, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			g.groupOf[i] = i * numGroups / n
			g.local[i] = newWalker(src.SplitIndex("group-local", i), localBox,
				cfg.MinSpeed/2, cfg.MaxSpeed/2, cfg.Pause)
		}
	})
	return g
}

// Prepare implements Preparer: it extends every group's shared reference
// trajectory through time t, after which Position calls at times <= t only
// read the reference legs and mutate the caller's own local walker.
func (g *GroupMobility) Prepare(t float64) {
	for _, r := range g.refs {
		r.extend(t)
	}
}

// Position implements Model: reference point plus bounded local offset,
// clamped to the field.
func (g *GroupMobility) Position(id int, t float64) geo.Point {
	ref := g.refs[g.groupOf[id]].at(t)
	off := g.local[id].at(t)
	return g.field.Clamp(geo.Point{X: ref.X + off.X, Y: ref.Y + off.Y})
}

// N implements Model.
func (g *GroupMobility) N() int { return len(g.local) }

// Field implements Model.
func (g *GroupMobility) Field() geo.Rect { return g.field }

// Groups returns the number of groups.
func (g *GroupMobility) Groups() int { return len(g.refs) }

// GroupOf returns the group index of a node.
func (g *GroupMobility) GroupOf(id int) int { return g.groupOf[id] }

// NodesIn returns the ids of all nodes of m located inside zone at time t.
func NodesIn(m Model, zone geo.Rect, t float64) []int {
	return NodesInInto(m, zone, t, nil)
}

// NodesInInto is NodesIn with a caller-reusable destination: ids are
// appended to dst[:0] and the (possibly regrown) slice is returned, so a
// loop over many zones reuses one backing array instead of regrowing a
// fresh slice per query.
func NodesInInto(m Model, zone geo.Rect, t float64, dst []int) []int {
	ids := dst[:0]
	for id := 0; id < m.N(); id++ {
		if zone.Contains(m.Position(id, t)) {
			ids = append(ids, id)
		}
	}
	return ids
}

// Nearest returns the id of the node of m closest to p at time t, and its
// distance. It returns (-1, +Inf) for an empty model.
func Nearest(m Model, p geo.Point, t float64) (int, float64) {
	best := -1
	bestD2 := 1e300
	for id := 0; id < m.N(); id++ {
		d2 := m.Position(id, t).Dist2(p)
		if d2 < bestD2 {
			best, bestD2 = id, d2
		}
	}
	if best < 0 {
		return -1, 1e300
	}
	return best, m.Position(best, t).Dist(p)
}

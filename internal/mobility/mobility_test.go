package mobility

import (
	"math"
	"testing"
	"testing/quick"

	"alertmanet/internal/geo"
	"alertmanet/internal/rng"
)

var field = geo.Rect{Min: geo.Point{X: 0, Y: 0}, Max: geo.Point{X: 1000, Y: 1000}}

func TestRWPStaysInField(t *testing.T) {
	m := NewRandomWaypoint(field, 50, Fixed(2), rng.New(1))
	for id := 0; id < m.N(); id++ {
		for _, tm := range []float64{0, 0.5, 1, 10, 33.3, 100, 500} {
			p := m.Position(id, tm)
			if !field.Contains(p) {
				t.Fatalf("node %d at t=%v outside field: %v", id, tm, p)
			}
		}
	}
}

func TestRWPDeterministic(t *testing.T) {
	a := NewRandomWaypoint(field, 20, Fixed(2), rng.New(7))
	b := NewRandomWaypoint(field, 20, Fixed(2), rng.New(7))
	for id := 0; id < 20; id++ {
		for _, tm := range []float64{0, 5, 50, 100} {
			if a.Position(id, tm) != b.Position(id, tm) {
				t.Fatalf("trajectories differ for node %d at t=%v", id, tm)
			}
		}
	}
}

func TestRWPQueryOrderIndependent(t *testing.T) {
	a := NewRandomWaypoint(field, 5, Fixed(2), rng.New(9))
	b := NewRandomWaypoint(field, 5, Fixed(2), rng.New(9))
	// Query a forward in time, b backward; trajectories must agree.
	times := []float64{0, 10, 20, 40, 80}
	posA := map[float64]geo.Point{}
	for _, tm := range times {
		posA[tm] = a.Position(0, tm)
	}
	for i := len(times) - 1; i >= 0; i-- {
		tm := times[i]
		if b.Position(0, tm) != posA[tm] {
			t.Fatalf("query order changed trajectory at t=%v", tm)
		}
	}
}

func TestRWPSpeedBound(t *testing.T) {
	const speed = 4.0
	m := NewRandomWaypoint(field, 10, Fixed(speed), rng.New(3))
	const dt = 0.25
	for id := 0; id < 10; id++ {
		prev := m.Position(id, 0)
		for tm := dt; tm < 60; tm += dt {
			cur := m.Position(id, tm)
			if d := prev.Dist(cur); d > speed*dt+1e-9 {
				t.Fatalf("node %d moved %v m in %v s (speed %v)", id, d, dt, speed)
			}
			prev = cur
		}
	}
}

func TestRWPZeroSpeedIsStatic(t *testing.T) {
	m := NewRandomWaypoint(field, 10, Fixed(0), rng.New(4))
	for id := 0; id < 10; id++ {
		p0 := m.Position(id, 0)
		if m.Position(id, 1000) != p0 {
			t.Fatalf("zero-speed node %d moved", id)
		}
	}
}

func TestRWPActuallyMoves(t *testing.T) {
	m := NewRandomWaypoint(field, 10, Fixed(2), rng.New(5))
	moved := 0
	for id := 0; id < 10; id++ {
		if m.Position(id, 0).Dist(m.Position(id, 50)) > 1 {
			moved++
		}
	}
	if moved < 8 {
		t.Fatalf("only %d/10 nodes moved appreciably in 50 s at 2 m/s", moved)
	}
}

func TestRWPPause(t *testing.T) {
	cfg := Config{MinSpeed: 5, MaxSpeed: 5, Pause: 10}
	m := NewRandomWaypoint(field, 5, cfg, rng.New(6))
	// With a 10 s pause at each waypoint the node should be stationary
	// for stretches. Sample finely and verify some zero-motion intervals.
	stationary := 0
	for id := 0; id < 5; id++ {
		prev := m.Position(id, 0)
		for tm := 0.5; tm < 400; tm += 0.5 {
			cur := m.Position(id, tm)
			if cur == prev {
				stationary++
			}
			prev = cur
		}
	}
	if stationary == 0 {
		t.Fatal("pause time produced no stationary samples")
	}
}

func TestRWPSpeedRange(t *testing.T) {
	cfg := Config{MinSpeed: 1, MaxSpeed: 9}
	m := NewRandomWaypoint(field, 20, cfg, rng.New(8))
	// Average instantaneous speed should be strictly inside (1, 9).
	total, samples := 0.0, 0
	for id := 0; id < 20; id++ {
		prev := m.Position(id, 0)
		for tm := 1.0; tm < 100; tm++ {
			cur := m.Position(id, tm)
			total += prev.Dist(cur)
			samples++
			prev = cur
		}
	}
	avg := total / float64(samples)
	if avg <= 0.5 || avg >= 9 {
		t.Fatalf("average speed %v outside plausible range", avg)
	}
}

func TestStatic(t *testing.T) {
	m := NewStatic(field, 30, rng.New(2))
	if m.N() != 30 || m.Field() != field {
		t.Fatal("metadata wrong")
	}
	for id := 0; id < 30; id++ {
		p := m.Position(id, 0)
		if !field.Contains(p) {
			t.Fatalf("node %d outside field", id)
		}
		if m.Position(id, 12345) != p {
			t.Fatalf("static node %d moved", id)
		}
	}
}

func TestStaticSpread(t *testing.T) {
	m := NewStatic(field, 200, rng.New(11))
	// All four quadrants should be populated for a uniform placement.
	quad := [4]int{}
	for id := 0; id < 200; id++ {
		p := m.Position(id, 0)
		i := 0
		if p.X > 500 {
			i |= 1
		}
		if p.Y > 500 {
			i |= 2
		}
		quad[i]++
	}
	for i, c := range quad {
		if c < 20 {
			t.Fatalf("quadrant %d has only %d/200 nodes", i, c)
		}
	}
}

func TestGroupMobilityBasics(t *testing.T) {
	m := NewGroupMobility(field, 200, 10, 150, Fixed(2), rng.New(12))
	if m.N() != 200 || m.Groups() != 10 {
		t.Fatal("metadata wrong")
	}
	for id := 0; id < m.N(); id++ {
		for _, tm := range []float64{0, 10, 50, 100} {
			if !field.Contains(m.Position(id, tm)) {
				t.Fatalf("node %d escaped field at t=%v", id, tm)
			}
		}
	}
}

func TestGroupMembersStayNearReference(t *testing.T) {
	const rangeM = 150.0
	m := NewGroupMobility(field, 100, 5, rangeM, Fixed(2), rng.New(13))
	for id := 0; id < m.N(); id++ {
		g := m.GroupOf(id)
		for _, tm := range []float64{0, 25, 75} {
			p := m.Position(id, tm)
			ref := m.refs[g].at(tm)
			// Offset is bounded by the box half-diagonal.
			maxD := rangeM / 2 * math.Sqrt2
			if p.Dist(ref) > maxD+1e-6 {
				t.Fatalf("node %d strayed %v m from its reference (max %v)",
					id, p.Dist(ref), maxD)
			}
		}
	}
}

func TestGroupAssignmentContiguous(t *testing.T) {
	m := NewGroupMobility(field, 100, 10, 150, Fixed(2), rng.New(14))
	last := -1
	for id := 0; id < 100; id++ {
		g := m.GroupOf(id)
		if g < last {
			t.Fatal("group assignment not monotone")
		}
		last = g
	}
	if last != 9 {
		t.Fatalf("last group = %d, want 9", last)
	}
	// Each group gets 10 nodes.
	count := map[int]int{}
	for id := 0; id < 100; id++ {
		count[m.GroupOf(id)]++
	}
	for g, c := range count {
		if c != 10 {
			t.Fatalf("group %d has %d nodes", g, c)
		}
	}
}

func TestGroupClustering(t *testing.T) {
	// Members of the same group should be far closer to each other on
	// average than members of different groups.
	m := NewGroupMobility(field, 100, 5, 150, Fixed(2), rng.New(15))
	var sameSum, diffSum float64
	var sameN, diffN int
	for a := 0; a < 100; a += 3 {
		for b := a + 1; b < 100; b += 7 {
			d := m.Position(a, 50).Dist(m.Position(b, 50))
			if m.GroupOf(a) == m.GroupOf(b) {
				sameSum += d
				sameN++
			} else {
				diffSum += d
				diffN++
			}
		}
	}
	if sameN == 0 || diffN == 0 {
		t.Skip("sampling produced no pairs")
	}
	same := sameSum / float64(sameN)
	diff := diffSum / float64(diffN)
	if same >= diff {
		t.Fatalf("intra-group distance %v >= inter-group %v", same, diff)
	}
}

func TestNodesIn(t *testing.T) {
	m := NewStatic(field, 100, rng.New(16))
	zone := geo.Rect{Min: geo.Point{X: 0, Y: 0}, Max: geo.Point{X: 500, Y: 500}}
	ids := NodesIn(m, zone, 0)
	for _, id := range ids {
		if !zone.Contains(m.Position(id, 0)) {
			t.Fatalf("node %d reported in zone but isn't", id)
		}
	}
	// Complement check.
	inSet := map[int]bool{}
	for _, id := range ids {
		inSet[id] = true
	}
	for id := 0; id < 100; id++ {
		if !inSet[id] && zone.Contains(m.Position(id, 0)) {
			t.Fatalf("node %d in zone but not reported", id)
		}
	}
}

func TestNearest(t *testing.T) {
	m := NewStatic(field, 50, rng.New(17))
	p := geo.Point{X: 300, Y: 700}
	id, d := Nearest(m, p, 0)
	if id < 0 {
		t.Fatal("no nearest found")
	}
	for other := 0; other < 50; other++ {
		if m.Position(other, 0).Dist(p) < d-1e-9 {
			t.Fatalf("node %d closer than reported nearest %d", other, id)
		}
	}
}

func TestNearestEmpty(t *testing.T) {
	m := NewStatic(field, 0, rng.New(18))
	id, _ := Nearest(m, geo.Point{}, 0)
	if id != -1 {
		t.Fatal("empty model should return -1")
	}
}

// Property: positions are always inside the field for arbitrary query times
// and model parameters.
func TestQuickInField(t *testing.T) {
	f := func(seed int64, speedRaw, tRaw uint16, group bool) bool {
		speed := float64(speedRaw%10) + 0.5
		tm := float64(tRaw) / 10
		var m Model
		if group {
			m = NewGroupMobility(field, 20, 4, 150, Fixed(speed), rng.New(seed))
		} else {
			m = NewRandomWaypoint(field, 20, Fixed(speed), rng.New(seed))
		}
		for id := 0; id < m.N(); id++ {
			if !field.Contains(m.Position(id, tm)) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

// Property: trajectory is continuous — small dt implies small displacement
// bounded by MaxSpeed*dt.
func TestQuickContinuity(t *testing.T) {
	m := NewRandomWaypoint(field, 10, Config{MinSpeed: 1, MaxSpeed: 8}, rng.New(19))
	f := func(idRaw uint8, tRaw uint16) bool {
		id := int(idRaw) % 10
		tm := float64(tRaw) / 100
		const dt = 0.01
		a := m.Position(id, tm)
		b := m.Position(id, tm+dt)
		return a.Dist(b) <= 8*dt+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func TestWarmupShiftsSteadyState(t *testing.T) {
	// The RWP steady state concentrates nodes toward the field center;
	// with warmup, the t=0 snapshot should already show that bias
	// relative to the uniform initial placement.
	centerMass := func(warmup float64) float64 {
		cfg := Fixed(10)
		cfg.Warmup = warmup
		m := NewRandomWaypoint(field, 400, cfg, rng.New(55))
		center := geo.Rect{Min: geo.Point{X: 250, Y: 250}, Max: geo.Point{X: 750, Y: 750}}
		in := 0
		for id := 0; id < 400; id++ {
			if center.Contains(m.Position(id, 0)) {
				in++
			}
		}
		return float64(in) / 400
	}
	uniform := centerMass(0)
	warmed := centerMass(500)
	if warmed <= uniform {
		t.Fatalf("warmup did not concentrate mass: %v vs %v", warmed, uniform)
	}
	// Uniform placement puts ~25% in the center quarter; steady state
	// should exceed 30%.
	if warmed < 0.3 {
		t.Fatalf("steady-state center mass %v too low", warmed)
	}
}

func TestWarmupPreservesContinuity(t *testing.T) {
	cfg := Fixed(4)
	cfg.Warmup = 123
	m := NewRandomWaypoint(field, 5, cfg, rng.New(56))
	for id := 0; id < 5; id++ {
		a := m.Position(id, 10)
		b := m.Position(id, 10.5)
		if a.Dist(b) > 2+1e-9 {
			t.Fatalf("node %d jumped %v m in 0.5 s", id, a.Dist(b))
		}
	}
}

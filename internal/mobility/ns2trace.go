// NS-2 movement-trace support: the paper's experiments ran on NS-2.29,
// whose setdest-format mobility files are the lingua franca of MANET
// research. ParseNS2 reads that format and yields a Model, so recorded or
// published scenarios can drive this simulator directly.
//
// Recognized lines (comments and unrelated commands are skipped):
//
//	$node_(7) set X_ 123.45
//	$node_(7) set Y_ 678.90
//	$ns_ at 12.5 "$node_(7) setdest 400.0 500.0 2.0"
//
// The third form sends node 7, starting at time 12.5, toward (400, 500) at
// 2.0 m/s; the node stops there until its next setdest.
package mobility

import (
	"bufio"
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"

	"alertmanet/internal/geo"
)

// traceLeg is one commanded movement: from `start`, head toward `to` at
// `speed` beginning at time t0.
type traceLeg struct {
	t0    float64
	to    geo.Point
	speed float64
}

// TraceModel replays an NS-2 movement script.
type TraceModel struct {
	field   geo.Rect
	initial []geo.Point
	legs    [][]traceLeg // per node, sorted by t0
}

// ParseNS2 reads an NS-2 setdest script. The node count is taken from the
// highest node index seen; field should be the scenario's area (positions
// are clamped to it).
func ParseNS2(r io.Reader, field geo.Rect) (*TraceModel, error) {
	initial := map[int]geo.Point{}
	legs := map[int][]traceLeg{}
	maxID := -1

	scan := bufio.NewScanner(r)
	lineNo := 0
	for scan.Scan() {
		lineNo++
		line := strings.TrimSpace(scan.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		switch {
		case strings.HasPrefix(line, "$node_("):
			// $node_(7) set X_ 123.45
			id, rest, err := parseNodeRef(line)
			if err != nil {
				return nil, fmt.Errorf("line %d: %w", lineNo, err)
			}
			fields := strings.Fields(rest)
			if len(fields) != 3 || fields[0] != "set" {
				continue // e.g. "set Z_ 0.0" handled below; unknown -> skip
			}
			v, err := strconv.ParseFloat(fields[2], 64)
			if err != nil {
				return nil, fmt.Errorf("line %d: bad coordinate %q", lineNo, fields[2])
			}
			p := initial[id]
			switch fields[1] {
			case "X_":
				p.X = v
			case "Y_":
				p.Y = v
			case "Z_":
				// ignored: planar simulation
			default:
				continue
			}
			initial[id] = p
			if id > maxID {
				maxID = id
			}
		case strings.HasPrefix(line, "$ns_ at "):
			// $ns_ at 12.5 "$node_(7) setdest 400.0 500.0 2.0"
			rest := strings.TrimPrefix(line, "$ns_ at ")
			sp := strings.IndexByte(rest, ' ')
			if sp < 0 {
				return nil, fmt.Errorf("line %d: malformed at-command", lineNo)
			}
			t0, err := strconv.ParseFloat(rest[:sp], 64)
			if err != nil {
				return nil, fmt.Errorf("line %d: bad time %q", lineNo, rest[:sp])
			}
			cmd := strings.Trim(strings.TrimSpace(rest[sp+1:]), `"`)
			if !strings.HasPrefix(cmd, "$node_(") {
				continue
			}
			id, body, err := parseNodeRef(cmd)
			if err != nil {
				return nil, fmt.Errorf("line %d: %w", lineNo, err)
			}
			fields := strings.Fields(body)
			if len(fields) != 4 || fields[0] != "setdest" {
				continue
			}
			var vals [3]float64
			for i, f := range fields[1:] {
				if vals[i], err = strconv.ParseFloat(f, 64); err != nil {
					return nil, fmt.Errorf("line %d: bad setdest arg %q", lineNo, f)
				}
			}
			if vals[2] < 0 {
				return nil, fmt.Errorf("line %d: negative speed", lineNo)
			}
			legs[id] = append(legs[id], traceLeg{
				t0: t0, to: geo.Point{X: vals[0], Y: vals[1]}, speed: vals[2],
			})
			if id > maxID {
				maxID = id
			}
		}
	}
	if err := scan.Err(); err != nil {
		return nil, err
	}
	if maxID < 0 {
		return nil, fmt.Errorf("mobility: empty NS-2 trace")
	}

	m := &TraceModel{
		field:   field,
		initial: make([]geo.Point, maxID+1),
		legs:    make([][]traceLeg, maxID+1),
	}
	for id := 0; id <= maxID; id++ {
		m.initial[id] = field.Clamp(initial[id])
		ls := legs[id]
		sort.SliceStable(ls, func(i, j int) bool { return ls[i].t0 < ls[j].t0 })
		m.legs[id] = ls
	}
	return m, nil
}

// parseNodeRef splits "$node_(7) rest..." into (7, "rest...").
func parseNodeRef(s string) (int, string, error) {
	s = strings.TrimPrefix(s, "$node_(")
	close := strings.IndexByte(s, ')')
	if close < 0 {
		return 0, "", fmt.Errorf("mobility: malformed node reference")
	}
	id, err := strconv.Atoi(s[:close])
	if err != nil || id < 0 {
		return 0, "", fmt.Errorf("mobility: bad node id %q", s[:close])
	}
	return id, strings.TrimSpace(s[close+1:]), nil
}

// Position implements Model: replay the setdest commands up to time t.
func (m *TraceModel) Position(id int, t float64) geo.Point {
	pos := m.initial[id]
	legs := m.legs[id]
	for i, leg := range legs {
		if leg.t0 >= t {
			break
		}
		// This leg runs from leg.t0 until the next setdest preempts it
		// (or until the query time, whichever is earlier).
		end := t
		if i+1 < len(legs) && legs[i+1].t0 < end {
			end = legs[i+1].t0
		}
		elapsed := end - leg.t0
		d := pos.Dist(leg.to)
		if leg.speed <= 0 || d == 0 || elapsed <= 0 {
			continue
		}
		travel := leg.speed * elapsed
		if travel >= d {
			pos = leg.to
		} else {
			pos = pos.Lerp(leg.to, travel/d)
		}
	}
	return m.field.Clamp(pos)
}

// N implements Model.
func (m *TraceModel) N() int { return len(m.initial) }

// Field implements Model.
func (m *TraceModel) Field() geo.Rect { return m.field }

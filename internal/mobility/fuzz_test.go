package mobility

import (
	"strings"
	"testing"

	"alertmanet/internal/geo"
)

// FuzzParseNS2 feeds arbitrary text to the trace parser: it must never
// panic, and any accepted trace must yield in-field positions at any
// queried time.
func FuzzParseNS2(f *testing.F) {
	f.Add(sampleTrace)
	f.Add("$node_(0) set X_ 1\n$node_(0) set Y_ 2\n")
	f.Add("$ns_ at 1.0 \"$node_(3) setdest 10 20 1.5\"")
	f.Add("garbage\n# comment\n")
	f.Fuzz(func(t *testing.T, text string) {
		fld := geo.Rect{Min: geo.Point{X: 0, Y: 0}, Max: geo.Point{X: 1000, Y: 1000}}
		m, err := ParseNS2(strings.NewReader(text), fld)
		if err != nil {
			return
		}
		for id := 0; id < m.N(); id++ {
			for _, tm := range []float64{0, 1, 100} {
				if !fld.Contains(m.Position(id, tm)) {
					t.Fatalf("node %d escaped the field at t=%v", id, tm)
				}
			}
		}
	})
}

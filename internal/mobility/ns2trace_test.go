package mobility

import (
	"math"
	"strings"
	"testing"

	"alertmanet/internal/geo"
)

const sampleTrace = `
# NS-2 setdest scenario
$node_(0) set X_ 100.0
$node_(0) set Y_ 200.0
$node_(0) set Z_ 0.0
$node_(1) set X_ 500.0
$node_(1) set Y_ 500.0
$ns_ at 0.0 "$node_(0) setdest 100.0 400.0 2.0"
$ns_ at 10.0 "$node_(1) setdest 700.0 500.0 4.0"
$ns_ at 50.0 "$node_(0) setdest 300.0 400.0 2.0"
`

func parse(t *testing.T, trace string) *TraceModel {
	t.Helper()
	m, err := ParseNS2(strings.NewReader(trace), field)
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func TestParseNS2Basics(t *testing.T) {
	m := parse(t, sampleTrace)
	if m.N() != 2 {
		t.Fatalf("N = %d", m.N())
	}
	if m.Field() != field {
		t.Fatal("field wrong")
	}
	if m.Position(0, 0) != (geo.Point{X: 100, Y: 200}) {
		t.Fatalf("initial pos = %v", m.Position(0, 0))
	}
	if m.Position(1, 0) != (geo.Point{X: 500, Y: 500}) {
		t.Fatalf("initial pos = %v", m.Position(1, 0))
	}
}

func TestTraceMovement(t *testing.T) {
	m := parse(t, sampleTrace)
	// Node 0: from (100,200) toward (100,400) at 2 m/s starting t=0:
	// at t=50 it has travelled 100 m -> (100, 300).
	p := m.Position(0, 50)
	if math.Abs(p.X-100) > 1e-9 || math.Abs(p.Y-300) > 1e-9 {
		t.Fatalf("node 0 at t=50: %v, want (100, 300)", p)
	}
	// After t=50 it is redirected toward (300, 400) at 2 m/s from (100,300):
	// distance ~223.6 m, so at t=100 it travelled 100 m of it.
	p = m.Position(0, 100)
	d0 := geo.Point{X: 100, Y: 300}
	frac := 100.0 / d0.Dist(geo.Point{X: 300, Y: 400})
	want := d0.Lerp(geo.Point{X: 300, Y: 400}, frac)
	if p.Dist(want) > 1e-9 {
		t.Fatalf("node 0 at t=100: %v, want %v", p, want)
	}
	// Node 1 stands still until t=10, then heads east at 4 m/s.
	if m.Position(1, 10) != (geo.Point{X: 500, Y: 500}) {
		t.Fatal("node 1 moved before its setdest")
	}
	p = m.Position(1, 20)
	if math.Abs(p.X-540) > 1e-9 || math.Abs(p.Y-500) > 1e-9 {
		t.Fatalf("node 1 at t=20: %v, want (540, 500)", p)
	}
	// Arrival: by t=100 it reached (700, 500) and stays.
	if m.Position(1, 100) != (geo.Point{X: 700, Y: 500}) {
		t.Fatalf("node 1 did not park at its destination: %v", m.Position(1, 100))
	}
	if m.Position(1, 500) != (geo.Point{X: 700, Y: 500}) {
		t.Fatal("node 1 drifted after arrival")
	}
}

func TestTracePreemption(t *testing.T) {
	// A second setdest issued before the first completes redirects the
	// node from wherever it had reached.
	trace := `
$node_(0) set X_ 0.0
$node_(0) set Y_ 0.0
$ns_ at 0.0 "$node_(0) setdest 100.0 0.0 1.0"
$ns_ at 50.0 "$node_(0) setdest 50.0 100.0 1.0"
`
	m := parse(t, trace)
	// At t=50 the node is at (50, 0); the new leg heads to (50, 100).
	p := m.Position(0, 60)
	if math.Abs(p.X-50) > 1e-9 || math.Abs(p.Y-10) > 1e-9 {
		t.Fatalf("preempted position = %v, want (50, 10)", p)
	}
}

func TestTraceModelDrivesSimulation(t *testing.T) {
	// Build a trace-driven network and verify positions flow through.
	var sb strings.Builder
	sb.WriteString("$node_(0) set X_ 100\n$node_(0) set Y_ 100\n")
	sb.WriteString("$node_(1) set X_ 250\n$node_(1) set Y_ 100\n")
	sb.WriteString("$node_(2) set X_ 400\n$node_(2) set Y_ 100\n")
	m := parse(t, sb.String())
	ids := NodesIn(m, geo.Rect{Min: geo.Point{X: 0, Y: 0}, Max: geo.Point{X: 300, Y: 200}}, 0)
	if len(ids) != 2 {
		t.Fatalf("NodesIn = %v", ids)
	}
}

func TestParseNS2Errors(t *testing.T) {
	cases := []string{
		"",                     // empty
		"$node_(0 set X_ 1",    // missing paren
		"$node_(x) set X_ 1",   // bad id
		"$node_(0) set X_ abc", // bad coordinate
		"$ns_ at notatime \"$node_(0) setdest 1 2 3\"", // bad time
		"$ns_ at 1 \"$node_(0) setdest 1 2 xyz\"",      // bad arg
		"$ns_ at 1 \"$node_(0) setdest 1 2 -3\"",       // negative speed
	}
	for _, c := range cases {
		if _, err := ParseNS2(strings.NewReader(c), field); err == nil {
			t.Fatalf("trace %q accepted", c)
		}
	}
}

func TestParseNS2SkipsUnknownCommands(t *testing.T) {
	trace := `
$node_(0) set X_ 10
$node_(0) set Y_ 20
$ns_ at 5.0 "$god_ something else"
$ns_ at 6.0 "$node_(0) somethingelse 1 2 3"
$node_(0) set W_ 9
`
	m := parse(t, trace)
	if m.N() != 1 {
		t.Fatalf("N = %d", m.N())
	}
	if m.Position(0, 100) != (geo.Point{X: 10, Y: 20}) {
		t.Fatal("unknown commands should not move the node")
	}
}

func TestTraceClampsToField(t *testing.T) {
	trace := `
$node_(0) set X_ 5000
$node_(0) set Y_ -20
`
	m := parse(t, trace)
	p := m.Position(0, 0)
	if !field.Contains(p) {
		t.Fatalf("position %v outside field", p)
	}
}

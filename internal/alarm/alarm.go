// Package alarm re-implements ALARM ("Anonymous Location-Aided Routing in
// Suspicious MANETs", Defrawy & Tsudik [5]) as described in Sections 5-6 of
// the ALERT paper, for use as the redundant-traffic comparator:
//
//   - Proactive operation: every dissemination period (30 s in the
//     experiments) each node floods a signed, timestamped announcement of
//     its identity and location to its authenticated neighborhood, from
//     which all nodes build a secure map. The evaluation charges those
//     dissemination transmissions to the hop budget — the "ALARM (include
//     id dissemination hops)" series of Fig. 15 — at a configurable relay
//     depth per announcement.
//
//   - Data forwarding follows the shortest geographic path over the secure
//     map (GPSR-equivalent), paying a public-key operation per hop for the
//     per-hop encryption/verification the scheme requires.
package alarm

import (
	"alertmanet/internal/gpsr"
	"alertmanet/internal/locservice"
	"alertmanet/internal/medium"
	"alertmanet/internal/metrics"
	"alertmanet/internal/node"
	"alertmanet/internal/sim"
)

// Config tunes the ALARM model.
type Config struct {
	// PacketSize is the on-air data packet size.
	PacketSize int
	// HopBudget is the TTL in hops.
	HopBudget int
	// DisseminationPeriod is the location-announcement flood interval
	// (30 s in the experiments, Section 5).
	DisseminationPeriod float64
	// DisseminationRelays is how many relay transmissions each node's
	// announcement consumes per round — the flood's effective depth.
	// Calibrated so the "ALARM (include id dissemination hops)" series
	// lands near twice ALERT's per-packet hop cost, matching Fig. 15a.
	DisseminationRelays int
	// CompleteTimeout records a packet undelivered after this long.
	CompleteTimeout float64
}

// DefaultConfig matches the evaluation setup.
func DefaultConfig() Config {
	return Config{
		PacketSize:          512,
		HopBudget:           gpsr.DefaultHopBudget,
		DisseminationPeriod: 30,
		DisseminationRelays: 12,
		CompleteTimeout:     8,
	}
}

// meta travels inside the gpsr packet payload.
type meta struct {
	rec       *metrics.PacketRecord
	completed bool
}

// Protocol is one ALARM instance.
type Protocol struct {
	net    *node.Network
	loc    *locservice.Service
	router *gpsr.Router
	cfg    Config
	col    *metrics.Collector
	rounds int
}

// New creates the protocol, attaches per-node handlers, and starts the
// periodic dissemination.
func New(net *node.Network, loc *locservice.Service, cfg Config) *Protocol {
	p := &Protocol{
		net:    net,
		loc:    loc,
		router: gpsr.New(net),
		cfg:    cfg,
		col:    metrics.NewCollector(),
	}
	for i := 0; i < net.N(); i++ {
		id := medium.NodeID(i)
		net.Med.Attach(id, func(_ medium.NodeID, payload any, _ int) {
			pkt, ok := payload.(*gpsr.Packet)
			if !ok {
				return
			}
			// Hop-by-hop encryption: the receiving relay verifies and
			// re-encrypts before taking its routing step. The whole
			// charge is one pooled event, so a relay hop allocates
			// nothing.
			net.NotePub(1)
			p.router.HandleAfter(net.Costs.PubEncrypt, id, pkt)
		})
	}
	if cfg.DisseminationPeriod > 0 {
		net.Eng.Ticker(cfg.DisseminationPeriod, cfg.DisseminationPeriod,
			func(sim.Time) { p.disseminate() })
	}
	return p
}

// disseminate charges one identity-dissemination round: every node's
// announcement costs DisseminationRelays transmissions.
func (p *Protocol) disseminate() {
	p.rounds++
	p.col.ExtraHops += uint64(p.net.N() * p.cfg.DisseminationRelays)
}

// Rounds returns how many dissemination rounds have run.
func (p *Protocol) Rounds() int { return p.rounds }

// Collector returns the run's metrics.
func (p *Protocol) Collector() *metrics.Collector { return p.col }

// Router exposes the underlying router.
func (p *Protocol) Router() *gpsr.Router { return p.router }

// Send routes one application packet along the shortest geographic path.
// The error is always nil; the signature matches the experiment harness's
// Proto interface.
func (p *Protocol) Send(src, dst medium.NodeID, data []byte) (*metrics.PacketRecord, error) {
	rec := p.col.Start(src, dst, p.net.Eng.Now())
	entry, ok := p.loc.Lookup(dst)
	if !ok {
		p.col.Complete(rec, 0, false)
		return rec, nil
	}
	m := &meta{rec: rec}
	finish := func(pkt *gpsr.Packet, at float64, delivered bool) {
		if m.completed {
			return
		}
		m.completed = true
		if pkt != nil {
			rec.Hops = pkt.Hops
			// Copy, never alias: the frame goes back to the router's
			// pool after the outcome and its Path will be rewritten.
			rec.Path = append(rec.Path[:0], pkt.Path...)
		}
		p.col.Complete(rec, at, delivered)
	}
	if p.cfg.CompleteTimeout > 0 {
		p.net.Eng.Schedule(p.cfg.CompleteTimeout, func() { finish(nil, 0, false) })
	}
	pkt := p.router.NewPacket()
	pkt.Dest = entry.Pos
	pkt.DeliverTo = dst
	pkt.Payload = m
	pkt.Size = p.cfg.PacketSize
	pkt.HopBudget = p.cfg.HopBudget
	pkt.OnOutcome = func(_ medium.NodeID, gp *gpsr.Packet, out gpsr.Outcome) {
		// The destination's decryption was charged by its
		// reception handler like any hop's verification.
		finish(gp, p.net.Eng.Now(), out == gpsr.Delivered)
		p.router.Release(gp)
	}
	pkt.SetTrace(rec.Seq)
	// Source-side encryption for the first hop.
	p.net.NotePub(1)
	p.net.Eng.Schedule(p.net.Costs.PubEncrypt, func() { p.router.Send(src, pkt) })
	return rec, nil
}

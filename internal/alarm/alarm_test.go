package alarm

import (
	"testing"

	"alertmanet/internal/crypt"
	"alertmanet/internal/geo"
	"alertmanet/internal/locservice"
	"alertmanet/internal/medium"
	"alertmanet/internal/mobility"
	"alertmanet/internal/node"
	"alertmanet/internal/rng"
	"alertmanet/internal/sim"
)

var field = geo.Rect{Min: geo.Point{X: 0, Y: 0}, Max: geo.Point{X: 1000, Y: 1000}}

func build(seed int64, n int, cfg Config) (*sim.Engine, *node.Network, *Protocol) {
	eng := sim.NewEngine()
	src := rng.New(seed)
	mob := mobility.NewStatic(field, n, src)
	med := medium.MustNew(eng, mob, medium.DefaultParams(), src)
	net := node.NewNetwork(eng, med, crypt.NewFastSuite(src), crypt.DefaultCostModel(),
		node.Config{}, src)
	loc := locservice.New(net, locservice.DefaultConfig())
	return eng, net, New(net, loc, cfg)
}

func farPair(net *node.Network, minDist float64) (medium.NodeID, medium.NodeID) {
	for s := 0; s < net.N(); s++ {
		for d := s + 1; d < net.N(); d++ {
			if net.Node(medium.NodeID(s)).Position().Dist(
				net.Node(medium.NodeID(d)).Position()) >= minDist {
				return medium.NodeID(s), medium.NodeID(d)
			}
		}
	}
	panic("no far pair")
}

func TestDelivery(t *testing.T) {
	eng, net, p := build(1, 200, DefaultConfig())
	s, d := farPair(net, 600)
	rec, _ := p.Send(s, d, []byte("x"))
	eng.RunUntil(30)
	if !rec.Delivered {
		t.Fatal("ALARM failed to deliver in dense static network")
	}
	if rec.Hops < 2 {
		t.Fatalf("hops = %d", rec.Hops)
	}
}

func TestPerHopCryptoLatency(t *testing.T) {
	eng, net, p := build(2, 200, DefaultConfig())
	s, d := farPair(net, 600)
	rec, _ := p.Send(s, d, []byte("x"))
	eng.RunUntil(60)
	if !rec.Delivered {
		t.Skip("undeliverable pair")
	}
	min := float64(rec.Hops) * net.Costs.PubEncrypt
	if rec.Latency() < min {
		t.Fatalf("latency %v below per-hop crypto floor %v", rec.Latency(), min)
	}
}

func TestDisseminationRounds(t *testing.T) {
	cfg := DefaultConfig()
	cfg.DisseminationPeriod = 30
	eng, _, p := build(3, 100, cfg)
	eng.RunUntil(100)
	if p.Rounds() != 3 {
		t.Fatalf("rounds = %d in 100 s with 30 s period, want 3", p.Rounds())
	}
	wantExtra := uint64(3 * 100 * cfg.DisseminationRelays)
	if p.Collector().ExtraHops != wantExtra {
		t.Fatalf("ExtraHops = %d, want %d", p.Collector().ExtraHops, wantExtra)
	}
}

func TestDisseminationDisabled(t *testing.T) {
	cfg := DefaultConfig()
	cfg.DisseminationPeriod = 0
	eng, _, p := build(4, 50, cfg)
	eng.RunUntil(100)
	if p.Rounds() != 0 || p.Collector().ExtraHops != 0 {
		t.Fatal("dissemination should be off")
	}
}

func TestDisseminationDominatesHopMetric(t *testing.T) {
	// The "ALARM (include id dissemination hops)" series: with the
	// paper's CBR workload, dissemination overhead roughly doubles the
	// per-packet hop count.
	cfg := DefaultConfig()
	eng, net, p := build(5, 200, cfg)
	s, d := farPair(net, 400)
	// 50 packets over 100 s (one per 2 s).
	for i := 0; i < 50; i++ {
		at := float64(i) * 2
		eng.At(at+0.001, func() { p.Send(s, d, []byte("x")) })
	}
	eng.RunUntil(100)
	withDiss := p.Collector().HopsPerPacket()
	routingOnly := withDiss - float64(p.Collector().ExtraHops)/50
	if withDiss <= routingOnly {
		t.Fatal("dissemination added nothing")
	}
	ratio := withDiss / routingOnly
	if ratio < 1.5 {
		t.Fatalf("dissemination ratio %v too small to reproduce Fig. 15a", ratio)
	}
}

func TestUndeliveredCompletes(t *testing.T) {
	eng := sim.NewEngine()
	src := rng.New(6)
	pos := []geo.Point{{X: 0, Y: 0}, {X: 900, Y: 900}}
	mob := &pinned{pos: pos}
	med := medium.MustNew(eng, mob, medium.DefaultParams(), src)
	net := node.NewNetwork(eng, med, crypt.NewFastSuite(src), crypt.ZeroCostModel(),
		node.Config{}, src)
	loc := locservice.New(net, locservice.DefaultConfig())
	p := New(net, loc, DefaultConfig())
	rec, _ := p.Send(0, 1, []byte("x"))
	eng.RunUntil(30)
	if rec.Delivered || p.Collector().Completed() != 1 {
		t.Fatal("unreachable destination should complete undelivered")
	}
}

type pinned struct{ pos []geo.Point }

func (p *pinned) Position(id int, _ float64) geo.Point { return p.pos[id] }
func (p *pinned) N() int                               { return len(p.pos) }
func (p *pinned) Field() geo.Rect                      { return field }

func TestLocServiceFailure(t *testing.T) {
	eng := sim.NewEngine()
	src := rng.New(7)
	mob := mobility.NewStatic(field, 30, src)
	med := medium.MustNew(eng, mob, medium.DefaultParams(), src)
	net := node.NewNetwork(eng, med, crypt.NewFastSuite(src), crypt.ZeroCostModel(),
		node.Config{}, src)
	loc := locservice.New(net, locservice.DefaultConfig())
	p := New(net, loc, DefaultConfig())
	for i := 0; i < loc.NumServers(); i++ {
		loc.FailServer(i)
	}
	rec, _ := p.Send(0, 5, []byte("x"))
	eng.RunUntil(5)
	if rec.Delivered || p.Collector().Completed() != 1 {
		t.Fatal("send without location service should fail fast")
	}
}

package live

import (
	"fmt"
	"sort"
	"testing"

	"alertmanet/internal/experiment"
	"alertmanet/internal/geo"
	"alertmanet/internal/medium"
)

// TestSimVsLiveComparison is the headline acceptance check: the paper's
// default evaluation scenario (200 nodes, random waypoint, 10 CBR pairs,
// 100 s) run through the simulator and through 200 live UDP daemons on
// loopback, with the live numbers required to sit inside the tolerance
// bands of DefaultBand. The live side replays the sim's exact trajectories
// and flow schedule, so "sent" must agree exactly; delivery, latency and
// hops absorb transport-order noise. Empirically the two sit within a few
// percent (see EXPERIMENTS.md), far inside the bands.
func TestSimVsLiveComparison(t *testing.T) {
	if testing.Short() {
		t.Skip("200-daemon paper-default fleet is a multi-second run")
	}
	sc := experiment.DefaultScenario() // ALERT, N=200, rwp, 10 pairs, 100 s

	simRes, _, err := experiment.RunWorld(sc, nil)
	if err != nil {
		t.Fatalf("sim run: %v", err)
	}
	// Timescale 0.05 gives the coordinator 50 ms of wall clock per emulated
	// hello interval; below that the 200-node topology push loop can fall
	// behind on a loaded machine and frames range-drop against stale
	// positions, which is transport-emulation noise, not protocol behavior.
	liveSum, err := RunFleet(sc, 0.05)
	if err != nil {
		t.Fatalf("live run: %v", err)
	}

	cmp := Compare(simRes, liveSum, DefaultBand())
	t.Logf("\n%s", cmp)
	if !cmp.OK {
		for _, c := range cmp.Checks {
			if !c.OK {
				t.Errorf("%s out of band: sim %.4f live %.4f tol %.3g (rel=%v)",
					c.Name, c.Sim, c.Live, c.Tol, c.Rel)
			}
		}
	}
	if liveSum.Delivered == 0 {
		t.Fatal("live fleet delivered nothing")
	}
}

// TestFiveNodeExactPath freezes a 5-node static GPSR topology (seed 15,
// 600x600 — chosen so the sim delivers 10/10 with a 4-hop longest path)
// and requires the live fleet to reproduce every packet's path hop for
// hop. With no loss, static positions and deterministic greedy/perimeter
// forwarding there is no transport noise to absorb: any divergence means
// the live router and the sim router disagree on routing semantics.
func TestFiveNodeExactPath(t *testing.T) {
	sc := experiment.DefaultScenario()
	sc.Protocol = experiment.GPSR
	sc.Seed = 15
	sc.N = 5
	sc.Field = geo.Rect{Max: geo.Point{X: 600, Y: 600}}
	sc.Mobility = experiment.Static
	sc.Duration = 10
	sc.DrainTime = 2
	sc.Pairs = 2
	sc.Interval = 2
	sc.LocUpdates = false

	simRes, w, err := experiment.RunWorld(sc, nil)
	if err != nil {
		t.Fatalf("sim run: %v", err)
	}
	if simRes.DeliveryRate != 1 {
		t.Fatalf("frozen topology regressed: sim delivery rate %.2f, want 1.00", simRes.DeliveryRate)
	}

	// Index sim paths by (src, dst, k-th packet of that pair in send order);
	// live keys deliveries by (flow, seq) where flow is the pair index, and
	// DeriveFlows replays the same ChoosePairs draw, so the k-th live seq of
	// a pair is the k-th sim record of the same (src, dst).
	type pairKey struct{ src, dst int }
	simPaths := map[pairKey][][]int{}
	recs := w.Proto.Collector().Records()
	sort.SliceStable(recs, func(i, j int) bool { return recs[i].SentAt < recs[j].SentAt })
	for _, r := range recs {
		if !r.Delivered {
			t.Fatalf("frozen topology regressed: packet %d (%d->%d) undelivered", r.Seq, r.Src, r.Dst)
		}
		k := pairKey{int(r.Src), int(r.Dst)}
		path := make([]int, len(r.Path))
		for i, id := range r.Path {
			path[i] = int(id)
		}
		simPaths[k] = append(simPaths[k], path)
	}

	liveSum, err := RunFleet(sc, 0.01)
	if err != nil {
		t.Fatalf("live run: %v", err)
	}
	if liveSum.Sent != simRes.Sent {
		t.Fatalf("sent mismatch: sim %d live %d", simRes.Sent, liveSum.Sent)
	}
	if liveSum.Delivered != liveSum.Sent {
		t.Fatalf("live delivered %d of %d on the lossless frozen topology", liveSum.Delivered, liveSum.Sent)
	}

	// Deliveries are sorted by (flow, seq) in collect, so per-pair order is
	// send order — walk each pair's queue of sim paths in step.
	next := map[pairKey]int{}
	for _, dv := range liveSum.Deliveries {
		k := pairKey{dv.Src, dv.Dst}
		i := next[k]
		if i >= len(simPaths[k]) {
			t.Fatalf("live pair %d->%d delivered more packets than sim recorded", dv.Src, dv.Dst)
		}
		next[k] = i + 1
		if fmt.Sprint(dv.Path) != fmt.Sprint(simPaths[k][i]) {
			t.Errorf("pair %d->%d packet %d path diverged:\n  sim:  %v\n  live: %v",
				dv.Src, dv.Dst, i, simPaths[k][i], dv.Path)
		}
	}
	for k, paths := range simPaths {
		if next[k] != len(paths) {
			t.Errorf("pair %d->%d: live delivered %d packets, sim %d", k.src, k.dst, next[k], len(paths))
		}
	}
	t.Logf("exact path: %d packets, every path identical (range %.0f m)", liveSum.Delivered, medium.DefaultParams().Range)
}

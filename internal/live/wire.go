// The live wire codec: a deterministic, versioned binary layout for the
// frames that exist as in-memory Go structs inside the simulator. One
// datagram carries one frame. Everything is big-endian; floats travel as
// IEEE-754 bits (math.Float64bits), byte fields are u16-length-prefixed and
// the whole frame is bounded by MaxFrame — a decoder can never be made to
// allocate more than one datagram's worth of memory.
//
// Layout (all integers big-endian):
//
//	magic[2] version[1] kind[1]                          — header
//	sendID[8] from[4] to[4]                              — link layer
//	(ack frames end here)
//	flags[1] vtime[8] size[4] srcPos[16]                 — emulated medium
//	flow[4] seq[4] zoneStep[1]                           — measurement id
//	dest[16] deliverTo[4] hopBudget[2] hops[2]           — GPSR leg state
//	mode[1] entryDist[8] prev[4] firstFrom[4] firstTo[4]
//	pathLen[2] path[4*n]
//	(envelope, iff FlagEnvelope:)
//	eKind[1] ps[20] pd[20] lzd[32] td[16] dir[1]
//	hdiv[2] hmax[2] zone[32] dpubOwner[4] eseq[4]
//	encLZS encSymKey encTTL encBitmap payload            — 2-byte len each
//
// The codec is strict both ways: unknown kinds, truncated fields, oversize
// lengths and trailing garbage are all decode errors (FuzzWireCodec pins
// this), and a decoded frame re-encodes to the identical byte string.

// Package live runs ALERT and its comparators as real node processes: a
// deterministic wire codec, the alertd daemon (one node's router stack over
// a UDP socket with an HTTP control plane), a coordinator that replays
// internal/mobility trajectories onto a daemon fleet while emulating the
// radio medium, and the sim-vs-live comparison harness that keeps the live
// system honest against the simulator (DESIGN.md, "Live mode").
package live

import (
	"errors"
	"fmt"
	"math"

	"alertmanet/internal/core"
	"alertmanet/internal/crypt"
	"alertmanet/internal/geo"
	"alertmanet/internal/gpsr"
	"alertmanet/internal/medium"
)

// Wire framing constants.
const (
	// Magic0 and Magic1 open every frame.
	Magic0 = 0xA1
	Magic1 = 0x54
	// Version is the current wire format version; a daemon rejects frames
	// from any other version rather than guessing at field offsets.
	Version = 1
	// MaxFrame bounds one encoded frame (and therefore one datagram and
	// one decode allocation). Well under the 64 KiB UDP limit.
	MaxFrame = 16 * 1024
	// maxField bounds each length-prefixed byte field.
	maxField = 4 * 1024
	// maxPath bounds the carried path (DefaultScenario traffic stays far
	// below; a frame that long is corrupt or adversarial).
	maxPath = 512
)

// FrameKind distinguishes the datagram types.
type FrameKind uint8

const (
	// KindData is a routed protocol frame (a GPSR leg hop or an ALERT
	// zone-delivery step).
	KindData FrameKind = 1
	// KindAck is the link-layer stop-and-wait acknowledgement.
	KindAck FrameKind = 2
)

// Frame flags.
const (
	// FlagEnvelope marks a frame carrying an ALERT envelope.
	FlagEnvelope = 1 << 0
	// FlagNoAck marks a frame outside the ARQ handshake (the emulated
	// broadcast copies of a zone delivery): the receiver must not ack it
	// and the sender never retries it, mirroring the simulator's
	// Broadcast path.
	FlagNoAck = 1 << 1
	// FlagFinalLeg marks an ALERT packet riding its last leg into Z_D
	// (core.Envelope keeps this unexported; live must carry it on air so
	// the next random forwarder skips straight to the zone broadcast).
	FlagFinalLeg = 1 << 2
)

// None marks an absent node id on the wire (gpsr.NoDeliverTo's encoding).
const None int32 = -1

// Envelope mirrors the wire-visible fields of core.Envelope — the exact
// set a simulator forwarder reads plus the opaque ciphertext fields it
// relays. DPubOwner replaces the in-memory crypt.PubKey: public keys are
// resolved from the owner id by the receiving daemon's suite (the location
// service hands out keys; the wire only names them).
type Envelope struct {
	Kind      core.Kind
	PS, PD    crypt.Pseudonym
	LZD       geo.Rect
	TD        geo.Point
	Dir       geo.Direction
	Hdiv      int
	Hmax      int
	Zone      geo.Rect
	DPubOwner int32 // None when the envelope carries no destination key
	Seq       int
	EncLZS    []byte
	EncSymKey []byte
	EncTTL    []byte
	EncBitmap []byte
	Payload   []byte
}

// Frame is one on-air datagram: link-layer identity, the emulated-medium
// accounting the receiver needs (sender position, virtual-time
// accumulator), one GPSR leg's routing state, and optionally an ALERT
// envelope. Ack frames use only Kind, SendID, From and To.
type Frame struct {
	Kind   FrameKind
	SendID uint64
	From   int32
	To     int32 // None for the emulated-broadcast copies
	Flags  uint8
	// VTime is the packet's accumulated virtual latency: every
	// transmission adds the emulated medium's delay model, so measured
	// latency is timescale-free (DESIGN.md, "Live mode").
	VTime float64
	// Size is the emulated on-air size in bytes (the delay model's
	// input); the actual datagram length differs.
	Size   uint32
	SrcPos geo.Point
	// Flow and Seq identify the packet for measurement (flow id assigned
	// by the coordinator, sequence within the flow).
	Flow uint32
	Seq  uint32
	// ZoneStep is 0 for routed legs, 1/2 for ALERT zone-delivery steps.
	ZoneStep uint8

	// The GPSR leg state (gpsr.Packet's exported fields plus
	// gpsr.ForwardState).
	Dest      geo.Point
	DeliverTo int32
	HopBudget uint16
	Hops      uint16
	Mode      gpsr.Mode
	EntryDist float64
	Prev      int32
	FirstFrom int32
	FirstTo   int32
	Path      []int32

	Env *Envelope
}

// Codec error values; decode errors wrap one of these.
var (
	ErrBadMagic   = errors.New("live: bad frame magic")
	ErrBadVersion = errors.New("live: unsupported wire version")
	ErrBadKind    = errors.New("live: unknown frame kind")
	ErrTruncated  = errors.New("live: truncated frame")
	ErrOversize   = errors.New("live: field exceeds wire bounds")
	ErrTrailing   = errors.New("live: trailing bytes after frame")
)

func appendU16(b []byte, v uint16) []byte { return append(b, byte(v>>8), byte(v)) }
func appendU32(b []byte, v uint32) []byte {
	return append(b, byte(v>>24), byte(v>>16), byte(v>>8), byte(v))
}
func appendU64(b []byte, v uint64) []byte {
	return append(b, byte(v>>56), byte(v>>48), byte(v>>40), byte(v>>32),
		byte(v>>24), byte(v>>16), byte(v>>8), byte(v))
}
func appendF64(b []byte, v float64) []byte { return appendU64(b, math.Float64bits(v)) }
func appendI32(b []byte, v int32) []byte   { return appendU32(b, uint32(v)) }
func appendPoint(b []byte, p geo.Point) []byte {
	return appendF64(appendF64(b, p.X), p.Y)
}
func appendRect(b []byte, r geo.Rect) []byte {
	return appendPoint(appendPoint(b, r.Min), r.Max)
}

func appendBytes(b []byte, v []byte) ([]byte, error) {
	if len(v) > maxField {
		return b, fmt.Errorf("%w: %d-byte field", ErrOversize, len(v))
	}
	b = appendU16(b, uint16(len(v)))
	return append(b, v...), nil
}

// AppendFrame encodes f onto dst and returns the extended slice. The
// encoding is deterministic: equal frames produce equal bytes. Frames that
// exceed the wire bounds (path or byte fields too long) are an error.
func AppendFrame(dst []byte, f *Frame) ([]byte, error) {
	if f.Kind != KindData && f.Kind != KindAck {
		return dst, fmt.Errorf("%w: %d", ErrBadKind, f.Kind)
	}
	b := append(dst, Magic0, Magic1, Version, byte(f.Kind))
	b = appendU64(b, f.SendID)
	b = appendI32(b, f.From)
	b = appendI32(b, f.To)
	if f.Kind == KindAck {
		return b, nil
	}
	b = append(b, f.Flags)
	b = appendF64(b, f.VTime)
	b = appendU32(b, f.Size)
	b = appendPoint(b, f.SrcPos)
	b = appendU32(b, f.Flow)
	b = appendU32(b, f.Seq)
	b = append(b, f.ZoneStep)
	b = appendPoint(b, f.Dest)
	b = appendI32(b, f.DeliverTo)
	b = appendU16(b, f.HopBudget)
	b = appendU16(b, f.Hops)
	b = append(b, byte(f.Mode))
	b = appendF64(b, f.EntryDist)
	b = appendI32(b, f.Prev)
	b = appendI32(b, f.FirstFrom)
	b = appendI32(b, f.FirstTo)
	if len(f.Path) > maxPath {
		return dst, fmt.Errorf("%w: %d-hop path", ErrOversize, len(f.Path))
	}
	b = appendU16(b, uint16(len(f.Path)))
	for _, id := range f.Path {
		b = appendI32(b, id)
	}
	if f.Env == nil {
		if f.Flags&FlagEnvelope != 0 {
			return dst, fmt.Errorf("%w: FlagEnvelope with nil Env", ErrBadKind)
		}
		if len(b)-len(dst) > MaxFrame {
			return dst, fmt.Errorf("%w: %d-byte frame", ErrOversize, len(b)-len(dst))
		}
		return b, nil
	}
	if f.Flags&FlagEnvelope == 0 {
		return dst, fmt.Errorf("%w: Env without FlagEnvelope", ErrBadKind)
	}
	e := f.Env
	b = append(b, byte(e.Kind))
	b = append(b, e.PS[:]...)
	b = append(b, e.PD[:]...)
	b = appendRect(b, e.LZD)
	b = appendPoint(b, e.TD)
	b = append(b, byte(e.Dir))
	b = appendU16(b, uint16(e.Hdiv))
	b = appendU16(b, uint16(e.Hmax))
	b = appendRect(b, e.Zone)
	b = appendI32(b, e.DPubOwner)
	b = appendU32(b, uint32(e.Seq))
	var err error
	for _, field := range [][]byte{e.EncLZS, e.EncSymKey, e.EncTTL, e.EncBitmap, e.Payload} {
		if b, err = appendBytes(b, field); err != nil {
			return dst, err
		}
	}
	if len(b)-len(dst) > MaxFrame {
		return dst, fmt.Errorf("%w: %d-byte frame", ErrOversize, len(b)-len(dst))
	}
	return b, nil
}

// reader is a bounds-checked cursor over one datagram.
type reader struct {
	buf []byte
	off int
	err error
}

func (r *reader) take(n int) []byte {
	if r.err != nil {
		return nil
	}
	if r.off+n > len(r.buf) {
		r.err = fmt.Errorf("%w: want %d bytes at offset %d of %d",
			ErrTruncated, n, r.off, len(r.buf))
		return nil
	}
	b := r.buf[r.off : r.off+n]
	r.off += n
	return b
}

func (r *reader) u8() uint8 {
	b := r.take(1)
	if b == nil {
		return 0
	}
	return b[0]
}

func (r *reader) u16() uint16 {
	b := r.take(2)
	if b == nil {
		return 0
	}
	return uint16(b[0])<<8 | uint16(b[1])
}

func (r *reader) u32() uint32 {
	b := r.take(4)
	if b == nil {
		return 0
	}
	return uint32(b[0])<<24 | uint32(b[1])<<16 | uint32(b[2])<<8 | uint32(b[3])
}

func (r *reader) u64() uint64 {
	b := r.take(8)
	if b == nil {
		return 0
	}
	return uint64(b[0])<<56 | uint64(b[1])<<48 | uint64(b[2])<<40 | uint64(b[3])<<32 |
		uint64(b[4])<<24 | uint64(b[5])<<16 | uint64(b[6])<<8 | uint64(b[7])
}

func (r *reader) i32() int32       { return int32(r.u32()) }
func (r *reader) f64() float64     { return math.Float64frombits(r.u64()) }
func (r *reader) point() geo.Point { return geo.Point{X: r.f64(), Y: r.f64()} }
func (r *reader) rect() geo.Rect   { return geo.Rect{Min: r.point(), Max: r.point()} }

// bytesInto reads a length-prefixed field into dst's storage (grown as
// needed); nil-length fields decode to nil so round-trips are exact.
func (r *reader) bytesInto(dst []byte) []byte {
	n := int(r.u16())
	if r.err != nil {
		return nil
	}
	if n > maxField {
		r.err = fmt.Errorf("%w: %d-byte field", ErrOversize, n)
		return nil
	}
	if n == 0 {
		return nil
	}
	b := r.take(n)
	if b == nil {
		return nil
	}
	return append(dst[:0], b...)
}

// DecodeFrame decodes one datagram into f, reusing f's Path, Env and byte
// field storage when capacities allow (the daemon's receive path decodes
// into pooled frames). Any violation of the wire contract — bad magic or
// version, unknown kind, truncation, oversize fields, trailing bytes — is
// an error, and f's contents are unspecified after one.
func DecodeFrame(data []byte, f *Frame) error {
	if len(data) > MaxFrame {
		return fmt.Errorf("%w: %d-byte datagram", ErrOversize, len(data))
	}
	r := reader{buf: data}
	h := r.take(4)
	if h == nil {
		return r.err
	}
	if h[0] != Magic0 || h[1] != Magic1 {
		return fmt.Errorf("%w: %02x%02x", ErrBadMagic, h[0], h[1])
	}
	if h[2] != Version {
		return fmt.Errorf("%w: %d", ErrBadVersion, h[2])
	}
	kind := FrameKind(h[3])
	if kind != KindData && kind != KindAck {
		return fmt.Errorf("%w: %d", ErrBadKind, h[3])
	}
	env := f.Env
	path := f.Path[:0]
	*f = Frame{Kind: kind}
	f.SendID = r.u64()
	f.From = r.i32()
	f.To = r.i32()
	if kind == KindAck {
		if r.err == nil && r.off != len(data) {
			return fmt.Errorf("%w: %d bytes", ErrTrailing, len(data)-r.off)
		}
		return r.err
	}
	f.Flags = r.u8()
	f.VTime = r.f64()
	f.Size = r.u32()
	f.SrcPos = r.point()
	f.Flow = r.u32()
	f.Seq = r.u32()
	f.ZoneStep = r.u8()
	f.Dest = r.point()
	f.DeliverTo = r.i32()
	f.HopBudget = r.u16()
	f.Hops = r.u16()
	f.Mode = gpsr.Mode(r.u8())
	f.EntryDist = r.f64()
	f.Prev = r.i32()
	f.FirstFrom = r.i32()
	f.FirstTo = r.i32()
	n := int(r.u16())
	if r.err != nil {
		return r.err
	}
	if n > maxPath {
		return fmt.Errorf("%w: %d-hop path", ErrOversize, n)
	}
	for i := 0; i < n; i++ {
		path = append(path, r.i32())
	}
	if n > 0 {
		f.Path = path
	} else {
		f.Path = path[:0]
	}
	if f.Flags&FlagEnvelope != 0 {
		if env == nil {
			env = &Envelope{}
		}
		encLZS, encSymKey := env.EncLZS, env.EncSymKey
		encTTL, encBitmap, payload := env.EncTTL, env.EncBitmap, env.Payload
		*env = Envelope{}
		env.Kind = core.Kind(r.u8())
		copy(env.PS[:], r.take(len(env.PS)))
		copy(env.PD[:], r.take(len(env.PD)))
		env.LZD = r.rect()
		env.TD = r.point()
		env.Dir = geo.Direction(r.u8())
		env.Hdiv = int(r.u16())
		env.Hmax = int(r.u16())
		env.Zone = r.rect()
		env.DPubOwner = r.i32()
		env.Seq = int(r.u32())
		env.EncLZS = r.bytesInto(encLZS)
		env.EncSymKey = r.bytesInto(encSymKey)
		env.EncTTL = r.bytesInto(encTTL)
		env.EncBitmap = r.bytesInto(encBitmap)
		env.Payload = r.bytesInto(payload)
		f.Env = env
	}
	if r.err != nil {
		return r.err
	}
	if r.off != len(data) {
		return fmt.Errorf("%w: %d bytes", ErrTrailing, len(data)-r.off)
	}
	return nil
}

// KeyResolver maps a public-key owner id back to the key (a daemon's suite
// derives it; the wire carries only the owner id). A nil resolver leaves
// DPub nil on conversion.
type KeyResolver func(owner int) crypt.PubKey

// EnvelopeFromCore fills dst from a simulator envelope's wire-visible
// fields. Ciphertext slices are copied, not aliased — the simulator reuses
// its buffers.
func EnvelopeFromCore(dst *Envelope, env *core.Envelope) {
	owner := None
	if env.DPub != nil {
		owner = int32(env.DPub.Owner())
	}
	*dst = Envelope{
		Kind:      env.Kind,
		PS:        env.PS,
		PD:        env.PD,
		LZD:       env.LZD,
		TD:        env.TD,
		Dir:       env.Dir,
		Hdiv:      env.Hdiv,
		Hmax:      env.Hmax,
		Zone:      env.Zone,
		DPubOwner: owner,
		Seq:       env.Seq,
		EncLZS:    append([]byte(nil), env.EncLZS...),
		EncSymKey: append([]byte(nil), env.EncSymKey...),
		EncTTL:    append([]byte(nil), env.EncTTL...),
		EncBitmap: append([]byte(nil), env.EncBitmap...),
		Payload:   append([]byte(nil), env.Payload...),
	}
}

// ToCore converts a wire envelope back to the simulator's in-memory form,
// resolving DPub through the given resolver (nil leaves the key nil).
func (e *Envelope) ToCore(resolve KeyResolver) *core.Envelope {
	env := &core.Envelope{
		Kind:      e.Kind,
		PS:        e.PS,
		PD:        e.PD,
		LZD:       e.LZD,
		TD:        e.TD,
		Dir:       e.Dir,
		Hdiv:      e.Hdiv,
		Hmax:      e.Hmax,
		Zone:      e.Zone,
		Seq:       e.Seq,
		EncLZS:    append([]byte(nil), e.EncLZS...),
		EncSymKey: append([]byte(nil), e.EncSymKey...),
		EncTTL:    append([]byte(nil), e.EncTTL...),
		EncBitmap: append([]byte(nil), e.EncBitmap...),
		Payload:   append([]byte(nil), e.Payload...),
	}
	if e.DPubOwner != None && resolve != nil {
		env.DPub = resolve(int(e.DPubOwner))
	}
	return env
}

// FrameFromGPSR fills f's leg-state fields from a simulator packet's
// exported fields (the payload, a protocol concern, does not cross).
func FrameFromGPSR(f *Frame, pkt *gpsr.Packet) {
	f.Dest = pkt.Dest
	f.DeliverTo = int32(pkt.DeliverTo)
	f.Size = uint32(pkt.Size)
	f.HopBudget = uint16(pkt.HopBudget)
	f.Hops = uint16(pkt.Hops)
	f.Path = f.Path[:0]
	for _, id := range pkt.Path {
		f.Path = append(f.Path, int32(id))
	}
}

// ToGPSR copies f's leg state onto a simulator packet (the inverse of
// FrameFromGPSR). Path is appended into pkt's storage, never aliased.
func (f *Frame) ToGPSR(pkt *gpsr.Packet) {
	pkt.Dest = f.Dest
	pkt.DeliverTo = medium.NodeID(f.DeliverTo)
	pkt.Size = int(f.Size)
	pkt.HopBudget = int(f.HopBudget)
	pkt.Hops = int(f.Hops)
	pkt.Path = pkt.Path[:0]
	for _, id := range f.Path {
		pkt.Path = append(pkt.Path, medium.NodeID(id))
	}
}

// ForwardState converts the frame's carried GPSR decision state.
func (f *Frame) ForwardState() gpsr.ForwardState {
	return gpsr.ForwardState{
		Mode:      f.Mode,
		EntryDist: f.EntryDist,
		Prev:      medium.NodeID(f.Prev),
		FirstFrom: medium.NodeID(f.FirstFrom),
		FirstTo:   medium.NodeID(f.FirstTo),
	}
}

// SetForwardState stores GPSR decision state into the frame.
func (f *Frame) SetForwardState(st gpsr.ForwardState) {
	f.Mode = st.Mode
	f.EntryDist = st.EntryDist
	f.Prev = int32(st.Prev)
	f.FirstFrom = int32(st.FirstFrom)
	f.FirstTo = int32(st.FirstTo)
}

package live

import (
	"testing"

	"alertmanet/internal/experiment"
)

// TestControlPlaneRoundTrip runs a fleet entirely through the HTTP control
// plane: every daemon gets a ControlServer, the coordinator sees only
// Dial()ed handles, and the run must still deliver. This is the exact
// topology alertd + alertload use across process boundaries, minus exec.
func TestControlPlaneRoundTrip(t *testing.T) {
	sc := smokeScenario(experiment.GPSR, 15, 3)
	fl, err := SpawnFleet(sc, 0.01)
	if err != nil {
		t.Fatalf("SpawnFleet: %v", err)
	}
	defer fl.Close()

	servers := make([]*ControlServer, 0, len(fl.Daemons))
	defer func() {
		for _, cs := range servers {
			cs.Close()
		}
	}()
	handles := make([]NodeHandle, 0, len(fl.Daemons))
	for _, d := range fl.Daemons {
		cs, err := NewControlServer(d, "127.0.0.1:0")
		if err != nil {
			t.Fatalf("NewControlServer: %v", err)
		}
		servers = append(servers, cs)
		h, err := Dial(cs.Addr().String())
		if err != nil {
			t.Fatalf("Dial: %v", err)
		}
		if h.ID() != d.ID() {
			t.Fatalf("dialed handle id %d, want %d", h.ID(), d.ID())
		}
		if h.Pseudonym() != d.Pseudonym() {
			t.Fatalf("node %d pseudonym did not survive the info round trip", d.ID())
		}
		if h.UDPAddr().String() != d.UDPAddr().String() {
			t.Fatalf("node %d udp addr %s != %s", d.ID(), h.UDPAddr(), d.UDPAddr())
		}
		handles = append(handles, h)
	}

	sum, err := NewCoordinator(fl.World, handles, 0.01).Run()
	if err != nil {
		t.Fatalf("coordinator over HTTP handles: %v", err)
	}
	if sum.Sent == 0 || sum.Delivered == 0 {
		t.Fatalf("HTTP-driven fleet: sent %d delivered %d, want both > 0", sum.Sent, sum.Delivered)
	}
	t.Logf("http round trip: sent %d delivered %d rate %.2f", sum.Sent, sum.Delivered, sum.DeliveryRate)
}

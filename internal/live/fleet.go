// Fleet assembly: turn an experiment.Scenario into a set of running live
// daemons whose configuration mirrors exactly what experiment.Build would
// hand the simulator — same field, partition depth, hop budgets, medium
// parameters and crypto charging — so a live run and a sim run of the same
// scenario differ only in transport.

package live

import (
	"fmt"
	"net"
	"time"

	"alertmanet/internal/crypt"
	"alertmanet/internal/experiment"
	"alertmanet/internal/geo"
	"alertmanet/internal/gpsr"
	"alertmanet/internal/medium"
	"alertmanet/internal/telemetry"
)

// NodeHandle is one fleet member as the coordinator drives it. *Daemon
// implements it directly (in-process fleets: real UDP data plane, function
// -call control plane); controlClient (control.go) implements it over HTTP
// for externally spawned alertd processes.
type NodeHandle interface {
	ID() int
	UDPAddr() *net.UDPAddr
	Pseudonym() crypt.Pseudonym
	ApplyTopology(Topology) error
	StartFlow(FlowSpec) error
	Collect() (Report, error)
	Close() error
}

// DaemonConfigFor derives the live daemon configuration for node id from a
// scenario — the single place the sim-to-live parameter mapping lives.
func DaemonConfigFor(sc experiment.Scenario, id int, timescale float64) Config {
	par := medium.DefaultParams()
	par.LossRate = sc.LossRate
	if sc.HelloInterval > 0 {
		par.HelloInterval = sc.HelloInterval
	}
	if sc.NoARQ {
		par.Retries = 0
	}
	hmax := sc.Alert.H
	if hmax <= 0 {
		hmax = geo.PartitionsForK(sc.N, sc.Alert.K)
	}
	hopBudget := sc.Gpsr.HopBudget
	if hopBudget <= 0 {
		hopBudget = gpsr.DefaultHopBudget
	}
	legBudget := sc.Alert.LegHopBudget
	if legBudget <= 0 {
		legBudget = gpsr.DefaultHopBudget
	}
	return Config{
		ID:                 id,
		Protocol:           string(sc.Protocol),
		Field:              sc.Field,
		Seed:               sc.Seed,
		Hmax:               hmax,
		FixedAxisPartition: sc.Alert.FixedAxisPartition,
		PacketSize:         sc.PacketSize,
		HopBudget:          hopBudget,
		LegHopBudget:       legBudget,
		ChargeSessionSetup: sc.Alert.ChargeSessionSetup,
		Medium:             par,
		Timescale:          timescale,
		AckTimeout:         25 * time.Millisecond,
		QueueDepth:         512,
	}
}

// Fleet is a set of in-process daemons plus the simulator World whose
// mobility, pair choice and flow schedule the coordinator replays onto
// them (trajectory identity is what makes sim-vs-live comparison honest).
type Fleet struct {
	World   *experiment.World
	Daemons []*Daemon
}

// SpawnFleet builds the scenario's World, then one daemon per node bound
// to a loopback UDP socket, all started. On any error the partial fleet is
// torn down.
func SpawnFleet(sc experiment.Scenario, timescale float64) (*Fleet, error) {
	return SpawnFleetWithTaps(sc, timescale, nil)
}

// SpawnFleetWithTaps is SpawnFleet with per-node telemetry: tapFor (when
// non-nil) supplies each daemon's tap before it starts, so the full live
// event stream — frame tx/rx, hops, zone broadcasts, crypto charges — lands
// in per-node JSONL files a tlmgrep query can slice like a sim stream.
func SpawnFleetWithTaps(sc experiment.Scenario, timescale float64, tapFor func(id int) *telemetry.Tap) (*Fleet, error) {
	w, err := experiment.Build(sc)
	if err != nil {
		return nil, err
	}
	n := w.Mob.N()
	fl := &Fleet{World: w, Daemons: make([]*Daemon, 0, n)}
	for id := 0; id < n; id++ {
		d, err := NewDaemon(DaemonConfigFor(sc, id, timescale), "127.0.0.1:0")
		if err != nil {
			fl.Close()
			return nil, fmt.Errorf("live: spawn node %d: %w", id, err)
		}
		if tapFor != nil {
			d.SetTap(tapFor(id))
		}
		d.Start()
		fl.Daemons = append(fl.Daemons, d)
	}
	return fl, nil
}

// Handles returns the fleet as coordinator-drivable handles.
func (fl *Fleet) Handles() []NodeHandle {
	hs := make([]NodeHandle, len(fl.Daemons))
	for i, d := range fl.Daemons {
		hs[i] = d
	}
	return hs
}

// Close stops every daemon; the first error wins.
func (fl *Fleet) Close() error {
	var first error
	for _, d := range fl.Daemons {
		if err := d.Close(); err != nil && first == nil {
			first = err
		}
	}
	return first
}

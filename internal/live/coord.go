// The coordinator: the piece that turns a daemon fleet into the paper's
// field. It replays the scenario's mobility trajectories onto the fleet by
// pushing each daemon a fresh position and steered neighbor table every
// emulated hello interval (out-of-emulated-range peers simply never appear
// in a table, so the loopback fabric behaves like the radio medium), keeps
// the location-service entries of every flow refreshed on the scenario's
// update cadence, launches the exact flow schedule the simulator would run
// (same pairs, same offsets, same packet counts — derived from the same
// seeded streams), and finally scrapes every daemon's measurements into a
// fleet Summary.
//
// Wall-clock enters only as pacing: emulated time t maps to start +
// t*timescale. Every measured quantity rides the frames' virtual-time
// accumulator instead, so the summary is unchanged (statistically) by how
// hard the clock is compressed.

package live

import (
	"fmt"
	"math"
	"sort"
	"time"

	"alertmanet/internal/experiment"
	"alertmanet/internal/geo"
	"alertmanet/internal/medium"
)

// Flow is one coordinator-derived flow: the live rendering of one sim S-D
// pair and its CBR schedule.
type Flow struct {
	ID      uint32
	Src     int
	Dst     int
	Offset  float64
	Packets int
}

// Summary aggregates a live run across the fleet — the live counterpart of
// experiment.Result, restricted to what live measures.
type Summary struct {
	Protocol     string       `json:"protocol"`
	Seed         int64        `json:"seed"`
	N            int          `json:"n"`
	Sent         int          `json:"sent"`
	Delivered    int          `json:"delivered"`
	DeliveryRate float64      `json:"delivery_rate"`
	MeanLatency  float64      `json:"mean_latency"`
	LatencyP50   float64      `json:"latency_p50"`
	LatencyP95   float64      `json:"latency_p95"`
	HopsPerPkt   float64      `json:"hops_per_packet"`
	Counters     Counters     `json:"counters"`
	Flows        []Flow       `json:"flows"`
	Sends        []SendRecord `json:"sends"`
	Deliveries   []Delivery   `json:"deliveries"`
}

// Coordinator drives one fleet through one scenario run.
type Coordinator struct {
	w     *experiment.World
	nodes []NodeHandle
	byID  map[int]NodeHandle

	// Timescale is real seconds per emulated second; it must match the
	// daemons' own Timescale (SpawnFleet guarantees this for in-process
	// fleets).
	Timescale float64
	// Slack is extra real time after the emulated horizon for in-flight
	// datagrams and ARQ exchanges to settle before collection.
	Slack time.Duration
	// Range is the emulated radio range used to steer neighbor tables;
	// it must match the daemons' Medium.Range.
	Range float64
}

// NewCoordinator pairs a built World with the fleet that will act it out.
func NewCoordinator(w *experiment.World, nodes []NodeHandle, timescale float64) *Coordinator {
	byID := make(map[int]NodeHandle, len(nodes))
	for _, h := range nodes {
		byID[h.ID()] = h
	}
	return &Coordinator{
		w: w, nodes: nodes, byID: byID,
		Timescale: timescale,
		Slack:     500 * time.Millisecond,
		Range:     medium.DefaultParams().Range,
	}
}

// RunFleet is the one-call harness: spawn the scenario's fleet, run the
// coordinator over it, tear the fleet down.
func RunFleet(sc experiment.Scenario, timescale float64) (Summary, error) {
	fl, err := SpawnFleet(sc, timescale)
	if err != nil {
		return Summary{}, err
	}
	defer fl.Close()
	return NewCoordinator(fl.World, fl.Handles(), timescale).Run()
}

// DeriveFlows mirrors World.StartWorkload's randomness step for step —
// same ChoosePairs draw, same payload read, same per-pair stream splits —
// so the live fleet runs the identical flow schedule the simulator would.
// Only the CBR workload (the paper's model, and the Scenario default) maps
// onto live flow pacing.
func DeriveFlows(w *experiment.World) ([]Flow, []byte, error) {
	sc := w.Scenario
	if sc.Workload != "" && sc.Workload != experiment.CBR {
		return nil, nil, fmt.Errorf("live: only the CBR workload maps to live flows, got %q", sc.Workload)
	}
	pairs := w.ChoosePairs()
	payload := make([]byte, 64)
	w.Rand.Read(payload)
	flows := make([]Flow, 0, len(pairs))
	for i, pr := range pairs {
		src := w.Rand.SplitIndex("pair", i)
		offset := src.Uniform(0, sc.Interval/2)
		if offset > sc.Duration {
			continue
		}
		// sim.TickerUntil fires at offset + k*Interval for
		// k = 0..floor((Duration-offset)/Interval).
		packets := int(math.Floor((sc.Duration-offset)/sc.Interval)) + 1
		if sc.Packets > 0 && packets > sc.Packets {
			packets = sc.Packets
		}
		flows = append(flows, Flow{
			ID: uint32(i), Src: int(pr.S), Dst: int(pr.D),
			Offset: offset, Packets: packets,
		})
	}
	return flows, payload, nil
}

// Run executes the scenario on the fleet and returns the aggregated
// summary. It blocks for the compressed wall-clock duration of the run:
// (Duration + DrainTime) * Timescale + Slack.
func (c *Coordinator) Run() (Summary, error) {
	if c.Timescale <= 0 {
		return Summary{}, fmt.Errorf("live: coordinator needs a positive timescale")
	}
	sc := c.w.Scenario
	flows, payload, err := DeriveFlows(c.w)
	if err != nil {
		return Summary{}, err
	}

	// Initial topology: daemons must know their position and neighbors
	// (and ALERT sources their own zone) before any flow starts.
	if err := c.pushTopology(0, flows, true); err != nil {
		return Summary{}, err
	}
	for _, fl := range flows {
		src, ok := c.byID[fl.Src]
		dstH, okD := c.byID[fl.Dst]
		if !ok || !okD {
			return Summary{}, fmt.Errorf("live: flow %d references unknown node %d->%d", fl.ID, fl.Src, fl.Dst)
		}
		spec := FlowSpec{
			Flow: fl.ID,
			Dest: DestEntry{
				ID:        fl.Dst,
				Pos:       c.w.Mob.Position(fl.Dst, 0),
				Pseudonym: dstH.Pseudonym(),
			},
			Packets:  fl.Packets,
			Interval: sc.Interval,
			Offset:   fl.Offset,
			Size:     sc.PacketSize,
			Payload:  payload,
		}
		if err := src.StartFlow(spec); err != nil {
			return Summary{}, err
		}
	}

	// March emulated time: topology every hello interval, location
	// entries every LocInterval (when updates are on), like the sim's
	// beacon and location-service cadences.
	hello := sc.HelloInterval
	if hello <= 0 {
		hello = 1
	}
	horizon := sc.Duration + sc.DrainTime
	start := time.Now()
	lastLoc := 0.0
	for t := hello; t <= horizon+1e-9; t += hello {
		target := time.Duration(t * c.Timescale * float64(time.Second))
		if d := target - time.Since(start); d > 0 {
			time.Sleep(d)
		}
		refreshLoc := sc.LocUpdates && sc.LocInterval > 0 && t-lastLoc >= sc.LocInterval-1e-9
		if refreshLoc {
			lastLoc = t
		}
		if err := c.pushTopology(t, flows, refreshLoc); err != nil {
			return Summary{}, err
		}
	}
	time.Sleep(c.Slack)
	return c.collect(flows)
}

// pushTopology computes every node's position at emulated time t, builds
// the steered neighbor tables (emulated radio range over the loopback
// fabric), and pushes them — including refreshed location entries for the
// flows each node sources when refreshLoc is set.
func (c *Coordinator) pushTopology(t float64, flows []Flow, refreshLoc bool) error {
	n := len(c.nodes)
	pos := make([]geo.Point, n)
	for i, h := range c.nodes {
		pos[i] = c.w.Mob.Position(h.ID(), t)
	}
	rangeM := c.Range
	for i, h := range c.nodes {
		top := Topology{T: t, Self: pos[i]}
		for j, other := range c.nodes {
			if i == j || pos[i].Dist(pos[j]) > rangeM {
				continue
			}
			top.Nbrs = append(top.Nbrs, Neighbor{
				ID:   int32(other.ID()),
				Pos:  pos[j],
				Addr: other.UDPAddr(),
			})
		}
		if refreshLoc {
			for _, fl := range flows {
				if fl.Src != h.ID() {
					continue
				}
				top.Dests = append(top.Dests, DestUpdate{
					Flow: fl.ID,
					Pos:  c.w.Mob.Position(fl.Dst, t),
				})
			}
		}
		if err := h.ApplyTopology(top); err != nil {
			return err
		}
	}
	return nil
}

// collect scrapes every daemon and folds the fleet into a Summary.
func (c *Coordinator) collect(flows []Flow) (Summary, error) {
	sc := c.w.Scenario
	sum := Summary{
		Protocol: string(sc.Protocol),
		Seed:     sc.Seed,
		N:        len(c.nodes),
		Flows:    flows,
	}
	seen := make(map[uint64]bool)
	for _, h := range c.nodes {
		rep, err := h.Collect()
		if err != nil {
			return Summary{}, err
		}
		addCounters(&sum.Counters, rep.Counters)
		sum.Sends = append(sum.Sends, rep.Sends...)
		for _, dv := range rep.Deliveries {
			// Per-daemon dedup already holds; this guards the
			// impossible cross-daemon duplicate (two nodes claiming
			// one (flow, seq)) from inflating delivery rate.
			k := pairKey(dv.Flow, dv.Seq)
			if seen[k] {
				continue
			}
			seen[k] = true
			sum.Deliveries = append(sum.Deliveries, dv)
		}
	}
	sort.Slice(sum.Sends, func(i, j int) bool {
		if sum.Sends[i].Flow != sum.Sends[j].Flow {
			return sum.Sends[i].Flow < sum.Sends[j].Flow
		}
		return sum.Sends[i].Seq < sum.Sends[j].Seq
	})
	sort.Slice(sum.Deliveries, func(i, j int) bool {
		if sum.Deliveries[i].Flow != sum.Deliveries[j].Flow {
			return sum.Deliveries[i].Flow < sum.Deliveries[j].Flow
		}
		return sum.Deliveries[i].Seq < sum.Deliveries[j].Seq
	})
	sum.Sent = len(sum.Sends)
	sum.Delivered = len(sum.Deliveries)
	if sum.Sent > 0 {
		sum.DeliveryRate = float64(sum.Delivered) / float64(sum.Sent)
	}
	if sum.Delivered > 0 {
		lats := make([]float64, 0, sum.Delivered)
		hops := 0
		for _, dv := range sum.Deliveries {
			lats = append(lats, dv.VTime)
			hops += dv.Hops
		}
		sort.Float64s(lats)
		total := 0.0
		for _, l := range lats {
			total += l
		}
		sum.MeanLatency = total / float64(len(lats))
		sum.LatencyP50 = quantile(lats, 0.50)
		sum.LatencyP95 = quantile(lats, 0.95)
		sum.HopsPerPkt = float64(hops) / float64(sum.Delivered)
	}
	return sum, nil
}

func addCounters(dst *Counters, src Counters) {
	dst.RxDatagrams += src.RxDatagrams
	dst.TxDatagrams += src.TxDatagrams
	dst.RxDropsFull += src.RxDropsFull
	dst.TxDropsFull += src.TxDropsFull
	dst.DecodeErrors += src.DecodeErrors
	dst.DroppedRange += src.DroppedRange
	dst.DroppedLoss += src.DroppedLoss
	dst.Dups += src.Dups
	dst.AcksTx += src.AcksTx
	dst.AcksRx += src.AcksRx
	dst.AcksLost += src.AcksLost
	dst.Retries += src.Retries
	dst.SendsLost += src.SendsLost
	dst.Forwarded += src.Forwarded
	dst.LegArrived += src.LegArrived
	dst.LegDropTTL += src.LegDropTTL
	dst.LegDropDeadEnd += src.LegDropDeadEnd
	dst.LegDropLink += src.LegDropLink
	dst.PerimeterEntries += src.PerimeterEntries
	dst.ZoneBroadcasts += src.ZoneBroadcasts
	dst.ZoneRelays += src.ZoneRelays
	dst.Sent += src.Sent
	dst.Delivered += src.Delivered
}

// quantile returns the q-th quantile of sorted values (nearest-rank).
func quantile(sorted []float64, q float64) float64 {
	if len(sorted) == 0 {
		return 0
	}
	idx := int(math.Ceil(q*float64(len(sorted)))) - 1
	if idx < 0 {
		idx = 0
	}
	if idx >= len(sorted) {
		idx = len(sorted) - 1
	}
	return sorted[idx]
}

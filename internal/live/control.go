// The daemon's TCP/HTTP control plane and its client. alertd exposes a
// tiny JSON API on a loopback TCP socket — topology pushes, flow starts,
// report scrapes, shutdown — and controlClient implements NodeHandle over
// it, so a coordinator drives an externally spawned alertd process exactly
// like an in-process daemon. The data plane never touches HTTP: frames ride
// the UDP socket; this channel carries control at hello-interval cadence.

package live

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net"
	"net/http"
	"time"

	"alertmanet/internal/crypt"
	"alertmanet/internal/geo"
)

// Control-plane DTOs: net.UDPAddr travels as "host:port" text and points
// as bare coordinates, so the JSON stays trivially scriptable (curl-able).

type neighborDTO struct {
	ID   int32   `json:"id"`
	X    float64 `json:"x"`
	Y    float64 `json:"y"`
	Addr string  `json:"addr"`
}

type topologyDTO struct {
	T     float64       `json:"t"`
	X     float64       `json:"x"`
	Y     float64       `json:"y"`
	Nbrs  []neighborDTO `json:"nbrs"`
	Dests []DestUpdate  `json:"dests,omitempty"`
}

type infoDTO struct {
	ID        int    `json:"id"`
	UDP       string `json:"udp"`
	Pseudonym []byte `json:"pseudonym"`
	Protocol  string `json:"protocol"`
}

func topologyToDTO(t Topology) topologyDTO {
	dto := topologyDTO{T: t.T, X: t.Self.X, Y: t.Self.Y, Dests: t.Dests}
	for _, nb := range t.Nbrs {
		dto.Nbrs = append(dto.Nbrs, neighborDTO{
			ID: nb.ID, X: nb.Pos.X, Y: nb.Pos.Y, Addr: nb.Addr.String(),
		})
	}
	return dto
}

func topologyFromDTO(dto topologyDTO) (Topology, error) {
	t := Topology{T: dto.T, Self: geo.Point{X: dto.X, Y: dto.Y}, Dests: dto.Dests}
	for _, nb := range dto.Nbrs {
		ua, err := net.ResolveUDPAddr("udp", nb.Addr)
		if err != nil {
			return Topology{}, fmt.Errorf("live: neighbor %d addr %q: %w", nb.ID, nb.Addr, err)
		}
		t.Nbrs = append(t.Nbrs, Neighbor{ID: nb.ID, Pos: geo.Point{X: nb.X, Y: nb.Y}, Addr: ua})
	}
	return t, nil
}

// ControlServer serves a daemon's control API. Construct with
// NewControlServer, shut down with Close (which also closes the daemon
// when quit was requested remotely).
type ControlServer struct {
	d   *Daemon
	ln  net.Listener
	srv *http.Server
	// Quit is closed when a client POSTs /v1/quit; the alertd main loop
	// selects on it.
	Quit chan struct{}
}

// NewControlServer binds the control listener on addr ("127.0.0.1:0" to
// let the OS pick) and starts serving the daemon's control API.
func NewControlServer(d *Daemon, addr string) (*ControlServer, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("live: control listen %q: %w", addr, err)
	}
	cs := &ControlServer{d: d, ln: ln, Quit: make(chan struct{})}
	mux := http.NewServeMux()
	mux.HandleFunc("/v1/info", cs.handleInfo)
	mux.HandleFunc("/v1/topology", cs.handleTopology)
	mux.HandleFunc("/v1/flow", cs.handleFlow)
	mux.HandleFunc("/v1/report", cs.handleReport)
	mux.HandleFunc("/v1/quit", cs.handleQuit)
	cs.srv = &http.Server{Handler: mux}
	go cs.srv.Serve(ln) //nolint:errcheck // Serve returns on Close
	return cs, nil
}

// Addr returns the bound control address.
func (cs *ControlServer) Addr() net.Addr { return cs.ln.Addr() }

// Close stops the control server (the daemon is closed separately).
func (cs *ControlServer) Close() error {
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
	defer cancel()
	return cs.srv.Shutdown(ctx)
}

func writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(v) //nolint:errcheck // client gone is client's problem
}

func (cs *ControlServer) handleInfo(w http.ResponseWriter, r *http.Request) {
	ps := cs.d.Pseudonym()
	writeJSON(w, infoDTO{
		ID:        cs.d.ID(),
		UDP:       cs.d.UDPAddr().String(),
		Pseudonym: ps[:],
		Protocol:  cs.d.cfg.Protocol,
	})
}

func (cs *ControlServer) handleTopology(w http.ResponseWriter, r *http.Request) {
	var dto topologyDTO
	if err := json.NewDecoder(r.Body).Decode(&dto); err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	top, err := topologyFromDTO(dto)
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	if err := cs.d.ApplyTopology(top); err != nil {
		http.Error(w, err.Error(), http.StatusConflict)
		return
	}
	w.WriteHeader(http.StatusNoContent)
}

func (cs *ControlServer) handleFlow(w http.ResponseWriter, r *http.Request) {
	var spec FlowSpec
	if err := json.NewDecoder(r.Body).Decode(&spec); err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	if err := cs.d.StartFlow(spec); err != nil {
		http.Error(w, err.Error(), http.StatusConflict)
		return
	}
	w.WriteHeader(http.StatusNoContent)
}

func (cs *ControlServer) handleReport(w http.ResponseWriter, r *http.Request) {
	rep, err := cs.d.Collect()
	if err != nil {
		http.Error(w, err.Error(), http.StatusConflict)
		return
	}
	writeJSON(w, rep)
}

func (cs *ControlServer) handleQuit(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		http.Error(w, "POST required", http.StatusMethodNotAllowed)
		return
	}
	w.WriteHeader(http.StatusNoContent)
	select {
	case <-cs.Quit:
	default:
		close(cs.Quit)
	}
}

// controlClient drives a remote alertd over its control API; it implements
// NodeHandle, so coordinators are indifferent to process boundaries.
type controlClient struct {
	base  string
	hc    *http.Client
	id    int
	udp   *net.UDPAddr
	pseud crypt.Pseudonym
	proto string
}

// Dial connects to an alertd control endpoint ("host:port" or a full
// http:// URL) and fetches the node's identity.
func Dial(endpoint string) (NodeHandle, error) {
	base := endpoint
	if len(base) < 7 || base[:7] != "http://" {
		base = "http://" + base
	}
	c := &controlClient{base: base, hc: &http.Client{Timeout: 10 * time.Second}}
	resp, err := c.hc.Get(base + "/v1/info")
	if err != nil {
		return nil, fmt.Errorf("live: dial %s: %w", endpoint, err)
	}
	defer resp.Body.Close()
	var info infoDTO
	if err := json.NewDecoder(resp.Body).Decode(&info); err != nil {
		return nil, fmt.Errorf("live: dial %s: decode info: %w", endpoint, err)
	}
	ua, err := net.ResolveUDPAddr("udp", info.UDP)
	if err != nil {
		return nil, fmt.Errorf("live: dial %s: udp addr %q: %w", endpoint, info.UDP, err)
	}
	c.id, c.udp, c.proto = info.ID, ua, info.Protocol
	copy(c.pseud[:], info.Pseudonym)
	return c, nil
}

func (c *controlClient) ID() int                    { return c.id }
func (c *controlClient) UDPAddr() *net.UDPAddr      { return c.udp }
func (c *controlClient) Pseudonym() crypt.Pseudonym { return c.pseud }

func (c *controlClient) post(path string, v any) error {
	body, err := json.Marshal(v)
	if err != nil {
		return err
	}
	resp, err := c.hc.Post(c.base+path, "application/json", bytes.NewReader(body))
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode >= 300 {
		msg, _ := io.ReadAll(io.LimitReader(resp.Body, 512))
		return fmt.Errorf("live: %s: %s: %s", c.base, resp.Status, bytes.TrimSpace(msg))
	}
	return nil
}

func (c *controlClient) ApplyTopology(t Topology) error {
	return c.post("/v1/topology", topologyToDTO(t))
}

func (c *controlClient) StartFlow(spec FlowSpec) error {
	return c.post("/v1/flow", spec)
}

func (c *controlClient) Collect() (Report, error) {
	resp, err := c.hc.Get(c.base + "/v1/report")
	if err != nil {
		return Report{}, err
	}
	defer resp.Body.Close()
	var rep Report
	if err := json.NewDecoder(resp.Body).Decode(&rep); err != nil {
		return Report{}, err
	}
	return rep, nil
}

// Close asks the remote daemon to quit.
func (c *controlClient) Close() error {
	return c.post("/v1/quit", struct{}{})
}

package live

import (
	"bytes"
	"math"
	"reflect"
	"testing"

	"alertmanet/internal/core"
	"alertmanet/internal/crypt"
	"alertmanet/internal/geo"
	"alertmanet/internal/gpsr"
	"alertmanet/internal/medium"
	"alertmanet/internal/rng"
)

func mustEncode(t *testing.T, f *Frame) []byte {
	t.Helper()
	b, err := AppendFrame(nil, f)
	if err != nil {
		t.Fatalf("AppendFrame: %v", err)
	}
	return b
}

func sampleDataFrame() *Frame {
	return &Frame{
		Kind:      KindData,
		SendID:    0x0102030405060708,
		From:      3,
		To:        9,
		Flags:     0,
		VTime:     0.0123,
		Size:      512,
		SrcPos:    geo.Point{X: 101.5, Y: 902.25},
		Flow:      7,
		Seq:       42,
		Dest:      geo.Point{X: 700, Y: 300},
		DeliverTo: int32(gpsr.NoDeliverTo),
		HopBudget: 10,
		Hops:      3,
		Mode:      gpsr.Perimeter,
		EntryDist: 321.125,
		Prev:      2,
		FirstFrom: 3,
		FirstTo:   5,
		Path:      []int32{1, 2, 3},
	}
}

func sampleEnvelope() *Envelope {
	e := &Envelope{
		Kind:      core.KindData,
		LZD:       geo.Rect{Min: geo.Point{X: 1, Y: 2}, Max: geo.Point{X: 3, Y: 4}},
		TD:        geo.Point{X: 5, Y: 6},
		Dir:       geo.Horizontal,
		Hdiv:      2,
		Hmax:      5,
		Zone:      geo.Rect{Min: geo.Point{}, Max: geo.Point{X: 1000, Y: 1000}},
		DPubOwner: 9,
		Seq:       11,
		EncLZS:    []byte{1, 2, 3},
		EncSymKey: []byte{4, 5},
		Payload:   []byte("sealed payload bytes"),
	}
	for i := range e.PS {
		e.PS[i] = byte(i)
		e.PD[i] = byte(0xFF - i)
	}
	return e
}

// TestRoundTripData pins the codec's core contract: decode(encode(f)) == f
// and encode(decode(b)) == b, for plain data frames, envelope frames and
// acks.
func TestRoundTripData(t *testing.T) {
	frames := map[string]*Frame{
		"data":  sampleDataFrame(),
		"ack":   {Kind: KindAck, SendID: 99, From: 1, To: 2},
		"empty": {Kind: KindData, To: None, Flags: FlagNoAck, ZoneStep: 1},
	}
	env := sampleDataFrame()
	env.Flags |= FlagEnvelope
	env.Env = sampleEnvelope()
	frames["envelope"] = env

	for name, f := range frames {
		b := mustEncode(t, f)
		var got Frame
		if err := DecodeFrame(b, &got); err != nil {
			t.Fatalf("%s: DecodeFrame: %v", name, err)
		}
		if !reflect.DeepEqual(&got, f) {
			t.Errorf("%s: round-trip mismatch:\n got %+v\nwant %+v", name, got, *f)
		}
		b2 := mustEncode(t, &got)
		if !bytes.Equal(b, b2) {
			t.Errorf("%s: re-encode differs from original bytes", name)
		}
	}
}

// TestDecodeReuse decodes into a frame that already holds storage — the
// daemon's pooled receive path — and checks the previous contents never
// leak through.
func TestDecodeReuse(t *testing.T) {
	var f Frame
	withEnv := sampleDataFrame()
	withEnv.Flags |= FlagEnvelope
	withEnv.Env = sampleEnvelope()
	if err := DecodeFrame(mustEncode(t, withEnv), &f); err != nil {
		t.Fatal(err)
	}
	plain := sampleDataFrame()
	plain.Path = []int32{8}
	if err := DecodeFrame(mustEncode(t, plain), &f); err != nil {
		t.Fatal(err)
	}
	if f.Env != nil {
		t.Errorf("stale envelope survived reuse: %+v", f.Env)
	}
	if !reflect.DeepEqual(f.Path, []int32{8}) {
		t.Errorf("stale path survived reuse: %v", f.Path)
	}
}

// TestDecodeErrors exercises every strictness clause of the wire contract.
func TestDecodeErrors(t *testing.T) {
	good := mustEncode(t, sampleDataFrame())
	var f Frame
	cases := map[string][]byte{
		"empty":       {},
		"short":       good[:3],
		"bad magic":   append([]byte{0, 0}, good[2:]...),
		"bad version": append([]byte{Magic0, Magic1, 99}, good[3:]...),
		"bad kind":    append([]byte{Magic0, Magic1, Version, 77}, good[4:]...),
		"truncated":   good[:len(good)-2],
		"trailing":    append(append([]byte(nil), good...), 0),
		"oversize":    make([]byte, MaxFrame+1),
	}
	for name, b := range cases {
		if err := DecodeFrame(b, &f); err == nil {
			t.Errorf("%s: decode accepted corrupt input", name)
		}
	}
	if _, err := AppendFrame(nil, &Frame{Kind: 7}); err == nil {
		t.Error("AppendFrame accepted unknown kind")
	}
	if _, err := AppendFrame(nil, &Frame{Kind: KindData, Path: make([]int32, maxPath+1)}); err == nil {
		t.Error("AppendFrame accepted oversize path")
	}
	big := sampleDataFrame()
	big.Flags |= FlagEnvelope
	big.Env = &Envelope{Payload: make([]byte, maxField+1)}
	if _, err := AppendFrame(nil, big); err == nil {
		t.Error("AppendFrame accepted oversize envelope field")
	}
	noEnv := sampleDataFrame()
	noEnv.Flags |= FlagEnvelope
	if _, err := AppendFrame(nil, noEnv); err == nil {
		t.Error("AppendFrame accepted FlagEnvelope without Env")
	}
}

// TestEnvelopeCoreRoundTrip round-trips a simulator core.Envelope through
// the wire format and back, including public-key resolution through a
// shared suite — the codec's fidelity contract against the core payload
// type.
func TestEnvelopeCoreRoundTrip(t *testing.T) {
	src := rng.New(7)
	suite := crypt.NewFastSuite(src)
	pub, _ := suite.GenerateKeyPair(4)
	orig := &core.Envelope{
		Kind:      core.KindNAK,
		LZD:       geo.Rect{Min: geo.Point{X: 10, Y: 20}, Max: geo.Point{X: 30, Y: 40}},
		TD:        geo.Point{X: 1.5, Y: 2.5},
		Dir:       geo.Vertical,
		Hdiv:      1,
		Hmax:      6,
		Zone:      geo.Rect{Max: geo.Point{X: 500, Y: 500}},
		DPub:      pub,
		Seq:       3,
		EncLZS:    []byte{9, 9, 9},
		EncSymKey: []byte{8},
		EncTTL:    []byte{7, 7},
		EncBitmap: []byte{6},
		Payload:   []byte("data"),
	}
	orig.PS = crypt.NewPseudonym(1, 0, src)
	orig.PD = crypt.NewPseudonym(2, 0, src)

	var w Envelope
	EnvelopeFromCore(&w, orig)
	f := &Frame{Kind: KindData, Flags: FlagEnvelope, Env: &w}
	var got Frame
	if err := DecodeFrame(mustEncode(t, f), &got); err != nil {
		t.Fatal(err)
	}
	back := got.Env.ToCore(func(owner int) crypt.PubKey {
		p, _ := suite.GenerateKeyPair(owner)
		return p
	})
	if !reflect.DeepEqual(back, orig) {
		t.Errorf("core round-trip mismatch:\n got %+v\nwant %+v", back, orig)
	}
	if back.DPub.Owner() != 4 {
		t.Errorf("DPub owner = %d, want 4", back.DPub.Owner())
	}
}

// TestGPSRRoundTrip round-trips a gpsr.Packet's exported leg state through
// the frame format.
func TestGPSRRoundTrip(t *testing.T) {
	pkt := &gpsr.Packet{
		Dest:      geo.Point{X: 123, Y: 456},
		DeliverTo: 17,
		Size:      512,
		HopBudget: 9,
		Hops:      4,
		Path:      []medium.NodeID{0, 3, 5, 17},
	}
	var f Frame
	f.Kind = KindData
	FrameFromGPSR(&f, pkt)
	var got Frame
	if err := DecodeFrame(mustEncode(t, &f), &got); err != nil {
		t.Fatal(err)
	}
	var back gpsr.Packet
	got.ToGPSR(&back)
	if back.Dest != pkt.Dest || back.DeliverTo != pkt.DeliverTo ||
		back.Size != pkt.Size || back.HopBudget != pkt.HopBudget ||
		back.Hops != pkt.Hops || !reflect.DeepEqual(back.Path, pkt.Path) {
		t.Errorf("gpsr round-trip mismatch:\n got %+v\nwant %+v", back, *pkt)
	}
}

// TestForwardStateRoundTrip round-trips the GPSR decision state the frame
// carries between daemons.
func TestForwardStateRoundTrip(t *testing.T) {
	st := gpsr.ForwardState{Mode: gpsr.Perimeter, EntryDist: 77.5,
		Prev: 3, FirstFrom: 4, FirstTo: gpsr.NoDeliverTo}
	var f Frame
	f.Kind = KindData
	f.SetForwardState(st)
	var got Frame
	if err := DecodeFrame(mustEncode(t, &f), &got); err != nil {
		t.Fatal(err)
	}
	if got.ForwardState() != st {
		t.Errorf("forward state round-trip: got %+v want %+v", got.ForwardState(), st)
	}
}

// FuzzWireCodec is the codec's safety and determinism fuzz: any byte string
// either fails to decode or round-trips byte-identically through
// encode(decode(b)), for every frame kind. Seeds cover each kind and each
// error class.
func FuzzWireCodec(f *testing.F) {
	add := func(fr *Frame) {
		b, err := AppendFrame(nil, fr)
		if err != nil {
			f.Fatal(err)
		}
		f.Add(b)
	}
	add(sampleDataFrame())
	add(&Frame{Kind: KindAck, SendID: 1, From: 0, To: 1})
	envf := sampleDataFrame()
	envf.Flags |= FlagEnvelope
	envf.Env = sampleEnvelope()
	add(envf)
	zone := sampleDataFrame()
	zone.To = None
	zone.Flags = FlagNoAck
	zone.ZoneStep = 2
	add(zone)
	f.Add([]byte{})
	f.Add([]byte{Magic0, Magic1, Version, byte(KindData)})
	f.Add(bytes.Repeat([]byte{0xA5}, 64))

	f.Fuzz(func(t *testing.T, data []byte) {
		var fr Frame
		if err := DecodeFrame(data, &fr); err != nil {
			return
		}
		re, err := AppendFrame(nil, &fr)
		if err != nil {
			// Float fields can decode to NaN and still re-encode; the
			// only legitimate re-encode failures are bounds, which
			// decode already enforced.
			t.Fatalf("decoded frame failed to re-encode: %v", err)
		}
		if !bytes.Equal(re, data) {
			t.Fatalf("re-encode differs:\n in  %x\n out %x", data, re)
		}
		// Decoding the re-encoded bytes must agree field-for-field
		// unless a float field carries NaN (NaN != NaN).
		var fr2 Frame
		if err := DecodeFrame(re, &fr2); err != nil {
			t.Fatalf("re-decode failed: %v", err)
		}
		if !hasNaN(&fr) && !reflect.DeepEqual(&fr, &fr2) {
			t.Fatalf("re-decode differs:\n a %+v\n b %+v", fr, fr2)
		}
	})
}

func hasNaN(f *Frame) bool {
	for _, v := range []float64{f.VTime, f.SrcPos.X, f.SrcPos.Y, f.Dest.X,
		f.Dest.Y, f.EntryDist} {
		if math.IsNaN(v) {
			return true
		}
	}
	if e := f.Env; e != nil {
		for _, v := range []float64{e.LZD.Min.X, e.LZD.Min.Y, e.LZD.Max.X,
			e.LZD.Max.Y, e.TD.X, e.TD.Y, e.Zone.Min.X, e.Zone.Min.Y,
			e.Zone.Max.X, e.Zone.Max.Y} {
			if math.IsNaN(v) {
				return true
			}
		}
	}
	return false
}

// The alertd daemon core: one node's router stack over a real UDP socket.
//
// Concurrency model: a single processing loop goroutine owns ALL protocol
// and emulation state (neighbor table, ARQ windows, flows, telemetry tap),
// mirroring the simulator's single-threaded event engine, so the routing
// code needs no locks and stays deterministic given a message order. Around
// it sit the socket pumps:
//
//	readPump:  socket -> rxq   (bounded; overflow drops + counts)
//	loop:      rxq/cmdq -> route/forward/deliver -> txq
//	writePump: txq -> socket   (bounded; overflow drops + counts)
//
// Control-plane mutations (topology pushes, flow starts, report scrapes)
// enter as closures on cmdq and run on the loop goroutine. Timers
// (ARQ retransmissions, flow pacing) fire as closures posted back to cmdq.
// Datagram buffers are pooled across the pump boundary so the receive path
// stays allocation-lean at steady state (the PR 6 discipline, adapted to a
// concurrent process).
//
// The radio medium is emulated at the endpoints (DESIGN.md, "Live mode"):
// every frame carries the sender's position and a virtual-time accumulator.
// A receiver drops frames whose sender is out of emulated range and draws
// the medium's loss coin; a sender runs the medium's stop-and-wait ARQ with
// its exact retry/backoff schedule, accumulating the emulated delay model
// (size*8/Bitrate + Exp(MACDelayMean) per transmission, plus backoffs) into
// VTime. Measured latency is therefore timescale-free: wall-clock speed
// changes how fast the experiment runs, not what it measures.

package live

import (
	"fmt"
	"net"
	"sync"
	"time"

	"alertmanet/internal/crypt"
	"alertmanet/internal/geo"
	"alertmanet/internal/medium"
	"alertmanet/internal/rng"
	"alertmanet/internal/telemetry"
)

// Config configures one daemon. The zero value is not runnable; start from
// DefaultDaemonConfig.
type Config struct {
	// ID is the node's fleet-wide id (also its key-pair owner id).
	ID int
	// Protocol selects the router stack: "alert", "gpsr", "ao2p",
	// "alarm" or "zap". ALERT runs the full zone-bisection pipeline; the
	// comparators route direct geographic flows (see DESIGN.md for what
	// live-mode parity covers per protocol).
	Protocol string
	// Field is the simulation field the fleet plays on.
	Field geo.Rect
	// Seed is the fleet-wide seed: every daemon derives its own streams
	// and the shared key suite from it, so a fleet is reproducible.
	Seed int64
	// Hmax is ALERT's partition depth H.
	Hmax int
	// FixedAxisPartition mirrors core.Config.
	FixedAxisPartition bool
	// PacketSize is the emulated on-air size of data packets.
	PacketSize int
	// HopBudget is the TTL for direct (gpsr-family) flows; LegHopBudget
	// the TTL per ALERT leg.
	HopBudget    int
	LegHopBudget int
	// ChargeSessionSetup mirrors core.Config (the evaluation harness
	// runs with it off).
	ChargeSessionSetup bool
	// Medium is the emulated radio model (range, delays, loss, ARQ).
	Medium medium.Params
	// Timescale maps emulated seconds to real seconds for pacing (flow
	// intervals); 0 paces nothing and lets the fleet run flat out.
	// Latency measurements never depend on it (VTime carries the model).
	Timescale float64
	// AckTimeout is the real-time wait for a link-layer ack before a
	// retransmission. It is a transport liveness bound, not part of the
	// emulated model, so it is real time, not emulated time.
	AckTimeout time.Duration
	// QueueDepth bounds the rx/tx/cmd queues.
	QueueDepth int
}

// DefaultDaemonConfig returns a runnable config for node id matching the
// simulator's paper defaults.
func DefaultDaemonConfig(id int, field geo.Rect, seed int64) Config {
	return Config{
		ID:           id,
		Protocol:     "gpsr",
		Field:        field,
		Seed:         seed,
		Hmax:         5,
		PacketSize:   512,
		HopBudget:    10,
		LegHopBudget: 10,
		Medium:       medium.DefaultParams(),
		Timescale:    0,
		AckTimeout:   25 * time.Millisecond,
		QueueDepth:   512,
	}
}

// Counters tallies one daemon's activity; scraped over the control channel.
type Counters struct {
	RxDatagrams  uint64
	TxDatagrams  uint64
	RxDropsFull  uint64
	TxDropsFull  uint64
	DecodeErrors uint64

	DroppedRange uint64
	DroppedLoss  uint64
	Dups         uint64
	AcksTx       uint64
	AcksRx       uint64
	AcksLost     uint64
	Retries      uint64
	SendsLost    uint64

	Forwarded        uint64
	LegArrived       uint64
	LegDropTTL       uint64
	LegDropDeadEnd   uint64
	LegDropLink      uint64
	PerimeterEntries uint64
	ZoneBroadcasts   uint64
	ZoneRelays       uint64

	Sent      uint64
	Delivered uint64
}

// Neighbor is one steered neighbor-table entry: the coordinator tells each
// daemon who is in emulated radio range and where (the hello-beacon
// equivalent), plus the real transport address.
type Neighbor struct {
	ID   int32
	Pos  geo.Point
	Addr *net.UDPAddr
}

// SendRecord is one source-side send, the denominator of delivery rate.
type SendRecord struct {
	Flow uint32  `json:"flow"`
	Seq  uint32  `json:"seq"`
	Dst  int     `json:"dst"`
	T    float64 `json:"t"` // emulated send time (flow schedule position)
}

// Delivery is one destination-side delivery: VTime is the packet's
// end-to-end emulated latency, Path the node sequence that held it.
type Delivery struct {
	Flow  uint32  `json:"flow"`
	Seq   uint32  `json:"seq"`
	Src   int     `json:"src"`
	Dst   int     `json:"dst"`
	VTime float64 `json:"vtime"`
	Hops  int     `json:"hops"`
	Path  []int   `json:"path"`
}

// pending is one in-flight ARQ send awaiting its ack.
type pending struct {
	frame    Frame // owned copy (Path/Env storage private to this struct)
	addr     *net.UDPAddr
	attempts int
	timer    *time.Timer
}

// flowState is one source-side flow (live's session equivalent).
type flowState struct {
	spec    FlowSpec
	sent    int
	key     crypt.SymKey
	encKey  []byte
	encLZS  []byte
	timer   *time.Timer
	stopped bool
}

// destState is destination-side per-source-flow session state.
type destState struct {
	established bool
	key         crypt.SymKey
}

// outBuf is one encoded datagram headed for the socket.
type outBuf struct {
	addr *net.UDPAddr
	buf  []byte
}

// Daemon is one live node. Construct with NewDaemon, start with Start,
// stop with Close. All exported control methods (Topology, StartFlow,
// Report, ...) are safe from any goroutine: they post onto the loop.
type Daemon struct {
	cfg   Config
	conn  *net.UDPConn
	suite *crypt.FastSuite
	pub   crypt.PubKey
	priv  crypt.PrivKey
	pseud crypt.Pseudonym
	costs crypt.CostModel
	rnd   *rng.Source

	rxq   chan []byte
	txq   chan outBuf
	cmdq  chan func()
	stopc chan struct{}
	done  sync.WaitGroup
	pool  sync.Pool // datagram buffers

	// Loop-owned state (no locks; only the loop goroutine touches it).
	now      float64 // emulated fleet time, steered by topology pushes
	self     geo.Point
	nbrs     []Neighbor
	nbrIdx   map[int32]int
	sendSeq  uint64
	pend     map[uint64]*pending
	seen     *dedup
	relayed  *dedup
	deliverd *dedup
	flows    map[uint32]*flowState
	dsess    map[uint32]*destState
	sends    []SendRecord
	delivs   []Delivery
	counts   Counters
	scratch  []medium.Neighbor // planarization buffer for gpsr.Step
	nbrBuf   []medium.Neighbor // neighbor-table view for gpsr.Step
	rxFrame  Frame             // pooled decode target
	encBuf   []byte            // pooled encode buffer

	tap     *telemetry.Tap
	closeMu sync.Mutex
	closed  bool
}

// NewDaemon binds a UDP socket on addr ("127.0.0.1:0" for tests) and
// builds the daemon. Start must be called before traffic flows.
func NewDaemon(cfg Config, addr string) (*Daemon, error) {
	if cfg.QueueDepth <= 0 {
		cfg.QueueDepth = 512
	}
	if cfg.AckTimeout <= 0 {
		cfg.AckTimeout = 25 * time.Millisecond
	}
	ua, err := net.ResolveUDPAddr("udp", addr)
	if err != nil {
		return nil, fmt.Errorf("live: resolve %q: %w", addr, err)
	}
	conn, err := net.ListenUDP("udp", ua)
	if err != nil {
		return nil, fmt.Errorf("live: listen %q: %w", addr, err)
	}
	// Every daemon derives the same suite from the fleet seed, so owner
	// ids resolve to the same key pairs fleet-wide — the predistributed
	// key material the paper's location service assumes.
	suite := crypt.NewFastSuite(rng.New(cfg.Seed))
	pub, priv := suite.GenerateKeyPair(cfg.ID)
	nodeRnd := rng.New(cfg.Seed).Split("live").SplitIndex("node", cfg.ID)
	d := &Daemon{
		cfg:      cfg,
		conn:     conn,
		suite:    suite,
		pub:      pub,
		priv:     priv,
		pseud:    crypt.NewPseudonym(uint64(cfg.ID), 0, nodeRnd),
		costs:    crypt.DefaultCostModel(),
		rnd:      nodeRnd,
		rxq:      make(chan []byte, cfg.QueueDepth),
		txq:      make(chan outBuf, cfg.QueueDepth),
		cmdq:     make(chan func(), cfg.QueueDepth),
		stopc:    make(chan struct{}),
		nbrIdx:   make(map[int32]int),
		pend:     make(map[uint64]*pending),
		seen:     newDedup(8192),
		relayed:  newDedup(8192),
		deliverd: newDedup(8192),
		flows:    make(map[uint32]*flowState),
		dsess:    make(map[uint32]*destState),
	}
	d.pool.New = func() any { b := make([]byte, MaxFrame); return &b }
	return d, nil
}

// SetTap attaches a telemetry tap. Call before Start; the tap is owned by
// the loop goroutine afterwards. A nil tap (the default) disables
// telemetry entirely.
func (d *Daemon) SetTap(t *telemetry.Tap) { d.tap = t }

// ID returns the daemon's node id.
func (d *Daemon) ID() int { return d.cfg.ID }

// Pseudonym returns the daemon's stable pseudonym (what the coordinator's
// location service hands to sources).
func (d *Daemon) Pseudonym() crypt.Pseudonym { return d.pseud }

// UDPAddr returns the bound data-plane address.
func (d *Daemon) UDPAddr() *net.UDPAddr { return d.conn.LocalAddr().(*net.UDPAddr) }

// Start launches the pumps and the processing loop.
func (d *Daemon) Start() {
	d.done.Add(3)
	go d.readPump()
	go d.writePump()
	go d.loop()
}

// Close stops the daemon and waits for its goroutines. Idempotent.
func (d *Daemon) Close() error {
	d.closeMu.Lock()
	if d.closed {
		d.closeMu.Unlock()
		return nil
	}
	d.closed = true
	close(d.stopc)
	d.closeMu.Unlock()
	err := d.conn.Close() // unblocks readPump
	d.done.Wait()
	if d.tap != nil {
		// The loop has exited; flushing here is teardown, not an emit.
		_ = d.tap.Flush()
	}
	return err
}

// post runs fn on the loop goroutine; it returns false if the daemon is
// shutting down.
func (d *Daemon) post(fn func()) bool {
	select {
	case d.cmdq <- fn:
		return true
	case <-d.stopc:
		return false
	}
}

// call posts fn and waits for it to finish — the synchronous control-plane
// entry point.
func (d *Daemon) call(fn func()) error {
	ch := make(chan struct{})
	if !d.post(func() { fn(); close(ch) }) {
		return fmt.Errorf("live: daemon %d is shut down", d.cfg.ID)
	}
	select {
	case <-ch:
		return nil
	case <-d.stopc:
		return fmt.Errorf("live: daemon %d shut down mid-call", d.cfg.ID)
	}
}

// real converts an emulated delay to a wall-clock pacing duration.
func (d *Daemon) real(sec float64) time.Duration {
	if d.cfg.Timescale <= 0 || sec <= 0 {
		return 0
	}
	return time.Duration(sec * d.cfg.Timescale * float64(time.Second))
}

// after arms a timer that posts fn onto the loop when it fires.
func (d *Daemon) after(dur time.Duration, fn func()) *time.Timer {
	return time.AfterFunc(dur, func() { d.post(fn) })
}

func (d *Daemon) readPump() {
	defer d.done.Done()
	for {
		bp := d.pool.Get().(*[]byte)
		buf := (*bp)[:MaxFrame]
		n, _, err := d.conn.ReadFromUDP(buf)
		if err != nil {
			d.pool.Put(bp)
			select {
			case <-d.stopc:
				return
			default:
				// Transient socket error; keep serving.
				continue
			}
		}
		select {
		case d.rxq <- buf[:n]:
		default:
			// Bounded queue full: drop on the floor, like a NIC ring.
			// The sender's ARQ recovers or charges the loss.
			d.pool.Put(bp)
			d.post(func() { d.counts.RxDropsFull++ })
		}
	}
}

func (d *Daemon) writePump() {
	defer d.done.Done()
	for {
		select {
		case ob := <-d.txq:
			_, err := d.conn.WriteToUDP(ob.buf, ob.addr)
			full := ob.buf[:MaxFrame]
			d.pool.Put(&full)
			if err == nil {
				d.post(func() { d.counts.TxDatagrams++ })
			}
		case <-d.stopc:
			return
		}
	}
}

// enqueue hands an encoded datagram to the write pump; overflow drops.
func (d *Daemon) enqueue(addr *net.UDPAddr, frame []byte) {
	bp := d.pool.Get().(*[]byte)
	buf := append((*bp)[:0], frame...)
	select {
	case d.txq <- outBuf{addr: addr, buf: buf}:
	default:
		d.pool.Put(bp)
		d.counts.TxDropsFull++
	}
}

func (d *Daemon) loop() {
	defer d.done.Done()
	for {
		select {
		case buf := <-d.rxq:
			d.handleDatagram(buf)
			full := buf[:MaxFrame]
			d.pool.Put(&full)
		case fn := <-d.cmdq:
			fn()
		case <-d.stopc:
			d.drainTimers()
			return
		}
	}
}

// drainTimers stops outstanding wall-clock timers at shutdown.
func (d *Daemon) drainTimers() {
	for _, p := range d.pend {
		p.timer.Stop()
	}
	for _, fl := range d.flows {
		if fl.timer != nil {
			fl.timer.Stop()
		}
	}
}

// handleDatagram is the receive path: decode, emulated physics, ARQ, then
// the router (router.go).
func (d *Daemon) handleDatagram(buf []byte) {
	d.counts.RxDatagrams++
	f := &d.rxFrame
	if err := DecodeFrame(buf, f); err != nil {
		d.counts.DecodeErrors++
		return
	}
	if f.Kind == KindAck {
		d.handleAck(f)
		return
	}
	// Emulated physics: the frame carries the sender's position; a
	// receiver beyond the emulated radio range never saw it. Silence —
	// not a NAK — so the sender's ARQ retries and eventually charges the
	// loss, exactly like the simulator's arqSend.
	if d.self.Dist(f.SrcPos) > d.cfg.Medium.Range {
		d.counts.DroppedRange++
		return
	}
	if d.rnd.Bernoulli(d.cfg.Medium.LossRate) {
		d.counts.DroppedLoss++
		if d.tap != nil {
			d.tap.FrameLost(f.VTime, int(f.From), d.cfg.ID, d.trace(f), "loss")
		}
		return
	}
	if f.Flags&FlagNoAck == 0 {
		// Stop-and-wait ARQ: ack first, then duplicate absorption (a
		// retransmission whose predecessor we already processed still
		// deserves an ack — its ack may have been the casualty).
		d.sendAck(f)
		if d.seen.contains(f.SendID) {
			d.counts.Dups++
			if d.tap != nil {
				d.tap.FrameDup(f.VTime, int(f.From), d.cfg.ID, d.trace(f))
			}
			return
		}
		d.seen.add(f.SendID)
	}
	if d.tap != nil {
		d.tap.FrameRx(f.VTime, int(f.From), d.cfg.ID, d.trace(f), int(f.Size))
	}
	d.handleFrame(f)
}

// trace is the telemetry trace id for a frame: flow-scoped so tlmgrep can
// follow one packet across daemon logs.
func (d *Daemon) trace(f *Frame) int { return int(f.Flow)<<20 | int(f.Seq) }

func (d *Daemon) sendAck(f *Frame) {
	nb, ok := d.neighbor(f.From)
	if !ok {
		// Sender not in our steered table (asymmetric staleness): ack
		// to the datagram's source address is impossible without the
		// table — drop; the sender retries.
		return
	}
	ack := Frame{Kind: KindAck, SendID: f.SendID, From: int32(d.cfg.ID), To: f.From}
	b, err := AppendFrame(d.encBuf[:0], &ack)
	if err != nil {
		return
	}
	d.encBuf = b
	d.counts.AcksTx++
	if d.tap != nil {
		d.tap.AckTx(f.VTime, d.cfg.ID, int(f.From), d.trace(f))
	}
	d.enqueue(nb.Addr, b)
}

func (d *Daemon) handleAck(f *Frame) {
	p, ok := d.pend[f.SendID]
	if !ok {
		return // late ack after give-up, or duplicate ack
	}
	// The ack frame itself crosses the emulated channel: it can be lost
	// too, in which case the sender retransmits and the receiver's
	// duplicate absorption re-acks.
	if d.rnd.Bernoulli(d.cfg.Medium.LossRate) {
		d.counts.AcksLost++
		if d.tap != nil {
			d.tap.AckLost(p.frame.VTime, int(f.From), d.cfg.ID, d.trace(&p.frame))
		}
		return
	}
	d.counts.AcksRx++
	p.timer.Stop()
	delete(d.pend, f.SendID)
}

// retry is the ARQ timeout path: retransmit with the emulated backoff and
// a fresh transmission delay, or give up and charge the loss.
func (d *Daemon) retry(sendID uint64) {
	p, ok := d.pend[sendID]
	if !ok {
		return
	}
	if p.attempts > d.cfg.Medium.Retries {
		delete(d.pend, sendID)
		d.counts.SendsLost++
		d.counts.LegDropLink++
		if d.tap != nil {
			d.tap.FrameLost(p.frame.VTime, d.cfg.ID, int(p.frame.To),
				d.trace(&p.frame), "retries-exhausted")
		}
		return
	}
	// Mirror medium.retryOrFail: attempt k waits RetryBackoff * 2^(k-1),
	// then retransmits with a freshly drawn transmission delay.
	backoff := d.cfg.Medium.RetryBackoff
	for i := 1; i < p.attempts; i++ {
		backoff *= 2
	}
	p.frame.VTime += backoff + d.txDelay(int(p.frame.Size))
	p.attempts++
	d.counts.Retries++
	b, err := AppendFrame(d.encBuf[:0], &p.frame)
	if err != nil {
		delete(d.pend, sendID)
		return
	}
	d.encBuf = b
	if d.tap != nil {
		d.tap.FrameTx(p.frame.VTime, d.cfg.ID, int(p.frame.To),
			d.trace(&p.frame), int(p.frame.Size), p.attempts)
	}
	d.enqueue(p.addr, b)
	p.timer = d.after(d.cfg.AckTimeout, func() { d.retry(sendID) })
}

// txDelay draws one emulated transmission delay, the medium's model.
func (d *Daemon) txDelay(size int) float64 {
	delay := float64(size*8) / d.cfg.Medium.Bitrate
	if d.cfg.Medium.MACDelayMean > 0 {
		delay += d.rnd.Exponential(d.cfg.Medium.MACDelayMean)
	}
	return delay
}

// transmit puts a data frame on the emulated air toward a neighbor: stamps
// link identity, position and the emulated transmission delay, encodes,
// enqueues, and (unless noAck) arms the ARQ.
func (d *Daemon) transmit(nb Neighbor, f *Frame, noAck bool) {
	d.sendSeq++
	f.Kind = KindData
	f.SendID = uint64(d.cfg.ID)<<32 | d.sendSeq
	f.From = int32(d.cfg.ID)
	f.SrcPos = d.self
	if noAck {
		f.Flags |= FlagNoAck
		f.To = None
	} else {
		f.Flags &^= FlagNoAck
		f.To = nb.ID
	}
	f.VTime += d.txDelay(int(f.Size))
	b, err := AppendFrame(d.encBuf[:0], f)
	if err != nil {
		return
	}
	d.encBuf = b
	if d.tap != nil {
		d.tap.FrameTx(f.VTime, d.cfg.ID, int(nb.ID), d.trace(f), int(f.Size), 1)
	}
	d.enqueue(nb.Addr, b)
	if noAck || d.cfg.Medium.Retries <= 0 {
		return
	}
	id := f.SendID
	p := &pending{frame: cloneFrame(f), addr: nb.Addr, attempts: 1}
	p.timer = d.after(d.cfg.AckTimeout, func() { d.retry(id) })
	d.pend[id] = p
}

// cloneFrame deep-copies a frame so the ARQ window owns its storage (the
// loop's scratch frame is reused per datagram).
func cloneFrame(f *Frame) Frame {
	c := *f
	c.Path = append([]int32(nil), f.Path...)
	if f.Env != nil {
		e := *f.Env
		e.EncLZS = append([]byte(nil), f.Env.EncLZS...)
		e.EncSymKey = append([]byte(nil), f.Env.EncSymKey...)
		e.EncTTL = append([]byte(nil), f.Env.EncTTL...)
		e.EncBitmap = append([]byte(nil), f.Env.EncBitmap...)
		e.Payload = append([]byte(nil), f.Env.Payload...)
		c.Env = &e
	}
	return c
}

func (d *Daemon) neighbor(id int32) (Neighbor, bool) {
	i, ok := d.nbrIdx[id]
	if !ok {
		return Neighbor{}, false
	}
	return d.nbrs[i], true
}

// dedup is a fixed-capacity set with FIFO eviction: large enough that
// in-window duplicates always hit, bounded so a long run cannot grow
// memory without limit.
type dedup struct {
	set  map[uint64]struct{}
	ring []uint64
	next int
}

func newDedup(capacity int) *dedup {
	return &dedup{set: make(map[uint64]struct{}, capacity), ring: make([]uint64, capacity)}
}

func (s *dedup) contains(k uint64) bool { _, ok := s.set[k]; return ok }

func (s *dedup) add(k uint64) {
	if _, ok := s.set[k]; ok {
		return
	}
	old := s.ring[s.next]
	if _, ok := s.set[old]; ok && old != 0 {
		delete(s.set, old)
	}
	s.ring[s.next] = k
	s.next = (s.next + 1) % len(s.ring)
	s.set[k] = struct{}{}
}

// pairKey packs (flow, seq) for flow-scoped dedup sets.
func pairKey(flow, seq uint32) uint64 { return uint64(flow)<<32 | uint64(seq) }

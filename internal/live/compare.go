// Sim-vs-live comparison with explicit tolerance bands. The live fleet
// replays the simulator's exact flow schedule on its exact trajectories, so
// the sent count must match exactly; delivery rate, latency and hop counts
// are stochastic in transport order (UDP interleaving perturbs ARQ and
// perimeter entry points) and get banded checks instead. A Comparison is
// the machine-readable verdict alertload's -check gate and the acceptance
// test both consume.

package live

import (
	"fmt"
	"math"
	"strings"

	"alertmanet/internal/experiment"
)

// Band is the acceptance envelope for a sim-vs-live pair of runs.
type Band struct {
	// DeliveryAbs bounds |sim − live| delivery rate (absolute).
	DeliveryAbs float64
	// LatencyRel bounds the relative mean-latency deviation.
	LatencyRel float64
	// HopsRel bounds the relative hops-per-packet deviation.
	HopsRel float64
}

// DefaultBand holds the tolerances the acceptance test pins. The live
// transport reorders contention and ARQ timing relative to the event
// queue, so latency gets the widest band; delivery on a connected field
// should track closely.
func DefaultBand() Band {
	return Band{DeliveryAbs: 0.10, LatencyRel: 0.30, HopsRel: 0.30}
}

// Check is one banded (or exact) metric comparison.
type Check struct {
	Name string  `json:"name"`
	Sim  float64 `json:"sim"`
	Live float64 `json:"live"`
	// Tol is the allowed deviation; Rel says whether it is relative to the
	// sim value or absolute.
	Tol float64 `json:"tol"`
	Rel bool    `json:"rel"`
	OK  bool    `json:"ok"`
}

func (c Check) deviation() float64 {
	d := math.Abs(c.Sim - c.Live)
	if c.Rel {
		if c.Sim == 0 {
			if c.Live == 0 {
				return 0
			}
			return math.Inf(1)
		}
		return d / math.Abs(c.Sim)
	}
	return d
}

// Comparison is the full verdict; OK is the conjunction of every check.
type Comparison struct {
	Checks []Check `json:"checks"`
	OK     bool    `json:"ok"`
}

// Compare verifies a live Summary against the sim Result for the same
// scenario under the given band.
func Compare(sim experiment.Result, lv Summary, b Band) Comparison {
	checks := []Check{
		// The flow schedule is derived from the same rng stream on both
		// sides; a sent-count mismatch means the replay itself is broken,
		// not that transport noise intervened.
		{Name: "sent", Sim: float64(sim.Sent), Live: float64(lv.Sent), Tol: 0},
		{Name: "delivery-rate", Sim: sim.DeliveryRate, Live: lv.DeliveryRate, Tol: b.DeliveryAbs},
		{Name: "mean-latency", Sim: sim.MeanLatency, Live: lv.MeanLatency, Tol: b.LatencyRel, Rel: true},
		{Name: "hops-per-packet", Sim: sim.HopsPerPacket, Live: lv.HopsPerPkt, Tol: b.HopsRel, Rel: true},
	}
	cmp := Comparison{OK: true}
	for _, c := range checks {
		c.OK = c.deviation() <= c.Tol
		cmp.OK = cmp.OK && c.OK
		cmp.Checks = append(cmp.Checks, c)
	}
	return cmp
}

// String renders the comparison as a fixed-width table for logs.
func (cmp Comparison) String() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "%-16s %12s %12s %10s %6s\n", "metric", "sim", "live", "tol", "ok")
	for _, c := range cmp.Checks {
		tol := fmt.Sprintf("%.3g", c.Tol)
		if c.Rel {
			tol = fmt.Sprintf("%.0f%%", c.Tol*100)
		}
		fmt.Fprintf(&sb, "%-16s %12.4f %12.4f %10s %6v\n", c.Name, c.Sim, c.Live, tol, c.OK)
	}
	fmt.Fprintf(&sb, "overall: %v\n", cmp.OK)
	return sb.String()
}

// The daemon's protocol logic: everything that runs once a data frame (or
// a locally launched packet) is in the loop goroutine's hands. The routing
// decisions are the simulator's own — every leg hop calls gpsr.Step, and
// the ALERT partition step replays core.(*Protocol).route on the envelope
// the frame carries — so sim and live diverge only where the transport
// does (real sockets, wall-clock ARQ timeouts).

package live

import (
	"encoding/binary"
	"math"

	"alertmanet/internal/core"
	"alertmanet/internal/crypt"
	"alertmanet/internal/geo"
	"alertmanet/internal/gpsr"
	"alertmanet/internal/medium"
)

// DestEntry is a location-service entry as the coordinator hands it to a
// source daemon: position (hello-interval stale, like the sim's service),
// pseudonym, and the key-owner id standing in for K_pub^D.
type DestEntry struct {
	ID        int
	Pos       geo.Point
	Pseudonym crypt.Pseudonym
}

// FlowSpec is one CBR flow a source daemon runs.
type FlowSpec struct {
	Flow     uint32
	Dest     DestEntry
	Packets  int
	Interval float64 // emulated seconds between sends
	Offset   float64 // emulated delay before the first send
	Size     int     // on-air data size; 0 means Config.PacketSize
	Payload  []byte  // plaintext payload (sealed per packet for ALERT)
}

// Topology is one coordinator push: the emulated fleet time, this node's
// position, who is in emulated radio range (and where), and refreshed
// location-service entries for the flows this node sources.
type Topology struct {
	T     float64
	Self  geo.Point
	Nbrs  []Neighbor
	Dests []DestUpdate
}

// DestUpdate refreshes a sourced flow's location-service entry.
type DestUpdate struct {
	Flow uint32
	Pos  geo.Point
}

// Report is one daemon's measurement scrape.
type Report struct {
	ID         int          `json:"id"`
	Counters   Counters     `json:"counters"`
	Sends      []SendRecord `json:"sends"`
	Deliveries []Delivery   `json:"deliveries"`
}

// ApplyTopology installs a coordinator push. Safe from any goroutine.
func (d *Daemon) ApplyTopology(t Topology) error {
	return d.call(func() {
		d.now = t.T
		d.self = t.Self
		d.nbrs = append(d.nbrs[:0], t.Nbrs...)
		for k := range d.nbrIdx {
			delete(d.nbrIdx, k)
		}
		for i, nb := range d.nbrs {
			d.nbrIdx[nb.ID] = i
		}
		for _, du := range t.Dests {
			if fl, ok := d.flows[du.Flow]; ok {
				fl.spec.Dest.Pos = du.Pos
			}
		}
	})
}

// StartFlow begins sourcing a flow. Safe from any goroutine.
func (d *Daemon) StartFlow(spec FlowSpec) error {
	return d.call(func() {
		if spec.Size <= 0 {
			spec.Size = d.cfg.PacketSize
		}
		if _, ok := d.flows[spec.Flow]; ok {
			return
		}
		fl := &flowState{spec: spec}
		if d.cfg.Protocol == "alert" {
			// Establish the session once, like core.Send's first
			// packet: draw K_s, encrypt it and the source zone under
			// the destination's key.
			destPub, _ := d.suite.GenerateKeyPair(spec.Dest.ID)
			fl.key = crypt.NewSymKey(d.rnd)
			encKey, err := d.suite.EncryptPub(destPub, fl.key[:])
			if err != nil {
				return
			}
			fl.encKey = encKey
			zs := geo.DestZone(d.cfg.Field, d.self, d.cfg.Hmax, geo.Vertical)
			encLZS, err := d.suite.EncryptPub(destPub, encodeRect(zs))
			if err != nil {
				return
			}
			fl.encLZS = encLZS
		}
		d.flows[spec.Flow] = fl
		fl.timer = d.after(d.real(spec.Offset), func() { d.flowTick(spec.Flow) })
	})
}

// Collect scrapes the daemon's measurements. Safe from any goroutine.
func (d *Daemon) Collect() (Report, error) {
	var r Report
	err := d.call(func() {
		r.ID = d.cfg.ID
		r.Counters = d.counts
		r.Sends = append([]SendRecord(nil), d.sends...)
		r.Deliveries = make([]Delivery, len(d.delivs))
		for i, dv := range d.delivs {
			dv.Path = append([]int(nil), dv.Path...)
			r.Deliveries[i] = dv
		}
	})
	return r, err
}

// flowTick sends the flow's next packet and re-arms the pacing timer.
// Runs on the loop.
func (d *Daemon) flowTick(flow uint32) {
	fl, ok := d.flows[flow]
	if !ok || fl.stopped || fl.sent >= fl.spec.Packets {
		return
	}
	seq := uint32(fl.sent)
	fl.sent++
	if fl.sent < fl.spec.Packets {
		fl.timer = d.after(d.real(fl.spec.Interval), func() { d.flowTick(flow) })
	}
	d.launch(fl, seq)
}

// launch builds and routes one packet from this node — core.Send plus the
// first route() call, collapsed onto the live frame.
func (d *Daemon) launch(fl *flowState, seq uint32) {
	spec := &fl.spec
	sendT := spec.Offset + float64(seq)*spec.Interval
	d.counts.Sent++
	d.sends = append(d.sends, SendRecord{Flow: spec.Flow, Seq: seq, Dst: spec.Dest.ID, T: sendT})
	f := &d.rxFrame
	*f = Frame{
		Kind: KindData, Flow: spec.Flow, Seq: seq,
		Size:      uint32(spec.Size),
		DeliverTo: None, Prev: None, FirstFrom: None, FirstTo: None,
		Path: f.Path[:0],
	}
	trace := d.trace(f)
	if d.tap != nil {
		d.tap.PacketSent(sendT, trace, d.cfg.ID, spec.Dest.ID)
		d.tap.RouteSend(sendT, trace, d.cfg.ID)
	}
	// The origin holds the packet from the start (Router.Send's Path
	// seeding).
	f.Path = append(f.Path, int32(d.cfg.ID))
	if d.cfg.Protocol != "alert" {
		f.Dest = spec.Dest.Pos
		f.DeliverTo = int32(spec.Dest.ID)
		f.HopBudget = uint16(d.cfg.HopBudget)
		d.stepLoop(f)
		return
	}
	// Source-side crypto charge: one symmetric seal per packet plus the
	// session's two public-key operations on its first packet
	// (core.Send's launch delay). VTime pays it; real time does not wait.
	f.VTime += d.costs.SymEncrypt
	if seq == 0 && d.cfg.ChargeSessionSetup {
		f.VTime += 2 * d.costs.PubEncrypt
	}
	dir := geo.Vertical
	if d.rnd.Bernoulli(0.5) {
		dir = geo.Horizontal
	}
	f.Flags |= FlagEnvelope
	f.Env = &Envelope{
		Kind: core.KindData,
		PS:   d.pseud, PD: spec.Dest.Pseudonym,
		LZD:       geo.DestZone(d.cfg.Field, spec.Dest.Pos, d.cfg.Hmax, geo.Vertical),
		Dir:       dir,
		Hdiv:      0,
		Hmax:      d.cfg.Hmax,
		Zone:      d.cfg.Field,
		DPubOwner: int32(spec.Dest.ID),
		Seq:       int(seq),
		EncLZS:    fl.encLZS,
		EncSymKey: fl.encKey,
		Payload:   crypt.SymSeal(fl.key, spec.Payload, d.rnd),
	}
	// core.route(src, env): zone-deliver if already home, else pick the
	// first leg and ride it.
	if !d.routeEntry(f) {
		return
	}
	d.stepLoop(f)
}

// routeEntry replays core.route's entry decision at this holder: inside
// Z_D (or riding the final leg) the packet zone-delivers here — report
// false, routing is over. Otherwise run the partition step and aim the
// next leg; report true so the caller steps it.
func (d *Daemon) routeEntry(f *Frame) bool {
	env := f.Env
	if env.LZD.Contains(d.self) || f.Flags&FlagFinalLeg != 0 {
		d.zoneDeliver(f)
		return false
	}
	zone := env.Zone
	if !zone.Contains(d.self) {
		// GPSR overshoot: the closest node to the TD sat outside the
		// aimed zone. Re-derive the partition from the whole field.
		zone = d.cfg.Field
	}
	res := geo.SeparateWithPolicy(zone, d.self, env.LZD, env.Dir,
		env.Hmax-env.Hdiv, !d.cfg.FixedAxisPartition)
	if !res.Separated {
		// Divisions spent but still outside Z_D: one final leg to a
		// random point inside it.
		f.Flags |= FlagFinalLeg
		f.Dest = geo.RandomPoint(env.LZD, d.rnd)
	} else {
		env.Zone = res.OtherZone
		env.Hdiv += res.Cuts
		env.Dir = res.NextDir
		f.Dest = geo.RandomPoint(res.OtherZone, d.rnd)
	}
	f.DeliverTo = None
	f.HopBudget = uint16(d.cfg.LegHopBudget)
	f.SetForwardState(gpsr.NewForwardState())
	return true
}

// handleFrame routes a received data frame (physics and ARQ already done).
func (d *Daemon) handleFrame(f *Frame) {
	if f.ZoneStep > 0 {
		d.handleZone(f)
		return
	}
	// Router.Receive: the hop count and Path grow on confirmed reception.
	if n := len(f.Path); n == 0 || f.Path[n-1] != int32(d.cfg.ID) {
		f.Path = append(f.Path, int32(d.cfg.ID))
		f.Hops++
		if d.tap != nil {
			d.tap.Hop(f.VTime, d.trace(f), d.cfg.ID, int(f.Hops))
		}
	}
	d.stepLoop(f)
}

// stepLoop processes a leg packet held by this node: deliver, forward, or
// — when a leg ends here with an envelope aboard — run the ALERT partition
// and keep going. The loop bound covers the sim's recursive route() chain
// (several partition steps can resolve at one holder as zones shrink
// around it: each iteration either forwards, terminates, or spends
// partition divisions, of which there are at most Hmax plus a final leg).
func (d *Daemon) stepLoop(f *Frame) {
	for depth := 0; depth < 4*(d.cfg.Hmax+2); depth++ {
		if f.DeliverTo != None && f.DeliverTo == int32(d.cfg.ID) {
			d.deliverDirect(f)
			return
		}
		st := f.ForwardState()
		d.nbrBuf = d.nbrBuf[:0]
		for _, nb := range d.nbrs {
			d.nbrBuf = append(d.nbrBuf, medium.Neighbor{ID: medium.NodeID(nb.ID), Pos: nb.Pos})
		}
		// The previous holder's reference position is its transmit-time
		// stamp: fwd.Prev is always the node the frame arrived from.
		prevPos := f.SrcPos
		next, verdict, entered, scratch := gpsr.Step(medium.NodeID(d.cfg.ID),
			d.self, prevPos, f.Dest, f.DeliverTo == None, d.cfg.Medium.Range,
			gpsr.GabrielGraph, d.nbrBuf, d.scratch[:0], &st)
		d.scratch = scratch
		if entered {
			d.counts.PerimeterEntries++
		}
		switch verdict {
		case gpsr.StepArrived:
			// ALERT's closest-node arrival: this node is the next
			// random forwarder.
			d.counts.LegArrived++
			if d.tap != nil {
				d.tap.LegEnd(f.VTime, d.trace(f), d.cfg.ID, "arrived-closest")
			}
			if f.Env == nil {
				return
			}
			if d.tap != nil && f.Hops > 0 {
				d.tap.RFSelected(f.VTime, d.trace(f), d.cfg.ID)
			}
			if !d.routeEntry(f) {
				return
			}
			continue
		case gpsr.StepDeadEnd:
			d.counts.LegDropDeadEnd++
			if d.tap != nil {
				d.tap.LegEnd(f.VTime, d.trace(f), d.cfg.ID, "dead-end")
			}
			return
		}
		// Forward one hop: the budget is spent at send time
		// (Router.forward), while Path and Hops grew on reception.
		if f.HopBudget == 0 {
			d.counts.LegDropTTL++
			if d.tap != nil {
				d.tap.LegEnd(f.VTime, d.trace(f), d.cfg.ID, "ttl")
			}
			return
		}
		f.HopBudget--
		st.Prev = medium.NodeID(d.cfg.ID)
		f.SetForwardState(st)
		nb, ok := d.neighbor(int32(next))
		if !ok {
			// Steered table changed under us; treat as a link loss.
			d.counts.LegDropLink++
			return
		}
		d.counts.Forwarded++
		if d.tap != nil {
			mode := "greedy"
			if st.Mode == gpsr.Perimeter {
				mode = "perimeter"
			}
			d.tap.Forward(f.VTime, d.trace(f), d.cfg.ID, int(next), mode)
		}
		d.transmit(nb, f, false)
		return
	}
	// Pathological partition chain; drop rather than spin.
	d.counts.LegDropDeadEnd++
}

// zoneDeliver runs at the last random forwarder: recognize locally (the
// holder itself may be the addressee), then put one emulated broadcast on
// the air.
func (d *Daemon) zoneDeliver(f *Frame) {
	d.recognize(f)
	d.relayed.add(pairKey(f.Flow, f.Seq)) // the origin never re-relays
	d.counts.ZoneBroadcasts++
	f.Hops++
	if d.tap != nil {
		d.tap.ZoneBroadcast(f.VTime, d.trace(f), d.cfg.ID, 1)
	}
	d.broadcastZone(f)
}

// broadcastZone emits the per-neighbor copies of a step-one zone delivery:
// FlagNoAck unicast datagrams sharing a single drawn transmission delay —
// the live rendering of the simulator's Broadcast (no ARQ, one arrival
// time, per-receiver range and loss checks at the far end).
func (d *Daemon) broadcastZone(f *Frame) {
	f.ZoneStep = 1
	f.DeliverTo = None
	delay := d.txDelay(int(f.Size))
	for _, nb := range d.nbrs {
		c := *f
		c.VTime = f.VTime + delay
		d.sendSeq++
		c.SendID = uint64(d.cfg.ID)<<32 | d.sendSeq
		c.From = int32(d.cfg.ID)
		c.To = None
		c.Flags |= FlagNoAck
		c.SrcPos = d.self
		b, err := AppendFrame(d.encBuf[:0], &c)
		if err != nil {
			return
		}
		d.encBuf = b
		if d.tap != nil {
			d.tap.BroadcastTx(c.VTime, d.cfg.ID, d.trace(f), int(f.Size))
		}
		d.enqueue(nb.Addr, b)
	}
}

// handleZone runs at every node hearing a zone delivery: relay once if we
// are a zone member that newly heard it (so the packet reaches all k nodes
// of Z_D even when the broadcaster sits near the zone edge), then check
// whether we are the addressee.
func (d *Daemon) handleZone(f *Frame) {
	if f.Env == nil {
		return
	}
	if f.Env.LZD.Contains(d.self) && !d.relayed.contains(pairKey(f.Flow, f.Seq)) {
		d.relayed.add(pairKey(f.Flow, f.Seq))
		d.counts.ZoneRelays++
		if d.tap != nil {
			d.tap.ZoneBroadcast(f.VTime, d.trace(f), d.cfg.ID, 1)
		}
		d.broadcastZone(f)
	}
	d.recognize(f)
}

// recognize checks the envelope's addressee pseudonym against ours and
// delivers on match — core.recognize plus deliverData for the live data
// path: establish the destination session (really decrypt K_s with our
// private key), open the payload, charge the decryption costs to VTime.
func (d *Daemon) recognize(f *Frame) {
	env := f.Env
	if env == nil || env.Kind != core.KindData || env.PD != d.pseud {
		return
	}
	if d.deliverd.contains(pairKey(f.Flow, f.Seq)) {
		return
	}
	sess := d.dsess[f.Flow]
	if sess == nil {
		sess = &destState{}
		d.dsess[f.Flow] = sess
	}
	// Destination-side crypto charges (core.deliverData): one symmetric
	// open per packet, plus the session's two public-key decryptions on
	// its first packet when session setup is billed.
	vt := f.VTime + d.costs.SymDecrypt
	if !sess.established {
		keyRaw, err := d.suite.DecryptPub(d.priv, env.EncSymKey)
		if err != nil || len(keyRaw) != len(sess.key) {
			return // not actually for us
		}
		copy(sess.key[:], keyRaw)
		sess.established = true
		if d.cfg.ChargeSessionSetup {
			vt += 2 * d.costs.PubDecrypt
		}
	}
	if _, err := crypt.SymOpen(sess.key, env.Payload); err != nil {
		return
	}
	d.deliverd.add(pairKey(f.Flow, f.Seq))
	d.recordDelivery(f, vt)
}

// deliverDirect is the gpsr-family arrival: DeliverTo matched this node.
func (d *Daemon) deliverDirect(f *Frame) {
	if d.deliverd.contains(pairKey(f.Flow, f.Seq)) {
		return
	}
	d.deliverd.add(pairKey(f.Flow, f.Seq))
	d.recordDelivery(f, f.VTime)
}

func (d *Daemon) recordDelivery(f *Frame, vtime float64) {
	d.counts.Delivered++
	src := None
	if len(f.Path) > 0 {
		src = f.Path[0]
	}
	path := make([]int, 0, len(f.Path)+1)
	for _, id := range f.Path {
		path = append(path, int(id))
	}
	if n := len(path); n == 0 || path[n-1] != d.cfg.ID {
		path = append(path, d.cfg.ID)
	}
	d.delivs = append(d.delivs, Delivery{
		Flow: f.Flow, Seq: f.Seq, Src: int(src), Dst: d.cfg.ID,
		VTime: vtime, Hops: int(f.Hops), Path: path,
	})
	if d.tap != nil {
		d.tap.PacketDone(vtime, d.trace(f), true, int(f.Hops), vtime)
	}
}

// encodeRect mirrors core's wire encoding of a zone rectangle (it is
// unexported there): four big-endian float64s.
func encodeRect(r geo.Rect) []byte {
	var b [32]byte
	binary.BigEndian.PutUint64(b[0:], math.Float64bits(r.Min.X))
	binary.BigEndian.PutUint64(b[8:], math.Float64bits(r.Min.Y))
	binary.BigEndian.PutUint64(b[16:], math.Float64bits(r.Max.X))
	binary.BigEndian.PutUint64(b[24:], math.Float64bits(r.Max.Y))
	return b[:]
}

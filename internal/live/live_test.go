package live

import (
	"testing"
	"time"

	"alertmanet/internal/experiment"
	"alertmanet/internal/geo"
)

// smokeScenario is a small, fast, fully connected field for data-plane
// tests: static nodes, no loss, CBR.
func smokeScenario(protocol experiment.ProtocolName, n int, seed int64) experiment.Scenario {
	sc := experiment.DefaultScenario()
	sc.Protocol = protocol
	sc.Seed = seed
	sc.N = n
	sc.Field = geo.Rect{Max: geo.Point{X: 600, Y: 600}}
	sc.Mobility = experiment.Static
	sc.Duration = 10
	sc.DrainTime = 2
	sc.Pairs = 2
	sc.Interval = 2
	sc.LocUpdates = false
	return sc
}

// TestFleetSmokeGPSR drives a small static GPSR fleet over loopback UDP
// and expects real deliveries with sane accounting.
func TestFleetSmokeGPSR(t *testing.T) {
	sum, err := RunFleet(smokeScenario(experiment.GPSR, 25, 7), 0.01)
	if err != nil {
		t.Fatalf("RunFleet: %v", err)
	}
	if sum.Sent == 0 {
		t.Fatal("no packets sent")
	}
	if sum.Delivered == 0 {
		t.Fatalf("no deliveries (sent %d, counters %+v)", sum.Sent, sum.Counters)
	}
	for _, dv := range sum.Deliveries {
		if dv.VTime <= 0 {
			t.Errorf("delivery flow %d seq %d has non-positive vtime %g", dv.Flow, dv.Seq, dv.VTime)
		}
		if len(dv.Path) < 1 || dv.Path[len(dv.Path)-1] != dv.Dst {
			t.Errorf("delivery flow %d seq %d path %v does not end at dst %d", dv.Flow, dv.Seq, dv.Path, dv.Dst)
		}
	}
	t.Logf("gpsr smoke: sent %d delivered %d rate %.2f meanlat %.4fs hops %.1f",
		sum.Sent, sum.Delivered, sum.DeliveryRate, sum.MeanLatency, sum.HopsPerPkt)
}

// TestFleetSmokeALERT drives a small static ALERT fleet: envelopes on the
// wire, zone broadcasts, real session crypto end to end.
func TestFleetSmokeALERT(t *testing.T) {
	sum, err := RunFleet(smokeScenario(experiment.ALERT, 25, 7), 0.01)
	if err != nil {
		t.Fatalf("RunFleet: %v", err)
	}
	if sum.Sent == 0 {
		t.Fatal("no packets sent")
	}
	if sum.Delivered == 0 {
		t.Fatalf("no deliveries (sent %d, counters %+v)", sum.Sent, sum.Counters)
	}
	if sum.Counters.ZoneBroadcasts == 0 {
		t.Error("ALERT run produced no zone broadcasts")
	}
	t.Logf("alert smoke: sent %d delivered %d rate %.2f meanlat %.4fs zb %d relays %d",
		sum.Sent, sum.Delivered, sum.DeliveryRate, sum.MeanLatency,
		sum.Counters.ZoneBroadcasts, sum.Counters.ZoneRelays)
}

// TestDaemonCloseIdempotent pins the shutdown path: double Close, and
// Close with traffic queued, must not hang or panic.
func TestDaemonCloseIdempotent(t *testing.T) {
	field := geo.Rect{Max: geo.Point{X: 100, Y: 100}}
	d, err := NewDaemon(DefaultDaemonConfig(0, field, 1), "127.0.0.1:0")
	if err != nil {
		t.Fatalf("NewDaemon: %v", err)
	}
	d.Start()
	done := make(chan struct{})
	go func() {
		d.Close()
		d.Close()
		close(done)
	}()
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("Close hung")
	}
}

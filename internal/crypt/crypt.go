// Package crypt provides the cryptographic substrate ALERT relies on:
// dynamic pseudonyms (SHA-1 over MAC address and a randomized timestamp,
// Section 2.2), symmetric and public-key encryption for packet fields
// (Section 2.5), the bit-flip Bitmap used against intersection attacks
// (Section 3.3), and a latency cost model.
//
// Two layers are deliberately separated:
//
//   - Functional encryption. Packets really are encrypted and decrypted so
//     tests can verify confidentiality-relevant behaviour (a forwarder
//     cannot read the source zone, covering packets are indistinguishable,
//     the bitmap restores flipped bits). Symmetric operations use stdlib
//     AES-CTR. Public-key operations come in two interchangeable Suites:
//     RSASuite (real stdlib RSA-OAEP, for unit tests and examples) and
//     FastSuite (a deterministic keyed box, for large simulations where
//     generating hundreds of RSA keys per run would dominate wall time).
//
//   - Cost accounting. The *simulated* latency of each operation comes from
//     CostModel, calibrated to the paper's measurements on a 1.8 GHz core:
//     symmetric ops cost a few milliseconds, public-key ops 200-300 ms.
//     This is what makes the latency comparison (Fig. 14) independent of
//     the host CPU: ALARM/AO2P pay a public-key charge per hop while ALERT
//     pays symmetric charges plus one public-key operation per session.
package crypt

import (
	"crypto/aes"
	"crypto/cipher"
	"crypto/hmac"
	"crypto/rand"
	"crypto/rsa"
	"crypto/sha1"
	"encoding/binary"
	"errors"
	"fmt"
	"math"

	"alertmanet/internal/rng"
)

// CostModel gives the simulated execution time, in seconds, of each
// cryptographic operation.
type CostModel struct {
	SymEncrypt float64 // symmetric encryption of one packet
	SymDecrypt float64
	PubEncrypt float64 // public-key encryption of one packet/field
	PubDecrypt float64
	Hash       float64 // one hash computation (pseudonym update)
}

// DefaultCostModel returns the paper's measured costs (Section 5.2): AES in
// single-digit milliseconds, RSA in the low hundreds of milliseconds on a
// 1.8 GHz processor.
func DefaultCostModel() CostModel {
	return CostModel{
		SymEncrypt: 3e-3,
		SymDecrypt: 3e-3,
		PubEncrypt: 250e-3,
		PubDecrypt: 250e-3,
		Hash:       1e-5,
	}
}

// ZeroCostModel charges nothing; for isolating pure routing behaviour.
func ZeroCostModel() CostModel { return CostModel{} }

// Pseudonym is a node's temporary identifier: the SHA-1 hash of its MAC
// address and a (randomized) timestamp.
type Pseudonym [20]byte

// String renders a short hex prefix for logs.
func (p Pseudonym) String() string { return fmt.Sprintf("%x", p[:6]) }

// IsZero reports whether the pseudonym is unset.
func (p Pseudonym) IsZero() bool { return p == Pseudonym{} }

// NewPseudonym computes the pseudonym for a MAC address at time t. Per
// Section 2.2 the timestamp is kept at one-second precision and the
// sub-second digits are randomized so an eavesdropper who knows the MAC and
// the coarse time still cannot reproduce the hash: it would have to try on
// the order of 1e5 sub-second values per packet per node.
func NewPseudonym(mac uint64, t float64, src *rng.Source) Pseudonym {
	sec := math.Floor(t)
	// Randomize within 1/10th of the second, at nanosecond granularity.
	frac := src.Uniform(0, 0.1)
	ts := sec + frac
	var buf [16]byte
	binary.BigEndian.PutUint64(buf[:8], mac)
	binary.BigEndian.PutUint64(buf[8:], math.Float64bits(ts))
	return sha1.Sum(buf[:])
}

// SymKey is a 128-bit AES key (the session key K_s a source embeds for the
// destination, Section 2.5).
type SymKey [16]byte

// NewSymKey draws a fresh symmetric key from the given stream.
func NewSymKey(src *rng.Source) SymKey {
	var k SymKey
	for i := 0; i < len(k); i += 8 {
		binary.BigEndian.PutUint64(k[i:], src.Uint64())
	}
	return k
}

// SymSeal encrypts plaintext with AES-CTR under key, using a fresh random
// nonce drawn from src. Output layout: nonce(16) || ciphertext.
func SymSeal(key SymKey, plaintext []byte, src *rng.Source) []byte {
	block, err := aes.NewCipher(key[:])
	if err != nil {
		panic(err) //lint:allowpanic aes.NewCipher cannot fail on a fixed 16-byte key
	}
	out := make([]byte, aes.BlockSize+len(plaintext))
	iv := out[:aes.BlockSize]
	for i := 0; i < aes.BlockSize; i += 8 {
		binary.BigEndian.PutUint64(iv[i:], src.Uint64())
	}
	cipher.NewCTR(block, iv).XORKeyStream(out[aes.BlockSize:], plaintext)
	return out
}

// SymOpen decrypts a SymSeal envelope. It fails on truncated input. Note
// CTR mode provides confidentiality, not integrity — adequate here, where
// the threat model is eavesdropping and traffic analysis (Section 2.1).
func SymOpen(key SymKey, sealed []byte) ([]byte, error) {
	if len(sealed) < aes.BlockSize {
		return nil, errors.New("crypt: sealed data shorter than nonce")
	}
	block, err := aes.NewCipher(key[:])
	if err != nil {
		panic(err) //lint:allowpanic aes.NewCipher cannot fail on a fixed 16-byte key
	}
	out := make([]byte, len(sealed)-aes.BlockSize)
	cipher.NewCTR(block, sealed[:aes.BlockSize]).XORKeyStream(out, sealed[aes.BlockSize:])
	return out, nil
}

// PubKey is an opaque public key handle issued by a Suite.
type PubKey interface {
	// Owner returns the node id the key was generated for.
	Owner() int
}

// PrivKey is an opaque private key handle issued by a Suite.
type PrivKey interface {
	Owner() int
}

// Suite provides public-key encryption. Implementations must guarantee that
// DecryptPub succeeds only with the private key matching the public key
// used to encrypt.
type Suite interface {
	// GenerateKeyPair creates the key pair for a node.
	GenerateKeyPair(owner int) (PubKey, PrivKey)
	// EncryptPub encrypts plaintext to the holder of pub.
	EncryptPub(pub PubKey, plaintext []byte) ([]byte, error)
	// DecryptPub decrypts a ciphertext with priv; it returns an error if
	// the ciphertext was not produced for this key.
	DecryptPub(priv PrivKey, ciphertext []byte) ([]byte, error)
}

// ---- FastSuite -------------------------------------------------------------

// FastSuite is a deterministic stand-in for public-key encryption used in
// large simulations: each key pair shares a secret 128-bit box key derived
// from the suite seed and the owner id; EncryptPub seals with AES-CTR under
// the box key and prepends the owner id; DecryptPub refuses mismatched
// owners. It preserves exactly the property the protocols rely on — only
// the intended holder can read the field — while costing microseconds.
// Simulated latency is charged separately via CostModel.
type FastSuite struct {
	src *rng.Source
}

// NewFastSuite creates a FastSuite deriving keys from the given stream.
func NewFastSuite(src *rng.Source) *FastSuite {
	return &FastSuite{src: src.Split("fastsuite")}
}

type fastKey struct {
	owner int
	box   SymKey
}

func (k fastKey) Owner() int { return k.owner }

// GenerateKeyPair implements Suite.
func (s *FastSuite) GenerateKeyPair(owner int) (PubKey, PrivKey) {
	k := fastKey{owner: owner, box: NewSymKey(s.src.SplitIndex("key", owner))}
	return k, k
}

// EncryptPub implements Suite.
func (s *FastSuite) EncryptPub(pub PubKey, plaintext []byte) ([]byte, error) {
	k, ok := pub.(fastKey)
	if !ok {
		return nil, errors.New("crypt: foreign public key")
	}
	sealed := SymSeal(k.box, plaintext, s.src)
	out := make([]byte, 8+len(sealed))
	binary.BigEndian.PutUint64(out, uint64(k.owner))
	copy(out[8:], sealed)
	return out, nil
}

// DecryptPub implements Suite.
func (s *FastSuite) DecryptPub(priv PrivKey, ciphertext []byte) ([]byte, error) {
	k, ok := priv.(fastKey)
	if !ok {
		return nil, errors.New("crypt: foreign private key")
	}
	if len(ciphertext) < 8 {
		return nil, errors.New("crypt: short ciphertext")
	}
	owner := int(binary.BigEndian.Uint64(ciphertext))
	if owner != k.owner {
		return nil, fmt.Errorf("crypt: ciphertext for node %d, key for node %d", owner, k.owner)
	}
	return SymOpen(k.box, ciphertext[8:])
}

// ---- RSASuite --------------------------------------------------------------

// RSASuite uses real stdlib RSA-OAEP. Key generation is comparatively slow,
// so it is meant for unit tests and small examples; FastSuite carries the
// large parameter sweeps.
type RSASuite struct {
	bits int
}

// NewRSASuite creates an RSA suite with the given modulus size (>= 1024
// recommended; tests may use smaller for speed).
func NewRSASuite(bits int) *RSASuite { return &RSASuite{bits: bits} }

type rsaPub struct {
	owner int
	key   *rsa.PublicKey
}

func (k rsaPub) Owner() int { return k.owner }

type rsaPriv struct {
	owner int
	key   *rsa.PrivateKey
}

func (k rsaPriv) Owner() int { return k.owner }

// GenerateKeyPair implements Suite.
func (s *RSASuite) GenerateKeyPair(owner int) (PubKey, PrivKey) {
	key, err := rsa.GenerateKey(rand.Reader, s.bits)
	if err != nil {
		//lint:allowpanic rsa.GenerateKey fails only if the entropy source does; the Suite interface has no error path and setup-time failure should abort
		panic(fmt.Sprintf("crypt: rsa key generation failed: %v", err))
	}
	return rsaPub{owner, &key.PublicKey}, rsaPriv{owner, key}
}

// EncryptPub implements Suite. Plaintexts longer than one OAEP block are
// hybrid-encrypted: a fresh AES key is RSA-encrypted and the body sealed
// under it (layout: len(rsaBlock) uint16 || rsaBlock || aesSealed).
func (s *RSASuite) EncryptPub(pub PubKey, plaintext []byte) ([]byte, error) {
	k, ok := pub.(rsaPub)
	if !ok {
		return nil, errors.New("crypt: foreign public key")
	}
	var sym SymKey
	if _, err := rand.Read(sym[:]); err != nil {
		return nil, err
	}
	rsaBlock, err := rsa.EncryptOAEP(sha1.New(), rand.Reader, k.key, sym[:], nil)
	if err != nil {
		return nil, err
	}
	var nonce [8]byte
	if _, err := rand.Read(nonce[:]); err != nil {
		return nil, err
	}
	// Seal body under the fresh symmetric key with a random IV.
	block, err := aes.NewCipher(sym[:])
	if err != nil {
		return nil, err
	}
	sealed := make([]byte, aes.BlockSize+len(plaintext))
	if _, err := rand.Read(sealed[:aes.BlockSize]); err != nil {
		return nil, err
	}
	cipher.NewCTR(block, sealed[:aes.BlockSize]).XORKeyStream(sealed[aes.BlockSize:], plaintext)

	out := make([]byte, 2+len(rsaBlock)+len(sealed))
	binary.BigEndian.PutUint16(out, uint16(len(rsaBlock)))
	copy(out[2:], rsaBlock)
	copy(out[2+len(rsaBlock):], sealed)
	return out, nil
}

// DecryptPub implements Suite.
func (s *RSASuite) DecryptPub(priv PrivKey, ciphertext []byte) ([]byte, error) {
	k, ok := priv.(rsaPriv)
	if !ok {
		return nil, errors.New("crypt: foreign private key")
	}
	if len(ciphertext) < 2 {
		return nil, errors.New("crypt: short ciphertext")
	}
	n := int(binary.BigEndian.Uint16(ciphertext))
	if len(ciphertext) < 2+n {
		return nil, errors.New("crypt: truncated ciphertext")
	}
	symRaw, err := rsa.DecryptOAEP(sha1.New(), nil, k.key, ciphertext[2:2+n], nil)
	if err != nil {
		return nil, fmt.Errorf("crypt: rsa decrypt: %w", err)
	}
	var sym SymKey
	copy(sym[:], symRaw)
	return SymOpen(sym, ciphertext[2+n:])
}

// ---- Bitmap (intersection-attack countermeasure) ---------------------------

// Bitmap records which bits the last forwarder flipped in a packet so the
// destination can restore the original data (Section 3.3). It is simply an
// XOR mask the same length as the payload; the mask itself travels encrypted
// under the destination's public key.
type Bitmap []byte

// NewBitmap creates a mask for a payload of n bytes with approximately
// nBits random bits set.
func NewBitmap(n, nBits int, src *rng.Source) Bitmap {
	m := make(Bitmap, n)
	if n == 0 {
		return m
	}
	for i := 0; i < nBits; i++ {
		bit := src.Intn(n * 8)
		m[bit/8] ^= 1 << (bit % 8)
	}
	return m
}

// OnesCount returns how many bits the mask flips.
func (m Bitmap) OnesCount() int {
	total := 0
	for _, b := range m {
		for ; b != 0; b &= b - 1 {
			total++
		}
	}
	return total
}

// Apply XORs the mask into data (flipping the recorded bits); applying the
// same mask twice restores the original. data and mask must be equal length.
func (m Bitmap) Apply(data []byte) []byte {
	if len(data) != len(m) {
		//lint:allowpanic documented precondition: Apply requires equal lengths, violation is a caller bug caught in tests
		panic("crypt: bitmap/data length mismatch")
	}
	out := make([]byte, len(data))
	for i := range data {
		out[i] = data[i] ^ m[i]
	}
	return out
}

// ---- Message authentication (location-service requests) --------------------

// MACKey is a shared secret between a node and its location server
// ("decrypted by A using the predistributed shared key between A and its
// location server", Section 2.2).
type MACKey = SymKey

// MAC computes an HMAC-SHA1 tag over msg under key.
func MAC(key MACKey, msg []byte) [20]byte {
	mac := hmac.New(sha1.New, key[:])
	mac.Write(msg)
	var out [20]byte
	copy(out[:], mac.Sum(nil))
	return out
}

// VerifyMAC reports whether tag authenticates msg under key, in constant
// time.
func VerifyMAC(key MACKey, msg []byte, tag [20]byte) bool {
	want := MAC(key, msg)
	return hmac.Equal(want[:], tag[:])
}

package crypt

import (
	"bytes"
	"testing"
	"testing/quick"

	"alertmanet/internal/rng"
)

func TestDefaultCostModelMatchesPaper(t *testing.T) {
	cm := DefaultCostModel()
	// "A typical symmetric encryption costs several milliseconds while a
	// public key encryption operation costs 2-3 hundred milliseconds."
	if cm.SymEncrypt < 1e-3 || cm.SymEncrypt > 10e-3 {
		t.Fatalf("symmetric cost %v outside several-ms range", cm.SymEncrypt)
	}
	if cm.PubEncrypt < 200e-3 || cm.PubEncrypt > 300e-3 {
		t.Fatalf("public-key cost %v outside 200-300 ms range", cm.PubEncrypt)
	}
	if cm.PubEncrypt < 50*cm.SymEncrypt {
		t.Fatal("public key should cost ~hundreds of times symmetric")
	}
}

func TestZeroCostModel(t *testing.T) {
	if ZeroCostModel() != (CostModel{}) {
		t.Fatal("ZeroCostModel should be all zeros")
	}
}

func TestPseudonymDistinctAcrossNodes(t *testing.T) {
	src := rng.New(1)
	a := NewPseudonym(0xAABB, 10, src)
	b := NewPseudonym(0xAACC, 10, src)
	if a == b {
		t.Fatal("different MACs produced same pseudonym")
	}
}

func TestPseudonymChangesOverTime(t *testing.T) {
	src := rng.New(2)
	a := NewPseudonym(0xAABB, 10, src)
	b := NewPseudonym(0xAABB, 20, src)
	if a == b {
		t.Fatal("pseudonym did not rotate with time")
	}
}

func TestPseudonymUnpredictableWithinSecond(t *testing.T) {
	// Same MAC, same second: the randomized sub-second digits must make
	// reproduced pseudonyms differ (this is the anti-recomputation
	// property of Section 2.2).
	src := rng.New(3)
	a := NewPseudonym(0xAABB, 10.0, src)
	b := NewPseudonym(0xAABB, 10.0, src)
	if a == b {
		t.Fatal("pseudonyms reproducible within the same second")
	}
}

func TestPseudonymStringAndZero(t *testing.T) {
	var z Pseudonym
	if !z.IsZero() {
		t.Fatal("zero pseudonym not IsZero")
	}
	src := rng.New(4)
	p := NewPseudonym(1, 1, src)
	if p.IsZero() {
		t.Fatal("real pseudonym reported zero")
	}
	if len(p.String()) != 12 {
		t.Fatalf("String() = %q, want 12 hex chars", p.String())
	}
}

func TestSymRoundTrip(t *testing.T) {
	src := rng.New(5)
	key := NewSymKey(src)
	msg := []byte("attack at dawn, coordinates follow")
	sealed := SymSeal(key, msg, src)
	if bytes.Contains(sealed, msg[:10]) {
		t.Fatal("ciphertext contains plaintext")
	}
	got, err := SymOpen(key, sealed)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, msg) {
		t.Fatalf("round trip failed: %q", got)
	}
}

func TestSymWrongKey(t *testing.T) {
	src := rng.New(6)
	k1 := NewSymKey(src)
	k2 := NewSymKey(src)
	msg := []byte("secret")
	sealed := SymSeal(k1, msg, src)
	got, err := SymOpen(k2, sealed)
	if err != nil {
		t.Fatal("CTR open never errors on well-formed input")
	}
	if bytes.Equal(got, msg) {
		t.Fatal("wrong key decrypted successfully")
	}
}

func TestSymOpenTruncated(t *testing.T) {
	src := rng.New(7)
	key := NewSymKey(src)
	if _, err := SymOpen(key, []byte{1, 2, 3}); err == nil {
		t.Fatal("truncated input should error")
	}
}

func TestSymSealEmptyPlaintext(t *testing.T) {
	src := rng.New(8)
	key := NewSymKey(src)
	sealed := SymSeal(key, nil, src)
	got, err := SymOpen(key, sealed)
	if err != nil || len(got) != 0 {
		t.Fatalf("empty plaintext round trip: %v %v", got, err)
	}
}

func TestSymNonceFreshness(t *testing.T) {
	src := rng.New(9)
	key := NewSymKey(src)
	msg := []byte("same message")
	a := SymSeal(key, msg, src)
	b := SymSeal(key, msg, src)
	if bytes.Equal(a, b) {
		t.Fatal("two seals of the same message identical (nonce reuse)")
	}
}

func testSuite(t *testing.T, s Suite) {
	t.Helper()
	pub1, priv1 := s.GenerateKeyPair(1)
	pub2, priv2 := s.GenerateKeyPair(2)
	if pub1.Owner() != 1 || priv2.Owner() != 2 {
		t.Fatal("owner metadata wrong")
	}
	msg := []byte("the Hth partitioned source zone position")
	ct, err := s.EncryptPub(pub1, msg)
	if err != nil {
		t.Fatal(err)
	}
	if bytes.Contains(ct, msg[:8]) {
		t.Fatal("public-key ciphertext leaks plaintext")
	}
	pt, err := s.DecryptPub(priv1, ct)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(pt, msg) {
		t.Fatal("round trip failed")
	}
	// The wrong private key must not recover the plaintext.
	if pt2, err := s.DecryptPub(priv2, ct); err == nil && bytes.Equal(pt2, msg) {
		t.Fatal("wrong private key decrypted the message")
	}
	_ = pub2
}

func TestFastSuite(t *testing.T) {
	testSuite(t, NewFastSuite(rng.New(10)))
}

func TestRSASuite(t *testing.T) {
	testSuite(t, NewRSASuite(1024))
}

func TestRSASuiteLongPlaintext(t *testing.T) {
	s := NewRSASuite(1024)
	pub, priv := s.GenerateKeyPair(1)
	msg := bytes.Repeat([]byte("multimedia payload "), 60) // > one RSA block
	ct, err := s.EncryptPub(pub, msg)
	if err != nil {
		t.Fatal(err)
	}
	pt, err := s.DecryptPub(priv, ct)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(pt, msg) {
		t.Fatal("long plaintext round trip failed")
	}
}

func TestFastSuiteShortCiphertext(t *testing.T) {
	s := NewFastSuite(rng.New(11))
	_, priv := s.GenerateKeyPair(1)
	if _, err := s.DecryptPub(priv, []byte{1}); err == nil {
		t.Fatal("short ciphertext should error")
	}
}

func TestRSASuiteTruncated(t *testing.T) {
	s := NewRSASuite(1024)
	_, priv := s.GenerateKeyPair(1)
	if _, err := s.DecryptPub(priv, []byte{0, 200, 1, 2}); err == nil {
		t.Fatal("truncated ciphertext should error")
	}
	if _, err := s.DecryptPub(priv, []byte{9}); err == nil {
		t.Fatal("1-byte ciphertext should error")
	}
}

func TestFastSuiteDeterministicKeys(t *testing.T) {
	a := NewFastSuite(rng.New(12))
	b := NewFastSuite(rng.New(12))
	pubA, _ := a.GenerateKeyPair(5)
	_, privB := b.GenerateKeyPair(5)
	// Key material derived from (seed, owner), so suite A's public key
	// encrypts to suite B's private key of the same owner.
	ct, err := a.EncryptPub(pubA, []byte("x"))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := b.DecryptPub(privB, ct); err != nil {
		t.Fatalf("cross-instance decrypt failed: %v", err)
	}
}

func TestBitmapRoundTrip(t *testing.T) {
	src := rng.New(13)
	data := []byte("pkt payload: broadcast to Z_D")
	m := NewBitmap(len(data), 12, src)
	mutated := m.Apply(data)
	if bytes.Equal(mutated, data) && m.OnesCount() > 0 {
		t.Fatal("Apply changed nothing despite set bits")
	}
	restored := m.Apply(mutated)
	if !bytes.Equal(restored, data) {
		t.Fatal("double Apply did not restore data")
	}
}

func TestBitmapAltersPacketOnAir(t *testing.T) {
	// The countermeasure's purpose: two broadcasts of the "same" packet
	// must differ on air so the attacker cannot match them (Section 3.3).
	src := rng.New(14)
	data := bytes.Repeat([]byte{0xAB}, 64)
	m1 := NewBitmap(len(data), 16, src)
	m2 := NewBitmap(len(data), 16, src)
	if bytes.Equal(m1.Apply(data), m2.Apply(data)) {
		t.Fatal("two bitmap applications produced identical packets")
	}
}

func TestBitmapOnesCount(t *testing.T) {
	src := rng.New(15)
	m := NewBitmap(64, 20, src)
	c := m.OnesCount()
	if c == 0 || c > 20 {
		// Collisions can only reduce the count.
		t.Fatalf("OnesCount = %d, want in (0, 20]", c)
	}
}

func TestBitmapEmpty(t *testing.T) {
	src := rng.New(16)
	m := NewBitmap(0, 5, src)
	if len(m) != 0 || m.OnesCount() != 0 {
		t.Fatal("empty bitmap wrong")
	}
	out := m.Apply(nil)
	if len(out) != 0 {
		t.Fatal("empty apply wrong")
	}
}

func TestBitmapLengthMismatchPanics(t *testing.T) {
	src := rng.New(17)
	m := NewBitmap(8, 2, src)
	defer func() {
		if recover() == nil {
			t.Fatal("length mismatch should panic")
		}
	}()
	m.Apply(make([]byte, 9))
}

// Property: symmetric round trip is identity for arbitrary payloads.
func TestQuickSymRoundTrip(t *testing.T) {
	src := rng.New(18)
	key := NewSymKey(src)
	f := func(msg []byte) bool {
		sealed := SymSeal(key, msg, src)
		got, err := SymOpen(key, sealed)
		return err == nil && bytes.Equal(got, msg)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: FastSuite round trip is identity and cross-owner decryption
// fails, for arbitrary payloads and owners.
func TestQuickFastSuite(t *testing.T) {
	s := NewFastSuite(rng.New(19))
	f := func(msg []byte, ownerRaw uint8) bool {
		owner := int(ownerRaw)
		pub, priv := s.GenerateKeyPair(owner)
		_, other := s.GenerateKeyPair(owner + 1)
		ct, err := s.EncryptPub(pub, msg)
		if err != nil {
			return false
		}
		pt, err := s.DecryptPub(priv, ct)
		if err != nil || !bytes.Equal(pt, msg) {
			return false
		}
		_, err = s.DecryptPub(other, ct)
		return err != nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// Property: bitmap application is an involution.
func TestQuickBitmapInvolution(t *testing.T) {
	src := rng.New(20)
	f := func(data []byte, nBits uint8) bool {
		m := NewBitmap(len(data), int(nBits), src)
		return bytes.Equal(m.Apply(m.Apply(data)), data)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestMACRoundTrip(t *testing.T) {
	src := rng.New(30)
	key := NewSymKey(src)
	msg := []byte("lookup request: node 42")
	tag := MAC(key, msg)
	if !VerifyMAC(key, msg, tag) {
		t.Fatal("valid MAC rejected")
	}
	// Tampered message rejected.
	bad := append([]byte{}, msg...)
	bad[0] ^= 1
	if VerifyMAC(key, bad, tag) {
		t.Fatal("tampered message accepted")
	}
	// Wrong key rejected.
	other := NewSymKey(src)
	if VerifyMAC(other, msg, tag) {
		t.Fatal("wrong key accepted")
	}
	// Tampered tag rejected.
	tag[3] ^= 0xFF
	if VerifyMAC(key, msg, tag) {
		t.Fatal("tampered tag accepted")
	}
}

func TestQuickMAC(t *testing.T) {
	src := rng.New(31)
	key := NewSymKey(src)
	f := func(msg []byte, flip uint16) bool {
		tag := MAC(key, msg)
		if !VerifyMAC(key, msg, tag) {
			return false
		}
		if len(msg) == 0 {
			return true
		}
		bad := append([]byte{}, msg...)
		bad[int(flip)%len(bad)] ^= 1 << (flip % 8)
		return !VerifyMAC(key, bad, tag)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

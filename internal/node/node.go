// Package node assembles the per-node runtime state every routing protocol
// in this repository builds on: a stable internal id, a MAC address, a
// rotating pseudonym (Section 2.2), a public/private key pair, and access
// to the shared simulation substrates (engine, channel, mobility, crypto
// suite and cost model).
package node

import (
	"alertmanet/internal/crypt"
	"alertmanet/internal/geo"
	"alertmanet/internal/medium"
	"alertmanet/internal/rng"
	"alertmanet/internal/sim"
	"alertmanet/internal/telemetry"
)

// Node is one participant in the MANET.
type Node struct {
	// ID is the dense simulation index (also the medium.NodeID).
	ID medium.NodeID
	// MAC is the node's real hardware address; it never appears in
	// packets — only pseudonyms derived from it do.
	MAC uint64
	// Pseudonym is the node's current temporary identifier.
	Pseudonym crypt.Pseudonym
	// RegisteredPseudonym is the pseudonym the node most recently
	// registered with its location service; destinations keep accepting
	// packets addressed to it even after local rotation, since sources
	// learned it from the service (Section 2.2).
	RegisteredPseudonym crypt.Pseudonym
	// Pub and Priv are the node's key pair, distributed through the
	// location service.
	Pub  crypt.PubKey
	Priv crypt.PrivKey

	net *Network
	rnd *rng.Source
	// PseudonymUpdates counts rotations, for the f << F overhead
	// analysis of Section 4.3.
	PseudonymUpdates int
}

// CryptoOps tallies cryptographic operations across the network, feeding
// the energy accounting (public-key operations cost hundreds of times a
// symmetric one, per the paper's reference [26]).
type CryptoOps struct {
	Sym uint64
	Pub uint64
}

// Network bundles the substrates of one simulated MANET and owns its nodes.
type Network struct {
	Eng   *sim.Engine
	Med   *medium.Medium
	Suite crypt.Suite
	Costs crypt.CostModel
	Nodes []*Node
	// Ops counts cryptographic operations performed by all nodes.
	Ops CryptoOps

	rnd *rng.Source
	// tap, when non-nil, observes crypto cost charges.
	tap *telemetry.Tap
}

// SetTap attaches a telemetry tap observing crypto cost charges. A nil tap
// (the default) disables them.
func (net *Network) SetTap(t *telemetry.Tap) { net.tap = t }

// Config controls node-level behaviour.
type Config struct {
	// PseudonymLifetime is how often nodes rotate pseudonyms, seconds.
	// Too frequent perturbs routing, too infrequent lets an adversary
	// associate pseudonyms with nodes (Section 2.2). Zero disables
	// rotation after the initial assignment.
	PseudonymLifetime float64
}

// DefaultConfig rotates pseudonyms every 10 seconds.
func DefaultConfig() Config { return Config{PseudonymLifetime: 10} }

// NewNetwork creates the nodes on top of an existing engine and medium,
// assigns MAC addresses, key pairs and initial pseudonyms, and schedules
// pseudonym rotation.
func NewNetwork(eng *sim.Engine, med *medium.Medium, suite crypt.Suite,
	costs crypt.CostModel, cfg Config, src *rng.Source) *Network {
	net := &Network{
		Eng:   eng,
		Med:   med,
		Suite: suite,
		Costs: costs,
		rnd:   src.Split("node"),
	}
	n := med.N()
	net.Nodes = make([]*Node, n)
	// Per-node creation forks across the engine's worker pool: each node's
	// rng stream, key pair and initial pseudonym derive only from
	// index-split sources (SplitIndex reads the immutable parent seed), so
	// the built world is byte-identical for any worker degree. The serial
	// degree keeps its own loop so an unsharded build allocates no closure.
	if w := eng.Workers(); w.Degree() > 1 {
		w.For(n, func(lo, hi int) {
			for i := lo; i < hi; i++ {
				nd := &Node{
					ID:  medium.NodeID(i),
					MAC: 0x02_00_00_00_00_00 | uint64(i), // locally-administered space
					net: net,
					rnd: net.rnd.SplitIndex("n", i),
				}
				nd.Pub, nd.Priv = suite.GenerateKeyPair(i)
				nd.rotatePseudonym()
				net.Nodes[i] = nd
			}
		})
	} else {
		for i := 0; i < n; i++ {
			nd := &Node{
				ID:  medium.NodeID(i),
				MAC: 0x02_00_00_00_00_00 | uint64(i), // locally-administered space
				net: net,
				rnd: net.rnd.SplitIndex("n", i),
			}
			nd.Pub, nd.Priv = suite.GenerateKeyPair(i)
			nd.rotatePseudonym()
			net.Nodes[i] = nd
		}
	}
	if cfg.PseudonymLifetime > 0 {
		for _, nd := range net.Nodes {
			nd := nd
			// Desynchronize rotations so they don't all fire at once.
			start := nd.rnd.Uniform(0, cfg.PseudonymLifetime)
			eng.Ticker(start, cfg.PseudonymLifetime, func(sim.Time) {
				nd.rotatePseudonym()
			})
		}
	}
	return net
}

func (n *Node) rotatePseudonym() {
	n.Pseudonym = crypt.NewPseudonym(n.MAC, n.net.Eng.Now(), n.rnd)
	n.PseudonymUpdates++
}

// Position returns the node's true position now.
func (n *Node) Position() geo.Point { return n.net.Med.PositionNow(n.ID) }

// PositionAt returns the node's true position at time t.
func (n *Node) PositionAt(t float64) geo.Point {
	return n.net.Med.TruePosition(n.ID, t)
}

// Neighbors returns the node's (possibly stale) neighbor table.
func (n *Node) Neighbors() []medium.Neighbor { return n.net.Med.Neighbors(n.ID) }

// Rand returns the node's private random stream.
func (n *Node) Rand() *rng.Source { return n.rnd }

// Network returns the network the node belongs to.
func (n *Node) Network() *Network { return n.net }

// Node returns the node with the given id.
func (net *Network) Node(id medium.NodeID) *Node { return net.Nodes[id] }

// N returns the number of nodes.
func (net *Network) N() int { return len(net.Nodes) }

// Field returns the network area.
func (net *Network) Field() geo.Rect { return net.Med.Mobility().Field() }

// Rand returns the network-level random stream.
func (net *Network) Rand() *rng.Source { return net.rnd }

// ChargeSym schedules fn after one symmetric-encryption charge; protocols
// call these helpers so every cryptographic operation consistently costs
// simulated time.
func (net *Network) ChargeSym(fn func()) {
	net.Ops.Sym++
	if net.tap != nil {
		net.tap.Crypto(net.Eng.Now(), "sym", 1)
	}
	net.Eng.Schedule(net.Costs.SymEncrypt, fn)
}

// ChargePub schedules fn after one public-key-operation charge.
func (net *Network) ChargePub(fn func()) {
	net.Ops.Pub++
	if net.tap != nil {
		net.tap.Crypto(net.Eng.Now(), "pub", 1)
	}
	net.Eng.Schedule(net.Costs.PubEncrypt, fn)
}

// NoteSym records n symmetric operations for energy accounting (used by
// protocols that schedule their own combined charges).
func (net *Network) NoteSym(n int) {
	net.Ops.Sym += uint64(n)
	if net.tap != nil {
		net.tap.Crypto(net.Eng.Now(), "sym", n)
	}
}

// NotePub records n public-key operations for energy accounting.
func (net *Network) NotePub(n int) {
	net.Ops.Pub += uint64(n)
	if net.tap != nil {
		net.tap.Crypto(net.Eng.Now(), "pub", n)
	}
}

// ChargeN schedules fn after n charges of the given per-op cost.
func (net *Network) ChargeN(n int, perOp float64, fn func()) {
	if n < 0 {
		n = 0
	}
	net.Eng.Schedule(float64(n)*perOp, fn)
}

package node

import (
	"testing"

	"alertmanet/internal/crypt"
	"alertmanet/internal/geo"
	"alertmanet/internal/medium"
	"alertmanet/internal/mobility"
	"alertmanet/internal/rng"
	"alertmanet/internal/sim"
)

var field = geo.Rect{Min: geo.Point{X: 0, Y: 0}, Max: geo.Point{X: 1000, Y: 1000}}

func newTestNetwork(t *testing.T, n int, cfg Config) (*sim.Engine, *Network) {
	t.Helper()
	eng := sim.NewEngine()
	src := rng.New(99)
	mob := mobility.NewRandomWaypoint(field, n, mobility.Fixed(2), src)
	med := medium.MustNew(eng, mob, medium.DefaultParams(), src)
	suite := crypt.NewFastSuite(src)
	net := NewNetwork(eng, med, suite, crypt.DefaultCostModel(), cfg, src)
	return eng, net
}

func TestNetworkSetup(t *testing.T) {
	_, net := newTestNetwork(t, 10, DefaultConfig())
	if net.N() != 10 {
		t.Fatalf("N = %d", net.N())
	}
	if net.Field() != field {
		t.Fatal("field wrong")
	}
	seenMAC := map[uint64]bool{}
	seenPseud := map[crypt.Pseudonym]bool{}
	for _, nd := range net.Nodes {
		if nd.Pub == nil || nd.Priv == nil {
			t.Fatal("node missing keys")
		}
		if nd.Pub.Owner() != int(nd.ID) {
			t.Fatal("key owner mismatch")
		}
		if seenMAC[nd.MAC] {
			t.Fatal("duplicate MAC")
		}
		seenMAC[nd.MAC] = true
		if nd.Pseudonym.IsZero() {
			t.Fatal("node has no pseudonym")
		}
		if seenPseud[nd.Pseudonym] {
			t.Fatal("pseudonym collision at startup")
		}
		seenPseud[nd.Pseudonym] = true
	}
}

func TestPseudonymRotation(t *testing.T) {
	eng, net := newTestNetwork(t, 5, Config{PseudonymLifetime: 10})
	initial := make([]crypt.Pseudonym, 5)
	for i, nd := range net.Nodes {
		initial[i] = nd.Pseudonym
	}
	eng.RunUntil(35)
	for i, nd := range net.Nodes {
		if nd.Pseudonym == initial[i] {
			t.Fatalf("node %d pseudonym did not rotate in 35 s", i)
		}
		// 1 initial + at least 3 rotations in 35 s with lifetime 10.
		if nd.PseudonymUpdates < 4 {
			t.Fatalf("node %d has only %d updates", i, nd.PseudonymUpdates)
		}
	}
}

func TestRotationDisabled(t *testing.T) {
	eng, net := newTestNetwork(t, 3, Config{PseudonymLifetime: 0})
	p0 := net.Nodes[0].Pseudonym
	eng.RunUntil(100)
	if net.Nodes[0].Pseudonym != p0 {
		t.Fatal("pseudonym rotated despite lifetime 0")
	}
	if net.Nodes[0].PseudonymUpdates != 1 {
		t.Fatal("update count wrong")
	}
}

func TestRotationsDesynchronized(t *testing.T) {
	// Rotations should not all fire at the same instant; check the first
	// rotation times differ across nodes by inspecting update counts at
	// a mid-lifetime point.
	eng, net := newTestNetwork(t, 20, Config{PseudonymLifetime: 10})
	eng.RunUntil(5)
	rotated := 0
	for _, nd := range net.Nodes {
		if nd.PseudonymUpdates > 1 {
			rotated++
		}
	}
	if rotated == 0 || rotated == 20 {
		t.Fatalf("rotations synchronized: %d/20 rotated at t=5", rotated)
	}
}

func TestPositionAccessors(t *testing.T) {
	eng, net := newTestNetwork(t, 3, DefaultConfig())
	nd := net.Nodes[1]
	if !field.Contains(nd.Position()) {
		t.Fatal("position outside field")
	}
	if nd.Position() != nd.PositionAt(eng.Now()) {
		t.Fatal("Position and PositionAt(now) disagree")
	}
}

func TestNeighborsAccessor(t *testing.T) {
	_, net := newTestNetwork(t, 50, DefaultConfig())
	nb := net.Nodes[0].Neighbors()
	for _, n := range nb {
		if n.ID == net.Nodes[0].ID {
			t.Fatal("node neighbor of itself")
		}
	}
}

func TestChargeHelpers(t *testing.T) {
	eng, net := newTestNetwork(t, 2, DefaultConfig())
	var symAt, pubAt, nAt float64
	net.ChargeSym(func() { symAt = eng.Now() })
	net.ChargePub(func() { pubAt = eng.Now() })
	net.ChargeN(4, 0.01, func() { nAt = eng.Now() })
	eng.RunUntil(1)
	if symAt != net.Costs.SymEncrypt {
		t.Fatalf("sym charge fired at %v", symAt)
	}
	if pubAt != net.Costs.PubEncrypt {
		t.Fatalf("pub charge fired at %v", pubAt)
	}
	if nAt != 0.04 {
		t.Fatalf("N charge fired at %v", nAt)
	}
}

func TestChargeNNegative(t *testing.T) {
	eng, net := newTestNetwork(t, 2, DefaultConfig())
	fired := false
	net.ChargeN(-3, 0.01, func() { fired = true })
	eng.RunUntil(1)
	if !fired {
		t.Fatal("negative n should clamp to zero, not panic or drop")
	}
}

func TestNodeLookup(t *testing.T) {
	_, net := newTestNetwork(t, 4, DefaultConfig())
	if net.Node(2) != net.Nodes[2] {
		t.Fatal("Node lookup wrong")
	}
	if net.Node(2).Network() != net {
		t.Fatal("Network backref wrong")
	}
}

func TestCryptoOpCounters(t *testing.T) {
	eng, net := newTestNetwork(t, 2, DefaultConfig())
	net.ChargeSym(func() {})
	net.ChargePub(func() {})
	net.NoteSym(3)
	net.NotePub(2)
	eng.RunUntil(1)
	if net.Ops.Sym != 4 {
		t.Fatalf("Sym ops = %d, want 4", net.Ops.Sym)
	}
	if net.Ops.Pub != 3 {
		t.Fatalf("Pub ops = %d, want 3", net.Ops.Pub)
	}
}

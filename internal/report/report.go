// Package report renders the full evaluation — analytical curves,
// simulation figures, attack experiments, energy and significance tests —
// as one self-contained markdown document, so a fresh paper-vs-measured
// appendix regenerates with a single command (cmd/report).
package report

import (
	"fmt"
	"io"
	"strings"

	"alertmanet/internal/analysis"
	"alertmanet/internal/campaign"
	"alertmanet/internal/experiment"
)

// Config controls report generation.
type Config struct {
	// Seeds is the number of independent runs per simulated data point
	// (the paper uses 30; shapes stabilize by ~5).
	Seeds int
	// Sections limits the report to the named sections; empty means all.
	// Valid names: analytical, figures, table1, attacks, energy, compare.
	Sections []string
	// Runner executes simulation cells; nil means a fresh campaign engine,
	// whose in-process memo already deduplicates the cells the energy and
	// compare sections share.
	Runner experiment.Runner
}

// DefaultConfig renders everything with 5 seeds.
func DefaultConfig() Config { return Config{Seeds: 5} }

func (c Config) wants(section string) bool {
	if len(c.Sections) == 0 {
		return true
	}
	for _, s := range c.Sections {
		if s == section {
			return true
		}
	}
	return false
}

// Generate writes the markdown report.
func Generate(w io.Writer, cfg Config) error {
	if cfg.Seeds <= 0 {
		cfg.Seeds = 5
	}
	r := cfg.Runner
	if r == nil {
		r = &campaign.Engine{Name: "report"}
	}
	bw := &errWriter{w: w}
	fig := func(title string) func(series []analysis.Series, err error) {
		return func(series []analysis.Series, err error) {
			if err != nil {
				if bw.err == nil {
					bw.err = err
				}
				return
			}
			mdSeries(bw, title, series)
		}
	}
	one := func(s analysis.Series, err error) ([]analysis.Series, error) {
		return []analysis.Series{s}, err
	}
	fmt.Fprintf(bw, "# ALERT reproduction report\n\n")
	fmt.Fprintf(bw, "Simulated data points averaged over %d seeded runs.\n\n", cfg.Seeds)

	if cfg.wants("analytical") {
		bw.section("Analytical figures (Section 4)")
		times := []float64{0, 10, 20, 30, 40, 50}
		mdSeries(bw, "Fig. 7a — possible participating nodes vs partitions (Eq. 7)",
			analysis.Fig7aPossibleParticipants([]int{100, 200, 400}, 8, 1000))
		mdSeries(bw, "Fig. 7b — expected random forwarders vs partitions (Eq. 10)",
			[]analysis.Series{analysis.Fig7bExpectedRFs(8)})
		mdSeries(bw, "Fig. 9a — remaining nodes vs time by density (Eq. 15, v=2)",
			analysis.Fig9aRemainingNodes([]int{100, 200, 400}, 5, 1000, 2, times))
		mdSeries(bw, "Fig. 9b — remaining nodes vs time by speed (Eq. 15, N=200)",
			analysis.Fig9bRemainingNodes(200, 5, 1000, []float64{1, 2, 4}, times))
	}

	if cfg.wants("figures") {
		bw.section("Simulation figures (Section 5)")
		times := []float64{0, 10, 20, 30, 40, 50}
		fig("Fig. 10a — cumulative participating nodes vs packets")(
			experiment.Fig10a(r, 20, cfg.Seeds))
		fig("Fig. 10b — participating nodes after 20 packets vs N")(
			experiment.Fig10b(r, 20, cfg.Seeds))
		fig("Fig. 11 — random forwarders vs partitions (simulated)")(
			one(experiment.Fig11(r, 7, cfg.Seeds)))
		fig("Fig. 12 — remaining nodes vs time by density (H=5, v=2)")(
			experiment.Fig12(r, times, cfg.Seeds))
		fig("Fig. 13a — remaining nodes vs time by H and speed")(
			experiment.Fig13a(r, times, cfg.Seeds))
		fig("Fig. 13b — required density vs speed (4 remaining at t=10 s)")(
			one(experiment.Fig13b(r, 4, []float64{1, 2, 4, 6, 8}, cfg.Seeds)))
		fig("Fig. 14a — latency per packet (s) vs N")(
			experiment.Fig14a(r, cfg.Seeds))
		fig("Fig. 14b — latency per packet (s) vs speed")(
			experiment.Fig14b(r, cfg.Seeds))
		fig("Fig. 15a — hops per packet vs N")(
			experiment.Fig15a(r, cfg.Seeds))
		fig("Fig. 15b — hops per packet vs speed")(
			experiment.Fig15b(r, cfg.Seeds))
		fig("Fig. 16a — delivery rate vs N")(
			experiment.Fig16a(r, cfg.Seeds))
		fig("Fig. 16b — delivery rate vs speed")(
			experiment.Fig16b(r, cfg.Seeds))
		fig("Fig. 17 — ALERT delay (s) by movement model")(
			experiment.Fig17(r, cfg.Seeds))
	}

	if cfg.wants("table1") {
		bw.section("Table 1 — protocol taxonomy")
		fmt.Fprintf(bw, "```\n%s```\n\n", experiment.FormatTable1())
	}

	if cfg.wants("attacks") {
		bw.section("Attack experiments (Sections 2.6, 3.1-3.3)")
		fmt.Fprintf(bw, "| attack | without defence | with defence |\n|---|---|---|\n")
		var plainD, guardD, plainX int
		for s := int64(1); s <= int64(cfg.Seeds); s++ {
			p := experiment.IntersectionAttack(s, 25, false)
			g := experiment.IntersectionAttack(s, 25, true)
			if p.DstCandidate {
				plainD++
			}
			if p.Exposed {
				plainX++
			}
			if g.DstCandidate {
				guardD++
			}
		}
		fmt.Fprintf(bw, "| intersection | D candidate %d/%d, identified %d/%d | D candidate %d/%d |\n",
			plainD, cfg.Seeds, plainX, cfg.Seeds, guardD, cfg.Seeds)
		with := experiment.SourceAnonymity(1, true)
		without := experiment.SourceAnonymity(1, false)
		fmt.Fprintf(bw, "| notify-and-go set | %d transmitters | %d transmitters (η=%d) |\n",
			without.AnonymitySet, with.AnonymitySet, with.Neighbors)
		fmt.Fprintf(bw, "| source triangulation | %.0f m error | %.0f m error |\n",
			experiment.SourceLocationError(1, false), experiment.SourceLocationError(1, true))
		fmt.Fprintf(bw, "| timing correlation | GPSR %.2f | ALERT %.2f |\n",
			experiment.TimingAttackScore(1, experiment.GPSR, 20),
			experiment.TimingAttackScore(1, experiment.ALERT, 20))
		fmt.Fprintf(bw, "| interception (3 relays) | GPSR %.0f%% | ALERT %.0f%% |\n",
			experiment.InterceptionExperiment(1, experiment.GPSR, 20, 3)*100,
			experiment.InterceptionExperiment(1, experiment.ALERT, 20, 3)*100)
		gd := experiment.DoSAttack(1, experiment.GPSR, 20, 3)
		ad := experiment.DoSAttack(1, experiment.ALERT, 20, 3)
		fmt.Fprintf(bw, "| DoS (3 sink relays) | GPSR %.0f%%→%.0f%% | ALERT %.0f%%→%.0f%% |\n\n",
			gd.BaselineDelivery*100, gd.UnderAttackDelivery*100,
			ad.BaselineDelivery*100, ad.UnderAttackDelivery*100)
	}

	if cfg.wants("energy") {
		bw.section("Energy per delivered packet")
		fmt.Fprintf(bw, "| protocol | mJ/packet |\n|---|---|\n")
		series, err := experiment.EnergySummary(r, cfg.Seeds)
		if err != nil {
			if bw.err == nil {
				bw.err = err
			}
		} else {
			for _, s := range series {
				fmt.Fprintf(bw, "| %s | %.2f |\n", s.Label, s.Y[0]*1e3)
			}
		}
		fmt.Fprintln(bw)
	}

	if cfg.wants("compare") {
		bw.section("Pairwise significance (Welch's t-test, 95%)")
		fmt.Fprintf(bw, "| metric | A | mean A | B | mean B | t | significant |\n")
		fmt.Fprintf(bw, "|---|---|---|---|---|---|---|\n")
		comps, err := experiment.CompareProtocols(r, []experiment.ProtocolName{
			experiment.ALERT, experiment.GPSR, experiment.ALARM, experiment.AO2P,
		}, cfg.Seeds, 40)
		if err != nil {
			if bw.err == nil {
				bw.err = err
			}
		} else {
			for _, c := range comps {
				fmt.Fprintf(bw, "| %s | %s | %.4f | %s | %.4f | %.2f | %v |\n",
					c.Metric, c.A, c.MeanA, c.B, c.MeanB, c.Welch.T, c.Welch.Significant)
			}
		}
		fmt.Fprintln(bw)
	}

	return bw.err
}

// mdSeries renders a set of same-grid series as a markdown table.
func mdSeries(w io.Writer, title string, series []analysis.Series) {
	fmt.Fprintf(w, "### %s\n\n", title)
	if len(series) == 0 {
		fmt.Fprintf(w, "(no data)\n\n")
		return
	}
	fmt.Fprint(w, "| x |")
	for _, s := range series {
		fmt.Fprintf(w, " %s |", strings.ReplaceAll(s.Label, "|", "\\|"))
	}
	fmt.Fprint(w, "\n|---|")
	for range series {
		fmt.Fprint(w, "---|")
	}
	fmt.Fprintln(w)
	for i := range series[0].X {
		fmt.Fprintf(w, "| %g |", series[0].X[i])
		for _, s := range series {
			if i >= len(s.Y) {
				fmt.Fprint(w, " |")
				continue
			}
			if s.Err != nil && i < len(s.Err) && s.Err[i] > 0 {
				fmt.Fprintf(w, " %.4f ± %.4f |", s.Y[i], s.Err[i])
			} else {
				fmt.Fprintf(w, " %.4f |", s.Y[i])
			}
		}
		fmt.Fprintln(w)
	}
	fmt.Fprintln(w)
}

// errWriter tracks the first write error so Generate can stay linear.
type errWriter struct {
	w   io.Writer
	err error
}

func (e *errWriter) Write(p []byte) (int, error) {
	if e.err != nil {
		return len(p), nil
	}
	n, err := e.w.Write(p)
	if err != nil {
		e.err = err
	}
	return n, nil
}

func (e *errWriter) section(title string) {
	fmt.Fprintf(e, "## %s\n\n", title)
}

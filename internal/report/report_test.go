package report

import (
	"errors"
	"strings"
	"testing"
)

func TestGenerateAnalyticalOnly(t *testing.T) {
	var sb strings.Builder
	cfg := Config{Seeds: 1, Sections: []string{"analytical"}}
	if err := Generate(&sb, cfg); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{
		"# ALERT reproduction report",
		"Fig. 7a", "Fig. 7b", "Fig. 9a", "Fig. 9b",
		"| x |", "N=200",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("report missing %q", want)
		}
	}
	if strings.Contains(out, "Fig. 14a") {
		t.Fatal("section filter leaked the simulation figures")
	}
}

func TestGenerateAttacksAndEnergy(t *testing.T) {
	var sb strings.Builder
	cfg := Config{Seeds: 1, Sections: []string{"attacks", "energy", "table1"}}
	if err := Generate(&sb, cfg); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{
		"intersection", "notify-and-go", "timing correlation",
		"Energy per delivered packet", "| alert |",
		"Table 1", "ANODR",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("report missing %q", want)
		}
	}
}

func TestGenerateZeroSeedsDefaults(t *testing.T) {
	var sb strings.Builder
	// Zero seeds must not panic or divide by zero; it defaults.
	if err := Generate(&sb, Config{Sections: []string{"table1"}}); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "Table 1") {
		t.Fatal("empty report")
	}
}

// failAfter errors after n bytes to exercise error propagation.
type failAfter struct {
	n int
}

func (f *failAfter) Write(p []byte) (int, error) {
	f.n -= len(p)
	if f.n < 0 {
		return 0, errors.New("disk full")
	}
	return len(p), nil
}

func TestGeneratePropagatesWriteError(t *testing.T) {
	err := Generate(&failAfter{n: 10}, Config{Seeds: 1, Sections: []string{"table1"}})
	if err == nil {
		t.Fatal("write error swallowed")
	}
}

func TestGenerateFiguresSection(t *testing.T) {
	if testing.Short() {
		t.Skip("figures section runs full simulations")
	}
	var sb strings.Builder
	if err := Generate(&sb, Config{Seeds: 1, Sections: []string{"figures"}}); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{
		"Fig. 10a", "Fig. 11", "Fig. 13b", "Fig. 14a", "Fig. 15a",
		"Fig. 16b", "Fig. 17",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("figures section missing %q", want)
		}
	}
}

// Package rng provides deterministic, splittable random number streams.
//
// Every stochastic component of the simulator (mobility, medium, protocol
// randomness, workload generation) draws from its own named stream derived
// from a single experiment seed. Two runs with the same seed therefore
// produce identical traces regardless of the order in which components
// consume randomness, and changing one component's consumption does not
// perturb any other component.
package rng

import (
	"hash/fnv"
	"math/rand"
)

// Source is a deterministic random stream. It wraps math/rand.Rand and adds
// a few distribution helpers that the simulator needs. Source is not safe
// for concurrent use; the discrete-event engine is single-threaded, and
// parallel experiment runs each own their sources.
type Source struct {
	*rand.Rand
	seed int64
	name string
}

// New returns the root stream for an experiment seed.
func New(seed int64) *Source {
	return &Source{Rand: rand.New(rand.NewSource(mix(seed))), seed: seed, name: ""}
}

// Seed returns the seed this source was derived from.
func (s *Source) Seed() int64 { return s.seed }

// Name returns the derivation path of this stream ("" for the root).
func (s *Source) Name() string { return s.name }

// Split derives an independent child stream identified by name. Derivation
// depends only on (seed, full path name), not on how much randomness the
// parent has consumed.
func (s *Source) Split(name string) *Source {
	full := name
	if s.name != "" {
		full = s.name + "/" + name
	}
	h := fnv.New64a()
	_, _ = h.Write([]byte(full))
	child := mix(s.seed ^ int64(h.Sum64()))
	return &Source{Rand: rand.New(rand.NewSource(child)), seed: s.seed, name: full}
}

// SplitIndex derives a child stream from an integer index, e.g. one stream
// per node.
func (s *Source) SplitIndex(name string, i int) *Source {
	return s.Split(name + "#" + itoa(i))
}

// Uniform returns a float64 uniformly distributed in [lo, hi).
func (s *Source) Uniform(lo, hi float64) float64 {
	return lo + (hi-lo)*s.Float64()
}

// Exponential returns an exponentially distributed value with the given
// mean. The mean must be positive.
func (s *Source) Exponential(mean float64) float64 {
	return s.ExpFloat64() * mean
}

// Bernoulli reports true with probability p.
func (s *Source) Bernoulli(p float64) bool {
	if p <= 0 {
		return false
	}
	if p >= 1 {
		return true
	}
	return s.Float64() < p
}

// Perm31 returns a pseudo-random permutation of [0, n) like rand.Perm but
// is documented here for symmetry; kept for call-site clarity.
func (s *Source) Perm31(n int) []int { return s.Perm(n) }

// mix is SplitMix64's finalizer, used to decorrelate nearby seeds.
func mix(x int64) int64 {
	z := uint64(x) + 0x9e3779b97f4a7c15
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	z ^= z >> 31
	return int64(z)
}

func itoa(i int) string {
	if i == 0 {
		return "0"
	}
	neg := i < 0
	if neg {
		i = -i
	}
	var buf [24]byte
	p := len(buf)
	for i > 0 {
		p--
		buf[p] = byte('0' + i%10)
		i /= 10
	}
	if neg {
		p--
		buf[p] = '-'
	}
	return string(buf[p:])
}

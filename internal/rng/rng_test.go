package rng

import (
	"math"
	"testing"
	"testing/quick"
)

func TestDeterminism(t *testing.T) {
	a := New(42)
	b := New(42)
	for i := 0; i < 100; i++ {
		if a.Float64() != b.Float64() {
			t.Fatalf("streams diverged at draw %d", i)
		}
	}
}

func TestDifferentSeedsDiffer(t *testing.T) {
	a := New(1)
	b := New(2)
	same := 0
	for i := 0; i < 100; i++ {
		if a.Float64() == b.Float64() {
			same++
		}
	}
	if same > 2 {
		t.Fatalf("seeds 1 and 2 produced %d/100 identical draws", same)
	}
}

func TestSplitIndependentOfConsumption(t *testing.T) {
	a := New(7)
	b := New(7)
	// Consume different amounts from each parent before splitting.
	a.Float64()
	for i := 0; i < 50; i++ {
		b.Float64()
	}
	ca := a.Split("mobility")
	cb := b.Split("mobility")
	for i := 0; i < 20; i++ {
		if ca.Float64() != cb.Float64() {
			t.Fatalf("split streams depend on parent consumption (draw %d)", i)
		}
	}
}

func TestSplitPathsDistinct(t *testing.T) {
	root := New(9)
	a := root.Split("a").Split("b")
	b := root.Split("a/b") // different derivation path structure, same flat name
	// These SHOULD be equal because Split concatenates with "/" — document it.
	if a.Float64() != b.Float64() {
		t.Fatal("path derivation should be by flattened name")
	}
	c := root.Split("c")
	d := root.Split("d")
	if c.Float64() == d.Float64() && c.Float64() == d.Float64() {
		t.Fatal("sibling streams identical")
	}
}

func TestSplitIndex(t *testing.T) {
	root := New(3)
	a := root.SplitIndex("node", 1)
	b := root.SplitIndex("node", 2)
	if a.Name() == b.Name() {
		t.Fatal("SplitIndex names collide")
	}
	if a.Float64() == b.Float64() {
		// one coincidence is possible but astronomically unlikely with floats
		t.Fatal("SplitIndex streams identical on first draw")
	}
}

func TestUniformRange(t *testing.T) {
	s := New(5)
	for i := 0; i < 1000; i++ {
		v := s.Uniform(-3, 12)
		if v < -3 || v >= 12 {
			t.Fatalf("Uniform out of range: %v", v)
		}
	}
}

func TestUniformMean(t *testing.T) {
	s := New(6)
	sum := 0.0
	const n = 200000
	for i := 0; i < n; i++ {
		sum += s.Uniform(0, 10)
	}
	mean := sum / n
	if math.Abs(mean-5) > 0.05 {
		t.Fatalf("Uniform(0,10) mean = %v, want ≈5", mean)
	}
}

func TestExponentialMean(t *testing.T) {
	s := New(8)
	sum := 0.0
	const n = 200000
	for i := 0; i < n; i++ {
		sum += s.Exponential(2.5)
	}
	mean := sum / n
	if math.Abs(mean-2.5) > 0.05 {
		t.Fatalf("Exponential(2.5) mean = %v", mean)
	}
}

func TestBernoulliEdges(t *testing.T) {
	s := New(10)
	for i := 0; i < 100; i++ {
		if s.Bernoulli(0) {
			t.Fatal("Bernoulli(0) returned true")
		}
		if !s.Bernoulli(1) {
			t.Fatal("Bernoulli(1) returned false")
		}
		if s.Bernoulli(-0.5) {
			t.Fatal("Bernoulli(<0) returned true")
		}
		if !s.Bernoulli(1.5) {
			t.Fatal("Bernoulli(>1) returned false")
		}
	}
}

func TestBernoulliRate(t *testing.T) {
	s := New(11)
	hits := 0
	const n = 100000
	for i := 0; i < n; i++ {
		if s.Bernoulli(0.3) {
			hits++
		}
	}
	rate := float64(hits) / n
	if math.Abs(rate-0.3) > 0.01 {
		t.Fatalf("Bernoulli(0.3) rate = %v", rate)
	}
}

func TestMixInjectiveOnSample(t *testing.T) {
	seen := map[int64]int64{}
	for i := int64(-5000); i < 5000; i++ {
		m := mix(i)
		if prev, ok := seen[m]; ok {
			t.Fatalf("mix collision: mix(%d) == mix(%d)", i, prev)
		}
		seen[m] = i
	}
}

func TestItoa(t *testing.T) {
	cases := map[int]string{0: "0", 1: "1", -1: "-1", 12345: "12345", -987: "-987"}
	for in, want := range cases {
		if got := itoa(in); got != want {
			t.Errorf("itoa(%d) = %q, want %q", in, got, want)
		}
	}
}

func TestQuickUniformWithinBounds(t *testing.T) {
	s := New(12)
	f := func(lo float64, width uint8) bool {
		if math.IsNaN(lo) || math.IsInf(lo, 0) || math.Abs(lo) > 1e12 {
			return true // skip degenerate inputs
		}
		hi := lo + float64(width) + 1
		v := s.Uniform(lo, hi)
		return v >= lo && v < hi
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestQuickSplitDeterminism(t *testing.T) {
	f := func(seed int64, name string) bool {
		if name == "" {
			return true
		}
		a := New(seed).Split(name)
		b := New(seed).Split(name)
		return a.Int63() == b.Int63()
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

package core

import (
	"bytes"
	"math"
	"reflect"
	"testing"
	"testing/quick"

	"alertmanet/internal/crypt"
	"alertmanet/internal/geo"
	"alertmanet/internal/gpsr"
	"alertmanet/internal/medium"
	"alertmanet/internal/rng"
)

func sampleEnvelope() *Envelope {
	src := rng.New(1)
	return &Envelope{
		Kind:      KindData,
		PS:        crypt.NewPseudonym(0xAA, 1, src),
		PD:        crypt.NewPseudonym(0xBB, 1, src),
		LZD:       geo.Rect{Min: geo.Point{X: 875, Y: 250}, Max: geo.Point{X: 1000, Y: 500}},
		TD:        geo.Point{X: 912.25, Y: 333.5},
		Dir:       geo.Horizontal,
		Hdiv:      3,
		Hmax:      5,
		EncLZS:    []byte{1, 2, 3, 4},
		EncSymKey: []byte{9, 8, 7},
		EncTTL:    []byte{5},
		EncBitmap: nil,
		Payload:   []byte("encrypted payload bytes"),
		Seq:       42,
	}
}

func TestCodecRoundTrip(t *testing.T) {
	env := sampleEnvelope()
	wire := Marshal(env)
	got, err := Unmarshal(wire)
	if err != nil {
		t.Fatal(err)
	}
	if got.Kind != env.Kind || got.PS != env.PS || got.PD != env.PD ||
		got.LZD != env.LZD || got.TD != env.TD || got.Dir != env.Dir ||
		got.Hdiv != env.Hdiv || got.Hmax != env.Hmax || got.Seq != env.Seq {
		t.Fatalf("scalar fields mismatch:\n%+v\n%+v", got, env)
	}
	for _, pair := range [][2][]byte{
		{got.EncLZS, env.EncLZS},
		{got.EncSymKey, env.EncSymKey},
		{got.EncTTL, env.EncTTL},
		{got.EncBitmap, env.EncBitmap},
		{got.Payload, env.Payload},
	} {
		if !bytes.Equal(pair[0], pair[1]) {
			t.Fatalf("blob mismatch: %v vs %v", pair[0], pair[1])
		}
	}
}

func TestWireSizeMatchesMarshal(t *testing.T) {
	env := sampleEnvelope()
	if WireSize(env) != len(Marshal(env)) {
		t.Fatal("WireSize disagrees with Marshal")
	}
}

func TestWireFitsConfiguredPacketSize(t *testing.T) {
	// A realistic data envelope must fit the 512-byte packets of the
	// evaluation: header + encrypted fields + a voice-frame payload.
	src := rng.New(2)
	suite := crypt.NewFastSuite(src)
	pub, _ := suite.GenerateKeyPair(1)
	key := crypt.NewSymKey(src)
	encKey, _ := suite.EncryptPub(pub, key[:])
	encLZS, _ := suite.EncryptPub(pub, encodeRect(geo.Rect{Max: geo.Point{X: 1, Y: 1}}))
	encTTL, _ := suite.EncryptPub(pub, encodeTTL(10))
	env := sampleEnvelope()
	env.EncSymKey = encKey
	env.EncLZS = encLZS
	env.EncTTL = encTTL
	env.Payload = crypt.SymSeal(key, make([]byte, 160), src) // 20 ms voice frame
	if w := WireSize(env); w > 512 {
		t.Fatalf("wire size %d exceeds the 512-byte packet budget", w)
	}
}

func TestUnmarshalErrors(t *testing.T) {
	env := sampleEnvelope()
	wire := Marshal(env)
	// Truncations at every prefix must error, never panic.
	for n := 0; n < len(wire); n++ {
		if _, err := Unmarshal(wire[:n]); err == nil {
			t.Fatalf("truncation at %d accepted", n)
		}
	}
	// Trailing garbage rejected.
	if _, err := Unmarshal(append(append([]byte{}, wire...), 0xFF)); err == nil {
		t.Fatal("trailing byte accepted")
	}
	// Bad kind.
	bad := append([]byte{}, wire...)
	bad[0] = 99
	if _, err := Unmarshal(bad); err == nil {
		t.Fatal("unknown kind accepted")
	}
	// Bad direction bit.
	bad = append([]byte{}, wire...)
	bad[1+20+20+32+16] = 7
	if _, err := Unmarshal(bad); err == nil {
		t.Fatal("invalid direction accepted")
	}
}

// Property: Marshal/Unmarshal round-trips arbitrary envelopes.
func TestQuickCodecRoundTrip(t *testing.T) {
	f := func(kind uint8, ps, pd [20]byte, zx, zy uint16, tdx, tdy uint16,
		dir bool, hdiv, hmax uint8, lzs, key, ttl, bm, payload []byte,
		seq uint16) bool {
		env := &Envelope{
			Kind: Kind(kind % 3),
			PS:   ps,
			PD:   pd,
			LZD: geo.NewRect(
				geo.Point{X: float64(zx), Y: float64(zy)},
				geo.Point{X: float64(zx) + 10, Y: float64(zy) + 10}),
			TD:        geo.Point{X: float64(tdx), Y: float64(tdy)},
			Hdiv:      int(hdiv),
			Hmax:      int(hmax),
			EncLZS:    lzs,
			EncSymKey: key,
			EncTTL:    ttl,
			EncBitmap: bm,
			Payload:   payload,
			Seq:       int(seq),
		}
		if dir {
			env.Dir = geo.Horizontal
		}
		got, err := Unmarshal(Marshal(env))
		if err != nil {
			return false
		}
		// Normalize nil/empty blob equivalence before DeepEqual.
		norm := func(b []byte) []byte {
			if len(b) == 0 {
				return nil
			}
			return b
		}
		env.EncLZS, got.EncLZS = norm(env.EncLZS), norm(got.EncLZS)
		env.EncSymKey, got.EncSymKey = norm(env.EncSymKey), norm(got.EncSymKey)
		env.EncTTL, got.EncTTL = norm(env.EncTTL), norm(got.EncTTL)
		env.EncBitmap, got.EncBitmap = norm(env.EncBitmap), norm(got.EncBitmap)
		env.Payload, got.Payload = norm(env.Payload), norm(got.Payload)
		return reflect.DeepEqual(env, got)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// Property: random byte strings never panic the decoder.
func TestQuickUnmarshalRobust(t *testing.T) {
	f := func(junk []byte) bool {
		env, err := Unmarshal(junk)
		// Either a clean error or a valid envelope — never a panic
		// (the test harness catches panics as failures).
		return err != nil || env != nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}

func TestFloatFidelity(t *testing.T) {
	env := sampleEnvelope()
	env.TD = geo.Point{X: math.Pi * 100, Y: math.Sqrt2 * 300}
	got, err := Unmarshal(Marshal(env))
	if err != nil {
		t.Fatal(err)
	}
	if got.TD != env.TD {
		t.Fatalf("float fidelity lost: %v vs %v", got.TD, env.TD)
	}
}

// TestLiveEnvelopesFitWire marshals every envelope actually transmitted in
// a run and asserts each fits the configured 512-byte packet and
// round-trips through the codec.
func TestLiveEnvelopesFitWire(t *testing.T) {
	w := build(36, 200, 0, DefaultConfig())
	s, d := w.farPair(500)
	checked := 0
	w.net.Med.TapSend(func(tx medium.Transmission) {
		var env *Envelope
		switch v := tx.Payload.(type) {
		case *ZoneDelivery:
			env = v.Env
		case *gpsr.Packet:
			if e, ok := v.Payload.(*Envelope); ok {
				env = e
			}
		}
		if env == nil {
			return
		}
		checked++
		wire := Marshal(env)
		if len(wire) > 512 {
			t.Errorf("on-air envelope %d bytes > 512", len(wire))
		}
		back, err := Unmarshal(wire)
		if err != nil {
			t.Errorf("unmarshal: %v", err)
			return
		}
		if back.Seq != env.Seq || back.LZD != env.LZD || back.Kind != env.Kind {
			t.Error("codec lost fields on a live envelope")
		}
	})
	for i := 0; i < 5; i++ {
		w.prot.Send(s, d, []byte("payload"))
		w.eng.RunUntil(float64(i+1) * 5)
	}
	if checked == 0 {
		t.Fatal("no envelopes observed")
	}
}

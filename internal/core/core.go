// Package core implements ALERT, the paper's contribution: an anonymous
// location-based routing protocol that hierarchically partitions the
// network field to pick random forwarders, k-anonymity-broadcasts in the
// destination zone, hides sources behind "notify and go" cover traffic, and
// counters intersection attacks with a two-step partial multicast
// (Shen & Zhao, Sections 2-3).
package core

import (
	"fmt"

	"alertmanet/internal/crypt"
	"alertmanet/internal/geo"
	"alertmanet/internal/gpsr"
	"alertmanet/internal/locservice"
	"alertmanet/internal/medium"
	"alertmanet/internal/metrics"
	"alertmanet/internal/node"
	"alertmanet/internal/rng"
	"alertmanet/internal/sim"
	"alertmanet/internal/telemetry"
)

// Config tunes the protocol. The zero value is not valid; start from
// DefaultConfig.
type Config struct {
	// K is the destination k-anonymity parameter: Z_D is sized to hold
	// about K nodes.
	K int
	// H overrides the partition count; 0 derives H = log2(N/K)
	// (Section 2.4).
	H int
	// PacketSize is the on-air size of data packets in bytes (512).
	PacketSize int
	// LegHopBudget is the GPSR TTL for each leg between random
	// forwarders.
	LegHopBudget int

	// NotifyAndGo enables the source-anonymity mechanism of Section 2.6.
	NotifyAndGo bool
	// NotifyT and NotifyT0 bound the random back-off window [t, t+t0]
	// both the source and its covering neighbors draw from.
	NotifyT, NotifyT0 float64
	// CoverSize is the size of covering packets ("several bytes of
	// random data").
	CoverSize int

	// FixedAxisPartition disables the alternating horizontal/vertical
	// cut order and always cuts the same axis. ALERT alternates "to
	// ensure that a pkt approaches D in each step" (Section 2.3); this
	// knob exists to measure that design choice (ablation benchmark).
	FixedAxisPartition bool

	// IntersectionGuard enables the two-step m-of-k multicast with an
	// encrypted bitmap (Section 3.3).
	IntersectionGuard bool
	// M is the number of zone nodes receiving step one; 0 sizes m
	// automatically by greedy coverage so that every zone member hears a
	// holder's re-broadcast (the paper's p_c = 1 condition).
	M int
	// BitmapBits is how many payload bits the last forwarder flips.
	BitmapBits int
	// HoldRelease bounds how long a holder keeps a step-one packet
	// before re-broadcasting even if no follow-up packet arrives.
	HoldRelease float64

	// Confirm enables destination confirmations and source retransmission
	// (Section 2.3: resend when no confirmation arrives in time).
	Confirm bool
	// ConfirmTimeout is the resend timer.
	ConfirmTimeout float64
	// MaxRetries bounds retransmissions per packet.
	MaxRetries int

	// ChargeSessionSetup includes the session's one-time public-key
	// operations (encrypting K_s and L_{Z_S} at S, decrypting them at D)
	// in the first packet's latency. The paper's latency metric charges
	// only the per-packet symmetric cryptography — session establishment
	// happens in the RREQ handshake outside the timed path — so the
	// evaluation harness disables this; it defaults on for honesty in
	// standalone use.
	ChargeSessionSetup bool

	// NAKs enables the destination's gap-triggered negative
	// acknowledgements (Section 2.5: geographic-routing approaches use
	// NAKs rather than ACKs to reduce traffic).
	NAKs bool

	// CompleteTimeout is when an unfinished packet is recorded as
	// undelivered.
	CompleteTimeout float64
}

// DefaultConfig returns the paper's evaluation configuration: k chosen so
// H = 5 at 200 nodes, 512-byte packets, GPSR TTL 10. Notify-and-go and the
// intersection guard are protocol features that default off in throughput
// figures and on in the anonymity experiments, mirroring the paper.
func DefaultConfig() Config {
	return Config{
		K:                  6,
		H:                  0,
		PacketSize:         512,
		LegHopBudget:       10,
		NotifyAndGo:        false,
		NotifyT:            2e-3,
		NotifyT0:           8e-3,
		CoverSize:          16,
		IntersectionGuard:  false,
		M:                  3,
		BitmapBits:         16,
		HoldRelease:        2.5,
		ChargeSessionSetup: true,
		Confirm:            false,
		ConfirmTimeout:     2.0,
		MaxRetries:         2,
		NAKs:               false,
		CompleteTimeout:    8.0,
	}
}

// Counters tallies protocol-level activity.
type Counters struct {
	DataSent        uint64
	Delivered       uint64
	ZoneBroadcasts  uint64
	Step1Multicasts uint64
	Step2Releases   uint64
	CoversSent      uint64
	CoversHeard     uint64
	Acks            uint64
	NAKs            uint64
	Replies         uint64
	Resends         uint64
	LegDrops        uint64
}

// flight is the in-simulation bookkeeping for one application packet.
type flight struct {
	env        *Envelope
	rec        *metrics.PacketRecord
	src, dst   medium.NodeID
	data       []byte // original plaintext, retained for retransmission
	completed  bool
	delivered  bool
	acked      bool
	retries    int
	timeoutID  sim.EventID
	retryID    sim.EventID
	hasTimeout bool
	hasRetry   bool
	// request/reply state
	onReply ReplyFunc
	replied bool
}

type sessKey struct {
	s, d medium.NodeID
}

// session holds the S-D pair's shared cryptographic state: the symmetric
// key K_s (encrypted once under K_pub^D), the encrypted source zone, and
// sequencing.
type session struct {
	key       crypt.SymKey
	encKey    []byte
	encLZS    []byte
	zs        geo.Rect
	nextSeq   int
	flights   map[int]*flight // outstanding, for ack/NAK handling
	estCharge bool            // whether setup cost was charged already

	// destination-side state
	dEstablished bool // D has decrypted the session key
	dKey         crypt.SymKey
	dZS          geo.Rect
	dLastSeq     int
	dReceived    map[int]bool
}

// DeliverFunc observes application-level deliveries (experiments hook it).
type DeliverFunc func(src, dst medium.NodeID, seq int, data []byte, t float64)

// ZoneRecipientsFunc observes the recipient set of each zone delivery step
// along with the destination zone the delivery targeted; the
// intersection-attack experiments use it as ground truth.
type ZoneRecipientsFunc func(seq int, step int, zone geo.Rect, recipients []medium.NodeID, t float64)

// Protocol is one ALERT instance covering the whole network (each node's
// state is keyed by node id, as a per-node daemon would hold it).
type Protocol struct {
	net    *node.Network
	loc    *locservice.Service
	cfg    Config
	router *gpsr.Router
	col    *metrics.Collector
	rnd    *rng.Source
	field  geo.Rect
	hDef   int // derived H when cfg.H == 0

	sessions map[sessKey]*session
	held     map[medium.NodeID][]*heldItem
	counts   Counters

	// OnDeliver, when set, observes every first delivery at D.
	OnDeliver DeliverFunc
	// OnRequest, when set, is the destination-side application handler:
	// it produces the response to a delivered request (Section 2.2's
	// "the destination responds with data").
	OnRequest RequestHandler
	// OnZoneRecipients, when set, observes zone delivery recipient sets.
	OnZoneRecipients ZoneRecipientsFunc

	// tap, when non-nil, observes RF selections and zone broadcasts.
	tap *telemetry.Tap
}

// SetTap attaches a telemetry tap observing ALERT-level routing events (RF
// selections, zone-broadcast steps) and wires the same tap into the
// underlying GPSR router. A nil tap (the default) disables both.
func (p *Protocol) SetTap(t *telemetry.Tap) {
	p.tap = t
	p.router.SetTap(t)
}

// New creates the protocol, derives H if unset, and attaches the medium
// demux handler on every node. An invalid configuration (non-positive
// PacketSize or K) is an error.
func New(net *node.Network, loc *locservice.Service, cfg Config, src *rng.Source) (*Protocol, error) {
	if cfg.PacketSize <= 0 || cfg.K <= 0 {
		return nil, fmt.Errorf("core: invalid config %+v", cfg)
	}
	p := &Protocol{
		net:      net,
		loc:      loc,
		cfg:      cfg,
		router:   gpsr.New(net),
		col:      metrics.NewCollector(),
		rnd:      src.Split("alert"),
		field:    net.Field(),
		sessions: make(map[sessKey]*session),
		held:     make(map[medium.NodeID][]*heldItem),
	}
	p.hDef = cfg.H
	if p.hDef <= 0 {
		p.hDef = geo.PartitionsForK(net.N(), cfg.K)
	}
	for i := 0; i < net.N(); i++ {
		id := medium.NodeID(i)
		net.Med.Attach(id, func(from medium.NodeID, payload any, _ int) {
			switch v := payload.(type) {
			case *gpsr.Packet:
				p.router.Handle(id, v)
			case *ZoneDelivery:
				p.handleZone(id, from, v)
			case *coverPacket:
				// Receivers try to decrypt the (absent) TTL and
				// drop the packet (Section 2.6) — one public-key
				// attempt each.
				p.net.NotePub(1)
				p.counts.CoversHeard++
			}
		})
	}
	return p, nil
}

// MustNew is New for callers whose configuration is known good (tests and
// presets); it panics on error.
func MustNew(net *node.Network, loc *locservice.Service, cfg Config, src *rng.Source) *Protocol {
	p, err := New(net, loc, cfg, src)
	if err != nil {
		panic(err)
	}
	return p
}

// H returns the partition depth in use.
func (p *Protocol) H() int { return p.hDef }

// Collector returns the metrics collector for this run.
func (p *Protocol) Collector() *metrics.Collector { return p.col }

// Counters returns protocol counters.
func (p *Protocol) Counters() Counters { return p.counts }

// Router exposes the underlying GPSR router (its counters feed the
// evaluation).
func (p *Protocol) Router() *gpsr.Router { return p.router }

// DestZoneFor returns the destination zone ALERT would compute for a node's
// currently registered position — the paper's Z_D (experiments use it to
// track remaining nodes).
func (p *Protocol) DestZoneFor(dst medium.NodeID) geo.Rect {
	e, _ := p.loc.Lookup(dst)
	return geo.DestZone(p.field, e.Pos, p.hDef, geo.Vertical)
}

func (p *Protocol) session(src, dst medium.NodeID) *session {
	k := sessKey{src, dst}
	if s, ok := p.sessions[k]; ok {
		return s
	}
	s := &session{
		flights:   make(map[int]*flight),
		dReceived: make(map[int]bool),
		dLastSeq:  -1,
	}
	p.sessions[k] = s
	return s
}

// Destination-zone delivery (Sections 2.3 and 3.3): the last random
// forwarder either broadcasts to the k nodes of Z_D (plain k-anonymity), or
// — with the intersection guard on — multicasts a bit-flipped copy to m of
// the k nodes, which hold it and re-broadcast when the session's next
// packet arrives, so the attacker's recipient-set intersection never pins
// down D.

package core

import (
	"alertmanet/internal/crypt"
	"alertmanet/internal/geo"
	"alertmanet/internal/medium"
)

// heldItem is a step-one packet parked at a holder node.
type heldItem struct {
	holder   medium.NodeID
	zdl      *ZoneDelivery
	released bool
}

// zoneDeliver runs at the last random forwarder once it (or the partition
// logic) determines the packet has reached Z_D.
func (p *Protocol) zoneDeliver(at medium.NodeID, env *Envelope) {
	f := env.flight
	if f != nil {
		f.rec.Path = append(f.rec.Path, at)
	}
	// The holder itself may be the addressee (the destination can end up
	// as the last random forwarder, or the source can relay its own
	// confirmation). It processes the packet like any receiver would —
	// and still performs the zone broadcast below, so observers see the
	// same k-anonymity traffic pattern either way.
	p.recognize(at, env)
	if env.Kind != KindData || env.isReply || !p.cfg.IntersectionGuard {
		if f != nil {
			f.rec.Hops++
		}
		if f == nil && env.isReply {
			env.replyHops++
		}
		p.counts.ZoneBroadcasts++
		if env.relayed == nil {
			env.relayed = make(map[medium.NodeID]bool)
		}
		env.relayed[at] = true // the origin never re-relays its own broadcast
		if p.tap != nil {
			p.tap.ZoneBroadcast(p.net.Eng.Now(), envTrace(env), int(at), 1)
		}
		p.net.Med.Broadcast(at, &ZoneDelivery{Env: env, Step: 1}, p.sizeOf(env))
		return
	}

	// Intersection guard: pick m holder nodes from the neighbors inside
	// Z_D (the last RF knows zone membership from hello beacons).
	var candidates []medium.NodeID
	for _, nb := range p.net.Med.Neighbors(at) {
		if env.LZD.Contains(nb.Pos) {
			candidates = append(candidates, nb.ID)
		}
	}
	if len(candidates) == 0 {
		// Nobody else visible in the zone: fall back to broadcast.
		if f != nil {
			f.rec.Hops++
		}
		p.counts.ZoneBroadcasts++
		if p.tap != nil {
			p.tap.ZoneBroadcast(p.net.Eng.Now(), envTrace(env), int(at), 1)
		}
		p.net.Med.Broadcast(at, &ZoneDelivery{Env: env, Step: 1}, p.sizeOf(env))
		return
	}
	var holders []medium.NodeID
	if p.cfg.M > 0 {
		m := p.cfg.M
		if m > len(candidates) {
			m = len(candidates)
		}
		perm := p.rnd.Perm(len(candidates))
		for _, idx := range perm[:m] {
			holders = append(holders, candidates[idx])
		}
	} else {
		holders = p.coverHolders(at, env, candidates)
	}

	// Flip bits and encrypt the mask under K_pub^D so the broadcast copies
	// are not bit-identical on air (Section 3.3). The envelope carries
	// D's public key — a pseudonymous value that identifies no position.
	mask := crypt.NewBitmap(len(env.Payload), p.cfg.BitmapBits, p.rnd)
	mutated := *env
	mutated.Payload = mask.Apply(env.Payload)
	if env.DPub != nil {
		if ct, err := p.net.Suite.EncryptPub(env.DPub, mask); err == nil {
			mutated.EncBitmap = ct
		}
	}
	p.counts.Step1Multicasts++
	if f != nil {
		f.rec.Hops += len(holders)
	}
	// Charge the mask encryption (one public-key operation) before the
	// multicast leaves.
	p.net.NotePub(1)
	p.net.Eng.Schedule(p.net.Costs.PubEncrypt, func() {
		if p.tap != nil {
			p.tap.ZoneBroadcast(p.net.Eng.Now(), envTrace(env), int(at), 1)
		}
		zdl := &ZoneDelivery{Env: &mutated, Step: 1}
		for _, h := range holders {
			p.net.Med.Unicast(at, h, zdl, p.sizeOf(env))
		}
	})
}

// coverHolders sizes m automatically (Config.M == 0): Section 3.3 requires
// the coverage fraction p_c to reach 1, i.e. every zone member must be
// within one hop of some holder when the held packets are re-broadcast.
// A greedy set cover over the beaconed zone members achieves that with the
// fewest holders — "a moderate value of m considering node transmission
// range; a lower transmission range leads to a higher value of m".
func (p *Protocol) coverHolders(at medium.NodeID, env *Envelope,
	candidates []medium.NodeID) []medium.NodeID {
	rangeM := p.net.Med.Params().Range
	// Candidate and member positions come from the last hello beacons.
	pos := map[medium.NodeID]geo.Point{}
	var members []medium.NodeID
	for _, nb := range p.net.Med.Neighbors(at) {
		if env.LZD.Contains(nb.Pos) {
			pos[nb.ID] = nb.Pos
			members = append(members, nb.ID)
		}
	}
	uncovered := map[medium.NodeID]bool{}
	for _, id := range members {
		uncovered[id] = true
	}
	var holders []medium.NodeID
	// Random start for anonymity, then greedy max-coverage.
	order := p.rnd.Perm(len(candidates))
	for len(uncovered) > 0 && len(holders) < len(candidates) {
		best := -1
		bestCover := -1
		for _, idx := range order {
			id := candidates[idx]
			taken := false
			for _, h := range holders {
				if h == id {
					taken = true
					break
				}
			}
			if taken {
				continue
			}
			cover := 0
			for m := range uncovered {
				if pos[id].Dist(pos[m]) <= rangeM {
					cover++
				}
			}
			if cover > bestCover {
				best, bestCover = idx, cover
			}
		}
		if best < 0 || bestCover == 0 {
			break
		}
		h := candidates[best]
		holders = append(holders, h)
		for m := range uncovered {
			if pos[h].Dist(pos[m]) <= rangeM {
				delete(uncovered, m)
			}
		}
	}
	if len(holders) == 0 && len(candidates) > 0 {
		holders = append(holders, candidates[p.rnd.Intn(len(candidates))])
	}
	return holders
}

func (p *Protocol) sizeOf(env *Envelope) int {
	if env.Kind == KindData {
		return p.cfg.PacketSize
	}
	return 64 // control packets: NAK/ack with empty data field
}

// handleZone runs at every node that receives a zone delivery (step one
// multicast/broadcast or a step-two release).
func (p *Protocol) handleZone(at medium.NodeID, _ medium.NodeID, zdl *ZoneDelivery) {
	env := zdl.Env
	if p.OnZoneRecipients != nil {
		p.OnZoneRecipients(env.Seq, zdl.Step, env.LZD, []medium.NodeID{at}, p.net.Eng.Now())
	}
	if p.cfg.IntersectionGuard && env.Kind == KindData && zdl.Step == 1 {
		p.releaseHeld(at, env)
		p.hold(at, zdl)
	}
	// Zone broadcast propagation: a step-one broadcast is relayed once by
	// every zone member that newly hears it, so the packet reaches all k
	// nodes of Z_D even when the broadcaster sits near (or beyond) the
	// zone edge — the "broadcasts the pkt to the k nodes" of Section 2.3,
	// and the reason ALERT out-delivers GPSR when destinations drift
	// (Fig. 16b). The intersection guard replaces this with its own
	// two-step delivery.
	if env.Kind == KindData && zdl.Step == 1 && !p.cfg.IntersectionGuard &&
		env.LZD.Contains(p.net.Med.PositionNow(at)) {
		if env.relayed == nil {
			env.relayed = make(map[medium.NodeID]bool)
		}
		if !env.relayed[at] {
			env.relayed[at] = true
			if p.tap != nil {
				p.tap.ZoneBroadcast(p.net.Eng.Now(), envTrace(env), int(at), 1)
			}
			p.net.Med.Broadcast(at, zdl, p.sizeOf(env))
		}
	}
	p.recognize(at, env)
}

// recognize checks whether the node holding or receiving the envelope is
// its addressee — the destination for data (pseudonym match), the source
// for confirmations and NAKs — and processes it if so.
func (p *Protocol) recognize(at medium.NodeID, env *Envelope) {
	switch env.Kind {
	case KindData:
		if env.isReply {
			p.deliverReply(at, env)
			return
		}
		nd := p.net.Node(at)
		if env.PD == nd.Pseudonym || env.PD == nd.RegisteredPseudonym {
			p.deliverData(at, env)
		}
	case KindAck:
		if env.ackFor != nil && at == env.ackFor.src {
			p.handleAck(env)
		}
	case KindNAK:
		if env.ackFor != nil && at == env.ackFor.src {
			p.handleNAK(env)
		}
	}
}

// hold parks a step-one packet at a holder until the next packet (or the
// HoldRelease timer) triggers its one-hop re-broadcast.
func (p *Protocol) hold(at medium.NodeID, zdl *ZoneDelivery) {
	item := &heldItem{holder: at, zdl: zdl}
	p.held[at] = append(p.held[at], item)
	if p.cfg.HoldRelease > 0 {
		p.net.Eng.Schedule(p.cfg.HoldRelease, func() { p.release(item) })
	}
}

// releaseHeld re-broadcasts every packet this node holds for the same
// session with an older sequence number — the "upon the arrival of the next
// packet" trigger of Fig. 5c.
func (p *Protocol) releaseHeld(at medium.NodeID, trigger *Envelope) {
	items := p.held[at]
	for _, item := range items {
		e := item.zdl.Env
		if e.PS == trigger.PS && e.PD == trigger.PD && e.Seq < trigger.Seq {
			p.release(item)
		}
	}
}

// release broadcasts a held packet one hop and retires the hold.
func (p *Protocol) release(item *heldItem) {
	if item.released {
		return
	}
	item.released = true
	// Remove from the holder's list.
	items := p.held[item.holder]
	for i, it := range items {
		if it == item {
			p.held[item.holder] = append(items[:i], items[i+1:]...)
			break
		}
	}
	p.counts.Step2Releases++
	env := item.zdl.Env
	if env.flight != nil {
		env.flight.rec.Hops++
	}
	if p.tap != nil {
		p.tap.ZoneBroadcast(p.net.Eng.Now(), envTrace(env), int(item.holder), 2)
	}
	p.net.Med.Broadcast(item.holder, &ZoneDelivery{Env: env, Step: 2}, p.sizeOf(env))
}

// deliverData runs at the destination: decrypt, dedup, record, confirm.
func (p *Protocol) deliverData(at medium.NodeID, env *Envelope) {
	f := env.flight
	if f == nil || f.delivered {
		return
	}
	sess := p.session(f.src, f.dst)
	nd := p.net.Node(at)

	// Compose the decryption charges: first packet of a session costs
	// the public-key decryptions of K_s and L_{Z_S}; every packet costs
	// one symmetric open; a guarded packet costs the bitmap decryption.
	charge := p.net.Costs.SymDecrypt
	p.net.NoteSym(1)
	if !sess.dEstablished {
		p.net.NotePub(2)
		if p.cfg.ChargeSessionSetup {
			charge += 2 * p.net.Costs.PubDecrypt
		}
	}
	if env.EncBitmap != nil {
		p.net.NotePub(1)
		charge += p.net.Costs.PubDecrypt
	}

	p.net.Eng.Schedule(charge, func() {
		if f.delivered || (f.completed && !f.delivered) {
			// Duplicate, or already written off as undelivered.
			return
		}
		if !sess.dEstablished {
			keyRaw, err := p.net.Suite.DecryptPub(nd.Priv, env.EncSymKey)
			if err != nil || len(keyRaw) != len(sess.dKey) {
				return // not actually for us
			}
			copy(sess.dKey[:], keyRaw)
			if zsRaw, err := p.net.Suite.DecryptPub(nd.Priv, env.EncLZS); err == nil {
				if zs, err := decodeRect(zsRaw); err == nil {
					sess.dZS = zs
				}
			}
			sess.dEstablished = true
		}
		payload := env.Payload
		if env.EncBitmap != nil {
			maskRaw, err := p.net.Suite.DecryptPub(nd.Priv, env.EncBitmap)
			if err != nil || len(maskRaw) != len(payload) {
				return
			}
			payload = crypt.Bitmap(maskRaw).Apply(payload)
		}
		plain, err := crypt.SymOpen(sess.dKey, payload)
		if err != nil {
			return
		}
		f.delivered = true
		f.rec.Path = append(f.rec.Path, at)
		now := p.net.Eng.Now()
		p.counts.Delivered++
		p.complete(f, now, true)
		if p.OnDeliver != nil {
			p.OnDeliver(f.src, f.dst, env.Seq, plain, now)
		}
		if env.isRequest {
			p.respond(at, env, sess, plain)
		}
		p.destFeedback(at, env, sess, f)
	})
}

// destFeedback sends the confirmation and, on sequence gaps, a NAK, both
// routed anonymously back to the source zone Z_S (decrypted from EncLZS).
func (p *Protocol) destFeedback(at medium.NodeID, env *Envelope, sess *session, f *flight) {
	sess.dReceived[env.Seq] = true
	if p.cfg.Confirm && !sess.dZS.Empty() {
		ack := &Envelope{
			Kind:   KindAck,
			PS:     p.net.Node(at).Pseudonym,
			PD:     env.PS,
			LZD:    sess.dZS,
			Dir:    p.randomDir(),
			Hmax:   p.hDef,
			Zone:   p.field,
			Seq:    env.Seq,
			ackFor: f,
		}
		p.counts.Acks++
		p.route(at, ack)
	}
	if p.cfg.NAKs && !sess.dZS.Empty() && env.Seq > sess.dLastSeq+1 {
		var missing []int
		for s := sess.dLastSeq + 1; s < env.Seq; s++ {
			if !sess.dReceived[s] {
				missing = append(missing, s)
			}
		}
		if len(missing) > 0 {
			nak := &Envelope{
				Kind:    KindNAK,
				PS:      p.net.Node(at).Pseudonym,
				PD:      env.PS,
				LZD:     sess.dZS,
				Dir:     p.randomDir(),
				Hmax:    p.hDef,
				Zone:    p.field,
				Seq:     env.Seq,
				ackFor:  f,
				nakSeqs: missing,
			}
			p.counts.NAKs++
			p.route(at, nak)
		}
	}
	if env.Seq > sess.dLastSeq {
		sess.dLastSeq = env.Seq
	}
}

// handleAck runs at the source when a confirmation arrives.
func (p *Protocol) handleAck(env *Envelope) {
	f := env.ackFor
	f.acked = true
	if f.hasRetry {
		p.net.Eng.Cancel(f.retryID)
		f.hasRetry = false
	}
}

// handleNAK runs at the source: resend every sequence number the
// destination reported missing.
func (p *Protocol) handleNAK(env *Envelope) {
	sess := p.session(env.ackFor.src, env.ackFor.dst)
	for _, seq := range env.nakSeqs {
		if fl, ok := sess.flights[seq]; ok && !fl.delivered && !fl.completed {
			p.counts.Resends++
			p.resend(fl)
		}
	}
}

// Packet format of ALERT (Section 2.5, Fig. 4). A single universal layout
// serves RREQ, RREP and NAK: pseudonyms of the endpoints, the positions of
// the H-th partitioned source and destination zones, the current temporary
// destination, the partition-direction bit, the division counters h and H,
// the encrypted session key, the encrypted TTL (source-anonymity cover
// discrimination), and the encrypted Bitmap (intersection-attack defence).

package core

import (
	"encoding/binary"
	"errors"
	"math"

	"alertmanet/internal/crypt"
	"alertmanet/internal/geo"
	"alertmanet/internal/medium"
	"alertmanet/internal/telemetry"
)

// Kind distinguishes the three packet roles sharing ALERT's universal
// format. NAK packets carry an empty data field.
type Kind uint8

const (
	// KindData is a routed application packet (RREQ/RREP role).
	KindData Kind = iota
	// KindAck is the destination's delivery confirmation to the source.
	KindAck
	// KindNAK reports lost sequence numbers back to the source.
	KindNAK
)

func (k Kind) String() string {
	switch k {
	case KindData:
		return "data"
	case KindAck:
		return "ack"
	default:
		return "nak"
	}
}

// Envelope is an ALERT packet as it travels between random forwarders.
//
// Fields prefixed Enc hold real ciphertext: a forwarder relaying the
// envelope cannot read the source zone, the session key, the TTL or the
// bitmap — tests assert this. The cleartext fields (L_{Z_D}, TD, h, H, the
// direction bit) are exactly the ones the paper sends in the clear, because
// forwarders need them to route.
//
// Zone mirrors the current partition zone. On the wire the paper encodes it
// implicitly — it is recoverable from the division history — but carrying
// the rectangle explicitly keeps each forwarder's partition step
// self-contained.
type Envelope struct {
	Kind Kind
	// PS and PD are the source and destination pseudonyms.
	PS, PD crypt.Pseudonym
	// LZD is the position of the H-th partitioned destination zone.
	LZD geo.Rect
	// EncLZS is the source zone position encrypted under the
	// destination's public key (only D can learn where to send replies).
	EncLZS []byte
	// TD is the currently selected temporary destination.
	TD geo.Point
	// Dir is the partition direction bit, flipped by each RF.
	Dir geo.Direction
	// Hdiv is h, the divisions performed so far; Hmax is H.
	Hdiv, Hmax int
	// Zone is the current partition zone (see type comment).
	Zone geo.Rect
	// DPub is the destination's public key, carried so the last random
	// forwarder can encrypt the Bitmap under K_pub^D (Section 3.3). A
	// public key is pseudonymous: it reveals neither identity nor
	// position to observers without the location service's identity
	// mapping.
	DPub crypt.PubKey
	// EncSymKey is the session key K_s encrypted under K_pub^D.
	EncSymKey []byte
	// EncTTL is the TTL field encrypted under the first relay's public
	// key; covering packets carry nil here, so only the true next relay
	// can validate and forward (Section 2.6).
	EncTTL []byte
	// EncBitmap is the bit-flip mask encrypted under K_pub^D
	// (Section 3.3); nil when the intersection guard is off.
	EncBitmap []byte
	// Payload is the application data encrypted under the session key
	// (after bitmap mutation when the guard is active). Empty for NAKs.
	Payload []byte
	// Seq is the session sequence number.
	Seq int
	// finalLeg marks the last GPSR leg into Z_D itself (set once h
	// reaches H or the partition can no longer separate); on the wire
	// this is implied by h == H.
	finalLeg bool
	// relayed tracks which zone nodes already re-broadcast this envelope
	// during the Z_D zone broadcast, so the one-round in-zone relay
	// terminates (sim bookkeeping; real nodes dedup by packet id).
	relayed map[medium.NodeID]bool
	// isRequest marks an RREQ expecting a response; isReply marks the
	// RREP carrying it. replyFor links a reply to its request's flight
	// (in a real deployment the link is the session key + sequence
	// number, both inside encrypted fields). replyHops accumulates the
	// reply leg's transmissions for the request record's hop count.
	isRequest bool
	isReply   bool
	replyFor  *flight
	replyHops int

	// flight is simulation bookkeeping (metrics record, retry state);
	// it stands outside the wire format.
	flight *flight
	// ackFor links a KindAck/KindNAK envelope to the flight(s) it
	// confirms; in a real deployment this is part of the encrypted
	// payload only S can read.
	ackFor *flight
	// nakSeqs lists the sequence numbers a NAK reports missing.
	nakSeqs []int
}

// ZoneDelivery is the last-leg payload inside the destination zone.
type ZoneDelivery struct {
	Env *Envelope
	// Step is 1 for the initial broadcast/multicast by the last random
	// forwarder, 2 for a holder's delayed one-hop re-broadcast
	// (Section 3.3, Fig. 5c).
	Step int
}

// envTrace returns the telemetry packet id an envelope's events attribute
// to: its flight's metrics sequence number, or NoTrace for reply/ack/NAK
// envelopes that have no flight of their own.
func envTrace(env *Envelope) int {
	if env.flight != nil {
		return env.flight.rec.Seq
	}
	return telemetry.NoTrace
}

// TelemetryTrace implements telemetry.Traceable, so frames carrying a zone
// delivery attribute to the packet that triggered it.
func (z *ZoneDelivery) TelemetryTrace() int { return envTrace(z.Env) }

// coverPacket is notify-and-go cover traffic: a few random bytes with no
// valid (decryptable) TTL, dropped by every receiver after a failed
// decryption attempt (Section 2.6).
type coverPacket struct {
	Junk []byte
}

// encodeRect serializes a zone position (two corners) for encryption.
func encodeRect(r geo.Rect) []byte {
	buf := make([]byte, 32)
	binary.BigEndian.PutUint64(buf[0:], math.Float64bits(r.Min.X))
	binary.BigEndian.PutUint64(buf[8:], math.Float64bits(r.Min.Y))
	binary.BigEndian.PutUint64(buf[16:], math.Float64bits(r.Max.X))
	binary.BigEndian.PutUint64(buf[24:], math.Float64bits(r.Max.Y))
	return buf
}

// decodeRect parses a zone position serialized by encodeRect.
func decodeRect(buf []byte) (geo.Rect, error) {
	if len(buf) != 32 {
		return geo.Rect{}, errors.New("core: malformed zone position")
	}
	return geo.Rect{
		Min: geo.Point{
			X: math.Float64frombits(binary.BigEndian.Uint64(buf[0:])),
			Y: math.Float64frombits(binary.BigEndian.Uint64(buf[8:])),
		},
		Max: geo.Point{
			X: math.Float64frombits(binary.BigEndian.Uint64(buf[16:])),
			Y: math.Float64frombits(binary.BigEndian.Uint64(buf[24:])),
		},
	}, nil
}

// encodeTTL serializes a TTL value for the EncTTL field.
func encodeTTL(ttl int) []byte {
	var buf [2]byte
	binary.BigEndian.PutUint16(buf[:], uint16(ttl))
	return buf[:]
}

// decodeTTL parses an EncTTL plaintext.
func decodeTTL(buf []byte) (int, error) {
	if len(buf) != 2 {
		return 0, errors.New("core: malformed TTL")
	}
	return int(binary.BigEndian.Uint16(buf)), nil
}

package core

import (
	"bytes"
	"testing"

	"alertmanet/internal/crypt"
	"alertmanet/internal/geo"
	"alertmanet/internal/locservice"
	"alertmanet/internal/medium"
	"alertmanet/internal/mobility"
	"alertmanet/internal/node"
	"alertmanet/internal/rng"
	"alertmanet/internal/sim"
)

var field = geo.Rect{Min: geo.Point{X: 0, Y: 0}, Max: geo.Point{X: 1000, Y: 1000}}

type world struct {
	eng  *sim.Engine
	net  *node.Network
	loc  *locservice.Service
	prot *Protocol
	mob  mobility.Model
}

func build(seed int64, n int, speed float64, cfg Config) *world {
	eng := sim.NewEngine()
	src := rng.New(seed)
	var mob mobility.Model
	if speed <= 0 {
		mob = mobility.NewStatic(field, n, src)
	} else {
		mob = mobility.NewRandomWaypoint(field, n, mobility.Fixed(speed), src)
	}
	med := medium.MustNew(eng, mob, medium.DefaultParams(), src)
	net := node.NewNetwork(eng, med, crypt.NewFastSuite(src), crypt.DefaultCostModel(),
		node.DefaultConfig(), src)
	loc := locservice.New(net, locservice.DefaultConfig())
	prot := MustNew(net, loc, cfg, src)
	return &world{eng: eng, net: net, loc: loc, prot: prot, mob: mob}
}

// farPair returns a source/destination pair at least minDist apart.
func (w *world) farPair(minDist float64) (medium.NodeID, medium.NodeID) {
	for s := 0; s < w.net.N(); s++ {
		for d := s + 1; d < w.net.N(); d++ {
			if w.mob.Position(s, 0).Dist(w.mob.Position(d, 0)) >= minDist {
				return medium.NodeID(s), medium.NodeID(d)
			}
		}
	}
	panic("no far pair found")
}

func TestBasicDelivery(t *testing.T) {
	w := build(1, 200, 0, DefaultConfig())
	s, d := w.farPair(600)
	var gotData []byte
	w.prot.OnDeliver = func(src, dst medium.NodeID, seq int, data []byte, _ float64) {
		if src != s || dst != d || seq != 0 {
			t.Errorf("deliver src=%v dst=%v seq=%v", src, dst, seq)
		}
		gotData = data
	}
	rec, _ := w.prot.Send(s, d, []byte("hello alert"))
	w.eng.RunUntil(30)
	if !rec.Delivered {
		t.Fatal("packet not delivered")
	}
	if !bytes.Equal(gotData, []byte("hello alert")) {
		t.Fatalf("payload corrupted: %q", gotData)
	}
	if rec.Hops < 2 {
		t.Fatalf("hops = %d, want multi-hop for a 600+ m pair", rec.Hops)
	}
	if rec.Latency() <= 0 {
		t.Fatal("latency should be positive")
	}
	if w.prot.Counters().Delivered != 1 {
		t.Fatalf("counters = %+v", w.prot.Counters())
	}
}

func TestDeliveryLatencyIncludesCrypto(t *testing.T) {
	w := build(2, 200, 0, DefaultConfig())
	s, d := w.farPair(500)
	rec, _ := w.prot.Send(s, d, []byte("x"))
	w.eng.RunUntil(30)
	if !rec.Delivered {
		t.Skip("pair undeliverable in this placement")
	}
	// First packet of a session: SymEncrypt + 2 PubEncrypt at S, plus
	// SymDecrypt + 2 PubDecrypt at D = at least 1.006 s with defaults.
	min := w.net.Costs.SymEncrypt + 2*w.net.Costs.PubEncrypt +
		w.net.Costs.SymDecrypt + 2*w.net.Costs.PubDecrypt
	if rec.Latency() < min {
		t.Fatalf("latency %v below session-setup crypto charges %v", rec.Latency(), min)
	}
}

func TestSecondPacketCheaper(t *testing.T) {
	w := build(3, 200, 0, DefaultConfig())
	s, d := w.farPair(500)
	rec1, _ := w.prot.Send(s, d, []byte("first"))
	w.eng.RunUntil(30)
	rec2, _ := w.prot.Send(s, d, []byte("second"))
	w.eng.RunUntil(60)
	if !rec1.Delivered || !rec2.Delivered {
		t.Skip("pair undeliverable in this placement")
	}
	if rec2.Latency() >= rec1.Latency() {
		t.Fatalf("second packet (%v) should be cheaper than session setup (%v)",
			rec2.Latency(), rec1.Latency())
	}
	// Second packet pays only symmetric crypto: well under one pub op.
	if rec2.Latency() >= w.net.Costs.PubEncrypt {
		t.Fatalf("established-session latency %v should be below a public-key op", rec2.Latency())
	}
}

func TestDestZoneContainsDestination(t *testing.T) {
	w := build(4, 200, 0, DefaultConfig())
	s, d := w.farPair(400)
	zd := w.prot.DestZoneFor(d)
	if !zd.Contains(w.net.Node(d).Position()) {
		t.Fatal("Z_D does not contain D")
	}
	// Z_D area is G/2^H.
	wantArea := field.Area() / float64(int(1)<<w.prot.H())
	if zd.Area() != wantArea {
		t.Fatalf("Z_D area %v, want %v", zd.Area(), wantArea)
	}
	_ = s
}

func TestDefaultHFromK(t *testing.T) {
	w := build(5, 200, 0, DefaultConfig())
	// N=200, K=6 -> H = round(log2(200/6)) = 5, the paper's default.
	if w.prot.H() != 5 {
		t.Fatalf("H = %d, want 5", w.prot.H())
	}
	cfg := DefaultConfig()
	cfg.H = 3
	w2 := build(5, 200, 0, cfg)
	if w2.prot.H() != 3 {
		t.Fatal("explicit H not honored")
	}
}

func TestRandomForwardersUsed(t *testing.T) {
	w := build(6, 200, 0, DefaultConfig())
	s, d := w.farPair(800)
	rec, _ := w.prot.Send(s, d, []byte("x"))
	w.eng.RunUntil(30)
	if !rec.Delivered {
		t.Skip("pair undeliverable")
	}
	if rec.RFs < 1 {
		t.Fatalf("RFs = %d; a cross-field route must use random forwarders", rec.RFs)
	}
}

func TestRoutesVaryAcrossPackets(t *testing.T) {
	// ALERT's core anonymity property: consecutive packets of the same
	// S-D pair take different paths (Section 3.1).
	w := build(7, 200, 0, DefaultConfig())
	s, d := w.farPair(700)
	paths := map[string]bool{}
	const packets = 8
	for i := 0; i < packets; i++ {
		rec, _ := w.prot.Send(s, d, []byte("x"))
		w.eng.RunUntil(float64(i+1) * 20)
		key := ""
		for _, id := range rec.Path {
			key += string(rune(id)) + ","
		}
		paths[key] = true
	}
	if len(paths) < packets/2 {
		t.Fatalf("only %d distinct paths out of %d packets", len(paths), packets)
	}
}

func TestPayloadEncryptedOnAir(t *testing.T) {
	w := build(8, 200, 0, DefaultConfig())
	s, d := w.farPair(500)
	secret := []byte("troop positions: grid 7A")
	var observed [][]byte
	w.net.Med.TapSend(func(tx medium.Transmission) {
		switch v := tx.Payload.(type) {
		case *ZoneDelivery:
			observed = append(observed, v.Env.Payload, v.Env.EncLZS, v.Env.EncSymKey)
		}
	})
	w.prot.Send(s, d, secret)
	w.eng.RunUntil(30)
	if len(observed) == 0 {
		t.Skip("no zone delivery observed")
	}
	for _, blob := range observed {
		if bytes.Contains(blob, secret[:10]) {
			t.Fatal("plaintext visible on air")
		}
	}
}

func TestForwarderCannotReadSourceZone(t *testing.T) {
	w := build(9, 200, 0, DefaultConfig())
	s, d := w.farPair(500)
	var encLZS []byte
	w.net.Med.TapSend(func(tx medium.Transmission) {
		if zd, ok := tx.Payload.(*ZoneDelivery); ok && encLZS == nil {
			encLZS = zd.Env.EncLZS
		}
	})
	w.prot.Send(s, d, []byte("x"))
	w.eng.RunUntil(30)
	if encLZS == nil {
		t.Skip("no envelope observed")
	}
	// A non-destination node's key cannot decrypt L_{Z_S}.
	eavesdropper := w.net.Node((d + 1) % medium.NodeID(w.net.N()))
	if eavesdropper.ID == s || eavesdropper.ID == d {
		eavesdropper = w.net.Node((d + 2) % medium.NodeID(w.net.N()))
	}
	if _, err := w.net.Suite.DecryptPub(eavesdropper.Priv, encLZS); err == nil {
		t.Fatal("eavesdropper decrypted the source zone")
	}
	// The destination can.
	if _, err := w.net.Suite.DecryptPub(w.net.Node(d).Priv, encLZS); err != nil {
		t.Fatalf("destination failed to decrypt source zone: %v", err)
	}
}

func TestDeliveryDedup(t *testing.T) {
	w := build(10, 200, 0, DefaultConfig())
	s, d := w.farPair(500)
	deliveries := 0
	w.prot.OnDeliver = func(medium.NodeID, medium.NodeID, int, []byte, float64) {
		deliveries++
	}
	w.prot.Send(s, d, []byte("x"))
	w.eng.RunUntil(30)
	if deliveries > 1 {
		t.Fatalf("duplicate deliveries: %d", deliveries)
	}
}

func TestCompleteTimeoutMarksUndelivered(t *testing.T) {
	// Two isolated clusters guarantee failure.
	eng := sim.NewEngine()
	src := rng.New(11)
	pos := make([]geo.Point, 10)
	for i := 0; i < 5; i++ {
		pos[i] = geo.Point{X: float64(i) * 50, Y: 100}
	}
	for i := 5; i < 10; i++ {
		pos[i] = geo.Point{X: float64(i) * 50, Y: 900}
	}
	mob := &pinned{pos: pos}
	med := medium.MustNew(eng, mob, medium.DefaultParams(), src)
	net := node.NewNetwork(eng, med, crypt.NewFastSuite(src), crypt.ZeroCostModel(),
		node.Config{}, src)
	loc := locservice.New(net, locservice.DefaultConfig())
	prot := MustNew(net, loc, DefaultConfig(), src)
	rec, _ := prot.Send(0, 9, []byte("x"))
	eng.RunUntil(30)
	if rec.Delivered {
		t.Fatal("cross-island delivery should fail")
	}
	if prot.Collector().Completed() != 1 {
		t.Fatal("flight never completed")
	}
}

type pinned struct{ pos []geo.Point }

func (p *pinned) Position(id int, _ float64) geo.Point { return p.pos[id] }
func (p *pinned) N() int                               { return len(p.pos) }
func (p *pinned) Field() geo.Rect                      { return field }

func TestNotifyAndGoCoverTraffic(t *testing.T) {
	cfg := DefaultConfig()
	cfg.NotifyAndGo = true
	w := build(12, 200, 0, cfg)
	s, d := w.farPair(500)
	covers := 0
	w.net.Med.TapSend(func(tx medium.Transmission) {
		if _, ok := tx.Payload.(*coverPacket); ok {
			covers++
		}
	})
	rec, _ := w.prot.Send(s, d, []byte("x"))
	w.eng.RunUntil(30)
	nNeighbors := len(w.net.Med.Neighbors(s))
	if covers == 0 {
		t.Fatal("notify-and-go sent no covering packets")
	}
	if covers != nNeighbors {
		t.Fatalf("covers = %d, neighbors = %d (eta-anonymity should use all)",
			covers, nNeighbors)
	}
	if !rec.Delivered {
		t.Skip("pair undeliverable")
	}
	if w.prot.Counters().CoversSent == 0 || w.prot.Counters().CoversHeard == 0 {
		t.Fatalf("counters = %+v", w.prot.Counters())
	}
}

func TestNotifyAndGoDelaysWithinWindow(t *testing.T) {
	cfg := DefaultConfig()
	cfg.NotifyAndGo = true
	cfg.NotifyT = 0.5
	cfg.NotifyT0 = 1.0
	w := build(13, 200, 0, cfg)
	s, d := w.farPair(400)
	var firstDataTx float64 = -1
	w.net.Med.TapSend(func(tx medium.Transmission) {
		if firstDataTx < 0 {
			if _, ok := tx.Payload.(*coverPacket); !ok {
				firstDataTx = tx.At
			}
		}
	})
	w.prot.Send(s, d, []byte("x"))
	w.eng.RunUntil(30)
	if firstDataTx < 0 {
		t.Skip("no data transmission")
	}
	// The real packet waits at least t (plus crypto charges).
	if firstDataTx < cfg.NotifyT {
		t.Fatalf("real packet left at %v, before the back-off window start %v",
			firstDataTx, cfg.NotifyT)
	}
}

func TestIntersectionGuardDelivery(t *testing.T) {
	cfg := DefaultConfig()
	cfg.IntersectionGuard = true
	cfg.HoldRelease = 1.0
	w := build(14, 200, 0, cfg)
	s, d := w.farPair(500)
	delivered := 0
	w.prot.OnDeliver = func(medium.NodeID, medium.NodeID, int, []byte, float64) {
		delivered++
	}
	for i := 0; i < 5; i++ {
		w.prot.Send(s, d, []byte("pkt"))
		w.eng.RunUntil(float64(i+1) * 10)
	}
	w.eng.RunUntil(80)
	if delivered < 4 {
		t.Fatalf("guard mode delivered only %d/5", delivered)
	}
	c := w.prot.Counters()
	if c.Step1Multicasts == 0 {
		t.Fatal("no step-one multicasts")
	}
	if c.Step2Releases == 0 {
		t.Fatal("no step-two releases")
	}
}

func TestIntersectionGuardRecipientSetsSmall(t *testing.T) {
	cfg := DefaultConfig()
	cfg.IntersectionGuard = true
	cfg.M = 3
	w := build(15, 200, 0, cfg)
	s, d := w.farPair(500)
	step1 := map[int]map[medium.NodeID]bool{}
	w.prot.OnZoneRecipients = func(seq, step int, _ geo.Rect, rs []medium.NodeID, _ float64) {
		if step != 1 {
			return
		}
		if step1[seq] == nil {
			step1[seq] = map[medium.NodeID]bool{}
		}
		for _, r := range rs {
			step1[seq][r] = true
		}
	}
	for i := 0; i < 3; i++ {
		w.prot.Send(s, d, []byte("pkt"))
		w.eng.RunUntil(float64(i+1) * 10)
	}
	if len(step1) == 0 {
		t.Skip("no step-one observations")
	}
	for seq, rs := range step1 {
		if len(rs) > cfg.M {
			t.Fatalf("packet %d step-one reached %d nodes, want <= M=%d",
				seq, len(rs), cfg.M)
		}
	}
}

func TestGuardPayloadRestoredDespiteBitFlips(t *testing.T) {
	cfg := DefaultConfig()
	cfg.IntersectionGuard = true
	cfg.BitmapBits = 32
	w := build(16, 200, 0, cfg)
	s, d := w.farPair(500)
	payload := []byte("integrity check payload for the bitmap mechanism")
	var got []byte
	w.prot.OnDeliver = func(_, _ medium.NodeID, _ int, data []byte, _ float64) {
		got = data
	}
	w.prot.Send(s, d, payload)
	w.prot.Send(s, d, payload) // trigger release of the first
	w.eng.RunUntil(60)
	if got == nil {
		t.Skip("undelivered in this placement")
	}
	if !bytes.Equal(got, payload) {
		t.Fatalf("payload corrupted through bitmap: %q", got)
	}
}

func TestConfirmAndRetryOnLoss(t *testing.T) {
	// With 35% loss, some legs drop; confirmations must trigger resends
	// and recover deliveries.
	eng := sim.NewEngine()
	src := rng.New(17)
	mob := mobility.NewStatic(field, 200, src)
	par := medium.DefaultParams()
	par.LossRate = 0.35
	med := medium.MustNew(eng, mob, par, src)
	net := node.NewNetwork(eng, med, crypt.NewFastSuite(src), crypt.ZeroCostModel(),
		node.Config{}, src)
	loc := locservice.New(net, locservice.DefaultConfig())
	cfg := DefaultConfig()
	cfg.Confirm = true
	cfg.ConfirmTimeout = 1.0
	cfg.MaxRetries = 4
	cfg.CompleteTimeout = 20
	prot := MustNew(net, loc, cfg, src)
	delivered := 0
	for i := 0; i < 10; i++ {
		s := medium.NodeID(src.Intn(200))
		d := medium.NodeID(src.Intn(200))
		if s == d {
			continue
		}
		rec, _ := prot.Send(s, d, []byte("x"))
		_ = rec
	}
	eng.RunUntil(60)
	for _, r := range prot.Collector().Records() {
		if r.Delivered {
			delivered++
		}
	}
	if delivered == 0 {
		t.Fatal("nothing delivered under loss with retries")
	}
	if prot.Counters().Acks == 0 {
		t.Fatal("no confirmations sent")
	}
}

func TestNAKTriggersResend(t *testing.T) {
	// Inject a jamming window that swallows one packet; the next
	// delivered packet's sequence gap must produce a NAK, a resend, and
	// an eventual delivery of the jammed sequence number.
	eng := sim.NewEngine()
	src := rng.New(18)
	mob := mobility.NewStatic(field, 200, src)
	med := medium.MustNew(eng, mob, medium.DefaultParams(), src)
	net := node.NewNetwork(eng, med, crypt.NewFastSuite(src), crypt.ZeroCostModel(),
		node.Config{}, src)
	loc := locservice.New(net, locservice.DefaultConfig())
	cfg := DefaultConfig()
	cfg.NAKs = true
	cfg.CompleteTimeout = 40
	prot := MustNew(net, loc, cfg, src)
	var s, d medium.NodeID = 0, 0
	for i := 1; i < 200; i++ {
		if mob.Position(0, 0).Dist(mob.Position(i, 0)) > 500 {
			d = medium.NodeID(i)
			break
		}
	}
	if d == 0 {
		t.Skip("no far node")
	}
	for i := 0; i < 5; i++ {
		at := float64(i)*2 + 0.001
		eng.At(at, func() { prot.Send(s, d, []byte("stream")) })
	}
	// Jam the channel around the second packet (t in [2, 3.5]).
	eng.At(2.0, func() { med.SetLossRate(1.0) })
	eng.At(3.5, func() { med.SetLossRate(0) })
	eng.RunUntil(120)
	c := prot.Counters()
	if c.NAKs == 0 {
		t.Fatalf("no NAK despite a jammed packet: %+v", c)
	}
	if c.Resends == 0 {
		t.Fatal("NAKs sent but no resends triggered")
	}
	// The jammed packet must eventually be delivered via the resend.
	recs := prot.Collector().Records()
	if !recs[1].Delivered {
		t.Fatal("jammed packet never recovered")
	}
}

func TestMeanRFsGrowsWithH(t *testing.T) {
	// Fig. 11: the number of random forwarders grows ~linearly with H.
	meanAt := func(h int) float64 {
		cfg := DefaultConfig()
		cfg.H = h
		w := build(19, 200, 0, cfg)
		sent := 0
		for i := 0; i < w.net.N() && sent < 12; i += 17 {
			for j := 5; j < w.net.N() && sent < 12; j += 23 {
				if i == j {
					continue
				}
				w.prot.Send(medium.NodeID(i), medium.NodeID(j), []byte("x"))
				sent++
			}
		}
		w.eng.RunUntil(120)
		return w.prot.Collector().MeanRFs()
	}
	low := meanAt(2)
	high := meanAt(6)
	if high <= low {
		t.Fatalf("mean RFs: H=2 -> %v, H=6 -> %v; want growth", low, high)
	}
}

func TestLocServiceFailureBlocksSend(t *testing.T) {
	w := build(20, 50, 0, DefaultConfig())
	for i := 0; i < w.loc.NumServers(); i++ {
		w.loc.FailServer(i)
	}
	rec, _ := w.prot.Send(0, 10, []byte("x"))
	w.eng.RunUntil(10)
	if rec.Delivered {
		t.Fatal("send should fail with no location service")
	}
	if w.prot.Collector().Completed() != 1 {
		t.Fatal("record should complete immediately")
	}
}

func TestKindStrings(t *testing.T) {
	if KindData.String() != "data" || KindAck.String() != "ack" || KindNAK.String() != "nak" {
		t.Fatal("kind strings wrong")
	}
}

func TestRectCodec(t *testing.T) {
	r := geo.Rect{Min: geo.Point{X: 1.5, Y: -2.25}, Max: geo.Point{X: 1000, Y: 0.125}}
	got, err := decodeRect(encodeRect(r))
	if err != nil || got != r {
		t.Fatalf("rect codec: %v %v", got, err)
	}
	if _, err := decodeRect([]byte{1, 2}); err == nil {
		t.Fatal("short buffer should error")
	}
}

func TestTTLCodec(t *testing.T) {
	got, err := decodeTTL(encodeTTL(10))
	if err != nil || got != 10 {
		t.Fatalf("ttl codec: %v %v", got, err)
	}
	if _, err := decodeTTL([]byte{1}); err == nil {
		t.Fatal("short TTL should error")
	}
}

func TestFixedAxisPartitionAblation(t *testing.T) {
	// The ablation knob must still deliver, and the alternating default
	// should use no more hops on average (Section 2.3's design argument).
	run := func(fixed bool) (delivery, hops float64) {
		cfg := DefaultConfig()
		cfg.FixedAxisPartition = fixed
		w := build(40, 200, 0, cfg)
		sent := 0
		for i := 0; i < w.net.N() && sent < 15; i += 13 {
			j := (i + 97) % w.net.N()
			if i == j {
				continue
			}
			w.prot.Send(medium.NodeID(i), medium.NodeID(j), []byte("x"))
			sent++
		}
		w.eng.RunUntil(60)
		col := w.prot.Collector()
		return col.DeliveryRate(), col.HopsPerPacket()
	}
	delAlt, hopsAlt := run(false)
	delFixed, hopsFixed := run(true)
	if delAlt < 0.8 || delFixed < 0.7 {
		t.Fatalf("delivery collapsed: alt=%v fixed=%v", delAlt, delFixed)
	}
	if hopsAlt > hopsFixed*1.15 {
		t.Fatalf("alternating (%v hops) should not cost more than fixed-axis (%v)",
			hopsAlt, hopsFixed)
	}
}

func TestLongSessionSurvivesPseudonymRotation(t *testing.T) {
	// Pseudonyms rotate every 10 s (node.DefaultConfig); a 60-second
	// session must keep delivering because sources address packets to the
	// registered pseudonym, which destinations keep accepting.
	w := build(41, 200, 2, DefaultConfig())
	s, d := w.farPair(500)
	const packets = 30
	for i := 0; i < packets; i++ {
		at := float64(i) * 2
		w.eng.At(at+0.01, func() { w.prot.Send(s, d, []byte("x")) })
	}
	w.eng.RunUntil(75)
	rate := w.prot.Collector().DeliveryRate()
	if rate < 0.85 {
		t.Fatalf("delivery %v collapsed across pseudonym rotations", rate)
	}
	// Both endpoints rotated at least once during the session.
	if w.net.Node(s).PseudonymUpdates < 2 || w.net.Node(d).PseudonymUpdates < 2 {
		t.Fatal("test vacuous: no rotation happened")
	}
}

func TestZoneRelayTrafficBounded(t *testing.T) {
	// The in-zone relay round must stay bounded: one broadcast per zone
	// member per packet, never an exponential flood.
	w := build(42, 200, 0, DefaultConfig())
	s, d := w.farPair(500)
	before := w.net.Med.Counters().BroadcastsSent
	w.prot.Send(s, d, []byte("x"))
	w.eng.RunUntil(10)
	broadcasts := w.net.Med.Counters().BroadcastsSent - before
	// Upper bound: everyone within a zone-diagonal + range of the zone
	// could relay once; with k~6 expected members allow generous slack.
	if broadcasts > 40 {
		t.Fatalf("%d broadcasts for one packet; relay flood unbounded", broadcasts)
	}
	if broadcasts == 0 {
		t.Fatal("no zone broadcast happened")
	}
}

func TestGuardWithConfirm(t *testing.T) {
	// Intersection guard and confirmations compose: the session still
	// delivers and confirmations flow.
	cfg := DefaultConfig()
	cfg.IntersectionGuard = true
	cfg.Confirm = true
	cfg.ConfirmTimeout = 3
	cfg.HoldRelease = 1
	w := build(43, 200, 0, cfg)
	s, d := w.farPair(500)
	for i := 0; i < 6; i++ {
		at := float64(i) * 2
		w.eng.At(at+0.01, func() { w.prot.Send(s, d, []byte("x")) })
	}
	w.eng.RunUntil(60)
	col := w.prot.Collector()
	if col.DeliveryRate() < 0.6 {
		t.Fatalf("guard+confirm delivery = %v", col.DeliveryRate())
	}
	if w.prot.Counters().Acks == 0 {
		t.Fatal("no confirmations with Confirm enabled")
	}
}

func TestCoverPacketsAreNotForwarded(t *testing.T) {
	// Covering packets carry no valid TTL: receivers drop them, so they
	// must not spawn any routing traffic (Section 2.6).
	cfg := DefaultConfig()
	cfg.NotifyAndGo = true
	w := build(44, 200, 0, cfg)
	s, d := w.farPair(500)
	rec, _ := w.prot.Send(s, d, []byte("x"))
	w.eng.RunUntil(10)
	if !rec.Delivered {
		t.Skip("undeliverable placement")
	}
	c := w.prot.Counters()
	if c.CoversSent == 0 {
		t.Fatal("no covers sent")
	}
	// Each cover is exactly one broadcast: total broadcasts =
	// covers + zone broadcasts (+ relays). No cover multiplies.
	mc := w.net.Med.Counters()
	maxExpected := c.CoversSent + c.ZoneBroadcasts + 40 // zone relays slack
	if mc.BroadcastsSent > maxExpected {
		t.Fatalf("broadcasts %d exceed covers+zone budget %d",
			mc.BroadcastsSent, maxExpected)
	}
}

func TestDerivedHMatchesFormulaAcrossN(t *testing.T) {
	for _, n := range []int{50, 100, 200, 400} {
		w := build(45, n, 0, DefaultConfig())
		want := geo.PartitionsForK(n, 6)
		if w.prot.H() != want {
			t.Fatalf("N=%d: H=%d, want %d", n, w.prot.H(), want)
		}
	}
}

func TestCompletedFlightsAreRetired(t *testing.T) {
	// Session bookkeeping must not grow with session length: settled
	// packets leave the outstanding-flight map.
	w := build(46, 200, 0, DefaultConfig())
	s, d := w.farPair(500)
	for i := 0; i < 20; i++ {
		at := float64(i) * 1
		w.eng.At(at+0.01, func() { w.prot.Send(s, d, []byte("x")) })
	}
	w.eng.RunUntil(60)
	sess := w.prot.session(s, d)
	if len(sess.flights) > 2 {
		t.Fatalf("%d flights still retained after the session settled", len(sess.flights))
	}
	if w.prot.Collector().Completed() != 20 {
		t.Fatalf("completed = %d", w.prot.Collector().Completed())
	}
}

func TestGuardAutoM(t *testing.T) {
	// M == 0: holders are chosen by greedy coverage so every beaconed
	// zone member is within range of some holder (p_c = 1, Section 3.3).
	cfg := DefaultConfig()
	cfg.IntersectionGuard = true
	cfg.M = 0
	cfg.HoldRelease = 1.0
	w := build(50, 200, 0, cfg)
	s, d := w.farPair(500)
	delivered := 0
	w.prot.OnDeliver = func(medium.NodeID, medium.NodeID, int, []byte, float64) {
		delivered++
	}
	for i := 0; i < 5; i++ {
		at := float64(i) * 2
		w.eng.At(at+0.01, func() { w.prot.Send(s, d, []byte("x")) })
	}
	w.eng.RunUntil(40)
	if delivered < 4 {
		t.Fatalf("auto-m guard delivered only %d/5", delivered)
	}
	if w.prot.Counters().Step1Multicasts == 0 {
		t.Fatal("no multicasts with auto-m")
	}
}

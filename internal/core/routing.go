// ALERT's routing pipeline (Sections 2.3-2.6): session setup, notify-and-go,
// the recursive partition loop between random forwarders, and the last-leg
// destination-zone delivery with the intersection-attack guard.

package core

import (
	"fmt"

	"alertmanet/internal/crypt"
	"alertmanet/internal/geo"
	"alertmanet/internal/gpsr"
	"alertmanet/internal/medium"
	"alertmanet/internal/metrics"
)

// Send routes one application packet from src to dst and returns its
// metrics record (finalized asynchronously as the simulation runs).
//
// A failure to establish the session's cryptographic material (the
// destination key rejecting the session key or source zone) completes the
// record as undelivered and returns the error; the session stays
// unestablished so a later packet retries the handshake.
func (p *Protocol) Send(src, dst medium.NodeID, data []byte) (*metrics.PacketRecord, error) {
	now := p.net.Eng.Now()
	rec := p.col.Start(src, dst, now)
	p.counts.DataSent++

	entry, ok := p.loc.Lookup(dst)
	if !ok {
		// Location service unavailable: packet cannot even start.
		p.col.Complete(rec, 0, false)
		return rec, nil
	}

	sess := p.session(src, dst)
	setupCharges := 0
	if !sess.estCharge {
		// Establish the session: draw K_s, encrypt it and the source
		// zone under K_pub^D (two public-key operations, charged to
		// the first packet).
		key := crypt.NewSymKey(p.rnd)
		encKey, err := p.net.Suite.EncryptPub(entry.Pub, key[:])
		if err != nil {
			p.col.Complete(rec, 0, false)
			return rec, fmt.Errorf("core: session key encryption: %w", err)
		}
		zs := geo.DestZone(p.field, p.net.Med.PositionNow(src), p.hDef, geo.Vertical)
		encLZS, err := p.net.Suite.EncryptPub(entry.Pub, encodeRect(zs))
		if err != nil {
			p.col.Complete(rec, 0, false)
			return rec, fmt.Errorf("core: source zone encryption: %w", err)
		}
		sess.estCharge = true
		sess.key, sess.encKey, sess.zs, sess.encLZS = key, encKey, zs, encLZS
		p.net.NotePub(2) // the ops happen regardless of latency billing
		if p.cfg.ChargeSessionSetup {
			setupCharges = 2
		}
	}
	p.net.NoteSym(1) // per-packet payload seal

	zd := geo.DestZone(p.field, entry.Pos, p.hDef, geo.Vertical)
	env := &Envelope{
		Kind:      KindData,
		PS:        p.net.Node(src).Pseudonym,
		PD:        entry.Pseudonym,
		LZD:       zd,
		EncLZS:    sess.encLZS,
		Dir:       p.randomDir(),
		Hdiv:      0,
		Hmax:      p.hDef,
		Zone:      p.field,
		DPub:      entry.Pub,
		EncSymKey: sess.encKey,
		Payload:   crypt.SymSeal(sess.key, data, p.rnd),
		Seq:       sess.nextSeq,
	}
	sess.nextSeq++

	f := &flight{env: env, rec: rec, src: src, dst: dst, data: data}
	env.flight = f
	sess.flights[env.Seq] = f

	if p.cfg.CompleteTimeout > 0 {
		f.timeoutID = p.net.Eng.Schedule(p.cfg.CompleteTimeout, func() {
			f.hasTimeout = false
			p.complete(f, 0, false)
		})
		f.hasTimeout = true
	}

	// Charge source-side cryptography: one symmetric seal per packet,
	// plus the session's two public-key operations on its first packet.
	delay := p.net.Costs.SymEncrypt + float64(setupCharges)*p.net.Costs.PubEncrypt

	launch := func() {
		if p.cfg.Confirm {
			p.armRetry(f)
		}
		p.route(src, env)
	}

	if p.cfg.NotifyAndGo {
		p.notifyAndGo(src, delay, launch)
	} else {
		p.net.Eng.Schedule(delay, launch)
	}
	return rec, nil
}

func (p *Protocol) randomDir() geo.Direction {
	if p.rnd.Bernoulli(0.5) {
		return geo.Horizontal
	}
	return geo.Vertical
}

// notifyAndGo implements Section 2.6: the source notifies its neighbors
// (piggybacked on hello beacons), then the source and every neighbor wait a
// random time in [t, t+t0]; neighbors emit covering packets with no valid
// TTL while the source emits the real packet, hiding it among eta+1
// transmissions.
func (p *Protocol) notifyAndGo(src medium.NodeID, extraDelay float64, launch func()) {
	t, t0 := p.cfg.NotifyT, p.cfg.NotifyT0
	for _, nb := range p.net.Med.Neighbors(src) {
		nb := nb
		wait := p.rnd.Uniform(t, t+t0)
		p.net.Eng.Schedule(wait, func() {
			junk := make([]byte, p.cfg.CoverSize)
			p.rnd.Read(junk)
			p.counts.CoversSent++
			p.net.Med.Broadcast(nb.ID, &coverPacket{Junk: junk}, p.cfg.CoverSize)
		})
	}
	wait := p.rnd.Uniform(t, t+t0)
	p.net.Eng.Schedule(extraDelay+wait, launch)
}

// route executes one forwarder's step at node `at` (Section 2.3): if the
// holder is in (or cannot be separated from) Z_D, start zone delivery;
// otherwise partition until separated, pick a random TD in the half holding
// Z_D, and ride GPSR to the node closest to the TD — the next RF.
func (p *Protocol) route(at medium.NodeID, env *Envelope) {
	pos := p.net.Med.PositionNow(at)
	if env.LZD.Contains(pos) || env.finalLeg {
		p.zoneDeliver(at, env)
		return
	}
	zone := env.Zone
	if !zone.Contains(pos) {
		// GPSR overshoot: the closest node to the TD sat outside the
		// aimed zone. Re-derive the partition from the whole field.
		zone = p.field
	}
	res := geo.SeparateWithPolicy(zone, pos, env.LZD, env.Dir,
		env.Hmax-env.Hdiv, !p.cfg.FixedAxisPartition)
	if !res.Separated {
		// All H divisions are spent (or the zone cannot shrink
		// further) but the holder is still outside Z_D: ride one
		// final leg to a random position inside Z_D, whose closest
		// node performs the zone broadcast.
		env.finalLeg = true
		env.TD = geo.RandomPoint(env.LZD, p.rnd)
	} else {
		env.Zone = res.OtherZone
		env.Hdiv += res.Cuts
		env.Dir = res.NextDir // the direction bit each RF flips (Section 2.5)
		env.TD = geo.RandomPoint(res.OtherZone, p.rnd)
	}

	// When notify-and-go is active, the source encrypts the TTL to its
	// first relay so covering packets (TTL-less) are indistinguishable
	// from the real one (Section 2.6); only the first leg needs this —
	// forwarders beyond the source's neighborhood have no covers to
	// blend with. Without cover traffic a plain TTL suffices. Two
	// public-key operations: the source's encryption and the relay's
	// decryption.
	if p.cfg.NotifyAndGo && env.EncTTL == nil {
		if next, ok := p.router.NextGreedy(at, env.TD); ok {
			ct, err := p.net.Suite.EncryptPub(p.net.Node(next).Pub, encodeTTL(p.cfg.LegHopBudget))
			if err == nil {
				env.EncTTL = ct
				p.net.NotePub(2)
			}
		}
	}

	pkt := p.router.NewPacket()
	pkt.Dest = env.TD
	pkt.DeliverTo = gpsr.NoDeliverTo
	pkt.Payload = env
	pkt.Size = p.cfg.PacketSize
	pkt.HopBudget = p.cfg.LegHopBudget
	pkt.OnOutcome = func(rf medium.NodeID, gp *gpsr.Packet, out gpsr.Outcome) {
		f := env.flight
		if f != nil {
			f.rec.Hops += gp.Hops
			f.rec.Path = append(f.rec.Path, gp.Path...)
		} else if env.isReply {
			replyHopsInto(env, gp.Hops)
		}
		// Each leg rides its own frame; this one is finished regardless
		// of how the leg ended (route() takes a fresh frame per leg).
		defer p.router.Release(gp)
		switch out {
		case gpsr.ArrivedClosest:
			if f != nil && rf != at {
				f.rec.RFs++
				if p.tap != nil {
					p.tap.RFSelected(p.net.Eng.Now(), f.rec.Seq, int(rf))
				}
			}
			p.route(rf, env)
		default:
			p.counts.LegDrops++
			p.failLeg(env)
		}
	}
	if f := env.flight; f != nil {
		pkt.SetTrace(f.rec.Seq)
	}
	p.router.Send(at, pkt)
}

// failLeg handles a dropped GPSR leg — including DroppedLink, a hop lost
// on air after the medium's link-layer ARQ spent its retries. The two
// recovery mechanisms are deliberately layered as in real stacks: the
// medium retransmits individual frames on an 802.11-like timescale
// (milliseconds), while ALERT's Confirm/NAK machinery below is end-to-end
// recovery on the protocol timescale (seconds), re-routing the whole
// packet over fresh random forwarders. Without any recovery mechanism the
// packet is simply lost and recorded; with confirmations the retry timer
// will resend, and with NAKs the destination may report the gap — either
// way the flight stays open until recovery or the completion timeout.
func (p *Protocol) failLeg(env *Envelope) {
	f := env.flight
	if f == nil {
		return // ack/NAK envelope: silently lost
	}
	if !p.cfg.Confirm && !p.cfg.NAKs {
		p.complete(f, 0, false)
	}
}

// complete finalizes a flight exactly once and retires its bookkeeping:
// once a packet is settled (and cannot be NAK-resent), the session forgets
// it, so long sessions hold state proportional to the in-flight window
// rather than to their lifetime.
func (p *Protocol) complete(f *flight, at float64, delivered bool) {
	if f == nil || f.completed {
		return
	}
	f.completed = true
	if f.hasTimeout {
		p.net.Eng.Cancel(f.timeoutID)
		f.hasTimeout = false
	}
	if f.hasRetry {
		p.net.Eng.Cancel(f.retryID)
		f.hasRetry = false
	}
	p.col.Complete(f.rec, at, delivered)
	if !p.cfg.NAKs || delivered {
		// NAK recovery can still resurrect an undelivered flight; keep
		// those until the destination reports past them.
		sess := p.session(f.src, f.dst)
		delete(sess.flights, f.env.Seq)
	}
}

// armRetry schedules a retransmission if no confirmation arrives in time.
func (p *Protocol) armRetry(f *flight) {
	if f.hasRetry {
		p.net.Eng.Cancel(f.retryID)
	}
	f.retryID = p.net.Eng.Schedule(p.cfg.ConfirmTimeout, func() {
		f.hasRetry = false
		if f.acked || f.completed {
			return
		}
		if f.retries >= p.cfg.MaxRetries {
			p.complete(f, 0, f.delivered)
			return
		}
		f.retries++
		p.counts.Resends++
		p.resend(f)
	})
	f.hasRetry = true
}

// resend relaunches a flight's envelope from the source with a fresh
// partition state (the new route will differ — ALERT's nonfixed paths).
func (p *Protocol) resend(f *flight) {
	env := f.env
	env.Hdiv = 0
	env.Zone = p.field
	env.Dir = p.randomDir()
	env.finalLeg = false
	// Refresh Z_D from the location service (positions may have moved).
	if entry, ok := p.loc.Lookup(f.dst); ok {
		env.LZD = geo.DestZone(p.field, entry.Pos, p.hDef, geo.Vertical)
		env.PD = entry.Pseudonym
	}
	p.armRetry(f)
	p.net.NoteSym(1)
	p.net.Eng.Schedule(p.net.Costs.SymEncrypt, func() { p.route(f.src, env) })
}

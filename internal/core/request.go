// Request/reply: Section 2.2's interaction model — "a source node S sends
// a request to a destination node D and the destination responds with
// data." The request travels like any data packet; the response is sealed
// under the session key and routed anonymously back to the source's H-th
// partitioned zone L_{Z_S} (which D decrypted from the request), addressed
// to the source's pseudonym. Neither direction ever carries an identity or
// an exact position.

package core

import (
	"alertmanet/internal/crypt"
	"alertmanet/internal/medium"
	"alertmanet/internal/metrics"
)

// RequestHandler produces the destination's response to a delivered
// request. It runs at the destination node.
type RequestHandler func(dst medium.NodeID, query []byte) []byte

// ReplyFunc receives the response back at the source.
type ReplyFunc func(data []byte, t float64)

// Request sends a query from src to dst and invokes onReply at the source
// when the destination's response arrives. The destination's behaviour
// comes from the protocol-wide OnRequest handler; without one, requests are
// delivered like plain data and no response flows. The returned record
// tracks the request leg; the reply's hops accumulate onto it. A session
// establishment failure propagates like Send's.
func (p *Protocol) Request(src, dst medium.NodeID, query []byte, onReply ReplyFunc) (*metrics.PacketRecord, error) {
	rec, err := p.Send(src, dst, query)
	if err != nil {
		return rec, err
	}
	// Send stored the flight in the session; mark it as a request.
	sess := p.session(src, dst)
	if f, ok := sess.flights[sess.nextSeq-1]; ok {
		f.env.isRequest = true
		f.onReply = onReply
	}
	return rec, nil
}

// respond runs at the destination after a request is delivered: build the
// RREP and route it to the source zone.
func (p *Protocol) respond(at medium.NodeID, env *Envelope, sess *session, query []byte) {
	if p.OnRequest == nil || sess.dZS.Empty() {
		return
	}
	response := p.OnRequest(at, query)
	if response == nil {
		return
	}
	reply := &Envelope{
		Kind:     KindData,
		PS:       p.net.Node(at).Pseudonym,
		PD:       env.PS, // the requester's pseudonym
		LZD:      sess.dZS,
		Dir:      p.randomDir(),
		Hmax:     p.hDef,
		Zone:     p.field,
		Seq:      env.Seq,
		Payload:  crypt.SymSeal(sess.dKey, response, p.rnd),
		isReply:  true,
		replyFor: env.flight,
	}
	p.counts.Replies++
	p.net.NoteSym(1)
	p.net.Eng.Schedule(p.net.Costs.SymEncrypt, func() { p.route(at, reply) })
}

// deliverReply runs at the source when a response envelope reaches it.
func (p *Protocol) deliverReply(at medium.NodeID, env *Envelope) {
	f := env.replyFor
	if f == nil || f.replied || f.src != at {
		return
	}
	sess := p.session(f.src, f.dst)
	p.net.NoteSym(1)
	p.net.Eng.Schedule(p.net.Costs.SymDecrypt, func() {
		if f.replied {
			return
		}
		plain, err := crypt.SymOpen(sess.key, env.Payload)
		if err != nil {
			return
		}
		f.replied = true
		now := p.net.Eng.Now()
		f.rec.Hops += env.replyHops
		if f.onReply != nil {
			f.onReply(plain, now)
		}
	})
}

// replyHopsInto accumulates a reply leg's hops onto the envelope for later
// attribution to the originating request's record.
func replyHopsInto(env *Envelope, hops int) {
	env.replyHops += hops
}

package core

import (
	"bytes"
	"testing"
)

// FuzzUnmarshal hammers the wire decoder with mutated packets: it must
// never panic, and any packet it accepts must re-marshal to an equivalent
// envelope (decode/encode/decode fixpoint).
func FuzzUnmarshal(f *testing.F) {
	f.Add(Marshal(sampleEnvelope()))
	f.Add([]byte{})
	f.Add([]byte{0})
	f.Add(bytes.Repeat([]byte{0xFF}, 120))
	f.Fuzz(func(t *testing.T, data []byte) {
		env, err := Unmarshal(data)
		if err != nil {
			return
		}
		again, err := Unmarshal(Marshal(env))
		if err != nil {
			t.Fatalf("re-decode of accepted packet failed: %v", err)
		}
		if again.Kind != env.Kind || again.Seq != env.Seq ||
			again.Hdiv != env.Hdiv || again.Hmax != env.Hmax ||
			again.LZD != env.LZD || again.TD != env.TD ||
			!bytes.Equal(again.Payload, env.Payload) {
			t.Fatal("decode/encode/decode not a fixpoint")
		}
	})
}

package core

import (
	"bytes"
	"testing"

	"alertmanet/internal/medium"
)

func TestRequestReplyRoundTrip(t *testing.T) {
	w := build(30, 200, 0, DefaultConfig())
	s, d := w.farPair(600)
	w.prot.OnRequest = func(dst medium.NodeID, query []byte) []byte {
		if dst != d {
			t.Errorf("request handled at %v, want %v", dst, d)
		}
		return append([]byte("re: "), query...)
	}
	var reply []byte
	var replyAt float64
	rec, _ := w.prot.Request(s, d, []byte("status?"), func(data []byte, at float64) {
		reply = data
		replyAt = at
	})
	w.eng.RunUntil(30)
	if !rec.Delivered {
		t.Skip("request undeliverable in this placement")
	}
	if reply == nil {
		t.Fatal("no reply reached the source")
	}
	if !bytes.Equal(reply, []byte("re: status?")) {
		t.Fatalf("reply = %q", reply)
	}
	if replyAt <= rec.DeliveredAt {
		t.Fatal("reply arrived before the request was delivered")
	}
	if w.prot.Counters().Replies != 1 {
		t.Fatalf("counters = %+v", w.prot.Counters())
	}
}

func TestRequestReplyHopsAccumulate(t *testing.T) {
	w := build(31, 200, 0, DefaultConfig())
	s, d := w.farPair(600)
	w.prot.OnRequest = func(_ medium.NodeID, q []byte) []byte { return q }
	replied := false
	rec, _ := w.prot.Request(s, d, []byte("ping"), func([]byte, float64) { replied = true })
	w.eng.RunUntil(30)
	if !replied {
		t.Skip("round trip failed in this placement")
	}
	// The record's hops must cover both directions: strictly more than a
	// one-way trip would need for a 600 m pair.
	if rec.Hops < 6 {
		t.Fatalf("hops = %d; round trip across 600 m should exceed 6", rec.Hops)
	}
}

func TestRequestWithoutHandlerDeliversOnly(t *testing.T) {
	w := build(32, 200, 0, DefaultConfig())
	s, d := w.farPair(500)
	replied := false
	rec, _ := w.prot.Request(s, d, []byte("q"), func([]byte, float64) { replied = true })
	w.eng.RunUntil(30)
	if rec.Delivered && replied {
		t.Fatal("reply delivered without an OnRequest handler")
	}
	if w.prot.Counters().Replies != 0 {
		t.Fatal("reply counted without a handler")
	}
}

func TestReplyIsEncryptedOnAir(t *testing.T) {
	w := build(33, 200, 0, DefaultConfig())
	s, d := w.farPair(500)
	secret := []byte("coordinates: 42.1, 17.9 — eyes only")
	w.prot.OnRequest = func(medium.NodeID, []byte) []byte { return secret }
	var observed [][]byte
	w.net.Med.TapSend(func(tx medium.Transmission) {
		if zd, ok := tx.Payload.(*ZoneDelivery); ok && zd.Env.isReply {
			observed = append(observed, zd.Env.Payload)
		}
	})
	got := false
	w.prot.Request(s, d, []byte("q"), func(data []byte, _ float64) {
		got = bytes.Equal(data, secret)
	})
	w.eng.RunUntil(30)
	if !got {
		t.Skip("round trip failed in this placement")
	}
	if len(observed) == 0 {
		t.Fatal("no reply observed on air")
	}
	for _, blob := range observed {
		if bytes.Contains(blob, secret[:12]) {
			t.Fatal("reply plaintext visible on air")
		}
	}
}

func TestReplyDedup(t *testing.T) {
	w := build(34, 200, 0, DefaultConfig())
	s, d := w.farPair(500)
	w.prot.OnRequest = func(medium.NodeID, []byte) []byte { return []byte("r") }
	replies := 0
	w.prot.Request(s, d, []byte("q"), func([]byte, float64) { replies++ })
	w.eng.RunUntil(30)
	if replies > 1 {
		t.Fatalf("reply delivered %d times", replies)
	}
}

func TestMultipleRequestsSameSession(t *testing.T) {
	w := build(35, 200, 0, DefaultConfig())
	s, d := w.farPair(500)
	w.prot.OnRequest = func(_ medium.NodeID, q []byte) []byte {
		return append([]byte("ok:"), q...)
	}
	var replies [][]byte
	for i := 0; i < 3; i++ {
		q := []byte{byte('a' + i)}
		w.prot.Request(s, d, q, func(data []byte, _ float64) {
			replies = append(replies, data)
		})
		w.eng.RunUntil(float64(i+1) * 10)
	}
	if len(replies) < 2 {
		t.Skipf("only %d replies landed; placement-dependent", len(replies))
	}
	seen := map[string]bool{}
	for _, r := range replies {
		seen[string(r)] = true
	}
	if len(seen) != len(replies) {
		t.Fatalf("duplicate replies: %q", replies)
	}
}

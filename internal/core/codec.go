// Wire codec for the ALERT packet format (Fig. 4). The simulator passes
// *Envelope values through the medium directly (cheap and type-safe), but a
// deployment needs the bits on air; Marshal/Unmarshal implement that layout
// so the format is complete and testable end to end:
//
//	kind(1) | PS(20) | PD(20) | L_ZD(32) | TD(16) | dir(1) | h(2) | H(2) |
//	len(EncLZS)(2)   | EncLZS   |
//	len(EncSymKey)(2)| EncSymKey|
//	len(EncTTL)(2)   | EncTTL   |
//	len(EncBitmap)(2)| EncBitmap|
//	seq(4) | len(Payload)(4) | Payload
//
// All multi-byte integers are big-endian. Zone positions are two corner
// points (Section 2.4's "upper left and bottom-right coordinates"). The
// destination public key rides in the key-distribution plane (location
// service), not in every packet, so it is not part of the wire layout; the
// simulator-only fields (flight, Zone, relayed, ...) never leave the host.

package core

import (
	"encoding/binary"
	"errors"
	"fmt"
	"math"

	"alertmanet/internal/geo"
)

// ErrTruncated reports a wire packet shorter than its declared contents.
var ErrTruncated = errors.New("core: truncated packet")

const fixedHeader = 1 + 20 + 20 + 32 + 16 + 1 + 2 + 2

// Marshal serializes the envelope's wire fields.
func Marshal(env *Envelope) []byte {
	size := fixedHeader +
		2 + len(env.EncLZS) +
		2 + len(env.EncSymKey) +
		2 + len(env.EncTTL) +
		2 + len(env.EncBitmap) +
		4 + 4 + len(env.Payload)
	buf := make([]byte, 0, size)

	buf = append(buf, byte(env.Kind))
	buf = append(buf, env.PS[:]...)
	buf = append(buf, env.PD[:]...)
	buf = append(buf, encodeRect(env.LZD)...)
	buf = appendFloat(buf, env.TD.X)
	buf = appendFloat(buf, env.TD.Y)
	buf = append(buf, byte(env.Dir))
	buf = appendUint16(buf, uint16(env.Hdiv))
	buf = appendUint16(buf, uint16(env.Hmax))
	buf = appendBlob(buf, env.EncLZS)
	buf = appendBlob(buf, env.EncSymKey)
	buf = appendBlob(buf, env.EncTTL)
	buf = appendBlob(buf, env.EncBitmap)
	buf = appendUint32(buf, uint32(env.Seq))
	buf = appendUint32(buf, uint32(len(env.Payload)))
	buf = append(buf, env.Payload...)
	return buf
}

// WireSize returns the on-air size of the envelope in bytes.
func WireSize(env *Envelope) int { return len(Marshal(env)) }

// Unmarshal parses a wire packet back into an envelope (wire fields only).
func Unmarshal(buf []byte) (*Envelope, error) {
	r := reader{buf: buf}
	env := &Envelope{}
	kind, err := r.byte()
	if err != nil {
		return nil, err
	}
	if kind > byte(KindNAK) {
		return nil, fmt.Errorf("core: unknown packet kind %d", kind)
	}
	env.Kind = Kind(kind)
	if err := r.copy(env.PS[:]); err != nil {
		return nil, err
	}
	if err := r.copy(env.PD[:]); err != nil {
		return nil, err
	}
	zdRaw, err := r.take(32)
	if err != nil {
		return nil, err
	}
	if env.LZD, err = decodeRect(zdRaw); err != nil {
		return nil, err
	}
	if env.TD.X, err = r.float(); err != nil {
		return nil, err
	}
	if env.TD.Y, err = r.float(); err != nil {
		return nil, err
	}
	dir, err := r.byte()
	if err != nil {
		return nil, err
	}
	if dir > 1 {
		return nil, fmt.Errorf("core: invalid direction bit %d", dir)
	}
	env.Dir = geo.Direction(dir)
	h16, err := r.uint16()
	if err != nil {
		return nil, err
	}
	env.Hdiv = int(h16)
	if h16, err = r.uint16(); err != nil {
		return nil, err
	}
	env.Hmax = int(h16)
	if env.EncLZS, err = r.blob(); err != nil {
		return nil, err
	}
	if env.EncSymKey, err = r.blob(); err != nil {
		return nil, err
	}
	if env.EncTTL, err = r.blob(); err != nil {
		return nil, err
	}
	if env.EncBitmap, err = r.blob(); err != nil {
		return nil, err
	}
	seq, err := r.uint32()
	if err != nil {
		return nil, err
	}
	env.Seq = int(seq)
	n, err := r.uint32()
	if err != nil {
		return nil, err
	}
	if env.Payload, err = r.take(int(n)); err != nil {
		return nil, err
	}
	if len(r.buf) != r.off {
		return nil, fmt.Errorf("core: %d trailing bytes", len(r.buf)-r.off)
	}
	return env, nil
}

func appendUint16(b []byte, v uint16) []byte {
	return append(b, byte(v>>8), byte(v))
}

func appendUint32(b []byte, v uint32) []byte {
	return append(b, byte(v>>24), byte(v>>16), byte(v>>8), byte(v))
}

func appendFloat(b []byte, v float64) []byte {
	var tmp [8]byte
	binary.BigEndian.PutUint64(tmp[:], math.Float64bits(v))
	return append(b, tmp[:]...)
}

func appendBlob(b, blob []byte) []byte {
	b = appendUint16(b, uint16(len(blob)))
	return append(b, blob...)
}

// reader is a bounds-checked cursor over a wire packet.
type reader struct {
	buf []byte
	off int
}

func (r *reader) take(n int) ([]byte, error) {
	if n < 0 || r.off+n > len(r.buf) {
		return nil, ErrTruncated
	}
	out := r.buf[r.off : r.off+n]
	r.off += n
	if n == 0 {
		return nil, nil
	}
	return out, nil
}

func (r *reader) copy(dst []byte) error {
	src, err := r.take(len(dst))
	if err != nil {
		return err
	}
	copy(dst, src)
	return nil
}

func (r *reader) byte() (byte, error) {
	b, err := r.take(1)
	if err != nil {
		return 0, err
	}
	return b[0], nil
}

func (r *reader) uint16() (uint16, error) {
	b, err := r.take(2)
	if err != nil {
		return 0, err
	}
	return binary.BigEndian.Uint16(b), nil
}

func (r *reader) uint32() (uint32, error) {
	b, err := r.take(4)
	if err != nil {
		return 0, err
	}
	return binary.BigEndian.Uint32(b), nil
}

func (r *reader) float() (float64, error) {
	b, err := r.take(8)
	if err != nil {
		return 0, err
	}
	return math.Float64frombits(binary.BigEndian.Uint64(b)), nil
}

func (r *reader) blob() ([]byte, error) {
	n, err := r.uint16()
	if err != nil {
		return nil, err
	}
	return r.take(int(n))
}

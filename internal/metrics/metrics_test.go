package metrics

import (
	"testing"

	"alertmanet/internal/medium"
)

func TestEmptyCollector(t *testing.T) {
	c := NewCollector()
	if c.Sent() != 0 || c.Completed() != 0 || c.DeliveryRate() != 0 ||
		c.MeanLatency() != 0 || c.HopsPerPacket() != 0 || c.MeanRFs() != 0 ||
		c.Participants() != 0 {
		t.Fatal("empty collector should report zeros")
	}
}

func TestBasicFlow(t *testing.T) {
	c := NewCollector()
	r := c.Start(1, 2, 10.0)
	if r.Seq != 0 || r.Src != 1 || r.Dst != 2 || r.SentAt != 10 {
		t.Fatalf("record = %+v", r)
	}
	r.Hops = 5
	r.RFs = 2
	r.Path = []medium.NodeID{1, 3, 4, 2}
	c.Complete(r, 10.5, true)
	if c.DeliveryRate() != 1 {
		t.Fatal("delivery rate wrong")
	}
	if r.Latency() != 0.5 {
		t.Fatalf("latency = %v", r.Latency())
	}
	if c.MeanLatency() != 0.5 {
		t.Fatal("mean latency wrong")
	}
	if c.HopsPerPacket() != 5 {
		t.Fatal("hops per packet wrong")
	}
	if c.MeanRFs() != 2 {
		t.Fatal("mean RFs wrong")
	}
	// Endpoints are excluded from the participant set: only relays 3, 4.
	if c.Participants() != 2 {
		t.Fatalf("participants = %d, want 2 (endpoints excluded)", c.Participants())
	}
}

func TestUndeliveredPacket(t *testing.T) {
	c := NewCollector()
	r := c.Start(0, 1, 0)
	r.Hops = 3
	c.Complete(r, 0, false)
	if c.DeliveryRate() != 0 {
		t.Fatal("delivery rate should be 0")
	}
	if r.Latency() != 0 {
		t.Fatal("undelivered latency should be 0")
	}
	// Hops still count toward transmission cost.
	if c.HopsPerPacket() != 3 {
		t.Fatal("hops should count even when dropped")
	}
}

func TestMixedDelivery(t *testing.T) {
	c := NewCollector()
	for i := 0; i < 4; i++ {
		r := c.Start(0, 1, float64(i))
		r.Hops = 2
		c.Complete(r, float64(i)+0.25, i%2 == 0)
	}
	if c.DeliveryRate() != 0.5 {
		t.Fatalf("rate = %v", c.DeliveryRate())
	}
	if c.Delivered() != 2 {
		t.Fatalf("delivered = %d, want 2", c.Delivered())
	}
	if c.MeanLatency() != 0.25 {
		t.Fatalf("latency = %v", c.MeanLatency())
	}
}

func TestDeliveredCountEmpty(t *testing.T) {
	c := NewCollector()
	if c.Delivered() != 0 {
		t.Fatal("empty collector reports deliveries")
	}
}

func TestExtraHops(t *testing.T) {
	c := NewCollector()
	r := c.Start(0, 1, 0)
	r.Hops = 4
	c.Complete(r, 1, true)
	c.ExtraHops = 6 // e.g. ALARM dissemination
	if c.HopsPerPacket() != 10 {
		t.Fatalf("hops per packet = %v, want (4+6)/1", c.HopsPerPacket())
	}
}

func TestCumulativeParticipants(t *testing.T) {
	c := NewCollector()
	r1 := c.Start(0, 1, 0)
	r1.Path = []medium.NodeID{0, 5, 1}
	c.Complete(r1, 1, true)
	r2 := c.Start(0, 1, 2)
	r2.Path = []medium.NodeID{0, 7, 8, 1} // two new nodes
	c.Complete(r2, 3, true)
	r3 := c.Start(0, 1, 4)
	r3.Path = []medium.NodeID{0, 5, 1} // nothing new
	c.Complete(r3, 5, true)
	got := c.CumulativeParticipants()
	want := []int{1, 3, 3} // endpoints (0 and 1) excluded
	if len(got) != len(want) {
		t.Fatalf("cumulative = %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("cumulative = %v, want %v", got, want)
		}
	}
	// Returned slice is a copy.
	got[0] = 99
	if c.CumulativeParticipants()[0] != 1 {
		t.Fatal("CumulativeParticipants leaked internal slice")
	}
}

func TestAddParticipantDedup(t *testing.T) {
	c := NewCollector()
	c.AddParticipant(3)
	c.AddParticipant(3)
	c.AddParticipant(4)
	if c.Participants() != 2 {
		t.Fatalf("participants = %d", c.Participants())
	}
}

func TestRecordsAccessor(t *testing.T) {
	c := NewCollector()
	c.Start(0, 1, 0)
	c.Start(2, 3, 1)
	rs := c.Records()
	if len(rs) != 2 || rs[1].Src != 2 {
		t.Fatal("Records wrong")
	}
	if c.Sent() != 2 {
		t.Fatal("Sent wrong")
	}
}

// TestRecordSlabReuse pins the slab contract: records come back zeroed but
// keep their Path backing array across Reset, a slab-backed collector
// behaves exactly like a heap-backed one, and steady-state reuse after the
// first run allocates nothing.
func TestRecordSlabReuse(t *testing.T) {
	var slab RecordSlab
	c := NewCollector()
	c.UseSlab(&slab)

	r := c.Start(1, 2, 0.5)
	if r.Done() {
		t.Fatal("fresh record already done")
	}
	r.Path = append(r.Path, 1, 7, 2)
	r.Hops = 3
	c.AddPath(r.Path)
	c.Complete(r, 1.5, true)
	if !r.Done() || c.Unfinished() != 0 {
		t.Fatalf("done=%v unfinished=%d", r.Done(), c.Unfinished())
	}
	if c.Participants() != 3 { // AddPath counted endpoints; Complete only node 7
		t.Fatalf("participants = %d", c.Participants())
	}
	firstPath := &r.Path[0]

	// A second run on the reset slab gets the same record storage back,
	// zeroed, with the Path backing array retained.
	slab.Reset()
	c2 := NewCollector()
	c2.UseSlab(&slab)
	r2 := c2.Start(8, 9, 2.0)
	if r2 != r {
		t.Fatal("reset slab did not reuse the first record")
	}
	if r2.Done() || r2.Delivered || r2.Hops != 0 || len(r2.Path) != 0 {
		t.Fatalf("reused record not zeroed: %+v", r2)
	}
	if r2.Src != 8 || r2.Dst != 9 || r2.SentAt != 2.0 || r2.Seq != 0 {
		t.Fatalf("reused record fields wrong: %+v", r2)
	}
	r2.Path = append(r2.Path, 8)
	if &r2.Path[0] != firstPath {
		t.Fatal("reused record did not keep its Path backing array")
	}

	// Steady state: a full warmed block reused across resets allocates 0.
	slab.Reset()
	for i := 0; i < slabBlockSize+1; i++ { // warm two blocks
		slab.get()
	}
	allocs := testing.AllocsPerRun(10, func() {
		slab.Reset()
		for i := 0; i < slabBlockSize+1; i++ {
			slab.get()
		}
	})
	if allocs != 0 {
		t.Fatalf("warmed slab allocates %.1f per run, want 0", allocs)
	}
}

// Package metrics collects the evaluation quantities of Section 5.2:
// actual participating nodes, random-forwarder counts, hops per packet,
// latency per packet, and delivery rate. Protocols record per-packet events
// into a Collector; the experiment harness aggregates over runs.
package metrics

import (
	"alertmanet/internal/medium"
	"alertmanet/internal/telemetry"
)

// PacketRecord traces one application packet end to end.
type PacketRecord struct {
	// Seq is the collector-assigned sequence number.
	Seq int
	// Src and Dst identify the S-D pair.
	Src, Dst medium.NodeID
	// SentAt is when the source issued the packet; DeliveredAt when the
	// destination received it (0 and Delivered=false if it never did).
	SentAt, DeliveredAt float64
	// Hops counts transmissions the packet traversed (including the
	// final broadcast leg, counted as one hop per the paper's
	// "accumulated routing hop counts").
	Hops int
	// RFs counts ALERT random forwarders on the path (0 for baselines).
	RFs int
	// Delivered reports whether the destination got the packet.
	Delivered bool
	// Path lists every node that held or received the packet.
	Path []medium.NodeID

	// done guards against a record completing twice (a protocol's
	// complete-timeout racing its terminal routing outcome).
	done bool
}

// Done reports whether the record has been completed.
func (r *PacketRecord) Done() bool { return r.done }

// Latency returns the packet's end-to-end delay, or 0 if undelivered.
func (r *PacketRecord) Latency() float64 {
	if !r.Delivered {
		return 0
	}
	return r.DeliveredAt - r.SentAt
}

// Collector accumulates packet records and derived aggregates for one run.
type Collector struct {
	records []*PacketRecord
	// participants is the cumulative set of nodes that took part in any
	// routing so far ("actual participating nodes", Fig. 10).
	participants map[medium.NodeID]struct{}
	// cumulative[i] is the participant-set size after packet i completed
	// (delivered or dropped).
	cumulative []int
	// ExtraHops accrues protocol overhead hops not tied to one packet,
	// e.g. ALARM's periodic identity dissemination (Fig. 15).
	ExtraHops uint64
	completed int
	// tap, when non-nil, observes packet lifecycle endpoints; now supplies
	// the simulated clock for completion events (Complete's deliveredAt is
	// zero for undelivered packets).
	tap *telemetry.Tap
	now func() float64
	// slab, when non-nil, supplies the records Start opens instead of the
	// heap — reused across runs by the campaign's per-worker arenas.
	slab *RecordSlab
}

// slabBlockSize records per block: large enough that a typical run touches
// one or two blocks, small enough that capacity growth stays incremental.
const slabBlockSize = 512

// RecordSlab is a block allocator for PacketRecords, reusable across runs.
// Records handed out by get stay valid until Reset; the owner must not
// Reset while any previous run's records are still referenced. Each reused
// record keeps its Path backing array, so steady-state reuse allocates
// nothing.
type RecordSlab struct {
	blocks      [][]PacketRecord
	block, next int
}

// get returns a zeroed record, reusing storage from earlier runs.
func (s *RecordSlab) get() *PacketRecord {
	if s.block == len(s.blocks) {
		s.blocks = append(s.blocks, make([]PacketRecord, slabBlockSize))
	}
	r := &s.blocks[s.block][s.next]
	s.next++
	if s.next == slabBlockSize {
		s.block++
		s.next = 0
	}
	path := r.Path[:0]
	*r = PacketRecord{Path: path}
	return r
}

// Reset rewinds the slab so the next get reuses the first record again.
// Every record previously handed out becomes invalid.
func (s *RecordSlab) Reset() { s.block, s.next = 0, 0 }

// UseSlab draws all subsequently started records from s instead of the
// heap. The collector does not own the slab; the caller coordinates Reset
// with the records' lifetime.
func (c *Collector) UseSlab(s *RecordSlab) { c.slab = s }

// SetTap attaches a telemetry tap observing packet starts and completions.
// now supplies the current simulated time for completion events. A nil tap
// (the default) disables packet telemetry.
func (c *Collector) SetTap(t *telemetry.Tap, now func() float64) {
	c.tap = t
	c.now = now
}

// NewCollector creates an empty collector.
func NewCollector() *Collector {
	return &Collector{participants: make(map[medium.NodeID]struct{})}
}

// Start opens a record for a new application packet.
func (c *Collector) Start(src, dst medium.NodeID, now float64) *PacketRecord {
	var r *PacketRecord
	if c.slab != nil {
		r = c.slab.get()
	} else {
		r = &PacketRecord{}
	}
	r.Seq, r.Src, r.Dst, r.SentAt = len(c.records), src, dst, now
	c.records = append(c.records, r)
	if c.tap != nil {
		c.tap.PacketSent(now, r.Seq, int(src), int(dst))
	}
	return r
}

// AddParticipant marks a node as having taken part in routing.
func (c *Collector) AddParticipant(id medium.NodeID) {
	c.participants[id] = struct{}{}
}

// AddPath marks every node on a path as a participant.
func (c *Collector) AddPath(path []medium.NodeID) {
	for _, id := range path {
		c.participants[id] = struct{}{}
	}
}

// Complete finalizes a record (delivered or not) and snapshots the
// cumulative participant count. Participating nodes are the forwarders and
// random forwarders on the path — the endpoints themselves are not counted,
// matching the paper's "RFs and relay nodes that actually participate in
// routing" (GPSR's stable shortest path then shows its characteristic 2-3
// participants in Fig. 10b).
//
// Complete is idempotent: only the first call for a record counts, so a
// late link-layer outcome cannot double-complete a packet the protocol's
// timeout already closed.
func (c *Collector) Complete(r *PacketRecord, deliveredAt float64, delivered bool) {
	if r.done {
		return
	}
	r.done = true
	r.Delivered = delivered
	if delivered {
		r.DeliveredAt = deliveredAt
	}
	for _, id := range r.Path {
		if id != r.Src && id != r.Dst {
			c.participants[id] = struct{}{}
		}
	}
	c.completed++
	c.cumulative = append(c.cumulative, len(c.participants))
	if c.tap != nil {
		at := deliveredAt
		if c.now != nil {
			at = c.now()
		}
		c.tap.PacketDone(at, r.Seq, delivered, r.Hops, r.Latency())
	}
}

// Records returns all packet records.
func (c *Collector) Records() []*PacketRecord { return c.records }

// Sent returns how many packets were issued.
func (c *Collector) Sent() int { return len(c.records) }

// Completed returns how many packets finished (delivered or dropped).
func (c *Collector) Completed() int { return c.completed }

// Unfinished returns how many packets were issued but never completed. A
// drained run must end at zero: every send reaches exactly one terminal
// outcome (the accounting leak this counter regresses — frames lost on air
// used to vanish with Completed() < Sent() silently).
func (c *Collector) Unfinished() int { return len(c.records) - c.completed }

// Delivered returns the exact number of delivered packets. Energy-per-
// delivered and similar ratios should use this count directly rather than
// reconstructing it from Sent*DeliveryRate.
func (c *Collector) Delivered() int {
	d := 0
	for _, r := range c.records {
		if r.Delivered {
			d++
		}
	}
	return d
}

// DeliveryRate returns delivered / sent (0 for no packets).
func (c *Collector) DeliveryRate() float64 {
	if len(c.records) == 0 {
		return 0
	}
	return float64(c.Delivered()) / float64(len(c.records))
}

// MeanLatency returns the average end-to-end delay over delivered packets.
func (c *Collector) MeanLatency() float64 {
	sum, n := 0.0, 0
	for _, r := range c.records {
		if r.Delivered {
			sum += r.Latency()
			n++
		}
	}
	if n == 0 {
		return 0
	}
	return sum / float64(n)
}

// HopsPerPacket returns accumulated hop counts divided by packets sent
// (the paper's metric 4), including ExtraHops overhead.
func (c *Collector) HopsPerPacket() float64 {
	if len(c.records) == 0 {
		return 0
	}
	total := float64(c.ExtraHops)
	for _, r := range c.records {
		total += float64(r.Hops)
	}
	return total / float64(len(c.records))
}

// MeanRFs returns the average number of random forwarders per packet.
func (c *Collector) MeanRFs() float64 {
	if len(c.records) == 0 {
		return 0
	}
	sum := 0
	for _, r := range c.records {
		sum += r.RFs
	}
	return float64(sum) / float64(len(c.records))
}

// Participants returns the cumulative number of distinct nodes that have
// taken part in routing.
func (c *Collector) Participants() int { return len(c.participants) }

// CumulativeParticipants returns the participant-set size after each
// completed packet, i.e. the series plotted in Fig. 10a.
func (c *Collector) CumulativeParticipants() []int {
	out := make([]int, len(c.cumulative))
	copy(out, c.cumulative)
	return out
}

package medium

import (
	"math"
	"reflect"
	"testing"

	"alertmanet/internal/geo"
	"alertmanet/internal/rng"
	"alertmanet/internal/sim"
)

// windowModel pins nodes at fixed positions except that one node teleports
// to a far position during (from, to) — a deterministic way to break a link
// for exactly one frame's flight window.
type windowModel struct {
	base     []geo.Point
	far      geo.Point
	id       int
	from, to float64
}

func (w *windowModel) Position(id int, t float64) geo.Point {
	if id == w.id && t > w.from && t < w.to {
		return w.far
	}
	return w.base[id]
}
func (w *windowModel) N() int          { return len(w.base) }
func (w *windowModel) Field() geo.Rect { return field }

// noJitter returns the default ARQ parameters with the MAC jitter removed so
// every transmission and backoff lands at an exactly computable instant.
func noJitter() Params {
	par := DefaultParams()
	par.MACDelayMean = 0
	return par
}

func TestARQValidation(t *testing.T) {
	eng := sim.NewEngine()
	mob := newFixed(geo.Point{}, geo.Point{X: 10})
	par := noJitter()
	par.Retries = -1
	if _, err := New(eng, mob, par, rng.New(1)); err == nil {
		t.Fatal("negative Retries should be an error")
	}
	par = noJitter()
	par.AckSize = 0
	if _, err := New(eng, mob, par, rng.New(1)); err == nil {
		t.Fatal("ARQ without an ACK size should be an error")
	}
	par = noJitter()
	par.RetryBackoff = 0
	if _, err := New(eng, mob, par, rng.New(1)); err == nil {
		t.Fatal("ARQ without a backoff should be an error")
	}
	par = noJitter()
	par.Retries = 0
	par.AckSize = 0
	par.RetryBackoff = 0
	if _, err := New(eng, mob, par, rng.New(1)); err != nil {
		t.Fatalf("Retries=0 should not require ACK parameters: %v", err)
	}
}

func TestARQRetryRecoversLoss(t *testing.T) {
	// First attempt hits LossRate=1; the loss window closes before the
	// retransmission arrives, so the ARQ recovers what fire-and-forget
	// would have lost.
	par := noJitter()
	par.LossRate = 1
	mob := newFixed(geo.Point{}, geo.Point{X: 100})
	eng, med := setup(mob, par)
	got := 0
	med.Attach(1, func(NodeID, any, int) { got++ })
	var out SendOutcome
	outs := 0
	med.UnicastOutcome(0, 1, "x", 64, func(o SendOutcome) { out = o; outs++ })
	eng.Schedule(0.5e-3, func() { med.SetLossRate(0) }) // after attempt 1 fails
	eng.Run()
	if got != 1 {
		t.Fatalf("handler fired %d times", got)
	}
	if outs != 1 || out != SendDelivered {
		t.Fatalf("outcome = %v (fired %d times)", out, outs)
	}
	c := med.Counters()
	if c.DroppedLoss != 1 || c.Retransmissions != 1 || c.Delivered != 1 || c.AcksSent != 1 {
		t.Fatalf("counters = %+v", c)
	}
}

func TestARQBackoffTiming(t *testing.T) {
	// Receiver permanently out of range: the ARQ burns its whole budget.
	// With the jitter removed, attempt k's arrival instant is exactly
	// k*d + (2^(k-1)-1)*b (d = data tx delay, b = base backoff), so the
	// terminal SendLost resolves at 4d + 7b for Retries = 3.
	par := noJitter()
	mob := newFixed(geo.Point{}, geo.Point{X: 300})
	eng, med := setup(mob, par)
	var at float64
	var out SendOutcome
	med.UnicastOutcome(0, 1, "x", 64, func(o SendOutcome) { out = o; at = eng.Now() })
	eng.Run()
	d := 64 * 8 / par.Bitrate
	want := 4*d + 7*par.RetryBackoff
	if out != SendLost {
		t.Fatalf("outcome = %v", out)
	}
	if math.Abs(at-want) > 1e-12 {
		t.Fatalf("resolved at %v, want %v", at, want)
	}
	c := med.Counters()
	if c.DroppedRange != 4 || c.Retransmissions != 3 || c.AcksSent != 0 {
		t.Fatalf("counters = %+v", c)
	}
}

func TestARQRetriesZeroFireAndForget(t *testing.T) {
	// Retries=0 reproduces the pre-ARQ channel: one attempt, no ACK
	// frames or bytes, delivery at the bare transmission delay, and the
	// outcome resolves at that same instant.
	par := noJitter()
	par.Retries = 0
	mob := newFixed(geo.Point{}, geo.Point{X: 100})
	eng, med := setup(mob, par)
	var rx float64
	med.Attach(1, func(NodeID, any, int) { rx = eng.Now() })
	var out SendOutcome
	var at float64
	med.UnicastOutcome(0, 1, "x", 512, func(o SendOutcome) { out = o; at = eng.Now() })
	eng.Run()
	d := 512 * 8 / par.Bitrate
	if rx != d || at != d || out != SendDelivered {
		t.Fatalf("rx=%v resolved=%v out=%v, want both at %v delivered", rx, at, out, d)
	}
	c := med.Counters()
	if c.AcksSent != 0 || c.Retransmissions != 0 || c.TxBytes != 512 || c.RxBytes != 512 {
		t.Fatalf("counters = %+v", c)
	}

	// And a loss resolves SendLost on the first (only) attempt.
	med.SetLossRate(1)
	out = 255
	med.UnicastOutcome(0, 1, "x", 512, func(o SendOutcome) { out = o })
	eng.Run()
	if out != SendLost {
		t.Fatalf("outcome = %v", out)
	}
	if c := med.Counters(); c.DroppedLoss != 1 || c.Retransmissions != 0 {
		t.Fatalf("counters = %+v", c)
	}
}

func TestARQCompromisedSenderOutcome(t *testing.T) {
	// A compromised relay sinking its own transmission is a distinct
	// terminal outcome, not a generic loss.
	mob := newFixed(geo.Point{}, geo.Point{X: 100})
	eng, med := setup(mob, noJitter())
	med.Attach(1, func(NodeID, any, int) { t.Error("sunk frame delivered") })
	med.Compromise(0)
	var out SendOutcome
	outs := 0
	med.UnicastOutcome(0, 1, "x", 64, func(o SendOutcome) { out = o; outs++ })
	eng.Run()
	if outs != 1 || out != SendCompromised {
		t.Fatalf("outcome = %v (fired %d times)", out, outs)
	}
	if c := med.Counters(); c.DroppedCompromised != 1 || c.Retransmissions != 0 {
		t.Fatalf("counters = %+v", c)
	}
}

func TestARQAckImmuneToCompromisedReceiver(t *testing.T) {
	// ACKs are MAC-level control traffic: a compromised receiver sinks
	// the packets it should forward, not its link-layer responses — so
	// the sender still learns the frame arrived.
	mob := newFixed(geo.Point{}, geo.Point{X: 100})
	eng, med := setup(mob, noJitter())
	got := 0
	med.Attach(1, func(NodeID, any, int) { got++ })
	med.Compromise(1)
	var out SendOutcome
	med.UnicastOutcome(0, 1, "x", 64, func(o SendOutcome) { out = o })
	eng.Run()
	if got != 1 || out != SendDelivered {
		t.Fatalf("got=%d outcome=%v", got, out)
	}
}

func TestARQDuplicateAbsorbed(t *testing.T) {
	// The receiver teleports out of range exactly during the first ACK's
	// flight: the data arrived but the sender hears silence and
	// retransmits. The duplicate must not re-fire the handler, and the
	// second ACK resolves the send delivered.
	par := noJitter()
	d := 64 * 8 / par.Bitrate // 0.256 ms data flight
	mob := &windowModel{
		base: []geo.Point{{}, {X: 100}},
		far:  geo.Point{X: 10000},
		id:   1,
		from: d + 0.2e-4, // after data1 arrives at d...
		to:   d + 1.0e-4, // ...but past ack1's arrival at d + 0.056 ms
	}
	eng := sim.NewEngine()
	med := MustNew(eng, mob, par, rng.New(1))
	got := 0
	med.Attach(1, func(NodeID, any, int) { got++ })
	var out SendOutcome
	outs := 0
	med.UnicastOutcome(0, 1, "x", 64, func(o SendOutcome) { out = o; outs++ })
	eng.Run()
	if got != 1 {
		t.Fatalf("handler fired %d times", got)
	}
	if outs != 1 || out != SendDelivered {
		t.Fatalf("outcome = %v (fired %d times)", out, outs)
	}
	c := med.Counters()
	if c.Duplicates != 1 || c.AcksSent != 2 || c.AcksLost != 1 || c.Delivered != 1 {
		t.Fatalf("counters = %+v", c)
	}
	if c.Retransmissions != 1 {
		t.Fatalf("counters = %+v", c)
	}
}

// arqTraceEvent is one observed fact of a lossy run, for determinism
// comparison.
type arqTraceEvent struct {
	At  float64
	Out SendOutcome
}

func TestARQDeterministicOnInjectedSource(t *testing.T) {
	// Two identically seeded runs over a lossy channel must produce
	// bit-identical outcome traces and counters: all ARQ randomness
	// (loss coins, MAC jitter for data and ACK frames) rides the
	// injected rng.Source, never an ambient stream.
	run := func() ([]arqTraceEvent, Counters) {
		par := DefaultParams() // jitter on: exercises the rng draws
		par.LossRate = 0.3
		mob := newFixed(geo.Point{}, geo.Point{X: 100})
		eng := sim.NewEngine()
		med := MustNew(eng, mob, par, rng.New(7))
		med.Attach(1, func(NodeID, any, int) {})
		var trace []arqTraceEvent
		for i := 0; i < 200; i++ {
			at := float64(i) * 0.05
			eng.At(at, func() {
				med.UnicastOutcome(0, 1, "x", 64, func(o SendOutcome) {
					trace = append(trace, arqTraceEvent{At: eng.Now(), Out: o})
				})
			})
		}
		eng.Run()
		return trace, med.Counters()
	}
	t1, c1 := run()
	t2, c2 := run()
	if !reflect.DeepEqual(t1, t2) {
		t.Fatal("outcome traces differ between identically seeded runs")
	}
	if c1 != c2 {
		t.Fatalf("counters differ:\n%+v\n%+v", c1, c2)
	}
	if len(t1) != 200 {
		t.Fatalf("resolved %d of 200 sends", len(t1))
	}
}

func TestBroadcastCountsOutOfRangeReceivers(t *testing.T) {
	// Per-receiver range drops land in the counters, symmetric with
	// Unicast (a broadcast is one transmission, many potential receivers).
	mob := newFixed(
		geo.Point{},             // sender
		geo.Point{X: 100},       // in range
		geo.Point{X: 300},       // out of range
		geo.Point{X: 0, Y: 400}, // out of range
	)
	eng, med := setup(mob, noJitter())
	for i := 1; i <= 3; i++ {
		med.Attach(NodeID(i), func(NodeID, any, int) {})
	}
	med.Broadcast(0, "b", 64)
	eng.Run()
	c := med.Counters()
	if c.DroppedRange != 2 || c.Delivered != 1 {
		t.Fatalf("counters = %+v", c)
	}
}

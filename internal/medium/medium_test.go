package medium

import (
	"testing"

	"alertmanet/internal/geo"
	"alertmanet/internal/mobility"
	"alertmanet/internal/rng"
	"alertmanet/internal/sim"
)

var field = geo.Rect{Min: geo.Point{X: 0, Y: 0}, Max: geo.Point{X: 1000, Y: 1000}}

// fixedModel pins nodes at given positions for precise range tests.
type fixedModel struct {
	pos []geo.Point
}

func (f *fixedModel) Position(id int, _ float64) geo.Point { return f.pos[id] }
func (f *fixedModel) N() int                               { return len(f.pos) }
func (f *fixedModel) Field() geo.Rect                      { return field }

func newFixed(pos ...geo.Point) *fixedModel { return &fixedModel{pos: pos} }

func setup(mob mobility.Model, par Params) (*sim.Engine, *Medium) {
	eng := sim.NewEngine()
	return eng, MustNew(eng, mob, par, rng.New(1))
}

func TestUnicastInRange(t *testing.T) {
	mob := newFixed(geo.Point{X: 0, Y: 0}, geo.Point{X: 100, Y: 0})
	eng, med := setup(mob, DefaultParams())
	var got any
	med.Attach(1, func(from NodeID, payload any, size int) {
		if from != 0 || size != 512 {
			t.Errorf("from=%v size=%v", from, size)
		}
		got = payload
	})
	med.Unicast(0, 1, "hello", 512)
	eng.Run()
	if got != "hello" {
		t.Fatalf("payload = %v", got)
	}
	c := med.Counters()
	if c.UnicastsSent != 1 || c.Delivered != 1 {
		t.Fatalf("counters = %+v", c)
	}
}

func TestUnicastOutOfRange(t *testing.T) {
	mob := newFixed(geo.Point{X: 0, Y: 0}, geo.Point{X: 300, Y: 0})
	eng, med := setup(mob, DefaultParams())
	delivered := false
	med.Attach(1, func(NodeID, any, int) { delivered = true })
	med.Unicast(0, 1, "x", 64)
	eng.Run()
	if delivered {
		t.Fatal("out-of-range unicast delivered")
	}
	// Every attempt of the default ARQ budget misses and is counted.
	c := med.Counters()
	want := uint64(1 + DefaultParams().Retries)
	if c.DroppedRange != want || c.Retransmissions != want-1 {
		t.Fatalf("counters = %+v", c)
	}
}

func TestUnicastDelayComposition(t *testing.T) {
	par := DefaultParams()
	par.MACDelayMean = 0 // deterministic
	mob := newFixed(geo.Point{X: 0, Y: 0}, geo.Point{X: 100, Y: 0})
	eng, med := setup(mob, par)
	var at float64
	med.Attach(1, func(NodeID, any, int) { at = eng.Now() })
	med.Unicast(0, 1, "x", 512)
	eng.Run()
	want := 512 * 8 / par.Bitrate
	if at != want {
		t.Fatalf("delivery at %v, want %v", at, want)
	}
}

func TestMACJitterAddsDelay(t *testing.T) {
	par := DefaultParams()
	par.MACDelayMean = 0.01
	mob := newFixed(geo.Point{X: 0, Y: 0}, geo.Point{X: 100, Y: 0})
	eng, med := setup(mob, par)
	var at float64
	med.Attach(1, func(NodeID, any, int) { at = eng.Now() })
	med.Unicast(0, 1, "x", 512)
	eng.Run()
	base := 512 * 8 / par.Bitrate
	if at <= base {
		t.Fatalf("delivery at %v should exceed pure tx delay %v", at, base)
	}
}

func TestBroadcastReachesOnlyInRange(t *testing.T) {
	mob := newFixed(
		geo.Point{X: 0, Y: 0},   // sender
		geo.Point{X: 100, Y: 0}, // in range
		geo.Point{X: 249, Y: 0}, // in range (boundary)
		geo.Point{X: 251, Y: 0}, // out of range
	)
	eng, med := setup(mob, DefaultParams())
	got := map[NodeID]bool{}
	for id := 1; id <= 3; id++ {
		id := NodeID(id)
		med.Attach(id, func(NodeID, any, int) { got[id] = true })
	}
	med.Broadcast(0, "b", 64)
	eng.Run()
	if !got[1] || !got[2] || got[3] {
		t.Fatalf("receivers = %v", got)
	}
	if med.Counters().BroadcastsSent != 1 || med.Counters().Delivered != 2 {
		t.Fatalf("counters = %+v", med.Counters())
	}
}

func TestBroadcastExcludesSender(t *testing.T) {
	mob := newFixed(geo.Point{X: 0, Y: 0}, geo.Point{X: 10, Y: 0})
	eng, med := setup(mob, DefaultParams())
	selfRx := false
	med.Attach(0, func(NodeID, any, int) { selfRx = true })
	med.Attach(1, func(NodeID, any, int) {})
	med.Broadcast(0, "b", 64)
	eng.Run()
	if selfRx {
		t.Fatal("sender received its own broadcast")
	}
}

func TestLossRate(t *testing.T) {
	par := DefaultParams()
	par.LossRate = 1.0
	mob := newFixed(geo.Point{X: 0, Y: 0}, geo.Point{X: 10, Y: 0})
	eng, med := setup(mob, par)
	delivered := false
	med.Attach(1, func(NodeID, any, int) { delivered = true })
	med.Unicast(0, 1, "x", 64)
	eng.Run()
	if delivered {
		t.Fatal("LossRate=1 delivered a packet")
	}
	// The whole retry budget burns on the loss coin.
	c := med.Counters()
	want := uint64(1 + par.Retries)
	if c.DroppedLoss != want || c.Retransmissions != want-1 {
		t.Fatalf("counters = %+v", c)
	}
}

func TestLossRatePartial(t *testing.T) {
	par := DefaultParams()
	par.LossRate = 0.5
	par.Retries = 0 // fire-and-forget: measure the raw loss coin
	mob := newFixed(geo.Point{X: 0, Y: 0}, geo.Point{X: 10, Y: 0})
	eng, med := setup(mob, par)
	n := 0
	med.Attach(1, func(NodeID, any, int) { n++ })
	for i := 0; i < 1000; i++ {
		med.Unicast(0, 1, "x", 64)
	}
	eng.Run()
	if n < 350 || n > 650 {
		t.Fatalf("with 50%% loss, %d/1000 delivered", n)
	}
}

func TestMobilityBreaksLinkMidFlight(t *testing.T) {
	// Node 1 starts in range but the delivery check happens at arrival
	// time; with a long transmission and a fast node, the link can break.
	par := DefaultParams()
	par.Bitrate = 1000 // 8 bits/ms -> 512 B takes ~4 s
	par.MACDelayMean = 0
	eng := sim.NewEngine()
	mob := mobility.NewRandomWaypoint(field, 2, mobility.Fixed(200), rng.New(42))
	med := MustNew(eng, mob, par, rng.New(1))
	// Count drops over several sends; at 200 m/s the receiver will often
	// be elsewhere 4 seconds later.
	med.Attach(1, func(NodeID, any, int) {})
	for i := 0; i < 20; i++ {
		med.Unicast(0, 1, "x", 512)
	}
	eng.Run()
	c := med.Counters()
	if c.DroppedRange == 0 {
		t.Skip("randomly stayed in range; acceptable but rare")
	}
}

func TestNeighborsRange(t *testing.T) {
	mob := newFixed(
		geo.Point{X: 500, Y: 500},
		geo.Point{X: 600, Y: 500}, // 100 m
		geo.Point{X: 500, Y: 740}, // 240 m
		geo.Point{X: 500, Y: 760}, // 260 m
	)
	_, med := setup(mob, DefaultParams())
	nb := med.Neighbors(0)
	ids := map[NodeID]bool{}
	for _, n := range nb {
		ids[n.ID] = true
	}
	if !ids[1] || !ids[2] || ids[3] || ids[0] {
		t.Fatalf("neighbors = %v", nb)
	}
}

func TestNeighborStaleness(t *testing.T) {
	// Positions in the neighbor table come from the last hello tick, not
	// the current instant.
	par := DefaultParams()
	par.HelloInterval = 10
	eng := sim.NewEngine()
	mob := mobility.NewRandomWaypoint(field, 5, mobility.Fixed(5), rng.New(2))
	med := MustNew(eng, mob, par, rng.New(3))
	eng.Schedule(14, func() {
		nb := med.Neighbors(0)
		for _, n := range nb {
			// Advertised position must match position at t=10 (the
			// last beacon), not t=14.
			want := mob.Position(int(n.ID), 10)
			if n.Pos != want {
				t.Errorf("neighbor %d advertised %v, want beacon-time %v",
					n.ID, n.Pos, want)
			}
		}
	})
	eng.Run()
}

// movingModel moves each node linearly from a start point, for tests that
// need positions to change between beacon ticks.
type movingModel struct {
	start []geo.Point
	vel   []geo.Point
}

func (m *movingModel) Position(id int, t float64) geo.Point {
	return geo.Point{
		X: m.start[id].X + m.vel[id].X*t,
		Y: m.start[id].Y + m.vel[id].Y*t,
	}
}
func (m *movingModel) N() int          { return len(m.start) }
func (m *movingModel) Field() geo.Rect { return field }

// TestNeighborsExactBeaconInstant regresses the helloTime tick-boundary bug:
// with an awkward HelloInterval like 0.3 s, querying Neighbors at the exact
// beacon instant float64(k)*interval used to land on tick k-1 whenever
// fl(fl(k*h)/fl(h)) rounds below k — at h=0.3 the first such tick is k=31,
// where int(now/h) yields 30 — serving positions a whole beacon stale. The
// query at t = 31*0.3 must see tick-31 positions: node 2 drifts out of radio
// range between tick 30 (t=9.0, 248.5 m) and tick 31 (t=9.3, 253.45 m), so
// its membership tells the ticks apart.
func TestNeighborsExactBeaconInstant(t *testing.T) {
	par := DefaultParams()
	par.HelloInterval = 0.3
	h := par.HelloInterval
	mob := &movingModel{
		start: []geo.Point{{X: 500, Y: 500}, {X: 600, Y: 500}, {X: 500, Y: 600}},
		vel:   []geo.Point{{}, {X: 10, Y: 0}, {X: 0, Y: 16.5}},
	}
	eng := sim.NewEngine()
	med := MustNew(eng, mob, par, rng.New(3))
	at := float64(31) * h // runtime arithmetic: int(at/h) == 30, not 31
	eng.At(at, func() {
		nb := med.Neighbors(0)
		ids := map[NodeID]geo.Point{}
		for _, n := range nb {
			ids[n.ID] = n.Pos
		}
		if _, in := ids[2]; in {
			t.Errorf("node 2 still a neighbor at t=%v: beacon tick served stale (tick-30) positions", at)
		}
		pos, in := ids[1]
		if !in {
			t.Fatalf("node 1 missing from neighbors at t=%v", at)
		}
		// The query instant IS beacon tick 31, so the advertised position
		// must be the position at exactly this instant — not tick 30's.
		if want := mob.Position(1, at); pos != want {
			t.Errorf("node 1 advertised %v, want tick-31 position %v", pos, want)
		}
	})
	eng.Run()
}

func TestNodesWithinAndClosest(t *testing.T) {
	mob := newFixed(
		geo.Point{X: 100, Y: 100},
		geo.Point{X: 200, Y: 200},
		geo.Point{X: 900, Y: 900},
	)
	_, med := setup(mob, DefaultParams())
	zone := geo.Rect{Min: geo.Point{X: 0, Y: 0}, Max: geo.Point{X: 500, Y: 500}}
	in := med.NodesWithin(zone)
	if len(in) != 2 {
		t.Fatalf("NodesWithin = %v", in)
	}
	id, d := med.ClosestToPoint(geo.Point{X: 850, Y: 850})
	if id != 2 {
		t.Fatalf("closest = %v (d=%v)", id, d)
	}
}

func TestInvalidParamsError(t *testing.T) {
	eng := sim.NewEngine()
	if _, err := New(eng, newFixed(geo.Point{}), Params{}, rng.New(1)); err == nil {
		t.Fatal("zero range should be an error")
	}
}

func TestUnattachedHandlerDropsSilently(t *testing.T) {
	mob := newFixed(geo.Point{X: 0, Y: 0}, geo.Point{X: 10, Y: 0})
	eng, med := setup(mob, DefaultParams())
	med.Unicast(0, 1, "x", 64)
	eng.Run() // must not panic
	if med.Counters().Delivered != 1 {
		t.Fatal("delivery should still be counted")
	}
}

func TestPositionNow(t *testing.T) {
	mob := newFixed(geo.Point{X: 7, Y: 9})
	_, med := setup(mob, DefaultParams())
	if med.PositionNow(0) != (geo.Point{X: 7, Y: 9}) {
		t.Fatal("PositionNow wrong")
	}
}

func TestCompromisedNodeSinksFrames(t *testing.T) {
	mob := newFixed(geo.Point{X: 0, Y: 0}, geo.Point{X: 100, Y: 0}, geo.Point{X: 200, Y: 0})
	eng, med := setup(mob, DefaultParams())
	got := 0
	med.Attach(1, func(NodeID, any, int) { got++ })
	med.Attach(2, func(NodeID, any, int) { got++ })
	med.Compromise(0)
	if !med.Compromised(0) {
		t.Fatal("Compromised not reported")
	}
	med.Unicast(0, 1, "x", 64)
	med.Broadcast(0, "y", 64)
	eng.Run()
	if got != 0 {
		t.Fatalf("compromised node transmitted %d frames", got)
	}
	if med.Counters().DroppedCompromised != 2 {
		t.Fatalf("counters = %+v", med.Counters())
	}
	// Restored node transmits again.
	med.Restore(0)
	med.Unicast(0, 1, "x", 64)
	eng.Run()
	if got != 1 {
		t.Fatal("restored node still sinking")
	}
}

func TestCompromisedStillReceives(t *testing.T) {
	mob := newFixed(geo.Point{X: 0, Y: 0}, geo.Point{X: 100, Y: 0})
	eng, med := setup(mob, DefaultParams())
	got := 0
	med.Attach(1, func(NodeID, any, int) { got++ })
	med.Compromise(1)
	med.Unicast(0, 1, "x", 64)
	eng.Run()
	if got != 1 {
		t.Fatal("compromised node should still receive (it sinks, not deafens)")
	}
}

func TestTxRxByteCounters(t *testing.T) {
	mob := newFixed(geo.Point{X: 0, Y: 0}, geo.Point{X: 100, Y: 0}, geo.Point{X: 150, Y: 0})
	eng, med := setup(mob, DefaultParams())
	for i := 1; i <= 2; i++ {
		med.Attach(NodeID(i), func(NodeID, any, int) {})
	}
	med.Unicast(0, 1, "x", 100) // tx 100 + 14 ACK, rx 100 + 14 ACK
	med.Broadcast(0, "y", 50)   // tx 50, rx 2*50
	eng.Run()
	// ACK bytes are charged to the same counters as data, so energy
	// accounting sees the ARQ's cost.
	c := med.Counters()
	ack := uint64(DefaultParams().AckSize)
	if c.TxBytes != 150+ack {
		t.Fatalf("TxBytes = %d", c.TxBytes)
	}
	if c.RxBytes != 200+ack {
		t.Fatalf("RxBytes = %d", c.RxBytes)
	}
	if c.AcksSent != 1 || c.AcksLost != 0 {
		t.Fatalf("counters = %+v", c)
	}
}

func TestNeighborsGridMatchesBruteForce(t *testing.T) {
	// The grid-accelerated Neighbors must agree exactly with an O(N^2)
	// scan, including at cell boundaries.
	eng := sim.NewEngine()
	mob := mobility.NewRandomWaypoint(field, 150, mobility.Fixed(3), rng.New(77))
	med := MustNew(eng, mob, DefaultParams(), rng.New(78))
	check := func() {
		tNow := med.helloTime()
		for id := 0; id < 150; id++ {
			got := med.Neighbors(NodeID(id))
			gotSet := map[NodeID]geo.Point{}
			for _, nb := range got {
				gotSet[nb.ID] = nb.Pos
			}
			self := mob.Position(id, tNow)
			want := 0
			for other := 0; other < 150; other++ {
				if other == id {
					continue
				}
				p := mob.Position(other, tNow)
				if self.Dist(p) <= med.Params().Range {
					want++
					if gp, ok := gotSet[NodeID(other)]; !ok || gp != p {
						t.Fatalf("t=%v node %d: neighbor %d missing or wrong pos", tNow, id, other)
					}
				}
			}
			if want != len(got) {
				t.Fatalf("t=%v node %d: %d neighbors, want %d", tNow, id, len(got), want)
			}
		}
	}
	check()
	eng.RunUntil(7.5) // crosses several hello ticks
	check()
}

// BenchmarkNeighborsGrid measures the cached grid lookup at evaluation
// scale (one hello tick, 200 queries).
func BenchmarkNeighborsGrid(b *testing.B) {
	eng := sim.NewEngine()
	mob := mobility.NewStatic(field, 200, rng.New(1))
	med := MustNew(eng, mob, DefaultParams(), rng.New(2))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for id := 0; id < 200; id++ {
			_ = med.Neighbors(NodeID(id))
		}
	}
}

func TestTxByNode(t *testing.T) {
	mob := newFixed(geo.Point{X: 0, Y: 0}, geo.Point{X: 100, Y: 0})
	eng, med := setup(mob, DefaultParams())
	med.Attach(1, func(NodeID, any, int) {})
	med.Unicast(0, 1, "a", 10)
	med.Unicast(0, 1, "b", 10)
	med.Broadcast(1, "c", 10)
	eng.Run()
	// Node 1's two ACK transmissions count toward its load: the ARQ's
	// cost lands on the replier, as in 802.11.
	tx := med.TxByNode()
	if tx[0] != 2 || tx[1] != 3 {
		t.Fatalf("TxByNode = %v", tx)
	}
	// Returned slice is a copy.
	tx[0] = 99
	if med.TxByNode()[0] != 2 {
		t.Fatal("TxByNode leaked internal slice")
	}
	// Compromised transmissions don't count (they never leave the node).
	med.Compromise(0)
	med.Unicast(0, 1, "d", 10)
	eng.Run()
	if med.TxByNode()[0] != 2 {
		t.Fatal("compromised tx counted")
	}
}

// Package medium models the wireless channel and MAC layer that NS-2
// provided in the paper's evaluation: a unit-disk radio with a standard
// 250 m transmission range, per-packet transmission and contention delay,
// optional random loss, and hello-beacon neighbor discovery with bounded
// staleness (Section 5.2).
//
// The model is deliberately simple — the evaluation's conclusions rest on
// connectivity, hop counts and delay composition, not on 802.11 bit-level
// behaviour — but it keeps the two properties the figures depend on:
//
//  1. A transmission only reaches nodes within Range at delivery time, so
//     mobility can break links mid-flight.
//  2. Each hop costs transmission time plus a contention jitter, so longer
//     paths and busier protocols accumulate proportionally more delay.
package medium

import (
	"fmt"
	"math"
	"slices"

	"alertmanet/internal/geo"
	"alertmanet/internal/mobility"
	"alertmanet/internal/rng"
	"alertmanet/internal/sim"
	"alertmanet/internal/telemetry"
)

// NodeID identifies a node; ids are dense indices into the mobility model.
type NodeID int

// Broadcast addressee: delivery to every node in range.
const BroadcastID NodeID = -1

// Params configures the channel.
type Params struct {
	// Range is the radio range in meters (250 m in the paper).
	Range float64
	// Bitrate is the channel rate in bits/s; transmission delay is
	// size*8/Bitrate (2 Mb/s matches the NS-2 802.11 default era).
	Bitrate float64
	// MACDelayMean is the mean of the exponential per-transmission
	// contention/queueing jitter, seconds.
	MACDelayMean float64
	// LossRate is the probability an otherwise-deliverable transmission
	// is lost (collisions, fading).
	LossRate float64
	// HelloInterval is the period of neighbor beacons, seconds. Neighbor
	// tables reflect positions as of the last beacon tick, so faster
	// nodes have staler tables.
	HelloInterval float64
	// Retries is the link-layer retransmission budget for unicasts, the
	// ARQ that 802.11's MAC gave the paper's NS-2 runs for free. After a
	// data frame is transmitted the receiver answers with an ACK frame;
	// if either is lost the sender retransmits, up to Retries times, each
	// wait doubling from RetryBackoff. Retries = 0 disables the ACK
	// machinery entirely and reproduces a fire-and-forget channel.
	Retries int
	// AckSize is the on-air size of an ACK frame in bytes (802.11 ACKs
	// are 14 bytes). ACK bytes and delays are charged to the same
	// counters and clock as data so energy and latency stay honest.
	AckSize int
	// RetryBackoff is the base retransmission wait in seconds; attempt k
	// retransmits after RetryBackoff * 2^(k-1).
	RetryBackoff float64
}

// DefaultParams returns the paper's channel configuration.
func DefaultParams() Params {
	return Params{
		Range:         250,
		Bitrate:       2e6,
		MACDelayMean:  0.5e-3,
		LossRate:      0,
		HelloInterval: 1.0,
		Retries:       3,
		AckSize:       14,
		RetryBackoff:  1e-3,
	}
}

// SendOutcome is the terminal fate of one unicast send, as reported to the
// sender's outcome callback once the ARQ gives up or succeeds.
type SendOutcome uint8

const (
	// SendDelivered: the data frame reached the receiver's handler (even
	// if every ACK was subsequently lost — the frame's fate is what
	// counts, and the handler fires at most once per send).
	SendDelivered SendOutcome = iota
	// SendLost: the retry budget is exhausted and the receiver never got
	// the frame.
	SendLost
	// SendCompromised: the sender is a compromised node sinking its own
	// transmissions (Section 2.1's DoS attacker), so nothing went on air.
	SendCompromised
)

func (o SendOutcome) String() string {
	switch o {
	case SendDelivered:
		return "delivered"
	case SendLost:
		return "lost"
	case SendCompromised:
		return "compromised"
	}
	return "unknown"
}

// Handler receives a delivered transmission.
type Handler func(from NodeID, payload any, size int)

// Counters tallies channel activity for the evaluation metrics.
type Counters struct {
	UnicastsSent   uint64
	BroadcastsSent uint64
	Delivered      uint64 // individual receptions (a broadcast counts once per receiver)
	DroppedRange   uint64 // receiver out of range at delivery time
	DroppedLoss    uint64 // random loss
	// DroppedCompromised counts frames sunk by compromised relays.
	DroppedCompromised uint64
	// Retransmissions counts data-frame transmissions beyond each send's
	// first attempt (every retransmission also lands in the per-attempt
	// counters above, so DroppedLoss et al. count physical frames).
	Retransmissions uint64
	// AcksSent counts ACK frames transmitted; AcksLost counts ACK frames
	// that failed on air (range or loss — kept out of DroppedRange and
	// DroppedLoss so those remain data-frame counters).
	AcksSent uint64
	AcksLost uint64
	// Duplicates counts data frames received again after a first
	// successful reception (the retransmission raced a lost ACK); the
	// handler does not re-fire for them.
	Duplicates uint64
	// BorderFrames counts frames (data and ACK) whose sender and receiver
	// live on different shards of the engine's spatial partition — the
	// inter-shard traffic the sharded scheduler exchanges through
	// mailboxes. Zero without a shard plan.
	BorderFrames uint64
	// TxBytes and RxBytes accumulate payload bytes transmitted and
	// received (energy accounting).
	TxBytes uint64
	RxBytes uint64
}

// Transmission is what a radio observer sees when a node sends: the frame
// leaves From at time At from position FromPos. Adversary models subscribe
// via TapSend; they see frames, sizes and directions — exactly the
// eavesdropping capability of Section 2.1 — but not any honest-node state.
type Transmission struct {
	From    NodeID
	To      NodeID // BroadcastID for local broadcasts
	At      float64
	FromPos geo.Point
	Size    int
	Payload any
}

// Reception is one successful delivery, observable by an adversary close to
// the receiver (used by the intersection-attack tracker, Section 3.3).
type Reception struct {
	From    NodeID
	To      NodeID
	At      float64
	ToPos   geo.Point
	Size    int
	Payload any
}

// Medium is the shared wireless channel.
type Medium struct {
	eng      *sim.Engine
	mob      mobility.Model
	par      Params
	src      *rng.Source
	handlers []Handler
	counters Counters
	sendTaps []func(Transmission)
	recvTaps []func(Reception)
	// compromised nodes sink every frame they would send (Section 2.1's
	// DoS-by-intrusion attacker); nil until the first Compromise call.
	compromised map[NodeID]bool
	// beacons caches the current hello tick's position snapshot and a
	// uniform spatial grid over it, so each Neighbors query touches only
	// the 3x3 grid cells around the querier instead of every node.
	beacons beaconCache
	// nowPos caches a spatial grid over true positions at the current
	// engine instant, shared by zone queries issued at the same time.
	nowPos   posGrid
	nowAt    float64
	nowValid bool
	// arqFree and bcastFree recycle send state machines; a steady-state
	// unicast or broadcast allocates nothing.
	arqFree   []*arqSend
	bcastFree []*bcastSend
	// plan and homes, when set, map each node to the engine shard owning
	// its events (static: positions at t=0); frame events are homed on the
	// shard of the node they happen at, so a frame between nodes of
	// different shards becomes an inter-shard message.
	plan  *geo.ShardPlan
	homes []int
	// bcastIn is the reusable in-range mask for the broadcast sweep's
	// parallel distance-filter phase.
	bcastIn []bool
	// txByNode counts transmissions per node (load-balance metrics).
	txByNode []uint64
	// tap, when non-nil, observes every frame/ACK transmission, reception
	// and loss.
	tap *telemetry.Tap
}

// posGrid is a position snapshot bucketed into a uniform spatial grid.
// Buckets hold node ids in ascending order (rebuild inserts ids 0..n-1), so
// any fixed cell-visit order yields a deterministic node order. The grid is
// rebuilt in place: bucket slices are truncated and refilled rather than
// reallocated, so steady-state rebuilds allocate nothing once the map and
// buckets have reached their high-water capacity.
type posGrid struct {
	pos  []geo.Point
	cell float64
	grid map[[2]int][]NodeID
	// live lists the keys of currently non-empty buckets, so rebuild can
	// truncate exactly the buckets the previous snapshot populated.
	live [][2]int
	// lo and hi bound the live keys (for bounded ring searches).
	lo, hi [2]int
}

func (g *posGrid) rebuild(mob mobility.Model, at, cell float64, w *sim.Workers) {
	n := mob.N()
	if g.pos == nil {
		g.pos = make([]geo.Point, n)
	}
	if g.grid == nil {
		g.grid = make(map[[2]int][]NodeID, n)
	}
	for _, k := range g.live {
		g.grid[k] = g.grid[k][:0]
	}
	g.live = g.live[:0]
	g.cell = cell
	// Phase 1: evaluate every position. Each walker's trajectory extension
	// draws only from its own rng stream and depends only on the query
	// time, so disjoint id ranges can sweep concurrently (after Prepare
	// extends any shared reference trajectories) without changing a single
	// drawn value.
	evalPositions(mob, at, g.pos[:n], w)
	// Phase 2: bucket ids 0..n-1 in order, so bucket contents stay in
	// ascending id order — the determinism the query paths rely on.
	for id := 0; id < n; id++ {
		key := g.key(g.pos[id])
		bucket := g.grid[key]
		if len(bucket) == 0 {
			g.live = append(g.live, key)
			if len(g.live) == 1 {
				g.lo, g.hi = key, key
			} else {
				g.lo[0] = min(g.lo[0], key[0])
				g.lo[1] = min(g.lo[1], key[1])
				g.hi[0] = max(g.hi[0], key[0])
				g.hi[1] = max(g.hi[1], key[1])
			}
		}
		g.grid[key] = append(bucket, NodeID(id))
	}
}

func (g *posGrid) key(p geo.Point) [2]int {
	return [2]int{int(math.Floor(p.X / g.cell)), int(math.Floor(p.Y / g.cell))}
}

// evalPositions fills dst[id] = mob.Position(id, at) for every id, forking
// across the worker pool when it has parallel degree. Writes are disjoint
// per id; Prepare (when the model has shared lazy state) runs first so the
// concurrent sweep only reads it.
func evalPositions(mob mobility.Model, at float64, dst []geo.Point, w *sim.Workers) {
	if w != nil && w.Degree() > 1 {
		if p, ok := mob.(mobility.Preparer); ok {
			p.Prepare(at)
		}
		w.For(len(dst), func(lo, hi int) {
			for id := lo; id < hi; id++ {
				dst[id] = mob.Position(id, at)
			}
		})
		return
	}
	for id := range dst {
		dst[id] = mob.Position(id, at)
	}
}

// beaconCache is one hello tick's position snapshot bucketed into cells of
// side Range. The tick is the integer beacon index, so cache-hit detection
// is an exact integer compare rather than a float one.
type beaconCache struct {
	tick  int
	valid bool
	posGrid
}

func (b *beaconCache) build(m *Medium, tick int) {
	b.tick = tick
	b.valid = true
	b.rebuild(m.mob, float64(tick)*m.par.HelloInterval, m.par.Range, m.eng.Workers())
}

// New creates a medium over the given mobility model. Non-positive radio
// parameters (Range, Bitrate, HelloInterval) are an error.
func New(eng *sim.Engine, mob mobility.Model, par Params, src *rng.Source) (*Medium, error) {
	if par.Range <= 0 || par.Bitrate <= 0 || par.HelloInterval <= 0 {
		return nil, fmt.Errorf("medium: invalid params %+v", par)
	}
	if par.Retries < 0 {
		return nil, fmt.Errorf("medium: negative retry budget %d", par.Retries)
	}
	if par.Retries > 0 && (par.AckSize <= 0 || par.RetryBackoff <= 0) {
		return nil, fmt.Errorf("medium: ARQ enabled (Retries=%d) but AckSize=%d, RetryBackoff=%g",
			par.Retries, par.AckSize, par.RetryBackoff)
	}
	return &Medium{
		eng:      eng,
		mob:      mob,
		par:      par,
		src:      src.Split("medium"),
		handlers: make([]Handler, mob.N()),
		txByNode: make([]uint64, mob.N()),
	}, nil
}

// MustNew is New for callers whose parameters are known good (tests); it
// panics on error.
func MustNew(eng *sim.Engine, mob mobility.Model, par Params, src *rng.Source) *Medium {
	m, err := New(eng, mob, par, src)
	if err != nil {
		panic(err)
	}
	return m
}

// Params returns the channel configuration.
func (m *Medium) Params() Params { return m.par }

// MinFrameLatency returns the minimum delay any frame spends on air — the
// transmission time of a one-byte frame at the channel bitrate, with zero
// contention jitter. Every cross-shard event the medium schedules (frame
// arrivals, ACKs, retry backoffs) carries at least this delay, so it is the
// conservative lookahead bound for the sharded engine's window protocol.
func (m *Medium) MinFrameLatency() float64 { return 8 / m.par.Bitrate }

// SetShardPlan assigns every node a home shard from the partition plan by
// its position at time 0 and homes all subsequent frame events accordingly:
// a data frame's arrival runs on the receiver's shard, the ACK and any
// retransmission on the sender's, a broadcast sweep on the sender's. The
// plan's shard count must match the engine's. Call before any traffic;
// a nil plan restores single-shard homing.
func (m *Medium) SetShardPlan(plan *geo.ShardPlan) {
	if plan == nil {
		m.plan = nil
		m.homes = nil
		return
	}
	if plan.Shards() != m.eng.Shards() {
		//lint:allowpanic a plan/engine shard-count mismatch is always a harness wiring bug; frames would be homed onto shards that do not exist
		panic(fmt.Sprintf("medium: plan has %d shards, engine %d", plan.Shards(), m.eng.Shards()))
	}
	m.plan = plan
	if m.homes == nil {
		m.homes = make([]int, m.mob.N())
	}
	for id := range m.homes {
		m.homes[id] = plan.ShardOf(m.mob.Position(id, 0))
	}
}

// homeOf returns the engine shard owning a node's events (0 without a plan).
func (m *Medium) homeOf(id NodeID) int {
	if m.homes == nil {
		return 0
	}
	return m.homes[id]
}

// SetLossRate changes the random-loss probability mid-run; experiments use
// it to inject failure windows (e.g. jamming intervals).
func (m *Medium) SetLossRate(p float64) { m.par.LossRate = p }

// Compromise marks a node as adversary-controlled in the packet-sinking
// sense of Section 2.1 ("intrude on some specific vulnerable nodes to
// control their behavior, e.g., with denial-of-service attacks, which may
// cut the routing"): the node keeps receiving and beaconing like a
// legitimate neighbor, but every frame it would transmit is silently
// discarded, so any route through it dies there.
func (m *Medium) Compromise(id NodeID) {
	if m.compromised == nil {
		m.compromised = make(map[NodeID]bool)
	}
	m.compromised[id] = true
}

// Restore returns a compromised node to normal operation.
func (m *Medium) Restore(id NodeID) { delete(m.compromised, id) }

// Compromised reports whether a node is currently sinking packets.
func (m *Medium) Compromised(id NodeID) bool { return m.compromised[id] }

// SetTap attaches a telemetry tap observing frame-level channel activity.
// A nil tap (the default) disables medium telemetry; emit sites are guarded
// by a branch on the field, so the disabled path costs nothing but that
// branch.
func (m *Medium) SetTap(t *telemetry.Tap) { m.tap = t }

// Counters returns a snapshot of channel activity.
func (m *Medium) Counters() Counters { return m.counters }

// TxByNode returns a copy of the per-node transmission counts.
func (m *Medium) TxByNode() []uint64 {
	out := make([]uint64, len(m.txByNode))
	copy(out, m.txByNode)
	return out
}

// Attach registers the packet handler for a node. A node without a handler
// silently drops receptions.
func (m *Medium) Attach(id NodeID, h Handler) { m.handlers[id] = h }

// N returns the number of nodes on the channel.
func (m *Medium) N() int { return len(m.handlers) }

// PositionNow returns a node's true position at the current simulation time.
func (m *Medium) PositionNow(id NodeID) geo.Point {
	return m.mob.Position(int(id), m.eng.Now())
}

// txDelay returns transmission plus contention delay for a payload size.
func (m *Medium) txDelay(size int) float64 {
	d := float64(size*8) / m.par.Bitrate
	if m.par.MACDelayMean > 0 {
		d += m.src.Exponential(m.par.MACDelayMean)
	}
	return d
}

// TapSend subscribes an observer to every transmission on the channel.
func (m *Medium) TapSend(fn func(Transmission)) {
	m.sendTaps = append(m.sendTaps, fn)
}

// TapRecv subscribes an observer to every successful delivery.
func (m *Medium) TapRecv(fn func(Reception)) {
	m.recvTaps = append(m.recvTaps, fn)
}

func (m *Medium) notifySend(from, to NodeID, payload any, size int) {
	if len(m.sendTaps) == 0 {
		return
	}
	tx := Transmission{
		From:    from,
		To:      to,
		At:      m.eng.Now(),
		FromPos: m.mob.Position(int(from), m.eng.Now()),
		Size:    size,
		Payload: payload,
	}
	for _, fn := range m.sendTaps {
		fn(tx)
	}
}

func (m *Medium) notifyRecv(from, to NodeID, payload any, size int) {
	if len(m.recvTaps) == 0 {
		return
	}
	rx := Reception{
		From:    from,
		To:      to,
		At:      m.eng.Now(),
		ToPos:   m.mob.Position(int(to), m.eng.Now()),
		Size:    size,
		Payload: payload,
	}
	for _, fn := range m.recvTaps {
		fn(rx)
	}
}

// Unicast transmits payload from one node to another with link-layer ARQ
// (see UnicastOutcome) but without reporting the send's fate. Returns the
// scheduled first-attempt delivery time.
func (m *Medium) Unicast(from, to NodeID, payload any, size int) float64 {
	return m.UnicastOutcome(from, to, payload, size, nil)
}

// OutcomeSink receives a unicast send's terminal fate: the pre-allocated
// counterpart of UnicastOutcome's done callback. Hot-path senders (the
// router's forward) implement it on the in-flight packet itself so
// reporting a hop's fate costs no closure allocation.
type OutcomeSink interface {
	SendResolved(out SendOutcome)
}

// UnicastOutcome transmits payload from one node to another and reports the
// send's terminal fate to done (which may be nil). Delivery succeeds if the
// receiver is within Range when a data-frame transmission completes and the
// loss coin does not fire; with Params.Retries > 0 the receiver ACKs each
// data frame and the sender retransmits on silence, so a send only counts as
// lost after the whole retry budget fails. done fires exactly once, when the
// ARQ resolves: at ACK reception or retry exhaustion (Retries > 0), or at
// first-attempt resolution (Retries = 0). The handler fires at most once per
// send — duplicate data receptions are absorbed by the ARQ. Returns the
// scheduled first-attempt delivery time.
func (m *Medium) UnicastOutcome(from, to NodeID, payload any, size int, done func(SendOutcome)) float64 {
	m.counters.UnicastsSent++
	s := m.newArq(from, to, payload, size)
	s.done = done
	return s.attempt()
}

// UnicastSink is UnicastOutcome with a pre-allocated OutcomeSink in place of
// the done closure; the allocation-free variant for per-hop forwarding.
func (m *Medium) UnicastSink(from, to NodeID, payload any, size int, sink OutcomeSink) float64 {
	m.counters.UnicastsSent++
	s := m.newArq(from, to, payload, size)
	s.sink = sink
	return s.attempt()
}

// newArq takes a send state machine from the pool (or allocates the pool's
// next entry) and initializes it for a fresh send.
func (m *Medium) newArq(from, to NodeID, payload any, size int) *arqSend {
	var s *arqSend
	if n := len(m.arqFree); n > 0 {
		s = m.arqFree[n-1]
		m.arqFree[n-1] = nil
		m.arqFree = m.arqFree[:n-1]
	} else {
		s = new(arqSend)
	}
	*s = arqSend{m: m, from: from, to: to, payload: payload, size: size}
	return s
}

// arqSend phases name the single event each send has in flight at any
// moment; RunEvent dispatches on the phase set when the event was scheduled.
const (
	arqPhaseArrive uint8 = iota // data frame reaching the receiver
	arqPhaseAck                 // ACK frame reaching the sender
	arqPhaseRetry               // backoff expiring into a retransmission
)

// arqSend is one logical unicast send working through its retry budget. It
// is a strictly sequential state machine — at most one scheduled event
// references it at any time, and none after it resolves — which is what
// makes pooling it safe: resolve() returns it to the medium's pool after
// the fate callback fires, and the next Unicast reuses it.
type arqSend struct {
	m        *Medium
	from, to NodeID
	payload  any
	size     int
	done     func(SendOutcome)
	sink     OutcomeSink
	// phase selects the RunEvent body for the one event in flight.
	phase uint8
	// attempts counts data-frame transmissions performed (first = 1).
	attempts int
	// delivered is set once the data frame reaches the handler; later
	// receptions of the same send are duplicates and the worst remaining
	// outcome is SendDelivered.
	delivered bool
	// resolved guards the single done callback.
	resolved bool
}

// RunEvent implements sim.Runner.
func (s *arqSend) RunEvent() {
	switch s.phase {
	case arqPhaseArrive:
		s.arrive()
	case arqPhaseAck:
		s.ackArrive()
	default:
		s.attempt()
	}
}

func (s *arqSend) resolve(out SendOutcome) {
	if s.resolved {
		return
	}
	s.resolved = true
	if s.done != nil {
		s.done(out)
	}
	if s.sink != nil {
		s.sink.SendResolved(out)
	}
	// Resolved means no scheduled event references this machine anymore;
	// recycle it. References are dropped so payloads can be collected.
	m := s.m
	s.payload = nil
	s.done = nil
	s.sink = nil
	m.arqFree = append(m.arqFree, s)
}

// attempt transmits the data frame once and schedules its delivery; returns
// the scheduled delivery time.
func (s *arqSend) attempt() float64 {
	m := s.m
	s.attempts++
	if m.compromised[s.from] {
		m.counters.DroppedCompromised++
		if m.tap != nil {
			m.tap.FrameLost(m.eng.Now(), int(s.from), int(s.to), telemetry.TraceOf(s.payload), "compromised")
		}
		if s.delivered {
			s.resolve(SendDelivered)
		} else {
			s.resolve(SendCompromised)
		}
		return m.eng.Now()
	}
	if s.attempts > 1 {
		m.counters.Retransmissions++
	}
	m.counters.TxBytes += uint64(s.size)
	m.txByNode[s.from]++
	m.notifySend(s.from, s.to, s.payload, s.size)
	if m.tap != nil {
		m.tap.FrameTx(m.eng.Now(), int(s.from), int(s.to), telemetry.TraceOf(s.payload), s.size, s.attempts)
	}
	at := m.eng.Now() + m.txDelay(s.size)
	s.phase = arqPhaseArrive
	// The arrival happens at the receiver, so its event runs on the
	// receiver's shard; a border frame crosses there through the engine's
	// mailbox (txDelay >= MinFrameLatency keeps the lookahead contract).
	if m.homeOf(s.from) != m.homeOf(s.to) {
		m.counters.BorderFrames++
	}
	m.eng.AtRunnerOn(m.homeOf(s.to), at, s)
	return at
}

// arrive is the data frame reaching (or missing) the receiver.
func (s *arqSend) arrive() {
	m := s.m
	now := m.eng.Now()
	pf := m.mob.Position(int(s.from), now)
	pt := m.mob.Position(int(s.to), now)
	if pf.Dist(pt) > m.par.Range {
		m.counters.DroppedRange++
		if m.tap != nil {
			m.tap.FrameLost(now, int(s.from), int(s.to), telemetry.TraceOf(s.payload), "range")
		}
		s.retryOrFail()
		return
	}
	if m.src.Bernoulli(m.par.LossRate) {
		m.counters.DroppedLoss++
		if m.tap != nil {
			m.tap.FrameLost(now, int(s.from), int(s.to), telemetry.TraceOf(s.payload), "loss")
		}
		s.retryOrFail()
		return
	}
	if s.delivered {
		// A retransmission raced a lost ACK: absorb the duplicate
		// (the handler must not re-fire) but re-ACK so the sender can
		// stop. Duplicates stay off the receive taps — an adversary
		// correlating receptions should not double-count one frame.
		m.counters.Duplicates++
		m.counters.RxBytes += uint64(s.size)
		if m.tap != nil {
			m.tap.FrameDup(now, int(s.from), int(s.to), telemetry.TraceOf(s.payload))
		}
		s.sendAck()
		return
	}
	s.delivered = true
	m.counters.Delivered++
	m.counters.RxBytes += uint64(s.size)
	if m.tap != nil {
		m.tap.FrameRx(now, int(s.from), int(s.to), telemetry.TraceOf(s.payload), s.size)
	}
	m.notifyRecv(s.from, s.to, s.payload, s.size)
	if h := m.handlers[s.to]; h != nil {
		h(s.from, s.payload, s.size)
	}
	if m.par.Retries == 0 {
		s.resolve(SendDelivered)
		return
	}
	s.sendAck()
}

// sendAck transmits the receiver's ACK frame back to the sender. ACK frames
// are MAC-level control traffic: they are charged to the byte counters and
// the clock, but stay off the adversary taps (the taps model packet
// eavesdropping) and are not sunk by compromised receivers — the DoS
// attacker of Section 2.1 sinks the packets it should forward, not the
// MAC's own control responses, which would unmask it to its neighbors.
func (s *arqSend) sendAck() {
	m := s.m
	m.counters.AcksSent++
	m.counters.TxBytes += uint64(m.par.AckSize)
	m.txByNode[s.to]++
	if m.tap != nil {
		m.tap.AckTx(m.eng.Now(), int(s.to), int(s.from), telemetry.TraceOf(s.payload))
	}
	s.phase = arqPhaseAck
	// The ACK arrives back at the original sender: home its event there.
	if m.homeOf(s.from) != m.homeOf(s.to) {
		m.counters.BorderFrames++
	}
	m.eng.AtRunnerOn(m.homeOf(s.from), m.eng.Now()+m.txDelay(m.par.AckSize), s)
}

// ackArrive is the ACK frame reaching (or missing) the original sender.
func (s *arqSend) ackArrive() {
	m := s.m
	now := m.eng.Now()
	pt := m.mob.Position(int(s.to), now)
	pf := m.mob.Position(int(s.from), now)
	if pt.Dist(pf) > m.par.Range || m.src.Bernoulli(m.par.LossRate) {
		m.counters.AcksLost++
		if m.tap != nil {
			m.tap.AckLost(now, int(s.to), int(s.from), telemetry.TraceOf(s.payload))
		}
		s.retryOrFail()
		return
	}
	m.counters.RxBytes += uint64(m.par.AckSize)
	s.resolve(SendDelivered)
}

// retryOrFail schedules the next retransmission with exponential backoff,
// or resolves the send once the budget is spent.
func (s *arqSend) retryOrFail() {
	m := s.m
	if s.resolved {
		return
	}
	if s.attempts > m.par.Retries {
		if s.delivered {
			s.resolve(SendDelivered)
		} else {
			s.resolve(SendLost)
		}
		return
	}
	backoff := m.par.RetryBackoff * math.Pow(2, float64(s.attempts-1))
	s.phase = arqPhaseRetry
	// The retransmission happens at the sender. When retryOrFail runs in a
	// data-frame arrival (receiver's shard), this crosses back; the backoff
	// (>= RetryBackoff >= MinFrameLatency at any sane bitrate) keeps the
	// lookahead contract.
	m.eng.ScheduleRunnerOn(m.homeOf(s.from), backoff, s)
}

// Broadcast transmits payload to every node within Range of the sender at
// delivery time (one-hop local broadcast). Returns the delivery time.
func (m *Medium) Broadcast(from NodeID, payload any, size int) float64 {
	m.counters.BroadcastsSent++
	if m.compromised[from] {
		m.counters.DroppedCompromised++
		if m.tap != nil {
			m.tap.FrameLost(m.eng.Now(), int(from), int(BroadcastID), telemetry.TraceOf(payload), "compromised")
		}
		return m.eng.Now()
	}
	m.counters.TxBytes += uint64(size)
	m.txByNode[from]++
	m.notifySend(from, BroadcastID, payload, size)
	if m.tap != nil {
		m.tap.BroadcastTx(m.eng.Now(), int(from), telemetry.TraceOf(payload), size)
	}
	at := m.eng.Now() + m.txDelay(size)
	var b *bcastSend
	if n := len(m.bcastFree); n > 0 {
		b = m.bcastFree[n-1]
		m.bcastFree[n-1] = nil
		m.bcastFree = m.bcastFree[:n-1]
	} else {
		b = new(bcastSend)
	}
	*b = bcastSend{m: m, from: from, payload: payload, size: size}
	// The delivery sweep reads every receiver's position at once, so it
	// runs on the sender's shard regardless of who is in range.
	m.eng.AtRunnerOn(m.homeOf(from), at, b)
	return at
}

// bcastSend is one broadcast's scheduled delivery, pooled like arqSend. A
// broadcast has exactly one event (the delivery sweep), so the machine
// recycles itself when RunEvent finishes.
type bcastSend struct {
	m       *Medium
	from    NodeID
	payload any
	size    int
}

// RunEvent implements sim.Runner: the frame reaches every node in range.
// The range filter — every receiver's position against the sender's — is
// pure per-node geometry, so it forks across the worker pool; deliveries
// then run sequentially in ascending id order, which keeps the loss-coin
// draw sequence (one draw per in-range receiver) byte-identical to the
// serial sweep.
func (b *bcastSend) RunEvent() {
	m := b.m
	from, payload, size := b.from, b.payload, b.size
	now := m.eng.Now()
	pf := m.mob.Position(int(from), now)
	n := len(m.handlers)
	// The in-range mask exists only for the parallel sweep; the serial
	// path checks distance inline during delivery (and so allocates
	// nothing, mask included).
	var in []bool
	if w := m.eng.Workers(); w.Degree() > 1 {
		if cap(m.bcastIn) < n {
			m.bcastIn = make([]bool, n)
		}
		in = m.bcastIn[:n]
		if p, ok := m.mob.(mobility.Preparer); ok {
			p.Prepare(now)
		}
		w.For(n, func(lo, hi int) {
			for id := lo; id < hi; id++ {
				in[id] = pf.Dist(m.mob.Position(id, now)) <= m.par.Range
			}
		})
	}
	for id := range m.handlers {
		if NodeID(id) == from {
			continue
		}
		inRange := false
		if in != nil {
			inRange = in[id]
		} else {
			inRange = pf.Dist(m.mob.Position(id, now)) <= m.par.Range
		}
		if !inRange {
			// Out-of-range receivers of a broadcast are physics, not
			// loss: emitting one event per distant node would add
			// ~N lines per broadcast with no diagnostic value, so
			// the tap deliberately stays silent here.
			m.counters.DroppedRange++
			continue
		}
		if m.src.Bernoulli(m.par.LossRate) {
			m.counters.DroppedLoss++
			if m.tap != nil {
				m.tap.FrameLost(now, int(from), id, telemetry.TraceOf(payload), "loss")
			}
			continue
		}
		m.counters.Delivered++
		m.counters.RxBytes += uint64(size)
		if m.tap != nil {
			m.tap.FrameRx(now, int(from), id, telemetry.TraceOf(payload), size)
		}
		m.notifyRecv(from, NodeID(id), payload, size)
		if h := m.handlers[id]; h != nil {
			h(from, payload, size)
		}
	}
	b.payload = nil
	m.bcastFree = append(m.bcastFree, b)
}

// helloTick returns the index of the most recent hello beacon: the largest
// k such that the k-th beacon instant float64(k)*HelloInterval is <= now.
// A bare int(now/HelloInterval) is wrong at exact beacon instants — for
// awkward intervals like 0.3 s the division can round just below the tick
// index (e.g. fl(0.9)/fl(0.3) < 3), leaving the neighbor table one full
// tick stale right at the boundary — so the quotient is corrected against
// the same k*interval product the beacon timestamps are derived from.
func (m *Medium) helloTick() int {
	now := m.eng.Now()
	h := m.par.HelloInterval
	k := int(now / h)
	for float64(k+1)*h <= now {
		k++
	}
	for k > 0 && float64(k)*h > now {
		k--
	}
	return k
}

// helloTime returns the timestamp of the most recent hello beacon: neighbor
// tables reflect positions as of this instant.
func (m *Medium) helloTime() float64 {
	return float64(m.helloTick()) * m.par.HelloInterval
}

// Neighbor is one neighbor-table entry: the neighbor id and its position as
// advertised in its last hello beacon.
type Neighbor struct {
	ID  NodeID
	Pos geo.Point
}

// Neighbors returns id's neighbor table: all nodes within Range at the last
// hello tick, with their beaconed (possibly stale) positions. The querying
// node's own position is also taken at the beacon time, mirroring how real
// tables pair two beacon snapshots. Queries within one tick share a cached
// position snapshot and spatial grid.
func (m *Medium) Neighbors(id NodeID) []Neighbor {
	return m.NeighborsInto(id, nil)
}

// NeighborsInto is Neighbors with a caller-reusable destination: entries are
// appended to dst[:0] and the (possibly regrown) slice returned, so a caller
// that recycles the returned slice queries its neighbor table without
// allocating. The result is only valid until the caller's next NeighborsInto
// with the same destination.
func (m *Medium) NeighborsInto(id NodeID, dst []Neighbor) []Neighbor {
	tick := m.helloTick()
	if !m.beacons.valid || m.beacons.tick != tick {
		m.beacons.build(m, tick)
	}
	self := m.beacons.pos[id]
	out := dst[:0]
	// Scan the 3x3 cell block covering every candidate within one Range of
	// self; fixed cell order plus ascending ids within buckets keeps the
	// neighbor order deterministic.
	k := m.beacons.key(self)
	for dx := -1; dx <= 1; dx++ {
		for dy := -1; dy <= 1; dy++ {
			for _, other := range m.beacons.grid[[2]int{k[0] + dx, k[1] + dy}] {
				if other == id {
					continue
				}
				p := m.beacons.pos[other]
				if self.Dist(p) <= m.par.Range {
					out = append(out, Neighbor{ID: other, Pos: p})
				}
			}
		}
	}
	return out
}

// TruePosition returns a node's actual position at time t (for metrics and
// adversary models, which observe physics rather than beacons).
func (m *Medium) TruePosition(id NodeID, t float64) geo.Point {
	return m.mob.Position(int(id), t)
}

// nowGrid returns the spatial grid over true positions at the current
// instant, rebuilding it only when the clock has advanced since the last
// zone query. Zonecast and destination-zone scans within one event instant
// (a packet's zone partitioning fans out several queries at the same time)
// share one snapshot instead of re-scanning every node per call.
func (m *Medium) nowGrid() *posGrid {
	now := m.eng.Now()
	//lint:allowfloatcompare the cache key is the exact engine clock instant; any clock advance must invalidate
	if !m.nowValid || m.nowAt != now {
		m.nowPos.rebuild(m.mob, now, m.par.Range, m.eng.Workers())
		m.nowAt = now
		m.nowValid = true
	}
	return &m.nowPos
}

// NodesWithin returns all node ids whose true current position lies in zone,
// in ascending id order.
func (m *Medium) NodesWithin(zone geo.Rect) []NodeID {
	return m.NodesWithinInto(zone, nil)
}

// NodesWithinInto is NodesWithin with a caller-reusable destination: ids are
// appended to dst[:0] and the (possibly regrown) slice returned. Only grid
// cells overlapping the zone are visited.
func (m *Medium) NodesWithinInto(zone geo.Rect, dst []NodeID) []NodeID {
	g := m.nowGrid()
	out := dst[:0]
	lo, hi := g.key(zone.Min), g.key(zone.Max)
	for cx := lo[0]; cx <= hi[0]; cx++ {
		for cy := lo[1]; cy <= hi[1]; cy++ {
			for _, id := range g.grid[[2]int{cx, cy}] {
				if zone.Contains(g.pos[id]) {
					out = append(out, id)
				}
			}
		}
	}
	// Cells are visited column-major, so ids arrive grouped by cell; the
	// contract (and the previous O(N) scan) is ascending id order.
	slices.Sort(out)
	return out
}

// ClosestToPoint returns the node closest to p right now and its distance.
// Ties break to the lowest id, matching mobility.Nearest. The search walks
// grid rings outward from p's cell and stops once every unvisited cell is
// provably farther than the best candidate.
func (m *Medium) ClosestToPoint(p geo.Point) (NodeID, float64) {
	g := m.nowGrid()
	if len(g.pos) == 0 {
		return -1, 1e300
	}
	best := NodeID(-1)
	bestD2 := 1e300
	ck := g.key(p)
	// maxR bounds the ring walk by the farthest populated cell.
	maxR := 0
	for _, c := range [4][2]int{g.lo, g.hi, {g.lo[0], g.hi[1]}, {g.hi[0], g.lo[1]}} {
		r := max(abs(c[0]-ck[0]), abs(c[1]-ck[1]))
		maxR = max(maxR, r)
	}
	scan := func(key [2]int) {
		for _, id := range g.grid[key] {
			d2 := g.pos[id].Dist2(p)
			//lint:allowfloatcompare exact-distance ties must break to the lowest id regardless of cell visit order, matching the linear scan
			if d2 < bestD2 || (d2 == bestD2 && id < best) {
				best, bestD2 = id, d2
			}
		}
	}
	for r := 0; r <= maxR; r++ {
		if r == 0 {
			scan(ck)
		} else {
			for dx := -r; dx <= r; dx++ {
				scan([2]int{ck[0] + dx, ck[1] - r})
				scan([2]int{ck[0] + dx, ck[1] + r})
			}
			for dy := -r + 1; dy <= r-1; dy++ {
				scan([2]int{ck[0] - r, ck[1] + dy})
				scan([2]int{ck[0] + r, ck[1] + dy})
			}
		}
		// A node in an unvisited ring d > r is at least r*cell from p; the
		// stop must be strict so an equal-distance lower-id candidate one
		// ring out still gets scanned (and wins the tie).
		if best >= 0 && math.Sqrt(bestD2) < float64(r)*g.cell {
			break
		}
	}
	return best, g.pos[best].Dist(p)
}

func abs(x int) int {
	if x < 0 {
		return -x
	}
	return x
}

// Engine exposes the simulation engine (protocols schedule timers on it).
func (m *Medium) Engine() *sim.Engine { return m.eng }

// Mobility exposes the underlying mobility model.
func (m *Medium) Mobility() mobility.Model { return m.mob }

// Package geo provides the planar geometry underlying ALERT: points,
// rectangles, and the hierarchical zone partition (alternating vertical and
// horizontal bisections) used both to compute the destination zone Z_D and
// to choose temporary destinations during routing (Shen & Zhao, Sections
// 2.3-2.4).
package geo

import (
	"fmt"
	"math"
)

// Point is a position in the network field, in meters.
type Point struct {
	X, Y float64
}

// Dist returns the euclidean distance between two points.
func (p Point) Dist(q Point) float64 {
	return math.Hypot(p.X-q.X, p.Y-q.Y)
}

// Dist2 returns the squared euclidean distance (cheaper; for comparisons).
func (p Point) Dist2(q Point) float64 {
	dx, dy := p.X-q.X, p.Y-q.Y
	return dx*dx + dy*dy
}

// Add returns p translated by (dx, dy).
func (p Point) Add(dx, dy float64) Point { return Point{p.X + dx, p.Y + dy} }

// Lerp returns the point a fraction t of the way from p to q.
func (p Point) Lerp(q Point, t float64) Point {
	return Point{p.X + (q.X-p.X)*t, p.Y + (q.Y-p.Y)*t}
}

func (p Point) String() string { return fmt.Sprintf("(%.2f, %.2f)", p.X, p.Y) }

// Rect is an axis-aligned rectangle [Min.X, Max.X] x [Min.Y, Max.Y].
// The paper describes zone positions by their "upper left and bottom-right"
// corners; with our y-up convention those are (Min.X, Max.Y) and
// (Max.X, Min.Y) — the same rectangle.
type Rect struct {
	Min, Max Point
}

// NewRect builds the rectangle spanning the two corner points in any order.
func NewRect(a, b Point) Rect {
	return Rect{
		Min: Point{math.Min(a.X, b.X), math.Min(a.Y, b.Y)},
		Max: Point{math.Max(a.X, b.X), math.Max(a.Y, b.Y)},
	}
}

// Width returns the extent along X.
func (r Rect) Width() float64 { return r.Max.X - r.Min.X }

// Height returns the extent along Y.
func (r Rect) Height() float64 { return r.Max.Y - r.Min.Y }

// Area returns the rectangle's area (the paper's zone size G for the field).
func (r Rect) Area() float64 { return r.Width() * r.Height() }

// Center returns the rectangle's midpoint.
func (r Rect) Center() Point {
	return Point{(r.Min.X + r.Max.X) / 2, (r.Min.Y + r.Max.Y) / 2}
}

// Contains reports whether p lies in the closed rectangle. Points exactly on
// a shared cut line of a bisection are contained in both halves; Side gives
// the deterministic assignment used by the partition logic.
func (r Rect) Contains(p Point) bool {
	return p.X >= r.Min.X && p.X <= r.Max.X && p.Y >= r.Min.Y && p.Y <= r.Max.Y
}

// ContainsRect reports whether s lies entirely within r.
func (r Rect) ContainsRect(s Rect) bool {
	return r.Contains(s.Min) && r.Contains(s.Max)
}

// Intersects reports whether the two closed rectangles share any point.
func (r Rect) Intersects(s Rect) bool {
	return r.Min.X <= s.Max.X && s.Min.X <= r.Max.X &&
		r.Min.Y <= s.Max.Y && s.Min.Y <= r.Max.Y
}

// Clamp returns p moved to the nearest point inside r.
func (r Rect) Clamp(p Point) Point {
	return Point{
		X: math.Max(r.Min.X, math.Min(r.Max.X, p.X)),
		Y: math.Max(r.Min.Y, math.Min(r.Max.Y, p.Y)),
	}
}

// Empty reports whether the rectangle has zero or negative extent.
func (r Rect) Empty() bool { return r.Width() <= 0 || r.Height() <= 0 }

func (r Rect) String() string {
	return fmt.Sprintf("[%s - %s]", r.Min, r.Max)
}

// Direction selects the orientation of a partition cut.
type Direction uint8

const (
	// Vertical cuts with a vertical line, splitting the X range. The
	// paper's destination-zone construction performs the first cut
	// vertically (Section 2.4).
	Vertical Direction = iota
	// Horizontal cuts with a horizontal line, splitting the Y range.
	Horizontal
)

// Flip returns the other direction; ALERT alternates cut directions and each
// random forwarder flips the packet's direction bit (Section 2.5).
func (d Direction) Flip() Direction {
	if d == Vertical {
		return Horizontal
	}
	return Vertical
}

func (d Direction) String() string {
	if d == Vertical {
		return "vertical"
	}
	return "horizontal"
}

// Bisect splits r into two equal halves along the given direction. For a
// Vertical cut, lo is the left half and hi the right; for Horizontal, lo is
// the bottom half and hi the top.
func (r Rect) Bisect(d Direction) (lo, hi Rect) {
	c := r.Center()
	if d == Vertical {
		lo = Rect{r.Min, Point{c.X, r.Max.Y}}
		hi = Rect{Point{c.X, r.Min.Y}, r.Max}
		return lo, hi
	}
	lo = Rect{r.Min, Point{r.Max.X, c.Y}}
	hi = Rect{Point{r.Min.X, c.Y}, r.Max}
	return lo, hi
}

// Side returns the half of r (after a cut in direction d) that p is assigned
// to: points strictly below the cut line go to lo, all others to hi. This
// gives a deterministic assignment for points exactly on the cut.
func (r Rect) Side(d Direction, p Point) Rect {
	lo, hi := r.Bisect(d)
	if d == Vertical {
		if p.X < lo.Max.X {
			return lo
		}
		return hi
	}
	if p.Y < lo.Max.Y {
		return lo
	}
	return hi
}

// SideIndex is like Side but returns 0 for the lo half and 1 for the hi half.
func (r Rect) SideIndex(d Direction, p Point) int {
	c := r.Center()
	if d == Vertical {
		if p.X < c.X {
			return 0
		}
		return 1
	}
	if p.Y < c.Y {
		return 0
	}
	return 1
}

// uniformSource is the randomness geo needs for TD selection; satisfied by
// *rng.Source without importing it (keeps geo dependency-free).
type uniformSource interface {
	Uniform(lo, hi float64) float64
}

// RandomPoint returns a point uniformly distributed in r.
func RandomPoint(r Rect, src uniformSource) Point {
	return Point{
		X: src.Uniform(r.Min.X, r.Max.X),
		Y: src.Uniform(r.Min.Y, r.Max.Y),
	}
}

// SideLengths implements Eqs. (1)-(2) of the paper: the side lengths of the
// h-th partitioned zone of an lA x lB field when the first cut is vertical.
//
//	a(h, lA) = lA / 2^ceil(h/2)   (X side; vertical cuts halve X first)
//	b(h, lB) = lB / 2^floor(h/2)  (Y side)
//
// Note the paper writes a(h,lA)=lA/2^floor(h/2) for a horizontal-first
// sequence; we expose the vertical-first convention used by its Section 2.4
// example and keep both floor/ceil pairs consistent.
func SideLengths(h int, lA, lB float64) (a, b float64) {
	if h < 0 {
		h = 0
	}
	xCuts := (h + 1) / 2 // ceil(h/2): cuts 1,3,5,... are vertical
	yCuts := h / 2       // floor(h/2): cuts 2,4,6,... are horizontal
	return lA / math.Pow(2, float64(xCuts)), lB / math.Pow(2, float64(yCuts))
}

// PartitionsForK implements H = log2(rho*G/k) (Section 2.4): the number of
// bisections needed so the final zone holds about k of the N = rho*G nodes.
// The result is rounded to the nearest non-negative integer.
func PartitionsForK(totalNodes int, k int) int {
	if totalNodes <= 0 || k <= 0 || k >= totalNodes {
		return 0
	}
	h := math.Round(math.Log2(float64(totalNodes) / float64(k)))
	if h < 0 {
		return 0
	}
	return int(h)
}

// DestZone computes the destination zone Z_D: starting from the whole field,
// perform exactly h bisections, alternating direction starting with first,
// each time keeping the half that contains d (Section 2.4). The source
// computes this once and embeds the zone position in the packet; forwarders
// never see D's position.
func DestZone(field Rect, d Point, h int, first Direction) Rect {
	zone := field
	dir := first
	for i := 0; i < h; i++ {
		zone = zone.Side(dir, d)
		dir = dir.Flip()
	}
	return zone
}

// ZonePath returns the sequence of nested zones produced while computing
// DestZone, including the field itself; ZonePath(...)[h] is the destination
// zone. Used by tests and by the analysis package.
func ZonePath(field Rect, d Point, h int, first Direction) []Rect {
	path := make([]Rect, 0, h+1)
	zone := field
	path = append(path, zone)
	dir := first
	for i := 0; i < h; i++ {
		zone = zone.Side(dir, d)
		path = append(path, zone)
		dir = dir.Flip()
	}
	return path
}

// SeparateResult is the outcome of one routing-partition step (Section 2.3).
type SeparateResult struct {
	// Separated reports whether the forwarder ended up in a different
	// half than Z_D. When false, the forwarder is inside (or effectively
	// at) the destination zone and the last-leg broadcast should begin.
	Separated bool
	// SelfZone is the half containing the forwarder (valid when Separated).
	SelfZone Rect
	// OtherZone is the half containing Z_D, from which the temporary
	// destination is drawn (valid when Separated).
	OtherZone Rect
	// Cuts is how many bisections this step performed (>= 1 when any
	// progress was possible).
	Cuts int
	// NextDir is the direction the next partition should start with.
	NextDir Direction
}

// Separate performs the forwarder's partition loop: bisect zone in
// alternating directions, starting with dir, always recursing into the half
// containing both the forwarder and Z_D, until the forwarder and Z_D fall
// into different halves. Z_D's half is identified by its center (the
// canonical hierarchy guarantees Z_D never straddles a cut when the phase
// matches; the center rule keeps the step well-defined for any phase).
//
// maxCuts bounds the loop (use H - h, the divisions remaining); when the
// bound is hit, or the zone has shrunk to Z_D itself, Separated is false.
func Separate(zone Rect, self Point, zd Rect, dir Direction, maxCuts int) SeparateResult {
	return SeparateWithPolicy(zone, self, zd, dir, maxCuts, true)
}

// SeparateWithPolicy is Separate with the cut-direction policy exposed:
// alternate=true flips the direction after every cut (the paper's design,
// which keeps zones squarish so each temporary destination approaches D);
// alternate=false keeps cutting the same axis, producing ever-thinner slab
// zones — the ablation DESIGN.md calls out.
func SeparateWithPolicy(zone Rect, self Point, zd Rect, dir Direction, maxCuts int,
	alternate bool) SeparateResult {
	res := SeparateResult{NextDir: dir}
	for res.Cuts < maxCuts {
		if zd.ContainsRect(zone) || zone.Area() <= zd.Area() {
			// Zone no longer bigger than Z_D: nothing to separate.
			return res
		}
		lo, hi := zone.Bisect(dir)
		selfHi := zone.SideIndex(dir, self) == 1
		zdHi := zone.SideIndex(dir, zd.Center()) == 1
		res.Cuts++
		if alternate {
			dir = dir.Flip()
		}
		res.NextDir = dir
		if selfHi != zdHi {
			res.Separated = true
			if selfHi {
				res.SelfZone, res.OtherZone = hi, lo
			} else {
				res.SelfZone, res.OtherZone = lo, hi
			}
			return res
		}
		if selfHi {
			zone = hi
		} else {
			zone = lo
		}
	}
	return res
}

package geo

import "testing"

func TestShardPlanValidation(t *testing.T) {
	field := Rect{Max: Point{1000, 1000}}
	for _, k := range []int{0, -1, 3, 6, 12} {
		if _, err := NewShardPlan(field, k); err == nil {
			t.Errorf("NewShardPlan(k=%d): want error, got nil", k)
		}
	}
	if _, err := NewShardPlan(Rect{}, 2); err == nil {
		t.Error("NewShardPlan(empty field): want error, got nil")
	}
	for _, k := range []int{1, 2, 4, 8, 16} {
		p, err := NewShardPlan(field, k)
		if err != nil {
			t.Fatalf("NewShardPlan(k=%d): %v", k, err)
		}
		if p.Shards() != k {
			t.Errorf("Shards() = %d, want %d", p.Shards(), k)
		}
	}
}

// Every zone must tile the field: equal areas, and ShardOf(center of zone i)
// must be i (zones and the descent agree).
func TestShardPlanZonesTile(t *testing.T) {
	field := Rect{Min: Point{100, 50}, Max: Point{2100, 1050}}
	for _, k := range []int{1, 2, 4, 8, 16} {
		p, _ := NewShardPlan(field, k)
		var total float64
		for i := 0; i < k; i++ {
			z := p.Zone(i)
			total += z.Area()
			if got := p.ShardOf(z.Center()); got != i {
				t.Errorf("k=%d: ShardOf(Zone(%d).Center()) = %d", k, i, got)
			}
			if !field.ContainsRect(z) {
				t.Errorf("k=%d: zone %d %v outside field", k, i, z)
			}
		}
		if diff := total - field.Area(); diff > 1e-6 || diff < -1e-6 {
			t.Errorf("k=%d: zone areas sum to %g, field is %g", k, total, field.Area())
		}
	}
}

// The plan must follow the paper's convention: first cut vertical, then
// alternating. For k=2 the two zones are left/right halves; for k=4 each of
// those is split top/bottom.
func TestShardPlanCutOrder(t *testing.T) {
	field := Rect{Max: Point{1000, 1000}}
	p2, _ := NewShardPlan(field, 2)
	if z := p2.Zone(0); z.Max.X != 500 || z.Max.Y != 1000 {
		t.Errorf("k=2 zone 0 = %v, want left half", z)
	}
	p4, _ := NewShardPlan(field, 4)
	want := []Rect{
		NewRect(Point{0, 0}, Point{500, 500}),
		NewRect(Point{0, 500}, Point{500, 1000}),
		NewRect(Point{500, 0}, Point{1000, 500}),
		NewRect(Point{500, 500}, Point{1000, 1000}),
	}
	for i, w := range want {
		if p4.Zone(i) != w {
			t.Errorf("k=4 zone %d = %v, want %v", i, p4.Zone(i), w)
		}
	}
}

// ShardOf must agree with Zone containment, assign cut-line ties to the hi
// side (the Side rule), and clamp out-of-field points to a valid shard.
func TestShardOf(t *testing.T) {
	field := Rect{Max: Point{1000, 1000}}
	p, _ := NewShardPlan(field, 4)
	cases := []struct {
		pt   Point
		want int
	}{
		{Point{10, 10}, 0},
		{Point{10, 990}, 1},
		{Point{990, 10}, 2},
		{Point{990, 990}, 3},
		{Point{500, 500}, 3},  // both ties go hi
		{Point{499, 500}, 1},  // x strictly below cut, y tie
		{Point{-50, -50}, 0},  // clamped
		{Point{2000, 2000}, 3}, // clamped
	}
	for _, c := range cases {
		if got := p.ShardOf(c.pt); got != c.want {
			t.Errorf("ShardOf(%v) = %d, want %d", c.pt, got, c.want)
		}
	}
}

func TestBorder(t *testing.T) {
	field := Rect{Max: Point{1000, 1000}}
	p1, _ := NewShardPlan(field, 1)
	if p1.Border(Point{500, 500}, 250) {
		t.Error("k=1 has no interior boundaries")
	}
	p4, _ := NewShardPlan(field, 4)
	cases := []struct {
		pt     Point
		margin float64
		want   bool
	}{
		{Point{260, 250}, 250, true},   // near the vertical cut at x=500
		{Point{250, 260}, 250, true},   // near the horizontal cut at y=500
		{Point{100, 100}, 250, false},  // interior corner far from cuts
		{Point{2, 2}, 250, false},      // near the field edge only
		{Point{501, 900}, 250, true},   // just hi of the vertical cut
		{Point{100, 100}, 500, true},   // margin large enough to reach a cut
	}
	for _, c := range cases {
		if got := p4.Border(c.pt, c.margin); got != c.want {
			t.Errorf("Border(%v, %g) = %v, want %v", c.pt, c.margin, got, c.want)
		}
	}
}

package geo

import "fmt"

// ShardPlan partitions the field into K = 2^depth rectangular shards by the
// same recursive bisection ALERT uses for destination zones (Section 2.4):
// alternating cut directions starting with a vertical cut. The plan is the
// spatial basis for the sharded event engine — each shard owns the nodes whose
// initial position falls inside its zone, and nodes within a radio range of an
// interior cut line form the border band whose frames cross shards.
//
// A plan is immutable after construction and safe for concurrent readers.
type ShardPlan struct {
	field Rect
	depth int
	zones []Rect
}

// NewShardPlan builds a plan with k shards over field. k must be a power of
// two >= 1 (the bisection hierarchy only produces power-of-two leaf counts)
// and field must be non-empty.
func NewShardPlan(field Rect, k int) (*ShardPlan, error) {
	if k < 1 || k&(k-1) != 0 {
		return nil, fmt.Errorf("geo: shard count %d is not a power of two", k)
	}
	if field.Empty() {
		return nil, fmt.Errorf("geo: cannot shard empty field %v", field)
	}
	depth := 0
	for 1<<depth < k {
		depth++
	}
	p := &ShardPlan{field: field, depth: depth, zones: make([]Rect, k)}
	for i := range p.zones {
		p.zones[i] = p.zoneOf(i)
	}
	return p, nil
}

// zoneOf reconstructs shard i's rectangle by replaying its bisection path:
// bit depth-1 of i selects the half of the first (vertical) cut, and so on
// down to bit 0. This is the inverse of ShardOf's descent.
func (p *ShardPlan) zoneOf(i int) Rect {
	zone := p.field
	dir := Vertical
	for level := p.depth - 1; level >= 0; level-- {
		lo, hi := zone.Bisect(dir)
		if i>>uint(level)&1 == 0 {
			zone = lo
		} else {
			zone = hi
		}
		dir = dir.Flip()
	}
	return zone
}

// Shards returns the number of shards K.
func (p *ShardPlan) Shards() int { return len(p.zones) }

// Field returns the whole partitioned field.
func (p *ShardPlan) Field() Rect { return p.field }

// Zone returns shard i's rectangle.
func (p *ShardPlan) Zone(i int) Rect { return p.zones[i] }

// ShardOf maps a point to the shard owning it: descend the bisection
// hierarchy, at each level appending the SideIndex bit (strictly-below-the-cut
// goes lo, ties go hi — the same deterministic rule DestZone uses). Points
// outside the field are clamped first so every position has an owner.
func (p *ShardPlan) ShardOf(pt Point) int {
	pt = p.field.Clamp(pt)
	zone := p.field
	dir := Vertical
	idx := 0
	for level := 0; level < p.depth; level++ {
		s := zone.SideIndex(dir, pt)
		idx = idx<<1 | s
		lo, hi := zone.Bisect(dir)
		if s == 0 {
			zone = lo
		} else {
			zone = hi
		}
		dir = dir.Flip()
	}
	return idx
}

// Border reports whether pt lies within margin of an interior shard boundary
// — an edge of its shard zone that is not also an edge of the field. Nodes in
// this band are the ones whose frames can reach a neighbor owned by another
// shard, so they bound the cross-shard traffic the sharded engine must
// exchange.
func (p *ShardPlan) Border(pt Point, margin float64) bool {
	if p.depth == 0 {
		return false
	}
	z := p.zones[p.ShardOf(pt)]
	pt = p.field.Clamp(pt)
	// Zone edges are either copied exactly from the field rect or produced
	// by a cut; comparing against the field's own coordinates is an identity
	// test on copied values, not an approximate-equality question.
	//lint:allowfloatcompare zone edge equals the field edge exactly when uncut (copied value identity)
	if z.Min.X != p.field.Min.X && pt.X-z.Min.X < margin {
		return true
	}
	//lint:allowfloatcompare zone edge equals the field edge exactly when uncut (copied value identity)
	if z.Max.X != p.field.Max.X && z.Max.X-pt.X < margin {
		return true
	}
	//lint:allowfloatcompare zone edge equals the field edge exactly when uncut (copied value identity)
	if z.Min.Y != p.field.Min.Y && pt.Y-z.Min.Y < margin {
		return true
	}
	//lint:allowfloatcompare zone edge equals the field edge exactly when uncut (copied value identity)
	if z.Max.Y != p.field.Max.Y && z.Max.Y-pt.Y < margin {
		return true
	}
	return false
}

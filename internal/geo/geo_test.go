package geo

import (
	"math"
	"testing"
	"testing/quick"

	"alertmanet/internal/rng"
)

func almostEqual(a, b float64) bool { return math.Abs(a-b) < 1e-9 }

func TestPointDist(t *testing.T) {
	p := Point{0, 0}
	q := Point{3, 4}
	if !almostEqual(p.Dist(q), 5) {
		t.Fatalf("Dist = %v, want 5", p.Dist(q))
	}
	if !almostEqual(p.Dist2(q), 25) {
		t.Fatalf("Dist2 = %v, want 25", p.Dist2(q))
	}
}

func TestPointLerp(t *testing.T) {
	p := Point{0, 0}
	q := Point{10, 20}
	m := p.Lerp(q, 0.5)
	if !almostEqual(m.X, 5) || !almostEqual(m.Y, 10) {
		t.Fatalf("Lerp midpoint = %v", m)
	}
	if p.Lerp(q, 0) != p || p.Lerp(q, 1) != q {
		t.Fatal("Lerp endpoints wrong")
	}
}

func TestNewRectNormalizes(t *testing.T) {
	r := NewRect(Point{5, 1}, Point{2, 7})
	if r.Min != (Point{2, 1}) || r.Max != (Point{5, 7}) {
		t.Fatalf("NewRect = %v", r)
	}
}

func TestRectBasics(t *testing.T) {
	r := Rect{Point{0, 0}, Point{4, 2}}
	if !almostEqual(r.Width(), 4) || !almostEqual(r.Height(), 2) || !almostEqual(r.Area(), 8) {
		t.Fatal("width/height/area wrong")
	}
	if r.Center() != (Point{2, 1}) {
		t.Fatalf("Center = %v", r.Center())
	}
	if !r.Contains(Point{0, 0}) || !r.Contains(Point{4, 2}) || r.Contains(Point{4.01, 1}) {
		t.Fatal("Contains wrong at boundaries")
	}
	if r.Empty() {
		t.Fatal("non-empty rect reported Empty")
	}
	if !(Rect{Point{1, 1}, Point{1, 3}}).Empty() {
		t.Fatal("zero-width rect not Empty")
	}
}

func TestRectClamp(t *testing.T) {
	r := Rect{Point{0, 0}, Point{10, 10}}
	if r.Clamp(Point{-5, 3}) != (Point{0, 3}) {
		t.Fatal("Clamp left failed")
	}
	if r.Clamp(Point{11, 12}) != (Point{10, 10}) {
		t.Fatal("Clamp corner failed")
	}
	in := Point{4, 5}
	if r.Clamp(in) != in {
		t.Fatal("Clamp moved interior point")
	}
}

func TestIntersects(t *testing.T) {
	a := Rect{Point{0, 0}, Point{2, 2}}
	b := Rect{Point{1, 1}, Point{3, 3}}
	c := Rect{Point{2.5, 2.5}, Point{4, 4}}
	if !a.Intersects(b) || !b.Intersects(a) {
		t.Fatal("overlapping rects not intersecting")
	}
	if a.Intersects(c) {
		t.Fatal("disjoint rects intersect")
	}
	edge := Rect{Point{2, 0}, Point{3, 2}}
	if !a.Intersects(edge) {
		t.Fatal("edge-sharing rects should intersect (closed rects)")
	}
}

func TestBisect(t *testing.T) {
	r := Rect{Point{0, 0}, Point{4, 2}}
	l, rr := r.Bisect(Vertical)
	if l != (Rect{Point{0, 0}, Point{2, 2}}) || rr != (Rect{Point{2, 0}, Point{4, 2}}) {
		t.Fatalf("vertical bisect: %v %v", l, rr)
	}
	b, tp := r.Bisect(Horizontal)
	if b != (Rect{Point{0, 0}, Point{4, 1}}) || tp != (Rect{Point{0, 1}, Point{4, 2}}) {
		t.Fatalf("horizontal bisect: %v %v", b, tp)
	}
}

func TestSideAssignsCutLineToHi(t *testing.T) {
	r := Rect{Point{0, 0}, Point{4, 4}}
	onCut := Point{2, 1}
	got := r.Side(Vertical, onCut)
	if got.Min.X != 2 {
		t.Fatalf("point on cut assigned to %v, want hi half", got)
	}
	if r.SideIndex(Vertical, onCut) != 1 {
		t.Fatal("SideIndex on cut should be 1")
	}
	if r.SideIndex(Vertical, Point{1.999, 1}) != 0 {
		t.Fatal("SideIndex left of cut should be 0")
	}
}

func TestDirectionFlip(t *testing.T) {
	if Vertical.Flip() != Horizontal || Horizontal.Flip() != Vertical {
		t.Fatal("Flip broken")
	}
	if Vertical.String() != "vertical" || Horizontal.String() != "horizontal" {
		t.Fatal("String broken")
	}
}

// TestPaperSection24Example reproduces the worked example from Section 2.4:
// field (0,0)-(4,2) (G=8), H=3, destination at (0.5, 0.8) => destination
// zone (0,0)-(1,1) with area 1.
func TestPaperSection24Example(t *testing.T) {
	field := Rect{Point{0, 0}, Point{4, 2}}
	zd := DestZone(field, Point{0.5, 0.8}, 3, Vertical)
	want := Rect{Point{0, 0}, Point{1, 1}}
	if zd != want {
		t.Fatalf("DestZone = %v, want %v", zd, want)
	}
	if !almostEqual(zd.Area(), 8.0/math.Pow(2, 3)) {
		t.Fatalf("Z_D area = %v, want G/2^H = 1", zd.Area())
	}
}

func TestSideLengthsEquations(t *testing.T) {
	// After 3 partitions of an lA x lB field starting vertical:
	// two vertical cuts (1st, 3rd) quarter the X side, one horizontal cut
	// halves the Y side.
	a, b := SideLengths(3, 8, 4)
	if !almostEqual(a, 2) || !almostEqual(b, 2) {
		t.Fatalf("SideLengths(3) = %v, %v; want 2, 2", a, b)
	}
	a, b = SideLengths(0, 8, 4)
	if !almostEqual(a, 8) || !almostEqual(b, 4) {
		t.Fatal("SideLengths(0) should be the field")
	}
	a, b = SideLengths(-2, 8, 4)
	if !almostEqual(a, 8) || !almostEqual(b, 4) {
		t.Fatal("negative h should clamp to 0")
	}
}

func TestSideLengthsMatchDestZone(t *testing.T) {
	field := Rect{Point{0, 0}, Point{1000, 1000}}
	src := rng.New(1)
	for h := 0; h <= 8; h++ {
		d := RandomPoint(field, src)
		zd := DestZone(field, d, h, Vertical)
		a, b := SideLengths(h, field.Width(), field.Height())
		if !almostEqual(zd.Width(), a) || !almostEqual(zd.Height(), b) {
			t.Fatalf("h=%d: zone %vx%v, equations say %vx%v",
				h, zd.Width(), zd.Height(), a, b)
		}
	}
}

func TestPartitionsForK(t *testing.T) {
	// H = log2(N/k): 200 nodes, k=6 -> log2(33.3) = 5.06 -> 5 (paper's
	// default H=5 "to ensure a reasonable number of nodes in Z_D").
	if h := PartitionsForK(200, 6); h != 5 {
		t.Fatalf("PartitionsForK(200,6) = %d, want 5", h)
	}
	if h := PartitionsForK(256, 8); h != 5 {
		t.Fatalf("PartitionsForK(256,8) = %d, want 5", h)
	}
	if h := PartitionsForK(100, 100); h != 0 {
		t.Fatal("k >= N should give 0")
	}
	if h := PartitionsForK(0, 5); h != 0 {
		t.Fatal("no nodes should give 0")
	}
	if h := PartitionsForK(100, 0); h != 0 {
		t.Fatal("k=0 should give 0")
	}
}

func TestDestZoneContainsDestination(t *testing.T) {
	field := Rect{Point{0, 0}, Point{1000, 1000}}
	src := rng.New(2)
	for i := 0; i < 500; i++ {
		d := RandomPoint(field, src)
		for h := 0; h <= 7; h++ {
			zd := DestZone(field, d, h, Vertical)
			if !zd.Contains(d) {
				t.Fatalf("Z_D %v does not contain D %v (h=%d)", zd, d, h)
			}
		}
	}
}

func TestZonePathNesting(t *testing.T) {
	field := Rect{Point{0, 0}, Point{1000, 500}}
	src := rng.New(3)
	for i := 0; i < 200; i++ {
		d := RandomPoint(field, src)
		path := ZonePath(field, d, 6, Vertical)
		if len(path) != 7 {
			t.Fatalf("path length %d", len(path))
		}
		for j := 1; j < len(path); j++ {
			if !path[j-1].ContainsRect(path[j]) {
				t.Fatalf("zone %d not nested in zone %d", j, j-1)
			}
			if !almostEqual(path[j].Area()*2, path[j-1].Area()) {
				t.Fatalf("zone %d is not half the area of zone %d", j, j-1)
			}
		}
		if path[6] != DestZone(field, d, 6, Vertical) {
			t.Fatal("ZonePath tail disagrees with DestZone")
		}
	}
}

func TestRandomPointInside(t *testing.T) {
	r := Rect{Point{100, 200}, Point{300, 250}}
	src := rng.New(4)
	for i := 0; i < 1000; i++ {
		p := RandomPoint(r, src)
		if !r.Contains(p) {
			t.Fatalf("RandomPoint %v outside %v", p, r)
		}
	}
}

func TestSeparateBasic(t *testing.T) {
	field := Rect{Point{0, 0}, Point{1000, 1000}}
	self := Point{900, 900}
	d := Point{100, 100}
	zd := DestZone(field, d, 5, Vertical)
	res := Separate(field, self, zd, Vertical, 5)
	if !res.Separated {
		t.Fatal("far-apart S and Z_D should separate in one cut")
	}
	if res.Cuts != 1 {
		t.Fatalf("Cuts = %d, want 1", res.Cuts)
	}
	if !res.SelfZone.Contains(self) {
		t.Fatal("SelfZone must contain the forwarder")
	}
	if !res.OtherZone.ContainsRect(zd) {
		t.Fatal("OtherZone must contain Z_D")
	}
	if res.NextDir != Horizontal {
		t.Fatal("direction must flip after one vertical cut")
	}
}

func TestSeparateNeedsMultipleCuts(t *testing.T) {
	field := Rect{Point{0, 0}, Point{1000, 1000}}
	// Self and destination in the same left half, different bottom/top.
	self := Point{100, 900}
	d := Point{100, 100}
	zd := DestZone(field, d, 5, Vertical)
	res := Separate(field, self, zd, Vertical, 5)
	if !res.Separated {
		t.Fatal("should separate")
	}
	if res.Cuts != 2 {
		t.Fatalf("Cuts = %d, want 2 (1 vertical shared + 1 horizontal split)", res.Cuts)
	}
}

func TestSeparateRespectsMaxCuts(t *testing.T) {
	field := Rect{Point{0, 0}, Point{1000, 1000}}
	self := Point{100.1, 100.1}
	d := Point{100, 100}
	zd := DestZone(field, d, 10, Vertical)
	res := Separate(field, self, zd, Vertical, 3)
	if res.Cuts > 3 {
		t.Fatalf("Cuts = %d exceeds maxCuts", res.Cuts)
	}
}

func TestSeparateStopsAtZD(t *testing.T) {
	field := Rect{Point{0, 0}, Point{1000, 1000}}
	d := Point{10, 10}
	zd := DestZone(field, d, 4, Vertical)
	// Forwarder already inside Z_D.
	self := Point{12, 12}
	if !zd.Contains(self) {
		t.Fatal("test setup: self should be in Z_D")
	}
	res := Separate(zd, self, zd, Vertical, 10)
	if res.Separated {
		t.Fatal("must not separate once the zone is Z_D")
	}
	if res.Cuts != 0 {
		t.Fatalf("Cuts = %d, want 0", res.Cuts)
	}
}

// Property: whenever Separate reports separation, the two half zones
// partition the bisected zone, self is in SelfZone, and Z_D's center is in
// OtherZone.
func TestQuickSeparateInvariants(t *testing.T) {
	field := Rect{Point{0, 0}, Point{1024, 1024}}
	src := rng.New(5)
	f := func(sx, sy, dx, dy uint16, hRaw uint8, vertFirst bool) bool {
		self := Point{math.Mod(float64(sx), 1024), math.Mod(float64(sy), 1024)}
		d := Point{math.Mod(float64(dx), 1024), math.Mod(float64(dy), 1024)}
		h := int(hRaw%7) + 1
		first := Vertical
		if !vertFirst {
			first = Horizontal
		}
		zd := DestZone(field, d, h, Vertical)
		res := Separate(field, self, zd, first, h)
		if !res.Separated {
			return true
		}
		if !res.SelfZone.Contains(self) {
			return false
		}
		if !res.OtherZone.Contains(zd.Center()) {
			return false
		}
		// The two halves together tile their parent: equal areas,
		// disjoint interiors.
		if !almostEqual(res.SelfZone.Area(), res.OtherZone.Area()) {
			return false
		}
		// TD drawn from OtherZone lies in the field.
		td := RandomPoint(res.OtherZone, src)
		return field.Contains(td)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}

// Property: DestZone area is exactly G / 2^H.
func TestQuickDestZoneArea(t *testing.T) {
	field := Rect{Point{0, 0}, Point{1000, 1000}}
	f := func(dx, dy uint16, hRaw uint8) bool {
		d := Point{math.Mod(float64(dx), 1000), math.Mod(float64(dy), 1000)}
		h := int(hRaw % 10)
		zd := DestZone(field, d, h, Vertical)
		return almostEqual(zd.Area(), field.Area()/math.Pow(2, float64(h)))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}

// Property: repeated Separate steps from random forwarder positions always
// make progress toward Z_D: the other zone (which contains Z_D) has at most
// half the area of the zone it came from.
func TestQuickSeparateShrinks(t *testing.T) {
	field := Rect{Point{0, 0}, Point{1000, 1000}}
	f := func(sx, sy, dx, dy uint16) bool {
		self := Point{math.Mod(float64(sx), 1000), math.Mod(float64(sy), 1000)}
		d := Point{math.Mod(float64(dx), 1000), math.Mod(float64(dy), 1000)}
		zd := DestZone(field, d, 5, Vertical)
		res := Separate(field, self, zd, Vertical, 5)
		if !res.Separated {
			return true
		}
		return res.OtherZone.Area() <= field.Area()/2+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}

func TestSeparateWithPolicyFixedAxis(t *testing.T) {
	field := Rect{Point{0, 0}, Point{1000, 1000}}
	// Self sits exactly above the destination zone's center: a fixed
	// vertical axis can never separate them, so the budget runs out.
	d := Point{100, 100}
	zd := DestZone(field, d, 5, Vertical)
	self := Point{zd.Center().X, 900}
	res := SeparateWithPolicy(field, self, zd, Vertical, 5, false)
	if res.Separated {
		t.Fatal("vertical-only cuts cannot separate a vertical offset")
	}
	if res.NextDir != Vertical {
		t.Fatal("fixed policy must not flip the direction")
	}
	// Horizontal-only cuts separate them on the first cut.
	res = SeparateWithPolicy(field, self, zd, Horizontal, 5, false)
	if !res.Separated || res.Cuts != 1 {
		t.Fatalf("horizontal fixed cut should separate immediately: %+v", res)
	}
	if res.NextDir != Horizontal {
		t.Fatal("fixed policy flipped the direction")
	}
}

func TestSeparateDelegatesToAlternating(t *testing.T) {
	field := Rect{Point{0, 0}, Point{1000, 1000}}
	self := Point{900, 900}
	d := Point{100, 100}
	zd := DestZone(field, d, 5, Vertical)
	a := Separate(field, self, zd, Vertical, 5)
	b := SeparateWithPolicy(field, self, zd, Vertical, 5, true)
	if a != b {
		t.Fatalf("Separate (%+v) != SeparateWithPolicy alternate (%+v)", a, b)
	}
}

// TestSeparateReconstructsCanonicalHierarchy: walking Separate from the
// whole field with the canonical phase (vertical first) visits exactly the
// zones of ZonePath — the routing partition and the destination-zone
// construction agree.
func TestSeparateReconstructsCanonicalHierarchy(t *testing.T) {
	field := Rect{Point{0, 0}, Point{1000, 1000}}
	src := rng.New(99)
	for trial := 0; trial < 200; trial++ {
		d := RandomPoint(field, src)
		self := RandomPoint(field, src)
		const h = 5
		zd := DestZone(field, d, h, Vertical)
		path := ZonePath(field, d, h, Vertical)
		res := Separate(field, self, zd, Vertical, h)
		if !res.Separated {
			// Self effectively shares Z_D's hierarchy down to the
			// budget; nothing to check.
			continue
		}
		// The half holding Z_D after `Cuts` canonical cuts must be the
		// Cuts-th zone of the canonical path.
		if res.OtherZone != path[res.Cuts] {
			t.Fatalf("trial %d: OtherZone %v != canonical zone %v (cuts=%d)",
				trial, res.OtherZone, path[res.Cuts], res.Cuts)
		}
	}
}

// Package trace renders simulation state for humans: an ASCII map of the
// network field with a packet's route, the destination zone, and the
// endpoints — the visual counterpart of the paper's Figs. 1-3 — plus a
// per-packet event timeline assembled from channel taps.
package trace

import (
	"fmt"
	"sort"
	"strings"

	"alertmanet/internal/geo"
	"alertmanet/internal/medium"
)

// Canvas is a character raster over the network field.
type Canvas struct {
	field geo.Rect
	w, h  int
	cells []byte
}

// NewCanvas creates a w x h character canvas spanning the field. A canvas
// needs at least 2x2 cells and a non-empty field to span; anything smaller
// is an error.
func NewCanvas(field geo.Rect, w, h int) (*Canvas, error) {
	if w < 2 || h < 2 || field.Empty() {
		return nil, fmt.Errorf("trace: degenerate canvas %dx%d over %v", w, h, field)
	}
	c := &Canvas{field: field, w: w, h: h, cells: make([]byte, w*h)}
	for i := range c.cells {
		c.cells[i] = ' '
	}
	return c, nil
}

// cell maps a field position to raster coordinates (y axis flipped so north
// is up).
func (c *Canvas) cell(p geo.Point) (int, int, bool) {
	if !c.field.Contains(p) {
		return 0, 0, false
	}
	fx := (p.X - c.field.Min.X) / c.field.Width()
	fy := (p.Y - c.field.Min.Y) / c.field.Height()
	x := int(fx * float64(c.w-1))
	y := c.h - 1 - int(fy*float64(c.h-1))
	return x, y, true
}

// Mark draws ch at the field position p; later marks win.
func (c *Canvas) Mark(p geo.Point, ch byte) {
	if x, y, ok := c.cell(p); ok {
		c.cells[y*c.w+x] = ch
	}
}

// MarkIfEmpty draws ch only where nothing has been drawn yet.
func (c *Canvas) MarkIfEmpty(p geo.Point, ch byte) {
	if x, y, ok := c.cell(p); ok && c.cells[y*c.w+x] == ' ' {
		c.cells[y*c.w+x] = ch
	}
}

// Outline traces the border of a sub-rectangle with ch (only on empty
// cells, so routes stay visible over zone borders).
func (c *Canvas) Outline(r geo.Rect, ch byte) {
	steps := 2 * (c.w + c.h)
	for i := 0; i <= steps; i++ {
		t := float64(i) / float64(steps)
		edges := []geo.Point{
			{X: r.Min.X + t*r.Width(), Y: r.Min.Y},
			{X: r.Min.X + t*r.Width(), Y: r.Max.Y},
			{X: r.Min.X, Y: r.Min.Y + t*r.Height()},
			{X: r.Max.X, Y: r.Min.Y + t*r.Height()},
		}
		for _, p := range edges {
			c.MarkIfEmpty(c.field.Clamp(p), ch)
		}
	}
}

// String renders the canvas with a border.
func (c *Canvas) String() string {
	var b strings.Builder
	b.WriteByte('+')
	b.WriteString(strings.Repeat("-", c.w))
	b.WriteString("+\n")
	for y := 0; y < c.h; y++ {
		b.WriteByte('|')
		b.Write(c.cells[y*c.w : (y+1)*c.w])
		b.WriteString("|\n")
	}
	b.WriteByte('+')
	b.WriteString(strings.Repeat("-", c.w))
	b.WriteString("+\n")
	return b.String()
}

// RouteMap renders a packet's journey: every node as '.', the route's
// relays numbered in hop order (1-9, then 'a'-'z'), S and D, and the
// destination zone outline. It fails on a degenerate canvas (see NewCanvas).
func RouteMap(field geo.Rect, positions []geo.Point, path []medium.NodeID,
	src, dst medium.NodeID, zd geo.Rect, w, h int) (string, error) {
	c, err := NewCanvas(field, w, h)
	if err != nil {
		return "", err
	}
	c.Outline(zd, '#')
	for _, p := range positions {
		c.MarkIfEmpty(p, '.')
	}
	hop := 0
	seen := map[medium.NodeID]bool{}
	for _, id := range path {
		if id == src || id == dst || seen[id] {
			continue
		}
		seen[id] = true
		hop++
		c.Mark(positions[id], hopGlyph(hop))
	}
	c.Mark(positions[src], 'S')
	c.Mark(positions[dst], 'D')
	return c.String(), nil
}

func hopGlyph(hop int) byte {
	switch {
	case hop < 10:
		return byte('0' + hop)
	case hop < 36:
		return byte('a' + hop - 10)
	default:
		return '*'
	}
}

// Event is one observed channel action attributed to a packet.
type Event struct {
	At   float64
	From medium.NodeID
	To   medium.NodeID // medium.BroadcastID for broadcasts
	Size int
	Kind string // "unicast" or "broadcast"
}

// Timeline collects the transmissions of a run, filterable per conversation.
type Timeline struct {
	events []Event
}

// Attach taps the medium and records every transmission.
func Attach(med *medium.Medium) *Timeline {
	t := &Timeline{}
	med.TapSend(func(tx medium.Transmission) {
		kind := "unicast"
		if tx.To == medium.BroadcastID {
			kind = "broadcast"
		}
		t.events = append(t.events, Event{
			At: tx.At, From: tx.From, To: tx.To, Size: tx.Size, Kind: kind,
		})
	})
	return t
}

// Events returns all recorded events in time order.
func (t *Timeline) Events() []Event {
	out := make([]Event, len(t.events))
	copy(out, t.events)
	sort.SliceStable(out, func(i, j int) bool { return out[i].At < out[j].At })
	return out
}

// Window returns the events within [from, to].
func (t *Timeline) Window(from, to float64) []Event {
	var out []Event
	for _, e := range t.Events() {
		if e.At >= from && e.At <= to {
			out = append(out, e)
		}
	}
	return out
}

// Format renders events as an aligned log.
func Format(events []Event) string {
	var b strings.Builder
	for _, e := range events {
		to := fmt.Sprintf("%d", e.To)
		if e.To == medium.BroadcastID {
			to = "*"
		}
		fmt.Fprintf(&b, "t=%9.4fs  %-9s %4d -> %-4s %4d B\n",
			e.At, e.Kind, e.From, to, e.Size)
	}
	return b.String()
}

// SVG rendering of routes: the publication-grade counterpart of the ASCII
// RouteMap, with nodes, the hop-ordered route polyline, the destination
// zone, and endpoint markers. Pure stdlib string building — the output
// opens in any browser.

package trace

import (
	"fmt"
	"strings"

	"alertmanet/internal/geo"
	"alertmanet/internal/medium"
)

// SVGOptions tunes RouteSVG.
type SVGOptions struct {
	// Width is the image width in pixels; height follows the field's
	// aspect ratio. Default 640.
	Width int
	// Title is an optional caption rendered at the top.
	Title string
}

// RouteSVG renders a packet's journey as an SVG document: light dots for
// every node, a polyline through the route in hop order, the destination
// zone as a dashed rectangle, and S/D markers.
func RouteSVG(field geo.Rect, positions []geo.Point, path []medium.NodeID,
	src, dst medium.NodeID, zd geo.Rect, opt SVGOptions) string {
	w := opt.Width
	if w <= 0 {
		w = 640
	}
	h := int(float64(w) * field.Height() / field.Width())
	sx := func(x float64) float64 {
		return (x - field.Min.X) / field.Width() * float64(w)
	}
	sy := func(y float64) float64 {
		// SVG y grows downward; field y grows upward.
		return float64(h) - (y-field.Min.Y)/field.Height()*float64(h)
	}

	var b strings.Builder
	fmt.Fprintf(&b, `<svg xmlns="http://www.w3.org/2000/svg" width="%d" height="%d" viewBox="0 0 %d %d">`,
		w, h, w, h)
	b.WriteString("\n")
	fmt.Fprintf(&b, `<rect width="%d" height="%d" fill="#fcfcf7" stroke="#555"/>`, w, h)
	b.WriteString("\n")

	// Destination zone.
	fmt.Fprintf(&b,
		`<rect x="%.1f" y="%.1f" width="%.1f" height="%.1f" fill="#fde8e8" stroke="#c0392b" stroke-dasharray="6,4"/>`,
		sx(zd.Min.X), sy(zd.Max.Y),
		zd.Width()/field.Width()*float64(w),
		zd.Height()/field.Height()*float64(h))
	b.WriteString("\n")

	// All nodes.
	for _, p := range positions {
		fmt.Fprintf(&b, `<circle cx="%.1f" cy="%.1f" r="2" fill="#bbb"/>`, sx(p.X), sy(p.Y))
		b.WriteString("\n")
	}

	// The route polyline (deduplicated consecutive holders).
	var pts []geo.Point
	var last medium.NodeID = -1
	for _, id := range path {
		if id == last || int(id) >= len(positions) {
			continue
		}
		last = id
		pts = append(pts, positions[id])
	}
	if len(pts) > 1 {
		b.WriteString(`<polyline fill="none" stroke="#2471a3" stroke-width="2" points="`)
		for _, p := range pts {
			fmt.Fprintf(&b, "%.1f,%.1f ", sx(p.X), sy(p.Y))
		}
		b.WriteString(`"/>` + "\n")
	}
	// Numbered relays.
	hop := 0
	seen := map[medium.NodeID]bool{}
	last = -1
	for _, id := range path {
		if id == last || id == src || id == dst || seen[id] || int(id) >= len(positions) {
			last = id
			continue
		}
		last = id
		seen[id] = true
		hop++
		p := positions[id]
		fmt.Fprintf(&b, `<circle cx="%.1f" cy="%.1f" r="6" fill="#2471a3"/>`, sx(p.X), sy(p.Y))
		b.WriteString("\n")
		fmt.Fprintf(&b, `<text x="%.1f" y="%.1f" font-size="8" fill="#fff" text-anchor="middle" dy="3">%d</text>`,
			sx(p.X), sy(p.Y), hop)
		b.WriteString("\n")
	}

	// Endpoints.
	marker := func(id medium.NodeID, label, color string) {
		if int(id) >= len(positions) {
			return
		}
		p := positions[id]
		fmt.Fprintf(&b, `<circle cx="%.1f" cy="%.1f" r="8" fill="%s"/>`, sx(p.X), sy(p.Y), color)
		b.WriteString("\n")
		fmt.Fprintf(&b, `<text x="%.1f" y="%.1f" font-size="10" fill="#fff" text-anchor="middle" dy="3.5">%s</text>`,
			sx(p.X), sy(p.Y), label)
		b.WriteString("\n")
	}
	marker(src, "S", "#1e8449")
	marker(dst, "D", "#c0392b")

	if opt.Title != "" {
		fmt.Fprintf(&b, `<text x="8" y="16" font-size="13" fill="#333">%s</text>`,
			escapeXML(opt.Title))
		b.WriteString("\n")
	}
	b.WriteString("</svg>\n")
	return b.String()
}

func escapeXML(s string) string {
	r := strings.NewReplacer("&", "&amp;", "<", "&lt;", ">", "&gt;", `"`, "&quot;")
	return r.Replace(s)
}

package trace

import (
	"strings"
	"testing"

	"alertmanet/internal/geo"
	"alertmanet/internal/medium"
	"alertmanet/internal/mobility"
	"alertmanet/internal/rng"
	"alertmanet/internal/sim"
)

var field = geo.Rect{Min: geo.Point{X: 0, Y: 0}, Max: geo.Point{X: 1000, Y: 1000}}

func mustCanvas(t *testing.T, field geo.Rect, w, h int) *Canvas {
	t.Helper()
	c, err := NewCanvas(field, w, h)
	if err != nil {
		t.Fatalf("NewCanvas(%dx%d): %v", w, h, err)
	}
	return c
}

func TestCanvasBasics(t *testing.T) {
	c := mustCanvas(t, field, 20, 10)
	c.Mark(geo.Point{X: 0, Y: 0}, 'A')       // bottom-left
	c.Mark(geo.Point{X: 1000, Y: 1000}, 'B') // top-right
	out := c.String()
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 12 { // 10 rows + 2 borders
		t.Fatalf("lines = %d", len(lines))
	}
	// Y axis flipped: B on the first content row, A on the last.
	if !strings.Contains(lines[1], "B") {
		t.Fatalf("top row missing B: %q", lines[1])
	}
	if !strings.Contains(lines[10], "A") {
		t.Fatalf("bottom row missing A: %q", lines[10])
	}
}

func TestCanvasOutOfFieldIgnored(t *testing.T) {
	c := mustCanvas(t, field, 10, 10)
	c.Mark(geo.Point{X: -5, Y: 50}, 'X')
	if strings.Contains(c.String(), "X") {
		t.Fatal("out-of-field mark drawn")
	}
}

func TestMarkIfEmpty(t *testing.T) {
	c := mustCanvas(t, field, 10, 10)
	p := geo.Point{X: 500, Y: 500}
	c.Mark(p, 'A')
	c.MarkIfEmpty(p, 'B')
	if !strings.Contains(c.String(), "A") || strings.Contains(c.String(), "B") {
		t.Fatal("MarkIfEmpty overwrote")
	}
}

func TestOutline(t *testing.T) {
	c := mustCanvas(t, field, 40, 20)
	c.Outline(geo.Rect{Min: geo.Point{X: 250, Y: 250}, Max: geo.Point{X: 750, Y: 750}}, '#')
	if strings.Count(c.String(), "#") < 10 {
		t.Fatal("outline barely drawn")
	}
}

func TestDegenerateCanvasError(t *testing.T) {
	if _, err := NewCanvas(field, 1, 1); err == nil {
		t.Fatal("want error for a 1x1 canvas")
	}
	if _, err := NewCanvas(geo.Rect{}, 10, 10); err == nil {
		t.Fatal("want error for an empty field")
	}
}

func TestRouteMap(t *testing.T) {
	positions := []geo.Point{
		{X: 100, Y: 100}, {X: 300, Y: 300}, {X: 500, Y: 500},
		{X: 700, Y: 700}, {X: 900, Y: 900},
	}
	zd := geo.Rect{Min: geo.Point{X: 750, Y: 750}, Max: geo.Point{X: 1000, Y: 1000}}
	out, err := RouteMap(field, positions, []medium.NodeID{0, 1, 2, 3, 4}, 0, 4, zd, 50, 25)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"S", "D", "1", "2", "3", "#"} {
		if !strings.Contains(out, want) {
			t.Fatalf("map missing %q:\n%s", want, out)
		}
	}
}

func TestHopGlyphs(t *testing.T) {
	if hopGlyph(1) != '1' || hopGlyph(9) != '9' {
		t.Fatal("digit glyphs wrong")
	}
	if hopGlyph(10) != 'a' || hopGlyph(35) != 'z' {
		t.Fatal("letter glyphs wrong")
	}
	if hopGlyph(40) != '*' {
		t.Fatal("overflow glyph wrong")
	}
}

func TestTimeline(t *testing.T) {
	eng := sim.NewEngine()
	src := rng.New(1)
	mob := mobility.NewStatic(field, 5, src)
	par := medium.DefaultParams()
	par.Retries = 0 // fire-and-forget: exactly one on-air event per send
	med := medium.MustNew(eng, mob, par, src)
	for i := 0; i < 5; i++ {
		med.Attach(medium.NodeID(i), func(medium.NodeID, any, int) {})
	}
	tl := Attach(med)
	eng.At(1, func() { med.Unicast(0, 1, "a", 100) })
	eng.At(2, func() { med.Broadcast(2, "b", 64) })
	eng.Run()
	evs := tl.Events()
	if len(evs) != 2 {
		t.Fatalf("events = %d", len(evs))
	}
	if evs[0].Kind != "unicast" || evs[1].Kind != "broadcast" {
		t.Fatalf("kinds = %v %v", evs[0].Kind, evs[1].Kind)
	}
	if evs[0].At > evs[1].At {
		t.Fatal("events out of order")
	}
	win := tl.Window(1.5, 3)
	if len(win) != 1 || win[0].Kind != "broadcast" {
		t.Fatalf("window = %v", win)
	}
	txt := Format(evs)
	if !strings.Contains(txt, "unicast") || !strings.Contains(txt, "-> *") {
		t.Fatalf("format:\n%s", txt)
	}
}

func TestRouteSVG(t *testing.T) {
	positions := []geo.Point{
		{X: 100, Y: 100}, {X: 300, Y: 300}, {X: 500, Y: 500},
		{X: 700, Y: 700}, {X: 900, Y: 900},
	}
	zd := geo.Rect{Min: geo.Point{X: 750, Y: 750}, Max: geo.Point{X: 1000, Y: 1000}}
	svg := RouteSVG(field, positions, []medium.NodeID{0, 1, 2, 3, 4}, 0, 4, zd,
		SVGOptions{Title: `route <1> & "two"`})
	for _, want := range []string{
		"<svg", "</svg>", "polyline", "stroke-dasharray",
		">S</text>", ">D</text>", ">1</text>",
		"route &lt;1&gt; &amp; &quot;two&quot;",
	} {
		if !strings.Contains(svg, want) {
			t.Fatalf("svg missing %q", want)
		}
	}
	// Default aspect ratio: square field -> square image.
	if !strings.Contains(svg, `width="640" height="640"`) {
		t.Fatal("default dimensions wrong")
	}
}

func TestRouteSVGDegenerateInputs(t *testing.T) {
	positions := []geo.Point{{X: 1, Y: 1}}
	// Path referencing out-of-range ids must not panic.
	svg := RouteSVG(field, positions, []medium.NodeID{0, 99}, 0, 99,
		geo.Rect{Min: geo.Point{X: 0, Y: 0}, Max: geo.Point{X: 10, Y: 10}},
		SVGOptions{Width: 100})
	if !strings.Contains(svg, "<svg") {
		t.Fatal("no svg produced")
	}
	// Empty path.
	svg = RouteSVG(field, positions, nil, 0, 0,
		geo.Rect{Min: geo.Point{X: 0, Y: 0}, Max: geo.Point{X: 10, Y: 10}},
		SVGOptions{})
	if strings.Contains(svg, "polyline") {
		t.Fatal("polyline drawn for empty path")
	}
}

// Package stats provides the summary statistics used by the evaluation
// harness: means, standard deviations, and Student-t confidence intervals
// over independent simulation runs (the paper averages 30 runs and draws
// "I"-shaped confidence intervals, Section 5.2).
package stats

import (
	"math"
	"sort"
)

// Sample accumulates observations and reports summary statistics.
// The zero value is an empty sample ready for use.
type Sample struct {
	xs []float64
}

// Add appends one observation.
func (s *Sample) Add(x float64) { s.xs = append(s.xs, x) }

// AddAll appends many observations.
func (s *Sample) AddAll(xs ...float64) { s.xs = append(s.xs, xs...) }

// N returns the number of observations.
func (s *Sample) N() int { return len(s.xs) }

// Values returns a copy of the observations.
func (s *Sample) Values() []float64 {
	out := make([]float64, len(s.xs))
	copy(out, s.xs)
	return out
}

// Mean returns the arithmetic mean, or 0 for an empty sample.
func (s *Sample) Mean() float64 {
	if len(s.xs) == 0 {
		return 0
	}
	sum := 0.0
	for _, x := range s.xs {
		sum += x
	}
	return sum / float64(len(s.xs))
}

// Var returns the unbiased sample variance (n-1 denominator); 0 when n < 2.
func (s *Sample) Var() float64 {
	n := len(s.xs)
	if n < 2 {
		return 0
	}
	m := s.Mean()
	ss := 0.0
	for _, x := range s.xs {
		d := x - m
		ss += d * d
	}
	return ss / float64(n-1)
}

// StdDev returns the sample standard deviation.
func (s *Sample) StdDev() float64 { return math.Sqrt(s.Var()) }

// StdErr returns the standard error of the mean.
func (s *Sample) StdErr() float64 {
	if len(s.xs) == 0 {
		return 0
	}
	return s.StdDev() / math.Sqrt(float64(len(s.xs)))
}

// Min returns the smallest observation (0 if empty).
func (s *Sample) Min() float64 {
	if len(s.xs) == 0 {
		return 0
	}
	m := s.xs[0]
	for _, x := range s.xs[1:] {
		if x < m {
			m = x
		}
	}
	return m
}

// Max returns the largest observation (0 if empty).
func (s *Sample) Max() float64 {
	if len(s.xs) == 0 {
		return 0
	}
	m := s.xs[0]
	for _, x := range s.xs[1:] {
		if x > m {
			m = x
		}
	}
	return m
}

// Quantile returns the q-th quantile (0 <= q <= 1) by linear interpolation.
func (s *Sample) Quantile(q float64) float64 {
	n := len(s.xs)
	if n == 0 {
		return 0
	}
	sorted := s.Values()
	sort.Float64s(sorted)
	if q <= 0 {
		return sorted[0]
	}
	if q >= 1 {
		return sorted[n-1]
	}
	pos := q * float64(n-1)
	lo := int(math.Floor(pos))
	hi := int(math.Ceil(pos))
	if lo == hi {
		return sorted[lo]
	}
	frac := pos - float64(lo)
	return sorted[lo]*(1-frac) + sorted[hi]*frac
}

// CI returns the half-width of the two-sided 95% Student-t confidence
// interval for the mean; mean ± CI covers the true mean with 95% confidence
// under normality. Returns 0 when n < 2.
func (s *Sample) CI() float64 {
	n := len(s.xs)
	if n < 2 {
		return 0
	}
	return tCritical95(n-1) * s.StdErr()
}

// Summary is a compact, copyable report of a sample.
type Summary struct {
	N      int
	Mean   float64
	StdDev float64
	CI95   float64
	Min    float64
	Max    float64
}

// Summarize produces a Summary of the sample.
func (s *Sample) Summarize() Summary {
	return Summary{
		N:      s.N(),
		Mean:   s.Mean(),
		StdDev: s.StdDev(),
		CI95:   s.CI(),
		Min:    s.Min(),
		Max:    s.Max(),
	}
}

// tTable95 holds two-sided 95% critical values of Student's t distribution
// for small degrees of freedom; beyond the table we use the normal 1.96.
var tTable95 = [...]float64{
	// df: 1 .. 30
	12.706, 4.303, 3.182, 2.776, 2.571, 2.447, 2.365, 2.306, 2.262, 2.228,
	2.201, 2.179, 2.160, 2.145, 2.131, 2.120, 2.110, 2.101, 2.093, 2.086,
	2.080, 2.074, 2.069, 2.064, 2.060, 2.056, 2.052, 2.048, 2.045, 2.042,
}

// tCritical95 returns the two-sided 95% t critical value for the given
// degrees of freedom.
func tCritical95(df int) float64 {
	switch {
	case df <= 0:
		return math.NaN()
	case df <= len(tTable95):
		return tTable95[df-1]
	case df <= 40:
		return 2.021
	case df <= 60:
		return 2.000
	case df <= 120:
		return 1.980
	default:
		return 1.960
	}
}

// WelchResult reports a two-sample Welch's t-test.
type WelchResult struct {
	// T is the t-statistic for the difference of means.
	T float64
	// DF is the Welch-Satterthwaite degrees of freedom (rounded down).
	DF int
	// Critical is the two-sided 95% t critical value at DF.
	Critical float64
	// Significant reports |T| > Critical: the means differ at the 95%
	// level.
	Significant bool
}

// WelchT compares the means of two independent samples with unequal
// variances (Welch's t-test) at the 95% level. Protocol-comparison
// experiments use it to state whether an observed gap (e.g. ALERT's hops
// versus GPSR's) is statistically meaningful across seeds.
func WelchT(a, b *Sample) WelchResult {
	na, nb := float64(a.N()), float64(b.N())
	if na < 2 || nb < 2 {
		return WelchResult{T: math.NaN()}
	}
	va, vb := a.Var()/na, b.Var()/nb
	se := math.Sqrt(va + vb)
	if se == 0 { //lint:allowfloatcompare exact zero detects the degenerate identical-constants case; any real variance gives se > 0
		// Identical constants: no evidence of a difference unless the
		// means actually differ (then the difference is exact).
		if a.Mean() == b.Mean() { //lint:allowfloatcompare with zero variance every sample equals the mean, so equality here is exact, not approximate
			return WelchResult{T: 0, DF: int(na + nb - 2), Critical: tCritical95(int(na + nb - 2))}
		}
		return WelchResult{T: math.Inf(1), DF: int(na + nb - 2),
			Critical: tCritical95(int(na + nb - 2)), Significant: true}
	}
	t := (a.Mean() - b.Mean()) / se
	// Welch-Satterthwaite degrees of freedom.
	df := (va + vb) * (va + vb) / (va*va/(na-1) + vb*vb/(nb-1))
	idf := int(math.Floor(df))
	if idf < 1 {
		idf = 1
	}
	crit := tCritical95(idf)
	return WelchResult{T: t, DF: idf, Critical: crit,
		Significant: math.Abs(t) > crit}
}

package stats

import (
	"math"
	"testing"
	"testing/quick"
)

func close(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

func TestEmptySample(t *testing.T) {
	var s Sample
	if s.N() != 0 || s.Mean() != 0 || s.Var() != 0 || s.StdDev() != 0 ||
		s.StdErr() != 0 || s.CI() != 0 || s.Min() != 0 || s.Max() != 0 ||
		s.Quantile(0.5) != 0 {
		t.Fatal("empty sample should report zeros")
	}
}

func TestMeanVar(t *testing.T) {
	var s Sample
	s.AddAll(2, 4, 4, 4, 5, 5, 7, 9)
	if !close(s.Mean(), 5, 1e-12) {
		t.Fatalf("mean = %v", s.Mean())
	}
	// population variance is 4; sample variance = 32/7
	if !close(s.Var(), 32.0/7.0, 1e-12) {
		t.Fatalf("var = %v", s.Var())
	}
	if !close(s.StdDev(), math.Sqrt(32.0/7.0), 1e-12) {
		t.Fatalf("stddev = %v", s.StdDev())
	}
}

func TestMinMax(t *testing.T) {
	var s Sample
	s.AddAll(3, -1, 7, 2)
	if s.Min() != -1 || s.Max() != 7 {
		t.Fatalf("min/max = %v/%v", s.Min(), s.Max())
	}
}

func TestSingleObservation(t *testing.T) {
	var s Sample
	s.Add(42)
	if s.Mean() != 42 || s.Var() != 0 || s.CI() != 0 {
		t.Fatal("single observation stats wrong")
	}
}

func TestQuantile(t *testing.T) {
	var s Sample
	s.AddAll(1, 2, 3, 4, 5)
	if s.Quantile(0) != 1 || s.Quantile(1) != 5 {
		t.Fatal("extreme quantiles wrong")
	}
	if !close(s.Quantile(0.5), 3, 1e-12) {
		t.Fatalf("median = %v", s.Quantile(0.5))
	}
	if !close(s.Quantile(0.25), 2, 1e-12) {
		t.Fatalf("q25 = %v", s.Quantile(0.25))
	}
	// Quantile must not mutate the sample order semantics.
	if s.Values()[0] != 1 {
		t.Fatal("Quantile mutated sample")
	}
}

func TestQuantileInterpolates(t *testing.T) {
	var s Sample
	s.AddAll(0, 10)
	if !close(s.Quantile(0.3), 3, 1e-12) {
		t.Fatalf("interpolated quantile = %v", s.Quantile(0.3))
	}
}

func TestCI30Runs(t *testing.T) {
	// 30 runs (df=29) is the paper's configuration: t = 2.045.
	var s Sample
	for i := 0; i < 30; i++ {
		s.Add(float64(i % 2)) // alternating 0/1
	}
	wantSE := s.StdDev() / math.Sqrt(30)
	if !close(s.CI(), 2.045*wantSE, 1e-9) {
		t.Fatalf("CI = %v, want %v", s.CI(), 2.045*wantSE)
	}
}

func TestTCritical(t *testing.T) {
	if !close(tCritical95(1), 12.706, 1e-9) {
		t.Fatal("df=1 wrong")
	}
	if !close(tCritical95(29), 2.045, 1e-9) {
		t.Fatal("df=29 wrong")
	}
	if !close(tCritical95(30), 2.042, 1e-9) {
		t.Fatal("df=30 wrong")
	}
	if !close(tCritical95(35), 2.021, 1e-9) {
		t.Fatal("df=35 wrong")
	}
	if !close(tCritical95(50), 2.000, 1e-9) {
		t.Fatal("df=50 wrong")
	}
	if !close(tCritical95(100), 1.980, 1e-9) {
		t.Fatal("df=100 wrong")
	}
	if !close(tCritical95(10000), 1.960, 1e-9) {
		t.Fatal("large df wrong")
	}
	if !math.IsNaN(tCritical95(0)) {
		t.Fatal("df=0 should be NaN")
	}
}

func TestSummarize(t *testing.T) {
	var s Sample
	s.AddAll(1, 2, 3)
	sum := s.Summarize()
	if sum.N != 3 || !close(sum.Mean, 2, 1e-12) || sum.Min != 1 || sum.Max != 3 {
		t.Fatalf("summary = %+v", sum)
	}
	if !close(sum.StdDev, 1, 1e-12) {
		t.Fatalf("summary stddev = %v", sum.StdDev)
	}
}

func TestValuesIsCopy(t *testing.T) {
	var s Sample
	s.AddAll(1, 2, 3)
	v := s.Values()
	v[0] = 99
	if s.Values()[0] != 1 {
		t.Fatal("Values leaked internal slice")
	}
}

// Property: variance is non-negative and mean lies within [min, max].
func TestQuickSampleInvariants(t *testing.T) {
	f := func(raw []int16) bool {
		if len(raw) == 0 {
			return true
		}
		var s Sample
		for _, r := range raw {
			s.Add(float64(r))
		}
		if s.Var() < 0 {
			return false
		}
		m := s.Mean()
		return m >= s.Min()-1e-9 && m <= s.Max()+1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: adding a constant shifts the mean by that constant and leaves
// the standard deviation unchanged.
func TestQuickShiftInvariance(t *testing.T) {
	f := func(raw []int8, shift int8) bool {
		if len(raw) < 2 {
			return true
		}
		var a, b Sample
		for _, r := range raw {
			a.Add(float64(r))
			b.Add(float64(r) + float64(shift))
		}
		return close(b.Mean(), a.Mean()+float64(shift), 1e-9) &&
			close(a.StdDev(), b.StdDev(), 1e-9)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: quantiles are monotone in q.
func TestQuickQuantileMonotone(t *testing.T) {
	f := func(raw []int16, q1, q2 uint8) bool {
		if len(raw) == 0 {
			return true
		}
		var s Sample
		for _, r := range raw {
			s.Add(float64(r))
		}
		a := float64(q1) / 255
		b := float64(q2) / 255
		if a > b {
			a, b = b, a
		}
		return s.Quantile(a) <= s.Quantile(b)+1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestWelchTClearDifference(t *testing.T) {
	var a, b Sample
	for i := 0; i < 10; i++ {
		a.Add(10 + float64(i%3)*0.1)
		b.Add(20 + float64(i%3)*0.1)
	}
	r := WelchT(&a, &b)
	if !r.Significant {
		t.Fatalf("obvious difference not significant: %+v", r)
	}
	if r.T >= 0 {
		t.Fatalf("sign wrong: a < b should give negative T, got %v", r.T)
	}
}

func TestWelchTNoDifference(t *testing.T) {
	var a, b Sample
	vals := []float64{4.9, 5.1, 5.0, 4.8, 5.2, 5.0, 4.95, 5.05}
	for i, v := range vals {
		if i%2 == 0 {
			a.Add(v)
		} else {
			b.Add(v)
		}
	}
	r := WelchT(&a, &b)
	if r.Significant {
		t.Fatalf("same-distribution samples flagged significant: %+v", r)
	}
}

func TestWelchTEdgeCases(t *testing.T) {
	var a, b Sample
	a.Add(1)
	b.AddAll(1, 2, 3)
	if r := WelchT(&a, &b); !math.IsNaN(r.T) {
		t.Fatal("n<2 should yield NaN")
	}
	// Identical constants: zero variance, equal means.
	var c, d Sample
	c.AddAll(5, 5, 5)
	d.AddAll(5, 5, 5)
	if r := WelchT(&c, &d); r.Significant || r.T != 0 {
		t.Fatalf("identical constants: %+v", r)
	}
	// Zero variance, different means: exactly different.
	var e, f Sample
	e.AddAll(5, 5, 5)
	f.AddAll(6, 6, 6)
	if r := WelchT(&e, &f); !r.Significant {
		t.Fatal("constant-but-different samples should be significant")
	}
}

func TestWelchTSymmetry(t *testing.T) {
	var a, b Sample
	a.AddAll(1, 2, 3, 4, 5)
	b.AddAll(2, 3, 4, 5, 6)
	r1 := WelchT(&a, &b)
	r2 := WelchT(&b, &a)
	if !close(r1.T, -r2.T, 1e-12) || r1.DF != r2.DF || r1.Significant != r2.Significant {
		t.Fatalf("asymmetric: %+v vs %+v", r1, r2)
	}
}

// The content-addressed result cache: one JSON file per cell keyed by its
// content hash, shared across campaigns. Where the store is a campaign's
// ordered transcript, the cache is a global memo — a figure re-run with a
// different cell mix, or a fresh campaign directory, still skips every
// cell any previous run has executed. Corrupt or missing entries are
// simply misses; writes are atomic (tmp + rename) so a killed run can
// never leave a poisoned entry.

package campaign

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
)

// Cache is a content-addressed on-disk result cache.
type Cache struct {
	dir string
}

// OpenCache opens (creating if needed) a cache directory.
func OpenCache(dir string) (*Cache, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("campaign: create cache dir: %w", err)
	}
	return &Cache{dir: dir}, nil
}

// path shards entries by the first hash byte to keep directories small.
func (c *Cache) path(key string) string {
	shard := "xx"
	if len(key) >= 2 {
		shard = key[:2]
	}
	return filepath.Join(c.dir, shard, key+".json")
}

// Get returns the cached record for a cell key, or nil on any miss —
// including a corrupt or mismatched entry, which execution then repairs.
func (c *Cache) Get(key string) *Record {
	data, err := os.ReadFile(c.path(key))
	if err != nil {
		return nil
	}
	var rec Record
	if err := json.Unmarshal(data, &rec); err != nil || rec.Key != key {
		return nil
	}
	return &rec
}

// Put stores a record under its cell key, atomically.
func (c *Cache) Put(rec *Record) error {
	path := c.path(rec.Key)
	if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
		return fmt.Errorf("campaign: create cache shard: %w", err)
	}
	data, err := json.Marshal(rec)
	if err != nil {
		return fmt.Errorf("campaign: encode cache entry: %w", err)
	}
	tmp := path + ".tmp"
	if err := os.WriteFile(tmp, append(data, '\n'), 0o644); err != nil {
		return fmt.Errorf("campaign: write cache entry: %w", err)
	}
	if err := os.Rename(tmp, path); err != nil {
		return fmt.Errorf("campaign: commit cache entry: %w", err)
	}
	return nil
}

// Package campaign is the sweep engine that runs the paper's whole
// evaluation as one resumable, cache-deduplicated campaign. A campaign is a
// set of cells — each a fully specified (Scenario, seed) simulation run or
// a mobility-only remaining-nodes sample — identified by a content hash of
// its configuration (experiment.Scenario.Hash / RemainingSpec.Hash). The
// Engine executes cells across a bounded worker pool, streams each
// finished result to an append-only JSONL store in deterministic order,
// and deduplicates against an in-memory memo, the store, and an optional
// content-addressed cache, so re-runs, cross-figure duplicate cells, and
// resumed campaigns only execute what is missing.
package campaign

import (
	"fmt"

	"alertmanet/internal/experiment"
)

// Kind discriminates the two cell shapes.
type Kind string

// The cell kinds.
const (
	// KindRun is a full simulation run of one Scenario at its seed.
	KindRun Kind = "run"
	// KindRemaining is a mobility-only destination-zone sample
	// (experiment.RunRemaining).
	KindRemaining Kind = "remaining"
)

// Cell is one unit of campaign work. Exactly one of Run/Rem is meaningful,
// selected by Kind.
type Cell struct {
	Kind Kind
	Run  experiment.Scenario
	Rem  experiment.RemainingSpec
}

// RunCell wraps a scenario (which carries its own Seed) as a cell.
func RunCell(sc experiment.Scenario) Cell { return Cell{Kind: KindRun, Run: sc} }

// RemainingCell wraps a mobility-only spec as a cell.
func RemainingCell(spec experiment.RemainingSpec) Cell {
	return Cell{Kind: KindRemaining, Rem: spec}
}

// Key returns the cell's content-addressed identity: the hex SHA-256 of its
// full configuration including the seed. Identical cells requested by
// different figures — or by a resumed campaign — collide here, which is
// what makes deduplication and resume free.
func (c Cell) Key() string {
	if c.Kind == KindRun {
		return c.Run.Hash()
	}
	return c.Rem.Hash()
}

// Seed returns the cell's random seed.
func (c Cell) Seed() int64 {
	if c.Kind == KindRun {
		return c.Run.Seed
	}
	return c.Rem.Seed
}

// Label renders the cell for progress lines and error messages.
func (c Cell) Label() string {
	if c.Kind == KindRun {
		return fmt.Sprintf("run %s N=%d v=%g seed=%d",
			c.Run.Protocol, c.Run.N, c.Run.Speed, c.Run.Seed)
	}
	return fmt.Sprintf("remaining N=%d H=%d v=%g seed=%d",
		c.Rem.N, c.Rem.H, c.Rem.Speed, c.Rem.Seed)
}

// Execute runs the cell to completion and returns its storable record — the
// surface remote campaign workers (internal/campaign/server) execute claimed
// cells through. The arena (may be nil) supplies recycled simulation
// substrate and must not be shared with a concurrent Execute.
func (c Cell) Execute(arena *experiment.Arena) (*Record, error) {
	return c.execute(c.Key(), arena)
}

// execute runs the cell and wraps its outcome as a storable record. The
// arena (may be nil) supplies recycled simulation substrate; it belongs to
// the calling worker and must not be shared with a concurrent execute.
func (c Cell) execute(key string, arena *experiment.Arena) (*Record, error) {
	switch c.Kind {
	case KindRun:
		res, err := experiment.RunArena(c.Run, arena)
		if err != nil {
			return nil, err
		}
		rj := encodeResult(res)
		return &Record{
			Key: key, Kind: KindRun, Seed: c.Run.Seed,
			Protocol: string(c.Run.Protocol), Result: &rj,
		}, nil
	case KindRemaining:
		res, err := experiment.RunRemaining(c.Rem)
		if err != nil {
			return nil, err
		}
		return &Record{
			Key: key, Kind: KindRemaining, Seed: c.Rem.Seed, Remaining: &res,
		}, nil
	default:
		return nil, fmt.Errorf("campaign: unknown cell kind %q", c.Kind)
	}
}

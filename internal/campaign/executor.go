// The execution seam between the engine's bookkeeping (dedup, memo,
// store-order flush) and whatever actually runs the cells a batch could not
// resolve from memo, store, or cache. LocalExecutor is the in-process worker
// pool the engine has always had; internal/campaign/server's Queue implements
// the same interface over leased HTTP claims so remote workers can execute
// the cells instead. Because cells are content-addressed and execution is
// deterministic, the engine cannot tell the difference — the store it writes
// is byte-identical either way.

package campaign

import (
	"context"
	"runtime"
	"sync"
	"time"

	"alertmanet/internal/experiment"
)

// Outcome is one executed cell's report back to the engine. Exactly one of
// Rec/Err is set.
type Outcome struct {
	// Key is the cell's content hash — how the engine matches the outcome
	// back to its batch entry.
	Key string
	// Rec is the executed record on success.
	Rec *Record
	// Attempts is how many execution attempts the cell took.
	Attempts int
	// Seconds is the execution wall time (reporting only).
	Seconds float64
	// Err is set when the cell exhausted its attempts (or was cancelled).
	Err error
}

// Executor executes the cells an engine batch could not resolve from memo,
// store, or cache. Implementations must call report exactly once per input
// cell — from any goroutine, in any order — and return only after every
// report call has completed. A cancelled context must still report every
// unexecuted cell (with ctx's error) and then return ctx.Err().
type Executor interface {
	ExecuteCells(ctx context.Context, cells []Cell, report func(Outcome)) error
}

// LocalExecutor runs cells in-process across a bounded worker pool with
// per-cell retries — the engine's default when no Executor is wired.
type LocalExecutor struct {
	// Jobs bounds the worker pool; 0 means GOMAXPROCS.
	Jobs int
	// Retries is the maximum number of execution attempts per cell; 0
	// means 1 (no retry).
	Retries int
}

// ExecuteCells implements Executor. Each worker recycles its simulation
// substrate (engine event storage, packet-record slab) across the cells it
// executes; the arena is strictly worker-local.
func (l *LocalExecutor) ExecuteCells(ctx context.Context, cells []Cell, report func(Outcome)) error {
	jobs := l.Jobs
	if jobs <= 0 {
		jobs = runtime.GOMAXPROCS(0)
	}
	if jobs > len(cells) {
		jobs = len(cells)
	}
	attempts := l.Retries
	if attempts < 1 {
		attempts = 1
	}

	next := make(chan Cell)
	var wg sync.WaitGroup
	for w := 0; w < jobs; w++ {
		wg.Add(1)
		//lint:allowsharedstate campaign worker: the arena (engine + record slab) is created inside the goroutine and never crosses it; results leave only through the report callback, which the engine serializes under its own lock
		go func() {
			defer wg.Done()
			arena := experiment.NewArena()
			for c := range next {
				if err := ctx.Err(); err != nil {
					report(Outcome{Key: c.Key(), Err: err})
					continue
				}
				report(executeCell(c, attempts, arena))
			}
		}()
	}
	for _, c := range cells {
		// Stop handing out new cells once cancelled; in-flight cells
		// finish and are reported.
		if err := ctx.Err(); err != nil {
			report(Outcome{Key: c.Key(), Err: err})
			continue
		}
		//lint:allowsharedstate work-distribution hand-off: the cell is owned by exactly one worker from this send until its report call, after which only the engine reads the outcome
		next <- c
	}
	close(next)
	wg.Wait()
	return ctx.Err()
}

// executeCell runs a single cell with retries. The arena (may be nil)
// recycles simulation substrate across the calling worker's cells.
func executeCell(c Cell, attempts int, arena *experiment.Arena) Outcome {
	//lint:allowwallclock per-cell wall time feeds progress display and throughput reporting only
	start := time.Now()
	key := c.Key()
	o := Outcome{Key: key}
	var rec *Record
	var err error
	for o.Attempts = 1; o.Attempts <= attempts; o.Attempts++ {
		rec, err = c.execute(key, arena)
		if err == nil {
			break
		}
	}
	if o.Attempts > attempts {
		o.Attempts = attempts
	}
	//lint:allowwallclock per-cell wall time feeds progress display and throughput reporting only
	o.Seconds = time.Since(start).Seconds()
	if err != nil {
		o.Err = err
		return o
	}
	o.Rec = rec
	return o
}

package campaign

// The acceptance test for the campaign rewire: every figure rendered
// through the full Engine — worker pool, JSONL store, content-addressed
// cache — must reproduce the exact series digests captured from the
// pre-campaign figure code (internal/experiment/testdata/figures_golden.json,
// blessed there). A second engine then resolves everything from the cache
// alone and must match again: the JSON wire format is value-exact.

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"os"
	"testing"

	"alertmanet/internal/analysis"
	"alertmanet/internal/experiment"
)

const figuresGoldenPath = "../experiment/testdata/figures_golden.json"

// figureDigest mirrors the experiment package's seriesDigest rendering.
func figureDigest(series []analysis.Series) string {
	h := sha256.New()
	for _, s := range series {
		fmt.Fprintf(h, "%s|%v|%v|%v\n", s.Label, s.X, s.Y, s.Err)
	}
	return hex.EncodeToString(h.Sum(nil))
}

// engineFigures computes every figure's digest at the golden corpus's
// pinned capture parameters, through the given runner.
func engineFigures(t *testing.T, r experiment.Runner) map[string]string {
	t.Helper()
	got := map[string]string{}
	record := func(name string) func(s []analysis.Series, err error) {
		return func(s []analysis.Series, err error) {
			if err != nil {
				t.Fatalf("%s: %v", name, err)
			}
			got[name] = figureDigest(s)
		}
	}
	single := func(s analysis.Series, err error) ([]analysis.Series, error) {
		return []analysis.Series{s}, err
	}
	times := []float64{0, 5, 10}

	record("fig10a")(experiment.Fig10a(r, 5, 2))
	record("fig10b")(experiment.Fig10b(r, 5, 2))
	record("fig11")(single(experiment.Fig11(r, 3, 2)))
	record("fig12")(experiment.Fig12(r, times, 2))
	record("fig13a")(experiment.Fig13a(r, times, 2))
	record("fig13b")(single(experiment.Fig13b(r, 4, []float64{2, 4}, 2)))
	record("fig14a")(experiment.Fig14a(r, 2))
	record("fig14b")(experiment.Fig14b(r, 2))
	record("fig15a")(experiment.Fig15a(r, 2))
	record("fig15b")(experiment.Fig15b(r, 2))
	record("fig16a")(experiment.Fig16a(r, 2))
	record("fig16b")(experiment.Fig16b(r, 2))
	record("fig17")(experiment.Fig17(r, 2))
	record("energy")(experiment.EnergySummary(r, 2))

	comps, err := experiment.CompareProtocols(r,
		[]experiment.ProtocolName{experiment.ALERT, experiment.GPSR}, 3, 20)
	if err != nil {
		t.Fatalf("compare: %v", err)
	}
	h := sha256.New()
	for _, c := range comps {
		fmt.Fprintf(h, "%+v\n", c)
	}
	got["compare"] = hex.EncodeToString(h.Sum(nil))
	return got
}

// TestEngineFigureGoldenSeries: the full engine reproduces the pre-campaign
// figure output exactly, and a cache-only engine reproduces it again from
// the serialized records.
func TestEngineFigureGoldenSeries(t *testing.T) {
	if testing.Short() {
		t.Skip("runs the full figure suite twice")
	}
	data, err := os.ReadFile(figuresGoldenPath)
	if err != nil {
		t.Fatalf("read figure golden corpus (bless it in internal/experiment with -update): %v", err)
	}
	var want map[string]string
	if err := json.Unmarshal(data, &want); err != nil {
		t.Fatalf("parse %s: %v", figuresGoldenPath, err)
	}

	cache, err := OpenCache(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	store, err := OpenStore(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	defer store.Close()

	check := func(phase string, r experiment.Runner) {
		got := engineFigures(t, r)
		for name, w := range want {
			if got[name] != w {
				t.Errorf("%s/%s: digest %s, golden %s — engine changed figure output",
					phase, name, got[name], w)
			}
		}
	}
	hot := &Engine{Store: store, Cache: cache}
	check("engine", hot)
	if st := hot.Snapshot(); st.Executed == 0 {
		t.Fatal("engine pass should have executed cells")
	}

	cold := &Engine{Cache: cache}
	check("cache", cold)
	if st := cold.Snapshot(); st.Executed != 0 {
		t.Fatalf("cache pass should execute nothing, got %+v", st)
	}
}

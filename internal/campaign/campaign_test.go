package campaign

import (
	"context"
	"errors"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"

	"alertmanet/internal/experiment"
	"alertmanet/internal/sim"
)

// smallCells builds n cheap, distinct full-run cells.
func smallCells(n int) []experiment.Scenario {
	cells := make([]experiment.Scenario, n)
	for i := range cells {
		sc := experiment.DefaultScenario()
		sc.N = 50
		sc.Duration = 10
		sc.Pairs = 4
		sc.Seed = int64(i + 1)
		cells[i] = sc
	}
	return cells
}

// TestEngineMatchesDirect pins the engine's whole persistence stack to the
// direct path: the same cells through (a) DirectRunner, (b) a fresh engine
// with store+cache, and (c) a second engine resolving purely from that
// cache, must yield identical results — i.e. a Result survives the JSONL
// round trip bit-for-bit, +Inf included.
func TestEngineMatchesDirect(t *testing.T) {
	cells := smallCells(4)
	direct, err := experiment.DirectRunner{}.RunBatch(cells)
	if err != nil {
		t.Fatal(err)
	}

	cacheDir := t.TempDir()
	cache, err := OpenCache(cacheDir)
	if err != nil {
		t.Fatal(err)
	}
	store, err := OpenStore(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	defer store.Close()
	eng := &Engine{Store: store, Cache: cache}
	got, err := eng.RunBatch(cells)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(direct, got) {
		t.Fatalf("engine results differ from direct execution:\n%+v\nvs\n%+v", direct, got)
	}

	cold := &Engine{Cache: cache}
	fromCache, err := cold.RunBatch(cells)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(direct, fromCache) {
		t.Fatal("cache round trip changed results")
	}
	if st := cold.Snapshot(); st.Executed != 0 || st.CacheHits != len(cells) {
		t.Fatalf("cold engine should resolve all from cache, got %+v", st)
	}
}

// TestEngineDedupsBatch: duplicate cells in one batch execute once and every
// occurrence gets the same record.
func TestEngineDedupsBatch(t *testing.T) {
	cells := smallCells(2)
	batch := append(append([]experiment.Scenario{}, cells...), cells...)
	eng := &Engine{}
	results, err := eng.RunBatch(batch)
	if err != nil {
		t.Fatal(err)
	}
	if st := eng.Snapshot(); st.Executed != 2 {
		t.Fatalf("want 2 executions for duplicated batch, got %+v", st)
	}
	if !reflect.DeepEqual(results[:2], results[2:]) {
		t.Fatal("duplicate cells returned different results")
	}
	// Re-running the same batch hits the memo only.
	if _, err := eng.RunBatch(batch); err != nil {
		t.Fatal(err)
	}
	if st := eng.Snapshot(); st.Executed != 2 || st.MemoHits != 2 {
		t.Fatalf("re-run should be all memo hits, got %+v", st)
	}
}

// TestResumeByteIdentical is the campaign contract test: a run killed after
// K cells leaves a store prefix, and resuming executes only the missing
// cells while producing a results.jsonl byte-identical to a never-killed
// run of the same campaign.
func TestResumeByteIdentical(t *testing.T) {
	cells := smallCells(8)
	const kill = 3

	// Reference: one uninterrupted campaign.
	fullDir := t.TempDir()
	fullStore, err := OpenStore(fullDir)
	if err != nil {
		t.Fatal(err)
	}
	full := &Engine{Store: fullStore, Jobs: 2}
	if _, err := full.RunBatch(cells); err != nil {
		t.Fatal(err)
	}
	if err := fullStore.Close(); err != nil {
		t.Fatal(err)
	}

	// Killed campaign: cancel after the kill-th executed cell. In-flight
	// cells finish; unscheduled ones fail with context.Canceled, and the
	// store keeps only the contiguous finished prefix.
	resDir := t.TempDir()
	store1, err := OpenStore(resDir)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	killed := &Engine{Store: store1, Jobs: 2}
	killed.OnCell = func(ev CellEvent) {
		if ev.Source == "run" && ev.Err == nil && ev.Done >= kill {
			cancel()
		}
	}
	killed.WithContext(ctx)
	if _, err := killed.RunBatch(cells); !errors.Is(err, context.Canceled) {
		t.Fatalf("killed run: want context.Canceled, got %v", err)
	}
	if err := store1.Close(); err != nil {
		t.Fatal(err)
	}
	partial, err := os.ReadFile(filepath.Join(resDir, resultsFile))
	if err != nil {
		t.Fatal(err)
	}
	fullBytes, err := os.ReadFile(filepath.Join(fullDir, resultsFile))
	if err != nil {
		t.Fatal(err)
	}
	if len(partial) == 0 || len(partial) >= len(fullBytes) {
		t.Fatalf("killed store should hold a proper prefix: %d of %d bytes",
			len(partial), len(fullBytes))
	}
	if string(fullBytes[:len(partial)]) != string(partial) {
		t.Fatal("killed store is not a prefix of the full store")
	}

	// Resume: reopen the same directory, run the same campaign.
	store2, err := OpenStore(resDir)
	if err != nil {
		t.Fatal(err)
	}
	resumed := &Engine{Store: store2, Jobs: 2}
	res, err := resumed.RunBatch(cells)
	if err != nil {
		t.Fatal(err)
	}
	if err := store2.Close(); err != nil {
		t.Fatal(err)
	}
	st := resumed.Snapshot()
	if st.StoreHits != store1.Len() {
		t.Fatalf("resume should reuse all %d stored cells, got %+v", store1.Len(), st)
	}
	if st.Executed != len(cells)-store1.Len() {
		t.Fatalf("resume should execute only the %d missing cells, got %+v",
			len(cells)-store1.Len(), st)
	}
	merged, err := os.ReadFile(filepath.Join(resDir, resultsFile))
	if err != nil {
		t.Fatal(err)
	}
	if string(merged) != string(fullBytes) {
		t.Fatal("resumed store is not byte-identical to the uninterrupted run")
	}

	// And the resumed results equal a direct run.
	direct, err := experiment.DirectRunner{}.RunBatch(cells)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(direct, res) {
		t.Fatal("resumed results differ from direct execution")
	}
}

// TestResumeShardedByteIdentical repeats the kill/resume contract with the
// engine-level shard stamp active: a sharded campaign killed mid-run must
// resume to a results.jsonl byte-identical to an uninterrupted sharded run,
// and — by the sharded engine's determinism contract — every Result must
// equal the unsharded direct execution of the same cells. The stamp is part
// of cell identity, so sharded and unsharded campaigns never share cells.
func TestResumeShardedByteIdentical(t *testing.T) {
	cells := smallCells(6)
	const kill = 2

	unsharded, err := experiment.DirectRunner{}.RunBatch(cells)
	if err != nil {
		t.Fatal(err)
	}
	stamped := cells[0]
	stamped.Shards = 2
	if stamped.Hash() == cells[0].Hash() {
		t.Fatal("Shards must be part of the cell hash once stamped")
	}

	// Reference: one uninterrupted sharded campaign.
	fullDir := t.TempDir()
	fullStore, err := OpenStore(fullDir)
	if err != nil {
		t.Fatal(err)
	}
	full := &Engine{Store: fullStore, Jobs: 2, Shards: 2}
	fullRes, err := full.RunBatch(cells)
	if err != nil {
		t.Fatal(err)
	}
	if err := fullStore.Close(); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(unsharded, fullRes) {
		t.Fatal("sharded campaign results differ from unsharded direct execution")
	}

	// Kill a second sharded campaign after the kill-th executed cell.
	resDir := t.TempDir()
	store1, err := OpenStore(resDir)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	killed := &Engine{Store: store1, Jobs: 2, Shards: 2}
	killed.OnCell = func(ev CellEvent) {
		if ev.Source == "run" && ev.Err == nil && ev.Done >= kill {
			cancel()
		}
	}
	killed.WithContext(ctx)
	if _, err := killed.RunBatch(cells); !errors.Is(err, context.Canceled) {
		t.Fatalf("killed run: want context.Canceled, got %v", err)
	}
	if err := store1.Close(); err != nil {
		t.Fatal(err)
	}
	fullBytes, err := os.ReadFile(filepath.Join(fullDir, resultsFile))
	if err != nil {
		t.Fatal(err)
	}
	partial, err := os.ReadFile(filepath.Join(resDir, resultsFile))
	if err != nil {
		t.Fatal(err)
	}
	if len(partial) == 0 || len(partial) >= len(fullBytes) {
		t.Fatalf("killed store should hold a proper prefix: %d of %d bytes",
			len(partial), len(fullBytes))
	}
	if string(fullBytes[:len(partial)]) != string(partial) {
		t.Fatal("killed sharded store is not a prefix of the full store")
	}

	// Resume with the same shard stamp: only the suffix executes, and the
	// merged file is byte-identical to the uninterrupted sharded run.
	store2, err := OpenStore(resDir)
	if err != nil {
		t.Fatal(err)
	}
	resumed := &Engine{Store: store2, Jobs: 2, Shards: 2}
	res, err := resumed.RunBatch(cells)
	if err != nil {
		t.Fatal(err)
	}
	if err := store2.Close(); err != nil {
		t.Fatal(err)
	}
	st := resumed.Snapshot()
	if st.StoreHits != store1.Len() || st.Executed != len(cells)-store1.Len() {
		t.Fatalf("resume should reuse %d cells and execute the rest, got %+v",
			store1.Len(), st)
	}
	merged, err := os.ReadFile(filepath.Join(resDir, resultsFile))
	if err != nil {
		t.Fatal(err)
	}
	if string(merged) != string(fullBytes) {
		t.Fatal("resumed sharded store is not byte-identical to the uninterrupted run")
	}
	if !reflect.DeepEqual(fullRes, res) {
		t.Fatal("resumed sharded results differ from the uninterrupted run")
	}
}

// TestStoreRecoversTruncatedLine: a store whose file ends mid-record (the
// other way a kill can land) reopens cleanly, keeps every complete record,
// and appends from the cut point.
func TestStoreRecoversTruncatedLine(t *testing.T) {
	dir := t.TempDir()
	store, err := OpenStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	recs := []*Record{
		{Key: "k1", Kind: KindRemaining, Seed: 1, Remaining: &experiment.RemainingResult{Sums: []float64{1}, Count: 1}},
		{Key: "k2", Kind: KindRemaining, Seed: 2, Remaining: &experiment.RemainingResult{Sums: []float64{2}, Count: 1}},
	}
	for _, r := range recs {
		if err := store.Append(r); err != nil {
			t.Fatal(err)
		}
	}
	if err := store.Close(); err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(dir, resultsFile)
	clean, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	f, err := os.OpenFile(path, os.O_APPEND|os.O_WRONLY, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.WriteString(`{"key":"k3","kind":"rem`); err != nil {
		t.Fatal(err)
	}
	f.Close()

	reopened, err := OpenStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	if reopened.Len() != 2 {
		t.Fatalf("want 2 recovered records, got %d", reopened.Len())
	}
	third := &Record{Key: "k3", Kind: KindRemaining, Seed: 3, Remaining: &experiment.RemainingResult{Sums: []float64{3}, Count: 1}}
	if err := reopened.Append(third); err != nil {
		t.Fatal(err)
	}
	if err := reopened.Close(); err != nil {
		t.Fatal(err)
	}
	after, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(string(after), string(clean)) {
		t.Fatal("recovery clobbered the clean prefix")
	}
	if strings.Contains(string(after), `"kind":"rem{`) || strings.Count(string(after), "\n") != 3 {
		t.Fatalf("truncated tail not cleanly replaced:\n%s", after)
	}
}

// TestFailedCellReported: a cell that exhausts its event budget surfaces as
// a campaign error naming the cell, with the configured number of attempts,
// and blocks nothing before it in the store.
func TestFailedCellReported(t *testing.T) {
	cells := smallCells(2)
	cells[1].MaxEvents = 1 // guaranteed sim.ErrMaxEvents
	store, err := OpenStore(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	defer store.Close()
	var failed CellEvent
	eng := &Engine{Store: store, Retries: 2, Jobs: 1}
	eng.OnCell = func(ev CellEvent) {
		if ev.Err != nil {
			failed = ev
		}
	}
	_, err = eng.RunBatch(cells)
	if err == nil {
		t.Fatal("want error for exhausted event budget, got nil")
	}
	if !errors.Is(err, sim.ErrMaxEvents) {
		t.Fatalf("error should wrap sim.ErrMaxEvents, got %v", err)
	}
	if !strings.Contains(err.Error(), "2 attempts") {
		t.Fatalf("error should count attempts, got %v", err)
	}
	if failed.Attempts != 2 {
		t.Fatalf("failed cell event should report 2 attempts, got %+v", failed)
	}
	// The healthy cell before the failure still made it to the store.
	if store.Len() != 1 {
		t.Fatalf("want the 1 healthy preceding cell stored, got %d", store.Len())
	}
}

// TestEngineMaxEventsStamped: the engine-level budget is part of cell
// identity (stamped before keying), so it both aborts runaway cells and
// keeps keys stable between plan and execution.
func TestEngineMaxEventsStamped(t *testing.T) {
	cells := smallCells(1)
	eng := &Engine{MaxEvents: 1}
	if _, err := eng.RunBatch(cells); !errors.Is(err, sim.ErrMaxEvents) {
		t.Fatalf("engine MaxEvents should bound the run, got %v", err)
	}
	// A cell's own budget wins over the engine default.
	cells[0].MaxEvents = 1 << 40
	if _, err := eng.RunBatch(cells); err != nil {
		t.Fatalf("cell-level budget should override engine default: %v", err)
	}
}

// The campaign engine: an experiment.Runner that resolves each requested
// cell from the cheapest source that has it — in-memory memo, the
// campaign's own store, the shared content-addressed cache — and executes
// only what is left, across a bounded worker pool with per-cell retries.
// Executed and cache-resolved results are appended to the store strictly
// in request order through a reorder cursor, so the results.jsonl a
// campaign produces is a deterministic function of its cell list: a run
// killed partway leaves a prefix, and resuming appends exactly the missing
// suffix, byte-identical to a never-interrupted run.

package campaign

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"sync"
	"time"

	"alertmanet/internal/experiment"
)

// Stats counts where a campaign's cells were resolved from.
type Stats struct {
	// Cells is the number of distinct cells resolved.
	Cells int
	// Executed cells actually ran a simulation.
	Executed int
	// MemoHits were already resolved earlier in this process.
	MemoHits int
	// StoreHits were found in this campaign's own store (resume).
	StoreHits int
	// CacheHits came from the shared content-addressed cache.
	CacheHits int
	// Failed cells exhausted their retries.
	Failed int
}

// CellEvent reports one cell's resolution to the progress callback.
type CellEvent struct {
	// Done is the cumulative number of distinct cells resolved so far and
	// Total the expected campaign size (0 when not announced via Expect).
	Done  int
	Total int
	// Label and Key identify the cell.
	Label string
	Key   string
	// Source is where the result came from: "run", "memo", "store", or
	// "cache".
	Source string
	// Attempts is how many executions the cell took (0 unless Source is
	// "run").
	Attempts int
	// Seconds is the execution wall time (0 unless Source is "run").
	Seconds float64
	// Err is non-nil when the cell exhausted its retries.
	Err error
}

// Engine executes campaign cells. The zero value runs cells directly with
// no persistence; wiring Store and Cache adds resume and cross-campaign
// deduplication. Engine implements experiment.Runner, so every figure in
// the registry renders through it unchanged.
type Engine struct {
	// Name labels the campaign in its manifest.
	Name string
	// Jobs bounds the worker pool; 0 means GOMAXPROCS.
	Jobs int
	// Retries is the maximum number of execution attempts per cell; 0
	// means 1 (no retry).
	Retries int
	// MaxEvents, when non-zero, is stamped onto every run cell that does
	// not set its own — the per-cell runaway guard (the simulator aborts a
	// run whose event count exceeds it). Stamping happens before keying,
	// so the bound is part of the cell's identity.
	MaxEvents uint64
	// Shards, when non-zero, is stamped onto every run cell that does not
	// set its own: each simulation partitions its field into this many
	// event-engine shards (experiment.Scenario.Shards). Like MaxEvents it
	// is stamped before keying, so a sharded campaign and an unsharded one
	// occupy distinct cache cells even though their results are
	// byte-identical by the engine's determinism contract.
	Shards int
	// Store, when set, receives every resolved cell in request order.
	Store *Store
	// Cache, when set, memoizes results across campaigns.
	Cache *Cache
	// Exec, when set, executes the cells a batch could not resolve from
	// memo, store, or cache — the seam the distributed campaign server
	// plugs remote workers into. Nil means a LocalExecutor built from
	// Jobs and Retries.
	Exec Executor
	// OnCell, when set, observes each cell resolution.
	OnCell func(CellEvent)

	ctx     context.Context
	mu      sync.Mutex
	memo    map[string]*Record
	stats   Stats
	total   int
	started time.Time
}

// WithContext arranges for the engine to stop scheduling new cells when
// ctx is cancelled; already-running cells finish and are stored.
func (e *Engine) WithContext(ctx context.Context) *Engine {
	e.ctx = ctx
	return e
}

// Expect announces the campaign's planned cell count for progress events.
func (e *Engine) Expect(total int) {
	e.mu.Lock()
	defer e.mu.Unlock()
	e.total = total
}

// Stats returns a snapshot of the engine's resolution counters.
func (e *Engine) Snapshot() Stats {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.stats
}

// RunBatch implements experiment.Runner for full simulation cells.
func (e *Engine) RunBatch(cells []experiment.Scenario) ([]experiment.Result, error) {
	wrapped := make([]Cell, len(cells))
	for i, sc := range cells {
		if e.MaxEvents != 0 && sc.MaxEvents == 0 {
			sc.MaxEvents = e.MaxEvents
		}
		if e.Shards != 0 && sc.Shards == 0 {
			sc.Shards = e.Shards
		}
		wrapped[i] = RunCell(sc)
	}
	recs, err := e.resolve(wrapped)
	if err != nil {
		return nil, err
	}
	results := make([]experiment.Result, len(recs))
	for i, rec := range recs {
		if rec.Result == nil {
			return nil, fmt.Errorf("campaign: record %.12s is not a run result", rec.Key)
		}
		results[i] = rec.Result.decode()
	}
	return results, nil
}

// RemainingBatch implements experiment.Runner for mobility-only cells.
func (e *Engine) RemainingBatch(cells []experiment.RemainingSpec) ([]experiment.RemainingResult, error) {
	wrapped := make([]Cell, len(cells))
	for i, spec := range cells {
		wrapped[i] = RemainingCell(spec)
	}
	recs, err := e.resolve(wrapped)
	if err != nil {
		return nil, err
	}
	results := make([]experiment.RemainingResult, len(recs))
	for i, rec := range recs {
		if rec.Remaining == nil {
			return nil, fmt.Errorf("campaign: record %.12s is not a remaining result", rec.Key)
		}
		results[i] = *rec.Remaining
	}
	return results, nil
}

// pending is one distinct cell's resolution state within a batch.
type pending struct {
	cell       Cell
	key        string
	rec        *Record
	err        error
	source     string
	attempts   int
	seconds    float64
	needsExec  bool
	needsStore bool
	done       bool
}

// resolve deduplicates the batch, resolves each distinct cell from the
// cheapest available source, executes the remainder, and returns records
// aligned with the input cells. Store appends happen in first-occurrence
// order regardless of execution interleaving.
func (e *Engine) resolve(cells []Cell) ([]*Record, error) {
	if e.started.IsZero() {
		//lint:allowwallclock manifest provenance: campaign wall time is reporting, not simulation state
		e.started = time.Now()
	}

	// Deduplicate to distinct cells in first-occurrence order. The slice,
	// not the map, drives every later loop — map iteration order never
	// reaches results.
	seen := map[string]*pending{}
	var uniq []*pending
	for _, c := range cells {
		key := c.Key()
		if _, ok := seen[key]; ok {
			continue
		}
		p := &pending{cell: c, key: key}
		seen[key] = p
		uniq = append(uniq, p)
	}

	// Resolve from memo, store, and cache before touching the pool.
	e.mu.Lock()
	if e.memo == nil {
		e.memo = map[string]*Record{}
	}
	for _, p := range uniq {
		if rec, ok := e.memo[p.key]; ok {
			p.rec, p.source, p.done = rec, "memo", true
			continue
		}
		if e.Store != nil {
			if rec, ok := e.Store.Get(p.key); ok {
				p.rec, p.source, p.done = rec, "store", true
				e.memo[p.key] = rec
				continue
			}
		}
		if e.Cache != nil {
			if rec := e.Cache.Get(p.key); rec != nil {
				p.rec, p.source, p.done = rec, "cache", true
				p.needsStore = true
				e.memo[p.key] = rec
				continue
			}
		}
		p.needsExec = true
		p.needsStore = true
	}
	e.mu.Unlock()

	// Report hits now; executed cells report live from the workers.
	var toRun []*pending
	for _, p := range uniq {
		if p.needsExec {
			toRun = append(toRun, p)
		} else {
			e.note(p)
		}
	}

	// Execute what is left. The flush below appends resolved cells to the
	// store in uniq order: a cell is written only once every earlier
	// store-bound cell is done, so a kill leaves an order-exact prefix. A
	// failed (or skipped) cell blocks the flush from there on — later
	// successes reach only the cache, and a resumed campaign re-resolves
	// them from it.
	var execErr error
	if len(toRun) > 0 {
		execErr = e.executeAll(toRun)
	}

	// Flush store appends and join errors in deterministic uniq order.
	var errs []error
	e.mu.Lock()
	blocked := false
	for _, p := range uniq {
		if p.err != nil {
			errs = append(errs, fmt.Errorf("cell %s (key %.12s, %d attempts): %w",
				p.cell.Label(), p.key, p.attempts, p.err))
			blocked = true
		}
		if p.done && p.rec != nil {
			e.memo[p.key] = p.rec
			if p.needsStore && e.Store != nil && !blocked {
				if err := e.Store.Append(p.rec); err != nil {
					errs = append(errs, err)
					blocked = true
				}
			}
		}
	}
	e.mu.Unlock()

	if e.Store != nil {
		if err := e.writeManifest(); err != nil {
			errs = append(errs, err)
		}
	}
	if execErr != nil || len(errs) > 0 {
		return nil, errors.Join(errs...)
	}

	out := make([]*Record, len(cells))
	for i, c := range cells {
		out[i] = seen[c.Key()].rec
	}
	return out, nil
}

// executeAll hands the pending cells to the engine's Executor (the local
// worker pool unless a distributed one is wired) and folds each Outcome back
// into its pending entry, streaming successful results into the cache. It
// returns non-nil only for context cancellation; per-cell failures land in
// pending.err.
func (e *Engine) executeAll(toRun []*pending) error {
	ctx := e.ctx
	if ctx == nil {
		ctx = context.Background()
	}
	exec := e.Exec
	if exec == nil {
		exec = &LocalExecutor{Jobs: e.Jobs, Retries: e.Retries}
	}
	cells := make([]Cell, len(toRun))
	byKey := make(map[string]*pending, len(toRun))
	for i, p := range toRun {
		cells[i] = p.cell
		byKey[p.key] = p
	}
	// The report callback may run concurrently from executor workers; it
	// writes only its own pending entry, and e.note serializes the stats
	// and progress callback under the engine lock. The Executor contract
	// (one report per cell, all reports done before return) is what makes
	// the post-return flush safe.
	return exec.ExecuteCells(ctx, cells, func(o Outcome) {
		p := byKey[o.Key]
		if p == nil {
			// An outcome for a cell not in this batch (a buggy executor);
			// dropping it is the only safe move.
			return
		}
		p.attempts, p.seconds = o.Attempts, o.Seconds
		switch {
		case o.Err != nil:
			p.err = o.Err
		default:
			p.rec, p.source, p.done = o.Rec, "run", true
			if e.Cache != nil {
				if cerr := e.Cache.Put(o.Rec); cerr != nil {
					p.err = cerr
				}
			}
		}
		e.note(p)
	})
}

// note accounts one cell's resolution and fires the progress callback.
// The callback runs outside the engine lock, so it may call Snapshot or
// cancel the engine's context (how a test kills a campaign after K cells).
func (e *Engine) note(p *pending) {
	e.mu.Lock()
	e.stats.Cells++
	switch p.source {
	case "memo":
		e.stats.MemoHits++
	case "store":
		e.stats.StoreHits++
	case "cache":
		e.stats.CacheHits++
	case "run":
		e.stats.Executed++
	}
	if p.err != nil {
		e.stats.Failed++
	}
	ev := CellEvent{
		Done: e.stats.Cells, Total: e.total,
		Label: p.cell.Label(), Key: p.key, Source: p.source,
		Attempts: p.attempts, Seconds: p.seconds, Err: p.err,
	}
	cb := e.OnCell
	e.mu.Unlock()
	if cb != nil {
		cb(ev)
	}
}

// writeManifest refreshes the campaign manifest after a batch.
func (e *Engine) writeManifest() error {
	e.mu.Lock()
	stats := e.stats
	total := e.total
	started := e.started
	e.mu.Unlock()
	done := e.Store.Len()
	// Adaptive figures add cells beyond the announced plan; the manifest
	// total tracks what actually ran.
	if total < done {
		total = done
	}
	//lint:allowwallclock manifest provenance: campaign wall time is reporting, not simulation state
	wall := time.Since(started).Seconds()
	return e.Store.WriteManifest(Manifest{
		Name:         e.Name,
		CampaignHash: campaignHash(e.Store.Keys()),
		Cells:        total,
		Done:         done,
		Executed:     stats.Executed,
		CacheHits:    stats.CacheHits,
		StoreHits:    stats.StoreHits,
		MemoHits:     stats.MemoHits,
		GoVersion:    runtime.Version(),
		WallSeconds:  wall,
	})
}

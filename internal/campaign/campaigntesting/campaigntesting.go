// Package campaigntesting is the fault-injection seam for the distributed
// campaign: a scripted http.RoundTripper that drops, duplicates, and delays
// the work protocol's requests and responses at exact call boundaries, and a
// manually-advanced clock for expiring leases deterministically. Tests wire
// Transport into a Worker's HTTP client and Clock into a Queue's Now to
// replay the distributed failure matrix — dead workers, lost acks, retried
// submits — without real time or real packet loss.
package campaigntesting

import (
	"errors"
	"io"
	"net/http"
	"sync"
	"time"
)

// ErrDropped is what a dropped request or response surfaces as; the
// http.Client wraps it in a *url.Error, exactly like a refused connection.
var ErrDropped = errors.New("campaigntesting: dropped by fault script")

// Result is one scripted fault decision for one request.
type Result struct {
	// Drop discards the request before it is sent: the server never sees
	// it, the client gets a transport error.
	Drop bool
	// DropResponse sends the request and discards the response: the server
	// fully processes it, the client gets a transport error — the
	// signature of a worker whose ack was lost, forcing a retry the
	// protocol must absorb idempotently.
	DropResponse bool
	// Duplicate sends the request twice back-to-back and returns the
	// second response — a retransmitted submit arriving after the
	// original already landed.
	Duplicate bool
	// Before runs just before the request is sent (after Drop is applied);
	// After runs once the server has processed it. They are the kill and
	// reorder gates: block, cancel a context, advance a Clock.
	Before func()
	After  func()
}

// Transport is a scripted http.RoundTripper. Script sees every request with
// its 0-based call number and decides its fate; a nil Script (or zero
// Result) passes everything through untouched.
type Transport struct {
	// Base performs the real round trips; nil means http.DefaultTransport.
	Base http.RoundTripper
	// Script decides each call's fault. It runs serialized under the
	// transport's lock, so a script may keep plain state in its closure.
	Script func(n int, req *http.Request) Result

	mu    sync.Mutex
	calls int
}

func (t *Transport) base() http.RoundTripper {
	if t.Base != nil {
		return t.Base
	}
	return http.DefaultTransport
}

// Calls returns how many requests the script has judged so far.
func (t *Transport) Calls() int {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.calls
}

func (t *Transport) RoundTrip(req *http.Request) (*http.Response, error) {
	t.mu.Lock()
	n := t.calls
	t.calls++
	var res Result
	if t.Script != nil {
		res = t.Script(n, req)
	}
	t.mu.Unlock()

	if res.Drop {
		if res.After != nil {
			res.After()
		}
		return nil, ErrDropped
	}
	if res.Before != nil {
		res.Before()
	}
	resp, err := t.base().RoundTrip(req)
	if err != nil {
		return resp, err
	}
	if res.Duplicate && req.GetBody != nil {
		// Drain the first response, resend the same body, and hand the
		// caller the second answer — the path a retransmit takes.
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		body, berr := req.GetBody()
		if berr != nil {
			return nil, berr
		}
		again := req.Clone(req.Context())
		again.Body = body
		resp, err = t.base().RoundTrip(again)
		if err != nil {
			return resp, err
		}
	}
	if res.After != nil {
		res.After()
	}
	if res.DropResponse {
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		return nil, ErrDropped
	}
	return resp, nil
}

// Clock is a manually-advanced time source for Queue.Now: leases expire
// exactly when a test says so, never because a test machine was slow.
type Clock struct {
	mu  sync.Mutex
	now time.Time
}

// NewClock returns a clock frozen at start.
func NewClock(start time.Time) *Clock {
	return &Clock{now: start}
}

// Now returns the clock's current frozen instant.
func (c *Clock) Now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.now
}

// Advance moves the clock forward by d.
func (c *Clock) Advance(d time.Duration) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.now = c.now.Add(d)
}

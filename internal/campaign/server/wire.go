// The wire format of the campaign work protocol. Every payload is plain
// JSON over POST/GET; records travel in exactly the store's line format
// (campaign.Record, JFloat round-tripping non-finite floats), so a record a
// worker submits is bit-for-bit the record a single-process engine would
// have written.

package server

import (
	"alertmanet/internal/campaign"
)

// The protocol endpoints, all under one version prefix.
const (
	PathClaim  = "/v1/claim"
	PathSubmit = "/v1/submit"
	PathFail   = "/v1/fail"
	PathStatus = "/v1/status"
	PathExport = "/v1/export"
)

// ClaimRequest asks for up to Max cells to execute.
type ClaimRequest struct {
	Worker string `json:"worker"`
	Max    int    `json:"max"`
}

// WireCell is one leased cell: the full content-addressed cell plus its key
// so the worker can verify its own hash of the payload matches the lease.
type WireCell struct {
	Key  string        `json:"key"`
	Cell campaign.Cell `json:"cell"`
}

// ClaimResponse returns leased cells. Done means the campaign is complete
// and the worker should exit; an empty Cells with Done=false means poll
// again after PollMillis (0 = worker's default).
type ClaimResponse struct {
	Cells      []WireCell `json:"cells,omitempty"`
	Done       bool       `json:"done,omitempty"`
	PollMillis int        `json:"pollMillis,omitempty"`
}

// SubmitRequest delivers one executed record.
type SubmitRequest struct {
	Worker   string           `json:"worker"`
	Attempts int              `json:"attempts"`
	Seconds  float64          `json:"seconds"`
	Record   *campaign.Record `json:"record"`
}

// SubmitResponse acknowledges a submit with the queue's verdict.
type SubmitResponse struct {
	Status SubmitStatus `json:"status"`
}

// FailRequest reports a cell as unexecutable after the worker's retries.
type FailRequest struct {
	Worker   string `json:"worker"`
	Key      string `json:"key"`
	Attempts int    `json:"attempts"`
	Error    string `json:"error"`
}

// StatusResponse is the live campaign view for workers, dashboards, and
// `campaign status -server`.
type StatusResponse struct {
	// Name labels the campaign; Stored is the record count in the durable
	// store.
	Name   string `json:"name"`
	Stored int    `json:"stored"`
	// Pending and Leased describe the queue backlog; Done means the
	// driver finished every batch.
	Pending int  `json:"pending"`
	Leased  int  `json:"leased"`
	Done    bool `json:"done"`
	// Stats is the queue's traffic breakdown.
	Stats Stats `json:"stats"`
}

// Worker unit tests: deterministic backoff, the retry loop against flaky
// and hostile servers, wire-integrity rejection of corrupted leases, and a
// real claim→execute→submit round trip over HTTP.

package server

import (
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"alertmanet/internal/campaign"
)

func TestWorkerBackoffDeterministic(t *testing.T) {
	w := &Worker{}
	want := []time.Duration{
		50 * time.Millisecond, 100 * time.Millisecond, 200 * time.Millisecond,
		400 * time.Millisecond, 800 * time.Millisecond, 1600 * time.Millisecond,
		2 * time.Second, 2 * time.Second,
	}
	for n, d := range want {
		if got := w.backoff(n); got != d {
			t.Fatalf("backoff(%d): want %v, got %v", n, d, got)
		}
	}
	// Far past overflow territory the cap still holds.
	if got := w.backoff(200); got != 2*time.Second {
		t.Fatalf("backoff(200): want cap, got %v", got)
	}
	custom := &Worker{BackoffBase: 3 * time.Millisecond, BackoffMax: 10 * time.Millisecond}
	for n, d := range []time.Duration{3 * time.Millisecond, 6 * time.Millisecond, 10 * time.Millisecond, 10 * time.Millisecond} {
		if got := custom.backoff(n); got != d {
			t.Fatalf("custom backoff(%d): want %v, got %v", n, d, got)
		}
	}
}

func TestWorkerPostRetries5xx(t *testing.T) {
	var mu sync.Mutex
	hits := 0
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		mu.Lock()
		hits++
		n := hits
		mu.Unlock()
		if n <= 2 {
			http.Error(w, "warming up", http.StatusServiceUnavailable)
			return
		}
		json.NewEncoder(w).Encode(SubmitResponse{Status: StatusAccepted})
	}))
	defer ts.Close()

	var slept []time.Duration
	w := &Worker{BaseURL: ts.URL, Sleep: func(d time.Duration) { slept = append(slept, d) }}
	var resp SubmitResponse
	if err := w.post(context.Background(), PathSubmit, SubmitRequest{Worker: "w"}, &resp); err != nil {
		t.Fatal(err)
	}
	if resp.Status != StatusAccepted {
		t.Fatalf("status: %s", resp.Status)
	}
	if hits != 3 {
		t.Fatalf("requests: want 3, got %d", hits)
	}
	// The two retries slept exactly backoff(0) and backoff(1): no jitter,
	// no wall clock, fully reproducible.
	if len(slept) != 2 || slept[0] != w.backoff(0) || slept[1] != w.backoff(1) {
		t.Fatalf("backoff schedule: %v", slept)
	}
}

func TestWorkerPostTerminal4xx(t *testing.T) {
	hits := 0
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		hits++
		http.Error(w, "invalid record", http.StatusUnprocessableEntity)
	}))
	defer ts.Close()

	w := &Worker{BaseURL: ts.URL, Sleep: func(time.Duration) {}}
	err := w.post(context.Background(), PathSubmit, SubmitRequest{}, nil)
	if err == nil || !strings.Contains(err.Error(), "rejected 422") {
		t.Fatalf("want terminal rejection, got %v", err)
	}
	if hits != 1 {
		t.Fatalf("4xx must not retry: %d requests", hits)
	}
}

func TestWorkerPostExhaustsAttempts(t *testing.T) {
	hits := 0
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		hits++
		http.Error(w, "down", http.StatusInternalServerError)
	}))
	defer ts.Close()

	w := &Worker{BaseURL: ts.URL, HTTPAttempts: 3, Sleep: func(time.Duration) {}}
	err := w.post(context.Background(), PathClaim, ClaimRequest{Worker: "w"}, nil)
	if err == nil || !strings.Contains(err.Error(), "3 attempts exhausted") {
		t.Fatalf("want exhaustion, got %v", err)
	}
	if hits != 3 {
		t.Fatalf("requests: want 3, got %d", hits)
	}
}

// TestWorkerRejectsCorruptedLease: a lease whose key does not match the
// cell's recomputed hash must be failed back to the server, never executed.
func TestWorkerRejectsCorruptedLease(t *testing.T) {
	c := testCell(20)
	var mu sync.Mutex
	var failed *FailRequest
	claims := 0
	mux := http.NewServeMux()
	mux.HandleFunc("POST "+PathClaim, func(w http.ResponseWriter, r *http.Request) {
		mu.Lock()
		claims++
		first := claims == 1
		mu.Unlock()
		resp := ClaimResponse{Done: !first}
		if first {
			resp.Cells = []WireCell{{Key: "corrupted-in-flight", Cell: c}}
		}
		json.NewEncoder(w).Encode(resp)
	})
	mux.HandleFunc("POST "+PathFail, func(w http.ResponseWriter, r *http.Request) {
		var req FailRequest
		json.NewDecoder(r.Body).Decode(&req)
		mu.Lock()
		failed = &req
		mu.Unlock()
		json.NewEncoder(w).Encode(SubmitResponse{Status: StatusAccepted})
	})
	mux.HandleFunc("POST "+PathSubmit, func(w http.ResponseWriter, r *http.Request) {
		t.Error("corrupted lease must never be executed and submitted")
	})
	ts := httptest.NewServer(mux)
	defer ts.Close()

	w := &Worker{Name: "w", BaseURL: ts.URL, Sleep: func(time.Duration) {}}
	if err := w.Run(context.Background()); err != nil {
		t.Fatal(err)
	}
	if failed == nil || failed.Key != "corrupted-in-flight" || !strings.Contains(failed.Error, "key mismatch") {
		t.Fatalf("fail report: %+v", failed)
	}
}

// TestWorkerRoundTrip: a real queue, server, and worker resolve a small
// batch end to end; the records the engine receives are genuine executions.
func TestWorkerRoundTrip(t *testing.T) {
	q := &Queue{Lease: time.Minute}
	cells := []campaign.Cell{testCell(21), testCell(22), testCell(23)}
	outcomes, done := startBatch(t, q, context.Background(), cells)
	ts := httptest.NewServer((&Server{Queue: q, Name: "unit"}).Handler())
	defer ts.Close()

	var events []WorkerEvent
	var mu sync.Mutex
	w := &Worker{
		Name: "w1", BaseURL: ts.URL, Jobs: 2, Batch: 2,
		Poll: time.Millisecond, BackoffBase: time.Millisecond,
		OnCell: func(ev WorkerEvent) {
			mu.Lock()
			events = append(events, ev)
			mu.Unlock()
		},
	}
	werr := make(chan error, 1)
	go func() { werr <- w.Run(context.Background()) }()

	if err := <-done; err != nil {
		t.Fatal(err)
	}
	q.Finish()
	if err := <-werr; err != nil {
		t.Fatalf("worker: %v", err)
	}

	want := map[string]bool{}
	for _, c := range cells {
		want[c.Key()] = true
	}
	for range cells {
		o := <-outcomes
		if o.Err != nil {
			t.Fatalf("outcome %.12s: %v", o.Key, o.Err)
		}
		if !want[o.Key] {
			t.Fatalf("outcome for unrequested cell %.12s", o.Key)
		}
		delete(want, o.Key)
		if o.Rec == nil || o.Rec.Remaining == nil || o.Rec.Key != o.Key {
			t.Fatalf("outcome record: %+v", o.Rec)
		}
		if o.Attempts < 1 {
			t.Fatalf("outcome attempts: %d", o.Attempts)
		}
	}
	if len(want) != 0 {
		t.Fatalf("unresolved cells: %d", len(want))
	}
	mu.Lock()
	defer mu.Unlock()
	if len(events) != len(cells) {
		t.Fatalf("worker events: want %d, got %d", len(cells), len(events))
	}
	for _, ev := range events {
		if ev.Status != StatusAccepted {
			t.Fatalf("worker event: %+v", ev)
		}
	}
}

// Package server distributes the campaign engine across processes: a Queue
// implements campaign.Executor by leasing cells to remote workers over HTTP
// (Server is the transport facade, Worker the remote executor), with the
// campaign's JSONL store and shared cache staying the durable backend on the
// server side. Because cells are content-addressed and execution is
// deterministic, any worker that executes a cell produces the same record —
// so leases may expire and be re-claimed, submits may arrive twice or for
// long-gone batches, workers may die mid-cell, and the engine's store still
// comes out byte-identical to a single-process run.
package server

import (
	"context"
	"sync"
	"time"

	"alertmanet/internal/campaign"
)

// EventKind labels a Queue transition for the OnEvent observer.
type EventKind string

// The queue event kinds.
const (
	// EventClaim: a worker leased one or more cells.
	EventClaim EventKind = "claim"
	// EventSubmit: a worker's record resolved a pending cell.
	EventSubmit EventKind = "submit"
	// EventDuplicate: a submit for an already-resolved cell (idempotent).
	EventDuplicate EventKind = "duplicate"
	// EventUnknown: a submit for a cell the queue has never held.
	EventUnknown EventKind = "unknown"
	// EventExpire: a lease outlived its deadline and was reclaimed.
	EventExpire EventKind = "expire"
	// EventFail: a worker reported a cell as failed after its retries.
	EventFail EventKind = "fail"
	// EventFinish: the campaign driver marked the queue finished.
	EventFinish EventKind = "finish"
)

// Event reports one queue transition. Key is set for per-cell events, Keys
// for claims.
type Event struct {
	Kind   EventKind
	Worker string
	Key    string
	Keys   []string
}

// Stats counts queue traffic since construction.
type Stats struct {
	// Claims is the number of claim calls; Leased the cells handed out
	// (re-leases after expiry count again).
	Claims int `json:"claims"`
	Leased int `json:"leased"`
	// Completed cells were resolved by a worker submit; Duplicates were
	// idempotently-absorbed re-submits; Unknown were submits for cells the
	// queue never held (a worker outliving a cancelled batch).
	Completed  int `json:"completed"`
	Duplicates int `json:"duplicates"`
	Unknown    int `json:"unknown"`
	// Expired is the number of leases reclaimed after their deadline —
	// each one a worker presumed dead mid-cell.
	Expired int `json:"expired"`
	// Failed cells were reported unexecutable by a worker.
	Failed int `json:"failed"`
}

// item is one enqueued cell awaiting a worker.
type item struct {
	cell     campaign.Cell
	leased   bool
	worker   string
	deadline time.Time
	report   func(campaign.Outcome)
	batch    *batch
}

// batch tracks one ExecuteCells call's completion.
type batch struct {
	remaining int
	done      chan struct{}
	// reports counts in-flight report callbacks: a cancelled ExecuteCells
	// must wait them out before returning, or a submit racing the
	// cancellation would touch engine state after the engine moved on.
	reports sync.WaitGroup
}

// DefaultLease is the lease duration when Queue.Lease is zero.
const DefaultLease = 30 * time.Second

// Queue is a lease-based distributed work queue over campaign cells: the
// campaign.Executor the engine's unresolved cells flow into, and the pool
// claim/submit pull work out of. The zero value is ready to use.
type Queue struct {
	// Lease is how long a claimed cell stays assigned before it can be
	// reclaimed by another worker; 0 means DefaultLease. A lease that
	// expires is the queue presuming the worker dead mid-cell — the cell
	// returns to the pending pool, and a late submit from the original
	// worker is absorbed idempotently.
	Lease time.Duration
	// Now is the clock leases are measured against; nil means time.Now.
	// The fault-injection harness substitutes a fake clock here to expire
	// leases deterministically.
	Now func() time.Time
	// OnEvent, when set, observes queue transitions synchronously (outside
	// the queue lock, inside the triggering call) — the seam the fault
	// harness uses as kill and reorder points.
	OnEvent func(Event)

	mu        sync.Mutex
	items     map[string]*item
	order     []string // claim order: batch arrival, then cell order
	completed map[string]bool
	failed    map[string]bool
	seen      map[string]bool // workers that ever claimed
	acked     map[string]bool // workers whose claim was answered done=true
	finished  bool
	stats     Stats
}

func (q *Queue) now() time.Time {
	if q.Now != nil {
		return q.Now()
	}
	//lint:allowwallclock lease deadlines are operational work-distribution state, not simulated time; tests inject a fake clock
	return time.Now()
}

func (q *Queue) lease() time.Duration {
	if q.Lease > 0 {
		return q.Lease
	}
	return DefaultLease
}

func (q *Queue) fire(ev Event) {
	if q.OnEvent != nil {
		q.OnEvent(ev)
	}
}

// ExecuteCells implements campaign.Executor: it enqueues the batch for
// workers to claim and blocks until every cell is reported (by submit or
// fail) or ctx is cancelled, in which case unresolved cells report the
// cancellation and late submits become unknown-cell no-ops.
func (q *Queue) ExecuteCells(ctx context.Context, cells []campaign.Cell, report func(campaign.Outcome)) error {
	b := &batch{remaining: len(cells), done: make(chan struct{})}
	q.mu.Lock()
	if q.items == nil {
		q.items = map[string]*item{}
		q.completed = map[string]bool{}
		q.failed = map[string]bool{}
	}
	for _, c := range cells {
		key := c.Key()
		q.items[key] = &item{cell: c, report: report, batch: b}
		q.order = append(q.order, key)
	}
	q.mu.Unlock()

	select {
	case <-b.done:
		return nil
	case <-ctx.Done():
		// Tear the batch down: every unresolved cell reports the
		// cancellation (mirroring LocalExecutor's unscheduled cells), and
		// an in-flight worker's eventual submit finds no item — an
		// unknown-cell response it absorbs silently.
		q.mu.Lock()
		var orphans []*item
		// Walk the deterministic claim order, not the item map, so
		// cancellation events fire in a reproducible order.
		for _, key := range q.order {
			if it := q.items[key]; it != nil && it.batch == b {
				delete(q.items, key)
				orphans = append(orphans, it)
			}
		}
		q.mu.Unlock()
		// Every item of this batch is now out of the map: any submit still
		// running already registered its report; new submits will miss.
		// Wait the in-flight reports out, then report the orphans
		// ourselves — all report calls complete before we return.
		b.reports.Wait()
		for _, it := range orphans {
			it.report(campaign.Outcome{Key: it.cell.Key(), Err: ctx.Err()})
		}
		return ctx.Err()
	}
}

// Claim leases up to max pending cells to the named worker, reclaiming any
// expired leases first. It never blocks: an empty result with done=false
// means everything is leased elsewhere or the driver is between batches, and
// the worker should poll again; done=true means the campaign is finished and
// the worker can exit.
func (q *Queue) Claim(worker string, max int) (cells []campaign.Cell, done bool) {
	if max < 1 {
		max = 1
	}
	now := q.now()
	q.mu.Lock()
	q.stats.Claims++
	if q.seen == nil {
		q.seen = map[string]bool{}
		q.acked = map[string]bool{}
	}
	q.seen[worker] = true
	expired := q.reclaimLocked(now)
	deadline := now.Add(q.lease())
	var keys []string
	kept := q.order[:0]
	for _, key := range q.order {
		it := q.items[key]
		if it == nil {
			continue // resolved; compact the claim order as we walk it
		}
		kept = append(kept, key)
		if it.leased || len(cells) >= max {
			continue
		}
		it.leased, it.worker, it.deadline = true, worker, deadline
		cells = append(cells, it.cell)
		keys = append(keys, key)
		q.stats.Leased++
	}
	q.order = kept
	done = q.finished && len(q.items) == 0
	if done {
		q.acked[worker] = true
	}
	q.mu.Unlock()

	for _, key := range expired {
		q.fire(Event{Kind: EventExpire, Key: key})
	}
	if len(keys) > 0 {
		q.fire(Event{Kind: EventClaim, Worker: worker, Keys: keys})
	}
	return cells, done
}

// reclaimLocked returns expired leases to the pending pool, walking the
// deterministic claim order so expiry events fire reproducibly.
func (q *Queue) reclaimLocked(now time.Time) []string {
	var expired []string
	for _, key := range q.order {
		it := q.items[key]
		if it != nil && it.leased && it.deadline.Before(now) {
			it.leased, it.worker = false, ""
			q.stats.Expired++
			expired = append(expired, key)
		}
	}
	return expired
}

// SubmitStatus is the queue's verdict on a submitted record.
type SubmitStatus string

// The submit outcomes.
const (
	// StatusAccepted: the record resolved a pending cell.
	StatusAccepted SubmitStatus = "accepted"
	// StatusDuplicate: the cell was already resolved (or already reported
	// failed); the submit is absorbed idempotently.
	StatusDuplicate SubmitStatus = "duplicate"
	// StatusUnknown: the queue has never held this cell — the worker
	// outlived a cancelled batch, or the record is from another campaign.
	StatusUnknown SubmitStatus = "unknown"
	// StatusInvalid: the record is malformed (no key, or its payload does
	// not match the cell's kind) and resolved nothing.
	StatusInvalid SubmitStatus = "invalid"
)

// Submit resolves a pending cell with a worker-executed record. Duplicate
// submits — a retry after a dropped response, or the original holder of an
// expired lease finishing late — are absorbed idempotently: determinism
// guarantees every submit for a key carries the same record, so first write
// wins and the rest acknowledge.
func (q *Queue) Submit(worker string, rec *campaign.Record, attempts int, seconds float64) SubmitStatus {
	if rec == nil || rec.Key == "" {
		return StatusInvalid
	}
	q.mu.Lock()
	it := q.items[rec.Key]
	if it == nil {
		if q.completed[rec.Key] || q.failed[rec.Key] {
			q.stats.Duplicates++
			q.mu.Unlock()
			q.fire(Event{Kind: EventDuplicate, Worker: worker, Key: rec.Key})
			return StatusDuplicate
		}
		q.stats.Unknown++
		q.mu.Unlock()
		q.fire(Event{Kind: EventUnknown, Worker: worker, Key: rec.Key})
		return StatusUnknown
	}
	// Integrity gate: the payload must match the cell's kind. A mismatch
	// resolves nothing — the lease stands (or expires) and a correct
	// worker re-executes.
	if (rec.Kind == campaign.KindRun) != (rec.Result != nil) ||
		(rec.Kind == campaign.KindRemaining) != (rec.Remaining != nil) ||
		rec.Kind != it.cell.Kind {
		q.mu.Unlock()
		return StatusInvalid
	}
	delete(q.items, rec.Key)
	q.completed[rec.Key] = true
	q.stats.Completed++
	b, report := it.batch, it.report
	b.reports.Add(1)
	q.mu.Unlock()

	// Report outside the lock (the engine's callback takes its own lock
	// and may fire user progress callbacks), and only decrement the batch
	// afterwards: ExecuteCells must not return while any report runs.
	report(campaign.Outcome{Key: rec.Key, Rec: rec, Attempts: attempts, Seconds: seconds})
	b.reports.Done()
	q.fire(Event{Kind: EventSubmit, Worker: worker, Key: rec.Key})
	q.finishOne(b)
	return StatusAccepted
}

// Fail marks a cell as unexecutable after a worker exhausted its attempts.
// The failure propagates to the engine (failing the campaign batch the way a
// local execution failure would); a duplicate fail or a fail racing a
// successful submit is absorbed.
func (q *Queue) Fail(worker, key, message string, attempts int) SubmitStatus {
	if key == "" {
		return StatusInvalid
	}
	q.mu.Lock()
	it := q.items[key]
	if it == nil {
		if q.completed[key] || q.failed[key] {
			q.stats.Duplicates++
			q.mu.Unlock()
			return StatusDuplicate
		}
		q.stats.Unknown++
		q.mu.Unlock()
		return StatusUnknown
	}
	delete(q.items, key)
	q.failed[key] = true
	q.stats.Failed++
	b, report := it.batch, it.report
	b.reports.Add(1)
	q.mu.Unlock()

	report(campaign.Outcome{Key: key, Attempts: attempts, Err: &RemoteError{Worker: worker, Message: message}})
	b.reports.Done()
	q.fire(Event{Kind: EventFail, Worker: worker, Key: key})
	q.finishOne(b)
	return StatusAccepted
}

// finishOne decrements a batch and releases its ExecuteCells when the last
// report has fully completed.
func (q *Queue) finishOne(b *batch) {
	q.mu.Lock()
	b.remaining--
	last := b.remaining == 0
	q.mu.Unlock()
	if last {
		close(b.done)
	}
}

// Finish marks the campaign complete: subsequent claims tell workers to
// exit. Call it after the driver has resolved every batch.
func (q *Queue) Finish() {
	q.mu.Lock()
	q.finished = true
	q.mu.Unlock()
	q.fire(Event{Kind: EventFinish})
}

// Drained reports whether every worker that ever claimed has since been
// told the campaign is done — the server's cue that it can stop listening
// without stranding a live worker in claim retries. Workers that died
// mid-campaign never ack, so callers bound the wait.
func (q *Queue) Drained() bool {
	q.mu.Lock()
	defer q.mu.Unlock()
	if !q.finished || len(q.items) != 0 {
		return false
	}
	// Order-independent all() over the worker set: no iteration order
	// reaches any output.
	for w := range q.seen {
		if !q.acked[w] {
			return false
		}
	}
	return true
}

// Snapshot returns the queue's traffic counters plus the current backlog
// (pending = enqueued and unleased, leased = claimed and in flight).
func (q *Queue) Snapshot() (stats Stats, pending, leased int, finished bool) {
	q.mu.Lock()
	defer q.mu.Unlock()
	for _, it := range q.items {
		if it.leased {
			leased++
		} else {
			pending++
		}
	}
	return q.stats, pending, leased, q.finished
}

// RemoteError is a worker-reported execution failure.
type RemoteError struct {
	Worker  string
	Message string
}

func (e *RemoteError) Error() string {
	return "worker " + e.Worker + ": " + e.Message
}
